// Command advect runs the advection test case end to end with any of the
// paper's nine implementations and reports timing, throughput, and
// verification norms.
//
// Usage:
//
//	advect -impl hybrid-overlap -n 64 -steps 50 -tasks 4 -threads 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/measure"
)

func main() {
	var (
		implName  = flag.String("impl", "single", "implementation: single, bulk, nonblocking, threaded, gpu, gpu-bulk, gpu-streams, hybrid-bulk, hybrid-overlap, wide-halo")
		n         = flag.Int("n", 64, "grid points per dimension")
		steps     = flag.Int("steps", 20, "time steps")
		tasks     = flag.Int("tasks", 1, "MPI tasks")
		threads   = flag.Int("threads", 1, "OpenMP threads per task")
		blockX    = flag.Int("blockx", 32, "GPU block x dimension")
		blockY    = flag.Int("blocky", 8, "GPU block y dimension")
		thickness = flag.Int("thickness", 1, "CPU box thickness (hybrid implementations)")
		haloWidth = flag.Int("halowidth", 2, "exchange depth W (wide-halo extension implementation)")
		tasksGPU  = flag.Int("taskspergpu", 0, "MPI tasks sharing one simulated GPU (0 = one device per task)")
		gpuName   = flag.String("gpu", "c2050", "simulated GPU: c1060 or c2050")
		verify    = flag.Bool("verify", true, "compare against the analytic solution")
		timeout   = flag.Duration("timeout", 0, "abort the run if it exceeds this duration (0 = no limit); cancellation is checked between timesteps")
		minTime   = flag.Duration("mintime", 0, "calibrate the step count so the measurement runs at least this long (the paper's methodology; overrides -steps)")
		trace     = flag.String("trace", "", "record per-rank phase spans, print the overlap report with the per-rank load-imbalance/straggler section, and write a Chrome trace-event JSON (open in ui.perfetto.dev) to this file")
		saveCkpt  = flag.String("save", "", "write a checkpoint of the final state to this file")
		loadCkpt  = flag.String("load", "", "resume from a checkpoint file (overrides -n)")
		list      = flag.Bool("list", false, "list implementations and exit")
	)
	flag.Parse()

	if *list {
		for _, k := range advect.Kinds() {
			fmt.Printf("%-16s %s: %s\n", k.String(), k.Section(), k.Describe())
		}
		fmt.Printf("%-16s %s: %s\n", core.WideHaloExt.String(), "ext", core.WideHaloExt.Describe())
		return
	}

	kind, err := advect.ParseKind(*implName)
	if err != nil {
		fatal(err)
	}
	gpu := core.GPUC2050
	if *gpuName == "c1060" {
		gpu = core.GPUC1060
	}

	p := advect.NewProblem(*n, *steps)
	if *loadCkpt != "" {
		m, f, err := checkpoint.LoadFile(*loadCkpt)
		if err != nil {
			fatal(err)
		}
		p = checkpoint.Resume(m, f, *steps)
		fmt.Printf("resumed from %s: %v, %d steps already integrated (t=%g)\n",
			*loadCkpt, m.N, m.StepsDone, m.T0)
	}
	var rec *advect.Recorder
	if *trace != "" {
		rec = advect.NewRecorder()
	}
	o := advect.Options{
		Tasks: *tasks, Threads: *threads,
		BlockX: *blockX, BlockY: *blockY,
		BoxThickness: *thickness,
		HaloWidth:    *haloWidth,
		TasksPerGPU:  *tasksGPU,
		GPU:          gpu,
		Verify:       *verify,
		TraceOverlap: *trace != "" && kind.UsesGPU(),
		Rec:          rec,
	}
	if *minTime > 0 {
		// Paper §II: vary the number of steps until the measurement runs
		// long enough — at least 5 seconds in the paper.
		stepper := func(n int) time.Duration {
			pp := p
			pp.Steps = n
			oo := o
			oo.Verify = false
			oo.Rec = nil // don't pollute the trace with calibration runs
			r, err := advect.Run(kind, pp, oo)
			if err != nil {
				fatal(err)
			}
			return r.Elapsed
		}
		n, err := measure.CalibrateSteps(stepper, *minTime)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("calibrated step count: %d (target %v)\n", n, *minTime)
		p.Steps = n
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := advect.RunContext(ctx, kind, p, o)
	if err != nil {
		fatal(err)
	}
	if *saveCkpt != "" {
		m, f, err := checkpoint.FromResult(p, res)
		if err != nil {
			fatal(err)
		}
		if err := checkpoint.SaveFile(*saveCkpt, m, f); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s (t=%g)\n", *saveCkpt, m.T0)
	}

	fmt.Printf("implementation : %s (%s, %s)\n", kind, kind.Section(), kind.Describe())
	fmt.Printf("grid           : %v, %d steps, 53 flops/point\n", p.N, p.Steps)
	fmt.Printf("configuration  : %d tasks x %d threads", *tasks, *threads)
	if kind.UsesGPU() {
		fmt.Printf(", %dx%d blocks on %s", *blockX, *blockY, *gpuName)
	}
	if kind == advect.HybridBulkSync || kind == advect.HybridOverlap {
		fmt.Printf(", box thickness %d", *thickness)
	}
	fmt.Println()
	fmt.Printf("elapsed        : %v (%.2f GF functional)\n", res.Elapsed, res.GF)
	if *verify {
		fmt.Printf("error L2       : %.3e\n", res.Norms.L2)
		fmt.Printf("error LInf     : %.3e\n", res.Norms.LInf)
		fmt.Printf("mass drift     : %.3e\n", res.MassDrift)
	}
	keys := make([]string, 0, len(res.Stats))
	for k := range res.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("stat %-14s: %g\n", k, res.Stats[k])
	}
	if rec != nil {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		rec.Report().WriteText(os.Stdout)
		fmt.Printf("chrome trace written to %s (open in ui.perfetto.dev)\n", *trace)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advect:", err)
	os.Exit(1)
}
