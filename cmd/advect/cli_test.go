package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "advect")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build CLI (no toolchain?): %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("advect %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)

	// List mode names all ten implementations.
	list := runCLI(t, bin, "-list")
	for _, want := range []string{"single", "bulk", "hybrid-overlap", "wide-halo", "IV-A", "IV-I"} {
		if !strings.Contains(list, want) {
			t.Fatalf("-list missing %q:\n%s", want, list)
		}
	}

	// A verified hybrid run.
	out := runCLI(t, bin, "-impl", "hybrid-overlap", "-n", "16", "-steps", "3",
		"-tasks", "2", "-threads", "2")
	for _, want := range []string{"error L2", "mass drift", "sim.gf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}

	// Checkpoint round trip through the CLI.
	ckpt := filepath.Join(t.TempDir(), "s.ckpt")
	runCLI(t, bin, "-impl", "bulk", "-n", "12", "-steps", "4", "-tasks", "2", "-save", ckpt)
	out = runCLI(t, bin, "-impl", "bulk", "-steps", "4", "-tasks", "2", "-load", ckpt)
	if !strings.Contains(out, "resumed from") || !strings.Contains(out, "4 steps already integrated") {
		t.Fatalf("resume output wrong:\n%s", out)
	}

	// Overlap tracing: -trace writes Chrome trace-event JSON and prints
	// the overlap report alongside the vtime overlap stats.
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out = runCLI(t, bin, "-impl", "gpu-streams", "-n", "16", "-steps", "2", "-trace", traceFile)
	for _, want := range []string{"trace.overlap.sec", "overlap report:", "pcie/kernel", "chrome trace written"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file does not unmarshal: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}

	// Unknown implementation fails loudly.
	if _, err := exec.Command(bin, "-impl", "nope").CombinedOutput(); err == nil {
		t.Fatal("unknown implementation accepted")
	}
}
