package main

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestParseMembers(t *testing.T) {
	ms, err := parseMembers(" n1=http://a:1 , n2=http://b:2/ ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != "n1" || ms[1].URL != "http://b:2" {
		t.Fatalf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "n1", "=http://a", "n1=", "n1=u,n1=v"} {
		if _, err := parseMembers(bad); err == nil {
			t.Errorf("parseMembers(%q) accepted", bad)
		}
	}
}

// logCapture collects the gateway's structured stderr log and surfaces the
// listen address from the msg=serving addr=<addr> event.
type logCapture struct {
	mu   sync.Mutex
	buf  strings.Builder
	addr chan string
	sent bool
}

func (lc *logCapture) Write(p []byte) (int, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.buf.Write(p)
	if !lc.sent {
		s := lc.buf.String()
		if i := strings.Index(s, "addr="); i >= 0 {
			rest := s[i+len("addr="):]
			if j := strings.IndexAny(rest, " \n"); j >= 0 {
				lc.addr <- strings.Trim(rest[:j], `"`)
				lc.sent = true
			}
		}
	}
	return len(p), nil
}

func (lc *logCapture) String() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.buf.String()
}

// TestAdvectgwCLI boots a 3-node local cluster behind the gateway binary,
// serves a job end to end through it, verifies the cluster surface, and
// stops it with SIGTERM.
func TestAdvectgwCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "advectgw")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-local", "3", "-health", "250ms")
	logs := &logCapture{addr: make(chan string, 1)}
	cmd.Stderr = logs
	var stdout strings.Builder
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	select {
	case addr = <-logs.addr:
	case <-time.After(30 * time.Second):
		t.Fatalf("gateway did not report its address; log:\n%s", logs.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// The cluster surface reports all three local members up.
	resp, err = http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var clusterDoc struct {
		Members []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"members"`
		Ring struct {
			Nodes []string `json:"nodes"`
		} `json:"ring"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&clusterDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(clusterDoc.Members) != 3 || len(clusterDoc.Ring.Nodes) != 3 {
		t.Fatalf("cluster doc: %+v", clusterDoc)
	}
	for _, m := range clusterDoc.Members {
		if m.State != "up" {
			t.Errorf("member %s state %s, want up", m.ID, m.State)
		}
	}

	// One job end to end through the gateway, then a cache hit on resubmit.
	body := `{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":3,"tasks":2}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Node  string `json:"node"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(view.ID, view.Node+"-job-") {
		t.Fatalf("job id %q lacks node prefix (node %q)", view.ID, view.Node)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var poll struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if poll.State == "done" {
			break
		}
		if poll.State == "failed" || poll.State == "cancelled" {
			t.Fatalf("job landed in %s: %s", poll.State, poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", poll.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var hit struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !hit.CacheHit {
		t.Fatalf("resubmit = %d, cache_hit %v, want 200 hit", resp.StatusCode, hit.CacheHit)
	}

	// Federated stats name every node.
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Nodes []struct {
			ID string `json:"id"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Nodes) != 3 {
		t.Fatalf("federated stats cover %d nodes, want 3", len(stats.Nodes))
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gateway exited with %v; log:\n%s", err, logs.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("gateway did not exit after SIGTERM; log:\n%s", logs.String())
	}
	if !strings.Contains(stdout.String(), "stopped cleanly") {
		t.Errorf("stdout = %q, want the clean-stop message", stdout.String())
	}
}
