// Command advectgw is the cluster gateway: it fronts N advectd nodes,
// shards submissions across them by request fingerprint on a
// consistent-hash ring, and presents the whole cluster behind the same
// HTTP surface a single node serves.
//
// Point it at running nodes (start each advectd with -node so job ids are
// globally unique):
//
//	advectd -addr :8081 -node n1 &
//	advectd -addr :8082 -node n2 &
//	advectgw -addr :8070 -nodes n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082
//
// or let it spin an in-process development cluster:
//
//	advectgw -addr :8070 -local 3
//
// Clients talk to the gateway exactly as they would to one advectd —
// POST /v1/jobs, poll /v1/jobs/{id}, fetch the result — and additionally
// get the cluster surface: federated GET /v1/stats (per-node snapshots
// plus a merged view), federated GET /v1/stream (every node's SSE events,
// node-labelled, plus periodic merged cluster stats), GET /v1/cluster
// (membership, ring, routing counters), POST /v1/nodes to join a node and
// POST /v1/nodes/{id}/drain to rebalance one away gracefully. The gateway
// exports its own observability on GET /metrics (routing counters, rolling
// route/peek/failover windows, process health; Prometheus text or
// ?format=json) and, with -pprof, net/http/pprof under /debug/pprof.
//
// Traced submissions (simulate jobs with "trace": true) get a cluster
// trace context minted at the gateway and propagated to the owner node on
// the X-Advect-Trace header, so GET /v1/jobs/{id}/trace returns one Chrome
// trace spanning gateway routing, the cross-node handoff, and the
// per-rank runner phases — including any failover or dead-node
// resubmission the job lived through.
//
// Routing honors the nodes' backpressure contract: a 429 with a short
// Retry-After is absorbed by briefly retrying the owner shard (keeping its
// cache affinity), a long one fails over to the next ring node, a draining
// 503 reroutes immediately, and a dead node's in-flight jobs are
// re-submitted to the survivors exactly once per fingerprint.
//
// SIGINT/SIGTERM stop the gateway; with -local the embedded nodes drain
// their in-flight jobs before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8070", "listen address")
		nodes     = flag.String("nodes", "", "comma-separated members as id=url (e.g. n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080)")
		local     = flag.Int("local", 0, "development mode: run N in-process advectd nodes instead of -nodes")
		workers   = flag.Int("workers", 2, "worker pool size per -local node")
		queue     = flag.Int("queue", 16, "admission queue capacity per -local node")
		cache     = flag.Int("cache", 256, "result cache entries per -local node")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for -local nodes")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
		health    = flag.Duration("health", time.Second, "health-check sweep interval")
		failures  = flag.Int("failures", 2, "consecutive failed probes before a node is down")
		retryWait = flag.Duration("retrywait", time.Second, "longest Retry-After honored by retrying the owner shard in place")
		reqTO     = flag.Duration("timeout", 10*time.Second, "outbound per-request timeout to nodes")
		stream    = flag.Duration("stream", time.Second, "merged cluster-stats cadence on /v1/stream")
		window    = flag.Duration("window", time.Minute, "gateway rolling-telemetry window span")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof")
		logJSON   = flag.Bool("logjson", false, "emit logs as JSON instead of logfmt text")
		logLevel  = flag.String("loglevel", "info", "minimum log level: debug, info, warn, or error")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "SSE keep-alive comment cadence on idle /v1/stream connections")
		sessSync  = flag.Duration("sessionsync", time.Second, "session checkpoint replication sweep interval")
		sessions  = flag.String("sessions", "", "session checkpoint directory for -local nodes (one subdirectory per node; empty = sessions disabled locally)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "advectgw: bad -loglevel %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	var members []cluster.Member
	var locals []*localNode
	switch {
	case *local > 0 && *nodes != "":
		fmt.Fprintln(os.Stderr, "advectgw: -local and -nodes are mutually exclusive")
		os.Exit(2)
	case *local > 0:
		var err error
		members, locals, err = startLocalNodes(*local, service.Config{
			Workers: *workers, QueueCap: *queue, CacheEntries: *cache,
			DrainTimeout: *drain,
		}, *sessions, logger)
		if err != nil {
			logger.Error("local cluster failed", "error", err)
			os.Exit(1)
		}
	case *nodes != "":
		var err error
		members, err = parseMembers(*nodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "advectgw: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "advectgw: need -nodes or -local (see -help)")
		os.Exit(2)
	}

	router := cluster.NewRouter(cluster.Config{
		Members:        members,
		VNodes:         *vnodes,
		HealthInterval: *health,
		FailThreshold:  *failures,
		RetryWait:      *retryWait,
		RequestTimeout: *reqTO,
		StreamInterval: *stream,
		StatsWindow:    *window,
		EnablePprof:    *pprofOn,
		Logger:         logger,

		// SSE comment-line keep-alive on idle federated streams.
		HeartbeatInterval: *heartbeat,

		// Checkpoint replication cadence for routed sessions.
		SessionSyncInterval: *sessSync,
	})
	runCtx, stopRun := context.WithCancel(context.Background())
	router.Start(runCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: router.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}()
	logger.Info("serving", "addr", ln.Addr().String(),
		"members", len(members), "local", *local > 0, "vnodes", *vnodes)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	logger.Info("signal received, stopping", "signal", sig.String())

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	stopRun()
	router.Stop()
	if len(locals) > 0 {
		logger.Info("draining local nodes", "nodes", len(locals), "deadline", *drain)
		var wg sync.WaitGroup
		for _, n := range locals {
			wg.Add(1)
			go func(n *localNode) {
				defer wg.Done()
				n.stop(shutdownCtx, logger)
			}(n)
		}
		wg.Wait()
	}
	fmt.Println("advectgw: stopped cleanly")
}

// localNode is one embedded advectd instance in -local mode.
type localNode struct {
	id  string
	srv *service.Server
	hs  *http.Server
}

func (n *localNode) stop(ctx context.Context, logger *slog.Logger) {
	if err := n.srv.Shutdown(); err != nil {
		logger.Error("local node drain failed", "node", n.id, "error", err)
	}
	if err := n.hs.Shutdown(ctx); err != nil {
		logger.Error("local node http shutdown", "node", n.id, "error", err)
	}
}

// startLocalNodes boots count in-process advectd nodes on loopback
// ephemeral ports, each with its own worker pool, queue, and cache —
// a one-command development cluster.
func startLocalNodes(count int, cfg service.Config, sessionDir string, logger *slog.Logger) ([]cluster.Member, []*localNode, error) {
	members := make([]cluster.Member, 0, count)
	locals := make([]*localNode, 0, count)
	for i := 1; i <= count; i++ {
		id := fmt.Sprintf("local-%d", i)
		nodeCfg := cfg
		nodeCfg.NodeID = id
		nodeCfg.Logger = logger.With("node", id)
		if sessionDir != "" {
			// Each local node gets its own store: checkpoints are addressed
			// by fingerprint, so sharing a directory would let two nodes
			// race on the same session's files.
			dir := filepath.Join(sessionDir, id)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, nil, fmt.Errorf("session dir for %s: %w", id, err)
			}
			nodeCfg.SessionDir = dir
		}
		srv := service.New(nodeCfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("listen for %s: %w", id, err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("local node serve failed", "node", id, "error", err)
			}
		}()
		url := "http://" + ln.Addr().String()
		logger.Info("local node up", "node", id, "url", url)
		members = append(members, cluster.Member{ID: id, URL: url})
		locals = append(locals, &localNode{id: id, srv: srv, hs: hs})
	}
	return members, locals, nil
}

// parseMembers reads the -nodes flag: comma-separated id=url pairs.
func parseMembers(s string) ([]cluster.Member, error) {
	var out []cluster.Member
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad member %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate member id %q", id)
		}
		seen[id] = true
		out = append(out, cluster.Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(out) == 0 {
		return nil, errors.New("-nodes named no members")
	}
	return out, nil
}
