// Command advectlint runs the project's static analyzer suite
// (internal/lint) over the module: it loads and type-checks every non-test
// package with the standard library's go/* packages only, runs the default
// analyzer registry, and prints one "file:line:col: [analyzer] message"
// diagnostic per finding, exiting non-zero when anything is flagged.
//
// Usage:
//
//	go run ./cmd/advectlint ./...          # whole module (the CI gate)
//	go run ./cmd/advectlint ./internal/obs # only packages under a path
//	go run ./cmd/advectlint -list          # describe the analyzers
//	go run ./cmd/advectlint -json ./...    # machine-readable report on stdout
//
// Path arguments are prefixes of module-relative package directories;
// "./..." (or no argument) selects everything. -json replaces the text
// diagnostics with one indented JSON document (module, analyzer set,
// findings in stable position order — see lint.JSONReport) so CI can
// archive and diff reports; the exit code contract is unchanged. Findings
// are suppressed only by an audited "//advect:nolint <analyzer> <reason>"
// directive; see the internal/lint package documentation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("advectlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit the findings as a JSON report on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "advectlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "advectlint:", err)
		return 2
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "advectlint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "advectlint:", err)
		return 2
	}
	if filtered := filterPackages(pkgs, modPath, fs.Args()); filtered != nil {
		pkgs = filtered
	} else {
		fmt.Fprintln(stderr, "advectlint: no packages match", fs.Args())
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		rep := lint.NewJSONReport(modPath, len(pkgs), analyzers, diags, root)
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "advectlint:", err)
			return 2
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "advectlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
			return 1
		}
		return 0
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "advectlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// filterPackages keeps the packages selected by the path-prefix patterns;
// no patterns or "./..." selects everything. Returns nil when a pattern
// matches nothing.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) []*lint.Package {
	var cleaned []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		p = strings.TrimPrefix(p, "./")
		if p == "" || p == "." {
			return pkgs
		}
		cleaned = append(cleaned, p)
	}
	if len(cleaned) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		for _, p := range cleaned {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}
