package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildLint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "advectlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}
	return bin
}

// TestAdvectlintCleanRepo is the CI gate in miniature: the suite must exit
// zero over this repository.
func TestAdvectlintCleanRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("advectlint flagged the repo: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Fatalf("expected no output on a clean repo, got:\n%s", out)
	}
}

func TestAdvectlintList(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("advectlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"nilsafe", "clockdiscipline", "hotpath", "ctxflow", "lockheld"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestAdvectlintFlagsSeededViolation runs the binary over a scratch module
// with a deliberate ctxflow violation and expects a diagnostic and a
// non-zero exit.
func TestAdvectlintFlagsSeededViolation(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "lib", "lib.go"), `package lib

import "context"

func Root() context.Context { return context.Background() }
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit on seeded violation, output:\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "[ctxflow]") || !strings.Contains(s, "lib.go:5") {
		t.Fatalf("diagnostic missing or misplaced:\n%s", s)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
