package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildLint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "advectlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}
	return bin
}

// TestAdvectlintCleanRepo is the CI gate in miniature: the suite must exit
// zero over this repository.
func TestAdvectlintCleanRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("advectlint flagged the repo: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Fatalf("expected no output on a clean repo, got:\n%s", out)
	}
}

func TestAdvectlintList(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("advectlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"nilsafe", "clockdiscipline", "hotpath", "ctxflow", "lockheld", "lockorder", "goroutinelife", "ssedisc"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestAdvectlintFlagsSeededViolation runs the binary over a scratch module
// with a deliberate ctxflow violation and expects a diagnostic and a
// non-zero exit.
func TestAdvectlintFlagsSeededViolation(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "lib", "lib.go"), `package lib

import "context"

func Root() context.Context { return context.Background() }
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit on seeded violation, output:\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "[ctxflow]") || !strings.Contains(s, "lib.go:5") {
		t.Fatalf("diagnostic missing or misplaced:\n%s", s)
	}
}

// TestAdvectlintFlagsLockOrderInversion seeds a scratch module with a
// cross-package lock-order inversion — pkga orders A before B, pkgb
// reaches A under B through a helper — and expects exit 1 with the cycle
// and both acquisition chains named.
func TestAdvectlintFlagsLockOrderInversion(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "locks", "locks.go"), `package locks

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// GrabA is the helper the inverted path goes through.
func GrabA() {
	MuA.Lock()
	MuA.Unlock()
}
`)
	writeFile(t, filepath.Join(dir, "pkga", "pkga.go"), `package pkga

import "scratch/locks"

func AB() {
	locks.MuA.Lock()
	defer locks.MuA.Unlock()
	locks.MuB.Lock()
	locks.MuB.Unlock()
}
`)
	writeFile(t, filepath.Join(dir, "pkgb", "pkgb.go"), `package pkgb

import "scratch/locks"

func BA() {
	locks.MuB.Lock()
	defer locks.MuB.Unlock()
	locks.GrabA()
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit on lock-order inversion, output:\n%s", out)
	}
	s := string(out)
	for _, want := range []string{
		"[lockorder]",
		"potential deadlock: lock-order cycle locks.MuA → locks.MuB → locks.MuA",
		"in pkga.AB",
		"via pkgb.BA → locks.GrabA",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, s)
		}
	}
}

// TestAdvectlintJSON runs -json over a seeded module and checks the report
// structure: findings with root-relative paths, the analyzer list, and the
// exit-code contract.
func TestAdvectlintJSON(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "lib", "lib.go"), `package lib

import "context"

func Root() context.Context { return context.Background() }
`)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	var rep struct {
		Tool      string   `json:"tool"`
		Module    string   `json:"module"`
		Packages  int      `json:"packages"`
		Analyzers []string `json:"analyzers"`
		Findings  []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if rep.Tool != "advectlint" || rep.Module != "scratch" || rep.Packages != 1 {
		t.Errorf("report header = %q/%q/%d, want advectlint/scratch/1", rep.Tool, rep.Module, rep.Packages)
	}
	if len(rep.Analyzers) != 8 {
		t.Errorf("analyzers = %v, want all 8", rep.Analyzers)
	}
	if rep.Count != 1 || len(rep.Findings) != 1 {
		t.Fatalf("want exactly one finding, got count=%d findings=%v", rep.Count, rep.Findings)
	}
	f := rep.Findings[0]
	if f.File != filepath.Join("lib", "lib.go") || f.Line != 5 || f.Analyzer != "ctxflow" {
		t.Errorf("finding = %+v, want lib/lib.go:5 ctxflow", f)
	}
}

// TestAdvectlintJSONClean pins the clean-report shape CI archives: zero
// count, empty (not null) findings array, exit zero.
func TestAdvectlintJSONClean(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "lib", "lib.go"), "package lib\n\nfunc Fine() int { return 1 }\n")
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("want exit 0 on clean module: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, `"count": 0`) || !strings.Contains(s, `"findings": []`) {
		t.Errorf("clean report malformed:\n%s", s)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
