package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestPaperfigsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "paperfigs")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{"table1", "fig12", "sectionVE", "ext-wide", "convergence"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-list missing %q", want)
		}
	}

	out, err = exec.Command(bin, "-exp", "sectionVE").CombinedOutput()
	if err != nil {
		t.Fatalf("-exp sectionVE: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "GPU-resident best") {
		t.Fatalf("sectionVE output wrong:\n%s", out)
	}

	out, err = exec.Command(bin, "-exp", "fig10", "-csv").CombinedOutput()
	if err != nil {
		t.Fatalf("-csv: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 6 || !strings.HasPrefix(lines[0], "cores,") {
		t.Fatalf("csv output wrong:\n%s", out)
	}

	if out, err := exec.Command(bin, "-exp", "fig99").CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}
