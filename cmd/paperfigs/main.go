// Command paperfigs regenerates every table and figure of the paper's
// evaluation as text: Table I (coefficients), Table II (machines),
// Figure 2 (lines of code), Figures 3-6 (CPU scaling and thread sweeps),
// Figures 7-8 (GPU block sizes), Figures 9-12 (GPU cluster scaling and
// CPU-GPU load balance), the Section V-E single-node anchors, and a
// functional verification of all nine implementations.
//
// Usage:
//
//	paperfigs            # everything
//	paperfigs -exp fig10 # one experiment
//	paperfigs -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	var (
		expID = flag.String("exp", "", "run a single experiment by ID (default: all)")
		csv   = flag.Bool("csv", false, "emit the figure's data as CSV (figure experiments only, requires -exp)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *csv {
		if *expID == "" {
			fmt.Fprintln(os.Stderr, "paperfigs: -csv requires -exp")
			os.Exit(1)
		}
		series, xName, ok := harness.Data(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperfigs: %s has no series data (tables have none)\n", *expID)
			os.Exit(1)
		}
		if err := stats.WriteCSV(os.Stdout, xName, series); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	exps := harness.All()
	if *expID != "" {
		e, err := harness.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}

	for i, e := range exps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s — %s (%s)\n", e.ID, e.Title, e.PaperRef)
		fmt.Printf("paper: %s\n\n", e.Expect)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
