// Command locreport reproduces Figure 2: lines of code per implementation,
// minus blank lines and comment-only lines — the paper's Fortran counts
// alongside this reproduction's Go counts.
package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	e, err := harness.ByID("fig2")
	if err != nil {
		fmt.Fprintln(os.Stderr, "locreport:", err)
		os.Exit(1)
	}
	if err := e.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "locreport:", err)
		os.Exit(1)
	}
}
