package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestLocreportCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "locreport")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("locreport: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"215", "860", "4.00x", "hybrid-overlap"} {
		if !strings.Contains(s, want) {
			t.Fatalf("locreport output missing %q:\n%s", want, s)
		}
	}
}
