// Command report regenerates a Markdown reproduction report from the
// current models: the §V-E calibration anchors, every figure's data as
// Markdown tables, the Figure 2 line counts, and the extension
// experiments. EXPERIMENTS.md in this repository is the curated version of
// this output; run `report > /tmp/report.md` after changing any model or
// calibration constant to see what moved.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/session"
	"repro/internal/stats"
)

func main() {
	out := flag.String("o", "", "write to this file instead of stdout")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintln(w, "# Reproduction report (generated)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Regenerated from the current models by `go run ./cmd/report`.")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Section V-E calibration anchors")
	fmt.Fprintln(w)
	if t, err := harness.SectionVE(); err == nil {
		writeMarkdown(w, t)
	}
	fmt.Fprintln(w)

	figures := []struct {
		id, title string
	}{
		{"fig3", "Figure 3 — JaguarPF, best GF per implementation"},
		{"fig4", "Figure 4 — Hopper II, best GF per implementation"},
		{"fig5", "Figure 5 — JaguarPF, threads-per-task sweep"},
		{"fig6", "Figure 6 — Hopper II, threads-per-task sweep"},
		{"fig7", "Figure 7 — Lens GPU block sizes"},
		{"fig8", "Figure 8 — Yona GPU block sizes"},
		{"fig9", "Figure 9 — Lens, best GF per implementation"},
		{"fig10", "Figure 10 — Yona, best GF per implementation"},
		{"fig11", "Figure 11 — Lens hybrid-overlap combos"},
		{"fig12", "Figure 12 — Yona hybrid-overlap combos"},
	}
	for _, f := range figures {
		series, xName, ok := harness.Data(f.id)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "## %s\n\n", f.title)
		writeMarkdown(w, stats.SeriesTable(xName, series))
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "## Figure 2 — lines of code")
	fmt.Fprintln(w)
	if e, err := harness.ByID("fig2"); err == nil {
		var sb strings.Builder
		if err := e.Run(&sb); err == nil {
			fmt.Fprintln(w, "```")
			fmt.Fprint(w, sb.String())
			fmt.Fprintln(w, "```")
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Extension experiments")
	fmt.Fprintln(w)
	for _, e := range harness.Extensions() {
		fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Title)
		var sb strings.Builder
		if err := e.Run(&sb); err != nil {
			fmt.Fprintf(w, "error: %v\n\n", err)
			continue
		}
		fmt.Fprintln(w, "```")
		fmt.Fprint(w, sb.String())
		fmt.Fprintln(w, "```")
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "## Observability")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The figures above are model-driven; the functional runs behind them")
	fmt.Fprintln(w, "can be inspected span by span. `cmd/advect -trace` records per-rank")
	fmt.Fprintln(w, "phase spans and prints the overlap-efficiency report together with the")
	fmt.Fprintln(w, "per-rank load-imbalance/straggler report (max/mean busy time, the")
	fmt.Fprintln(w, "straggler's critical-path share, and the per-phase spread that names")
	fmt.Fprintln(w, "why it straggles); the written Chrome trace opens in ui.perfetto.dev.")
	fmt.Fprintln(w, "The `advectd` daemon exposes the same spans per traced job at")
	fmt.Fprintln(w, "`GET /v1/jobs/{id}/trace` — stitched with the request lifecycle —")
	fmt.Fprintln(w, "plus rolling-window telemetry at `GET /v1/stats` and a live SSE feed")
	fmt.Fprintln(w, "at `GET /v1/stream`. See README \"Live telemetry\" and \"Observability\".")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Scaling out the serving layer")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The paper's discipline — keep communication concurrent with compute so")
	fmt.Fprintln(w, "neither ever waits — reappears one level up in `cmd/advectgw`")
	fmt.Fprintln(w, "(`internal/cluster`): a gateway shards jobs across N `advectd` nodes by")
	fmt.Fprintln(w, "request fingerprint on a consistent-hash ring, and all coordination")
	fmt.Fprintln(w, "traffic (health probes, drain handoffs, crash reroutes, federated stats")
	fmt.Fprintln(w, "and SSE fan-in) runs concurrently with job execution, never pausing it.")
	fmt.Fprintln(w, "Adding a node moves only ~1/N of the key space, and moved keys are")
	fmt.Fprintln(w, "served by peeking the sibling cache and seeding the new owner rather")
	fmt.Fprintln(w, "than recomputing; a killed node's in-flight jobs are re-submitted to")
	fmt.Fprintln(w, "the survivors exactly once per fingerprint. All of this is asserted by")
	fmt.Fprintln(w, "a 3-node kill-one-mid-run e2e under the race detector, and the ring")
	fmt.Fprintln(w, "lookup on the submit path is allocation-free and sub-microsecond")
	fmt.Fprintln(w, "(bounded in CI by `BENCH_cluster.json`). See README \"Running a cluster\".")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Resumable sessions & speculative sweep warming")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Long trajectories run as *sessions* (`internal/session`, served at")
	fmt.Fprintln(w, "`POST /v1/sessions`): the run executes as a chain of checkpointed")
	fmt.Fprintln(w, "segments, each segment ending in a durable, versioned, CRC-guarded")
	fmt.Fprintln(w, "checkpoint (`internal/checkpoint`), so a killed daemon resumes from")
	fmt.Fprintln(w, "the last segment boundary on restart and finishes bitwise-identical")
	fmt.Fprintln(w, "to an uninterrupted run (e2e-asserted by field hash). Retained")
	fmt.Fprintln(w, "checkpoints double as fork points: any kept step can seed a child")
	fmt.Fprintln(w, "session with mutated options. Behind the gateway, checkpoints")
	fmt.Fprintln(w, "replicate on the session-sync sweep and a dead owner's sessions are")
	fmt.Fprintln(w, "re-homed onto survivors under the same trace id.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Interactive submissions feed a sweep detector: when one numeric")
	fmt.Fprintln(w, "parameter advances arithmetically (a `cmd/sweep` scan, a user")
	fmt.Fprintln(w, "bisecting), the predicted next points are pre-executed on idle")
	fmt.Fprintln(w, "workers at background priority — shed first under load — so the")
	fmt.Fprintln(w, "sweep's later points are cache hits before they are asked for. The")
	fmt.Fprintln(w, "table below replays an 8-point sweep through the real detector")
	fmt.Fprintln(w, "(history 3, predict 2, background execution assumed to keep up):")
	fmt.Fprintln(w)
	warm, hits := warmerTable()
	writeMarkdown(w, warm)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%d of 8 points served from the warm cache — the detector needs the\n", hits)
	fmt.Fprintln(w, "first three points to establish the progression, then stays ahead of")
	fmt.Fprintln(w, "it. The live counters (observed, predictions, warmed, shed, hits)")
	fmt.Fprintln(w, "are on `GET /v1/stats` under `\"warmer\"`.")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Model-vs-measured drift")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Each overlap kind's analytic expectation doubles as a production")
	fmt.Fprintln(w, "alarm. `perf.ExpectedHiddenFraction` predicts the share of the")
	fmt.Fprintln(w, "bulk-synchronous exchange cost an overlap schedule should hide —")
	fmt.Fprintln(w, "the step time saved over the kind's §IV counterpart, as a fraction")
	fmt.Fprintln(w, "of the counterpart's exchange components — and every traced run")
	fmt.Fprintln(w, "measures the same quantity as the mpi/compute pair of its overlap")
	fmt.Fprintln(w, "report. The daemon's anomaly engine (`internal/flight`) compares the")
	fmt.Fprintln(w, "two per finished job and fires a `model-drift` anomaly — freezing a")
	fmt.Fprintln(w, "flight-recorder snapshot for `GET /v1/debug/bundle` — when the gap")
	fmt.Fprintln(w, "leaves the tolerance band (default 0.35, `-drift` on `advectd`).")
	fmt.Fprintln(w, "Predicted hidden fractions on Yona, 48³ points per task:")
	fmt.Fprintln(w)
	writeMarkdown(w, driftTable())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "A bulk-synchronous kind is its own counterpart and is predicted to")
	fmt.Fprintln(w, "hide nothing, so a deployment that expects `hybrid-overlap` but is")
	fmt.Fprintln(w, "handed bulk-sync runs drifts by the full predicted fraction and")
	fmt.Fprintln(w, "alarms immediately (this exact scenario is the end-to-end test in")
	fmt.Fprintln(w, "`internal/cluster`).")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Tracing across the cluster")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "A traced submission through the gateway yields one Chrome trace that")
	fmt.Fprintln(w, "starts at the gateway: routing decisions are recorded as spans and")
	fmt.Fprintln(w, "shipped to the owning node on the `X-Advect-Trace` header, the node")
	fmt.Fprintln(w, "bridges the hop with a clock-offset-annotated `gw.handoff` span, and a")
	fmt.Fprintln(w, "mid-run node failure is survived by harvesting the dead node's span log")
	fmt.Fprintln(w, "before the fingerprint reroute — so the export shows the partial run,")
	fmt.Fprintln(w, "the resubmission, and the survivor's full run on one monotonic")
	fmt.Fprintln(w, "timeline (golden-tested in `internal/cluster`). The full span")
	fmt.Fprintln(w, "vocabulary, one track per rank × phase:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Phase | Clock |")
	fmt.Fprintln(w, "|---|---|")
	for _, p := range obs.AllPhases() {
		fmt.Fprintf(w, "| `%s` | %s |\n", p, p.Base())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "`compute.*`/`halo.*`/`mpi.*`/`pcie.*`/`gpu.*`/`copy`/`par.region` are")
	fmt.Fprintln(w, "the runner phases the paper names; `svc.*` is the daemon's request")
	fmt.Fprintln(w, "lifecycle; `gw.*` is the gateway's routing story (route, affinity peek,")
	fmt.Fprintln(w, "submit, brief retry, failover, dead-node resubmit, cross-process")
	fmt.Fprintln(w, "handoff). Wall-clock spans are rebased across processes; sim-clock")
	fmt.Fprintln(w, "spans carry the simulated device's virtual time and are never")
	fmt.Fprintln(w, "conflated with it.")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Static concurrency checks")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Everything above leans on concurrency — overlapped phases in the")
	fmt.Fprintln(w, "runners, worker pools and SSE fan-out in the daemon, failover in the")
	fmt.Fprintln(w, "gateway — so the repo checks its concurrency contracts by machine.")
	fmt.Fprintln(w, "`cmd/advectlint` (a stdlib-only analyzer framework in `internal/lint`)")
	fmt.Fprintln(w, "gates CI on eight invariants; the concurrency half: `lockorder` builds")
	fmt.Fprintln(w, "the module-wide lock acquisition graph — across packages, through call")
	fmt.Fprintln(w, "chains — and reports any cycle as a potential deadlock with both")
	fmt.Fprintln(w, "acquisition paths named; `goroutinelife` requires every `go` statement")
	fmt.Fprintln(w, "outside `main` to be tied to a context, WaitGroup, or done channel (or")
	fmt.Fprintln(w, "carry an audited `//advect:nolint` with its reason); `lockheld` bans")
	fmt.Fprintln(w, "blocking under a mutex; `ssedisc` enforces handler write discipline —")
	fmt.Fprintln(w, "no `WriteHeader` after the body, flushes only on complete SSE frames,")
	fmt.Fprintln(w, "stream loops that observe cancellation. Findings are machine-readable")
	fmt.Fprintln(w, "(`advectlint -json`, archived by `ci.sh`), and every rule is pinned by")
	fmt.Fprintln(w, "fixtures under `internal/lint/testdata`. See README \"Static analysis\".")
}

// warmerTable replays an 8-point stepped sweep through a real
// session.Warmer, assuming background pre-execution keeps up (every
// prediction is marked warmed before the next interactive point
// arrives), and tabulates which points the sweep got for free.
func warmerTable() (stats.Table, int) {
	warm := session.NewWarmer(session.WarmerConfig{})
	key := func(steps float64) string { return fmt.Sprintf("steps=%g", steps) }
	t := stats.Table{Header: []string{"point", "steps", "served", "new predictions"}}
	hits := 0
	for i := 0; i < 8; i++ {
		steps := float64(40 * (i + 1))
		served := "computed"
		if warm.WasWarmed(key(steps)) {
			served = "warm hit"
			hits++
		}
		preds := warm.Observe("simulate n=8", []float64{steps})
		var predicted []string
		for _, p := range preds {
			warm.MarkWarmed(key(p.Value))
			predicted = append(predicted, fmt.Sprintf("%g", p.Value))
		}
		label := "—"
		if len(predicted) > 0 {
			label = strings.Join(predicted, ", ")
		}
		t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%g", steps), served, label)
	}
	return t, hits
}

// driftTable tabulates the model-side hidden-communication expectation
// per overlap kind and core count — the baseline the flight recorder's
// drift rule holds measured runs against.
func driftTable() stats.Table {
	cores := []int{2, 12, 24, 96}
	t := stats.Table{Header: []string{"kind"}}
	for _, c := range cores {
		t.Header = append(t.Header, fmt.Sprintf("%d cores", c))
	}
	m, err := machine.ByName("Yona")
	if err != nil {
		return t
	}
	for _, k := range []core.Kind{core.NonblockingOverlap, core.ThreadedOverlap, core.GPUStreams, core.HybridOverlap} {
		row := []string{k.String()}
		for _, c := range cores {
			f, err := perf.ExpectedHiddenFraction(perf.Config{
				M: m, Kind: k, Cores: c, Threads: 1, N: grid.Uniform(48),
			})
			if err != nil {
				row = append(row, "—")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", f))
		}
		t.AddRow(row...)
	}
	return t
}

// writeMarkdown renders a stats.Table as a Markdown table.
func writeMarkdown(w io.Writer, t stats.Table) {
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	fmt.Fprint(w, "|")
	for _, h := range t.Header {
		fmt.Fprintf(w, " %s |", esc(h))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|")
	for range t.Header {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprint(w, "|")
		for _, c := range r {
			fmt.Fprintf(w, " %s |", esc(c))
		}
		fmt.Fprintln(w)
	}
}
