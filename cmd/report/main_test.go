package main

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestWriteMarkdown(t *testing.T) {
	tb := stats.Table{Header: []string{"a", "b|c"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	writeMarkdown(&sb, tb)
	out := sb.String()
	want := "| a | b\\|c |\n|---|---|\n| 1 | 2 |\n"
	if out != want {
		t.Fatalf("got:\n%q\nwant:\n%q", out, want)
	}
}
