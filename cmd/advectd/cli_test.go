package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestAdvectdCLI boots the daemon, serves one predict job end to end, and
// drains it with SIGTERM.
func TestAdvectdCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "advectd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "4")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout strings.Builder
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "serving on <addr>" once the listener is up.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				addrCh <- strings.Fields(rest)[0]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its address")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", resp.Status)
	}

	body := `{"type":"predict","predict":{"machine":"Yona","kind":"hybrid-overlap","cores":96,"threads":6}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, view.ID))
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			var res struct {
				GF float64 `json:"gf"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatalf("result decode: %v", err)
			}
			resp.Body.Close()
			if res.GF <= 0 {
				t.Fatalf("predict returned gf %v", res.GF)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("missing drain message in stdout: %q", stdout.String())
	}
}
