package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// logCapture collects the daemon's structured stderr log and surfaces the
// listen address from the msg=serving addr=<addr> event. Hooking it up as
// cmd.Stderr (instead of a pipe-reading goroutine) means cmd.Wait only
// returns once every log line — including the drain events written just
// before exit — has been captured.
type logCapture struct {
	mu   sync.Mutex
	buf  strings.Builder
	addr chan string
	sent bool
}

func (lc *logCapture) Write(p []byte) (int, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.buf.Write(p)
	if !lc.sent {
		s := lc.buf.String()
		if i := strings.Index(s, "addr="); i >= 0 {
			rest := s[i+len("addr="):]
			if j := strings.IndexAny(rest, " \n"); j >= 0 {
				lc.addr <- strings.Trim(rest[:j], `"`)
				lc.sent = true
			}
		}
	}
	return len(p), nil
}

func (lc *logCapture) String() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.buf.String()
}

// TestAdvectdCLI boots the daemon, serves one predict job end to end, and
// drains it with SIGTERM.
func TestAdvectdCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "advectd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "4", "-pprof")
	logs := &logCapture{addr: make(chan string, 1)}
	cmd.Stderr = logs
	var stdout strings.Builder
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	select {
	case addr = <-logs.addr:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its address")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", resp.Status)
	}

	// -pprof mounts the profiling endpoints.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %v", resp.Status)
	}

	body := `{"type":"predict","predict":{"machine":"Yona","kind":"hybrid-overlap","cores":96,"threads":6}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, view.ID))
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			var res struct {
				GF float64 `json:"gf"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatalf("result decode: %v", err)
			}
			resp.Body.Close()
			if res.GF <= 0 {
				t.Fatalf("predict returned gf %v", res.GF)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("missing drain message in stdout: %q", stdout.String())
	}

	// The structured log stream carries the whole job lifecycle.
	out := logs.String()
	for _, want := range []string{
		`msg="job submitted"`, `msg="job started"`, `msg="job finished"`,
		"job=job-", "type=predict", `msg="drain started"`, `msg="drain finished"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("structured logs missing %q:\n%s", want, out)
		}
	}
}
