// Command advectd is the reproduction's serving daemon: an HTTP JSON API
// that accepts simulate (functional runs), predict (performance-model
// queries), and experiment (figure regeneration) jobs, executes them on a
// bounded worker pool behind a bounded queue, and answers repeated
// requests from a content-addressed result cache.
//
// Usage:
//
//	advectd -addr :8080 -workers 4 -queue 32 -cache 512
//
// Submit a job and poll it:
//
//	curl -s localhost:8080/v1/jobs -d '{"type":"predict","predict":{"machine":"Yona","kind":"hybrid-overlap","cores":96}}'
//	curl -s localhost:8080/v1/jobs/job-000001/result
//
// Watch the fleet live: GET /v1/stats serves rolling-window telemetry
// (queue depth/wait, per-type latency quantiles, overlap efficiency,
// points/sec over the last -window seconds) and GET /v1/stream is an SSE
// feed of job events plus periodic stats snapshots every -stream interval.
// A traced simulate job's stitched Chrome trace — request lifecycle and
// per-rank runner phases on one timeline — is at GET /v1/jobs/{id}/trace.
//
// SIGINT/SIGTERM drain the service: admission stops, /healthz flips to 503
// so load balancers stop routing, in-flight jobs get -drain to finish,
// stragglers are cancelled between timesteps.
//
// The daemon logs structured job-lifecycle events (log/slog, logfmt text
// or JSON with -logjson) to stderr, and -pprof exposes the Go profiling
// endpoints under /debug/pprof/.
//
// With -sessions <dir> the daemon also runs long simulations as resumable
// sessions (POST /v1/sessions): the trajectory executes as a chain of
// checkpointed segments (-segment steps each, -retain kept for forking),
// survives process restarts by resuming from the last durable checkpoint
// in <dir>, and can be paused, resumed, or forked with mutated options
// from any retained step. -warm adds the speculative sweep warmer:
// stepped-parameter submission patterns are detected and their predicted
// next points pre-executed on idle workers at background priority.
//
// An always-on flight recorder (-flight sizes its ring) retains the last
// N job/span/stats/log events and watches for anomalies — latency spikes,
// shed bursts, stragglers, and model-vs-measured overlap drift beyond
// -drift against the -model machine. GET /v1/debug/bundle exports the
// postmortem: flight ring, frozen anomaly snapshots, stats, profiles, and
// build info in one JSON document.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/flight"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 2, "worker pool size (concurrent jobs)")
		queue     = flag.Int("queue", 16, "admission queue capacity (full queue returns 429)")
		cache     = flag.Int("cache", 256, "result cache entries (LRU)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		maxN      = flag.Int("maxn", 0, "largest grid points per dimension a simulate job may request (0 = default)")
		maxStep   = flag.Int("maxsteps", 0, "largest timestep count a simulate job may request (0 = default)")
		pprofOn   = flag.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/")
		logJSON   = flag.Bool("logjson", false, "emit logs as JSON instead of logfmt text")
		logLevel  = flag.String("loglevel", "info", "minimum log level: debug, info, warn, or error")
		window    = flag.Duration("window", 60*time.Second, "rolling telemetry window for /v1/stats and /v1/stream")
		stream    = flag.Duration("stream", time.Second, "default stats cadence on /v1/stream (per-request ?interval= overrides)")
		nodeID    = flag.String("node", "", "cluster node id: prefixes job ids and labels /healthz and /v1/stats (empty = standalone)")
		flightN   = flag.Int("flight", 0, "flight-recorder ring size in events for /v1/debug/bundle (0 = default, negative = disabled)")
		drift     = flag.Float64("drift", 0, "model-vs-measured overlap drift tolerance before an anomaly fires (0 = default)")
		model     = flag.String("model", "", "machine model the anomaly engine predicts against (empty = default)")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "SSE keep-alive comment cadence on idle /v1/stream connections")
		sessDir   = flag.String("sessions", "", "session checkpoint directory: enables resumable sessions under /v1/sessions (empty = disabled)")
		segment   = flag.Int("segment", 0, "default steps between durable session checkpoints (0 = built-in default)")
		retain    = flag.Int("retain", 0, "retained checkpoints per session for fork/rewind (0 = built-in default)")
		sessWork  = flag.Int("sessworkers", 0, "concurrent session segments (0 = built-in default)")
		warm      = flag.Bool("warm", false, "speculatively pre-execute predicted sweep points on idle workers")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "advectd: bad -loglevel %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	lim := service.DefaultLimits()
	if *maxN > 0 {
		lim.MaxN = *maxN
	}
	if *maxStep > 0 {
		lim.MaxSteps = *maxStep
	}
	srv := service.New(service.Config{
		Workers: *workers, QueueCap: *queue, CacheEntries: *cache,
		DrainTimeout: *drain, Limits: lim,
		Logger: logger, EnablePprof: *pprofOn,
		StatsWindow: *window, StreamInterval: *stream,
		NodeID:            *nodeID,
		FlightEvents:      *flightN,
		FlightRules:       flight.Rules{DriftTolerance: *drift, ModelMachine: *model},
		HeartbeatInterval: *heartbeat,
		SessionDir:        *sessDir,
		SessionSegment:    *segment,
		SessionRetain:     *retain,
		SessionWorkers:    *sessWork,
		WarmSweeps:        *warm,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}()
	logger.Info("serving", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue, "cache", *cache, "pprof", *pprofOn)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	logger.Info("signal received, draining", "signal", sig.String(), "deadline", *drain)

	// Stop accepting connections, then drain the pool.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	if err := srv.Shutdown(); err != nil {
		logger.Error("drain failed", "error", err)
		os.Exit(1)
	}
	fmt.Println("advectd: drained cleanly")
}
