package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-machine", "Yona", "-impl", "hybrid-overlap", "-cores", "12,24").CombinedOutput()
	if err != nil {
		t.Fatalf("sweep: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"Yona", "hybrid-overlap", "<-- best", "thickness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, s)
		}
	}

	if _, err := exec.Command(bin, "-machine", "Nonesuch").CombinedOutput(); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := exec.Command(bin, "-cores", "twelve").CombinedOutput(); err == nil {
		t.Fatal("bad core list accepted")
	}
}
