// Command sweep explores the performance model over tuning parameters:
// for one machine and implementation it prints the modelled GF for every
// combination of core count, threads per task, and (for the hybrid
// implementations) box thickness, marking the best configuration per core
// count — the raw material of the paper's "best of" figures.
//
// Usage:
//
//	sweep -machine Yona -impl hybrid-overlap
//	sweep -machine JaguarPF -impl bulk -cores 192,1536,12288
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	var (
		machineName = flag.String("machine", "Yona", "machine: JaguarPF, 'Hopper II', Lens, Yona")
		implName    = flag.String("impl", "hybrid-overlap", "implementation name")
		coresArg    = flag.String("cores", "", "comma-separated core counts (default: the figure sweep)")
		blockX      = flag.Int("blockx", 0, "GPU block x (default: the machine's best block)")
		blockY      = flag.Int("blocky", 0, "GPU block y")
	)
	flag.Parse()

	m, err := advect.MachineByName(*machineName)
	if err != nil {
		fatal(err)
	}
	kind, err := advect.ParseKind(*implName)
	if err != nil {
		fatal(err)
	}
	cores := harness.CoreCounts(m)
	if *coresArg != "" {
		cores = nil
		for _, s := range strings.Split(*coresArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad core count %q", s))
			}
			cores = append(cores, v)
		}
	}
	bx, by := harness.BestBlock(m)
	if *blockX > 0 {
		bx = *blockX
	}
	if *blockY > 0 {
		by = *blockY
	}
	thicks := []int{1}
	if kind == advect.HybridBulkSync || kind == advect.HybridOverlap {
		thicks = harness.Thicknesses()
	}

	t := stats.Table{Header: []string{"cores", "threads", "thickness", "step ms", "GF", "best"}}
	for _, c := range cores {
		type row struct {
			threads, thick int
			est            advect.Prediction
		}
		var rows []row
		bestGF := 0.0
		for _, th := range m.ThreadChoices {
			if c%th != 0 {
				continue
			}
			for _, w := range thicks {
				e, err := advect.Predict(advect.PredictConfig{
					M: m, Kind: kind, Cores: c, Threads: th,
					BoxThickness: w, BlockX: bx, BlockY: by,
				})
				if err != nil {
					continue
				}
				rows = append(rows, row{th, w, e})
				if e.GF > bestGF {
					bestGF = e.GF
				}
			}
		}
		for _, r := range rows {
			mark := ""
			if r.est.GF == bestGF {
				mark = "<-- best"
			}
			t.AddRow(fmt.Sprint(c), fmt.Sprint(r.threads), fmt.Sprint(r.thick),
				fmt.Sprintf("%.3f", r.est.StepSec*1e3),
				fmt.Sprintf("%.1f", r.est.GF), mark)
		}
	}
	fmt.Printf("machine %s, implementation %s (%s), block %dx%d\n\n",
		m.Name, kind, kind.Describe(), bx, by)
	t.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
