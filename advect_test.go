package advect_test

import (
	"bytes"
	"testing"

	"repro"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	p := advect.NewProblem(16, 3)
	res, err := advect.Run(advect.SingleTask, p, advect.Options{Threads: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || res.Norms.L2 <= 0 {
		t.Fatal("no verified result")
	}
}

func TestPublicAPIAllKinds(t *testing.T) {
	p := advect.NewProblem(12, 2)
	for _, k := range advect.Kinds() {
		o := advect.Options{Tasks: 2, Threads: 2, BlockX: 8, BlockY: 4}
		if !k.UsesMPI() {
			o.Tasks = 1
		}
		if _, err := advect.Run(k, p, o); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestPublicAPIPredict(t *testing.T) {
	yona, err := advect.MachineByName("Yona")
	if err != nil {
		t.Fatal(err)
	}
	e, err := advect.Predict(advect.PredictConfig{
		M: yona, Kind: advect.HybridOverlap, Cores: 12, Threads: 12,
		BoxThickness: 1, BlockX: 32, BlockY: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.GF < 40 || e.GF > 120 {
		t.Fatalf("implausible prediction %v GF", e.GF)
	}
}

func TestPublicAPIMachines(t *testing.T) {
	if len(advect.Machines()) != 4 {
		t.Fatal("expected the paper's four machines")
	}
	if _, err := advect.MachineByName("nope"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := advect.ParseKind("hybrid-overlap"); err != nil {
		t.Fatal(err)
	}
}

func TestPaperProblemShape(t *testing.T) {
	p := advect.PaperProblem(5)
	if p.N.X != 420 || p.N.Y != 420 || p.N.Z != 420 {
		t.Fatalf("paper grid %v", p.N)
	}
}

func TestPublicAPICheckpointRoundTrip(t *testing.T) {
	p := advect.NewProblem(16, 8)
	straight, err := advect.Run(advect.BulkSync, p, advect.Options{Tasks: 2})
	if err != nil {
		t.Fatal(err)
	}

	half := advect.NewProblem(16, 4)
	res, err := advect.Run(advect.BulkSync, half, advect.Options{Tasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := advect.SaveCheckpoint(&buf, half, res); err != nil {
		t.Fatal(err)
	}
	resumeP, err := advect.LoadCheckpoint(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := advect.Run(advect.BulkSync, resumeP, advect.Options{Tasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				if straight.Final.At(i, j, k) != resumed.Final.At(i, j, k) {
					t.Fatalf("restart diverged at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}
