// Package advect is a Go reproduction of "Overlapping Computation and
// Communication for Advection on Hybrid Parallel Computers" (White &
// Dongarra, IPDPS 2011): explicit Lax–Wendroff time integration of linear
// advection in a periodic 3-D domain, implemented nine ways — from a
// single threaded task to a fully overlapped hybrid CPU/GPU code — on
// substrates built for this reproduction: an in-process MPI runtime, an
// OpenMP-style worker-team runtime, and a simulated CUDA device with
// streams and a PCIe model.
//
// The package re-exports the reproduction's public surface:
//
//   - Problem, Options, Result, and Run — run any of the nine
//     implementations functionally and verify it against the analytic
//     solution;
//   - Machines and Predict — the calibrated performance models that
//     regenerate the paper's figures at machine scale;
//   - Experiments — the per-table/per-figure harness.
//
// A minimal run:
//
//	p := advect.NewProblem(64, 50)
//	res, err := advect.Run(advect.HybridOverlap, p, advect.Options{
//		Tasks: 4, Threads: 2, Verify: true,
//	})
//
// See the examples directory for complete programs.
package advect

import (
	"context"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/grid"
	_ "repro/internal/impl" // register the nine implementations
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perf"
)

// Kind identifies one of the paper's nine implementations (§IV).
type Kind = core.Kind

// The nine implementations, in paper order (§IV-A … §IV-I).
const (
	SingleTask         = core.SingleTask
	BulkSync           = core.BulkSync
	NonblockingOverlap = core.NonblockingOverlap
	ThreadedOverlap    = core.ThreadedOverlap
	GPUResident        = core.GPUResident
	GPUBulkSync        = core.GPUBulkSync
	GPUStreams         = core.GPUStreams
	HybridBulkSync     = core.HybridBulkSync
	HybridOverlap      = core.HybridOverlap

	// WideHaloExt is this reproduction's communication-avoiding extension
	// implementation (not one of the paper's nine).
	WideHaloExt = core.WideHaloExt
)

// Problem is the advection test case (paper §II).
type Problem = core.Problem

// Options selects the parallel configuration of a run.
type Options = core.Options

// Result reports a completed run, including verification norms.
type Result = core.Result

// Velocity is the constant uniform advection velocity.
type Velocity = grid.Velocity

// Dims holds grid extents.
type Dims = grid.Dims

// Kinds returns all nine implementation kinds in paper order.
func Kinds() []Kind { return core.Kinds() }

// ParseKind converts an identifier such as "hybrid-overlap" to a Kind.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// NewProblem returns an n³ instance of the test case with the default
// velocity, integrating the given number of steps at the maximum stable ν.
func NewProblem(n, steps int) Problem { return core.DefaultProblem(n, steps) }

// PaperProblem returns the paper's 420³ configuration.
func PaperProblem(steps int) Problem { return core.PaperProblem(steps) }

// Run integrates the problem with the chosen implementation.
func Run(k Kind, p Problem, o Options) (*Result, error) {
	r, err := core.New(k)
	if err != nil {
		return nil, err
	}
	return r.Run(p, o)
}

// RunContext is Run with a cancellation context: the implementations poll
// ctx between timesteps and abort with its error (satisfying errors.Is
// against context.Canceled or context.DeadlineExceeded) as soon as it is
// cancelled, so callers can bound or abandon long simulations.
func RunContext(ctx context.Context, k Kind, p Problem, o Options) (*Result, error) {
	o.Ctx = ctx
	return Run(k, p, o)
}

// Fingerprint returns a deterministic content hash of a run request —
// implementation kind, problem, and options (excluding the cancellation
// context and span recorder) — suitable as a result-cache key: two
// requests share a fingerprint exactly when they describe the same
// computation.
func Fingerprint(k Kind, p Problem, o Options) string {
	return core.Fingerprint(k, p, o)
}

// Recorder collects per-rank, per-timestep phase spans — CPU compute, MPI
// traffic, PCIe copies, kernels — from an instrumented run. Attach one via
// Options.Rec, then build an overlap report or export a Chrome trace:
//
//	rec := advect.NewRecorder()
//	res, err := advect.Run(advect.HybridOverlap, p, advect.Options{Tasks: 4, Rec: rec})
//	rec.Report().WriteText(os.Stdout)     // overlap-efficiency summary
//	rec.WriteChromeTrace(f)               // open in ui.perfetto.dev
//
// A nil *Recorder disables recording at zero cost.
type Recorder = obs.Recorder

// OverlapReport is a measured overlap-efficiency report (see Recorder).
type OverlapReport = obs.Report

// NewRecorder returns an enabled span recorder for Options.Rec.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// Machine describes one of the paper's four computers (Table II) together
// with its calibrated performance constants.
type Machine = machine.Machine

// Machines returns the paper's four machines: JaguarPF, Hopper II, Lens,
// and Yona.
func Machines() []*Machine { return machine.All() }

// MachineByName looks a machine up by its Table II name.
func MachineByName(name string) (*Machine, error) { return machine.ByName(name) }

// PredictConfig selects one point of the paper's tuning space for the
// performance model.
type PredictConfig = perf.Config

// Prediction is a modelled per-step timing.
type Prediction = perf.Estimate

// Predict estimates the per-step time and throughput of an implementation
// on one of the paper's machines at the given scale — the model behind the
// reproduction of Figures 3-6 and 9-12.
func Predict(cfg PredictConfig) (Prediction, error) { return perf.Evaluate(cfg) }

// Checkpoint describes a saved simulation state.
type Checkpoint = checkpoint.Meta

// SaveCheckpoint serializes a completed run's final state so a later run
// can resume it bit-for-bit (the paper's §IV-E scenario of long
// computations between checkpoints).
func SaveCheckpoint(w io.Writer, p Problem, res *Result) error {
	m, f, err := checkpoint.FromResult(p, res)
	if err != nil {
		return err
	}
	return checkpoint.Save(w, m, f)
}

// LoadCheckpoint reads a saved state and returns the problem that resumes
// it for the given number of further steps.
func LoadCheckpoint(r io.Reader, steps int) (Problem, error) {
	m, f, err := checkpoint.Load(r)
	if err != nil {
		return Problem{}, err
	}
	return checkpoint.Resume(m, f, steps), nil
}
