// Package telemetry provides the rolling time-series primitives behind the
// advectd live endpoints (/v1/stats and /v1/stream): fixed-size ring-buffer
// windows whose buckets carry streaming histograms, so the service can
// report counts, rates, means, and p50/p95/p99 quantiles over the last N
// seconds without ever storing individual observations.
//
// The hot path is deliberately boring: Observe touches one preallocated
// ring frame under a mutex and allocates nothing (asserted by
// TestWindowObserveAllocatesNothing and the ci.sh overhead gate against
// BENCH_telemetry.json). Like *obs.Recorder, a nil *Window is a valid
// disabled window on which every method no-ops, so instrumented code never
// branches on an "enabled" flag.
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Window is a rolling time window: a ring of equal-width time buckets, each
// accumulating a count, a sum, a max, and (when bounds are configured) a
// fixed-bucket value histogram. Observations older than the window fall out
// as the ring rotates; nothing is ever reallocated after construction.
type Window struct {
	mu     sync.Mutex
	width  int64     // bucket width in nanoseconds
	bounds []float64 // histogram upper bounds; empty = counter-only
	frames []frame
	merged []uint64 // scratch for quantile merging, reused under mu
}

type frame struct {
	slot   int64 // which time bucket this frame currently holds (-1 = unused)
	count  uint64
	sum    float64
	max    float64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
}

// NewWindow builds a window spanning roughly span, divided into buckets
// of width bucket (clamped to at least one bucket of at least 1ms). bounds,
// which must be sorted ascending, enables quantile estimation; nil bounds
// makes a counter-only window (Sum/Count/Max but no quantiles).
func NewWindow(span, bucket time.Duration, bounds []float64) *Window {
	if bucket < time.Millisecond {
		bucket = time.Millisecond
	}
	n := int(span / bucket)
	if n < 1 {
		n = 1
	}
	w := &Window{
		width:  int64(bucket),
		bounds: bounds,
		frames: make([]frame, n),
		merged: make([]uint64, len(bounds)+1),
	}
	// One backing slab for every frame's histogram counts.
	slab := make([]uint64, n*(len(bounds)+1))
	for i := range w.frames {
		w.frames[i].slot = -1
		w.frames[i].counts = slab[i*(len(bounds)+1) : (i+1)*(len(bounds)+1)]
	}
	return w
}

// Observe records one value at the given time. On a nil window it is a
// no-op; on an enabled window it is allocation-free.
//
//advect:hotpath
func (w *Window) Observe(now time.Time, v float64) {
	if w == nil {
		return
	}
	slot := now.UnixNano() / w.width
	w.mu.Lock()
	f := &w.frames[int(slot%int64(len(w.frames)))]
	if f.slot != slot {
		f.slot = slot
		f.count, f.sum, f.max = 0, 0, 0
		for i := range f.counts {
			f.counts[i] = 0
		}
	}
	f.count++
	f.sum += v
	if v > f.max {
		f.max = v
	}
	if len(w.bounds) > 0 {
		f.counts[sort.SearchFloat64s(w.bounds, v)]++
	}
	w.mu.Unlock()
}

// Stats is the aggregate view of one window at one instant.
type Stats struct {
	WindowSec float64 `json:"window_sec"`
	Count     uint64  `json:"count"`
	Sum       float64 `json:"sum"`
	Mean      float64 `json:"mean"`
	Max       float64 `json:"max"`
	// PerSec is Count over the window span; SumPerSec is Sum over it.
	// Both read low while the service is younger than the window.
	PerSec    float64 `json:"per_sec"`
	SumPerSec float64 `json:"sum_per_sec"`
	P50       float64 `json:"p50,omitempty"`
	P95       float64 `json:"p95,omitempty"`
	P99       float64 `json:"p99,omitempty"`
}

// Stats aggregates every bucket still inside the window at now. Sums and
// counts are exact; quantiles are estimated by linear interpolation inside
// the matching histogram bucket (the overflow bucket interpolates toward
// the window max). A nil window returns the zero Stats.
func (w *Window) Stats(now time.Time) Stats {
	if w == nil {
		return Stats{}
	}
	cur := now.UnixNano() / w.width
	oldest := cur - int64(len(w.frames)) + 1

	w.mu.Lock()
	defer w.mu.Unlock()
	var s Stats
	s.WindowSec = float64(w.width) * float64(len(w.frames)) / float64(time.Second)
	for i := range w.merged {
		w.merged[i] = 0
	}
	for i := range w.frames {
		f := &w.frames[i]
		if f.slot < oldest || f.slot > cur {
			continue
		}
		s.Count += f.count
		s.Sum += f.sum
		if f.max > s.Max {
			s.Max = f.max
		}
		for j, c := range f.counts {
			w.merged[j] += c
		}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.PerSec = float64(s.Count) / s.WindowSec
	s.SumPerSec = s.Sum / s.WindowSec
	if len(w.bounds) > 0 && s.Count > 0 {
		s.P50 = w.quantile(0.50, s.Count, s.Max)
		s.P95 = w.quantile(0.95, s.Count, s.Max)
		s.P99 = w.quantile(0.99, s.Count, s.Max)
	}
	return s
}

// quantile walks the merged histogram (already populated under mu by Stats)
// to the bucket containing rank q·count and interpolates inside it.
func (w *Window) quantile(q float64, count uint64, max float64) float64 {
	rank := q * float64(count)
	var cum float64
	for i, c := range w.merged {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			var lo float64
			if i > 0 {
				lo = w.bounds[i-1]
			}
			hi := max
			if i < len(w.bounds) && w.bounds[i] < hi {
				hi = w.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return max
}

// DurationBounds returns a 1-2-5 ladder of upper bounds in seconds from
// 10µs to 100s, a histogram layout wide enough for both sub-millisecond
// predict jobs and multi-second simulations.
func DurationBounds() []float64 {
	var b []float64
	for decade := 1e-5; decade < 1e3; decade *= 10 {
		b = append(b, decade, 2*decade, 5*decade)
	}
	return b
}

// LinearBounds returns n evenly spaced upper bounds ending at max — the
// right layout for bounded small integers such as queue depth, or for
// fractions in [0, 1].
func LinearBounds(max float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = max * float64(i+1) / float64(n)
	}
	return b
}
