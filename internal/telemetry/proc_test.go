package telemetry

import (
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestReadProcSaneValues(t *testing.T) {
	runtime.GC() // guarantee at least one pause event
	p := ReadProc()
	if p.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", p.Goroutines)
	}
	if p.HeapBytes == 0 {
		t.Error("heap_bytes = 0, want > 0")
	}
	if p.GCPauses == 0 {
		t.Error("gc_pauses = 0 after an explicit runtime.GC()")
	}
	if p.GCPauseP99Sec < 0 || p.GCPauseP99Sec > 10 {
		t.Errorf("gc_pause_p99_sec = %v, want a plausible pause", p.GCPauseP99Sec)
	}
}

func TestProcStatsWriteProm(t *testing.T) {
	p := ProcStats{Goroutines: 7, HeapBytes: 1 << 20, GCPauses: 3, GCPauseP99Sec: 0.001}
	var b strings.Builder
	p.WriteProm(&b, "advectgw")
	out := b.String()
	for _, want := range []string{
		"advectgw_go_goroutines 7",
		"advectgw_go_heap_bytes 1.048576e+06",
		"advectgw_go_gc_pauses_total 3",
		"advectgw_go_gc_pause_p99_seconds 0.001",
		"# TYPE advectgw_go_goroutines gauge",
		"# TYPE advectgw_go_gc_pauses_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 0.001, 0.01, 0.1},
	}
	total, q99 := histQuantile(h, 0.99)
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if q99 != 0.01 {
		t.Fatalf("p99 = %v, want 0.01 (bucket upper bound)", q99)
	}
	if n, q := histQuantile(&metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0.99); n != 0 || q != 0 {
		t.Fatalf("empty histogram: got (%d, %v)", n, q)
	}
}
