package telemetry

import (
	"testing"
	"time"
)

// The disabled (nil) window must stay effectively free and the enabled hot
// path allocation-free — both are enforced by ci.sh against
// BENCH_telemetry.json, mirroring the obs recorder gate.

func BenchmarkWindowDisabled(b *testing.B) {
	var w *Window
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(now, 1.0)
	}
}

func BenchmarkWindowObserve(b *testing.B) {
	w := NewWindow(time.Minute, time.Second, DurationBounds())
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(now, float64(i%100)*1e-3)
	}
}

func BenchmarkWindowStats(b *testing.B) {
	w := NewWindow(time.Minute, time.Second, DurationBounds())
	now := time.Now()
	for i := 0; i < 10000; i++ {
		w.Observe(now, float64(i%100)*1e-3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = w.Stats(now)
	}
}

func TestWindowObserveAllocatesNothing(t *testing.T) {
	w := NewWindow(time.Minute, time.Second, DurationBounds())
	now := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		w.Observe(now, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f per call, want 0", allocs)
	}
	var disabled *Window
	allocs = testing.AllocsPerRun(1000, func() {
		disabled.Observe(now, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled Observe allocated %.1f per call, want 0", allocs)
	}
}
