package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestMergeExactFields(t *testing.T) {
	a := Stats{WindowSec: 60, Count: 10, Sum: 30, Max: 9, P50: 2, P95: 8, P99: 9}
	b := Stats{WindowSec: 60, Count: 30, Sum: 50, Max: 4, P50: 1, P95: 3, P99: 4}
	m := Merge(a, b)
	if m.Count != 40 {
		t.Errorf("Count = %d, want 40", m.Count)
	}
	if m.Sum != 80 {
		t.Errorf("Sum = %v, want 80", m.Sum)
	}
	if m.Max != 9 {
		t.Errorf("Max = %v, want 9", m.Max)
	}
	if want := 2.0; m.Mean != want {
		t.Errorf("Mean = %v, want %v", m.Mean, want)
	}
	if want := 40.0 / 60; math.Abs(m.PerSec-want) > 1e-12 {
		t.Errorf("PerSec = %v, want %v", m.PerSec, want)
	}
	if want := 80.0 / 60; math.Abs(m.SumPerSec-want) > 1e-12 {
		t.Errorf("SumPerSec = %v, want %v", m.SumPerSec, want)
	}
	// Count-weighted quantile estimates: a carries 1/4 of the weight.
	if want := 0.25*2 + 0.75*1; math.Abs(m.P50-want) > 1e-12 {
		t.Errorf("P50 = %v, want %v", m.P50, want)
	}
	if want := 0.25*8 + 0.75*3; math.Abs(m.P95-want) > 1e-12 {
		t.Errorf("P95 = %v, want %v", m.P95, want)
	}
}

func TestMergeZeroSides(t *testing.T) {
	a := Stats{WindowSec: 60, Count: 5, Sum: 10, Max: 4, P50: 2}
	if got := Merge(a, Stats{}); got != a {
		t.Errorf("Merge(a, zero) = %+v, want a unchanged", got)
	}
	if got := Merge(Stats{}, a); got != a {
		t.Errorf("Merge(zero, a) = %+v, want a unchanged", got)
	}
	if got := Merge(Stats{}, Stats{}); got != (Stats{}) {
		t.Errorf("Merge(zero, zero) = %+v, want zero", got)
	}
}

func TestMergeMismatchedWindows(t *testing.T) {
	a := Stats{WindowSec: 30, Count: 10, Sum: 30}
	b := Stats{WindowSec: 60, Count: 10, Sum: 30}
	m := Merge(a, b)
	if m.WindowSec != 60 {
		t.Errorf("WindowSec = %v, want the wider 60", m.WindowSec)
	}
	if want := 20.0 / 60; math.Abs(m.PerSec-want) > 1e-12 {
		t.Errorf("PerSec = %v, want conservative %v", m.PerSec, want)
	}
}

// TestMergeMatchesCombinedWindow: merging two live windows' snapshots
// agrees with one window that saw every observation — the invariant
// federated /v1/stats relies on. Count and Max are exact; Sum and Mean
// only to rounding, since the split changes the summation order.
func TestMergeMatchesCombinedWindow(t *testing.T) {
	span, bucket := time.Minute, time.Second
	bounds := DurationBounds()
	wa := NewWindow(span, bucket, bounds)
	wb := NewWindow(span, bucket, bounds)
	combined := NewWindow(span, bucket, bounds)
	now := time.Now()
	for i := 0; i < 500; i++ {
		v := float64(i%37) / 100
		at := now.Add(time.Duration(i) * 10 * time.Millisecond)
		combined.Observe(at, v)
		if i%2 == 0 {
			wa.Observe(at, v)
		} else {
			wb.Observe(at, v)
		}
	}
	at := now.Add(6 * time.Second)
	m := MergeAll(wa.Stats(at), wb.Stats(at))
	c := combined.Stats(at)
	if m.Count != c.Count || m.Max != c.Max {
		t.Errorf("merged (count=%d max=%v) != combined (count=%d max=%v)",
			m.Count, m.Max, c.Count, c.Max)
	}
	if math.Abs(m.Sum-c.Sum) > 1e-9*math.Abs(c.Sum) {
		t.Errorf("Sum: merged %v != combined %v", m.Sum, c.Sum)
	}
	if math.Abs(m.Mean-c.Mean) > 1e-12 {
		t.Errorf("Mean: merged %v != combined %v", m.Mean, c.Mean)
	}
	// Quantiles are estimates; with an alternating (identical) split they
	// must land close to the combined window's own estimate.
	if c.P95 > 0 && math.Abs(m.P95-c.P95)/c.P95 > 0.15 {
		t.Errorf("P95: merged %v vs combined %v (>15%% off on an even split)", m.P95, c.P95)
	}
}

func TestMergeAllEmpty(t *testing.T) {
	if got := MergeAll(); got != (Stats{}) {
		t.Errorf("MergeAll() = %+v, want zero", got)
	}
}
