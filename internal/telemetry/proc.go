package telemetry

import (
	"fmt"
	"math"
	"runtime/metrics"
	"strconv"
	"strings"
)

// Process-health snapshot backed by runtime/metrics: the handful of
// whole-process gauges (goroutines, live heap, GC pauses) worth exporting
// from every binary next to its domain metrics. Reading is a few
// microseconds and happens only on a /metrics scrape, never on a hot path.

// runtime/metrics sample names read by ReadProc.
const (
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleHeapBytes  = "/memory/classes/heap/objects:bytes"
	sampleGCPauses   = "/gc/pauses:seconds"
)

// ProcStats is one point-in-time process-health reading.
type ProcStats struct {
	// Goroutines is the current live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// HeapBytes is the bytes occupied by live + dead-not-yet-swept heap
	// objects.
	HeapBytes uint64 `json:"heap_bytes"`
	// GCPauses is the cumulative count of stop-the-world pause events.
	GCPauses uint64 `json:"gc_pauses"`
	// GCPauseP99Sec is the 99th-percentile stop-the-world pause over the
	// process lifetime (upper bucket bound of the runtime histogram).
	GCPauseP99Sec float64 `json:"gc_pause_p99_sec"`
}

// ReadProc samples the runtime metrics once.
func ReadProc() ProcStats {
	samples := []metrics.Sample{
		{Name: sampleGoroutines},
		{Name: sampleHeapBytes},
		{Name: sampleGCPauses},
	}
	metrics.Read(samples)
	var p ProcStats
	for _, s := range samples {
		switch s.Name {
		case sampleGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				p.Goroutines = int64(s.Value.Uint64())
			}
		case sampleHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				p.HeapBytes = s.Value.Uint64()
			}
		case sampleGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				p.GCPauses, p.GCPauseP99Sec = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		}
	}
	return p
}

// histQuantile returns the total event count and the qth quantile of a
// runtime histogram, reported as the upper bound of the bucket containing
// it (the runtime's own bucketing granularity).
func histQuantile(h *metrics.Float64Histogram, q float64) (uint64, float64) {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	target := uint64(math.Ceil(float64(total) * q))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = h.Buckets[i] // open-ended top bucket: report its floor
			}
			return total, hi
		}
	}
	return total, h.Buckets[len(h.Buckets)-1]
}

// WriteProm renders the snapshot in the Prometheus text exposition format
// with the given series prefix (e.g. "advectd", "advectgw").
func (p ProcStats) WriteProm(b *strings.Builder, prefix string) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(b, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n", prefix, name, help, prefix, name)
		fmt.Fprintf(b, "%s_%s %s\n", prefix, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	gauge("go_goroutines", "Current goroutine count.", float64(p.Goroutines))
	gauge("go_heap_bytes", "Bytes of live heap objects.", float64(p.HeapBytes))
	fmt.Fprintf(b, "# HELP %s_go_gc_pauses_total Cumulative GC stop-the-world pauses.\n", prefix)
	fmt.Fprintf(b, "# TYPE %s_go_gc_pauses_total counter\n", prefix)
	fmt.Fprintf(b, "%s_go_gc_pauses_total %d\n", prefix, p.GCPauses)
	gauge("go_gc_pause_p99_seconds", "99th-percentile GC pause over the process lifetime.", p.GCPauseP99Sec)
}
