package telemetry

import (
	"encoding/json"
	"sync"
)

// Event is one message on the live stream: a named payload, already encoded,
// so the hub never touches subscriber-specific state.
type Event struct {
	Name string
	Data json.RawMessage
}

// Hub is a small publish/subscribe fan-out for the SSE stream. Publishing
// never blocks: a subscriber whose buffer is full simply misses that event
// (the stream is a live view, not a durable log). A nil *Hub is a valid
// disabled hub, matching the package's nil-safety convention.
type Hub struct {
	mu      sync.Mutex
	subs    map[chan Event]struct{}
	closed  bool
	dropped uint64
}

// NewHub returns an empty hub ready for subscribers.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan Event]struct{})}
}

// Subscribe registers a new subscriber with the given channel buffer and
// returns its receive channel plus a cancel function. The channel is closed
// by cancel or by Close, whichever comes first; cancel is idempotent. On a
// nil or closed hub the returned channel is already closed.
func (h *Hub) Subscribe(buf int) (<-chan Event, func()) {
	if h == nil {
		ch := make(chan Event, buf)
		close(ch)
		return ch, func() {}
	}
	ch := make(chan Event, buf)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// Publish fans the event out to every subscriber without blocking. Events a
// slow subscriber cannot accept are counted in Dropped and discarded.
//
//advect:hotpath
func (h *Hub) Publish(ev Event) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped++
		}
	}
	h.mu.Unlock()
}

// Close shuts the hub down: every subscriber channel is closed and future
// Subscribe calls return closed channels. Idempotent.
func (h *Hub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for ch := range h.subs {
			delete(h.subs, ch)
			close(ch)
		}
	}
	h.mu.Unlock()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped returns how many events were discarded because a subscriber's
// buffer was full.
func (h *Hub) Dropped() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
