package telemetry

import (
	"math"
	"sort"
	"testing"
	"time"
)

// base is an arbitrary fixed instant so tests are deterministic.
var base = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func TestWindowCountsAndRates(t *testing.T) {
	w := NewWindow(10*time.Second, time.Second, nil)
	for i := 0; i < 5; i++ {
		w.Observe(base.Add(time.Duration(i)*time.Second), 2.0)
	}
	s := w.Stats(base.Add(4 * time.Second))
	if s.Count != 5 || s.Sum != 10 {
		t.Fatalf("count=%d sum=%g, want 5/10", s.Count, s.Sum)
	}
	if s.Mean != 2 || s.Max != 2 {
		t.Fatalf("mean=%g max=%g, want 2/2", s.Mean, s.Max)
	}
	if s.WindowSec != 10 {
		t.Fatalf("window=%g, want 10", s.WindowSec)
	}
	if got := s.PerSec; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("per_sec=%g, want 0.5", got)
	}
	if got := s.SumPerSec; math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("sum_per_sec=%g, want 1.0", got)
	}
}

func TestWindowRollOff(t *testing.T) {
	w := NewWindow(4*time.Second, time.Second, nil)
	w.Observe(base, 1)
	w.Observe(base.Add(time.Second), 1)
	// Both observations inside the window.
	if s := w.Stats(base.Add(2 * time.Second)); s.Count != 2 {
		t.Fatalf("count=%d, want 2", s.Count)
	}
	// Advance so the first observation's bucket has aged out.
	if s := w.Stats(base.Add(4 * time.Second)); s.Count != 1 {
		t.Fatalf("after roll-off count=%d, want 1", s.Count)
	}
	// Far future: everything aged out, even without new writes.
	if s := w.Stats(base.Add(time.Hour)); s.Count != 0 {
		t.Fatalf("stale count=%d, want 0", s.Count)
	}
	// New write reuses a rotated frame; old content must not leak in.
	w.Observe(base.Add(8*time.Second), 7)
	s := w.Stats(base.Add(8 * time.Second))
	if s.Count != 1 || s.Sum != 7 {
		t.Fatalf("reused frame count=%d sum=%g, want 1/7", s.Count, s.Sum)
	}
}

func TestWindowQuantiles(t *testing.T) {
	// Uniform values 1..100 with linear buckets: quantiles should land
	// near their exact ranks (within one bucket width).
	w := NewWindow(10*time.Second, time.Second, LinearBounds(100, 20))
	for i := 1; i <= 100; i++ {
		w.Observe(base, float64(i))
	}
	s := w.Stats(base)
	if math.Abs(s.P50-50) > 5 {
		t.Fatalf("p50=%g, want ~50", s.P50)
	}
	if math.Abs(s.P95-95) > 5 {
		t.Fatalf("p95=%g, want ~95", s.P95)
	}
	if math.Abs(s.P99-99) > 5 {
		t.Fatalf("p99=%g, want ~99", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %g %g %g", s.P50, s.P95, s.P99)
	}
}

func TestWindowQuantileOverflowBucket(t *testing.T) {
	// Values beyond the last bound land in the overflow bucket, whose
	// interpolation is capped by the observed max.
	w := NewWindow(10*time.Second, time.Second, LinearBounds(1, 4))
	for i := 0; i < 10; i++ {
		w.Observe(base, 50)
	}
	s := w.Stats(base)
	if s.P99 > 50 || s.P99 < 1 {
		t.Fatalf("p99=%g, want within (1, 50]", s.P99)
	}
}

func TestWindowNilSafe(t *testing.T) {
	var w *Window
	w.Observe(base, 1) // must not panic
	if s := w.Stats(base); s.Count != 0 || s.WindowSec != 0 {
		t.Fatalf("nil window stats = %+v, want zero", s)
	}
}

func TestBoundsHelpers(t *testing.T) {
	d := DurationBounds()
	if !sort.Float64sAreSorted(d) {
		t.Fatal("DurationBounds not sorted")
	}
	if d[0] != 1e-5 || d[len(d)-1] < 100 {
		t.Fatalf("DurationBounds range [%g, %g] unexpected", d[0], d[len(d)-1])
	}
	l := LinearBounds(1, 4)
	want := []float64{0.25, 0.5, 0.75, 1}
	for i, b := range l {
		if math.Abs(b-want[i]) > 1e-12 {
			t.Fatalf("LinearBounds[%d]=%g, want %g", i, b, want[i])
		}
	}
}

func TestHubPublishSubscribe(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(4)
	defer cancel()
	h.Publish(Event{Name: "job", Data: []byte(`{"id":"job-000001"}`)})
	ev := <-ch
	if ev.Name != "job" {
		t.Fatalf("event name = %q, want job", ev.Name)
	}
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", h.Subscribers())
	}
	cancel()
	cancel() // idempotent
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", h.Subscribers())
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
}

func TestHubDropsWhenFull(t *testing.T) {
	h := NewHub()
	_, cancel := h.Subscribe(1)
	defer cancel()
	h.Publish(Event{Name: "a"})
	h.Publish(Event{Name: "b"}) // buffer full: dropped, not blocked
	if h.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", h.Dropped())
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(1)
	h.Close()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after hub Close")
	}
	cancel() // must not panic after Close
	// Subscribing to a closed hub yields an already-closed channel.
	ch2, cancel2 := h.Subscribe(1)
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Fatal("subscribe after Close returned open channel")
	}
	h.Close() // idempotent
}

func TestHubNilSafe(t *testing.T) {
	var h *Hub
	h.Publish(Event{Name: "x"})
	h.Close()
	if h.Subscribers() != 0 || h.Dropped() != 0 {
		t.Fatal("nil hub counters not zero")
	}
	ch, cancel := h.Subscribe(1)
	defer cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil hub subscribe returned open channel")
	}
}
