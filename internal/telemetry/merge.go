package telemetry

// Merge combines two window snapshots into the federated view a cluster
// gateway reports: counts and sums add exactly (so cluster totals still
// agree with the per-job reports they came from, the same invariant the
// per-node overlap window keeps), the max is the max, and rates re-derive
// from the merged totals. Quantiles cannot be merged exactly from
// snapshots — the underlying histograms are gone — so P50/P95/P99 are
// estimated as count-weighted means of the per-node estimates. That is
// exact when the nodes saw identical distributions (the common case under
// consistent-hash sharding of a homogeneous workload) and bounded by the
// per-node extremes otherwise; the JSON field names make no exactness
// claim beyond the per-node documents'.
//
// Snapshots are assumed to cover the same span; if they differ (mixed
// -window flags), the wider span wins and rates stay conservative.
func Merge(a, b Stats) Stats {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := Stats{
		WindowSec: a.WindowSec,
		Count:     a.Count + b.Count,
		Sum:       a.Sum + b.Sum,
		Max:       a.Max,
	}
	if b.WindowSec > out.WindowSec {
		out.WindowSec = b.WindowSec
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	out.Mean = out.Sum / float64(out.Count)
	if out.WindowSec > 0 {
		out.PerSec = float64(out.Count) / out.WindowSec
		out.SumPerSec = out.Sum / out.WindowSec
	}
	wa := float64(a.Count) / float64(out.Count)
	wb := float64(b.Count) / float64(out.Count)
	out.P50 = wa*a.P50 + wb*b.P50
	out.P95 = wa*a.P95 + wb*b.P95
	out.P99 = wa*a.P99 + wb*b.P99
	return out
}

// MergeAll folds a list of snapshots with Merge.
func MergeAll(stats ...Stats) Stats {
	var out Stats
	for i, s := range stats {
		if i == 0 {
			out = s
			continue
		}
		out = Merge(out, s)
	}
	return out
}
