package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// streamReader is one member's leg of the federated SSE stream: it holds a
// GET /v1/stream open against the node, relabels every event with the node
// id, and republishes it on the gateway hub. The read runs concurrently
// with everything else the gateway does — a slow or silent node never
// stalls routing or the other nodes' events, the same non-blocking
// discipline as the per-node Hub itself. While the node is down the reader
// idles and retries, so a recovered node rejoins the stream by itself.
func (r *Router) streamReader(ctx context.Context, m Member) {
	backoff := 250 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return
		}
		if r.members.State(m.ID) == NodeDown {
			if !sleepCtx(ctx, r.cfg.HealthInterval) {
				return
			}
			continue
		}
		err := r.readNodeStream(ctx, m)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			r.log.Debug("node stream interrupted", "node", m.ID, "error", err)
		}
		if !sleepCtx(ctx, backoff) {
			return
		}
	}
}

// readNodeStream holds one SSE connection open and pumps events until it
// breaks.
func (r *Router) readNodeStream(ctx context.Context, m Member) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/v1/stream", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var name string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if name != "" && len(data) > 0 {
				r.publishNodeEvent(m.ID, name, data)
			}
			name, data = "", nil
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, []byte(strings.TrimPrefix(line, "data: "))...)
		}
	}
	return sc.Err()
}

// publishNodeEvent republishes one node event on the gateway hub with the
// node id injected into the payload (object payloads gain a leading
// "node" field; anything else is wrapped).
func (r *Router) publishNodeEvent(nodeID, name string, data []byte) {
	r.hub.Publish(telemetry.Event{Name: name, Data: labelJSON(nodeID, data)})
}

// labelJSON injects "node": id into a JSON object payload without
// re-marshalling the rest of the document; non-object payloads are wrapped
// as {"node": id, "data": ...}.
func labelJSON(nodeID string, data []byte) json.RawMessage {
	trimmed := bytes.TrimSpace(data)
	idTag, _ := json.Marshal(nodeID)
	if len(trimmed) >= 2 && trimmed[0] == '{' && json.Valid(trimmed) {
		var buf bytes.Buffer
		buf.Grow(len(trimmed) + len(idTag) + 10)
		buf.WriteString(`{"node":`)
		buf.Write(idTag)
		if !bytes.Equal(trimmed, []byte("{}")) {
			buf.WriteByte(',')
		}
		buf.Write(trimmed[1:])
		return buf.Bytes()
	}
	var buf bytes.Buffer
	buf.WriteString(`{"node":`)
	buf.Write(idTag)
	buf.WriteString(`,"data":`)
	buf.Write(trimmed)
	buf.WriteByte('}')
	return buf.Bytes()
}
