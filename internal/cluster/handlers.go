package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// errorDoc matches the per-node JSON error envelope, extended with routing
// attribution: which shard (or shards, for a cluster-wide shed) the
// gateway was talking to when the request failed, and how many dispatches
// it spent.
type errorDoc struct {
	Error    string   `json:"error"`
	Node     string   `json:"node,omitempty"`
	Nodes    []string `json:"nodes,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
}

// routes builds the gateway HTTP API. The job surface mirrors a single
// advectd node — clients talk to the cluster exactly as they would to one
// process — plus cluster-level membership and drain controls.
//
//	POST   /v1/jobs               submit (routed to the owner shard)
//	GET    /v1/jobs               merged job list across nodes
//	GET    /v1/jobs/{id}          job status (proxied, node-labelled)
//	GET    /v1/jobs/{id}/result   result document (proxied)
//	GET    /v1/jobs/{id}/trace    stitched Chrome trace (proxied)
//	GET    /v1/jobs/{id}/spans    raw span log / wire trace context (proxied)
//	DELETE /v1/jobs/{id}          cancel (proxied)
//	POST   /v1/sessions           create a resumable session (routed by fingerprint)
//	GET    /v1/sessions           merged session list across nodes
//	GET    /v1/sessions/{id}      session status (proxied, follows failover)
//	POST   /v1/sessions/{id}/pause   pause (proxied)
//	POST   /v1/sessions/{id}/resume  resume (proxied)
//	POST   /v1/sessions/{id}/fork    fork from a retained checkpoint (proxied)
//	GET    /v1/sessions/{id}/checkpoint  raw checkpoint bytes (proxied)
//	GET    /v1/stats              federated rolling-window telemetry
//	GET    /v1/stream             federated SSE stream (node-labelled)
//	GET    /v1/kinds              implementation catalogue (any up node)
//	GET    /v1/experiments        experiment catalogue (any up node)
//	GET    /v1/cluster            membership, ring, and routing counters
//	POST   /v1/nodes              join a new node ({"id": ..., "url": ...})
//	POST   /v1/nodes/{id}/drain   drain one node and rebalance its shard
//	GET    /v1/debug/bundle       cluster postmortem (every node's bundle, node-stamped)
//	GET    /metrics               gateway Prometheus exposition (?format=json)
//	GET    /healthz               gateway liveness (503 with no routable nodes)
func (r *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", r.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", r.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", r.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", r.handleSpans)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleCancel)
	mux.HandleFunc("POST /v1/sessions", r.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", r.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", r.handleSessionStatus)
	mux.HandleFunc("POST /v1/sessions/{id}/pause", r.handleSessionVerb("pause"))
	mux.HandleFunc("POST /v1/sessions/{id}/resume", r.handleSessionVerb("resume"))
	mux.HandleFunc("POST /v1/sessions/{id}/fork", r.handleSessionFork)
	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", r.handleSessionCheckpoint)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /v1/stream", r.handleStream)
	mux.HandleFunc("GET /v1/kinds", r.handleCatalogue("/v1/kinds"))
	mux.HandleFunc("GET /v1/experiments", r.handleCatalogue("/v1/experiments"))
	mux.HandleFunc("GET /v1/cluster", r.handleCluster)
	mux.HandleFunc("POST /v1/nodes", r.handleNodeJoin)
	mux.HandleFunc("POST /v1/nodes/{id}/drain", r.handleNodeDrain)
	mux.HandleFunc("GET /v1/debug/bundle", r.handleBundle)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	if r.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var jobReq service.Request
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jobReq); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	view, nodeID, err := r.Submit(req.Context(), jobReq)
	if err != nil {
		var shed *shedError
		var bad *badRequest
		switch {
		case errors.As(err, &bad):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_, _ = w.Write(bad.Body)
		case errors.As(err, &shed):
			ra := shed.RetryAfter
			if ra < time.Second {
				ra = time.Second
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds()+0.5)))
			writeJSON(w, http.StatusTooManyRequests, errorDoc{
				Error: err.Error(), Nodes: shed.Nodes, Attempts: shed.Attempts,
			})
		case errors.Is(err, ErrNoNodes):
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		}
		return
	}
	status := http.StatusAccepted
	if view.State == service.StateDone { // owner answered from its cache
		status = http.StatusOK
	}
	writeJSON(w, status, labelledViewOf(view, nodeID))
}

// labelledView decorates a node's job view with the shard that holds it.
type labelledView struct {
	service.View
	Node string `json:"node"`
}

func labelledViewOf(v service.View, node string) labelledView {
	return labelledView{View: v, Node: node}
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolve(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"id": e.id, "state": service.StateFailed, "error": e.lost, "node": e.node,
		})
		return
	}
	status, _, body, err := r.client.get(req.Context(), r.members.URL(e.node)+"/v1/jobs/"+e.id)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	if status == http.StatusOK {
		var v service.View
		if json.Unmarshal(body, &v) == nil {
			r.observeState(e, v.State)
			writeJSON(w, status, labelledViewOf(v, e.node))
			return
		}
	}
	passThrough(w, status, "application/json", body)
}

func (r *Router) handleResult(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolve(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: e.lost})
		return
	}
	url := r.members.URL(e.node) + "/v1/jobs/" + e.id + "/result"
	if raw := req.URL.RawQuery; raw != "" {
		url += "?" + raw
	}
	status, ctype, body, err := r.client.get(req.Context(), url)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	// The node's result handler encodes the job state in its status code:
	// 200 done, 500 failed, 410 cancelled, 202 still pending.
	switch status {
	case http.StatusOK:
		r.observeState(e, service.StateDone)
	case http.StatusInternalServerError:
		r.observeState(e, service.StateFailed)
	case http.StatusGone:
		r.observeState(e, service.StateCancelled)
	}
	passThrough(w, status, ctype, body)
}

func (r *Router) handleTrace(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolve(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: e.lost})
		return
	}
	status, ctype, body, err := r.client.get(req.Context(), r.members.URL(e.node)+"/v1/jobs/"+e.id+"/trace")
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	passThrough(w, status, ctype, body)
}

// handleSpans proxies a job's raw span log (the wire trace context) from
// its shard, the same document the dead-node harvest reads.
func (r *Router) handleSpans(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolve(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: e.lost, Node: e.node})
		return
	}
	status, ctype, body, err := r.client.get(req.Context(), r.members.URL(e.node)+"/v1/jobs/"+e.id+"/spans")
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	passThrough(w, status, ctype, body)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolve(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "job already failed: " + e.lost})
		return
	}
	status, ctype, body, err := r.client.del(req.Context(), r.members.URL(e.node)+"/v1/jobs/"+e.id)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	if status == http.StatusOK {
		var v service.View
		if json.Unmarshal(body, &v) == nil {
			r.observeState(e, v.State)
			writeJSON(w, status, labelledViewOf(v, e.node))
			return
		}
	}
	passThrough(w, status, ctype, body)
}

func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	type nodeJobs struct {
		Jobs []service.View `json:"jobs"`
	}
	var out []labelledView
	for _, id := range r.members.Peekable() {
		status, _, body, err := r.client.get(req.Context(), r.members.URL(id)+"/v1/jobs")
		if err != nil || status != http.StatusOK {
			continue
		}
		var doc nodeJobs
		if json.Unmarshal(body, &doc) != nil {
			continue
		}
		for _, v := range doc.Jobs {
			out = append(out, labelledViewOf(v, id))
		}
	}
	if out == nil {
		out = []labelledView{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.FederatedStats(req.Context()))
}

// handleStream is the federated live feed: every node's SSE events,
// node-labelled, multiplexed through the gateway hub, plus a periodic
// merged cluster-stats event the per-node streams cannot provide.
func (r *Router) handleStream(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: "streaming unsupported"})
		return
	}
	interval := r.cfg.StreamInterval
	if q := req.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad interval: " + err.Error()})
			return
		}
		interval = d
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}

	events, cancel := r.hub.Subscribe(64)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeCluster := func() bool {
		data, err := json.Marshal(r.FederatedStats(req.Context()))
		if err != nil {
			return false
		}
		return writeSSE(w, "cluster", data)
	}
	if !writeCluster() {
		return
	}
	fl.Flush()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	// Heartbeats are SSE comment lines (leading ':'), ignored by clients
	// per spec; they keep idle federated streams alive through proxies.
	hb := time.NewTicker(r.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return // hub closed: gateway stopping
			}
			if !writeSSE(w, ev.Name, ev.Data) {
				return
			}
			fl.Flush()
		case <-tick.C:
			if !writeCluster() {
				return
			}
			fl.Flush()
		case <-hb.C:
			if _, err := w.Write([]byte(": heartbeat\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// handleCatalogue proxies a static catalogue endpoint (identical on every
// node) from the first member that answers.
func (r *Router) handleCatalogue(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		for _, id := range r.members.Peekable() {
			status, ctype, body, err := r.client.get(req.Context(), r.members.URL(id)+path)
			if err != nil || status != http.StatusOK {
				continue
			}
			passThrough(w, status, ctype, body)
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: ErrNoNodes.Error()})
	}
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	ring := r.ring.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"members":       r.members.Snapshot(),
		"ring":          map[string]any{"nodes": ring.Nodes(), "vnodes": ring.VNodes()},
		"gateway":       r.Counters(),
		"in_flight":     r.inFlight(),
		"live_sessions": r.liveSessions(),
	})
}

func (r *Router) handleNodeJoin(w http.ResponseWriter, req *http.Request) {
	var mem Member
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mem); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad member document: " + err.Error()})
		return
	}
	if err := r.AddMember(mem); err != nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"status": "joined", "node": mem.ID})
}

func (r *Router) handleNodeDrain(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if err := r.DrainNode(req.Context(), id); err != nil {
		status := http.StatusBadGateway
		if r.members.URL(id) == "" {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"status": "draining", "node": id})
}

// handleMetrics serves the gateway's own observability: cumulative routing
// counters, rolling route/peek/failover windows, and process health, in
// the Prometheus text format by default or JSON on request.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	m := r.Metrics(time.Now())
	if req.URL.Query().Get("format") == "json" ||
		strings.Contains(req.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, m)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(m.Prometheus()))
}

// handleHealthz reports gateway liveness: healthy while at least one
// member is routable, 503 degraded otherwise (a load balancer in front of
// several gateways should stop routing here).
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	states := map[NodeState]int{}
	for _, m := range r.members.Snapshot() {
		states[m.State]++
	}
	doc := map[string]any{
		"status": "ok",
		"nodes":  map[string]int{"up": states[NodeUp], "draining": states[NodeDraining], "down": states[NodeDown]},
	}
	if states[NodeUp] == 0 {
		doc["status"] = "degraded"
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// passThrough copies a node response to the client unchanged.
func passThrough(w http.ResponseWriter, status int, ctype string, body []byte) {
	if ctype != "" {
		w.Header().Set("Content-Type", ctype)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSON serializes a response document (indented, matching the nodes).
func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// writeSSE emits one Server-Sent Event frame.
func writeSSE(w http.ResponseWriter, name string, data []byte) bool {
	if _, err := w.Write([]byte("event: " + name + "\ndata: ")); err != nil {
		return false
	}
	if _, err := w.Write(data); err != nil {
		return false
	}
	_, err := w.Write([]byte("\n\n"))
	return err == nil
}
