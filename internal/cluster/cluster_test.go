package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// startNode boots one in-process advectd node with a cluster identity.
// The caller owns shutdown — register the server with a testCluster (or
// close it explicitly) so teardown happens after the gateway stops; the
// gateway holds a long-lived SSE connection to every node, so closing a
// node server before the router stops blocks forever.
func startNode(t *testing.T, id string) (Member, *httptest.Server) {
	t.Helper()
	// DrainTimeout is generous because -race inflates job runtimes; a test
	// drain must never hit the cancellation cliff.
	s := service.New(service.Config{
		NodeID:         id,
		StreamInterval: 200 * time.Millisecond,
		DrainTimeout:   2 * time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	return Member{ID: id, URL: ts.URL}, ts
}

type testCluster struct {
	router *Router
	gw     *httptest.Server
	nodes  map[string]*httptest.Server
}

// startCluster boots n real advectd nodes, a gateway over them, and the
// gateway's background loops. Teardown runs in dependency order: gateway
// first, then the router's loops (releasing the SSE connections), then the
// node servers.
func startCluster(t *testing.T, cfg Config, ids ...string) *testCluster {
	t.Helper()
	tc := &testCluster{nodes: map[string]*httptest.Server{}}
	for _, id := range ids {
		m, ts := startNode(t, id)
		cfg.Members = append(cfg.Members, m)
		tc.nodes[id] = ts
	}
	tc.router = NewRouter(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	tc.router.Start(ctx)
	tc.gw = httptest.NewServer(tc.router.Handler())
	t.Cleanup(func() {
		tc.gw.Close()
		cancel()
		tc.router.Stop()
		for _, ts := range tc.nodes {
			ts.Close()
		}
	})
	return tc
}

// killNode severs a node mid-run the way a crash would: client connections
// (including the gateway's open SSE stream) drop immediately, then the
// listener closes. A plain Close would wait on the SSE connection forever.
func (tc *testCluster) killNode(id string) {
	tc.nodes[id].CloseClientConnections()
	tc.nodes[id].Close()
}

// gwView is the gateway's labelled job view as a client decodes it.
type gwView struct {
	ID       string        `json:"id"`
	State    service.State `json:"state"`
	CacheKey string        `json:"cache_key"`
	CacheHit bool          `json:"cache_hit"`
	Error    string        `json:"error"`
	Node     string        `json:"node"`
	TraceID  string        `json:"trace_id"`
}

func (tc *testCluster) submit(t *testing.T, body string) (int, gwView) {
	t.Helper()
	resp, err := http.Post(tc.gw.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v gwView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, v
}

func (tc *testCluster) waitDone(t *testing.T, id string) gwView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(tc.gw.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v gwView
		decodeErr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && decodeErr == nil {
			if v.State == service.StateDone {
				return v
			}
			if v.State.Terminal() {
				t.Fatalf("job %s landed in %s (error %q), want done", id, v.State, v.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done before deadline (last status %d, state %s)", id, resp.StatusCode, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (tc *testCluster) clusterStats(t *testing.T) ClusterStats {
	t.Helper()
	resp, err := http.Get(tc.gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode cluster stats: %v", err)
	}
	return st
}

func nodeJobCount(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Jobs []service.View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode node job list: %v", err)
	}
	return len(doc.Jobs)
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fastBody is a distinct cheap problem per index (milliseconds).
func fastBody(i int) string {
	return fmt.Sprintf(`{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":%d,"tasks":2}}`, 2+i)
}

// slowBody is a distinct problem per index that runs long enough (a couple
// hundred milliseconds, several seconds under -race) to be in flight when
// a test kills or drains its node, without making the batch take minutes
// under the race detector. The failover assertions stay valid even if a
// victim-side job finishes just before the kill: the gateway observed no
// terminal poll, so the fingerprint is rerouted and re-executed on a
// survivor either way.
func slowBody(i int) string {
	return fmt.Sprintf(`{"type":"simulate","simulate":{"kind":"bulk","n":48,"steps":%d,"tasks":2}}`, 100+i)
}

// TestClusterRoutesToOwner: the gateway forwards each submission to the
// shard the hash ring names for its fingerprint, job ids carry the node
// prefix, and status/result stay reachable through the gateway.
func TestClusterRoutesToOwner(t *testing.T) {
	tc := startCluster(t, Config{}, "n1", "n2", "n3")
	for i := 0; i < 5; i++ {
		status, v := tc.submit(t, fastBody(i))
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, status)
		}
		if owner := tc.router.Ring().Lookup(v.CacheKey); v.Node != owner {
			t.Errorf("submit %d landed on %s, ring owner is %s", i, v.Node, owner)
		}
		if !strings.HasPrefix(v.ID, v.Node+"-job-") {
			t.Errorf("submit %d: id %q lacks the %q node prefix", i, v.ID, v.Node)
		}
		done := tc.waitDone(t, v.ID)
		if done.Node != v.Node {
			t.Errorf("job %s moved from %s to %s without a failure", v.ID, v.Node, done.Node)
		}
		resp, err := http.Get(tc.gw.URL + "/v1/jobs/" + v.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("result for %s: status %d", v.ID, resp.StatusCode)
		}
	}
}

// TestClusterCacheAffinityAcrossJoin: results computed before a node joins
// stay cache hits afterwards — keys the ring re-homes to the newcomer are
// served by peeking the sibling that still holds them and seeding the new
// owner, not by re-executing.
func TestClusterCacheAffinityAcrossJoin(t *testing.T) {
	tc := startCluster(t, Config{}, "n1", "n2")
	const keys = 12
	bodies := make([]string, keys)
	fps := make([]string, keys)
	for i := range bodies {
		bodies[i] = fastBody(i)
		status, v := tc.submit(t, bodies[i])
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, status)
		}
		fps[i] = v.CacheKey
		tc.waitDone(t, v.ID)
	}
	for i := range bodies {
		status, v := tc.submit(t, bodies[i])
		if status != http.StatusOK || !v.CacheHit {
			t.Fatalf("warm resubmit %d: status %d, cache_hit %v (want 200, true)", i, status, v.CacheHit)
		}
	}

	before := tc.router.Ring()
	m3, ts3 := startNode(t, "n3")
	tc.nodes["n3"] = ts3 // owned by the cluster teardown from here on
	memberDoc, err := json.Marshal(m3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.gw.URL+"/v1/nodes", "application/json", strings.NewReader(string(memberDoc)))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("join: status %d", resp.StatusCode)
	}
	after := tc.router.Ring()
	if len(after.Nodes()) != 3 {
		t.Fatalf("ring after join has nodes %v, want 3", after.Nodes())
	}

	moved := 0
	for i, fp := range fps {
		if before.Lookup(fp) == after.Lookup(fp) {
			continue
		}
		if after.Lookup(fp) != "n3" {
			t.Errorf("key %d moved to %s, minimal remap says only the newcomer gains keys", i, after.Lookup(fp))
		}
		moved++
		status, v := tc.submit(t, bodies[i])
		if status != http.StatusOK || !v.CacheHit {
			t.Errorf("re-homed key %d: status %d, cache_hit %v (want a seeded hit on the new owner)", i, status, v.CacheHit)
		}
		if v.Node != "n3" {
			t.Errorf("re-homed key %d answered by %s, want n3", i, v.Node)
		}
	}
	// The ring is deterministic, so this is a constant of the test, not a
	// flake: with 12 keys and a third node joining, ≈4 keys must move.
	if moved == 0 {
		t.Fatalf("no key moved to the joining node; enlarge the key set")
	}
	c := tc.router.Counters()
	if c.PeekHits < uint64(moved) {
		t.Errorf("PeekHits = %d, want ≥ %d (one per re-homed key)", c.PeekHits, moved)
	}
	if c.Seeds < uint64(moved) {
		t.Errorf("Seeds = %d, want ≥ %d", c.Seeds, moved)
	}
}

// startStub boots a fake shard whose submit behavior the test scripts;
// health answers up and the cache always misses.
func startStub(t *testing.T, id string, onSubmit func(n int64, w http.ResponseWriter)) (Member, *atomic.Int64) {
	t.Helper()
	submits := &atomic.Int64{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		_, _ = w.Write([]byte(`{"status":"ok","node":"` + id + `"}`))
	})
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	mux.HandleFunc("PUT /v1/cache/{key}", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		onSubmit(submits.Add(1), w)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return Member{ID: id, URL: ts.URL}, submits
}

func acceptQueued(id string) func(n int64, w http.ResponseWriter) {
	return func(n int64, w http.ResponseWriter) {
		w.WriteHeader(http.StatusAccepted)
		_, _ = fmt.Fprintf(w, `{"id":"%s-job-%06d","state":"queued"}`, id, n)
	}
}

func shed(retryAfter string) func(n int64, w http.ResponseWriter) {
	return func(n int64, w http.ResponseWriter) {
		w.Header().Set("Retry-After", retryAfter)
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"queue full"}`))
	}
}

func stubRequest() service.Request {
	return service.Request{
		Type:     service.TypeSimulate,
		Simulate: &service.SimulateRequest{Kind: "bulk", N: 16, Steps: 3, Tasks: 2},
	}
}

// stubOwner orders the two stub ids so the first is the ring owner of the
// stub request's fingerprint.
func stubOwner(fp string) (string, string) {
	ring := NewRing([]string{"s1", "s2"}, 0)
	if ring.Lookup(fp) == "s1" {
		return "s1", "s2"
	}
	return "s2", "s1"
}

// TestClusterHonorsBriefRetryAfter: a 429 whose Retry-After fits inside
// RetryWait is absorbed by retrying the owner in place — the job stays on
// the shard with cache affinity instead of failing over.
func TestClusterHonorsBriefRetryAfter(t *testing.T) {
	req := stubRequest()
	ownerID, otherID := stubOwner(req.CacheKey())
	mOwner, ownerSubmits := startStub(t, ownerID, func(n int64, w http.ResponseWriter) {
		if n == 1 {
			shed("1")(n, w)
			return
		}
		acceptQueued(ownerID)(n, w)
	})
	mOther, otherSubmits := startStub(t, otherID, acceptQueued(otherID))
	r := NewRouter(Config{Members: []Member{mOwner, mOther}, RetryWait: 2 * time.Second})

	view, nodeID, err := r.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if nodeID != ownerID {
		t.Errorf("accepted by %s, want the owner %s (brief retry, not failover)", nodeID, ownerID)
	}
	if !strings.HasPrefix(view.ID, ownerID+"-job-") {
		t.Errorf("job id %q not from the owner", view.ID)
	}
	if got := ownerSubmits.Load(); got != 2 {
		t.Errorf("owner saw %d submits, want 2 (shed then retry)", got)
	}
	if got := otherSubmits.Load(); got != 0 {
		t.Errorf("other shard saw %d submits, want 0", got)
	}
	c := r.Counters()
	if c.BriefRetries != 1 || c.Failovers != 0 || c.Submits != 1 {
		t.Errorf("counters = %+v, want 1 brief retry, 0 failovers, 1 submit", c)
	}
}

// TestClusterFailsOverOnLongRetryAfter: a 429 advertising a wait longer
// than RetryWait means the shard is genuinely backed up — the gateway moves
// to the next ring node immediately instead of stalling the client.
func TestClusterFailsOverOnLongRetryAfter(t *testing.T) {
	req := stubRequest()
	ownerID, otherID := stubOwner(req.CacheKey())
	mOwner, ownerSubmits := startStub(t, ownerID, shed("30"))
	mOther, otherSubmits := startStub(t, otherID, acceptQueued(otherID))
	r := NewRouter(Config{Members: []Member{mOwner, mOther}, RetryWait: time.Second})

	start := time.Now()
	_, nodeID, err := r.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if nodeID != otherID {
		t.Errorf("accepted by %s, want failover to %s", nodeID, otherID)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failover took %v; a 30s Retry-After must not be slept on", elapsed)
	}
	if got := ownerSubmits.Load(); got != 1 {
		t.Errorf("owner saw %d submits, want exactly 1 (no in-place retry)", got)
	}
	if got := otherSubmits.Load(); got != 1 {
		t.Errorf("other shard saw %d submits, want 1", got)
	}
	c := r.Counters()
	if c.Failovers != 1 || c.BriefRetries != 0 {
		t.Errorf("counters = %+v, want 1 failover, 0 brief retries", c)
	}
}

// TestClusterShedsWhenAllReject: when every shard sheds, the gateway's own
// 429 carries the longest Retry-After any shard advertised.
func TestClusterShedsWhenAllReject(t *testing.T) {
	req := stubRequest()
	ownerID, otherID := stubOwner(req.CacheKey())
	mOwner, ownerSubmits := startStub(t, ownerID, shed("30"))
	mOther, otherSubmits := startStub(t, otherID, shed("7"))
	r := NewRouter(Config{Members: []Member{mOwner, mOther}, RetryWait: time.Second})
	gw := httptest.NewServer(r.Handler())
	t.Cleanup(gw.Close)

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gw.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After = %q, want the longest shard estimate \"30\"", got)
	}
	if ownerSubmits.Load() != 1 || otherSubmits.Load() != 1 {
		t.Errorf("submits = %d/%d, want exactly one per shard", ownerSubmits.Load(), otherSubmits.Load())
	}
	if c := r.Counters(); c.Shed != 1 {
		t.Errorf("Shed = %d, want 1", c.Shed)
	}
}
