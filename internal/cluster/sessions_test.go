package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/session"
)

// startSessionNode boots one in-process advectd node with a session store,
// mirroring startNode for the session tests.
func startSessionNode(t *testing.T, id string) (Member, *httptest.Server) {
	t.Helper()
	s := service.New(service.Config{
		NodeID:         id,
		StreamInterval: 200 * time.Millisecond,
		DrainTimeout:   2 * time.Minute,
		SessionDir:     t.TempDir(),
	})
	ts := httptest.NewServer(s.Handler())
	return Member{ID: id, URL: ts.URL}, ts
}

// startSessionCluster is startCluster with session-enabled nodes and a
// fast checkpoint replication sweep.
func startSessionCluster(t *testing.T, cfg Config, ids ...string) *testCluster {
	t.Helper()
	tc := &testCluster{nodes: map[string]*httptest.Server{}}
	for _, id := range ids {
		m, ts := startSessionNode(t, id)
		cfg.Members = append(cfg.Members, m)
		tc.nodes[id] = ts
	}
	tc.router = NewRouter(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	tc.router.Start(ctx)
	tc.gw = httptest.NewServer(tc.router.Handler())
	t.Cleanup(func() {
		tc.gw.Close()
		cancel()
		tc.router.Stop()
		for _, ts := range tc.nodes {
			ts.Close()
		}
	})
	return tc
}

// gwSession is the gateway's labelled session view as a client decodes it.
type gwSession struct {
	session.View
	Node string `json:"node"`
}

func (tc *testCluster) createSession(t *testing.T, body string) (int, gwSession) {
	t.Helper()
	resp, err := http.Post(tc.gw.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v gwSession
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode session response: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, v
}

func (tc *testCluster) getSession(t *testing.T, id string) gwSession {
	t.Helper()
	v, status := tc.pollSession(t, id)
	if status != http.StatusOK {
		t.Fatalf("session poll: status %d", status)
	}
	return v
}

// pollSession is the non-fatal variant: it hands back the status code so
// failover loops can ride out the window where the owner is dead but the
// health sweep has not yet re-homed its sessions (polls proxy to the
// corpse and 502 until the forwarding pointer exists).
func (tc *testCluster) pollSession(t *testing.T, id string) (gwSession, int) {
	t.Helper()
	resp, err := http.Get(tc.gw.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v gwSession
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return v, resp.StatusCode
}

// TestClusterSessionFailover is the session layer's crash contract
// (satellite of the durability e2e): a session running on one shard of a
// 2-node cluster loses its owner mid-segment; the gateway, which has been
// replicating the session's checkpoints, re-creates it on the survivor
// seeded from the last replica, the old id keeps answering through the
// forwarding chain, and the trajectory finishes under the same trace id.
func TestClusterSessionFailover(t *testing.T) {
	tc := startSessionCluster(t, Config{
		HealthInterval:      50 * time.Millisecond,
		FailThreshold:       2,
		SessionSyncInterval: 50 * time.Millisecond,
	}, "n1", "n2")

	status, created := tc.createSession(t,
		`{"simulate":{"kind":"bulk","n":16,"steps":9000},"segment":300}`)
	if status != http.StatusAccepted {
		t.Fatalf("create: status %d", status)
	}
	if created.Node == "" || created.TraceID == "" {
		t.Fatalf("created session %+v: missing node label or minted trace id", created)
	}
	owner := created.Node

	// Wait until the gateway holds a checkpoint replica, so the resume is
	// seeded rather than a from-scratch rerun.
	waitFor(t, 60*time.Second, "checkpoint replicated to gateway", func() bool {
		if v := tc.getSession(t, created.ID); v.State.Terminal() {
			t.Fatalf("session finished (%s at step %d) before the test could kill its owner; grow the problem",
				v.State, v.DoneSteps)
		}
		return tc.router.Counters().CheckpointSyncs >= 1
	})

	tc.killNode(owner)
	waitFor(t, 10*time.Second, "owner marked down", func() bool {
		return tc.router.Members().State(owner) == NodeDown
	})

	// The old id answers through the forwarding chain; the session finishes
	// on the survivor from the replicated checkpoint.
	deadline := time.Now().Add(120 * time.Second)
	var final gwSession
	for {
		v, status := tc.pollSession(t, created.ID)
		if status != http.StatusOK {
			// Dead-owner window: the sweep hasn't re-homed the session yet.
			if time.Now().After(deadline) {
				t.Fatalf("session still unreachable (status %d) after failover", status)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		final = v
		if final.State == session.StateDone {
			break
		}
		if final.State == session.StateFailed {
			t.Fatalf("session failed after failover: %s", final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %s at step %d after failover", final.State, final.DoneSteps)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Node != "n1" && final.Node != "n2" {
		t.Fatalf("final node label %q", final.Node)
	}
	if final.Node == owner {
		t.Fatalf("session finished on the dead owner %s", owner)
	}
	if final.DoneSteps != 9000 {
		t.Fatalf("finished at step %d, want 9000", final.DoneSteps)
	}
	if final.Resumes < 1 {
		t.Fatal("survivor session shows no resume — it was re-run from scratch, not seeded")
	}
	if final.TraceID != created.TraceID {
		t.Fatalf("trace id changed across failover: %q -> %q (one trajectory, one trace)",
			created.TraceID, final.TraceID)
	}

	c := tc.router.Counters()
	if c.SessionResumes != 1 {
		t.Errorf("SessionResumes = %d, want 1", c.SessionResumes)
	}
	if c.SessionRoutes != 2 {
		t.Errorf("SessionRoutes = %d, want 2 (create + failover resume)", c.SessionRoutes)
	}

	// The federated stats merge the survivor's session counters, and the
	// gateway no longer counts the session live.
	stats := tc.clusterStats(t)
	if stats.Cluster.Sessions == nil || stats.Cluster.Sessions.Done < 1 {
		t.Errorf("merged session stats %+v missing the finished session", stats.Cluster.Sessions)
	}
	if stats.LiveSessions != 0 {
		t.Errorf("gateway still counts %d sessions live", stats.LiveSessions)
	}
}

// TestClusterSessionRoutingAndProxy covers the calm-weather session
// surface: fingerprint routing, the merged list, pause/resume and fork
// proxies, and checkpoint reads through the gateway.
func TestClusterSessionRoutingAndProxy(t *testing.T) {
	tc := startSessionCluster(t, Config{
		HealthInterval:      50 * time.Millisecond,
		SessionSyncInterval: 50 * time.Millisecond,
	}, "n1", "n2")

	status, v := tc.createSession(t, `{"simulate":{"kind":"bulk","n":8,"steps":40},"segment":10,"retain":4}`)
	if status != http.StatusAccepted {
		t.Fatalf("create: status %d", status)
	}

	waitFor(t, 60*time.Second, "session done", func() bool {
		return tc.getSession(t, v.ID).State == session.StateDone
	})

	// Identical scenarios route to the same shard: the fingerprint owns the
	// placement, so re-creating lands where the checkpoints already live.
	status2, v2 := tc.createSession(t, `{"simulate":{"kind":"bulk","n":8,"steps":40},"segment":10,"retain":4}`)
	if status2 != http.StatusAccepted {
		t.Fatalf("re-create: status %d", status2)
	}
	if v2.Node != v.Node {
		t.Errorf("same scenario routed to %s then %s; fingerprint routing must be sticky", v.Node, v2.Node)
	}

	// Fork through the gateway: the child runs on the parent's shard.
	resp, err := http.Post(tc.gw.URL+"/v1/sessions/"+v.ID+"/fork", "application/json",
		strings.NewReader(`{"at_step":20,"total_steps":60,"threads":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var child gwSession
	if err := json.NewDecoder(resp.Body).Decode(&child); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fork: status %d", resp.StatusCode)
	}
	if child.Node != v.Node {
		t.Errorf("fork child on %s, parent on %s", child.Node, v.Node)
	}
	waitFor(t, 60*time.Second, "fork child done", func() bool {
		return tc.getSession(t, child.ID).State == session.StateDone
	})

	// Checkpoint bytes read through the gateway, headers intact.
	cr, err := http.Get(tc.gw.URL + "/v1/sessions/" + v.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(cr.Body)
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("checkpoint via gateway: status %d (%d bytes)", cr.StatusCode, len(blob))
	}
	if got := cr.Header.Get(service.SessionStepHeader); got != "40" {
		t.Errorf("checkpoint step header %q, want 40", got)
	}

	// The merged list shows all three sessions with node labels.
	lr, err := http.Get(tc.gw.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sessions []gwSession `json:"sessions"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(list.Sessions) != 3 {
		t.Fatalf("merged list has %d sessions, want 3", len(list.Sessions))
	}
	for _, s := range list.Sessions {
		if s.Node == "" {
			t.Errorf("session %s missing its node label", s.ID)
		}
	}

	// Pause/resume proxy: conflict on a finished session comes back 409.
	pr, err := http.Post(tc.gw.URL+"/v1/sessions/"+v.ID+"/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusConflict {
		t.Errorf("pause done session via gateway: status %d, want 409", pr.StatusCode)
	}

	// Unknown ids are the gateway's 404, not a proxied one.
	nr, err := http.Get(tc.gw.URL + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, nr.Body)
	nr.Body.Close()
	if nr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session via gateway: status %d, want 404", nr.StatusCode)
	}
}
