package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// GatewayTelemetry aggregates the gateway's rolling routing windows: how
// long submissions take to land, how many dispatch attempts they need, how
// often the sibling-cache peek pays off, and how often the router falls
// back to retries, failovers, and dead-node reroutes. It is the gateway
// analog of service.Telemetry — GatewayCounters stay cumulative for
// Prometheus, everything here ages out as the window rolls.
type GatewayTelemetry struct {
	window time.Duration
	bucket time.Duration

	route     *telemetry.Window // accepted-submission routing latency (seconds)
	attempts  *telemetry.Window // dispatch attempts per accepted submission
	peekHits  *telemetry.Window // 1 per peek fan-out that found the result, else 0
	retries   *telemetry.Window // brief in-place Retry-After waits honored
	failovers *telemetry.Window // dispatch attempts abandoned for a ring successor
	reroutes  *telemetry.Window // dead-node resubmissions
	shed      *telemetry.Window // submissions rejected cluster-wide

	mu      sync.Mutex
	perNode map[string]*telemetry.Window // routing latency per accepting node
}

// NewGatewayTelemetry sizes every window to span in 60 buckets, matching
// the per-node telemetry cadence so federated documents line up.
func NewGatewayTelemetry(span time.Duration) *GatewayTelemetry {
	bucket := span / 60
	dur := telemetry.DurationBounds()
	return &GatewayTelemetry{
		window:    span,
		bucket:    bucket,
		route:     telemetry.NewWindow(span, bucket, dur),
		attempts:  telemetry.NewWindow(span, bucket, telemetry.LinearBounds(8, 8)),
		peekHits:  telemetry.NewWindow(span, bucket, nil),
		retries:   telemetry.NewWindow(span, bucket, nil),
		failovers: telemetry.NewWindow(span, bucket, nil),
		reroutes:  telemetry.NewWindow(span, bucket, nil),
		shed:      telemetry.NewWindow(span, bucket, nil),
		perNode:   map[string]*telemetry.Window{},
	}
}

// RecordRoute records one accepted submission: end-to-end routing latency,
// the node that took it, and how many dispatches it cost.
func (t *GatewayTelemetry) RecordRoute(now time.Time, node string, d time.Duration, attempts int) {
	if t == nil {
		return
	}
	t.route.Observe(now, d.Seconds())
	t.attempts.Observe(now, float64(attempts))
	t.mu.Lock()
	w := t.perNode[node]
	if w == nil {
		w = telemetry.NewWindow(t.window, t.bucket, telemetry.DurationBounds())
		t.perNode[node] = w
	}
	t.mu.Unlock()
	w.Observe(now, d.Seconds())
}

// RecordPeek records the outcome of one sibling-cache peek fan-out; the
// window mean is then the peek hit rate.
func (t *GatewayTelemetry) RecordPeek(now time.Time, hit bool) {
	if t == nil {
		return
	}
	v := 0.0
	if hit {
		v = 1
	}
	t.peekHits.Observe(now, v)
}

// RecordRetry counts one brief in-place Retry-After wait.
func (t *GatewayTelemetry) RecordRetry(now time.Time) {
	if t == nil {
		return
	}
	t.retries.Observe(now, 1)
}

// RecordFailover counts one dispatch attempt abandoned for a ring
// successor.
func (t *GatewayTelemetry) RecordFailover(now time.Time) {
	if t == nil {
		return
	}
	t.failovers.Observe(now, 1)
}

// RecordReroute counts one fingerprint resubmitted after a node death.
func (t *GatewayTelemetry) RecordReroute(now time.Time) {
	if t == nil {
		return
	}
	t.reroutes.Observe(now, 1)
}

// RecordShed counts one submission rejected cluster-wide.
func (t *GatewayTelemetry) RecordShed(now time.Time) {
	if t == nil {
		return
	}
	t.shed.Observe(now, 1)
}

// GatewayWindowStats is the rolling-window half of the gateway metrics
// document.
type GatewayWindowStats struct {
	WindowSec float64 `json:"window_sec"`
	// Route is the routing-latency distribution of accepted submissions;
	// RoutePerNode splits it by the node that accepted.
	Route        telemetry.Stats            `json:"route"`
	RoutePerNode map[string]telemetry.Stats `json:"route_per_node"`
	// Attempts is the dispatches-per-accepted-submission distribution
	// (mean 1 = every owner took its job first try).
	Attempts telemetry.Stats `json:"attempts"`
	// PeekHitRate is the fraction of sibling-cache fan-outs that found the
	// result somewhere; Peeks is the underlying distribution.
	PeekHitRate float64         `json:"peek_hit_rate"`
	Peeks       telemetry.Stats `json:"peeks"`
	Retries     telemetry.Stats `json:"retries"`
	Failovers   telemetry.Stats `json:"failovers"`
	Reroutes    telemetry.Stats `json:"reroutes"`
	Shed        telemetry.Stats `json:"shed"`
}

// Stats snapshots every window at now.
func (t *GatewayTelemetry) Stats(now time.Time) GatewayWindowStats {
	s := GatewayWindowStats{RoutePerNode: map[string]telemetry.Stats{}}
	if t == nil {
		return s
	}
	s.WindowSec = t.window.Seconds()
	s.Route = t.route.Stats(now)
	s.Attempts = t.attempts.Stats(now)
	s.Peeks = t.peekHits.Stats(now)
	s.PeekHitRate = s.Peeks.Mean
	s.Retries = t.retries.Stats(now)
	s.Failovers = t.failovers.Stats(now)
	s.Reroutes = t.reroutes.Stats(now)
	s.Shed = t.shed.Stats(now)
	t.mu.Lock()
	for node, w := range t.perNode {
		s.RoutePerNode[node] = w.Stats(now)
	}
	t.mu.Unlock()
	return s
}

// GatewayMetrics is the gateway GET /metrics document (?format=json): the
// cumulative routing counters, the rolling windows, and process health.
type GatewayMetrics struct {
	Now      time.Time           `json:"now"`
	Counters GatewayCounters     `json:"counters"`
	Window   GatewayWindowStats  `json:"window"`
	InFlight int                 `json:"in_flight"`
	Proc     telemetry.ProcStats `json:"proc"`
}

// Metrics assembles the gateway metrics document.
func (r *Router) Metrics(now time.Time) GatewayMetrics {
	return GatewayMetrics{
		Now:      now,
		Counters: r.Counters(),
		Window:   r.tele.Stats(now),
		InFlight: r.inFlight(),
		Proc:     telemetry.ReadProc(),
	}
}

// Prometheus renders the gateway metrics in the Prometheus text exposition
// format, every series prefixed advectgw_.
func (m GatewayMetrics) Prometheus() string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP advectgw_%s %s\n# TYPE advectgw_%s counter\n", name, help, name)
		fmt.Fprintf(&b, "advectgw_%s %d\n", name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP advectgw_%s %s\n# TYPE advectgw_%s gauge\n", name, help, name)
		fmt.Fprintf(&b, "advectgw_%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	counter("submits_total", "Submissions accepted somewhere in the cluster.", m.Counters.Submits)
	counter("failovers_total", "Submissions that left the owner shard for a ring successor.", m.Counters.Failovers)
	counter("brief_retries_total", "Short Retry-After hints honored on the owner in place.", m.Counters.BriefRetries)
	counter("peek_hits_total", "Sibling-cache probes that found the result.", m.Counters.PeekHits)
	counter("seeds_total", "Results replicated onto the owner after a peek hit.", m.Counters.Seeds)
	counter("reroutes_total", "Fingerprints re-submitted after a node death.", m.Counters.Reroutes)
	counter("deduped_total", "Dead-node jobs aliased onto an in-flight twin.", m.Counters.Deduped)
	counter("shed_total", "Submissions rejected cluster-wide.", m.Counters.Shed)
	gauge("in_flight_jobs", "Accepted jobs not yet observed terminal.", float64(m.InFlight))

	fmt.Fprintf(&b, "# HELP advectgw_route_latency_seconds Routing latency of accepted submissions over the window.\n")
	fmt.Fprintf(&b, "# TYPE advectgw_route_latency_seconds gauge\n")
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", m.Window.Route.P50}, {"0.95", m.Window.Route.P95}, {"0.99", m.Window.Route.P99}} {
		fmt.Fprintf(&b, "advectgw_route_latency_seconds{quantile=%q} %s\n",
			q.label, strconv.FormatFloat(q.v, 'g', -1, 64))
	}
	gauge("routes_per_sec", "Accepted submissions per second over the window.", m.Window.Route.PerSec)
	gauge("route_attempts_mean", "Mean dispatch attempts per accepted submission over the window.", m.Window.Attempts.Mean)
	gauge("peek_hit_rate", "Fraction of sibling-cache fan-outs that hit over the window.", m.Window.PeekHitRate)
	gauge("retries_per_sec", "Brief in-place retries per second over the window.", m.Window.Retries.PerSec)
	gauge("failovers_per_sec", "Failovers per second over the window.", m.Window.Failovers.PerSec)
	gauge("reroutes_per_sec", "Dead-node reroutes per second over the window.", m.Window.Reroutes.PerSec)

	fmt.Fprintf(&b, "# HELP advectgw_node_route_p99_seconds Per-node p99 routing latency over the window.\n")
	fmt.Fprintf(&b, "# TYPE advectgw_node_route_p99_seconds gauge\n")
	nodes := make([]string, 0, len(m.Window.RoutePerNode))
	for node := range m.Window.RoutePerNode {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		fmt.Fprintf(&b, "advectgw_node_route_p99_seconds{node=%q} %s\n",
			node, strconv.FormatFloat(m.Window.RoutePerNode[node].P99, 'g', -1, 64))
	}
	m.Proc.WriteProm(&b, "advectgw")
	return b.String()
}
