package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/session"
)

// sessionEntry is the gateway's record of one resumable session: the shard
// that owns it, its routing fingerprint, the encoded create request (kept
// so the session can be re-created elsewhere), and the newest checkpoint
// the sync loop has replicated off the owner. When the owner dies the
// replicated bytes seed a successor session on a survivor and the old id
// forwards to it, exactly like a rerouted job.
type sessionEntry struct {
	id       string
	node     string
	fp       string
	body     []byte // encoded SessionRequest, checkpoint field empty
	traceID  string
	terminal bool
	lost     string        // non-empty: owner died and the resume failed
	replaced *sessionEntry // forwarding pointer after a failover resume
	ckpt     []byte        // newest replicated checkpoint bytes
	ckptStep int64
}

// labelledSession decorates a node's session view with the shard that
// owns it.
type labelledSession struct {
	session.View
	Node string `json:"node"`
}

// handleSessionCreate routes a new session to the shard that owns its
// fingerprint. A session with no trace id gets one minted here, so the
// trajectory stays one logical trace however many owners it passes
// through. Shards that cannot take the session (draining, sessions
// disabled) fail over to the next ring successor.
func (r *Router) handleSessionCreate(w http.ResponseWriter, req *http.Request) {
	var sreq service.SessionRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	fp, err := service.SessionFingerprint(sreq)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if sreq.TraceID == "" {
		sreq.TraceID = obs.NewTraceID()
	}
	body, err := json.Marshal(sreq)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	e, status, respBody, err := r.routeSession(req.Context(), fp, sreq.TraceID, body)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	}
	if e == nil { // a shard answered with a client error; pass it through
		passThrough(w, status, "application/json", respBody)
		return
	}
	var v session.View
	if json.Unmarshal(respBody, &v) == nil {
		writeJSON(w, status, labelledSession{View: v, Node: e.node})
		return
	}
	passThrough(w, status, "application/json", respBody)
}

// routeSession walks the ring from the fingerprint's owner until a shard
// accepts the session. 4xx answers are the client's problem and stop the
// walk; 503 (draining or sessions disabled) and transport errors move to
// the next successor. On acceptance the session lands in the gateway
// table so status polls, the checkpoint sync loop, and dead-owner resumes
// can find it.
func (r *Router) routeSession(ctx context.Context, fp, traceID string, body []byte) (*sessionEntry, int, []byte, error) {
	ring := r.ring.Load()
	n := len(ring.Nodes())
	if n == 0 {
		return nil, 0, nil, ErrNoNodes
	}
	for attempt := 0; attempt < n; attempt++ {
		nodeID := ring.LookupOffset(fp, attempt)
		if r.members.State(nodeID) != NodeUp {
			continue
		}
		baseURL := r.members.URL(nodeID)
		status, _, respBody, err := r.client.postJSON(ctx, baseURL+"/v1/sessions", body)
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0, nil, ctx.Err()
			}
			r.log.Warn("session forward failed", "node", nodeID, "error", err, "trace_id", traceID)
			r.members.ReportFailure(nodeID, err.Error(), time.Now())
			continue
		}
		switch status {
		case http.StatusAccepted, http.StatusOK:
			var v session.View
			if err := json.Unmarshal(respBody, &v); err != nil {
				return nil, 0, nil, err
			}
			e := &sessionEntry{id: v.ID, node: nodeID, fp: fp, body: body, traceID: traceID}
			r.mu.Lock()
			r.sessTable[e.id] = e
			r.counters.SessionRoutes++
			r.mu.Unlock()
			r.log.Info("session routed", "node", nodeID, "session", v.ID,
				"fingerprint", fp, "trace_id", traceID, "failover", attempt > 0)
			return e, status, respBody, nil
		case http.StatusServiceUnavailable:
			r.log.Info("shard cannot host session, failing over", "node", nodeID, "trace_id", traceID)
			continue
		default:
			return nil, status, respBody, nil
		}
	}
	return nil, 0, nil, ErrNoNodes
}

// resolveSession follows a session id through any failover forwarding
// chain.
func (r *Router) resolveSession(id string) (*sessionEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.sessTable[id]
	if !ok {
		return nil, false
	}
	for e.replaced != nil {
		e = e.replaced
	}
	return e, true
}

// handleSessionStatus proxies a session poll to its current owner,
// following the failover chain, and marks the entry terminal once the
// owner reports it finished so the sync loop stops replicating it.
func (r *Router) handleSessionStatus(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolveSession(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"id": e.id, "state": session.StateFailed, "error": e.lost, "node": e.node,
		})
		return
	}
	status, _, body, err := r.client.get(req.Context(), r.members.URL(e.node)+"/v1/sessions/"+e.id)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	if status == http.StatusOK {
		var v session.View
		if json.Unmarshal(body, &v) == nil {
			r.observeSessionState(e, v.State)
			writeJSON(w, status, labelledSession{View: v, Node: e.node})
			return
		}
	}
	passThrough(w, status, "application/json", body)
}

// handleSessionList merges every reachable shard's session list,
// node-labelled, mirroring the merged job list.
func (r *Router) handleSessionList(w http.ResponseWriter, req *http.Request) {
	type nodeSessions struct {
		Sessions []session.View `json:"sessions"`
	}
	out := []labelledSession{}
	for _, id := range r.members.Peekable() {
		status, _, body, err := r.client.get(req.Context(), r.members.URL(id)+"/v1/sessions")
		if err != nil || status != http.StatusOK {
			continue
		}
		var doc nodeSessions
		if json.Unmarshal(body, &doc) != nil {
			continue
		}
		for _, v := range doc.Sessions {
			out = append(out, labelledSession{View: v, Node: id})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// handleSessionVerb proxies pause/resume to the session's current owner.
func (r *Router) handleSessionVerb(verb string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		e, ok := r.resolveSession(req.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
			return
		}
		if e.lost != "" {
			writeJSON(w, http.StatusConflict, errorDoc{Error: "session lost: " + e.lost})
			return
		}
		status, ctype, body, err := r.client.postJSON(req.Context(),
			r.members.URL(e.node)+"/v1/sessions/"+e.id+"/"+verb, nil)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
			return
		}
		passThrough(w, status, ctype, body)
	}
}

// handleSessionFork proxies a fork to the parent's owner and records the
// child in the gateway table — forks inherit the parent's shard (they
// read its retained checkpoints), so the child is tracked and replicated
// like any other session on that node.
func (r *Router) handleSessionFork(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolveSession(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "session lost: " + e.lost})
		return
	}
	body, err := readBody(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	status, ctype, respBody, err := r.client.postJSON(req.Context(),
		r.members.URL(e.node)+"/v1/sessions/"+e.id+"/fork", body)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	if status == http.StatusAccepted {
		var v session.View
		if json.Unmarshal(respBody, &v) == nil {
			child := &sessionEntry{id: v.ID, node: e.node, fp: v.Fingerprint, traceID: v.TraceID}
			r.mu.Lock()
			r.sessTable[child.id] = child
			r.mu.Unlock()
			writeJSON(w, status, labelledSession{View: v, Node: e.node})
			return
		}
	}
	passThrough(w, status, ctype, respBody)
}

// handleSessionCheckpoint proxies the raw-checkpoint read (the replication
// surface) from the session's current owner.
func (r *Router) handleSessionCheckpoint(w http.ResponseWriter, req *http.Request) {
	e, ok := r.resolveSession(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	if e.lost != "" {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "session lost: " + e.lost})
		return
	}
	url := r.members.URL(e.node) + "/v1/sessions/" + e.id + "/checkpoint"
	if raw := req.URL.RawQuery; raw != "" {
		url += "?" + raw
	}
	status, hdr, body, err := r.client.getFull(req.Context(), url)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorDoc{Error: "shard unreachable: " + err.Error(), Node: e.node})
		return
	}
	// Forward the step/fingerprint headers — they are the replication
	// metadata a puller needs to seed a successor session.
	for _, h := range []string{service.SessionStepHeader, service.SessionFPHeader} {
		if v := hdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	passThrough(w, status, hdr.Get("Content-Type"), body)
}

// observeSessionState marks an entry terminal once a poll shows the
// session finished, releasing it from the sync loop.
func (r *Router) observeSessionState(e *sessionEntry, st session.State) {
	if !st.Terminal() {
		return
	}
	r.mu.Lock()
	e.terminal = true
	r.mu.Unlock()
}

// sessionSyncLoop periodically replicates every live session's newest
// checkpoint off its owner into the gateway table. The replica is what
// makes a dead owner's sessions resumable elsewhere: advectd nodes do not
// talk to each other, so the gateway is the transport.
func (r *Router) sessionSyncLoop(ctx context.Context) {
	tick := time.NewTicker(r.cfg.SessionSyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.syncSessions(ctx)
		}
	}
}

// syncSessions pulls one checkpoint per live session. Fetch errors are
// left alone — the health sweep owns declaring nodes dead, and a stale
// replica still resumes the session, just further back.
func (r *Router) syncSessions(ctx context.Context) {
	r.mu.Lock()
	var live []*sessionEntry
	for _, e := range r.sessTable {
		if !e.terminal && e.replaced == nil && e.lost == "" {
			live = append(live, e)
		}
	}
	r.mu.Unlock()
	for _, e := range live {
		if r.members.State(e.node) != NodeUp {
			continue
		}
		data, step, err := r.client.checkpoint(ctx, r.members.URL(e.node), e.id)
		if err != nil || data == nil {
			continue
		}
		r.mu.Lock()
		if step > e.ckptStep || e.ckpt == nil {
			e.ckpt = data
			e.ckptStep = step
			r.counters.CheckpointSyncs++
		}
		r.mu.Unlock()
	}
}

// resumeDeadSessions re-homes a dead node's sessions: each one is
// re-created on a surviving shard seeded with the newest replicated
// checkpoint (from step zero when none replicated — slower, never wrong),
// under the same trace id, and the old id forwards to the successor. The
// companion of rerouteDead, for work that is a trajectory rather than a
// job.
func (r *Router) resumeDeadSessions(ctx context.Context, deadID string) {
	r.mu.Lock()
	var orphans []*sessionEntry
	for _, e := range r.sessTable {
		if e.node == deadID && !e.terminal && e.replaced == nil && e.lost == "" {
			orphans = append(orphans, e)
		}
	}
	r.mu.Unlock()

	for _, e := range orphans {
		if len(e.body) == 0 {
			// A fork recorded from its parent's shard: the gateway holds no
			// create request to replay, so the child cannot be re-homed.
			r.mu.Lock()
			e.lost = "node " + deadID + " died holding a forked session"
			e.terminal = true
			r.mu.Unlock()
			continue
		}
		var sreq service.SessionRequest
		if err := json.Unmarshal(e.body, &sreq); err != nil {
			continue
		}
		r.mu.Lock()
		sreq.Checkpoint = e.ckpt
		ckptStep := e.ckptStep
		r.mu.Unlock()
		body, err := json.Marshal(sreq)
		if err != nil {
			continue
		}
		succ, _, _, err := r.routeSession(ctx, e.fp, e.traceID, body)
		if err != nil || succ == nil {
			msg := "node " + deadID + " died and the session resume failed"
			if err != nil {
				msg += ": " + err.Error()
			}
			r.mu.Lock()
			e.lost = msg
			e.terminal = true
			r.mu.Unlock()
			r.log.Error("session resume failed", "session", e.id, "node", deadID,
				"trace_id", e.traceID, "error", err)
			continue
		}
		r.mu.Lock()
		e.replaced = succ
		r.counters.SessionResumes++
		r.mu.Unlock()
		r.log.Info("session resumed on survivor", "session", e.id, "from", deadID,
			"to", succ.node, "successor", succ.id, "checkpoint_step", ckptStep,
			"trace_id", e.traceID)
	}
}

// liveSessions counts gateway session entries not yet observed terminal.
func (r *Router) liveSessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.sessTable {
		if !e.terminal && e.replaced == nil {
			n++
		}
	}
	return n
}

// readBody slurps a request body for re-encoding-free proxying.
func readBody(req *http.Request) ([]byte, error) {
	defer req.Body.Close()
	return io.ReadAll(req.Body)
}
