// Package cluster is the scale-out layer of the reproduction: a gateway
// that fronts N advectd nodes and applies the paper's overlap discipline
// one level up. Routing, cache placement, and drain/rebalance all proceed
// concurrently with in-flight job execution — membership changes reroute
// *new* traffic while accepted jobs keep running where they are, the way
// the paper's best implementation keeps MPI traffic moving while the
// stencil computes.
//
// Jobs are sharded by their content-addressed fingerprint
// (service.Request.CacheKey, built on core.Fingerprint) over a consistent-
// hash ring with virtual nodes, so identical requests land on the same
// node and its LRU result cache stays hot; when membership changes move a
// key, the gateway peeks the sibling shards' caches and replicates the
// result to the new owner instead of recomputing it.
package cluster

import "sort"

// ringSeed fixes the vnode placement hash. The ring must be a pure
// function of the member names so every gateway (and every test) derives
// the identical key→node mapping.
const ringSeed = 0x61647665637464 // "advectd"

// Ring is an immutable consistent-hash ring: each member contributes
// VNodes virtual points placed by a deterministic hash, and a key belongs
// to the member owning the first point at or clockwise after the key's
// hash. Immutability is what keeps Lookup allocation- and lock-free on the
// submit hot path: membership changes build a new ring (WithNode /
// WithoutNode) and the router swaps an atomic pointer.
type Ring struct {
	vnodes int
	nodes  []string // sorted member names
	hashes []uint64 // vnode positions, sorted ascending
	owner  []int32  // owner[i] indexes nodes for hashes[i]
}

// DefaultVNodes is the virtual-node count per member: enough that the
// max/mean shard imbalance stays under ~15% for small clusters (asserted
// by the distribution test) while keeping ring rebuilds trivially cheap.
const DefaultVNodes = 160

// NewRing builds a ring over the given members. vnodes < 1 selects
// DefaultVNodes. Member order does not matter; an empty member list yields
// a ring whose Lookup returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	nodes := make([]string, len(members))
	copy(nodes, members)
	sort.Strings(nodes)
	r := &Ring{
		vnodes: vnodes,
		nodes:  nodes,
		hashes: make([]uint64, 0, len(nodes)*vnodes),
		owner:  make([]int32, 0, len(nodes)*vnodes),
	}
	type vnode struct {
		hash uint64
		node int32
	}
	points := make([]vnode, 0, len(nodes)*vnodes)
	for ni, name := range nodes {
		h := hashString(name) ^ ringSeed
		for v := 0; v < vnodes; v++ {
			// Derive each vnode position from the previous via an avalanche
			// mix: deterministic in (name, v), uncorrelated across v.
			h = mix64(h + 0x9e3779b97f4a7c15)
			points = append(points, vnode{hash: h, node: int32(ni)})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Ties (astronomically rare) break by node index so the mapping
		// stays independent of input order.
		return points[i].node < points[j].node
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.owner = append(r.owner, p.node)
	}
	return r
}

// Nodes returns the member names (sorted); the caller must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// WithNode returns a new ring with the member added (no-op copy if already
// present).
func (r *Ring) WithNode(name string) *Ring {
	for _, n := range r.nodes {
		if n == name {
			return NewRing(r.nodes, r.vnodes)
		}
	}
	return NewRing(append(append([]string{}, r.nodes...), name), r.vnodes)
}

// WithoutNode returns a new ring with the member removed.
func (r *Ring) WithoutNode(name string) *Ring {
	keep := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != name {
			keep = append(keep, n)
		}
	}
	return NewRing(keep, r.vnodes)
}

// Lookup returns the member owning key, or "" on an empty ring. It is the
// per-submit routing decision, so it must stay allocation-free and
// sub-microsecond (BENCH_cluster.json guards the measured contract; the
// hotpath annotation has advectlint enforce it statically).
//
//advect:hotpath
func (r *Ring) Lookup(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	i := r.search(hashString(key))
	return r.nodes[r.owner[i]]
}

// LookupOffset returns the skip-th *distinct* member clockwise from key's
// owner: skip 0 is the owner itself, skip 1 the first failover successor,
// and so on. It wraps modulo the member count, so any skip is valid on a
// non-empty ring. The gateway walks successors when the owner sheds load
// or is down.
func (r *Ring) LookupOffset(key string, skip int) string {
	n := len(r.nodes)
	if n == 0 {
		return ""
	}
	skip = skip % n
	i := r.search(hashString(key))
	seen := make([]bool, n)
	for {
		node := r.owner[i]
		if !seen[node] {
			if skip == 0 {
				return r.nodes[node]
			}
			seen[node] = true
			skip--
		}
		i++
		if i == len(r.hashes) {
			i = 0
		}
	}
}

// search returns the index of the first vnode at or after h (wrapping).
func (r *Ring) search(h uint64) int {
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hashes) {
		return 0
	}
	return lo
}

// hashString is FNV-1a 64 over the key bytes followed by an avalanche
// finalizer. FNV alone clusters on short common-prefix keys; the mix step
// spreads fingerprint-shaped keys evenly around the ring (the distribution
// test quantifies this).
//
//advect:hotpath
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a cheap, well-studied avalanche.
//
//advect:hotpath
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
