package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"testing"
)

// fingerprintKeys returns n keys shaped like the real routing keys: hex
// SHA-256 digests with a short type prefix, exactly what
// service.Request.CacheKey produces.
func fingerprintKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte("key-" + strconv.Itoa(i)))
		keys[i] = "sim-" + hex.EncodeToString(sum[:])
	}
	return keys
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
	}
	return names
}

// TestRingDeterministic: the mapping is a pure function of the member set,
// independent of insertion order — two gateways must agree on every key.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2"}, 64)
	c := NewRing([]string{"n1", "n2"}, 64).WithNode("n3")
	for _, key := range fingerprintKeys(500) {
		if a.Lookup(key) != b.Lookup(key) || a.Lookup(key) != c.Lookup(key) {
			t.Fatalf("key %s: rings disagree (%s, %s, %s)",
				key, a.Lookup(key), b.Lookup(key), c.Lookup(key))
		}
	}
}

// TestRingDistribution: with DefaultVNodes the shards stay balanced.
// Per-node key counts are not multinomial-uniform — each node's share is
// its total vnode arc length, so count variance is dominated by the arc
// spread (≈1/√vnodes relative) and a textbook chi-square against the
// uniform null rejects at any large key count. The meaningful tolerance
// is on the shares themselves: max/mean ≤ 1.25, min/mean ≥ 0.75, and the
// coefficient of variation of per-node shares ≤ 0.10 (observed ≈0.05 at
// 160 vnodes).
func TestRingDistribution(t *testing.T) {
	const nKeys = 20000
	for _, nNodes := range []int{3, 5, 8} {
		r := NewRing(nodeNames(nNodes), 0) // 0 = DefaultVNodes
		counts := map[string]int{}
		for _, key := range fingerprintKeys(nKeys) {
			counts[r.Lookup(key)]++
		}
		if len(counts) != nNodes {
			t.Fatalf("%d nodes: only %d received keys", nNodes, len(counts))
		}
		mean := float64(nKeys) / float64(nNodes)
		min, max := float64(nKeys), 0.0
		var sumSq float64
		for node, c := range counts {
			if float64(c) > max {
				max = float64(c)
			}
			if float64(c) < min {
				min = float64(c)
			}
			d := float64(c) - mean
			sumSq += d * d
			t.Logf("%d nodes: %s owns %d (%.2f of mean)", nNodes, node, c, float64(c)/mean)
		}
		if ratio := max / mean; ratio > 1.25 {
			t.Errorf("%d nodes: max/mean %.3f > 1.25", nNodes, ratio)
		}
		if ratio := min / mean; ratio < 0.75 {
			t.Errorf("%d nodes: min/mean %.3f < 0.75", nNodes, ratio)
		}
		if cv := math.Sqrt(sumSq/float64(nNodes)) / mean; cv > 0.10 {
			t.Errorf("%d nodes: share coefficient of variation %.3f > 0.10", nNodes, cv)
		}
	}
}

// TestRingMinimalRemap: adding a node to an N-node ring must move roughly
// K/(N+1) of K keys — the consistent-hashing contract that keeps cache
// affinity through membership changes. Concrete bounds: the moved fraction
// stays within a factor of 1.6 of ideal, and every moved key moves *to*
// the new node (never between old nodes).
func TestRingMinimalRemap(t *testing.T) {
	const nKeys = 20000
	keys := fingerprintKeys(nKeys)
	for _, nNodes := range []int{3, 5} {
		before := NewRing(nodeNames(nNodes), 0)
		after := before.WithNode("newcomer")
		moved := 0
		for _, key := range keys {
			was, is := before.Lookup(key), after.Lookup(key)
			if was == is {
				continue
			}
			moved++
			if is != "newcomer" {
				t.Fatalf("key %s moved between old nodes: %s -> %s", key, was, is)
			}
		}
		ideal := float64(nKeys) / float64(nNodes+1)
		frac := float64(moved) / float64(nKeys)
		t.Logf("%d+1 nodes: moved %d/%d (%.3f; ideal %.3f)",
			nNodes, moved, nKeys, frac, ideal/float64(nKeys))
		if float64(moved) > 1.6*ideal {
			t.Errorf("%d+1 nodes: %d keys moved, > 1.6× ideal %.0f", nNodes, moved, ideal)
		}
		if float64(moved) < ideal/1.6 {
			t.Errorf("%d+1 nodes: only %d keys moved, < ideal/1.6 %.0f", nNodes, moved, ideal/1.6)
		}
		// Removing the node again restores the exact original mapping.
		restored := after.WithoutNode("newcomer")
		for _, key := range keys[:2000] {
			if before.Lookup(key) != restored.Lookup(key) {
				t.Fatalf("key %s: remove did not restore ownership", key)
			}
		}
	}
}

// TestRingLookupOffset: offset 0 is the owner, successive offsets walk
// distinct members, and the walk covers the whole cluster.
func TestRingLookupOffset(t *testing.T) {
	r := NewRing(nodeNames(4), 0)
	for _, key := range fingerprintKeys(200) {
		if got, want := r.LookupOffset(key, 0), r.Lookup(key); got != want {
			t.Fatalf("key %s: offset 0 %s != owner %s", key, got, want)
		}
		seen := map[string]bool{}
		for skip := 0; skip < 4; skip++ {
			seen[r.LookupOffset(key, skip)] = true
		}
		if len(seen) != 4 {
			t.Fatalf("key %s: offsets 0..3 visited %d distinct nodes, want 4", key, len(seen))
		}
		// Wrapping: skip n ≡ skip 0.
		if r.LookupOffset(key, 4) != r.Lookup(key) {
			t.Fatalf("key %s: offset n did not wrap to owner", key)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate memberships the router can
// pass through while a cluster drains down.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Lookup("anything"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want \"\"", got)
	}
	if got := empty.LookupOffset("anything", 1); got != "" {
		t.Fatalf("empty ring LookupOffset = %q, want \"\"", got)
	}
	one := NewRing([]string{"solo"}, 0)
	for _, key := range fingerprintKeys(50) {
		if one.Lookup(key) != "solo" || one.LookupOffset(key, 3) != "solo" {
			t.Fatal("single-member ring must own every key at every offset")
		}
	}
}

// TestRingLookupAllocationFree asserts the hot-path contract directly (the
// ci.sh bench guard also enforces the measured ns/op bound).
func TestRingLookupAllocationFree(t *testing.T) {
	r := NewRing(nodeNames(5), 0)
	keys := fingerprintKeys(64)
	avg := testing.AllocsPerRun(1000, func() {
		for _, key := range keys {
			if r.Lookup(key) == "" {
				t.Fatal("lookup failed")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("Ring.Lookup allocates: %.1f allocs per 64 lookups", avg)
	}
}

// BenchmarkRingLookup is the BENCH_cluster.json guard: the per-submit
// routing decision must stay allocation-free and sub-microsecond.
func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(nodeNames(5), 0)
	keys := fingerprintKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Lookup(keys[i&1023]) == "" {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkRingBuild is informational: how expensive a membership change
// (full rebuild) is. Rebuilds happen per membership event, not per submit.
func BenchmarkRingBuild(b *testing.B) {
	names := nodeNames(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewRing(names, 0)
	}
}
