package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// NodeBundle is one member's contribution to the cluster postmortem: its
// node-stamped GET /v1/debug/bundle document, or an explicit error when
// the node could not answer. Unlike federated stats — where a down node
// silently contributes nothing to the merged window — a postmortem must
// say which nodes are missing: the gap is usually the story.
type NodeBundle struct {
	ID    string    `json:"id"`
	State NodeState `json:"state"`
	// Error is set when the node's bundle could not be collected; Bundle
	// is then absent.
	Error  string          `json:"error,omitempty"`
	Bundle json.RawMessage `json:"bundle,omitempty"`
}

// ClusterBundle is the gateway's GET /v1/debug/bundle document: every
// node's postmortem bundle side by side with the gateway's own view of
// the cluster at collection time (membership, ring, routing counters,
// in-flight jobs).
type ClusterBundle struct {
	Now     time.Time     `json:"now"`
	Gateway gatewayBundle `json:"gateway"`
	Nodes   []NodeBundle  `json:"nodes"`
}

// gatewayBundle is the gateway's own slice of the postmortem.
type gatewayBundle struct {
	Counters GatewayCounters `json:"counters"`
	Members  []MemberStatus  `json:"members"`
	Ring     ringDoc         `json:"ring"`
	InFlight int             `json:"in_flight"`
}

type ringDoc struct {
	Nodes  []string `json:"nodes"`
	VNodes int      `json:"vnodes"`
}

// FederatedBundle collects every member's postmortem bundle concurrently.
// Collection is best-effort per node: an unreachable or down member yields
// a NodeBundle with its error set, never a collection failure — a partial
// postmortem beats none at exactly the moment part of the cluster is
// misbehaving.
func (r *Router) FederatedBundle(ctx context.Context) ClusterBundle {
	members := r.members.Snapshot()
	ring := r.ring.Load()
	out := ClusterBundle{
		Now: time.Now(),
		Gateway: gatewayBundle{
			Counters: r.Counters(),
			Members:  members,
			Ring:     ringDoc{Nodes: ring.Nodes(), VNodes: ring.VNodes()},
			InFlight: r.inFlight(),
		},
		Nodes: make([]NodeBundle, len(members)),
	}
	var wg sync.WaitGroup
	for i, m := range members {
		out.Nodes[i] = NodeBundle{ID: m.ID, State: m.State}
		if m.State == NodeDown {
			msg := "node down"
			if m.LastErr != "" {
				msg += ": " + m.LastErr
			}
			out.Nodes[i].Error = msg
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			status, _, body, err := r.client.get(ctx, url+"/v1/debug/bundle")
			switch {
			case err != nil:
				out.Nodes[i].Error = "bundle fetch failed: " + err.Error()
			case status != http.StatusOK:
				out.Nodes[i].Error = fmt.Sprintf("bundle fetch failed: status %d", status)
			case !json.Valid(body):
				out.Nodes[i].Error = "bundle fetch failed: invalid JSON"
			default:
				out.Nodes[i].Bundle = body
			}
		}(i, m.URL)
	}
	wg.Wait()
	return out
}

// handleBundle serves the cluster postmortem. Always 200: collection
// failures are explicit per-node entries, never a gateway error.
func (r *Router) handleBundle(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.FederatedBundle(req.Context()))
}
