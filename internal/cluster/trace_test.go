package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// startZombieNode is startNode with a kill switch: flipping the returned
// flag makes the node fail its health probes and stop answering client
// job reads, while diagnostic reads (the /spans harvest) and cancels
// keep working — a zombie, sick enough to be declared dead but alive
// enough to give up its span log. That window is exactly what the
// gateway's dead-node harvest exists for, so the trace tests fail nodes
// this way instead of severing connections.
func startZombieNode(t *testing.T, id string) (Member, *httptest.Server, *atomic.Bool) {
	t.Helper()
	s := service.New(service.Config{
		NodeID:         id,
		StreamInterval: 200 * time.Millisecond,
		DrainTimeout:   2 * time.Minute,
	})
	var zombie atomic.Bool
	inner := s.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if zombie.Load() {
			p := r.URL.Path
			clientRead := r.Method == http.MethodGet &&
				strings.HasPrefix(p, "/v1/jobs") && !strings.HasSuffix(p, "/spans")
			if p == "/healthz" || clientRead {
				http.Error(w, "unresponsive", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	return Member{ID: id, URL: ts.URL}, ts, &zombie
}

// startZombieCluster is startCluster over zombie-capable nodes; the
// returned switches zombify a node by id.
func startZombieCluster(t *testing.T, cfg Config, ids ...string) (*testCluster, map[string]*atomic.Bool) {
	t.Helper()
	tc := &testCluster{nodes: map[string]*httptest.Server{}}
	switches := map[string]*atomic.Bool{}
	for _, id := range ids {
		m, ts, z := startZombieNode(t, id)
		cfg.Members = append(cfg.Members, m)
		tc.nodes[id] = ts
		switches[id] = z
	}
	tc.router = NewRouter(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	tc.router.Start(ctx)
	tc.gw = httptest.NewServer(tc.router.Handler())
	t.Cleanup(func() {
		tc.gw.Close()
		cancel()
		tc.router.Stop()
		for _, ts := range tc.nodes {
			ts.Close()
		}
	})
	return tc, switches
}

// tracedBody is one fixed traced bulk problem, shaped for the failover
// test's timing needs: a large grid makes each step expensive (the whole
// run takes seconds, so a zombified owner is reliably still mid-run when
// the gateway harvests its spans — the dead-node process in the golden is
// always a partial run with no svc.exec / svc.encode), while the modest
// step count keeps the span log small enough that mid-run /spans polls
// and the bounded harvest stay fast even on a starved single-core host.
const tracedBody = `{"type":"simulate","simulate":{"kind":"bulk","n":128,"steps":40,"tasks":2,"trace":true}}`

// chromeDoc is the decoded shape of a /trace export the tests care about.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestClusterTraceFailoverGolden runs one traced job through a 2-node
// cluster, zombifies the owner mid-run, and asserts the single Chrome
// trace served for the original job id afterwards: gateway routing spans,
// the dead node's partial run, the resubmission, and the survivor's full
// run, all on one monotonic timeline. The phase vocabulary per trace
// process is pinned by a golden skeleton (timestamps stripped — they
// vary run to run); regenerate with UPDATE_GOLDEN=1 after intentional
// changes to the span set.
func TestClusterTraceFailoverGolden(t *testing.T) {
	tc, switches := startZombieCluster(t, Config{
		HealthInterval: 50 * time.Millisecond,
		FailThreshold:  2,
	}, "n1", "n2")

	status, v := tc.submit(t, tracedBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", status)
	}
	if v.TraceID == "" {
		t.Fatal("traced submission returned no trace_id")
	}
	owner := v.Node
	survivor := "n1"
	if owner == "n1" {
		survivor = "n2"
	}

	spansAt := func(base string) *obs.TraceContext {
		resp, err := http.Get(base + "/v1/jobs/" + v.ID + "/spans")
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil
		}
		var c obs.TraceContext
		if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
			return nil
		}
		return &c
	}
	spansOf := func() *obs.TraceContext { return spansAt(tc.gw.URL) }

	// Let the owner record real work before it goes dark: once both ranks
	// have closed a step (a copy span each) the span log carries the full
	// bulk phase vocabulary, so the harvested partial run and the
	// survivor's full run expose identical phase sets. Poll the owner
	// directly — the gateway proxy hop roughly doubles per-poll latency,
	// and on a starved single-core host that slack is enough for the
	// zombie to finish the whole run before it is declared dead.
	waitFor(t, 60*time.Second, "both ranks past one step", func() bool {
		c := spansAt(tc.nodes[owner].URL)
		if c == nil {
			return false
		}
		var r0, r1 bool
		for _, s := range c.Spans {
			if s.Phase == obs.PhaseCopy {
				r0 = r0 || s.Rank == 0
				r1 = r1 || s.Rank == 1
			}
		}
		return r0 && r1
	})

	switches[owner].Store(true)
	waitFor(t, 30*time.Second, "owner declared down", func() bool {
		return tc.router.members.State(owner) == NodeDown
	})

	// The zombie no longer answers client reads, so the gateway can only
	// ever report this job done from the survivor — once the reroute has
	// re-homed the fingerprint. Wait for that, then cancel the zombie's
	// abandoned copy directly so it stops competing for CPU with the
	// survivor's re-run (this host may have a single core).
	waitFor(t, 60*time.Second, "fingerprint re-homed", func() bool {
		resp, err := http.Get(tc.gw.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			return false
		}
		var cur gwView
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			return false
		}
		return cur.Node == survivor
	})
	if req, err := http.NewRequest(http.MethodDelete, tc.nodes[owner].URL+"/v1/jobs/"+v.ID, nil); err == nil {
		if resp, err := http.DefaultClient.Do(req); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	done := tc.waitDone(t, v.ID)
	if done.Node != survivor {
		t.Fatalf("job finished on %s, want survivor %s", done.Node, survivor)
	}

	// The spans doc reachable under the original id must continue the
	// trace the submit response announced, across the resubmission.
	if c := spansOf(); c == nil {
		t.Fatal("no spans doc after failover")
	} else if c.TraceID != v.TraceID {
		t.Fatalf("trace id changed across failover: %s -> %s", v.TraceID, c.TraceID)
	}

	resp, err := http.Get(tc.gw.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d", resp.StatusCode)
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode chrome trace: %v", err)
	}

	procName := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				procName[ev.PID] = n
			}
		}
	}
	phasesByProc := map[string]map[string]bool{}
	handoffs := 0
	deadEnd := math.Inf(-1)
	survivorRankStart := math.Inf(1)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 {
			t.Errorf("negative duration %f on event %q", ev.Dur, ev.Name)
		}
		name := procName[ev.PID]
		if name == "" {
			t.Fatalf("span event on pid %d with no process_name", ev.PID)
		}
		if phasesByProc[name] == nil {
			phasesByProc[name] = map[string]bool{}
		}
		ph := obs.Phase(ev.TID)
		phasesByProc[name][ph.String()] = true
		if ph == obs.PhaseGWHandoff {
			handoffs++
		}
		if strings.HasPrefix(name, owner+" ") {
			deadEnd = math.Max(deadEnd, ev.TS+ev.Dur)
		}
		if strings.HasPrefix(name, survivor+" rank") {
			survivorRankStart = math.Min(survivorRankStart, ev.TS)
		}
	}
	gw := phasesByProc["gateway"]
	if gw == nil || !gw["gw.route"] || !gw["gw.submit"] || !gw["gw.resubmit"] {
		t.Fatalf("gateway span set incomplete: %v", gw)
	}
	// Exactly one handoff survives the merge: the zombie's own copy is
	// gateway-rank and skipped at harvest, the survivor's import adds one.
	if handoffs != 1 {
		t.Errorf("want exactly 1 gw.handoff span, got %d", handoffs)
	}
	// Everything the dead node did happened strictly before the survivor
	// started computing — one monotonic timeline, no interleaving.
	if deadEnd > survivorRankStart {
		t.Errorf("timeline not monotonic across failover: dead-node spans end at %.1fus, survivor ranks start at %.1fus",
			deadEnd, survivorRankStart)
	}

	type procSkeleton struct {
		Process string   `json:"process"`
		Phases  []string `json:"phases"`
	}
	skel := make([]procSkeleton, 0, len(phasesByProc))
	for name, set := range phasesByProc {
		ps := procSkeleton{Process: name}
		for ph := range set {
			ps.Phases = append(ps.Phases, ph)
		}
		sort.Strings(ps.Phases)
		skel = append(skel, ps)
	}
	sort.Slice(skel, func(i, j int) bool { return skel[i].Process < skel[j].Process })
	got, err := json.MarshalIndent(skel, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "trace_failover.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace skeleton drifted from golden (UPDATE_GOLDEN=1 to accept):\ngot:\n%swant:\n%s", got, want)
	}

	// The routing the trace describes is also on the gateway's /metrics:
	// two accepted submissions (original + resubmission), one reroute.
	mresp, err := http.Get(tc.gw.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m GatewayMetrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatalf("decode gateway metrics: %v", err)
	}
	if m.Counters.Submits != 2 || m.Counters.Reroutes != 1 {
		t.Errorf("gateway counters submits=%d reroutes=%d, want 2 and 1",
			m.Counters.Submits, m.Counters.Reroutes)
	}
	presp, err := http.Get(tc.gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type %q", ct)
	}
	prom, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"advectgw_submits_total 2",
		"advectgw_reroutes_total 1",
		"advectgw_route_latency_seconds",
		"advectgw_go_goroutines",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestGatewayTraceDisabledAllocatesNothing: an untraced submission
// carries a nil *submissionTrace through the whole routing path; every
// method on it must stay allocation-free so tracing costs nothing when
// off. ci.sh pairs this with BenchmarkGatewayTraceDisabled against the
// ns/op bound in BENCH_gateway.json.
func TestGatewayTraceDisabledAllocatesNothing(t *testing.T) {
	var tr *submissionTrace
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.begin(obs.PhaseGWPeek, "n1")
		tr.add(obs.PhaseGWRoute, "n1", tr.clock(), tr.clock())
		sp.End()
		if tr.header() != "" || tr.traceID() != "" {
			t.Fatal("nil submissionTrace produced trace output")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled gateway trace path allocates %v per routed request, want 0", allocs)
	}
}

func BenchmarkGatewayTraceDisabled(b *testing.B) {
	var tr *submissionTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.begin(obs.PhaseGWPeek, "n1")
		tr.add(obs.PhaseGWRoute, "n1", tr.clock(), tr.clock())
		sp.End()
		if tr.header() != "" {
			b.Fatal("nil submissionTrace produced a header")
		}
	}
}
