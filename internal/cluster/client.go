package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// nodeClient wraps the HTTP conversations the gateway has with a member
// node. Every method takes a context so cancellation (client disconnect,
// gateway shutdown) propagates into the outbound request — the cluster
// analog of the context threading the runners use to stay killable.
type nodeClient struct {
	hc      *http.Client // short requests (submit, peek, stats, health)
	stream  *http.Client // long-lived SSE reads; no overall timeout
	timeout time.Duration
}

func newNodeClient(timeout time.Duration) *nodeClient {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &nodeClient{
		hc:      &http.Client{},
		stream:  &http.Client{},
		timeout: timeout,
	}
}

// submitResult is one node's answer to a forwarded POST /v1/jobs.
type submitResult struct {
	Status     int
	RetryAfter time.Duration // parsed Retry-After on 429/503; 0 if absent
	Body       []byte        // the node's response document as sent
	View       service.View  // decoded body on 200/202
}

// submit forwards an already-encoded request body to a node. A non-empty
// traceHeader rides along as X-Advect-Trace, handing the gateway's span
// log to the owner.
func (c *nodeClient) submit(ctx context.Context, baseURL string, body []byte, traceHeader string) (*submitResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeader, traceHeader)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	res := &submitResult{Status: resp.StatusCode, Body: data}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			res.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &res.View); err != nil {
			return nil, fmt.Errorf("decode submit response: %w", err)
		}
	}
	return res, nil
}

// peek asks a node's cache for a key: (doc, true, nil) on a hit,
// (nil, false, nil) on a clean miss.
func (c *nodeClient) peek(ctx context.Context, baseURL, key string) (json.RawMessage, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("cache peek: status %d", resp.StatusCode)
	}
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return doc, true, nil
}

// seed replicates a result document into a node's cache.
func (c *nodeClient) seed(ctx context.Context, baseURL, key string, doc json.RawMessage) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, baseURL+"/v1/cache/"+key, bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cache seed: status %d", resp.StatusCode)
	}
	return nil
}

// spans fetches a job's raw span log (its wire trace context) from a
// node. The timeout is capped at 2s regardless of the configured request
// timeout: the only caller is the dead-node harvest, where a node that
// stopped answering health checks should not stall the reroute sweep.
func (c *nodeClient) spans(ctx context.Context, baseURL, id string) (*obs.TraceContext, error) {
	to := c.timeout
	if to > 2*time.Second {
		to = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, to)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/jobs/"+id+"/spans", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("spans: status %d", resp.StatusCode)
	}
	var doc obs.TraceContext
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode spans: %w", err)
	}
	return &doc, nil
}

// health probes a node: state is NodeUp or NodeDraining on a parseable
// answer; an error means the probe failed (connection refused, timeout,
// garbage) and counts toward the down threshold.
func (c *nodeClient) health(ctx context.Context, baseURL string) (NodeState, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", fmt.Errorf("decode healthz: %w", err)
	}
	switch doc.Status {
	case "ok":
		return NodeUp, nil
	case "draining":
		return NodeDraining, nil
	}
	return "", fmt.Errorf("healthz status %q", doc.Status)
}

// drain asks a node to begin its graceful drain.
func (c *nodeClient) drain(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/drain", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("drain: status %d", resp.StatusCode)
	}
	return nil
}

// stats fetches a node's rolling-window telemetry snapshot.
func (c *nodeClient) stats(ctx context.Context, baseURL string) (service.TelemetryStats, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var doc service.TelemetryStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return doc, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("decode stats: %w", err)
	}
	return doc, nil
}

// postJSON forwards a POST with an optional JSON body (session create,
// pause/resume/fork proxies) and returns the node's answer unchanged.
func (c *nodeClient) postJSON(ctx context.Context, url string, body []byte) (int, string, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
	if err != nil {
		return 0, "", nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), data, nil
}

// checkpoint pulls a session's newest durable checkpoint from its owner:
// the raw bytes plus the step it stands at (from the response header).
// (nil, 0, nil) means the session exists but has no durable checkpoint yet.
func (c *nodeClient) checkpoint(ctx context.Context, baseURL, id string) ([]byte, int64, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/sessions/"+id+"/checkpoint", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("checkpoint: status %d", resp.StatusCode)
	}
	step, err := strconv.ParseInt(resp.Header.Get(service.SessionStepHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: bad %s header: %w", service.SessionStepHeader, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return data, step, nil
}

// get proxies a read (status, result, trace, list) and returns the node's
// status code, content type, and body unchanged.
func (c *nodeClient) get(ctx context.Context, url string) (int, string, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body, nil
}

// getFull proxies a read like get but hands back the full response
// header set, for endpoints whose metadata rides custom headers (the
// session checkpoint surface).
func (c *nodeClient) getFull(ctx context.Context, url string) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// del proxies a DELETE (job cancel).
func (c *nodeClient) del(ctx context.Context, url string) (int, string, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return 0, "", nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body, nil
}
