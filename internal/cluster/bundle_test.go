package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/service"
)

// startFlightCluster is startCluster with the nodes' anomaly engines
// configured: every node runs the given flight rules, so short tests can
// use thresholds the defaults would never trip.
func startFlightCluster(t *testing.T, cfg Config, rules flight.Rules, ids ...string) *testCluster {
	t.Helper()
	tc := &testCluster{nodes: map[string]*httptest.Server{}}
	for _, id := range ids {
		s := service.New(service.Config{
			NodeID:         id,
			StreamInterval: 200 * time.Millisecond,
			DrainTimeout:   2 * time.Minute,
			FlightRules:    rules,
		})
		ts := httptest.NewServer(s.Handler())
		cfg.Members = append(cfg.Members, Member{ID: id, URL: ts.URL})
		tc.nodes[id] = ts
	}
	tc.router = NewRouter(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	tc.router.Start(ctx)
	tc.gw = httptest.NewServer(tc.router.Handler())
	t.Cleanup(func() {
		tc.gw.Close()
		cancel()
		tc.router.Stop()
		for _, ts := range tc.nodes {
			ts.Close()
		}
	})
	return tc
}

func fetchClusterBundle(t *testing.T, tc *testCluster) ClusterBundle {
	t.Helper()
	resp, err := http.Get(tc.gw.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster bundle: want 200, got %v", resp.Status)
	}
	var b ClusterBundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatalf("decode cluster bundle: %v", err)
	}
	return b
}

func (b ClusterBundle) node(t *testing.T, id string) NodeBundle {
	t.Helper()
	for _, nb := range b.Nodes {
		if nb.ID == id {
			return nb
		}
	}
	t.Fatalf("no bundle entry for node %s", id)
	return NodeBundle{}
}

// TestClusterBundlePartialOnNodeDown: a node lost mid-collection yields a
// partial postmortem with an explicit per-node error entry — never a
// gateway 5xx. Both failure shapes are covered: the fetch that dies
// against a just-severed listener, and the entry for a member already
// declared down.
func TestClusterBundlePartialOnNodeDown(t *testing.T) {
	tc := startCluster(t, Config{
		HealthInterval: 50 * time.Millisecond,
		FailThreshold:  2,
	}, "n1", "n2")

	tc.killNode("n2")

	// Immediately after the kill the member is still listed up, so the
	// gateway actually dials it and must fold the refusal into the entry.
	b := fetchClusterBundle(t, tc)
	if len(b.Nodes) != 2 {
		t.Fatalf("bundle lists %d nodes, want 2", len(b.Nodes))
	}
	dead := b.node(t, "n2")
	if dead.Error == "" || dead.Bundle != nil {
		t.Fatalf("dead node entry not an explicit error: %+v", dead)
	}

	// Once health checks declare it down, the entry says so without a dial.
	waitFor(t, 30*time.Second, "n2 declared down", func() bool {
		return tc.router.members.State("n2") == NodeDown
	})
	b = fetchClusterBundle(t, tc)
	dead = b.node(t, "n2")
	if !strings.HasPrefix(dead.Error, "node down") || dead.Bundle != nil {
		t.Fatalf("down node entry = %+v, want explicit node-down error", dead)
	}

	// The survivor's bundle is intact and node-stamped.
	alive := b.node(t, "n1")
	if alive.Error != "" || alive.Bundle == nil {
		t.Fatalf("survivor entry incomplete: error %q, bundle present %v", alive.Error, alive.Bundle != nil)
	}
	var doc service.BundleDoc
	if err := json.Unmarshal(alive.Bundle, &doc); err != nil {
		t.Fatalf("survivor bundle not a bundle doc: %v", err)
	}
	if doc.Node != "n1" {
		t.Fatalf("survivor bundle stamped %q, want n1", doc.Node)
	}
	if len(b.Gateway.Members) != 2 || len(b.Gateway.Ring.Nodes) == 0 {
		t.Fatalf("gateway section incomplete: %d members, ring %v", len(b.Gateway.Members), b.Gateway.Ring.Nodes)
	}
}

// sseFrames collects complete (event, data) frames from a gateway stream.
type sseFrames struct {
	mu     sync.Mutex
	frames [][2]string
	done   chan struct{}
}

func followFrames(resp *http.Response) *sseFrames {
	f := &sseFrames{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.mu.Lock()
				f.frames = append(f.frames, [2]string{event, strings.TrimPrefix(line, "data: ")})
				f.mu.Unlock()
			}
		}
	}()
	return f
}

// find returns the data of the first collected frame with the given event
// name whose payload contains every needle.
func (f *sseFrames) find(event string, needles ...string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
outer:
	for _, fr := range f.frames {
		if fr[0] != event {
			continue
		}
		for _, n := range needles {
			if !strings.Contains(fr[1], n) {
				continue outer
			}
		}
		return fr[1], true
	}
	return "", false
}

// TestClusterDriftAnomalyEndToEnd is the postmortem pipeline end to end: a
// deliberately degraded job — bulk-sync where the model is told to expect
// hybrid overlap — runs through a 2-node cluster; the owner's drift rule
// fires; the anomaly shows up in the gateway's federated stats and on its
// SSE stream node-labelled; and the gateway's cluster bundle carries the
// owner's frozen flight snapshot holding the triggering job's trace id.
func TestClusterDriftAnomalyEndToEnd(t *testing.T) {
	rules := flight.Rules{ModelKinds: map[string]string{"bulk": "hybrid-overlap"}}
	tc := startFlightCluster(t, Config{
		HealthInterval: 50 * time.Millisecond,
		FailThreshold:  3,
	}, rules, "n1", "n2")

	resp, err := http.Get(tc.gw.URL + "/v1/stream?interval=1h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := followFrames(resp)
	// The gateway's node-stream watchers re-publish per-node stats events;
	// seeing one from each node proves the fan-in is attached, so the
	// one-shot anomaly event cannot slip past it.
	waitFor(t, 30*time.Second, "gateway watching both node streams", func() bool {
		_, n1 := frames.find("stats", `"node":"n1"`)
		_, n2 := frames.find("stats", `"node":"n2"`)
		return n1 && n2
	})

	status, v := tc.submit(t, `{"type":"simulate","simulate":{"kind":"bulk","n":48,"steps":60,"tasks":2,"trace":true}}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", status)
	}
	if v.TraceID == "" {
		t.Fatal("traced submission returned no trace_id")
	}
	done := tc.waitDone(t, v.ID)
	owner := done.Node

	// The drift firing reaches the federated stats with the job's identity.
	waitFor(t, 30*time.Second, "drift anomaly in gateway stats", func() bool {
		st := tc.clusterStats(t)
		return st.Cluster.Anomalies != nil && st.Cluster.Anomalies.ByRule[flight.RuleModelDrift] >= 1
	})
	st := tc.clusterStats(t)
	var fired *flight.Anomaly
	for i, a := range st.Cluster.Anomalies.Recent {
		if a.Rule == flight.RuleModelDrift && a.TraceID == v.TraceID {
			fired = &st.Cluster.Anomalies.Recent[i]
		}
	}
	if fired == nil {
		t.Fatalf("no model-drift anomaly with trace %s in %+v", v.TraceID, st.Cluster.Anomalies.Recent)
	}
	if fired.JobID != v.ID || fired.Expected <= fired.Value {
		t.Fatalf("anomaly misattributed: %+v (job %s)", fired, v.ID)
	}

	// The same firing arrived on the live stream, node-labelled.
	waitFor(t, 30*time.Second, "anomaly event on gateway stream", func() bool {
		_, ok := frames.find("anomaly", v.TraceID)
		return ok
	})
	data, _ := frames.find("anomaly", v.TraceID)
	for _, want := range []string{`"node":"` + owner + `"`, `"rule":"` + flight.RuleModelDrift + `"`, v.ID} {
		if !strings.Contains(data, want) {
			t.Errorf("anomaly event missing %s:\n%s", want, data)
		}
	}

	// The cluster postmortem holds the owner's frozen flight snapshot.
	b := fetchClusterBundle(t, tc)
	var doc service.BundleDoc
	nb := b.node(t, owner)
	if nb.Error != "" || nb.Bundle == nil {
		t.Fatalf("owner bundle entry incomplete: %+v", nb)
	}
	if err := json.Unmarshal(nb.Bundle, &doc); err != nil {
		t.Fatalf("decode owner bundle: %v", err)
	}
	if doc.Node != owner {
		t.Fatalf("owner bundle stamped %q, want %s", doc.Node, owner)
	}
	var snap *flight.Snapshot
	for i, s := range doc.Frozen {
		if s.Reason == flight.RuleModelDrift {
			snap = &doc.Frozen[i]
		}
	}
	if snap == nil {
		t.Fatalf("no frozen %s snapshot in owner bundle (%d frozen)", flight.RuleModelDrift, len(doc.Frozen))
	}
	traced := false
	for _, rec := range snap.Records {
		if rec.TraceID == v.TraceID {
			traced = true
		}
	}
	if !traced {
		t.Fatalf("frozen snapshot has no record with trace %s (%d records)", v.TraceID, len(snap.Records))
	}
	// The bystander node contributed a clean bundle of its own.
	other := "n1"
	if owner == "n1" {
		other = "n2"
	}
	if nb := b.node(t, other); nb.Error != "" || nb.Bundle == nil {
		t.Fatalf("bystander bundle entry incomplete: %+v", nb)
	}

	resp.Body.Close()
	<-frames.done
}
