package cluster

import (
	"io"
	"net/http"
	"testing"
	"time"
)

// TestClusterKillNodeMidRun is the cluster's crash-safety contract, end to
// end: a 3-node cluster accepts a batch of long jobs, one node dies with
// work in flight, and every accepted job still completes exactly once —
// the dead shard's fingerprints are re-submitted to the survivors with no
// duplicates and no losses, the federated stats converge on the surviving
// shards, and the batch's results are all cache hits afterwards.
func TestClusterKillNodeMidRun(t *testing.T) {
	tc := startCluster(t, Config{
		HealthInterval: 50 * time.Millisecond,
		FailThreshold:  2,
	}, "n1", "n2", "n3")

	const jobs = 6
	ids := make([]string, jobs)
	bodies := make([]string, jobs)
	nodeOf := map[string]string{}
	for i := 0; i < jobs; i++ {
		bodies[i] = slowBody(i)
		status, v := tc.submit(t, bodies[i])
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
		ids[i] = v.ID
		nodeOf[v.ID] = v.Node
	}

	// Kill the node holding the most in-flight work. The jobs run long
	// enough (hundreds of ms at minimum) that none has finished yet.
	counts := map[string]int{}
	for _, n := range nodeOf {
		counts[n]++
	}
	victim, onVictim := "", 0
	for id, c := range counts {
		if c > onVictim {
			victim, onVictim = id, c
		}
	}
	tc.killNode(victim)

	waitFor(t, 10*time.Second, "victim marked down", func() bool {
		return tc.router.Members().State(victim) == NodeDown
	})

	// Every accepted job completes through the gateway — rerouted ids keep
	// answering via their forwarding entry.
	for _, id := range ids {
		tc.waitDone(t, id)
	}

	c := tc.router.Counters()
	if c.Reroutes != uint64(onVictim) {
		t.Errorf("Reroutes = %d, want %d (one per fingerprint in flight on the dead node)", c.Reroutes, onVictim)
	}
	if c.Deduped != 0 {
		t.Errorf("Deduped = %d, want 0 (all fingerprints distinct)", c.Deduped)
	}

	// Exactly once: the survivors hold precisely the original batch — their
	// own jobs plus one rerouted job per dead fingerprint. A duplicate
	// re-submission or a lost job would change the count.
	total := 0
	for id, ts := range tc.nodes {
		if id == victim {
			continue
		}
		total += nodeJobCount(t, ts)
	}
	if total != jobs {
		t.Errorf("jobs across survivors = %d, want %d (duplicate or lost reroute)", total, jobs)
	}

	// Federated stats converge on the surviving shards: the dead node is
	// reported down without a snapshot, and the merged execution count is
	// exactly the batch (every job executed once, all on survivors).
	stats := tc.clusterStats(t)
	if len(stats.Nodes) != 3 {
		t.Fatalf("federated stats cover %d nodes, want 3", len(stats.Nodes))
	}
	for _, ns := range stats.Nodes {
		if ns.ID == victim {
			if ns.State != NodeDown {
				t.Errorf("victim reported %s, want down", ns.State)
			}
			if ns.Stats != nil {
				t.Errorf("victim contributed a snapshot after death")
			}
		} else {
			if ns.Stats == nil {
				t.Errorf("survivor %s missing from federated stats: %s", ns.ID, ns.Error)
			} else if ns.Stats.Node != ns.ID {
				t.Errorf("survivor %s snapshot labelled %q", ns.ID, ns.Stats.Node)
			}
		}
	}
	if got := stats.Cluster.Exec["simulate"].Count; got != jobs {
		t.Errorf("merged exec count = %d, want %d (each job exactly once)", got, jobs)
	}
	if stats.InFlight != 0 {
		t.Errorf("gateway still counts %d in flight after all polls", stats.InFlight)
	}

	// Cache hit-rate preserved: resubmitting the batch hits the surviving
	// shards' caches — including the rerouted fingerprints, whose results
	// now live on their new owners.
	for i, body := range bodies {
		status, v := tc.submit(t, body)
		if status != http.StatusOK || !v.CacheHit {
			t.Errorf("resubmit %d after node death: status %d, cache_hit %v (want 200, true)", i, status, v.CacheHit)
		}
		if v.Node == victim {
			t.Errorf("resubmit %d answered by the dead node", i)
		}
	}
}

// TestClusterDrainGraceful: draining a node through the gateway reroutes
// new traffic immediately (no client ever sees a 503), while the draining
// node's in-flight jobs finish where they are and stay pollable.
func TestClusterDrainGraceful(t *testing.T) {
	tc := startCluster(t, Config{HealthInterval: 50 * time.Millisecond}, "n1", "n2", "n3")

	var inflight []gwView
	for i := 0; i < 3; i++ {
		status, v := tc.submit(t, slowBody(100+i))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
		inflight = append(inflight, v)
	}
	victim := inflight[0].Node

	resp, err := http.Post(tc.gw.URL+"/v1/nodes/"+victim+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	if st := tc.router.Members().State(victim); st != NodeDraining {
		t.Fatalf("victim state %s immediately after drain, want draining", st)
	}
	for _, n := range tc.router.Ring().Nodes() {
		if n == victim {
			t.Fatalf("ring still routes to the draining node")
		}
	}

	// New traffic reroutes with no shed: every submission is accepted by a
	// remaining up node, never the draining one, never a 503.
	for i := 0; i < 8; i++ {
		status, v := tc.submit(t, fastBody(50+i))
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit during drain: status %d (drain must not surface errors)", status)
		}
		if v.Node == victim {
			t.Fatalf("submission %d routed to the draining node", i)
		}
		tc.waitDone(t, v.ID)
	}

	// In-flight jobs on the draining node complete there and stay reachable
	// through the gateway.
	for _, v := range inflight {
		done := tc.waitDone(t, v.ID)
		if done.Node != v.Node {
			t.Errorf("job %s moved from %s to %s during a graceful drain", v.ID, v.Node, done.Node)
		}
	}

	// The gateway stays healthy on the remaining up nodes.
	resp, err = http.Get(tc.gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("gateway healthz %d during drain, want 200", resp.StatusCode)
	}
}
