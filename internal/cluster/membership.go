package cluster

import (
	"sort"
	"sync"
	"time"
)

// NodeState is a member's position in the cluster lifecycle.
type NodeState string

const (
	// NodeUp members own shard ranges and receive new traffic.
	NodeUp NodeState = "up"
	// NodeDraining members have stopped admitting jobs but still serve
	// polls for their in-flight work; their shard range has already been
	// rebalanced to the up members. No traffic is lost: accepted jobs
	// finish where they are while new submissions route elsewhere.
	NodeDraining NodeState = "draining"
	// NodeDown members failed health checks; their in-flight jobs are
	// re-submitted (deduplicated by fingerprint) to the surviving ring.
	NodeDown NodeState = "down"
)

// Member identifies one advectd node: a stable id (matching the node's
// Config.NodeID) and its base URL.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// MemberStatus is a membership snapshot entry.
type MemberStatus struct {
	Member
	State NodeState `json:"state"`
	// Fails is the current consecutive health-check failure count.
	Fails int `json:"fails,omitempty"`
	// LastErr is the most recent health-check error, if any.
	LastErr string `json:"last_err,omitempty"`
	// Since is when the member entered its current state.
	Since time.Time `json:"since"`
}

// Membership tracks node states and drives the up/draining/down
// transitions from health-check results. It is pure bookkeeping: the
// router registers an onChange hook to rebuild the ring and reroute jobs,
// and that hook runs outside the membership lock so it may do network IO.
type Membership struct {
	mu            sync.Mutex
	members       map[string]*memberState
	failThreshold int
}

type memberState struct {
	Member
	state   NodeState
	fails   int
	lastErr string
	since   time.Time
	// gen counts state transitions. Probe verdicts are applied
	// compare-and-swap style against the generation observed when the
	// probe was issued, so a transition that lands between probe read and
	// verdict apply (an operator drain) is never overwritten by the
	// probe's stale evidence.
	gen uint64
}

// NewMembership starts every member up (optimistically routable; the first
// health sweep corrects that within one interval). failThreshold is how
// many consecutive probe failures turn a node down; < 1 means 1.
func NewMembership(members []Member, failThreshold int, now time.Time) *Membership {
	if failThreshold < 1 {
		failThreshold = 1
	}
	m := &Membership{
		members:       make(map[string]*memberState, len(members)),
		failThreshold: failThreshold,
	}
	for _, mem := range members {
		m.members[mem.ID] = &memberState{Member: mem, state: NodeUp, since: now}
	}
	return m
}

// Add registers a new member in the up state. It reports whether the
// member was actually added (false if the id is already present — states
// of existing members are never clobbered by a re-add).
func (m *Membership) Add(mem Member, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[mem.ID]; ok {
		return false
	}
	m.members[mem.ID] = &memberState{Member: mem, state: NodeUp, since: now}
	return true
}

// Snapshot returns every member's status, sorted by id.
func (m *Membership) Snapshot() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberStatus, 0, len(m.members))
	for _, ms := range m.members {
		out = append(out, MemberStatus{
			Member: ms.Member, State: ms.state,
			Fails: ms.fails, LastErr: ms.lastErr, Since: ms.since,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns one member's status.
func (m *Membership) Get(id string) (MemberStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.members[id]
	if !ok {
		return MemberStatus{}, false
	}
	return MemberStatus{
		Member: ms.Member, State: ms.state,
		Fails: ms.fails, LastErr: ms.lastErr, Since: ms.since,
	}, true
}

// State returns a member's current state ("" if unknown).
func (m *Membership) State(id string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ms, ok := m.members[id]; ok {
		return ms.state
	}
	return ""
}

// URL returns a member's base URL ("" if unknown).
func (m *Membership) URL(id string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ms, ok := m.members[id]; ok {
		return ms.URL
	}
	return ""
}

// Routable returns the ids of members that may receive new traffic (up).
func (m *Membership) Routable() []string {
	return m.withStates(NodeUp)
}

// Peekable returns the ids of members whose caches are worth probing: up
// and draining (a draining node still answers reads, and its cache is
// exactly where a rebalanced key's result lives).
func (m *Membership) Peekable() []string {
	return m.withStates(NodeUp, NodeDraining)
}

func (m *Membership) withStates(states ...NodeState) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, ms := range m.members {
		for _, st := range states {
			if ms.state == st {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// ReportHealthy records a successful probe and returns true if the state
// changed (a down or draining node came back up).
func (m *Membership) ReportHealthy(id string, now time.Time) bool {
	return m.transition(id, NodeUp, "", now)
}

// ReportDraining records a draining probe (healthz 503 {"status":
// "draining"}) and returns true if the state changed.
func (m *Membership) ReportDraining(id string, now time.Time) bool {
	return m.transition(id, NodeDraining, "", now)
}

// generation returns the member's transition counter, read before a probe
// is issued so its verdict can be applied only if no transition raced it.
func (m *Membership) generation(id string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ms, ok := m.members[id]; ok {
		return ms.gen
	}
	return 0
}

// reportIf applies a probe verdict only if the member's generation still
// matches gen — the one read before the probe went out. A stale verdict
// (the probe read the node's healthz before a concurrent transition, like
// an operator drain, changed the state) is dropped; the next sweep probes
// fresh and decides then.
func (m *Membership) reportIf(id string, gen uint64, state NodeState, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.members[id]
	if !ok || ms.gen != gen {
		return false
	}
	ms.fails = 0
	ms.lastErr = ""
	if ms.state == state {
		return false
	}
	ms.state = state
	ms.since = now
	ms.gen++
	return true
}

// ReportFailure records a failed probe; after failThreshold consecutive
// failures the member goes down. Returns true when this report is the one
// that took the node down.
func (m *Membership) ReportFailure(id string, errMsg string, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.members[id]
	if !ok {
		return false
	}
	ms.fails++
	ms.lastErr = errMsg
	if ms.state != NodeDown && ms.fails >= m.failThreshold {
		ms.state = NodeDown
		ms.since = now
		ms.gen++
		return true
	}
	return false
}

// transition moves a member to state, resetting the failure counter, and
// reports whether the state actually changed.
func (m *Membership) transition(id string, state NodeState, errMsg string, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.members[id]
	if !ok {
		return false
	}
	ms.fails = 0
	ms.lastErr = errMsg
	if ms.state == state {
		return false
	}
	ms.state = state
	ms.since = now
	ms.gen++
	return true
}
