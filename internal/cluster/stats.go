package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// NodeStats is one member's contribution to the federated stats document.
type NodeStats struct {
	ID    string    `json:"id"`
	State NodeState `json:"state"`
	// Error is set when the node's snapshot could not be fetched; Stats is
	// then nil and the node contributes nothing to the merged view.
	Error string                  `json:"error,omitempty"`
	Stats *service.TelemetryStats `json:"stats,omitempty"`
}

// ClusterStats is the gateway's GET /v1/stats document: every reachable
// node's rolling-window snapshot side by side, plus one merged cluster
// view built with telemetry.Merge (counts/sums exact, quantiles
// count-weighted estimates) and the gateway's own routing counters.
type ClusterStats struct {
	Now     time.Time              `json:"now"`
	Nodes   []NodeStats            `json:"nodes"`
	Cluster service.TelemetryStats `json:"cluster"`
	Gateway GatewayCounters        `json:"gateway"`
	// GatewayWindow is the gateway's own rolling telemetry (route latency,
	// peek hit rate, failovers), next to the per-node windows it fronts.
	GatewayWindow GatewayWindowStats `json:"gateway_window"`
	// InFlight is how many accepted jobs the gateway still considers
	// unfinished (terminal states not yet observed by a poll).
	InFlight int `json:"in_flight"`
	// LiveSessions is how many routed sessions the gateway still considers
	// running (and therefore replicates checkpoints for).
	LiveSessions int `json:"live_sessions"`
}

// FederatedStats fans a stats fetch out to every up or draining member
// concurrently and merges the answers. A node that fails to answer is
// reported with its error instead of silently shrinking the cluster view.
func (r *Router) FederatedStats(ctx context.Context) ClusterStats {
	members := r.members.Snapshot()
	out := ClusterStats{Now: time.Now(), Nodes: make([]NodeStats, len(members))}
	var wg sync.WaitGroup
	for i, m := range members {
		out.Nodes[i] = NodeStats{ID: m.ID, State: m.State}
		if m.State == NodeDown {
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			st, err := r.client.stats(ctx, url)
			if err != nil {
				out.Nodes[i].Error = err.Error()
				return
			}
			out.Nodes[i].Stats = &st
		}(i, m.URL)
	}
	wg.Wait()
	first := true
	for _, ns := range out.Nodes {
		if ns.Stats == nil {
			continue
		}
		if first {
			out.Cluster = *ns.Stats
			first = false
			continue
		}
		out.Cluster = mergeTelemetry(out.Cluster, *ns.Stats)
	}
	out.Cluster.Node = "" // the merged view belongs to no single node
	out.Gateway = r.Counters()
	out.GatewayWindow = r.tele.Stats(out.Now)
	out.InFlight = r.inFlight()
	out.LiveSessions = r.liveSessions()
	return out
}

// inFlight counts gateway job entries not yet observed terminal.
func (r *Router) inFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.jobs {
		if !e.terminal && e.replaced == nil {
			n++
		}
	}
	return n
}

// mergeTelemetry folds two per-node stats documents into a cluster view:
// gauges add (cluster queue depth is the sum of shard depths), rolling
// windows merge via telemetry.Merge, and the overlap window re-derives its
// fleet-level fraction from the summed comm/hidden seconds so it stays
// consistent with the per-job reports, exactly as each node's own window
// does.
func mergeTelemetry(a, b service.TelemetryStats) service.TelemetryStats {
	out := a
	if b.Now.After(out.Now) {
		out.Now = b.Now
	}
	if b.WindowSec > out.WindowSec {
		out.WindowSec = b.WindowSec
	}
	out.Queue.Depth = a.Queue.Depth + b.Queue.Depth
	out.Queue.Capacity = a.Queue.Capacity + b.Queue.Capacity
	out.Workers.Busy = a.Workers.Busy + b.Workers.Busy
	out.Workers.Total = a.Workers.Total + b.Workers.Total
	out.QueueDepth = telemetry.Merge(a.QueueDepth, b.QueueDepth)
	out.QueueWait = telemetry.Merge(a.QueueWait, b.QueueWait)
	exec := make(map[string]telemetry.Stats, len(a.Exec))
	for typ, s := range a.Exec {
		exec[typ] = s
	}
	for typ, s := range b.Exec {
		exec[typ] = telemetry.Merge(exec[typ], s)
	}
	out.Exec = exec
	out.Overlap = service.OverlapWindow{
		Jobs:      a.Overlap.Jobs + b.Overlap.Jobs,
		CommSec:   a.Overlap.CommSec + b.Overlap.CommSec,
		HiddenSec: a.Overlap.HiddenSec + b.Overlap.HiddenSec,
		PerJob:    telemetry.Merge(a.Overlap.PerJob, b.Overlap.PerJob),
	}
	if out.Overlap.CommSec > 0 {
		out.Overlap.Fraction = out.Overlap.HiddenSec / out.Overlap.CommSec
	}
	out.Points = telemetry.Merge(a.Points, b.Points)
	out.PointsPerSec = out.Points.SumPerSec
	out.Anomalies = mergeAnomalies(a.Anomalies, b.Anomalies)
	out.Sessions = mergeSessions(a.Sessions, b.Sessions)
	out.Warmer = mergeWarmer(a.Warmer, b.Warmer)
	return out
}

// mergeSessions folds two nodes' session summaries; every field is a
// count, so the cluster view is the sum.
func mergeSessions(a, b *session.Stats) *session.Stats {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &session.Stats{
		Active: a.Active + b.Active, Paused: a.Paused + b.Paused,
		Done: a.Done + b.Done, Failed: a.Failed + b.Failed,
		Created: a.Created + b.Created, Recovered: a.Recovered + b.Recovered,
		Resumes: a.Resumes + b.Resumes, Forks: a.Forks + b.Forks,
		Segments: a.Segments + b.Segments,
	}
}

// mergeWarmer folds two nodes' sweep-warmer summaries the same way.
func mergeWarmer(a, b *session.WarmerStats) *session.WarmerStats {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &session.WarmerStats{
		Observed: a.Observed + b.Observed, Predictions: a.Predictions + b.Predictions,
		Warmed: a.Warmed + b.Warmed, Shed: a.Shed + b.Shed, Hits: a.Hits + b.Hits,
		Tracks: a.Tracks + b.Tracks, Resets: a.Resets + b.Resets,
	}
}

// mergedAnomalyCap bounds the merged recent-anomaly history; each node
// already bounds its own, so this only trims pathological fan-ins.
const mergedAnomalyCap = 64

// mergeAnomalies folds two nodes' anomaly summaries: counts add, and the
// recent histories interleave by time (newest kept when over the cap).
func mergeAnomalies(a, b *flight.AnomalyStats) *flight.AnomalyStats {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &flight.AnomalyStats{
		Total:  a.Total + b.Total,
		Frozen: a.Frozen + b.Frozen,
	}
	if len(a.ByRule)+len(b.ByRule) > 0 {
		out.ByRule = make(map[string]int, len(a.ByRule)+len(b.ByRule))
		for k, v := range a.ByRule {
			out.ByRule[k] += v
		}
		for k, v := range b.ByRule {
			out.ByRule[k] += v
		}
	}
	out.Recent = make([]flight.Anomaly, 0, len(a.Recent)+len(b.Recent))
	out.Recent = append(out.Recent, a.Recent...)
	out.Recent = append(out.Recent, b.Recent...)
	sort.SliceStable(out.Recent, func(i, j int) bool {
		return out.Recent[i].Time.Before(out.Recent[j].Time)
	})
	if len(out.Recent) > mergedAnomalyCap {
		out.Recent = out.Recent[len(out.Recent)-mergedAnomalyCap:]
	}
	return out
}
