package cluster

import (
	"repro/internal/obs"
)

// submissionTrace is the gateway half of one distributed trace: the trace
// id minted at admission and the gw.* span recorder whose log rides the
// X-Advect-Trace header to the owning node. One submissionTrace follows a
// submission through every routing attempt, any failover, and — via the
// gateway job table — a dead-node resubmission, so the eventual owner
// receives the full routing history.
//
// A nil *submissionTrace is the disabled path (untraced request): every
// method no-ops and allocates nothing, mirroring the nil *obs.Recorder
// contract, so routeBody never branches on an "enabled" flag. The ci.sh
// gateway bench gate (BENCH_gateway.json) holds the disabled path to
// allocation-free.
type submissionTrace struct {
	id  string
	rec *obs.Recorder
}

// newSubmissionTrace mints a trace id and starts the gateway span clock.
func newSubmissionTrace() *submissionTrace {
	return &submissionTrace{id: obs.NewTraceID(), rec: obs.NewRecorder()}
}

// traceID returns the minted id ("" when disabled).
//
//advect:hotpath
func (t *submissionTrace) traceID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// clock reads the gateway trace clock (seconds since admission).
//
//advect:hotpath
func (t *submissionTrace) clock() float64 {
	if t == nil {
		return 0
	}
	return t.rec.Clock()
}

// add records one gateway-rank span timed with clock.
//
//advect:hotpath
func (t *submissionTrace) add(phase obs.Phase, label string, start, end float64) {
	if t == nil {
		return
	}
	t.rec.Add(obs.RankGateway, -1, phase, label, start, end)
}

// begin opens a gateway-rank span closed by its End.
//
//advect:hotpath
func (t *submissionTrace) begin(phase obs.Phase, label string) obs.Active {
	if t == nil {
		return obs.Active{}
	}
	return t.rec.Begin(obs.RankGateway, -1, phase, label)
}

// header snapshots the span log into an X-Advect-Trace value for the next
// dispatch ("" when disabled: set no header).
//
//advect:hotpath
func (t *submissionTrace) header() string {
	if t == nil {
		return ""
	}
	return t.rec.TraceContext(t.id).Encode()
}

// harvest folds a lost node's span log into the gateway recorder under
// that node's id, so the resubmission header carries the dead attempt's
// service and runner spans alongside the gateway's own.
func (t *submissionTrace) harvest(node string, c *obs.TraceContext) {
	if t == nil {
		return
	}
	t.rec.ImportRemote(node, c)
}
