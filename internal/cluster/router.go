package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Config sizes the gateway. The zero value (plus a member list) selects
// the defaults.
type Config struct {
	// Members are the advectd nodes this gateway fronts. Each node should
	// run with Config.NodeID = Member.ID so job ids stay globally unique.
	Members []Member
	// VNodes is the virtual-node count per member on the hash ring;
	// 0 selects DefaultVNodes.
	VNodes int
	// HealthInterval is the health-check sweep cadence. Default 1s.
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed probes turn a node
	// down. Default 2.
	FailThreshold int
	// RetryWait is the largest Retry-After the gateway will honor by
	// briefly retrying the owner shard in place; a larger advertised wait
	// fails over to the next ring node instead. Default 1s.
	RetryWait time.Duration
	// RequestTimeout bounds each outbound node request (not streams).
	// Default 10s.
	RequestTimeout time.Duration
	// StreamInterval is the cadence of merged cluster-stats events on the
	// federated SSE stream. Default 1s.
	StreamInterval time.Duration
	// HeartbeatInterval is the cadence of ": heartbeat" SSE comment lines
	// on idle federated streams (mirrors the per-node setting). Default 15s.
	HeartbeatInterval time.Duration
	// StatsWindow spans the gateway's rolling telemetry windows (route
	// latency, peek hit rate, failovers). Default 60s.
	StatsWindow time.Duration
	// SessionSyncInterval is the cadence of the checkpoint replication
	// sweep: how often the gateway pulls each live session's newest durable
	// checkpoint off its owner. It bounds how far back a session resumed
	// after its owner's death can land. Default 1s.
	SessionSyncInterval time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof on the gateway
	// mux (the same switch advectd exposes via -pprof).
	EnablePprof bool
	// Logger receives structured routing events. Default: discard.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.FailThreshold < 1 {
		c.FailThreshold = 2
	}
	if c.RetryWait <= 0 {
		c.RetryWait = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 15 * time.Second
	}
	if c.StatsWindow <= 0 {
		c.StatsWindow = 60 * time.Second
	}
	if c.SessionSyncInterval <= 0 {
		c.SessionSyncInterval = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// GatewayCounters are the gateway's cumulative routing statistics,
// reported by GET /v1/cluster and the federated stats document.
type GatewayCounters struct {
	// Submits counts client submissions accepted somewhere in the cluster.
	Submits uint64 `json:"submits"`
	// Failovers counts submissions that left the owner shard for a ring
	// successor (load shed, drain, or node failure).
	Failovers uint64 `json:"failovers"`
	// BriefRetries counts 429s absorbed by honoring a short Retry-After
	// on the owner instead of failing over.
	BriefRetries uint64 `json:"brief_retries"`
	// PeekHits counts sibling-cache probes that found the result.
	PeekHits uint64 `json:"peek_hits"`
	// Seeds counts results replicated onto the owner shard after a peek
	// hit elsewhere.
	Seeds uint64 `json:"seeds"`
	// Reroutes counts fingerprints re-submitted after a node death.
	Reroutes uint64 `json:"reroutes"`
	// Deduped counts dead-node jobs answered by aliasing them onto an
	// already in-flight (or just rerouted) job with the same fingerprint
	// instead of submitting again.
	Deduped uint64 `json:"deduped"`
	// Shed counts client submissions rejected cluster-wide (every
	// routable shard full).
	Shed uint64 `json:"shed"`
	// SessionRoutes counts sessions placed on a shard by fingerprint.
	SessionRoutes uint64 `json:"session_routes"`
	// SessionResumes counts dead-owner sessions re-created on a survivor
	// from a replicated checkpoint.
	SessionResumes uint64 `json:"session_resumes"`
	// CheckpointSyncs counts checkpoint replicas pulled off owners by the
	// session sync loop.
	CheckpointSyncs uint64 `json:"checkpoint_syncs"`
}

// jobEntry is the gateway's record of one accepted job: where it lives,
// its routing fingerprint, and the encoded request (kept so the job can be
// re-submitted if its node dies).
type jobEntry struct {
	id       string // node-issued job id (globally unique via NodeID prefix)
	node     string
	fp       string
	body     []byte
	terminal bool
	lost     string           // non-empty: node died and the re-submit failed
	replaced *jobEntry        // forwarding pointer after a reroute
	trace    *submissionTrace // gateway trace state; nil for untraced jobs
}

// Router is the cluster gateway: it owns the hash ring, the membership
// table, the gateway job table, and the federated telemetry hub. Construct
// with NewRouter, start the background loops with Start, expose via
// Handler, stop with Stop.
type Router struct {
	cfg     Config
	log     *slog.Logger
	client  *nodeClient
	members *Membership
	ring    atomic.Pointer[Ring]
	hub     *telemetry.Hub
	tele    *GatewayTelemetry
	mux     *http.ServeMux

	mu        sync.Mutex
	jobs      map[string]*jobEntry
	byFP      map[string]*jobEntry // in-flight job per fingerprint (dedup)
	sessTable map[string]*sessionEntry
	counters  GatewayCounters

	runCtx  context.Context
	stopRun context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool
}

// NewRouter builds a gateway over the configured members. Call Start to
// begin health checking and stream federation.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:       cfg,
		log:       cfg.Logger,
		client:    newNodeClient(cfg.RequestTimeout),
		members:   NewMembership(cfg.Members, cfg.FailThreshold, time.Now()),
		hub:       telemetry.NewHub(),
		tele:      NewGatewayTelemetry(cfg.StatsWindow),
		jobs:      map[string]*jobEntry{},
		byFP:      map[string]*jobEntry{},
		sessTable: map[string]*sessionEntry{},
	}
	r.rebuildRing()
	r.mux = r.routes()
	return r
}

// Start launches the health-check loop and the per-node stream readers.
// The loops stop when ctx is cancelled or Stop is called.
func (r *Router) Start(ctx context.Context) {
	if r.started.Swap(true) {
		return
	}
	r.runCtx, r.stopRun = context.WithCancel(ctx)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.healthLoop(r.runCtx)
	}()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.sessionSyncLoop(r.runCtx)
	}()
	for _, m := range r.members.Snapshot() {
		r.wg.Add(1)
		go func(m MemberStatus) {
			defer r.wg.Done()
			r.streamReader(r.runCtx, m.Member)
		}(m)
	}
}

// Stop halts the background loops and closes the federated hub.
func (r *Router) Stop() {
	if r.stopRun != nil {
		r.stopRun()
	}
	r.wg.Wait()
	r.hub.Close()
}

// Handler returns the gateway HTTP API.
func (r *Router) Handler() http.Handler { return r.mux }

// Ring returns the current routing ring (an immutable snapshot).
func (r *Router) Ring() *Ring { return r.ring.Load() }

// Members returns the membership table.
func (r *Router) Members() *Membership { return r.members }

// Counters snapshots the gateway routing counters.
func (r *Router) Counters() GatewayCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// rebuildRing derives a fresh ring from the currently routable members and
// publishes it atomically; Lookup callers never see a partial update.
func (r *Router) rebuildRing() {
	r.ring.Store(NewRing(r.members.Routable(), r.cfg.VNodes))
}

// Errors the routing core reports to the HTTP layer.
var (
	// ErrNoNodes means no member is routable (all down or draining).
	ErrNoNodes = errors.New("cluster: no routable nodes")
	// errShed wraps a cluster-wide 429 and carries the longest
	// Retry-After any shard advertised.
	errShed = errors.New("cluster: every routable shard shed the job")
)

// shedError is returned when every routable shard rejected the submit. It
// carries the nodes tried and the dispatch count so the 429 body tells the
// client exactly which shards turned the job away.
type shedError struct {
	RetryAfter time.Duration
	Nodes      []string
	Attempts   int
}

func (e *shedError) Error() string { return errShed.Error() }
func (e *shedError) Unwrap() error { return errShed }

// badRequest carries a node's 400 response straight back to the client.
type badRequest struct {
	Body []byte
}

func (e *badRequest) Error() string { return "cluster: node rejected request" }

// Submit routes one client submission: consistent-hash owner first, cache
// affinity peek before execution, Retry-After-honoring brief retry on a
// shedding owner, then failover around the ring. On success the returned
// view names the node that accepted the job. A traced request gets a
// cluster trace context minted here: the gateway records its own routing
// spans and ships them to the owner on the X-Advect-Trace header, so the
// job's Chrome trace starts at the gateway, not at the node.
func (r *Router) Submit(ctx context.Context, req service.Request) (service.View, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.View{}, "", fmt.Errorf("encode request: %w", err)
	}
	var tr *submissionTrace
	if req.Traced() {
		tr = newSubmissionTrace()
	}
	res, nodeID, err := r.routeBody(ctx, req.CacheKey(), body, tr)
	if err != nil {
		return service.View{}, "", err
	}
	return res.View, nodeID, nil
}

// routeBody is the routing core shared by client submits and death
// reroutes: pick the owner by fingerprint, walk ring successors on
// rejection, honor brief Retry-After hints in place, and record the
// accepted job in the gateway table. With a non-nil trace every routing
// decision lands as a gw.* span: the route lookup, the cache peek
// fan-out, each dispatch, each brief retry wait, and each failover, all
// shipped to the eventual owner in the dispatch header.
func (r *Router) routeBody(ctx context.Context, fp string, body []byte, tr *submissionTrace) (*submitResult, string, error) {
	ring := r.ring.Load()
	n := len(ring.Nodes())
	if n == 0 {
		return nil, "", ErrNoNodes
	}
	started := time.Now()
	peeked := false
	var maxRetryAfter time.Duration
	var tried []string
	attempts := 0
	for attempt := 0; attempt < n; attempt++ {
		routeStart := tr.clock()
		nodeID := ring.LookupOffset(fp, attempt)
		if r.members.State(nodeID) != NodeUp {
			continue // the ring is swapped atomically but may trail by a beat
		}
		tried = append(tried, nodeID)
		tr.add(obs.PhaseGWRoute, nodeID, routeStart, tr.clock())
		baseURL := r.members.URL(nodeID)
		if !peeked {
			// Cache affinity: make sure the target holds any result the
			// cluster already computed for this fingerprint before it
			// decides to execute. Done once per submission — after the
			// first probe every shard's answer is known.
			peeked = true
			peek := tr.begin(obs.PhaseGWPeek, nodeID)
			r.ensureCached(ctx, nodeID, baseURL, fp)
			peek.End()
		}
		retried := false
		dispatchFrom := tr.clock()
		for {
			attempts++
			// The gw.submit span is recorded before the dispatch so it
			// rides the header into the owner; the network hop itself shows
			// up as the owner-side gw.handoff span.
			preSend := tr.clock()
			tr.add(obs.PhaseGWSubmit, nodeID, dispatchFrom, preSend)
			res, err := r.client.submit(ctx, baseURL, body, tr.header())
			if err != nil {
				if ctx.Err() != nil {
					return nil, "", ctx.Err()
				}
				r.log.Warn("submit forward failed", traceArgs(tr, "node", nodeID,
					"attempt", attempts, "error", err)...)
				r.members.ReportFailure(nodeID, err.Error(), time.Now())
				tr.add(obs.PhaseGWFailover, nodeID, preSend, tr.clock())
				r.tele.RecordFailover(time.Now())
				break // next ring successor
			}
			switch res.Status {
			case http.StatusOK, http.StatusAccepted:
				r.recordAccepted(res, nodeID, fp, body, attempt > 0, tr)
				now := time.Now()
				r.tele.RecordRoute(now, nodeID, now.Sub(started), attempts)
				r.log.Info("job routed", traceArgs(tr, "node", nodeID, "attempt", attempts,
					"job", res.View.ID, "failover", attempt > 0)...)
				return res, nodeID, nil
			case http.StatusBadRequest:
				return nil, "", &badRequest{Body: res.Body}
			case http.StatusTooManyRequests:
				if res.RetryAfter > maxRetryAfter {
					maxRetryAfter = res.RetryAfter
				}
				// Honor a brief Retry-After in place: the owner keeps its
				// cache affinity and the wait is bounded; a longer wait
				// means the shard is genuinely backed up, so move on.
				if !retried && res.RetryAfter > 0 && res.RetryAfter <= r.cfg.RetryWait {
					retried = true
					waitStart := tr.clock()
					if !sleepCtx(ctx, res.RetryAfter) {
						return nil, "", ctx.Err()
					}
					r.addCounter(func(c *GatewayCounters) { c.BriefRetries++ })
					r.tele.RecordRetry(time.Now())
					dispatchFrom = tr.clock()
					tr.add(obs.PhaseGWRetry, nodeID, waitStart, dispatchFrom)
					continue
				}
				r.log.Info("shard shed, failing over", traceArgs(tr, "node", nodeID,
					"attempt", attempts, "retry_after", res.RetryAfter)...)
				tr.add(obs.PhaseGWFailover, nodeID, preSend, tr.clock())
				r.tele.RecordFailover(time.Now())
			case http.StatusServiceUnavailable:
				// The node started draining between health sweeps; adopt
				// the state now so the ring reroutes its range.
				if r.members.ReportDraining(nodeID, time.Now()) {
					r.rebuildRing()
					r.log.Info("node draining (learned from 503)",
						traceArgs(tr, "node", nodeID, "attempt", attempts)...)
				}
				tr.add(obs.PhaseGWFailover, nodeID, preSend, tr.clock())
				r.tele.RecordFailover(time.Now())
			default:
				r.log.Warn("unexpected submit status", traceArgs(tr, "node", nodeID,
					"attempt", attempts, "status", res.Status)...)
				tr.add(obs.PhaseGWFailover, nodeID, preSend, tr.clock())
				r.tele.RecordFailover(time.Now())
			}
			break // next ring successor
		}
	}
	r.addCounter(func(c *GatewayCounters) { c.Shed++ })
	r.tele.RecordShed(time.Now())
	r.log.Warn("submission shed cluster-wide", traceArgs(tr, "nodes", tried,
		"attempts", attempts, "retry_after", maxRetryAfter)...)
	return nil, "", &shedError{RetryAfter: maxRetryAfter, Nodes: tried, Attempts: attempts}
}

// ensureCached implements cross-shard cache affinity: if the target shard
// misses for fp but a sibling (up or draining) holds the result, replicate
// it to the target so the submit that follows is a local cache hit instead
// of a re-execution. Best-effort: any probe error just means the job
// executes normally.
func (r *Router) ensureCached(ctx context.Context, targetID, targetURL, fp string) {
	if _, hit, err := r.client.peek(ctx, targetURL, fp); err != nil {
		return
	} else if hit {
		r.tele.RecordPeek(time.Now(), true)
		return
	}
	type peekResult struct {
		doc json.RawMessage
		ok  bool
	}
	sibs := r.members.Peekable()
	results := make(chan peekResult, len(sibs))
	probes := 0
	for _, sib := range sibs {
		if sib == targetID {
			continue
		}
		sibURL := r.members.URL(sib)
		probes++
		go func() {
			doc, ok, err := r.client.peek(ctx, sibURL, fp)
			results <- peekResult{doc: doc, ok: ok && err == nil}
		}()
	}
	for i := 0; i < probes; i++ {
		res := <-results
		if !res.ok {
			continue
		}
		r.addCounter(func(c *GatewayCounters) { c.PeekHits++ })
		r.tele.RecordPeek(time.Now(), true)
		if err := r.client.seed(ctx, targetURL, fp, res.doc); err == nil {
			r.addCounter(func(c *GatewayCounters) { c.Seeds++ })
		}
		return // one copy is enough; drop remaining probe results
	}
	r.tele.RecordPeek(time.Now(), false)
}

// recordAccepted lands an accepted job in the gateway table. The trace
// state is kept with the entry so a dead-node resubmission continues the
// same trace instead of starting a fresh one.
func (r *Router) recordAccepted(res *submitResult, nodeID, fp string, body []byte, failover bool, tr *submissionTrace) {
	terminal := res.View.State.Terminal() // cache hits arrive already done
	e := &jobEntry{id: res.View.ID, node: nodeID, fp: fp, body: body, terminal: terminal, trace: tr}
	r.mu.Lock()
	r.jobs[e.id] = e
	if !terminal {
		r.byFP[fp] = e
	}
	r.counters.Submits++
	if failover {
		r.counters.Failovers++
	}
	r.mu.Unlock()
}

// resolve follows an id through any reroute forwarding chain.
func (r *Router) resolve(id string) (*jobEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.jobs[id]
	if !ok {
		return nil, false
	}
	for e.replaced != nil {
		e = e.replaced
	}
	return e, true
}

// observeState marks a job terminal once a proxied poll shows it finished,
// releasing its fingerprint from the in-flight dedup table.
func (r *Router) observeState(e *jobEntry, state service.State) {
	if !state.Terminal() {
		return
	}
	r.mu.Lock()
	e.terminal = true
	if r.byFP[e.fp] == e {
		delete(r.byFP, e.fp)
	}
	r.mu.Unlock()
}

// addCounter mutates the counters under the table lock.
func (r *Router) addCounter(f func(*GatewayCounters)) {
	r.mu.Lock()
	f(&r.counters)
	r.mu.Unlock()
}

// healthLoop sweeps every member at the configured cadence.
func (r *Router) healthLoop(ctx context.Context) {
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.sweepHealth(ctx)
		}
	}
}

// sweepHealth probes each member once and applies the state transitions:
// up ↔ draining from the healthz body, down after FailThreshold
// consecutive probe errors. A node going down triggers the reroute of its
// in-flight jobs; any transition rebuilds the ring. Rebalancing is
// deliberately asynchronous to job execution — jobs on healthy shards
// never pause while membership changes. Probe verdicts apply CAS-style
// against the generation read before the probe, so a transition that
// raced the probe (an operator drain landing after the healthz read)
// is never overwritten by the probe's stale evidence.
func (r *Router) sweepHealth(ctx context.Context) {
	for _, m := range r.members.Snapshot() {
		gen := r.members.generation(m.ID)
		st, err := r.client.health(ctx, m.URL)
		if ctx.Err() != nil {
			return
		}
		now := time.Now()
		switch {
		case err != nil:
			if r.members.ReportFailure(m.ID, err.Error(), now) {
				r.log.Warn("node down", "node", m.ID, "error", err)
				r.rebuildRing()
				r.rerouteDead(ctx, m.ID)
				r.resumeDeadSessions(ctx, m.ID)
			}
		case st == NodeUp:
			if r.members.reportIf(m.ID, gen, NodeUp, now) {
				r.log.Info("node up", "node", m.ID)
				r.rebuildRing()
			}
		case st == NodeDraining:
			if r.members.reportIf(m.ID, gen, NodeDraining, now) {
				r.log.Info("node draining", "node", m.ID)
				r.rebuildRing()
			}
		}
	}
}

// rerouteDead re-homes the dead node's in-flight jobs. Jobs are grouped by
// fingerprint and each fingerprint is submitted at most once: if an
// equivalent job is already in flight on a live shard the dead jobs simply
// alias onto it, otherwise one re-submission goes through the normal
// routing path (which peeks sibling caches first, so work the cluster
// already finished is never redone). Accepted jobs are therefore never
// lost, and no fingerprint executes twice because of the reroute.
func (r *Router) rerouteDead(ctx context.Context, deadID string) {
	r.mu.Lock()
	groups := map[string][]*jobEntry{}
	for _, e := range r.jobs {
		if e.node == deadID && !e.terminal && e.replaced == nil && e.lost == "" {
			groups[e.fp] = append(groups[e.fp], e)
		}
	}
	alive := map[string]*jobEntry{}
	for fp := range groups {
		if cur, ok := r.byFP[fp]; ok && cur.node != deadID && !cur.terminal && cur.replaced == nil {
			alive[fp] = cur
		}
	}
	r.mu.Unlock()

	for fp, entries := range groups {
		if tgt, ok := alive[fp]; ok {
			r.mu.Lock()
			for _, e := range entries {
				e.replaced = tgt
			}
			r.counters.Deduped += uint64(len(entries))
			r.mu.Unlock()
			r.log.Info("dead jobs deduped onto in-flight twin",
				traceArgs(entries[0].trace, "node", deadID, "fingerprint", fp,
					"jobs", len(entries), "twin", tgt.id)...)
			continue
		}
		// A traced job continues its original trace: salvage whatever span
		// log the dying node can still serve (best-effort — a hung process
		// often answers reads long after it stops passing health checks),
		// then mark the resubmission decision before routing again.
		tr := entries[0].trace
		if tr != nil {
			start := tr.clock()
			if c, err := r.client.spans(ctx, r.members.URL(deadID), entries[0].id); err == nil {
				tr.harvest(deadID, c)
			}
			tr.add(obs.PhaseGWResubmit, deadID, start, tr.clock())
		}
		res, nodeID, err := r.routeBody(ctx, fp, entries[0].body, tr)
		if err != nil {
			msg := fmt.Sprintf("node %s died and re-submit failed: %v", deadID, err)
			r.mu.Lock()
			for _, e := range entries {
				e.lost = msg
				e.terminal = true
			}
			r.mu.Unlock()
			r.log.Error("reroute failed", traceArgs(tr, "node", deadID,
				"fingerprint", fp, "error", err)...)
			continue
		}
		r.mu.Lock()
		tgt := r.jobs[res.View.ID]
		for _, e := range entries {
			e.replaced = tgt
		}
		r.counters.Reroutes++
		r.counters.Deduped += uint64(len(entries) - 1)
		r.mu.Unlock()
		r.tele.RecordReroute(time.Now())
		r.log.Info("jobs rerouted", traceArgs(tr, "from", deadID, "to", nodeID,
			"fingerprint", fp, "jobs", len(entries), "new_job", res.View.ID)...)
	}
}

// AddMember joins a new node to the cluster at runtime: it enters the
// membership up, takes over its consistent-hash share of the key space
// (≈K/N keys move, all of them to the newcomer — see Ring), and gains a
// stream reader so its events join the federated stream. Results the
// cluster already holds for re-homed keys stay reachable through the
// sibling-cache peek on submit, so adding capacity does not cost cache
// hits.
func (r *Router) AddMember(mem Member) error {
	if mem.ID == "" || mem.URL == "" {
		return errors.New("cluster: member needs an id and a url")
	}
	if !r.members.Add(mem, time.Now()) {
		return fmt.Errorf("cluster: member %q already present", mem.ID)
	}
	r.rebuildRing()
	if r.started.Load() && r.runCtx != nil && r.runCtx.Err() == nil {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.streamReader(r.runCtx, mem)
		}()
	}
	r.log.Info("member added", "node", mem.ID, "url", mem.URL)
	return nil
}

// DrainNode asks a member to drain and adopts the draining state
// immediately, rebalancing its shard range to the remaining up members.
// In-flight jobs on the draining node finish there and stay pollable.
func (r *Router) DrainNode(ctx context.Context, id string) error {
	url := r.members.URL(id)
	if url == "" {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if err := r.client.drain(ctx, url); err != nil {
		return err
	}
	if r.members.ReportDraining(id, time.Now()) {
		r.rebuildRing()
		r.log.Info("node draining (gateway initiated)", "node", id)
	}
	return nil
}

// traceArgs appends the submission's trace id to a routing log line's
// attributes when the job is traced, so gateway log records correlate
// with the distributed trace they belong to.
func traceArgs(tr *submissionTrace, args ...any) []any {
	if id := tr.traceID(); id != "" {
		return append(args, "trace_id", id)
	}
	return args
}

// sleepCtx sleeps for d or until ctx is cancelled; it reports whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
