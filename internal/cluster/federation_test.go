package cluster

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClusterFederatedStats: GET /v1/stats on the gateway reports every
// node's snapshot side by side, labelled, and a merged cluster view whose
// counts are the exact sum of the per-node counts.
func TestClusterFederatedStats(t *testing.T) {
	tc := startCluster(t, Config{}, "n1", "n2")

	// Land at least one executed job on every node (the ring decides, so
	// walk distinct problems until both shards have seen work).
	needed := map[string]bool{"n1": true, "n2": true}
	for i := 0; i < 40 && len(needed) > 0; i++ {
		status, v := tc.submit(t, fastBody(200+i))
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, status)
		}
		tc.waitDone(t, v.ID)
		delete(needed, v.Node)
	}
	if len(needed) > 0 {
		t.Fatalf("could not land a job on every node: %v", needed)
	}

	stats := tc.clusterStats(t)
	if len(stats.Nodes) != 2 {
		t.Fatalf("stats cover %d nodes, want 2", len(stats.Nodes))
	}
	var sum uint64
	for _, ns := range stats.Nodes {
		if ns.Stats == nil {
			t.Fatalf("node %s missing snapshot: %s", ns.ID, ns.Error)
		}
		if ns.Stats.Node != ns.ID {
			t.Errorf("node %s snapshot labelled %q", ns.ID, ns.Stats.Node)
		}
		if ns.Stats.Exec["simulate"].Count == 0 {
			t.Errorf("node %s reports no executions", ns.ID)
		}
		sum += ns.Stats.Exec["simulate"].Count
	}
	if got := stats.Cluster.Exec["simulate"].Count; got != sum {
		t.Errorf("merged exec count = %d, want the per-node sum %d", got, sum)
	}
	if stats.Cluster.Node != "" {
		t.Errorf("merged view labelled %q, want no node", stats.Cluster.Node)
	}
	if stats.Gateway.Submits == 0 {
		t.Errorf("gateway counters missing from federated stats")
	}
}

// TestClusterFederatedStream: the gateway SSE stream multiplexes every
// node's events with a leading "node" label, plus periodic merged cluster
// events no single node could emit.
func TestClusterFederatedStream(t *testing.T) {
	tc := startCluster(t, Config{StreamInterval: 200 * time.Millisecond}, "n1", "n2")

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, tc.gw.URL+"/v1/stream?interval=100ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	want := map[string]bool{"cluster": false, "n1": false, "n2": false}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "cluster" {
				want["cluster"] = true
			}
			// Node events are relabelled with a leading "node" field.
			for _, id := range []string{"n1", "n2"} {
				if strings.HasPrefix(data, `{"node":"`+id+`"`) {
					want[id] = true
				}
			}
		}
		done := true
		for _, seen := range want {
			done = done && seen
		}
		if done {
			return
		}
	}
	t.Fatalf("stream ended before seeing every source: %v (scan err %v)", want, sc.Err())
}

// TestMembershipTransitions covers the up → draining → down lifecycle and
// the consecutive-failure threshold.
func TestMembershipTransitions(t *testing.T) {
	now := time.Now()
	m := NewMembership([]Member{{ID: "a", URL: "ua"}, {ID: "b", URL: "ub"}}, 2, now)

	if got := m.Routable(); len(got) != 2 {
		t.Fatalf("Routable = %v, want both members up", got)
	}
	if m.ReportFailure("a", "boom", now) {
		t.Fatalf("first failure below the threshold must not take the node down")
	}
	if st := m.State("a"); st != NodeUp {
		t.Fatalf("state after one failure = %s, want up", st)
	}
	if !m.ReportFailure("a", "boom", now) {
		t.Fatalf("second consecutive failure must report the down transition")
	}
	if m.ReportFailure("a", "boom", now) {
		t.Fatalf("already-down node must not report the transition again")
	}
	if got := m.Routable(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Routable = %v, want [b]", got)
	}
	if got := m.Peekable(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Peekable = %v, want [b] (down nodes are not peekable)", got)
	}

	// A healthy probe resurrects the node and clears the failure count.
	if !m.ReportHealthy("a", now) {
		t.Fatalf("recovery must report a state change")
	}
	if st, _ := m.Get("a"); st.Fails != 0 {
		t.Errorf("fails = %d after recovery, want 0", st.Fails)
	}

	// Draining keeps the node peekable but not routable.
	if !m.ReportDraining("b", now) {
		t.Fatalf("drain must report a state change")
	}
	if m.ReportDraining("b", now) {
		t.Fatalf("repeated drain report must be a no-op")
	}
	if got := m.Routable(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Routable = %v, want [a]", got)
	}
	if got := m.Peekable(); len(got) != 2 {
		t.Errorf("Peekable = %v, want draining node included", got)
	}

	// Unknown ids are inert; Add refuses duplicates and admits new members.
	if m.State("zz") != "" || m.ReportFailure("zz", "x", now) {
		t.Errorf("unknown member must be inert")
	}
	if m.Add(Member{ID: "a", URL: "dup"}, now) {
		t.Errorf("re-adding an existing member must fail")
	}
	if !m.Add(Member{ID: "c", URL: "uc"}, now) {
		t.Errorf("adding a new member must succeed")
	}
	if st := m.State("c"); st != NodeUp {
		t.Errorf("new member state = %s, want up", st)
	}
}

// TestGatewayHealthzDegraded: with no routable member left, the gateway's
// own healthz flips to 503 and submissions answer 503 instead of hanging.
func TestGatewayHealthzDegraded(t *testing.T) {
	r := NewRouter(Config{Members: []Member{{ID: "a", URL: "http://127.0.0.1:0"}}, FailThreshold: 1})
	gw := httptest.NewServer(r.Handler())
	t.Cleanup(gw.Close)

	resp, err := http.Get(gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d with an (optimistically) up member, want 200", resp.StatusCode)
	}

	r.Members().ReportFailure("a", "gone", time.Now())
	r.rebuildRing()

	resp, err = http.Get(gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with every member down, want 503", resp.StatusCode)
	}

	resp, err = http.Post(gw.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no nodes = %d, want 503", resp.StatusCode)
	}
}
