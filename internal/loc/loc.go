// Package loc reproduces Figure 2 of the paper: lines of code per
// implementation, "minus blank lines and lines containing only comments",
// as a proxy for the programmer-productivity cost of each overlap strategy.
// It embeds the paper's reported Fortran counts (with the figures the text
// states exactly — 215 lines for the single-task implementation, 860 for
// the full-overlap implementation, 57-73% growth for MPI, +6% for single
// GPU — and interpolations for the bars the text only describes) and can
// count this reproduction's own Go implementations the same way.
package loc

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/core"
)

// PaperLoC returns the paper's Fortran line counts for the implementation.
// Exact reports whether the number is stated in the text (215, 860, the
// 57-73% MPI growth band, and the +6% GPU figure) or interpolated from
// Figure 2's description.
func PaperLoC(k core.Kind) (lines int, exact bool) {
	switch k {
	case core.SingleTask:
		return 215, true // stated: "860 versus 215"
	case core.BulkSync:
		return 338, true // stated: MPI adds 57%..73%; bulk is the low end
	case core.NonblockingOverlap:
		return 372, true // stated: "the nonblocking overlap adding the most" (73%)
	case core.ThreadedOverlap:
		return 350, false // between bulk and nonblocking
	case core.GPUResident:
		return 228, true // stated: "just 6% more lines"
	case core.GPUBulkSync:
		return 640, true // stated: "almost triples the number of lines"
	case core.GPUStreams:
		return 680, false // streams add modestly over bulk
	case core.HybridBulkSync:
		return 790, false // "the combination ... is most expensive"
	case core.HybridOverlap:
		return 860, true // stated: "exactly four times as many lines"
	}
	return 0, false
}

// CountReader counts the non-blank, non-comment-only lines of a source
// stream. commentPrefixes are the line-comment markers ("!" for Fortran,
// "//" for Go).
func CountReader(r *bufio.Scanner, commentPrefixes ...string) int {
	n := 0
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		comment := false
		for _, p := range commentPrefixes {
			if strings.HasPrefix(line, p) {
				comment = true
				break
			}
		}
		if !comment {
			n++
		}
	}
	return n
}

// CountFile counts a single Go or Fortran source file.
func CountFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	prefixes := []string{"//"}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".f", ".f90", ".f95", ".f03":
		prefixes = []string{"!", "c ", "C "}
	}
	return CountReader(sc, prefixes...), nil
}

// implFiles maps each implementation to the source files that make it up,
// mirroring the paper's whole-program accounting: every implementation
// includes the shared scaffolding it cannot run without.
var implFiles = map[core.Kind][]string{
	core.SingleTask:         {"impl.go", "single.go"},
	core.BulkSync:           {"impl.go", "single.go", "exchange.go", "bulk.go"},
	core.NonblockingOverlap: {"impl.go", "single.go", "exchange.go", "bulk.go", "nonblocking.go"},
	core.ThreadedOverlap:    {"impl.go", "single.go", "exchange.go", "bulk.go", "threaded.go"},
	core.GPUResident:        {"impl.go", "single.go", "gpu.go", "gpuresident.go"},
	core.GPUBulkSync:        {"impl.go", "single.go", "exchange.go", "gpu.go", "gpuresident.go", "gpumpi.go", "gpubulk.go"},
	core.GPUStreams:         {"impl.go", "single.go", "exchange.go", "gpu.go", "gpuresident.go", "gpumpi.go", "gpubulk.go"},
	core.HybridBulkSync:     {"impl.go", "single.go", "exchange.go", "gpu.go", "gpuresident.go", "hybrid.go"},
	core.HybridOverlap:      {"impl.go", "single.go", "exchange.go", "gpu.go", "gpuresident.go", "hybrid.go"},
}

// implDir locates this repository's internal/impl source directory.
func implDir() (string, error) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("loc: cannot locate source tree")
	}
	dir := filepath.Join(filepath.Dir(self), "..", "impl")
	if _, err := os.Stat(dir); err != nil {
		return "", fmt.Errorf("loc: implementation sources not found: %w", err)
	}
	return dir, nil
}

// OursLoC counts this reproduction's Go lines for the implementation,
// shared scaffolding included.
func OursLoC(k core.Kind) (int, error) {
	files, ok := implFiles[k]
	if !ok {
		return 0, fmt.Errorf("loc: no file map for %v", k)
	}
	dir, err := implDir()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, f := range files {
		n, err := CountFile(filepath.Join(dir, f))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Row is one bar of Figure 2.
type Row struct {
	Kind       core.Kind
	Paper      int  // the paper's Fortran count
	PaperExact bool // whether the text states the number
	Ours       int  // this reproduction's Go count (0 if unavailable)
}

// Figure2 returns all nine rows in paper order.
func Figure2() ([]Row, error) {
	var rows []Row
	for _, k := range core.Kinds() {
		p, exact := PaperLoC(k)
		ours, err := OursLoC(k)
		if err != nil {
			ours = 0
		}
		rows = append(rows, Row{Kind: k, Paper: p, PaperExact: exact, Ours: ours})
	}
	return rows, nil
}
