package loc

import (
	"bufio"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPaperFiguresMatchText(t *testing.T) {
	single, exact := PaperLoC(core.SingleTask)
	if single != 215 || !exact {
		t.Fatalf("single task = %d (exact=%v), want 215 stated", single, exact)
	}
	full, exact := PaperLoC(core.HybridOverlap)
	if full != 860 || !exact {
		t.Fatalf("full overlap = %d (exact=%v), want 860 stated", full, exact)
	}
	// "exactly four times as many lines (860 versus 215)"
	if full != 4*single {
		t.Fatalf("full/single = %d/%d, want exactly 4x", full, single)
	}
}

func TestPaperMPIGrowthBand(t *testing.T) {
	// "MPI parallelization adds 57-73% more lines, with the nonblocking
	// overlap adding the most."
	single, _ := PaperLoC(core.SingleTask)
	for _, k := range []core.Kind{core.BulkSync, core.NonblockingOverlap, core.ThreadedOverlap} {
		v, _ := PaperLoC(k)
		growth := float64(v-single) / float64(single)
		if growth < 0.55 || growth > 0.75 {
			t.Fatalf("%v growth %.2f outside the 57-73%% band", k, growth)
		}
	}
	nb, _ := PaperLoC(core.NonblockingOverlap)
	bulk, _ := PaperLoC(core.BulkSync)
	threaded, _ := PaperLoC(core.ThreadedOverlap)
	if nb <= bulk || nb <= threaded {
		t.Fatal("nonblocking must add the most lines")
	}
}

func TestPaperGPUGrowth(t *testing.T) {
	// "Targeting a single GPU ... uses just 6% more lines ... adding MPI
	// parallelism to the GPU computation almost triples the number of
	// lines."
	single, _ := PaperLoC(core.SingleTask)
	gpu, _ := PaperLoC(core.GPUResident)
	if g := float64(gpu-single) / float64(single); g < 0.05 || g > 0.07 {
		t.Fatalf("GPU growth %.3f, want ~6%%", g)
	}
	gpuMPI, _ := PaperLoC(core.GPUBulkSync)
	if r := float64(gpuMPI) / float64(gpu); r < 2.5 || r > 3.1 {
		t.Fatalf("GPU MPI ratio %.2f, want almost 3x", r)
	}
}

func TestPaperMonotoneComplexity(t *testing.T) {
	// Within each family, more overlap machinery means more lines.
	pairs := [][2]core.Kind{
		{core.SingleTask, core.BulkSync},
		{core.BulkSync, core.NonblockingOverlap},
		{core.GPUResident, core.GPUBulkSync},
		{core.GPUBulkSync, core.GPUStreams},
		{core.GPUStreams, core.HybridBulkSync},
		{core.HybridBulkSync, core.HybridOverlap},
	}
	for _, p := range pairs {
		a, _ := PaperLoC(p[0])
		b, _ := PaperLoC(p[1])
		if b <= a {
			t.Fatalf("%v (%d) should exceed %v (%d)", p[1], b, p[0], a)
		}
	}
}

func TestCountReader(t *testing.T) {
	src := `// a comment
package x

func f() int { // trailing comments do not make a line a comment
	return 1
}
`
	sc := bufio.NewScanner(strings.NewReader(src))
	if n := CountReader(sc, "//"); n != 4 {
		t.Fatalf("counted %d, want 4", n)
	}
}

func TestCountReaderFortranStyle(t *testing.T) {
	src := `! comment
program advect
  u = 0
!
end program
`
	sc := bufio.NewScanner(strings.NewReader(src))
	if n := CountReader(sc, "!"); n != 3 {
		t.Fatalf("counted %d, want 3", n)
	}
}

func TestOursLoCCounts(t *testing.T) {
	for _, k := range core.Kinds() {
		n, err := OursLoC(k)
		if err != nil {
			t.Skipf("source tree not available: %v", err)
		}
		if n < 50 {
			t.Fatalf("%v: suspiciously few lines (%d)", k, n)
		}
	}
	// Relative ordering must mirror the paper's qualitative finding: the
	// overlap implementations cost more code than their bulk parents.
	single, _ := OursLoC(core.SingleTask)
	bulk, _ := OursLoC(core.BulkSync)
	nb, _ := OursLoC(core.NonblockingOverlap)
	hybrid, _ := OursLoC(core.HybridOverlap)
	if !(single < bulk && bulk < nb && bulk < hybrid) {
		t.Fatalf("LoC ordering broken: single=%d bulk=%d nonblocking=%d hybrid=%d",
			single, bulk, nb, hybrid)
	}
}

func TestFigure2Rows(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Paper <= 0 {
			t.Fatalf("%v: no paper count", r.Kind)
		}
	}
}

func TestCountFileMissing(t *testing.T) {
	if _, err := CountFile("/nonexistent/file.go"); err == nil {
		t.Fatal("missing file accepted")
	}
}
