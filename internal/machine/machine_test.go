package machine

import "testing"

func TestTableIIValues(t *testing.T) {
	// Structural facts transcribed from the paper's Table II.
	cases := []struct {
		m                *Machine
		nodes, mem       int
		sockets, perSock int
		clock            float64
		net, mpi         string
	}{
		{JaguarPF(), 18688, 16, 2, 6, 2.6, "Cray SeaStar 2+", "Cray MPT 4.0.0"},
		{HopperII(), 6392, 32, 2, 12, 2.1, "Cray Gemini", "Cray MPT 5.1.3"},
		{Lens(), 31, 64, 4, 4, 2.3, "DDR Infiniband", "OpenMPI 1.3.3"},
		{Yona(), 16, 32, 2, 6, 2.6, "QDR Infiniband", "OpenMPI 1.7a1"},
	}
	for _, c := range cases {
		if c.m.Nodes != c.nodes {
			t.Errorf("%s nodes = %d, want %d", c.m.Name, c.m.Nodes, c.nodes)
		}
		if c.m.Node.MemoryGB != c.mem {
			t.Errorf("%s memory = %d, want %d", c.m.Name, c.m.Node.MemoryGB, c.mem)
		}
		if c.m.Node.Sockets != c.sockets || c.m.Node.CoresPerSocket != c.perSock {
			t.Errorf("%s sockets %dx%d, want %dx%d", c.m.Name,
				c.m.Node.Sockets, c.m.Node.CoresPerSocket, c.sockets, c.perSock)
		}
		if c.m.Node.ClockGHz != c.clock {
			t.Errorf("%s clock = %v, want %v", c.m.Name, c.m.Node.ClockGHz, c.clock)
		}
		if c.m.Net.Name != c.net {
			t.Errorf("%s interconnect = %s, want %s", c.m.Name, c.m.Net.Name, c.net)
		}
		if c.m.MPIName != c.mpi {
			t.Errorf("%s MPI = %s, want %s", c.m.Name, c.m.MPIName, c.mpi)
		}
	}
}

func TestThreadChoicesMatchPaper(t *testing.T) {
	// §V-A/§V-B: the thread counts measured per machine.
	want := map[string][]int{
		"JaguarPF":  {1, 2, 3, 6, 12},
		"Hopper II": {1, 2, 3, 6, 12, 24},
		"Lens":      {1, 2, 4, 8, 16},
		"Yona":      {1, 2, 3, 6, 12},
	}
	for _, m := range All() {
		w := want[m.Name]
		if len(m.ThreadChoices) != len(w) {
			t.Fatalf("%s choices %v, want %v", m.Name, m.ThreadChoices, w)
		}
		for i := range w {
			if m.ThreadChoices[i] != w[i] {
				t.Fatalf("%s choices %v, want %v", m.Name, m.ThreadChoices, w)
			}
		}
		// Every choice divides the node's core count.
		for _, c := range m.ThreadChoices {
			if m.Node.Cores()%c != 0 {
				t.Fatalf("%s: %d threads does not divide %d cores", m.Name, c, m.Node.Cores())
			}
		}
	}
}

func TestNUMADomains(t *testing.T) {
	// Hopper II sockets hold two 6-core dies: four domains of six cores.
	hop := HopperII()
	if hop.Node.NUMADomains != 4 || hop.Node.CoresPerNUMADomain() != 6 {
		t.Fatalf("Hopper NUMA: %d domains of %d cores", hop.Node.NUMADomains, hop.Node.CoresPerNUMADomain())
	}
	jag := JaguarPF()
	if jag.Node.CoresPerNUMADomain() != 6 {
		t.Fatalf("JaguarPF NUMA domain = %d cores", jag.Node.CoresPerNUMADomain())
	}
}

func TestValidate(t *testing.T) {
	y := Yona()
	if err := y.Validate(12, 6); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, bad := range []struct{ cores, threads int }{
		{0, 1}, {-1, 1}, {y.Cores() + 12, 1}, {12, 13}, {13, 2}, {12, 0},
	} {
		if err := y.Validate(bad.cores, bad.threads); err == nil {
			t.Fatalf("Validate(%d, %d) accepted", bad.cores, bad.threads)
		}
	}
}

func TestNodesFor(t *testing.T) {
	y := Yona()
	if y.NodesFor(12) != 1 || y.NodesFor(13) != 2 || y.NodesFor(192) != 16 {
		t.Fatal("NodesFor wrong")
	}
}

func TestCoresPerGPUWithoutGPU(t *testing.T) {
	if JaguarPF().CoresPerGPU() != 0 {
		t.Fatal("GPU-less machine reports cores per GPU")
	}
}

func TestGPULinkFasterOnYona(t *testing.T) {
	// §III: Yona has "a faster PCIe bus".
	lens, yona := Lens(), Yona()
	if yona.GPU.Link.GBs <= lens.GPU.Link.GBs {
		t.Fatal("Yona PCIe should be faster than Lens")
	}
	if yona.GPU.Link.LatencySec >= lens.GPU.Link.LatencySec {
		t.Fatal("Yona PCIe latency should be lower than Lens")
	}
}

func TestPeakPerformanceOrdering(t *testing.T) {
	// §III: JaguarPF 2.3 PF peak, Hopper II almost 1.3 PF. Our calibrated
	// sustained rates are far below peak, but the machine sizes must give
	// JaguarPF the larger total capacity.
	jag, hop := JaguarPF(), HopperII()
	jagCap := float64(jag.Cores()) * jag.Node.StencilGFPerCore
	hopCap := float64(hop.Cores()) * hop.Node.StencilGFPerCore
	if jagCap <= hopCap {
		t.Fatalf("JaguarPF capacity %.0f <= Hopper %.0f", jagCap, hopCap)
	}
}
