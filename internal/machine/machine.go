// Package machine describes the four computers of the paper's Table II —
// JaguarPF (Cray XT5), Hopper II (Cray XE6), Lens (DDR-Infiniband cluster
// with Tesla C1060 GPUs), and Yona (QDR-Infiniband cluster with Tesla
// C2050 GPUs) — as performance models: node compute rates, OpenMP region
// overheads, NUMA penalties, interconnect latency/bandwidth, and the
// CPU-GPU communication paths.
//
// The structural parameters come from Table II. The rate constants are
// calibrated to the paper's reported numbers (§V, especially the Yona
// single-node anchors in §V-E: GPU-resident 86 GF, bulk-sync GPU+MPI 24 GF,
// stream-overlap 35 GF, full CPU+GPU overlap 82 GF) so the reproduction's
// figures carry the paper's shapes; they are not microbenchmarks of the
// original hardware.
package machine

import (
	"fmt"

	"repro/internal/gpusim"
)

// Interconnect models the cluster network as seen by one MPI task.
type Interconnect struct {
	Name         string
	LatencySec   float64 // end-to-end small-message latency
	BandwidthGBs float64 // per-node injection bandwidth, shared by tasks
	MsgCPUSec    float64 // CPU cost to post one send or receive
	// InjectionSec is the NIC-side serialization cost per message: a
	// node's tasks queue on the injection engine, so many small tasks pay
	// more than a few large ones — one driver of the paper's observation
	// that more threads per task win at high core counts (Figs. 5-6).
	InjectionSec float64
	// OffloadFraction is how much of a nonblocking message's progress the
	// NIC makes without CPU involvement — the machine property that decides
	// whether MPI overlap (§IV-C) can actually hide anything.
	OffloadFraction float64
	// BarrierBaseSec and BarrierPerLevelSec model MPI_Barrier as a
	// dissemination barrier: base + perLevel·log2(P), plus system jitter
	// folded into the base at scale.
	BarrierBaseSec     float64
	BarrierPerLevelSec float64
}

// Node models one compute node's CPUs and memory system.
type Node struct {
	Sockets        int
	CoresPerSocket int
	ClockGHz       float64
	MemoryGB       int

	// NUMADomains is the number of memory domains threads can span; on
	// Hopper II each 12-core socket holds two 6-core dies, so 4 domains.
	NUMADomains int

	// StencilGFPerCore is the calibrated per-core sustained rate of the
	// 53-flop stencil loop (compute step only).
	StencilGFPerCore float64
	// CopyFraction is the cost of the paper's Step 3 (copy new state to
	// current state) relative to the compute step.
	CopyFraction float64
	// PackGBs is the rate at which a core packs or unpacks halo buffers.
	PackGBs float64
	// NUMAEfficiency multiplies the per-core rate when a thread team spans
	// more than one NUMA domain (applied once per extra domain).
	NUMAEfficiency float64
	// OMPRegionBaseSec and OMPRegionPerThreadSec model the cost of one
	// OpenMP parallel region (fork + barrier).
	OMPRegionBaseSec      float64
	OMPRegionPerThreadSec float64
	// GuidedChunkSec is the dispatch cost per guided-schedule chunk
	// (§IV-D pays this to let the master join late).
	GuidedChunkSec float64
	// ThreadEffSlope is the per-extra-thread efficiency loss of a thread
	// team (scheduling imbalance, shared-cache pressure): team efficiency
	// is 1 - slope·(t-1). It is what makes few threads per task best at
	// low core counts in Figures 5 and 6.
	ThreadEffSlope float64
}

// Cores returns the CPU cores per node.
func (n Node) Cores() int { return n.Sockets * n.CoresPerSocket }

// CoresPerNUMADomain returns the cores in one memory domain.
func (n Node) CoresPerNUMADomain() int {
	return n.Cores() / n.NUMADomains
}

// GPUPath models the CPU-GPU communication routes of a GPU node.
// The paper's decisive observation (§V-E) is that the path through which
// boundary data reaches MPI is enormously slower in the bulk-sync and
// stream implementations (pageable copies, pack/unpack, per-phase
// synchronization, tasks time-sharing the device) than the pinned
// stream-overlapped path of the full-overlap implementation.
type GPUPath struct {
	Props gpusim.Props
	Link  gpusim.Link // pinned, stream-ordered transfers (implementations G/I)

	// PageableGBs is the effective rate of synchronous copies from
	// pageable host arrays (implementation F/H's plain exchanges).
	PageableGBs float64
	// ShmMPIGBs is the effective rate of the CPU-side MPI pipeline the
	// GPU boundary data must traverse in F and G (transport + copies).
	ShmMPIGBs float64
	// PhaseSyncSec is the CPU-GPU synchronization cost paid per exchange
	// phase in the bulk implementations.
	PhaseSyncSec float64
	// TaskShareSec is the per-step context overhead each additional MPI
	// task sharing the device adds (pre-MPS time sharing).
	TaskShareSec float64
}

// Machine is one of the paper's four test systems.
type Machine struct {
	Name        string
	System      string // e.g. "Cray XT5"
	Nodes       int
	Node        Node
	Net         Interconnect
	MPIName     string
	GPU         *GPUPath // nil for the CPU-only Crays
	GPUsPerNode int

	// ThreadChoices are the OpenMP threads-per-task counts measured in the
	// paper for this machine.
	ThreadChoices []int
}

// Cores returns the machine's total CPU core count.
func (m *Machine) Cores() int { return m.Nodes * m.Node.Cores() }

// HasGPU reports whether the machine has GPUs.
func (m *Machine) HasGPU() bool { return m.GPU != nil && m.GPUsPerNode > 0 }

// CoresPerGPU returns CPU cores per GPU (the figure captions' "one GPU per
// N cores").
func (m *Machine) CoresPerGPU() int {
	if !m.HasGPU() {
		return 0
	}
	return m.Node.Cores() / m.GPUsPerNode
}

// NodesFor returns how many nodes a run on the given core count occupies.
func (m *Machine) NodesFor(cores int) int {
	c := m.Node.Cores()
	return (cores + c - 1) / c
}

// Validate checks a (cores, threadsPerTask) configuration against the
// machine.
func (m *Machine) Validate(cores, threads int) error {
	if cores <= 0 || cores > m.Cores() {
		return fmt.Errorf("machine %s: %d cores out of range (max %d)", m.Name, cores, m.Cores())
	}
	if threads <= 0 || threads > m.Node.Cores() {
		return fmt.Errorf("machine %s: %d threads per task exceeds node cores %d",
			m.Name, threads, m.Node.Cores())
	}
	if cores%threads != 0 {
		return fmt.Errorf("machine %s: %d cores not divisible by %d threads per task",
			m.Name, cores, threads)
	}
	return nil
}

// JaguarPF is the Cray XT5 at OLCF: 18688 nodes of two 6-core 2.6 GHz
// Opterons on a SeaStar 2+ torus (Table II).
func JaguarPF() *Machine {
	return &Machine{
		Name:    "JaguarPF",
		System:  "Cray XT5",
		Nodes:   18688,
		MPIName: "Cray MPT 4.0.0",
		Node: Node{
			Sockets:               2,
			CoresPerSocket:        6,
			ClockGHz:              2.6,
			MemoryGB:              16,
			NUMADomains:           2,
			StencilGFPerCore:      0.85,
			CopyFraction:          0.35,
			PackGBs:               2.2,
			NUMAEfficiency:        0.93,
			OMPRegionBaseSec:      4.0e-6,
			OMPRegionPerThreadSec: 0.5e-6,
			GuidedChunkSec:        0.4e-6,
			ThreadEffSlope:        0.008,
		},
		Net: Interconnect{
			Name:               "Cray SeaStar 2+",
			LatencySec:         7e-6,
			InjectionSec:       1.6e-6,
			BandwidthGBs:       1.8,
			MsgCPUSec:          1.2e-6,
			OffloadFraction:    0.65,
			BarrierBaseSec:     12e-6,
			BarrierPerLevelSec: 3.0e-6,
		},
		ThreadChoices: []int{1, 2, 3, 6, 12},
	}
}

// HopperII is the Cray XE6 at NERSC: 6392 nodes of two 12-core 2.1 GHz
// Opterons (each socket two 6-core dies) on the Gemini interconnect.
func HopperII() *Machine {
	return &Machine{
		Name:    "Hopper II",
		System:  "Cray XE6",
		Nodes:   6392,
		MPIName: "Cray MPT 5.1.3",
		Node: Node{
			Sockets:               2,
			CoresPerSocket:        12,
			ClockGHz:              2.1,
			MemoryGB:              32,
			NUMADomains:           4,
			StencilGFPerCore:      0.72,
			CopyFraction:          0.35,
			PackGBs:               2.6,
			NUMAEfficiency:        0.94,
			OMPRegionBaseSec:      2.0e-6,
			OMPRegionPerThreadSec: 0.3e-6,
			GuidedChunkSec:        0.35e-6,
			ThreadEffSlope:        0.006,
		},
		Net: Interconnect{
			Name:               "Cray Gemini",
			LatencySec:         1.8e-6,
			InjectionSec:       0.9e-6,
			BandwidthGBs:       4.0,
			MsgCPUSec:          0.4e-6,
			OffloadFraction:    0.95,
			BarrierBaseSec:     8e-6,
			BarrierPerLevelSec: 1.2e-6,
		},
		ThreadChoices: []int{1, 2, 3, 6, 12, 24},
	}
}

// Lens is the OLCF analysis cluster: 31 nodes of four 4-core 2.3 GHz
// Opterons, DDR Infiniband, one Tesla C1060 per node.
func Lens() *Machine {
	return &Machine{
		Name:    "Lens",
		System:  "Infiniband cluster",
		Nodes:   31,
		MPIName: "OpenMPI 1.3.3",
		Node: Node{
			Sockets:               4,
			CoresPerSocket:        4,
			ClockGHz:              2.3,
			MemoryGB:              64,
			NUMADomains:           4,
			StencilGFPerCore:      0.62,
			CopyFraction:          0.35,
			PackGBs:               1.8,
			NUMAEfficiency:        0.92,
			OMPRegionBaseSec:      4.0e-6,
			OMPRegionPerThreadSec: 0.5e-6,
			GuidedChunkSec:        0.5e-6,
			ThreadEffSlope:        0.007,
		},
		Net: Interconnect{
			Name:               "DDR Infiniband",
			LatencySec:         3.5e-6,
			InjectionSec:       2.0e-6,
			BandwidthGBs:       1.4,
			MsgCPUSec:          1.5e-6,
			OffloadFraction:    0.30,
			BarrierBaseSec:     15e-6,
			BarrierPerLevelSec: 4e-6,
		},
		GPUsPerNode: 1,
		GPU: &GPUPath{
			Props:        gpusim.TeslaC1060(),
			Link:         gpusim.PCIeGen1(),
			PageableGBs:  1.0,
			ShmMPIGBs:    0.12,
			PhaseSyncSec: 0.8e-3,
			TaskShareSec: 1.2e-3,
		},
		ThreadChoices: []int{1, 2, 4, 8, 16},
	}
}

// Yona is the experimental OLCF cluster: 16 nodes of two 6-core 2.6 GHz
// Opterons, QDR Infiniband, one Tesla C2050 per node on a faster PCIe bus.
func Yona() *Machine {
	return &Machine{
		Name:    "Yona",
		System:  "Infiniband cluster",
		Nodes:   16,
		MPIName: "OpenMPI 1.7a1",
		Node: Node{
			Sockets:               2,
			CoresPerSocket:        6,
			ClockGHz:              2.6,
			MemoryGB:              32,
			NUMADomains:           2,
			StencilGFPerCore:      0.85,
			CopyFraction:          0.35,
			PackGBs:               2.2,
			NUMAEfficiency:        0.93,
			OMPRegionBaseSec:      4.0e-6,
			OMPRegionPerThreadSec: 0.5e-6,
			GuidedChunkSec:        0.45e-6,
			ThreadEffSlope:        0.008,
		},
		Net: Interconnect{
			Name:               "QDR Infiniband",
			LatencySec:         1.9e-6,
			InjectionSec:       1.4e-6,
			BandwidthGBs:       2.8,
			MsgCPUSec:          1.0e-6,
			OffloadFraction:    0.35,
			BarrierBaseSec:     10e-6,
			BarrierPerLevelSec: 2.5e-6,
		},
		GPUsPerNode: 1,
		GPU: &GPUPath{
			Props:        gpusim.TeslaC2050(),
			Link:         gpusim.PCIeGen2(),
			PageableGBs:  1.5,
			ShmMPIGBs:    0.165,
			PhaseSyncSec: 0.6e-3,
			TaskShareSec: 0.9e-3,
		},
		ThreadChoices: []int{1, 2, 3, 6, 12},
	}
}

// All returns the four machines in the paper's order.
func All() []*Machine {
	return []*Machine{JaguarPF(), HopperII(), Lens(), Yona()}
}

// ByName returns the machine with the given name (case-sensitive).
func ByName(name string) (*Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown machine %q", name)
}
