package service

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func testSnapshot(m *Metrics, at time.Time) Snapshot {
	return m.Snapshot(at,
		QueueGauges{Depth: 1, Capacity: 4},
		WorkerGauges{Busy: 1, Total: 2},
		CacheStats{Size: 3, Capacity: 8, Hits: 5, Misses: 7, Evictions: 1})
}

// TestPrometheusHelpAndTypeLines checks that every exported series carries
// its HELP and TYPE metadata, with the advectd_ prefix throughout.
func TestPrometheusHelpAndTypeLines(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewMetrics(start)
	m.CountJob(TypeSimulate, outcomeSubmitted)
	m.CountJob(TypeSimulate, outcomeDone)
	m.ObserveLatency(TypeSimulate, 3*time.Millisecond)
	text := testSnapshot(m, start.Add(time.Minute)).Prometheus()

	series := map[string]string{
		"advectd_uptime_seconds":       "gauge",
		"advectd_queue_depth":          "gauge",
		"advectd_queue_capacity":       "gauge",
		"advectd_workers_busy":         "gauge",
		"advectd_workers_total":        "gauge",
		"advectd_worker_utilization":   "gauge",
		"advectd_cache_size":           "gauge",
		"advectd_cache_capacity":       "gauge",
		"advectd_cache_events_total":   "counter",
		"advectd_jobs_total":           "counter",
		"advectd_job_duration_seconds": "histogram",
	}
	for name, typ := range series {
		if !strings.Contains(text, "# HELP "+name+" ") {
			t.Errorf("missing HELP line for %s", name)
		}
		if !strings.Contains(text, "# TYPE "+name+" "+typ+"\n") {
			t.Errorf("missing TYPE %s line for %s", typ, name)
		}
	}
	for _, want := range []string{
		"advectd_uptime_seconds 60\n",
		"advectd_queue_depth 1\n",
		"advectd_worker_utilization 0.5\n",
		`advectd_cache_events_total{event="hit"} 5`,
		`advectd_jobs_total{type="simulate",outcome="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// No series escapes the prefix.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "advectd_") {
			t.Errorf("unprefixed series line %q", line)
		}
	}
}

// TestPrometheusLabelEscaping checks that label values with quotes,
// backslashes, and newlines render in escaped form (the %q escapes for
// these characters coincide with the Prometheus text-format escapes).
func TestPrometheusLabelEscaping(t *testing.T) {
	m := NewMetrics(time.Unix(0, 0))
	m.CountJob("we\"ird\\type\nx", outcomeDone)
	text := testSnapshot(m, time.Unix(1, 0)).Prometheus()
	want := `advectd_jobs_total{type="we\"ird\\type\nx",outcome="done"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped label missing; want %q in:\n%s", want, text)
	}
	if strings.Contains(text, "type=\"we\"ird") {
		t.Fatal("raw quote leaked into a label value")
	}
}

// TestPrometheusHistogramBuckets checks the histogram contract: cumulative
// non-decreasing bucket counts, a trailing +Inf bucket equal to the
// observation count, and consistent sum/count series.
func TestPrometheusHistogramBuckets(t *testing.T) {
	m := NewMetrics(time.Unix(0, 0))
	durations := []time.Duration{
		200 * time.Microsecond, // first bucket (0.0005)
		3 * time.Millisecond,   // 0.005
		3 * time.Millisecond,   // 0.005 again
		40 * time.Second,       // 60
		500 * time.Second,      // +Inf only
	}
	for _, d := range durations {
		m.ObserveLatency(TypePredict, d)
	}
	text := testSnapshot(m, time.Unix(1, 0)).Prometheus()

	var les []string
	var counts []uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `advectd_job_duration_seconds_bucket{type="predict",le="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `advectd_job_duration_seconds_bucket{type="predict",le="`)
		le, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("bucket count in %q: %v", line, err)
		}
		les = append(les, le)
		counts = append(counts, n)
	}
	if len(counts) != len(latencyBuckets)+1 {
		t.Fatalf("got %d buckets, want %d", len(counts), len(latencyBuckets)+1)
	}
	if les[len(les)-1] != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", les[len(les)-1])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative at le=%s: %v", les[i], counts)
		}
	}
	if got := counts[len(counts)-1]; got != uint64(len(durations)) {
		t.Fatalf("+Inf bucket = %d, want %d", got, len(durations))
	}
	// Upper bounds themselves are sorted.
	for i := 1; i < len(les)-1; i++ {
		a, _ := strconv.ParseFloat(les[i-1], 64)
		b, _ := strconv.ParseFloat(les[i], 64)
		if b <= a {
			t.Fatalf("bucket bounds not increasing: %v", les)
		}
	}
	if !strings.Contains(text, `advectd_job_duration_seconds_count{type="predict"} 5`) {
		t.Fatalf("count series wrong:\n%s", text)
	}
	var sum float64
	for _, d := range durations {
		sum += d.Seconds()
	}
	sumLine := `advectd_job_duration_seconds_sum{type="predict"} ` +
		strconv.FormatFloat(sum, 'g', -1, 64)
	if !strings.Contains(text, sumLine) {
		t.Fatalf("sum series missing %q:\n%s", sumLine, text)
	}
}

// TestHistogramSnapshotCumulative pins the JSON view of the histogram to
// the same cumulative semantics as the text exposition.
func TestHistogramSnapshotCumulative(t *testing.T) {
	h := newHistogram()
	h.Observe(0.0001)
	h.Observe(0.0001)
	h.Observe(1e6) // beyond the last bound
	s := h.snapshot()
	if len(s.Buckets) != len(latencyBuckets)+1 {
		t.Fatalf("bucket count %d", len(s.Buckets))
	}
	if s.Buckets[0].Count != 2 {
		t.Fatalf("first bucket %d, want 2", s.Buckets[0].Count)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LE != "+Inf" || last.Count != 3 {
		t.Fatalf("+Inf bucket %+v", last)
	}
	if s.Count != 3 {
		t.Fatalf("count %d", s.Count)
	}
}
