package service

import (
	"fmt"
	"sync"
)

// Store is the job registry: every submitted job, by id, for status polls
// and result delivery. Reads never touch the queue or the pool, so
// delivery stays responsive while the workers are saturated.
type Store struct {
	mu     sync.RWMutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	next   int
	prefix string // cluster node id; "" standalone
}

// NewStore builds an empty store. A non-empty nodeID prefixes every minted
// job id ("<node>-job-000001"), keeping IDs globally unique across a
// cluster's shards so a gateway can route polls by id alone.
func NewStore(nodeID string) *Store {
	return &Store{jobs: map[string]*Job{}, prefix: nodeID}
}

// NewID mints the next job id.
func (s *Store) NewID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	if s.prefix != "" {
		return fmt.Sprintf("%s-job-%06d", s.prefix, s.next)
	}
	return fmt.Sprintf("job-%06d", s.next)
}

// Add registers a job.
func (s *Store) Add(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID()] = j
	s.order = append(s.order, j.ID())
}

// Get looks a job up by id.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every job in submission order.
func (s *Store) List() []*Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}
