// Package service is the serving layer of the reproduction: a long-running
// daemon (cmd/advectd) that accepts simulation, prediction, and experiment
// jobs over an HTTP JSON API and executes them on a bounded worker pool
// fed by a bounded queue, with a content-addressed LRU result cache in
// front of the workers.
//
// The architecture applies the paper's core lesson — throughput comes from
// overlapping independent kinds of work rather than serializing them — to
// serving: admission (HTTP handlers), execution (workers), and result
// delivery (job store + cache reads) are decoupled stages that run
// concurrently, the way the paper's best implementation keeps CPU compute,
// GPU compute, MPI, and PCIe traffic all in flight at once. Backpressure
// is explicit: when the queue is full the API sheds load with 429 and a
// Retry-After estimate instead of queueing unboundedly.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// State is a job's position in its lifecycle.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job types.
const (
	TypeSimulate   = "simulate"
	TypePredict    = "predict"
	TypeExperiment = "experiment"
)

// Types lists the job types the service accepts.
func Types() []string { return []string{TypeSimulate, TypePredict, TypeExperiment} }

// Traced reports whether the request asked for span recording.
func (r *Request) Traced() bool {
	return r.Type == TypeSimulate && r.Simulate != nil && r.Simulate.Trace
}

// Request is the body of POST /v1/jobs: a type tag plus the matching
// payload.
type Request struct {
	Type       string             `json:"type"`
	Simulate   *SimulateRequest   `json:"simulate,omitempty"`
	Predict    *PredictRequest    `json:"predict,omitempty"`
	Experiment *ExperimentRequest `json:"experiment,omitempty"`
}

// SimulateRequest runs one of the paper's implementations functionally
// (advect.Run) and reports timing, throughput, and verification norms.
type SimulateRequest struct {
	Kind  string  `json:"kind"`            // implementation identifier, e.g. "hybrid-overlap"
	N     int     `json:"n"`               // grid points per dimension
	Steps int     `json:"steps"`           // timesteps to integrate
	Nu    float64 `json:"nu,omitempty"`    // 0 selects the maximum stable value
	Tasks int     `json:"tasks,omitempty"` // MPI tasks; 0 means 1
	// Threads is OpenMP threads per task; 0 means 1.
	Threads      int    `json:"threads,omitempty"`
	BlockX       int    `json:"blockx,omitempty"`
	BlockY       int    `json:"blocky,omitempty"`
	BoxThickness int    `json:"thickness,omitempty"`
	HaloWidth    int    `json:"halowidth,omitempty"`
	TasksPerGPU  int    `json:"taskspergpu,omitempty"`
	GPU          string `json:"gpu,omitempty"` // "c1060" or "c2050"
	Verify       bool   `json:"verify,omitempty"`
	// Trace attaches a span recorder to the run: the result document then
	// carries the overlap-efficiency report and a trace_url pointing at
	// GET /v1/jobs/{id}/trace, which serves a stitched Chrome trace-event
	// JSON (loadable in ui.perfetto.dev) of the request lifecycle and the
	// per-rank runner phases on one timeline.
	Trace bool `json:"trace,omitempty"`
}

// PredictRequest queries the calibrated performance model (advect.Predict)
// for a machine-scale configuration.
type PredictRequest struct {
	Machine      string `json:"machine"` // Table II name, e.g. "Yona"
	Kind         string `json:"kind"`
	Cores        int    `json:"cores"`
	Threads      int    `json:"threads,omitempty"`
	N            int    `json:"n,omitempty"` // grid points per dimension; 0 selects the paper's 420
	BlockX       int    `json:"blockx,omitempty"`
	BlockY       int    `json:"blocky,omitempty"`
	BoxThickness int    `json:"thickness,omitempty"`
	HaloWidth    int    `json:"halowidth,omitempty"`
}

// ExperimentRequest regenerates one of the harness's paper tables/figures.
type ExperimentRequest struct {
	ID string `json:"id"` // e.g. "fig3", "tab3", "ext-wide"
}

// Limits bounds the work a single request may ask for, so one client
// cannot wedge the pool with an enormous simulation.
type Limits struct {
	MaxN     int `json:"max_n"`
	MaxSteps int `json:"max_steps"`
	MaxTasks int `json:"max_tasks"`
	// MaxThreads bounds threads per task.
	MaxThreads int `json:"max_threads"`
}

// DefaultLimits is sized for interactive use: large enough for every
// example in the repo, small enough that a single job cannot monopolize
// the daemon for minutes.
func DefaultLimits() Limits {
	return Limits{MaxN: 256, MaxSteps: 10_000, MaxTasks: 64, MaxThreads: 64}
}

// Validate checks the request shape against the limits and returns a
// client-facing error.
func (r *Request) Validate(lim Limits) error {
	set := 0
	if r.Simulate != nil {
		set++
	}
	if r.Predict != nil {
		set++
	}
	if r.Experiment != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("exactly one of simulate, predict, experiment must be set (got %d)", set)
	}
	switch r.Type {
	case TypeSimulate:
		if r.Simulate == nil {
			return fmt.Errorf("type %q requires the simulate payload", r.Type)
		}
		return r.Simulate.validate(lim)
	case TypePredict:
		if r.Predict == nil {
			return fmt.Errorf("type %q requires the predict payload", r.Type)
		}
		return r.Predict.validate()
	case TypeExperiment:
		if r.Experiment == nil {
			return fmt.Errorf("type %q requires the experiment payload", r.Type)
		}
		if r.Experiment.ID == "" {
			return fmt.Errorf("experiment id must be set")
		}
		return nil
	default:
		return fmt.Errorf("unknown job type %q (want simulate, predict, or experiment)", r.Type)
	}
}

func (sr *SimulateRequest) validate(lim Limits) error {
	if _, err := core.ParseKind(sr.Kind); err != nil {
		return err
	}
	if sr.N < 3 || sr.N > lim.MaxN {
		return fmt.Errorf("n %d out of range [3, %d]", sr.N, lim.MaxN)
	}
	if sr.Steps < 0 || sr.Steps > lim.MaxSteps {
		return fmt.Errorf("steps %d out of range [0, %d]", sr.Steps, lim.MaxSteps)
	}
	if sr.Tasks < 0 || sr.Tasks > lim.MaxTasks {
		return fmt.Errorf("tasks %d out of range [0, %d]", sr.Tasks, lim.MaxTasks)
	}
	if sr.Threads < 0 || sr.Threads > lim.MaxThreads {
		return fmt.Errorf("threads %d out of range [0, %d]", sr.Threads, lim.MaxThreads)
	}
	if _, err := parseGPU(sr.GPU); err != nil {
		return err
	}
	return nil
}

func (pr *PredictRequest) validate() error {
	if _, err := core.ParseKind(pr.Kind); err != nil {
		return err
	}
	if pr.Machine == "" {
		return fmt.Errorf("machine must be set")
	}
	if pr.Cores < 0 {
		return fmt.Errorf("cores %d < 0", pr.Cores)
	}
	return nil
}

func parseGPU(s string) (core.GPUModel, error) {
	switch s {
	case "", "c2050":
		return core.GPUC2050, nil
	case "c1060":
		return core.GPUC1060, nil
	}
	return 0, fmt.Errorf("unknown gpu %q (want c1060 or c2050)", s)
}

// problem converts the request into a core problem.
func (sr *SimulateRequest) problem() core.Problem {
	p := core.DefaultProblem(sr.N, sr.Steps)
	p.Nu = sr.Nu
	return p
}

// options converts the request into run options (without a context).
func (sr *SimulateRequest) options() core.Options {
	gpu, _ := parseGPU(sr.GPU)
	return core.Options{
		Tasks: sr.Tasks, Threads: sr.Threads,
		BlockX: sr.BlockX, BlockY: sr.BlockY,
		BoxThickness: sr.BoxThickness,
		HaloWidth:    sr.HaloWidth,
		TasksPerGPU:  sr.TasksPerGPU,
		GPU:          gpu,
		Verify:       sr.Verify,
	}
}

// CacheKey returns the request's content-addressed cache key: requests
// share a key exactly when they describe the same computation. Simulate
// keys reuse the core canonical fingerprint; predict and experiment keys
// hash their own canonical field lists.
func (r *Request) CacheKey() string {
	switch r.Type {
	case TypeSimulate:
		k, _ := core.ParseKind(r.Simulate.Kind)
		p, err := r.Simulate.problem().Normalize()
		if err != nil {
			// Not normalizable: hash the raw form; the run will fail with
			// the real error.
			p = r.Simulate.problem()
		}
		prefix := "sim-"
		if r.Simulate.Trace {
			// Traced results carry the overlap report and trace_url; keep
			// them from answering untraced requests (and vice versa). The
			// format version ("2") changed when the chrome_trace blob was
			// replaced by trace_url, so old-shape cached documents cannot
			// be replayed.
			prefix = "simt2-"
		}
		return prefix + core.Fingerprint(k, p, r.Simulate.options().Normalize())
	case TypePredict:
		pr := r.Predict
		n := pr.N
		if n == 0 {
			n = 420
		}
		s := strings.Join([]string{
			"predict", pr.Machine, pr.Kind,
			strconv.Itoa(pr.Cores), strconv.Itoa(pr.Threads), strconv.Itoa(n),
			strconv.Itoa(pr.BlockX), strconv.Itoa(pr.BlockY),
			strconv.Itoa(pr.BoxThickness), strconv.Itoa(pr.HaloWidth),
		}, "|")
		sum := sha256.Sum256([]byte(s))
		return "pred-" + hex.EncodeToString(sum[:])
	case TypeExperiment:
		sum := sha256.Sum256([]byte("experiment|" + r.Experiment.ID))
		return "exp-" + hex.EncodeToString(sum[:])
	}
	return ""
}

// Job is one unit of work moving through the service.
type Job struct {
	mu sync.Mutex

	id        string
	req       Request
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	cacheKey  string
	cacheHit  bool
	errMsg    string
	result    json.RawMessage

	ctx    context.Context
	cancel context.CancelFunc

	// rec is the job's span recorder, created at submit time for traced
	// requests (nil otherwise, which disables all recording). Because it
	// exists before the worker handoff, service-level spans (queue wait,
	// worker exec) and the runner's per-rank spans share one epoch — the
	// stitched timeline behind GET /v1/jobs/{id}/trace. Set once before
	// the job is shared; safe to read without the mutex.
	rec *obs.Recorder
	// queuedAt is rec's clock reading when the job entered the queue.
	queuedAt float64
	// traceID is the cluster-wide trace id this job belongs to: the one a
	// gateway minted and propagated on the X-Advect-Trace header, or ""
	// for direct submissions. Set once at submit; read without the mutex.
	traceID string
	// background marks a speculative pre-execution (sweep warming): queued
	// on the background lane, shed before any foreground job waits, and
	// kept out of the interactive telemetry windows. Set once at submit;
	// read without the mutex.
	background bool
}

// newJob builds a queued job whose context descends from base. Traced
// requests get a live span recorder whose epoch is the submit instant.
func newJob(id string, req Request, base context.Context, now time.Time) *Job {
	ctx, cancel := context.WithCancel(base)
	j := &Job{
		id: id, req: req, state: StateQueued, submitted: now,
		cacheKey: req.CacheKey(), ctx: ctx, cancel: cancel,
	}
	if req.Traced() {
		j.rec = obs.NewRecorder()
	}
	return j
}

// Trace returns the job's span recorder (nil for untraced jobs and jobs
// answered from the result cache).
func (j *Job) Trace() *obs.Recorder { return j.rec }

// TraceID returns the propagated cluster-wide trace id ("" for direct
// submissions).
func (j *Job) TraceID() string { return j.traceID }

// Background reports whether the job is a speculative pre-execution.
func (j *Job) Background() bool { return j.background }

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// claim transitions queued → running; it fails if the job was cancelled
// while waiting in the queue (or is otherwise not claimable).
func (j *Job) claim(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// finish lands a terminal state with either a result or an error.
func (j *Job) finish(state State, result json.RawMessage, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = now
	j.cancel() // release the context's resources
}

// completeFromCache lands a done state directly from the result cache.
func (j *Job) completeFromCache(result json.RawMessage, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = result
	j.cacheHit = true
	j.started = now
	j.finished = now
	j.cancel()
}

// Cancel requests cancellation: a queued job lands in cancelled
// immediately; a running job has its context cancelled and lands in
// cancelled when the implementation notices (between timesteps). Returns
// false if the job had already finished.
func (j *Job) Cancel(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = now
		j.cancel()
		return true
	case StateRunning:
		j.cancel()
		return true
	}
	return false
}

// Result returns the rendered result if the job is done.
func (j *Job) Result() (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// View is the JSON representation of a job's status.
type View struct {
	ID        string     `json:"id"`
	Type      string     `json:"type"`
	State     State      `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	CacheKey  string     `json:"cache_key"`
	CacheHit  bool       `json:"cache_hit"`
	// Background marks a speculative sweep-warmer pre-execution.
	Background bool    `json:"background,omitempty"`
	TraceID    string  `json:"trace_id,omitempty"`
	Error      string  `json:"error,omitempty"`
	Request    Request `json:"request"`
}

// View snapshots the job for the API.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID: j.id, Type: j.req.Type, State: j.state,
		Submitted: j.submitted, CacheKey: j.cacheKey, CacheHit: j.cacheHit,
		Background: j.background,
		TraceID:    j.traceID, Error: j.errMsg, Request: j.req,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
