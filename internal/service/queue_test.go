package service

import (
	"context"
	"testing"
	"time"
)

func qjob(id string) *Job {
	return newJob(id, Request{Type: TypePredict, Predict: &PredictRequest{
		Machine: "Yona", Kind: "bulk", Cores: 12,
	}}, context.Background(), time.Now())
}

func TestQueueBounds(t *testing.T) {
	q := NewQueue(2)
	if q.Cap() != 2 || q.Depth() != 0 {
		t.Fatalf("fresh queue cap=%d depth=%d", q.Cap(), q.Depth())
	}
	if !q.TryPush(qjob("a")) || !q.TryPush(qjob("b")) {
		t.Fatal("push into empty queue failed")
	}
	if q.TryPush(qjob("c")) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Depth() != 2 {
		t.Fatalf("depth %d, want 2", q.Depth())
	}
	j := <-q.Chan()
	if j.ID() != "a" {
		t.Fatalf("FIFO violated: got %s", j.ID())
	}
	if !q.TryPush(qjob("c")) {
		t.Fatal("push after pop failed")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(4)
	q.TryPush(qjob("a"))
	q.TryPush(qjob("b"))
	q.Close()
	if q.TryPush(qjob("c")) {
		t.Fatal("push into closed queue succeeded")
	}
	q.Close() // idempotent
	var got []string
	for j := range q.Chan() {
		got = append(got, j.ID())
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("drained %v", got)
	}
}
