package service

import "sync"

// Queue is the bounded admission queue between the HTTP handlers and the
// worker pool. Admission never blocks: TryPush either enqueues or reports
// the queue full, and the handler turns a full queue into 429 with a
// Retry-After estimate — explicit backpressure instead of unbounded
// buffering.
//
// The queue has two lanes. The foreground lane carries interactive
// submissions; the background lane carries speculative work (sweep-warmer
// pre-executions) that is only worth doing on otherwise-idle workers. Pop
// always prefers foreground, and background admission sheds itself the
// moment any foreground job is waiting — speculation never costs an
// interactive request its place in line.
type Queue struct {
	mu     sync.Mutex
	ch     chan *Job
	bg     chan *Job
	closed bool
}

// NewQueue builds a queue holding at most capacity jobs per lane.
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{ch: make(chan *Job, capacity), bg: make(chan *Job, capacity)}
}

// TryPush enqueues the job on the foreground lane, or reports false when
// the lane is full or the queue is closed for draining.
func (q *Queue) TryPush(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// TryPushBackground enqueues the job on the background lane. It reports
// false — shedding the job — when the queue is closed, any foreground job
// is waiting, or the lane is full.
func (q *Queue) TryPushBackground(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.ch) > 0 {
		return false
	}
	select {
	case q.bg <- j:
		return true
	default:
		return false
	}
}

// Pop blocks for the next job, always draining the foreground lane before
// touching the background one. It reports false once the queue is closed
// and the foreground lane has drained.
func (q *Queue) Pop() (*Job, bool) {
	select {
	case j, ok := <-q.ch:
		return j, ok
	default:
	}
	select {
	case j, ok := <-q.ch:
		return j, ok
	case j, ok := <-q.bg:
		if !ok {
			// Background lane closed: the queue is draining, so wait out
			// the remaining foreground jobs.
			j2, ok2 := <-q.ch
			return j2, ok2
		}
		return j, true
	}
}

// Chan is the foreground lane's receive end; it is closed by Close after
// the remaining jobs drain.
func (q *Queue) Chan() <-chan *Job { return q.ch }

// Close stops admission on both lanes. Foreground jobs already queued
// remain receivable; the channels close once Pop drains them.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
		close(q.bg)
	}
}

// Depth returns the number of queued foreground jobs.
func (q *Queue) Depth() int { return len(q.ch) }

// BgDepth returns the number of queued background jobs.
func (q *Queue) BgDepth() int { return len(q.bg) }

// Cap returns the per-lane queue capacity.
func (q *Queue) Cap() int { return cap(q.ch) }
