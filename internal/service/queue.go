package service

import "sync"

// Queue is the bounded admission queue between the HTTP handlers and the
// worker pool. Admission never blocks: TryPush either enqueues or reports
// the queue full, and the handler turns a full queue into 429 with a
// Retry-After estimate — explicit backpressure instead of unbounded
// buffering.
type Queue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

// NewQueue builds a queue holding at most capacity jobs.
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{ch: make(chan *Job, capacity)}
}

// TryPush enqueues the job, or reports false when the queue is full or
// closed for draining.
func (q *Queue) TryPush(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// Chan is the worker-side receive end; it is closed by Close after the
// remaining jobs drain.
func (q *Queue) Chan() <-chan *Job { return q.ch }

// Close stops admission. Jobs already queued remain receivable; the
// channel closes once they drain.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Depth returns the number of queued jobs.
func (q *Queue) Depth() int { return len(q.ch) }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return cap(q.ch) }
