package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// Cache is the content-addressed result cache: rendered result documents
// keyed by the request fingerprint (Request.CacheKey), bounded by entry
// count with least-recently-used eviction. A repeated identical request is
// answered from here without touching the queue or the pool.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

// NewCache builds a cache holding at most capacity entries; capacity < 1
// disables caching (every lookup misses).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// Get returns the cached document for key and records a hit or miss.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Peek returns the cached document for key without recording a hit or
// miss and without promoting the entry. Cluster gateways use it to probe
// sibling shards for a result, so cross-node probing never skews a node's
// own hit-rate or its LRU recency order.
func (c *Cache) Peek(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

// Put stores the document under key, evicting the least recently used
// entry when the cache is full.
func (c *Cache) Put(key string, val json.RawMessage) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.order.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// purge empties the cache without touching the counters (benchmarks use it
// to measure the uncached path).
func (c *Cache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[string]*list.Element{}
}
