package service

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/session"
)

func postSession(t *testing.T, ts *httptest.Server, body string) (*http.Response, session.View) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v session.View
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode session view: %v", err)
		}
	}
	return resp, v
}

func getSession(t *testing.T, ts *httptest.Server, id string) session.View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session status: %v", resp.Status)
	}
	var v session.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitSessionState(t *testing.T, ts *httptest.Server, id string, want session.State) session.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v := getSession(t, ts, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("session %s landed in %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %s at step %d, want %s", id, v.State, v.DoneSteps, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func statsDoc(t *testing.T, ts *httptest.Server) TelemetryStats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st TelemetryStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSessionLifecycleHTTP drives a session over the API: create, run to
// completion across several segments, fork from a retained checkpoint with
// mutated options, and pull raw checkpoint bytes for replication.
func TestSessionLifecycleHTTP(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, SessionDir: dir})

	resp, v := postSession(t, ts,
		`{"simulate":{"kind":"bulk","n":8,"steps":40},"segment":10,"retain":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: %v", resp.Status)
	}
	if v.State != session.StateRunning || v.TotalSteps != 40 || v.Segment != 10 {
		t.Fatalf("fresh session %+v", v)
	}
	done := waitSessionState(t, ts, v.ID, session.StateDone)
	if done.DoneSteps != 40 || done.Segments != 4 || done.FieldHash == "" {
		t.Fatalf("finished session %+v", done)
	}

	// Pause after completion conflicts; unknown ids are 404.
	pr, err := http.Post(ts.URL+"/v1/sessions/"+v.ID+"/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusConflict {
		t.Fatalf("pause done session: %v", pr.Status)
	}
	nr, err := http.Get(ts.URL + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	nr.Body.Close()
	if nr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %v", nr.Status)
	}

	// Fork from the middle with more threads and a longer trajectory.
	fr, err := http.Post(ts.URL+"/v1/sessions/"+v.ID+"/fork", "application/json",
		strings.NewReader(`{"at_step":20,"total_steps":60,"threads":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var child session.View
	if err := json.NewDecoder(fr.Body).Decode(&child); err != nil {
		t.Fatal(err)
	}
	fr.Body.Close()
	if fr.StatusCode != http.StatusAccepted {
		t.Fatalf("fork: %v", fr.Status)
	}
	if child.ParentFP != done.Fingerprint || child.ParentStep != 20 || child.DoneSteps != 20 {
		t.Fatalf("fork child %+v", child)
	}
	childDone := waitSessionState(t, ts, child.ID, session.StateDone)
	if childDone.DoneSteps != 60 {
		t.Fatalf("fork child finished at %d steps, want 60", childDone.DoneSteps)
	}

	// The replication surface serves the newest checkpoint with its step
	// and fingerprint, and retained older steps on request.
	cr, err := http.Get(ts.URL + "/v1/sessions/" + v.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(cr.Body)
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("checkpoint: %v (%d bytes)", cr.Status, len(blob))
	}
	if got := cr.Header.Get(SessionStepHeader); got != "40" {
		t.Fatalf("checkpoint step header %q, want 40", got)
	}
	if got := cr.Header.Get(SessionFPHeader); got != done.Fingerprint {
		t.Fatalf("checkpoint fp header %q, want %q", got, done.Fingerprint)
	}

	// Listing shows both sessions; stats count them.
	lr, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sessions []session.View `json:"sessions"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(list.Sessions) != 2 {
		t.Fatalf("listed %d sessions, want 2", len(list.Sessions))
	}
	st := statsDoc(t, ts)
	if st.Sessions == nil || st.Sessions.Done != 2 || st.Sessions.Forks != 1 || st.Sessions.Segments < 8 {
		t.Fatalf("session stats %+v", st.Sessions)
	}

	// A seeded create on a fresh node (the failover path) continues from
	// the shipped checkpoint instead of step zero.
	dir2 := t.TempDir()
	_, ts2 := newTestServer(t, Config{Workers: 2, SessionDir: dir2})
	seeded := fmt.Sprintf(
		`{"simulate":{"kind":"bulk","n":8,"steps":80},"segment":10,"checkpoint":%q}`,
		base64.StdEncoding.EncodeToString(blob))
	resp2, v2 := postSession(t, ts2, seeded)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("seeded create: %v", resp2.Status)
	}
	if v2.DoneSteps != 40 || v2.Resumes != 1 {
		t.Fatalf("seeded session %+v", v2)
	}
	if got := waitSessionState(t, ts2, v2.ID, session.StateDone); got.DoneSteps != 80 {
		t.Fatalf("seeded session finished at %d steps, want 80", got.DoneSteps)
	}
}

// TestSessionValidation pins the request checks: trace is rejected, zero
// steps are rejected, and a node without a session directory answers 503.
func TestSessionValidation(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, SessionDir: dir})
	for _, body := range []string{
		`{"simulate":{"kind":"bulk","n":8,"steps":10,"trace":true}}`,
		`{"simulate":{"kind":"bulk","n":8,"steps":0}}`,
		`{"simulate":{"kind":"bulk","n":8,"steps":10},"segment":99}`,
		`{}`,
	} {
		resp, _ := postSession(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: %v, want 400", body, resp.Status)
		}
	}

	_, bare := newTestServer(t, Config{Workers: 1})
	resp, _ := postSession(t, bare, `{"simulate":{"kind":"bulk","n":8,"steps":10}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sessions on a bare node: %v, want 503", resp.Status)
	}
}

// TestSessionDurabilityAcrossRestart is the e2e durability run the issue
// demands: a session interrupted by a full server shutdown mid-run is
// resumed by the next server over the same directory and finishes with a
// field bitwise-equal to an uninterrupted run of the same scenario.
func TestSessionDurabilityAcrossRestart(t *testing.T) {
	const body = `{"simulate":{"kind":"bulk","n":24,"steps":3000},"segment":200}`

	// Reference: the same scenario, uninterrupted, on its own store.
	_, refTS := newTestServer(t, Config{Workers: 2, SessionDir: t.TempDir()})
	resp, ref := postSession(t, refTS, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reference create: %v", resp.Status)
	}
	refDone := waitSessionState(t, refTS, ref.ID, session.StateDone)
	if refDone.FieldHash == "" {
		t.Fatal("reference session has no field hash")
	}

	// Interrupted: shut the whole server down as soon as the first durable
	// checkpoint lands, long before the trajectory completes.
	dir := t.TempDir()
	s1 := New(Config{Workers: 2, SessionDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	resp, v := postSession(t, ts1, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: %v", resp.Status)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := getSession(t, ts1, v.ID)
		if cur.DoneSteps >= 200 && cur.State == session.StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("session finished (%s at %d) before the test could interrupt it; grow the problem",
				cur.State, cur.DoneSteps)
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint landed in time")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s1.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	// Restart over the same directory: recovery rescans the store and the
	// session resumes from its last durable checkpoint under its old id.
	_, ts2 := newTestServer(t, Config{Workers: 2, SessionDir: dir})
	got := getSession(t, ts2, v.ID)
	if got.ID != v.ID || got.Resumes < 1 {
		t.Fatalf("recovered session %+v", got)
	}
	final := waitSessionState(t, ts2, v.ID, session.StateDone)
	if final.DoneSteps != 3000 {
		t.Fatalf("recovered session finished at %d steps, want 3000", final.DoneSteps)
	}
	if final.FieldHash != refDone.FieldHash {
		t.Fatalf("recovered field hash %s differs from uninterrupted %s — resume is not bitwise-faithful",
			final.FieldHash, refDone.FieldHash)
	}
	st := statsDoc(t, ts2)
	if st.Sessions == nil || st.Sessions.Recovered < 1 || st.Sessions.Resumes < 1 {
		t.Fatalf("recovery not visible in stats: %+v", st.Sessions)
	}
}

// TestSweepWarming is the e2e speculation run the issue demands: a client
// stepping one parameter arithmetically through 8 points has at least half
// of them answered from cache because idle workers pre-executed the
// predicted next points, with the payoff visible in /v1/stats.
func TestSweepWarming(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, WarmSweeps: true})

	submit := func(steps int) View {
		t.Helper()
		body := fmt.Sprintf(`{"type":"simulate","simulate":{"kind":"bulk","n":8,"steps":%d,"tasks":1,"threads":1}}`, steps)
		resp, v := postJob(t, ts, body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit steps=%d: %v", steps, resp.Status)
		}
		waitState(t, ts, v.ID, StateDone)
		return v
	}
	// waitWarm gives the background pre-execution of a predicted point time
	// to land in the cache before the sweep's next request asks for it.
	waitWarm := func(steps int) {
		t.Helper()
		req := Request{Type: TypeSimulate, Simulate: &SimulateRequest{
			Kind: "bulk", N: 8, Steps: steps, Tasks: 1, Threads: 1,
		}}
		key := req.CacheKey()
		deadline := time.Now().Add(30 * time.Second)
		for {
			if _, ok := s.cache.Peek(key); ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("predicted point steps=%d never warmed", steps)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	sweep := []int{40, 80, 120, 160, 200, 240, 280, 320}
	hits := 0
	for i, steps := range sweep {
		v := submit(steps)
		if v.CacheHit {
			hits++
		}
		// Three points make two equal deltas — from there every point
		// predicts the next ones, so the remainder of the sweep is warmed.
		if i >= 2 && i+1 < len(sweep) {
			waitWarm(sweep[i+1])
		}
	}
	if hits < len(sweep)/2 {
		t.Fatalf("%d of %d sweep points served from cache, want at least half", hits, len(sweep))
	}

	st := statsDoc(t, ts)
	if st.Warmer == nil {
		t.Fatal("warmer stats missing from /v1/stats")
	}
	if st.Warmer.Predictions == 0 || st.Warmer.Warmed < int64(hits) || st.Warmer.Hits < int64(hits) {
		t.Fatalf("warmer stats %+v do not account for %d hits", st.Warmer, hits)
	}
	if st.Warmer.Observed < int64(len(sweep)) {
		t.Fatalf("warmer observed %d submissions, want at least %d", st.Warmer.Observed, len(sweep))
	}

	// Background pre-executions are visible as background jobs, and the
	// interactive path never queued behind them.
	var bg int
	for _, j := range s.store.List() {
		if j.Background() {
			bg++
		}
	}
	if bg == 0 {
		t.Fatal("no background jobs recorded")
	}
}

// TestCancelWhileQueuedSkipsExecution pins the tightened queued→cancelled
// transition: a job cancelled while waiting in the queue is counted, gets
// its terminal event published, and never receives an exec span or a
// telemetry observation.
func TestCancelWhileQueuedSkipsExecution(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	// Occupy the single worker so the victim stays queued.
	resp, slow := postJob(t, ts, slowBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow submit: %v", resp.Status)
	}
	waitState(t, ts, slow.ID, StateRunning)

	resp, victim := postJob(t, ts,
		`{"type":"simulate","simulate":{"kind":"bulk","n":12,"steps":7,"trace":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("victim submit: %v", resp.Status)
	}
	if victim.State != StateQueued {
		t.Fatalf("victim in state %s, want queued", victim.State)
	}

	// Cancel the queued victim, then free the worker; the worker must pop
	// the victim and skip it without executing.
	for _, id := range []string{victim.ID, slow.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		dr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
		if dr.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: %v", id, dr.Status)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := metricsJSON(t, ts)
		if snap.Jobs["simulate"]["cancelled"] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled outcomes %v", snap.Jobs["simulate"])
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The victim ran nothing: no worker-exec span on its recorder, and the
	// only queue-wait observation in the window belongs to the slow job.
	j, ok := s.store.Get(victim.ID)
	if !ok {
		t.Fatal("victim missing from store")
	}
	for _, sp := range j.Trace().Spans() {
		if sp.Phase == obs.PhaseWorkerExec || sp.Phase == obs.PhaseQueueWait {
			t.Fatalf("cancelled-while-queued job recorded a %v span", sp.Phase)
		}
	}
	st := statsDoc(t, ts)
	if st.QueueWait.Count != 1 {
		t.Fatalf("queue-wait observations %d, want 1 (slow job only)", st.QueueWait.Count)
	}
	if st.Exec["simulate"].Count != 0 {
		t.Fatalf("exec window saw %d simulate jobs, want 0 (both were cancelled)", st.Exec["simulate"].Count)
	}
}
