package service

import (
	"bytes"
	"net/http"
	"runtime"
	rtdebug "runtime/debug"
	"runtime/pprof"
	"time"

	"repro/internal/flight"
)

// BundleDoc is the GET /v1/debug/bundle document: everything one node can
// say about its recent past in a single JSON payload — the live flight
// ring plus any anomaly-frozen snapshots, the anomaly history, rolling
// stats, cumulative metrics, goroutine and heap profiles, and build
// identity. A gateway fans this endpoint out across the cluster and
// merges the node-stamped bundles into one postmortem.
type BundleDoc struct {
	Now  time.Time `json:"now"`
	Node string    `json:"node,omitempty"`
	// Flight is the live ring at collection time; Frozen are the
	// snapshots anomaly firings pinned, oldest first.
	Flight    flight.Snapshot     `json:"flight"`
	Frozen    []flight.Snapshot   `json:"frozen,omitempty"`
	Anomalies flight.AnomalyStats `json:"anomalies"`
	Stats     TelemetryStats      `json:"stats"`
	Metrics   Snapshot            `json:"metrics"`
	// Profiles holds pprof text dumps (debug=1), keyed by profile name.
	Profiles map[string]string `json:"profiles,omitempty"`
	Build    BuildDoc          `json:"build"`
}

// BuildDoc identifies the binary that produced a bundle.
type BuildDoc struct {
	GoVersion  string `json:"go_version"`
	Module     string `json:"module,omitempty"`
	Revision   string `json:"revision,omitempty"`
	Modified   bool   `json:"modified,omitempty"`
	Goroutines int    `json:"goroutines"`
}

// bundleProfiles are the pprof profiles embedded in a bundle: enough to
// see what the process was doing (goroutines) and holding (heap) without
// the full binary-format dumps.
var bundleProfiles = []string{"goroutine", "heap"}

// DebugBundle assembles the node's postmortem bundle at this instant.
func (s *Server) DebugBundle() BundleDoc {
	now := time.Now()
	doc := BundleDoc{
		Now:       now,
		Node:      s.cfg.NodeID,
		Flight:    s.flight.Snapshot(now),
		Frozen:    s.flight.Frozen(),
		Anomalies: s.engine.Anomalies(),
		Stats:     s.StatsSnapshot(),
		Metrics:   s.MetricsSnapshot(),
		Profiles:  make(map[string]string, len(bundleProfiles)),
		Build: BuildDoc{
			GoVersion:  runtime.Version(),
			Goroutines: runtime.NumGoroutine(),
		},
	}
	if info, ok := rtdebug.ReadBuildInfo(); ok {
		doc.Build.Module = info.Main.Path
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision":
				doc.Build.Revision = kv.Value
			case "vcs.modified":
				doc.Build.Modified = kv.Value == "true"
			}
		}
	}
	var buf bytes.Buffer
	for _, name := range bundleProfiles {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		buf.Reset()
		if err := p.WriteTo(&buf, 1); err != nil {
			continue
		}
		doc.Profiles[name] = buf.String()
	}
	return doc
}

// handleBundle serves the postmortem bundle. Always 200: a node that can
// answer at all has a bundle, even if flight is disabled (empty ring, no
// anomalies).
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DebugBundle())
}
