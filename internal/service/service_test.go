package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, View) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	}
	return resp, v
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s landed in %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricsJSON(t *testing.T, ts *httptest.Server) Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

const simulateBody = `{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":5,"tasks":2,"threads":2,"verify":true}}`
const predictBody = `{"type":"predict","predict":{"machine":"Yona","kind":"hybrid-overlap","cores":96,"threads":6}}`

// slowBody is a simulate job big enough that it cannot finish before the
// test cancels it (~10^9 point-updates), keeping a worker busy on demand.
const slowBody = `{"type":"simulate","simulate":{"kind":"bulk","n":64,"steps":4000,"tasks":2}}`

// TestSimulatePollResult is the end-to-end flow: submit a functional
// simulation, poll it to done, and fetch the verified result.
func TestSimulatePollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	resp, v := postJob(t, ts, simulateBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %v", resp.Status)
	}
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job in state %s", v.State)
	}
	waitState(t, ts, v.ID, StateDone)

	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: %v", rr.Status)
	}
	var res SimulateResult
	if err := json.NewDecoder(rr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "bulk" || res.GF <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if res.L2 <= 0 || res.L2 > 1 {
		t.Fatalf("implausible L2 %v", res.L2)
	}
	if res.Stats["tasks"] != 2 {
		t.Fatalf("stats %v lack tasks=2", res.Stats)
	}
}

// TestExperimentJob runs a harness experiment through the service.
func TestExperimentJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	resp, v := postJob(t, ts, `{"type":"experiment","experiment":{"id":"table1"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %v", resp.Status)
	}
	waitState(t, ts, v.ID, StateDone)
	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	var res ExperimentResult
	if err := json.NewDecoder(rr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" || res.Output == "" {
		t.Fatalf("implausible experiment result %+v", res)
	}
}

// TestPredictCacheHit checks the content-addressed cache: a repeated
// identical predict request is answered instantly from the cache, visible
// both on the job (cache_hit, immediate done) and in the /metrics
// counters (JSON and Prometheus text).
func TestPredictCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})

	resp, v1 := postJob(t, ts, predictBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %v", resp.Status)
	}
	waitState(t, ts, v1.ID, StateDone)

	resp, v2 := postJob(t, ts, predictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: want 200, got %v", resp.Status)
	}
	if !v2.CacheHit || v2.State != StateDone {
		t.Fatalf("second submit not served from cache: %+v", v2)
	}
	if v1.CacheKey != v2.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", v1.CacheKey, v2.CacheKey)
	}

	// Both jobs must deliver the same result document.
	var docs [2]PredictResult
	for i, id := range []string{v1.ID, v2.ID} {
		rr, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(rr.Body).Decode(&docs[i]); err != nil {
			t.Fatal(err)
		}
		rr.Body.Close()
	}
	if !reflect.DeepEqual(docs[0], docs[1]) {
		t.Fatalf("cached result differs: %+v vs %+v", docs[0], docs[1])
	}
	if docs[1].GF <= 0 {
		t.Fatalf("implausible GF %v", docs[1].GF)
	}

	snap := metricsJSON(t, ts)
	if snap.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", snap.Cache.Hits)
	}
	if snap.Cache.Misses < 1 {
		t.Fatalf("cache misses = %d, want >= 1", snap.Cache.Misses)
	}
	if snap.Jobs[TypePredict][outcomeCached] != 1 {
		t.Fatalf("cached outcome counter = %v", snap.Jobs[TypePredict])
	}

	// The same counters in Prometheus text form.
	rr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	raw, err := io.ReadAll(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`advectd_cache_events_total{event="hit"} 1`,
		`advectd_jobs_total{type="predict",outcome="cached"} 1`,
		`advectd_job_duration_seconds_count{type="predict"} 1`,
		"# TYPE advectd_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

// TestQueueBackpressure checks admission control: with one worker pinned
// and the queue full, the next submission is shed with 429 and a
// Retry-After hint instead of queueing unboundedly.
func TestQueueBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1, DrainTimeout: 10 * time.Second})

	// First slow job occupies the worker; the distinct second one fills
	// the queue. (Identical bodies would dedupe through the cache only
	// after completion, but distinct bodies keep the scenario honest.)
	_, v1 := postJob(t, ts, slowBody)
	waitState(t, ts, v1.ID, StateRunning)
	resp, v2 := postJob(t, ts, `{"type":"simulate","simulate":{"kind":"bulk","n":64,"steps":4001,"tasks":2}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill: %v", resp.Status)
	}

	resp, _ = postJob(t, ts, `{"type":"simulate","simulate":{"kind":"bulk","n":64,"steps":4002,"tasks":2}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: want 429, got %v", resp.Status)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q not a positive integer", resp.Header.Get("Retry-After"))
	}
	snap := metricsJSON(t, ts)
	if snap.Jobs[TypeSimulate][outcomeRejected] != 1 {
		t.Fatalf("rejected counter %v", snap.Jobs[TypeSimulate])
	}
	if snap.Queue.Depth != 1 || snap.Queue.Capacity != 1 {
		t.Fatalf("queue gauges %+v", snap.Queue)
	}
	if snap.Workers.Busy != 1 || snap.Workers.Utilization != 1 {
		t.Fatalf("worker gauges %+v", snap.Workers)
	}

	// Cancel both jobs so shutdown is quick.
	for _, id := range []string{v1.ID, v2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		rr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		rr.Body.Close()
	}
	waitState(t, ts, v1.ID, StateCancelled)
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown after cancel: %v", err)
	}
}

// TestCancelRunningJob checks that DELETE on a running simulation stops it
// between timesteps and surfaces the cancelled state and 410 result.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	_, v := postJob(t, ts, slowBody)
	waitState(t, ts, v.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v", resp.Status)
	}
	waitState(t, ts, v.ID, StateCancelled)

	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusGone {
		t.Fatalf("result of cancelled job: want 410, got %v", rr.Status)
	}

	// Cancelling a finished job conflicts.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: want 409, got %v", resp.Status)
	}
}

// TestGracefulDrain checks that Shutdown finishes queued and running jobs
// when they fit in the deadline, and that admission returns 503 afterward.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8, DrainTimeout: 60 * time.Second})
	var ids []string
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"type":"simulate","simulate":{"kind":"single","n":16,"steps":%d}}`, 3+i)
		resp, v := postJob(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %v", i, resp.Status)
		}
		ids = append(ids, v.ID)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		j, ok := s.store.Get(id)
		if !ok || j.State() != StateDone {
			t.Fatalf("job %s not drained to done (state %v)", id, j.State())
		}
	}
	resp, _ := postJob(t, ts, predictBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: want 503, got %v", resp.Status)
	}
}

// TestDrainDeadlineCancels checks the other drain arm: a job that cannot
// finish by the deadline is cancelled through its context and the drain
// reports it.
func TestDrainDeadlineCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2, DrainTimeout: 100 * time.Millisecond})
	_, v := postJob(t, ts, slowBody)
	waitState(t, ts, v.ID, StateRunning)
	if err := s.Shutdown(); err == nil {
		t.Fatal("drain of a stuck job reported success")
	}
	j, _ := s.store.Get(v.ID)
	if st := j.State(); st != StateCancelled {
		t.Fatalf("stuck job state %v, want cancelled", st)
	}
}

// TestFailedJob checks that an execution error lands in failed with the
// message, and the result endpoint reports it.
func TestFailedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	// gpu-resident requires tasks=1; tasks=2 fails inside the runner,
	// after validation.
	_, v := postJob(t, ts, `{"type":"simulate","simulate":{"kind":"gpu","n":16,"steps":2,"tasks":2}}`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view View
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.State == StateFailed {
			if view.Error == "" {
				t.Fatal("failed job lacks an error message")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("result of failed job: want 500, got %v", rr.Status)
	}
}

// TestValidationErrors checks the 400/404 paths.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	bad := []string{
		`{`,
		`{"type":"simulate"}`,
		`{"type":"teleport","simulate":{"kind":"bulk","n":16,"steps":1}}`,
		`{"type":"simulate","simulate":{"kind":"warp-drive","n":16,"steps":1}}`,
		`{"type":"simulate","simulate":{"kind":"bulk","n":100000,"steps":1}}`,
		`{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":1},"predict":{"machine":"Yona","kind":"bulk","cores":12}}`,
		`{"type":"predict","predict":{"machine":"","kind":"bulk","cores":12}}`,
		`{"type":"experiment","experiment":{"id":""}}`,
	}
	for _, body := range bad {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: want 400, got %v", body, resp.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %v", resp.Status)
	}

	// An unknown experiment id passes validation but fails in execution.
	_, v := postJob(t, ts, `{"type":"experiment","experiment":{"id":"fig99"}}`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view View
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unknown experiment stuck in %s", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCatalogues checks the discovery endpoints.
func TestCatalogues(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/kinds")
	if err != nil {
		t.Fatal(err)
	}
	var kinds struct {
		Kinds []struct{ ID string } `json:"kinds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kinds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(kinds.Kinds) != 10 {
		t.Fatalf("want 10 kinds, got %d", len(kinds.Kinds))
	}
	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var exps struct {
		Experiments []struct{ ID string } `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&exps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(exps.Experiments) < 10 {
		t.Fatalf("only %d experiments listed", len(exps.Experiments))
	}
}

// TestTracedSimulateJob checks per-job trace capture: a simulate request
// with trace set returns the overlap report (with the imbalance section)
// and a trace_url in its slim result document, keyed separately from the
// untraced computation; the Chrome trace itself lives behind trace_url.
func TestTracedSimulateJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	traced := `{"type":"simulate","simulate":{"kind":"hybrid-overlap","n":16,"steps":3,"tasks":2,"threads":2,"thickness":2,"trace":true}}`
	resp, v := postJob(t, ts, traced)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %v", resp.Status)
	}
	if !strings.HasPrefix(v.CacheKey, "simt2-") {
		t.Fatalf("traced cache key %q lacks the simt2- prefix", v.CacheKey)
	}
	waitState(t, ts, v.ID, StateDone)

	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	var res SimulateResult
	if err := json.NewDecoder(rr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Overlap == nil || res.Overlap.Spans == 0 {
		t.Fatalf("traced result lacks an overlap report: %+v", res.Overlap)
	}
	if f := res.Overlap.Pair(obs.PairMPICompute).Fraction; f <= 0 {
		t.Fatalf("hybrid-overlap mpi/compute fraction = %v, want > 0", f)
	}
	if im := res.Overlap.Imbalance; im == nil || len(im.Ranks) != 2 {
		t.Fatalf("overlap report lacks a two-rank imbalance section: %+v", im)
	}
	if want := "/v1/jobs/" + v.ID + "/trace"; res.TraceURL != want {
		t.Fatalf("trace_url = %q, want %q", res.TraceURL, want)
	}

	// The raw result document must no longer embed the trace blob...
	raw, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rawBody, _ := io.ReadAll(raw.Body)
	raw.Body.Close()
	if strings.Contains(string(rawBody), `"chrome_trace"`) {
		t.Fatal("result document still embeds chrome_trace")
	}
	// ...unless the compatibility param asks for the legacy shape.
	compat, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result?embed_trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer compat.Body.Close()
	var legacy struct {
		ChromeTrace struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		} `json:"chrome_trace"`
	}
	if err := json.NewDecoder(compat.Body).Decode(&legacy); err != nil {
		t.Fatalf("embed_trace document does not decode: %v", err)
	}
	if len(legacy.ChromeTrace.TraceEvents) == 0 {
		t.Fatal("embed_trace=1 returned no inline trace events")
	}

	// The untraced flavor of the same computation keys separately and
	// returns a plain document.
	untraced := strings.Replace(traced, `,"trace":true`, "", 1)
	resp, v2 := postJob(t, ts, untraced)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("untraced submit: %v", resp.Status)
	}
	if !strings.HasPrefix(v2.CacheKey, "sim-") || v2.CacheKey == v.CacheKey {
		t.Fatalf("untraced cache key %q should differ from traced %q", v2.CacheKey, v.CacheKey)
	}
	waitState(t, ts, v2.ID, StateDone)
	rr2, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr2.Body.Close()
	var plain SimulateResult
	if err := json.NewDecoder(rr2.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if plain.Overlap != nil || plain.TraceURL != "" {
		t.Fatal("untraced result carries trace payload")
	}
	// And its trace endpoint explains itself with 404.
	tr, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced trace endpoint: want 404, got %v", tr.Status)
	}
}

// syncBuffer is a goroutine-safe log sink: the worker writes its "job
// finished" event after the job state lands, so the test must not read an
// unsynchronized buffer concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestStructuredLogging checks the slog lifecycle events at the service
// level: submit, start, and finish all carry the job ID and type.
func TestStructuredLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, Logger: logger})
	_, v := postJob(t, ts, predictBody)
	waitState(t, ts, v.ID, StateDone)

	// The finish event is written just after the state lands; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(buf.String(), `msg="job finished"`) {
		if time.Now().After(deadline) {
			t.Fatalf("no finish event logged:\n%s", buf.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	logs := buf.String()
	for _, want := range []string{
		`msg="job submitted"`, `msg="job started"`, `msg="job finished"`,
		"job=" + v.ID, "type=predict", "state=done", "duration=",
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("logs missing %q:\n%s", want, logs)
		}
	}
}

// TestPprofMounting checks that the profiling endpoints exist exactly when
// Config.EnablePprof is set.
func TestPprofMounting(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without the flag: want 404, got %v", resp.Status)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with the flag: want 200, got %v", resp.Status)
	}
}
