package service

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// latencyBuckets are the histogram upper bounds in seconds. Predict jobs
// land in the sub-millisecond buckets, functional simulations in the
// right-hand ones; one shared layout keeps the Prometheus series
// comparable across job types.
var latencyBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60}

// Histogram is a fixed-bucket latency histogram (Prometheus semantics:
// cumulative le buckets plus sum and count).
type Histogram struct {
	counts []uint64 // one per bucket, non-cumulative; last is +Inf
	sum    float64
	count  uint64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(sec float64) {
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i]++
	h.sum += sec
	h.count++
}

// HistogramSnapshot is the JSON view of a histogram: cumulative counts per
// upper bound, plus sum and count.
type HistogramSnapshot struct {
	Buckets []BucketCount `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   uint64        `json:"count"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE    string `json:"le"` // upper bound in seconds; "+Inf" for the last
	Count uint64 `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Sum: h.sum, Count: h.count}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		le := "+Inf"
		if i < len(latencyBuckets) {
			le = strconv.FormatFloat(latencyBuckets[i], 'g', -1, 64)
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: cum})
	}
	return s
}

// Job outcomes tracked per type.
const (
	outcomeSubmitted = "submitted"
	outcomeRejected  = "rejected" // queue full (429)
	outcomeCached    = "cached"   // answered from the result cache
	outcomeDone      = "done"
	outcomeFailed    = "failed"
	outcomeCancelled = "cancelled"
)

// Metrics aggregates the service counters: job outcomes and latency
// histograms per job type. Queue, worker, and cache gauges are read live
// from their owners at snapshot time.
type Metrics struct {
	mu      sync.Mutex
	start   time.Time
	jobs    map[string]map[string]uint64 // type -> outcome -> count
	latency map[string]*Histogram        // type -> completed-job latency
}

// NewMetrics builds an empty registry.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{
		start:   now,
		jobs:    map[string]map[string]uint64{},
		latency: map[string]*Histogram{},
	}
}

// CountJob records one outcome for a job type.
func (m *Metrics) CountJob(jobType, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.jobs[jobType]
	if o == nil {
		o = map[string]uint64{}
		m.jobs[jobType] = o
	}
	o[outcome]++
}

// ObserveLatency records the execution latency of a completed job.
func (m *Metrics) ObserveLatency(jobType string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[jobType]
	if h == nil {
		h = newHistogram()
		m.latency[jobType] = h
	}
	h.Observe(d.Seconds())
}

// MeanLatency returns the mean completed-job latency across all types, for
// the Retry-After estimate; ok is false before any job completes.
func (m *Metrics) MeanLatency() (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	var n uint64
	for _, h := range m.latency {
		sum += h.sum
		n += h.count
	}
	if n == 0 {
		return 0, false
	}
	return time.Duration(sum / float64(n) * float64(time.Second)), true
}

// QueueGauges is the live queue view in a snapshot.
type QueueGauges struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// WorkerGauges is the live pool view in a snapshot.
type WorkerGauges struct {
	Busy  int `json:"busy"`
	Total int `json:"total"`
	// Utilization is Busy/Total in [0, 1].
	Utilization float64 `json:"utilization"`
}

// Snapshot is the full metrics document served by /metrics.
type Snapshot struct {
	UptimeSec float64                      `json:"uptime_sec"`
	Queue     QueueGauges                  `json:"queue"`
	Workers   WorkerGauges                 `json:"workers"`
	Jobs      map[string]map[string]uint64 `json:"jobs"`
	Latency   map[string]HistogramSnapshot `json:"latency_sec"`
	Cache     CacheStats                   `json:"cache"`
	Proc      telemetry.ProcStats          `json:"proc"`
}

// Snapshot assembles the document from the registry and the live gauges.
func (m *Metrics) Snapshot(now time.Time, q QueueGauges, w WorkerGauges, c CacheStats) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w.Total > 0 {
		w.Utilization = float64(w.Busy) / float64(w.Total)
	}
	s := Snapshot{
		UptimeSec: now.Sub(m.start).Seconds(),
		Queue:     q, Workers: w, Cache: c,
		Jobs:    map[string]map[string]uint64{},
		Latency: map[string]HistogramSnapshot{},
	}
	for t, outcomes := range m.jobs {
		cp := map[string]uint64{}
		for o, n := range outcomes {
			cp[o] = n
		}
		s.Jobs[t] = cp
	}
	for t, h := range m.latency {
		s.Latency[t] = h.snapshot()
	}
	return s
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format, with every series prefixed advectd_.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP advectd_%s %s\n# TYPE advectd_%s gauge\n", name, help, name)
		fmt.Fprintf(&b, "advectd_%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	gauge("uptime_seconds", "Seconds since the service started.", s.UptimeSec)
	gauge("queue_depth", "Jobs waiting in the admission queue.", float64(s.Queue.Depth))
	gauge("queue_capacity", "Admission queue capacity.", float64(s.Queue.Capacity))
	gauge("workers_busy", "Workers currently executing a job.", float64(s.Workers.Busy))
	gauge("workers_total", "Worker pool size.", float64(s.Workers.Total))
	gauge("worker_utilization", "Fraction of workers busy.", s.Workers.Utilization)
	gauge("cache_size", "Result cache entries.", float64(s.Cache.Size))
	gauge("cache_capacity", "Result cache capacity.", float64(s.Cache.Capacity))

	fmt.Fprintf(&b, "# HELP advectd_cache_events_total Result cache hit/miss/eviction counters.\n")
	fmt.Fprintf(&b, "# TYPE advectd_cache_events_total counter\n")
	fmt.Fprintf(&b, "advectd_cache_events_total{event=\"hit\"} %d\n", s.Cache.Hits)
	fmt.Fprintf(&b, "advectd_cache_events_total{event=\"miss\"} %d\n", s.Cache.Misses)
	fmt.Fprintf(&b, "advectd_cache_events_total{event=\"eviction\"} %d\n", s.Cache.Evictions)

	fmt.Fprintf(&b, "# HELP advectd_jobs_total Jobs by type and outcome.\n")
	fmt.Fprintf(&b, "# TYPE advectd_jobs_total counter\n")
	for _, t := range sortedKeys(s.Jobs) {
		outcomes := s.Jobs[t]
		for _, o := range sortedKeys(outcomes) {
			fmt.Fprintf(&b, "advectd_jobs_total{type=%q,outcome=%q} %d\n", t, o, outcomes[o])
		}
	}

	fmt.Fprintf(&b, "# HELP advectd_job_duration_seconds Completed-job execution latency.\n")
	fmt.Fprintf(&b, "# TYPE advectd_job_duration_seconds histogram\n")
	for _, t := range sortedKeys(s.Latency) {
		h := s.Latency[t]
		for _, bc := range h.Buckets {
			fmt.Fprintf(&b, "advectd_job_duration_seconds_bucket{type=%q,le=%q} %d\n", t, bc.LE, bc.Count)
		}
		fmt.Fprintf(&b, "advectd_job_duration_seconds_sum{type=%q} %s\n", t,
			strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "advectd_job_duration_seconds_count{type=%q} %d\n", t, h.Count)
	}
	s.Proc.WriteProm(&b, "advectd")
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
