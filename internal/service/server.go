package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// Config sizes the service. The zero value selects the defaults.
type Config struct {
	// Workers is the execution pool size (concurrent jobs). Default 2.
	Workers int
	// QueueCap bounds the admission queue; a full queue rejects with 429.
	// Default 16.
	QueueCap int
	// CacheEntries bounds the result cache. Default 256.
	CacheEntries int
	// DrainTimeout bounds how long Shutdown waits for queued and running
	// jobs before cancelling them. Default 30s.
	DrainTimeout time.Duration
	// Limits bounds what a single request may ask for.
	Limits Limits
	// Logger receives structured job-lifecycle events (submit, start,
	// finish, shed, cancel, drain), each carrying the job ID and type.
	// Default: discard.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// StatsWindow is the span of the rolling telemetry windows behind
	// GET /v1/stats and the SSE stream. Default 60s.
	StatsWindow time.Duration
	// StreamInterval is the default cadence of stats events on
	// GET /v1/stream (overridable per request with ?interval=). Default 1s.
	StreamInterval time.Duration
	// NodeID names this instance inside a cluster. When set, job IDs are
	// prefixed with it (so IDs stay globally unique across shards) and it
	// is reported by /healthz and /v1/stats so a gateway can label
	// federated telemetry. Empty means standalone (no prefix, no label).
	NodeID string
	// FlightEvents sizes the flight-recorder ring (last N events retained
	// for GET /v1/debug/bundle). 0 selects flight.DefaultEvents; negative
	// disables the recorder and the anomaly engine entirely (the nil-safe
	// disabled path).
	FlightEvents int
	// FlightRules configures the anomaly engine; the zero value selects
	// the defaults documented on flight.Rules. Ignored when FlightEvents
	// is negative.
	FlightRules flight.Rules
	// HeartbeatInterval is the cadence of ": heartbeat" SSE comment lines
	// on idle /v1/stream connections, keeping proxies from severing quiet
	// subscribers. Default 15s.
	HeartbeatInterval time.Duration
	// SessionDir enables resumable sessions: the directory holding the
	// checkpoint store and session records (POST /v1/sessions). Empty
	// disables sessions (the routes answer 503). A restarted node rescans
	// the directory and resumes interrupted sessions automatically.
	SessionDir string
	// SessionSegment is the default steps per durable session checkpoint
	// (default 25); SessionRetain the checkpoints kept per session
	// (default 4); SessionWorkers bounds concurrently executing segments
	// (default 1).
	SessionSegment int
	SessionRetain  int
	SessionWorkers int
	// WarmSweeps enables the speculative sweep warmer: stepped-parameter
	// patterns in the interactive submission stream predict their next
	// points, which idle workers pre-execute at background priority so the
	// sweep's next request is a cache hit.
	WarmSweeps bool
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueCap < 1 {
		c.QueueCap = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.StatsWindow <= 0 {
		c.StatsWindow = 60 * time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 15 * time.Second
	}
	return c
}

// Server assembles the stages: handlers admit jobs into the queue, the
// pool executes them, the store and cache deliver results, and metrics
// watch all of it. Construct with New, expose via Handler, stop with
// Shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	store   *Store
	queue   *Queue
	cache   *Cache
	metrics *Metrics
	tele    *Telemetry
	hub     *telemetry.Hub
	pool    *Pool
	mux     *http.ServeMux
	flight  *flight.Recorder
	engine  *flight.Engine

	// sessions and sessStore are the resumable-session subsystem (nil when
	// Config.SessionDir is empty); warmer is the speculative sweep
	// detector (nil when Config.WarmSweeps is false).
	sessions  *session.Manager
	sessStore *session.Store
	warmer    *session.Warmer

	warmMu       sync.Mutex
	warmInflight map[string]struct{} // cache keys with a background job queued

	baseCtx    context.Context    // parent of every job context
	cancelJobs context.CancelFunc // fired when the drain deadline passes
	draining   atomic.Bool
}

// New builds and starts a server (workers spin up immediately).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	//advect:nolint ctxflow the server root context outlives any request; drain cancels it explicitly
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        cfg.Logger,
		store:      NewStore(cfg.NodeID),
		queue:      NewQueue(cfg.QueueCap),
		cache:      NewCache(cfg.CacheEntries),
		metrics:    NewMetrics(time.Now()),
		tele:       NewTelemetry(cfg.StatsWindow, cfg.QueueCap),
		hub:        telemetry.NewHub(),
		baseCtx:    ctx,
		cancelJobs: cancel,
	}
	if cfg.FlightEvents >= 0 {
		// The flight recorder tees the node's own logger so the ring
		// retains recent log history alongside job/stats/anomaly records;
		// the engine watches jobs and windows, surfacing firings on the
		// live stream and freezing the ring for the postmortem bundle.
		s.flight = flight.NewRecorder(cfg.FlightEvents)
		s.log = slog.New(flight.TeeHandler(s.flight, cfg.Logger.Handler()))
		s.engine = flight.NewEngine(cfg.FlightRules, s.flight)
		s.engine.Notify(s.publishAnomaly)
	}
	if cfg.WarmSweeps {
		s.warmer = session.NewWarmer(session.WarmerConfig{})
	}
	if cfg.SessionDir != "" {
		s.openSessions(cfg)
	}
	s.pool = NewPool(cfg.Workers, s.queue, s.runJob)
	s.mux = s.routes()
	if s.engine.Enabled() {
		go s.sweepLoop()
	}
	return s
}

// openSessions wires the resumable-session subsystem: the durable store,
// the manager running segments through the same registry path as one-shot
// jobs, and crash recovery of whatever the store already holds. A store
// that cannot be opened disables sessions (loudly) rather than the node.
func (s *Server) openSessions(cfg Config) {
	store, err := session.Open(cfg.SessionDir)
	if err != nil {
		s.log.Error("sessions disabled", "dir", cfg.SessionDir, "error", err)
		return
	}
	prefix := ""
	if cfg.NodeID != "" {
		prefix = cfg.NodeID + "-"
	}
	mgr, err := session.NewManager(session.Config{
		Store: store, Run: runKind,
		Segment: cfg.SessionSegment, Retain: cfg.SessionRetain,
		Workers:  cfg.SessionWorkers,
		IDPrefix: prefix, Notify: s.publishSession, Logger: s.log,
	})
	if err != nil {
		s.log.Error("sessions disabled", "dir", cfg.SessionDir, "error", err)
		return
	}
	s.sessStore = store
	s.sessions = mgr
	if n, err := mgr.Recover(); err != nil {
		s.log.Warn("session recovery scan failed", "error", err)
	} else if n > 0 {
		s.log.Info("sessions recovered", "resumed", n)
	}
}

// publishAnomaly surfaces one engine firing: a warning on the node log
// (which the tee handler also folds into the flight ring) and an
// "anomaly" event on the live SSE stream.
func (s *Server) publishAnomaly(a flight.Anomaly, _ flight.Snapshot) {
	s.log.Warn("anomaly detected", "rule", a.Rule, "job", a.JobID,
		"trace_id", a.TraceID, "value", a.Value, "bound", a.Bound,
		"detail", a.Message)
	data, err := json.Marshal(a)
	if err != nil {
		return
	}
	s.hub.Publish(telemetry.Event{Name: "anomaly", Data: data})
}

// flightSweepInterval is the cadence of the anomaly engine's windowed-rule
// evaluation; every statsEveryNSweeps-th sweep also lands a stats record
// in the flight ring.
const (
	flightSweepInterval = time.Second
	statsEveryNSweeps   = 15
)

// sweepLoop periodically evaluates the windowed anomaly rules and drops a
// stats heartbeat into the flight ring, until the server's root context is
// cancelled at the end of a drain.
func (s *Server) sweepLoop() {
	tick := time.NewTicker(flightSweepInterval)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-tick.C:
			s.engine.Sweep(now)
			n++
			if n%statsEveryNSweeps == 0 {
				s.flight.Stats(now, fmt.Sprintf("queue %d/%d busy %d/%d",
					s.queue.Depth(), s.queue.Cap(), s.pool.Busy(), s.pool.Workers()))
			}
		}
	}
}

// jobArgs assembles the shared slog attributes of a job's lifecycle lines:
// job id, type, and — when the job belongs to a cluster-wide trace — its
// trace id, so flight-recorder log records correlate with traces.
func jobArgs(j *Job, extra ...any) []any {
	args := make([]any, 0, 6+len(extra))
	args = append(args, "job", j.id, "type", j.req.Type)
	if j.traceID != "" {
		args = append(args, "trace_id", j.traceID)
	}
	return append(args, extra...)
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit validates and admits a request, serving it from the result cache
// when possible. It returns the job and, on rejection, a non-nil error:
// ErrQueueFull (429) or ErrDraining (503).
func (s *Server) Submit(req Request) (*Job, error) {
	return s.SubmitTraced(req, nil)
}

// SubmitTraced is Submit carrying an optional upstream trace context (the
// decoded X-Advect-Trace header): a traced job's recorder absorbs the
// sender's span log — rebased onto this job's epoch, with the hop
// annotated — so the stitched export spans gateway routing and the local
// lifecycle on one timeline. A nil context is a plain submission.
func (s *Server) SubmitTraced(req Request, tc *obs.TraceContext) (*Job, error) {
	if err := req.Validate(s.cfg.Limits); err != nil {
		return nil, &RequestError{Err: err}
	}
	if s.draining.Load() {
		s.metrics.CountJob(req.Type, outcomeRejected)
		s.engine.ObserveShed(time.Now())
		args := []any{"type", req.Type, "reason", "draining"}
		if tc != nil && tc.TraceID != "" {
			args = append(args, "trace_id", tc.TraceID)
		}
		s.log.Warn("job shed", args...)
		return nil, ErrDraining
	}
	now := time.Now()
	j := newJob(s.store.NewID(), req, s.baseCtx, now)
	if tc != nil && j.rec != nil {
		j.traceID = tc.TraceID
		j.rec.Import(tc)
	}
	lookup := j.rec.Begin(obs.RankService, -1, obs.PhaseCacheLookup, "")
	doc, hit := s.cache.Get(j.cacheKey)
	lookup.End()
	if hit {
		// A cache hit never ran under this job's recorder, so the stitched
		// trace would be service-only noise; drop it.
		j.rec = nil
		j.completeFromCache(doc, now)
		s.store.Add(j)
		s.metrics.CountJob(req.Type, outcomeSubmitted)
		s.metrics.CountJob(req.Type, outcomeCached)
		warmed := s.warmer.WasWarmed(j.cacheKey) // counts a warmer hit
		s.log.Info("job submitted", jobArgs(j, "cache_hit", true, "warmed", warmed)...)
		s.publishJob(j)
		s.warmFromSubmit(req)
		return j, nil
	}
	if !s.queue.TryPush(j) {
		s.metrics.CountJob(req.Type, outcomeRejected)
		s.engine.ObserveShed(now)
		s.log.Warn("job shed", jobArgs(j, "reason", "queue full",
			"queue_depth", s.queue.Depth())...)
		return nil, ErrQueueFull
	}
	j.queuedAt = j.rec.Clock()
	j.rec.Add(obs.RankService, -1, obs.PhaseHTTPReceive, "", 0, j.queuedAt)
	s.store.Add(j)
	s.metrics.CountJob(req.Type, outcomeSubmitted)
	s.tele.RecordDepth(now, s.queue.Depth())
	s.log.Info("job submitted", jobArgs(j, "cache_hit", false)...)
	s.publishJob(j)
	s.warmFromSubmit(req)
	return j, nil
}

// publishJob emits a job lifecycle event on the live stream and the
// flight ring.
func (s *Server) publishJob(j *Job) {
	v := j.View()
	s.flight.Job(time.Now(), v.ID, v.TraceID, string(v.State))
	data, err := json.Marshal(map[string]any{
		"id": v.ID, "type": v.Type, "state": v.State,
	})
	if err != nil {
		return
	}
	s.hub.Publish(telemetry.Event{Name: "job", Data: data})
}

// runJob is the worker loop body: claim, execute under the job context,
// land the terminal state, feed the cache and the metrics.
func (s *Server) runJob(j *Job) {
	claimed := time.Now()
	if !j.claim(claimed) {
		// Cancelled while queued: the job never ran, so it gets no exec
		// span and feeds no latency window — only the outcome counter and
		// the terminal-state event the poller and the stream both see.
		s.metrics.CountJob(j.req.Type, outcomeCancelled)
		if j.background {
			s.releaseWarm(j.cacheKey)
			s.warmer.NoteShed()
		}
		s.log.Info("job skipped", jobArgs(j, "state", j.State(), "reason", "cancelled while queued")...)
		s.publishJob(j)
		return
	}
	if !j.background {
		j.rec.Add(obs.RankService, -1, obs.PhaseQueueWait, "", j.queuedAt, j.rec.Clock())
		s.tele.RecordQueueWait(claimed, claimed.Sub(j.submitted))
		s.tele.RecordDepth(claimed, s.queue.Depth())
	}
	s.log.Info("job started", jobArgs(j, "background", j.background)...)
	s.publishJob(j)
	start := time.Now()
	exec := j.rec.Begin(obs.RankService, -1, obs.PhaseWorkerExec, "")
	doc, err := execute(j.ctx, j.req, j.rec, j.id)
	exec.End()
	elapsed := time.Since(start)
	now := time.Now()
	if j.background {
		s.finishBackground(j, doc, err, elapsed, now)
		return
	}
	switch {
	case err == nil:
		j.finish(StateDone, doc, "", now)
		s.cache.Put(j.cacheKey, doc)
		s.metrics.CountJob(j.req.Type, outcomeDone)
		s.metrics.ObserveLatency(j.req.Type, elapsed)
		s.tele.RecordExec(now, j.req.Type, elapsed)
		if sr := j.req.Simulate; j.req.Type == TypeSimulate && sr != nil {
			n := float64(sr.N)
			s.tele.RecordPoints(now, n*n*n*float64(sr.Steps))
		}
		var rep *obs.Report
		if j.rec != nil {
			// The pair totals here match the report embedded in the result
			// document exactly: the service-level spans recorded since are
			// not part of any overlap pair.
			r := obs.BuildReport(j.rec.Spans())
			rep = &r
			s.tele.RecordOverlap(now, rep)
			s.flight.Span(now, j.id, j.traceID,
				fmt.Sprintf("%d spans over %d ranks", rep.Spans, len(rep.Ranks)))
		}
		s.observeJob(now, j, elapsed, rep)
		s.log.Info("job finished", jobArgs(j, "state", StateDone, "duration", elapsed)...)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCancelled, nil, err.Error(), now)
		s.metrics.CountJob(j.req.Type, outcomeCancelled)
		s.log.Info("job finished", jobArgs(j, "state", StateCancelled, "duration", elapsed)...)
	default:
		j.finish(StateFailed, nil, err.Error(), now)
		s.metrics.CountJob(j.req.Type, outcomeFailed)
		s.log.Error("job finished", jobArgs(j, "state", StateFailed, "duration", elapsed, "error", err)...)
	}
	s.publishJob(j)
}

// finishBackground lands a speculative pre-execution. A completed one
// seeds the cache and is remembered by the warmer so the matching
// interactive submission counts as a warmer hit; failures and
// cancellations just land — background work never feeds the interactive
// telemetry windows or the anomaly engine.
func (s *Server) finishBackground(j *Job, doc json.RawMessage, err error, elapsed time.Duration, now time.Time) {
	s.releaseWarm(j.cacheKey)
	switch {
	case err == nil:
		j.finish(StateDone, doc, "", now)
		s.cache.Put(j.cacheKey, doc)
		s.warmer.MarkWarmed(j.cacheKey)
		s.metrics.CountJob(j.req.Type, outcomeDone)
		s.log.Info("job finished", jobArgs(j, "state", StateDone, "duration", elapsed, "background", true)...)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCancelled, nil, err.Error(), now)
		s.metrics.CountJob(j.req.Type, outcomeCancelled)
		s.warmer.NoteShed()
		s.log.Info("job finished", jobArgs(j, "state", StateCancelled, "duration", elapsed, "background", true)...)
	default:
		j.finish(StateFailed, nil, err.Error(), now)
		s.metrics.CountJob(j.req.Type, outcomeFailed)
		s.log.Warn("job finished", jobArgs(j, "state", StateFailed, "duration", elapsed, "background", true, "error", err)...)
	}
	s.publishJob(j)
}

// observeJob feeds one successfully finished job to the anomaly engine,
// carrying the shape parameters the model-drift rule scores against the
// perf model and the traced report (nil when untraced) the straggler and
// drift rules read.
func (s *Server) observeJob(now time.Time, j *Job, elapsed time.Duration, rep *obs.Report) {
	if !s.engine.Enabled() {
		return
	}
	sample := flight.JobSample{
		JobID: j.id, TraceID: j.traceID, Type: j.req.Type,
		Elapsed: elapsed, Report: rep,
	}
	if sr := j.req.Simulate; j.req.Type == TypeSimulate && sr != nil {
		sample.Kind = sr.Kind
		sample.N = sr.N
		sample.Tasks = sr.Tasks
		sample.Threads = sr.Threads
	}
	s.engine.ObserveJob(now, sample)
}

// RetryAfter estimates how long a rejected client should wait: the queue
// is full, so roughly one queue's worth of work per pool, using the mean
// completed-job latency (1s before any job completes), clamped to [1, 60]
// seconds.
func (s *Server) RetryAfter() time.Duration {
	mean, ok := s.metrics.MeanLatency()
	if !ok {
		mean = time.Second
	}
	wait := time.Duration(float64(mean) * float64(s.queue.Depth()+1) / float64(s.pool.Workers()))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > time.Minute {
		wait = time.Minute
	}
	return wait
}

// MetricsSnapshot assembles the current metrics document, including a
// fresh process-health reading.
func (s *Server) MetricsSnapshot() Snapshot {
	snap := s.metrics.Snapshot(
		time.Now(),
		QueueGauges{Depth: s.queue.Depth(), Capacity: s.queue.Cap()},
		WorkerGauges{Busy: s.pool.Busy(), Total: s.pool.Workers()},
		s.cache.Stats(),
	)
	snap.Proc = telemetry.ReadProc()
	return snap
}

// StatsSnapshot assembles the rolling-window telemetry document.
func (s *Server) StatsSnapshot() TelemetryStats {
	st := s.tele.Stats(
		time.Now(),
		QueueGauges{Depth: s.queue.Depth(), Capacity: s.queue.Cap()},
		WorkerGauges{Busy: s.pool.Busy(), Total: s.pool.Workers()},
	)
	st.Node = s.cfg.NodeID
	if s.engine.Enabled() {
		a := s.engine.Anomalies()
		st.Anomalies = &a
	}
	if s.sessions != nil {
		sst := s.sessions.Stats()
		st.Sessions = &sst
	}
	if s.warmer != nil {
		wst := s.warmer.Stats()
		st.Warmer = &wst
	}
	return st
}

// Shutdown drains the service: admission stops (new submissions get 503),
// queued and running jobs are given the drain timeout to finish, and any
// still running at the deadline are cancelled through their contexts (the
// implementations stop between timesteps). It returns nil on a clean
// drain, or an error naming the jobs that had to be cancelled.
func (s *Server) Shutdown() error {
	s.draining.Store(true)
	if s.sessions != nil {
		// Session shutdown is deliberately crash-shaped: in-flight segments
		// are cancelled, records stay "running" on disk, and the next
		// process resumes them from their last durable checkpoint — the
		// same path an actual crash takes, exercised on every restart.
		s.sessions.Close()
	}
	s.queue.Close()
	s.log.Info("drain started", "timeout", s.cfg.DrainTimeout)
	done := make(chan struct{})
	go func() {
		s.pool.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelJobs()
		s.hub.Close()
		s.log.Info("drain finished", "clean", true)
		return nil
	case <-time.After(s.cfg.DrainTimeout):
		s.cancelJobs()
		<-done
		s.hub.Close()
		s.log.Warn("drain finished", "clean", false, "timeout", s.cfg.DrainTimeout)
		return fmt.Errorf("service: drain deadline %v exceeded; in-flight jobs were cancelled", s.cfg.DrainTimeout)
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// ErrQueueFull is returned by Submit when the admission queue is full; the
// HTTP layer turns it into 429 with a Retry-After header.
var ErrQueueFull = errors.New("service: queue full")

// ErrDraining is returned by Submit once shutdown has begun (503).
var ErrDraining = errors.New("service: shutting down")

// RequestError marks a malformed request (400).
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// writeJSON serializes a response document.
func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
