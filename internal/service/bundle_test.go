package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineLog collects SSE lines from a response body as they arrive, so a
// test can assert on the stream's shape while it is still open.
type lineLog struct {
	mu    sync.Mutex
	lines []string
	done  chan struct{}
}

func followSSE(resp *http.Response) *lineLog {
	l := &lineLog{done: make(chan struct{})}
	go func() {
		defer close(l.done)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			l.mu.Lock()
			l.lines = append(l.lines, sc.Text())
			l.mu.Unlock()
		}
	}()
	return l
}

func (l *lineLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

// count returns how many collected lines satisfy pred.
func (l *lineLog) count(pred func(string) bool) int {
	n := 0
	for _, line := range l.snapshot() {
		if pred(line) {
			n++
		}
	}
	return n
}

// waitFor polls until pred sees enough lines or the deadline passes.
func (l *lineLog) waitFor(t *testing.T, what string, want int, pred func(string) bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for l.count(pred) < want {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d %s lines; stream so far:\n%s", want, what, strings.Join(l.snapshot(), "\n"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamHeartbeatOnIdleStream is the keep-alive satellite: an idle
// subscriber (stats interval effectively never) receives periodic SSE
// comment lines, the connection survives them, and a real event delivered
// afterwards still parses — heartbeats never leak into the event framing.
func TestStreamHeartbeatOnIdleStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, HeartbeatInterval: 50 * time.Millisecond})

	resp, err := http.Get(ts.URL + "/v1/stream?interval=1h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	log := followSSE(resp)

	isHeartbeat := func(line string) bool { return strings.HasPrefix(line, ":") }
	log.waitFor(t, "heartbeat", 3, isHeartbeat)

	// The connection is demonstrably still alive after multiple idle
	// heartbeats: a job submitted now must arrive as a normal event.
	_, v := postJob(t, ts, predictBody)
	waitState(t, ts, v.ID, StateDone)
	log.waitFor(t, "job event", 1, func(line string) bool { return strings.HasPrefix(line, "event: job") })

	for _, line := range log.snapshot() {
		switch {
		case line == "" || strings.HasPrefix(line, "data: "):
		case strings.HasPrefix(line, ":"):
			if line != ": heartbeat" {
				t.Errorf("malformed heartbeat comment %q", line)
			}
		case strings.HasPrefix(line, "event: "):
			if name := strings.TrimPrefix(line, "event: "); name != "stats" && name != "job" && name != "anomaly" {
				t.Errorf("unexpected event name %q", name)
			}
		default:
			t.Errorf("line outside the SSE framing: %q", line)
		}
	}

	resp.Body.Close()
	<-log.done
}

// TestDebugBundleNodeStamped checks the node-local postmortem endpoint:
// the bundle is stamped with the node ID and carries the flight ring
// (including the lifecycle records of a finished job), profiles, and
// build info.
func TestDebugBundleNodeStamped(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, NodeID: "n1"})

	_, v := postJob(t, ts, predictBody)
	waitState(t, ts, v.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle: want 200, got %v", resp.Status)
	}
	var b BundleDoc
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatalf("decode bundle: %v", err)
	}
	if b.Node != "n1" {
		t.Fatalf("bundle node = %q, want n1", b.Node)
	}
	if len(b.Flight.Records) == 0 {
		t.Fatal("bundle flight ring is empty")
	}
	sawJob := false
	for _, rec := range b.Flight.Records {
		if rec.JobID == v.ID {
			sawJob = true
		}
	}
	if !sawJob {
		t.Fatalf("no flight record for job %s in %d records", v.ID, len(b.Flight.Records))
	}
	if b.Profiles["goroutine"] == "" || b.Profiles["heap"] == "" {
		t.Fatalf("missing profiles, got keys %v", len(b.Profiles))
	}
	if b.Build.GoVersion == "" || b.Build.Goroutines <= 0 {
		t.Fatalf("build info incomplete: %+v", b.Build)
	}
	if b.Stats.Node != "n1" {
		t.Fatalf("embedded stats not node-stamped: %q", b.Stats.Node)
	}
}

// TestDebugBundleFlightDisabled: with the recorder disabled the endpoint
// still answers 200 — an empty black box, not an error.
func TestDebugBundleFlightDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, FlightEvents: -1})
	resp, err := http.Get(ts.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle with flight disabled: want 200, got %v", resp.Status)
	}
	var b BundleDoc
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatalf("decode bundle: %v", err)
	}
	if len(b.Flight.Records) != 0 || b.Anomalies.Total != 0 {
		t.Fatalf("disabled flight produced data: %d records, %d anomalies", len(b.Flight.Records), b.Anomalies.Total)
	}
}
