package service

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// The node boundary's acceptance contract for X-Advect-Trace: a valid
// context stitches the sender's spans into the job's trace; anything
// malformed degrades to an untraced-from-upstream submission — tracing is
// best-effort observability and never a reason to reject work.

// postJobWithHeader is postJob with an X-Advect-Trace value attached.
func postJobWithHeader(t *testing.T, ts *httptest.Server, body, trace string) (*http.Response, View) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	}
	return resp, v
}

func TestTraceHeaderPropagates(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Build the header the way the gateway does: a recorder with one
	// gateway-rank span, snapshotted under a minted id.
	rec := obs.NewRecorder()
	rec.Add(obs.RankGateway, -1, obs.PhaseGWRoute, "n1", 0, 0.001)
	id := obs.NewTraceID()
	header := rec.TraceContext(id).Encode()

	body := `{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":2,"tasks":2,"trace":true}}`
	resp, v := postJobWithHeader(t, ts, body, header)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if v.TraceID != id {
		t.Fatalf("view trace_id %q, want the propagated %q", v.TraceID, id)
	}
	waitState(t, ts, v.ID, StateDone)

	// The spans doc carries the propagated id and the imported gateway
	// span plus the handoff bridging the hop.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("spans status %d", sresp.StatusCode)
	}
	var c obs.TraceContext
	if err := json.NewDecoder(sresp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if c.TraceID != id {
		t.Errorf("spans trace_id %q, want %q", c.TraceID, id)
	}
	var sawRoute, sawHandoff bool
	for _, s := range c.Spans {
		sawRoute = sawRoute || s.Phase == obs.PhaseGWRoute
		sawHandoff = sawHandoff || s.Phase == obs.PhaseGWHandoff
	}
	if !sawRoute || !sawHandoff {
		t.Errorf("imported gateway spans missing: route=%v handoff=%v", sawRoute, sawHandoff)
	}
}

func TestTraceHeaderMalformedFallsBack(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	valid := obs.NewRecorder().TraceContext("t").Encode()
	cases := map[string]string{
		"not base64":       "!!!not-base64url!!!",
		"not json":         "bm90LWpzb24", // base64url("not-json")
		"missing trace_id": encodeJSON(t, map[string]any{"epoch_ns": 1}),
		"missing epoch_ns": encodeJSON(t, map[string]any{"trace_id": "abc"}),
		"oversized":        valid + strings.Repeat("A", 96<<10),
	}
	steps := 1
	for name, header := range cases {
		// Distinct problems per case: an identical body would be served
		// from the result cache (200, no fresh admission) after the first.
		steps++
		body := fmt.Sprintf(`{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":%d,"tasks":2,"trace":true}}`, steps)
		t.Run(name, func(t *testing.T) {
			resp, v := postJobWithHeader(t, ts, body, header)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("status %d, want 202 — malformed trace must not reject the job", resp.StatusCode)
			}
			if v.TraceID != "" {
				t.Errorf("view trace_id %q, want empty on malformed context", v.TraceID)
			}
			waitState(t, ts, v.ID, StateDone)
		})
	}
}

func TestTraceHeaderAbsentUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"type":"simulate","simulate":{"kind":"bulk","n":16,"steps":2,"tasks":2,"trace":true}}`
	resp, v := postJobWithHeader(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if v.TraceID != "" {
		t.Errorf("view trace_id %q, want empty without an upstream context", v.TraceID)
	}
	waitState(t, ts, v.ID, StateDone)
}

// encodeJSON renders a value as an unpadded base64url JSON header the way
// Encode does, for hand-built malformed contexts.
func encodeJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return base64.RawURLEncoding.EncodeToString(b)
}
