package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The service benchmarks measure the end-to-end request path for a predict
// job — POST /v1/jobs through admission, and for the uncached variant
// through the queue, a worker, and the performance model. The committed
// baseline lives in BENCH_service.json.

func benchServer(b *testing.B) (*Server, *httptest.Server) {
	b.Helper()
	s := New(Config{Workers: 2, QueueCap: 64})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return s, ts
}

func benchSubmit(b *testing.B, ts *httptest.Server, wantStatus int) string {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(predictBody))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b.Fatalf("submit: want %d, got %v", wantStatus, resp.Status)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		b.Fatal(err)
	}
	return v.ID
}

func (s *Server) benchWaitDone(b *testing.B, id string) {
	b.Helper()
	j, ok := s.store.Get(id)
	if !ok {
		b.Fatalf("job %s missing", id)
	}
	for !j.State().Terminal() {
		time.Sleep(50 * time.Microsecond)
	}
	if st := j.State(); st != StateDone {
		b.Fatalf("job %s landed in %s", id, st)
	}
}

// BenchmarkPredictCached measures a repeated identical predict request:
// after the first completion every submission is answered synchronously
// from the result cache (200, no queue, no worker).
func BenchmarkPredictCached(b *testing.B) {
	s, ts := benchServer(b)
	s.benchWaitDone(b, benchSubmit(b, ts, http.StatusAccepted))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSubmit(b, ts, http.StatusOK)
	}
}

// BenchmarkPredictUncached measures the same request with the cache purged
// each iteration, so every submission runs the full queue → worker →
// performance-model path and is polled to completion.
func BenchmarkPredictUncached(b *testing.B) {
	s, ts := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache.purge()
		b.StartTimer()
		s.benchWaitDone(b, benchSubmit(b, ts, http.StatusAccepted))
	}
}
