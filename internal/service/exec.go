package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	_ "repro/internal/impl" // register the functional implementations
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perf"
)

// SimulateResult is the rendered document of a simulate job. The final
// field is deliberately omitted — results are status documents, not
// multi-megabyte state dumps. Overlap and TraceURL are present only when
// the request set trace: the report summarizes how much communication was
// hidden; the URL serves the stitched Chrome trace-event JSON (the blob
// itself is no longer embedded — pass ?embed_trace=1 to the result
// endpoint for the legacy inline form).
type SimulateResult struct {
	Kind       string             `json:"kind"`
	ElapsedSec float64            `json:"elapsed_sec"`
	GF         float64            `json:"gf"`
	L2         float64            `json:"l2,omitempty"`
	LInf       float64            `json:"linf,omitempty"`
	MassDrift  float64            `json:"mass_drift,omitempty"`
	Stats      map[string]float64 `json:"stats,omitempty"`
	Overlap    *obs.Report        `json:"overlap,omitempty"`
	TraceURL   string             `json:"trace_url,omitempty"`
}

// PredictResult is the rendered document of a predict job.
type PredictResult struct {
	Machine   string             `json:"machine"`
	Kind      string             `json:"kind"`
	Cores     int                `json:"cores"`
	Threads   int                `json:"threads"`
	StepSec   float64            `json:"step_sec"`
	GF        float64            `json:"gf"`
	Breakdown map[string]float64 `json:"breakdown,omitempty"`
}

// ExperimentResult is the rendered document of an experiment job: the
// harness's text tables and charts, verbatim.
type ExperimentResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref"`
	Output   string `json:"output"`
}

// execute runs a validated request to completion under ctx and returns the
// rendered result document. rec is the job's span recorder (nil for
// untraced jobs); the runner records its per-rank phases into it, so the
// spans land on the same timeline as the service-level request lifecycle.
func execute(ctx context.Context, req Request, rec *obs.Recorder, jobID string) (json.RawMessage, error) {
	switch req.Type {
	case TypeSimulate:
		return executeSimulate(ctx, req.Simulate, rec, jobID)
	case TypePredict:
		return executePredict(ctx, req.Predict)
	case TypeExperiment:
		return executeExperiment(ctx, req.Experiment)
	}
	return nil, fmt.Errorf("service: unknown job type %q", req.Type)
}

func executeSimulate(ctx context.Context, sr *SimulateRequest, rec *obs.Recorder, jobID string) (json.RawMessage, error) {
	kind, err := core.ParseKind(sr.Kind)
	if err != nil {
		return nil, err
	}
	r, err := core.New(kind)
	if err != nil {
		return nil, err
	}
	o := sr.options()
	o.Ctx = ctx // cancellation is polled between timesteps
	if rec != nil {
		o.Rec = rec
		o.TraceOverlap = kind.UsesGPU()
	}
	res, err := r.Run(sr.problem(), o)
	if err != nil {
		return nil, err
	}
	doc := SimulateResult{
		Kind:       kind.String(),
		ElapsedSec: res.Elapsed.Seconds(),
		GF:         res.GF,
		Stats:      res.Stats,
	}
	if sr.Verify {
		doc.L2 = res.Norms.L2
		doc.LInf = res.Norms.LInf
		doc.MassDrift = res.MassDrift
	}
	if rec != nil {
		rep := rec.Report()
		doc.Overlap = &rep
		doc.TraceURL = "/v1/jobs/" + jobID + "/trace"
	}
	enc := rec.Begin(obs.RankService, -1, obs.PhaseResultEncode, "")
	out, err := json.Marshal(doc)
	enc.End()
	return out, err
}

func executePredict(ctx context.Context, pr *PredictRequest) (json.RawMessage, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind, err := core.ParseKind(pr.Kind)
	if err != nil {
		return nil, err
	}
	m, err := machine.ByName(pr.Machine)
	if err != nil {
		return nil, err
	}
	cfg := perf.Config{
		M: m, Kind: kind,
		Cores: pr.Cores, Threads: pr.Threads,
		BlockX: pr.BlockX, BlockY: pr.BlockY,
		BoxThickness: pr.BoxThickness, HaloWidth: pr.HaloWidth,
	}
	if pr.N > 0 {
		cfg.N = core.DefaultProblem(pr.N, 0).N
	}
	est, err := perf.Evaluate(cfg)
	if err != nil {
		return nil, err
	}
	return json.Marshal(PredictResult{
		Machine: m.Name, Kind: kind.String(),
		Cores: est.Config.Cores, Threads: est.Config.Threads,
		StepSec: est.StepSec, GF: est.GF,
		Breakdown: est.Breakdown,
	})
}

func executeExperiment(ctx context.Context, er *ExperimentRequest) (json.RawMessage, error) {
	// Harness experiments are bounded but not interruptible mid-run; honor
	// a cancellation that landed while the job was queued.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	exp, err := harness.ByID(er.ID)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := exp.Run(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(ExperimentResult{
		ID: exp.ID, Title: exp.Title, PaperRef: exp.PaperRef,
		Output: buf.String(),
	})
}
