package service

import (
	"encoding/json"
	"net/http"
	"time"
)

// handleStream is the live telemetry feed: a Server-Sent Events stream that
// interleaves job lifecycle events (event: job) with periodic rolling-stats
// snapshots (event: stats). The cadence defaults to Config.StreamInterval
// and can be overridden per request with ?interval= (a Go duration,
// clamped to at least 100ms). The stream ends when the client disconnects
// or the server drains — SSE clients reconnect by default, and on a
// drained instance the reconnect fails fast against the closed listener.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: "streaming unsupported"})
		return
	}
	interval := s.cfg.StreamInterval
	if q := r.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad interval: " + err.Error()})
			return
		}
		interval = d
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}

	events, cancel := s.hub.Subscribe(64)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeStats := func() bool {
		data, err := json.Marshal(s.StatsSnapshot())
		if err != nil {
			return false
		}
		return writeSSE(w, "stats", data)
	}
	if !writeStats() {
		return
	}
	fl.Flush()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	// Heartbeats are SSE comment lines (leading ':'), which clients must
	// ignore by spec — they keep idle connections alive through proxies
	// without ever surfacing as events.
	hb := time.NewTicker(s.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return // hub closed: server draining
			}
			if !writeSSE(w, ev.Name, ev.Data) {
				return
			}
			fl.Flush()
		case <-tick.C:
			if !writeStats() {
				return
			}
			fl.Flush()
		case <-hb.C:
			if _, err := w.Write([]byte(": heartbeat\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one Server-Sent Event frame; data must be a single line
// (JSON documents without indentation are).
func writeSSE(w http.ResponseWriter, name string, data []byte) bool {
	if _, err := w.Write([]byte("event: " + name + "\ndata: ")); err != nil {
		return false
	}
	if _, err := w.Write(data); err != nil {
		return false
	}
	_, err := w.Write([]byte("\n\n"))
	return err == nil
}
