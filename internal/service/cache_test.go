package service

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	doc := func(i int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"v":%d}`, i))
	}
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), doc(i))
	}
	// Touch k0 so k1 becomes least recently used, then overflow.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", doc(3))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived eviction; LRU order not honored")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Size != 3 || st.Capacity != 3 {
		t.Fatalf("size/capacity %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// 5 successful Gets, 1 failed.
	if st.Hits != 4 || st.Misses != 1 {
		t.Fatalf("hits/misses %+v", st)
	}
}

func TestCacheUpdateMovesToFront(t *testing.T) {
	c := NewCache(2)
	c.Put("a", json.RawMessage(`1`))
	c.Put("b", json.RawMessage(`2`))
	c.Put("a", json.RawMessage(`3`)) // update, not insert: refreshes recency
	c.Put("c", json.RawMessage(`4`)) // must evict b, not a
	if v, ok := c.Get("a"); !ok || string(v) != `3` {
		t.Fatalf("a = %s, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", json.RawMessage(`1`))
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestCachePurgeKeepsCounters(t *testing.T) {
	c := NewCache(4)
	c.Put("a", json.RawMessage(`1`))
	c.Get("a")
	c.purge()
	if _, ok := c.Get("a"); ok {
		t.Fatal("purge left entries behind")
	}
	st := c.Stats()
	if st.Size != 0 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after purge %+v", st)
	}
}
