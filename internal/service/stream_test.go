package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// readSSE consumes the stream until it has seen every wanted event name (or
// the deadline passes), then reports which were seen.
func readSSE(t *testing.T, resp *http.Response, want []string, deadline time.Duration) map[string]int {
	t.Helper()
	seen := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				seen[name]++
			}
			all := true
			for _, w := range want {
				if seen[w] == 0 {
					all = false
				}
			}
			if all {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(deadline):
	}
	resp.Body.Close() // unblocks the scanner goroutine if still reading
	<-done
	return seen
}

// TestStreamDeliversJobAndStats checks the SSE contract: a subscriber sees
// periodic stats events and the lifecycle events of jobs submitted while
// connected. Run with -race (ci.sh does), this also exercises the
// hub/handler paths under concurrent submits.
func TestStreamDeliversJobAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})

	resp, err := http.Get(ts.URL + "/v1/stream?interval=100ms")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	// Concurrent submits while the subscriber is attached.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, v := postJob(t, ts, predictBody)
			r.Body.Close()
			if v.ID != "" {
				waitState(t, ts, v.ID, StateDone)
			}
		}()
	}
	seen := readSSE(t, resp, []string{"stats", "job"}, 15*time.Second)
	wg.Wait()
	if seen["stats"] == 0 {
		t.Fatalf("no stats events seen: %v", seen)
	}
	if seen["job"] == 0 {
		t.Fatalf("no job events seen: %v", seen)
	}
}

// TestStreamBadInterval checks the ?interval= validation path.
func TestStreamBadInterval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/stream?interval=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad interval: want 400, got %v", resp.Status)
	}
}

// TestStreamNoGoroutineLeak is the race-soundness satellite: subscribers
// that disconnect mid-stream, plus a drain that closes the hub, must leave
// no handler or hub goroutines behind. Goroutine counts are compared
// before/after with polling, since handler teardown is asynchronous.
func TestStreamNoGoroutineLeak(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 8, DrainTimeout: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())

	before := runtime.NumGoroutine()

	// A batch of subscribers; every one disconnects abruptly.
	var resps []*http.Response
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/v1/stream?interval=100ms")
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, resp)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, v := postJob(t, ts, predictBody)
			r.Body.Close()
			if v.ID != "" {
				waitState(t, ts, v.ID, StateDone)
			}
		}()
	}
	wg.Wait()
	for _, resp := range resps {
		resp.Body.Close() // client walks away; handler must notice and return
	}

	// One more subscriber left attached: the drain must close the hub and
	// end its stream too.
	last, err := http.Get(ts.URL + "/v1/stream?interval=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	buf := make([]byte, 4096)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := last.Body.Read(buf); err != nil {
			break // EOF: the handler returned after the hub closed
		}
		if time.Now().After(deadline) {
			t.Fatal("stream did not end after drain")
		}
	}
	last.Body.Close()

	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	// Allow teardown to settle; fail only if goroutines never return to
	// (near) the baseline.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}
