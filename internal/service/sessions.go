package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// SessionRequest is the body of POST /v1/sessions: a simulate payload
// whose steps are the session's whole trajectory, plus the segmentation of
// that trajectory into durable checkpoints.
type SessionRequest struct {
	Simulate *SimulateRequest `json:"simulate"`
	// Segment is the steps integrated between durable checkpoints (node
	// default when 0); Retain bounds the checkpoints kept (node default
	// when 0).
	Segment int `json:"segment,omitempty"`
	Retain  int `json:"retain,omitempty"`
	// TraceID carries a cluster-wide correlation id across failover, so a
	// session resumed on a survivor stays one logical trace.
	TraceID string `json:"trace_id,omitempty"`
	// Checkpoint, when set (base64 in JSON), seeds the session at an
	// already-integrated step from raw checkpoint bytes — the failover
	// path: a gateway re-creates a dead owner's session on a survivor from
	// the replicated checkpoint.
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// Validate checks the session request against the node's limits.
func (r *SessionRequest) Validate(lim Limits) error {
	if r.Simulate == nil {
		return fmt.Errorf("session requires the simulate payload")
	}
	if err := r.Simulate.validate(lim); err != nil {
		return err
	}
	if r.Simulate.Steps < 1 {
		return fmt.Errorf("session needs at least one step")
	}
	if r.Simulate.Trace {
		return fmt.Errorf("sessions do not support trace (segments run untraced; use trace_id for cluster correlation)")
	}
	if r.Segment < 0 || r.Segment > r.Simulate.Steps {
		return fmt.Errorf("segment %d out of range [0, %d]", r.Segment, r.Simulate.Steps)
	}
	if r.Retain < 0 {
		return fmt.Errorf("retain %d < 0", r.Retain)
	}
	return nil
}

// scenario converts the validated request into a session scenario.
func (r *SessionRequest) scenario() (session.Scenario, error) {
	kind, err := core.ParseKind(r.Simulate.Kind)
	if err != nil {
		return session.Scenario{}, err
	}
	return session.Scenario{
		Kind: kind, Problem: r.Simulate.problem(), Options: r.Simulate.options(),
		Segment: r.Segment, Retain: r.Retain, TraceID: r.TraceID,
	}, nil
}

// SessionFingerprint computes the content-addressed identity a session
// created from req would get — the key a cluster gateway shards sessions
// by, and the prefix of its checkpoint files in the store.
func SessionFingerprint(req SessionRequest) (string, error) {
	if req.Simulate == nil {
		return "", fmt.Errorf("session requires the simulate payload")
	}
	sc, err := req.scenario()
	if err != nil {
		return "", err
	}
	sc.Options = sc.Options.Normalize()
	return sc.Fingerprint(), nil
}

// ForkRequest is the body of POST /v1/sessions/{id}/fork: where to branch
// and what to vary. Unset fields inherit the parent; pointers distinguish
// "leave alone" from an explicit zero.
type ForkRequest struct {
	// AtStep selects the retained checkpoint to branch from; nil or
	// negative selects the newest.
	AtStep *int64 `json:"at_step,omitempty"`
	// TotalSteps is the child's whole trajectory length (parent total when
	// 0); it must extend past the fork point.
	TotalSteps   int64   `json:"total_steps,omitempty"`
	Tasks        *int    `json:"tasks,omitempty"`
	Threads      *int    `json:"threads,omitempty"`
	BlockX       *int    `json:"blockx,omitempty"`
	BlockY       *int    `json:"blocky,omitempty"`
	BoxThickness *int    `json:"thickness,omitempty"`
	HaloWidth    *int    `json:"halowidth,omitempty"`
	TasksPerGPU  *int    `json:"taskspergpu,omitempty"`
	GPU          *string `json:"gpu,omitempty"`
	Verify       *bool   `json:"verify,omitempty"`
}

// options merges the fork's overrides onto the parent's options.
func (fr *ForkRequest) options(parent core.Options) (core.Options, error) {
	o := parent
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&o.Tasks, fr.Tasks)
	setInt(&o.Threads, fr.Threads)
	setInt(&o.BlockX, fr.BlockX)
	setInt(&o.BlockY, fr.BlockY)
	setInt(&o.BoxThickness, fr.BoxThickness)
	setInt(&o.HaloWidth, fr.HaloWidth)
	setInt(&o.TasksPerGPU, fr.TasksPerGPU)
	if fr.GPU != nil {
		gpu, err := parseGPU(*fr.GPU)
		if err != nil {
			return o, err
		}
		o.GPU = gpu
	}
	if fr.Verify != nil {
		o.Verify = *fr.Verify
	}
	return o, nil
}

// SessionsEnabled reports whether this node runs a session manager.
func (s *Server) SessionsEnabled() bool { return s.sessions != nil }

// sessionsDisabled answers every session route on a node without a store.
func (s *Server) sessionsDisabled(w http.ResponseWriter) bool {
	if s.sessions != nil {
		return false
	}
	writeJSON(w, http.StatusServiceUnavailable,
		errorDoc{Error: "sessions disabled (start the node with a session directory)"})
	return true
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	var req SessionRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.DrainTimeout.Seconds()+0.5)))
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: ErrDraining.Error()})
		return
	}
	if err := req.Validate(s.cfg.Limits); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	sc, err := req.scenario()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	var sess *session.Session
	if len(req.Checkpoint) > 0 {
		sess, err = s.sessions.CreateSeeded(sc, req.Checkpoint)
	} else {
		sess, err = s.sessions.Create(sc)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, sess.View())
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	views := s.sessions.List()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	writeJSON(w, http.StatusOK, sess.View())
}

func (s *Server) handleSessionPause(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	if err := s.sessions.Pause(id); err != nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, sess.View())
}

func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: ErrDraining.Error()})
		return
	}
	if err := s.sessions.Resume(id); err != nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, sess.View())
}

func (s *Server) handleSessionFork(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	id := r.PathValue("id")
	parent, ok := s.sessions.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: ErrDraining.Error()})
		return
	}
	var fr ForkRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	opts, err := fr.options(parent.Scenario().Options)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	atStep := int64(-1)
	if fr.AtStep != nil {
		atStep = *fr.AtStep
	}
	child, err := s.sessions.Fork(id, atStep, opts, fr.TotalSteps)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, child.View())
}

// handleSessionCheckpoint serves a session's newest durable checkpoint as
// raw bytes (?step= selects an older retained one) — the replication
// surface a cluster gateway pulls so a session survives its owner's death.
func (s *Server) handleSessionCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.sessionsDisabled(w) {
		return
	}
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown session"})
		return
	}
	fp := sess.Fingerprint()
	var step int64
	if q := r.URL.Query().Get("step"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad step: " + err.Error()})
			return
		}
		step = n
	} else {
		latest, ok := s.sessStore.Latest(fp)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorDoc{Error: "session has no durable checkpoint yet"})
			return
		}
		step = latest
	}
	data, err := s.sessStore.CheckpointBytes(fp, step)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "checkpoint not retained: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(SessionStepHeader, strconv.FormatInt(step, 10))
	w.Header().Set(SessionFPHeader, fp)
	_, _ = w.Write(data)
}

// Checkpoint response headers: the step the served checkpoint stands at
// and the session fingerprint its file is addressed by.
const (
	SessionStepHeader = "X-Advect-Session-Step"
	SessionFPHeader   = "X-Advect-Session-Fp"
)

// publishSession fans one session lifecycle event out to the live SSE
// stream and the flight ring, and feeds recoveries to the anomaly engine's
// resume-loop rule.
func (s *Server) publishSession(ev session.Event) {
	now := time.Now()
	s.flight.Job(now, ev.Session.ID, ev.Session.TraceID, ev.Type)
	if ev.Type == session.EventRecovered || ev.Type == session.EventResumed {
		s.engine.ObserveResume(now, ev.Session.ID, ev.Session.DoneSteps)
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.hub.Publish(telemetry.Event{Name: "session", Data: data})
}

// runKind is the session manager's runner: the same registry path as a
// one-shot simulate job, minus the recorder (segments run untraced).
func runKind(ctx context.Context, kind core.Kind, p core.Problem, o core.Options) (*core.Result, error) {
	r, err := core.New(kind)
	if err != nil {
		return nil, err
	}
	o.Ctx = ctx
	return r.Run(p, o)
}

// warmFields is the fixed numeric-parameter order the sweep detector
// watches; warmBase is the request's non-numeric identity. Together they
// make "the same request except one stepping number" land on one track.
func warmVector(sr *SimulateRequest) (string, []float64) {
	base := "sim|" + sr.Kind + "|" + sr.GPU
	if sr.Verify {
		base += "|v"
	}
	if sr.Trace {
		base += "|t"
	}
	return base, []float64{
		float64(sr.N), float64(sr.Steps), sr.Nu,
		float64(sr.Tasks), float64(sr.Threads),
		float64(sr.BlockX), float64(sr.BlockY),
		float64(sr.BoxThickness), float64(sr.HaloWidth),
		float64(sr.TasksPerGPU),
	}
}

// applyWarmField writes a predicted value back into its request field,
// reporting false for predictions that cannot name a real request (a
// fractional or negative value in an integer field).
func applyWarmField(sr *SimulateRequest, field int, v float64) bool {
	if field != 2 { // every field but Nu is an integer
		if v != math.Trunc(v) || v < 0 || v > math.MaxInt32 {
			return false
		}
	}
	switch field {
	case 0:
		sr.N = int(v)
	case 1:
		sr.Steps = int(v)
	case 2:
		if v < 0 {
			return false
		}
		sr.Nu = v
	case 3:
		sr.Tasks = int(v)
	case 4:
		sr.Threads = int(v)
	case 5:
		sr.BlockX = int(v)
	case 6:
		sr.BlockY = int(v)
	case 7:
		sr.BoxThickness = int(v)
	case 8:
		sr.HaloWidth = int(v)
	case 9:
		sr.TasksPerGPU = int(v)
	default:
		return false
	}
	return true
}

// warmFromSubmit feeds one interactive simulate submission to the sweep
// detector and pre-executes whatever it predicts at background priority.
// Called after the submission has been admitted (never for background
// jobs, so warming cannot feed back into itself).
func (s *Server) warmFromSubmit(req Request) {
	if s.warmer == nil || req.Type != TypeSimulate || req.Simulate == nil {
		return
	}
	base, fields := warmVector(req.Simulate)
	for _, p := range s.warmer.Observe(base, fields) {
		next := *req.Simulate
		if !applyWarmField(&next, p.Field, p.Value) {
			s.warmer.NoteShed()
			continue
		}
		s.SubmitBackground(Request{Type: TypeSimulate, Simulate: &next})
	}
}

// SubmitBackground admits a speculative pre-execution on the queue's
// background lane. It is deliberately eager to give up — validation
// failure, draining, already cached, already in flight, foreground
// traffic waiting, or a full lane all shed the prediction (counted by the
// warmer) — because speculation must never displace interactive work.
func (s *Server) SubmitBackground(req Request) (*Job, bool) {
	if err := req.Validate(s.cfg.Limits); err != nil {
		s.warmer.NoteShed()
		return nil, false
	}
	if s.draining.Load() {
		s.warmer.NoteShed()
		return nil, false
	}
	key := req.CacheKey()
	if _, hit := s.cache.Peek(key); hit {
		s.warmer.NoteShed()
		return nil, false
	}
	if !s.claimWarm(key) {
		s.warmer.NoteShed()
		return nil, false
	}
	now := time.Now()
	j := newJob(s.store.NewID(), req, s.baseCtx, now)
	j.background = true
	if !s.queue.TryPushBackground(j) {
		s.releaseWarm(key)
		s.warmer.NoteShed()
		return nil, false
	}
	s.store.Add(j)
	s.metrics.CountJob(req.Type, outcomeSubmitted)
	s.log.Info("job submitted", jobArgs(j, "background", true)...)
	s.publishJob(j)
	return j, true
}

// claimWarm marks a cache key as having a background pre-execution in
// flight; a second prediction of the same point is shed instead of queued
// twice.
func (s *Server) claimWarm(key string) bool {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warmInflight == nil {
		s.warmInflight = make(map[string]struct{})
	}
	if _, ok := s.warmInflight[key]; ok {
		return false
	}
	s.warmInflight[key] = struct{}{}
	return true
}

func (s *Server) releaseWarm(key string) {
	s.warmMu.Lock()
	delete(s.warmInflight, key)
	s.warmMu.Unlock()
}
