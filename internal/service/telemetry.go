package service

import (
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// Telemetry aggregates the service's rolling time-series: queue behavior,
// per-type execution latency, overlap efficiency of traced runs, and grid
// throughput, all over the last Config.StatsWindow seconds. It backs
// GET /v1/stats and the SSE stream; unlike Metrics (cumulative counters for
// Prometheus scraping), everything here ages out as the window rolls.
type Telemetry struct {
	window time.Duration

	depth     *telemetry.Window            // queue depth sampled at submit/claim
	queueWait *telemetry.Window            // seconds from submit to worker claim
	exec      map[string]*telemetry.Window // per-type execution seconds
	frac      *telemetry.Window            // per-job hidden-communication fraction
	comm      *telemetry.Window            // per-job communication seconds
	hidden    *telemetry.Window            // per-job overlapped seconds
	points    *telemetry.Window            // per-job grid-point updates
}

// NewTelemetry sizes every window to span, split into 60 buckets (so a
// 60-second window rolls in one-second steps).
func NewTelemetry(span time.Duration, queueCap int) *Telemetry {
	bucket := span / 60
	dur := telemetry.DurationBounds()
	t := &Telemetry{
		window:    span,
		depth:     telemetry.NewWindow(span, bucket, telemetry.LinearBounds(float64(queueCap), 16)),
		queueWait: telemetry.NewWindow(span, bucket, dur),
		exec:      map[string]*telemetry.Window{},
		frac:      telemetry.NewWindow(span, bucket, telemetry.LinearBounds(1, 20)),
		comm:      telemetry.NewWindow(span, bucket, nil),
		hidden:    telemetry.NewWindow(span, bucket, nil),
		points:    telemetry.NewWindow(span, bucket, nil),
	}
	for _, typ := range Types() {
		t.exec[typ] = telemetry.NewWindow(span, bucket, dur)
	}
	return t
}

// RecordDepth samples the queue depth (called on submit and claim, the two
// moments it changes).
func (t *Telemetry) RecordDepth(now time.Time, depth int) {
	if t == nil {
		return
	}
	t.depth.Observe(now, float64(depth))
}

// RecordQueueWait records the submit→claim latency of one job.
func (t *Telemetry) RecordQueueWait(now time.Time, wait time.Duration) {
	if t == nil {
		return
	}
	t.queueWait.Observe(now, wait.Seconds())
}

// RecordExec records one job's execution latency under its type.
func (t *Telemetry) RecordExec(now time.Time, typ string, d time.Duration) {
	if t == nil {
		return
	}
	t.exec[typ].Observe(now, d.Seconds())
}

// RecordOverlap folds one traced job's overlap report into the window:
// total communication seconds, total hidden seconds, and the job's hidden
// fraction. Sums over the window therefore agree exactly with the per-job
// post-hoc reports they came from.
func (t *Telemetry) RecordOverlap(now time.Time, rep *obs.Report) {
	if t == nil || rep == nil {
		return
	}
	var comm, hidden float64
	for _, p := range rep.Total {
		comm += p.CommSec
		hidden += p.OverlapSec
	}
	t.comm.Observe(now, comm)
	t.hidden.Observe(now, hidden)
	if comm > 0 {
		t.frac.Observe(now, hidden/comm)
	}
}

// RecordPoints records one completed simulate job's grid-point updates
// (n³ × steps), the service-level analog of the paper's per-run GF metric.
func (t *Telemetry) RecordPoints(now time.Time, points float64) {
	if t == nil {
		return
	}
	t.points.Observe(now, points)
}

// OverlapWindow is the rolling view of overlap efficiency across the traced
// jobs that finished inside the window.
type OverlapWindow struct {
	// Jobs is how many traced jobs contributed.
	Jobs uint64 `json:"jobs"`
	// CommSec and HiddenSec are sums over those jobs' reports.
	CommSec   float64 `json:"comm_sec"`
	HiddenSec float64 `json:"hidden_sec"`
	// Fraction is HiddenSec/CommSec — the fleet-level hidden share.
	Fraction float64 `json:"fraction"`
	// PerJob is the distribution of per-job hidden fractions.
	PerJob telemetry.Stats `json:"per_job"`
}

// TelemetryStats is the GET /v1/stats document: live gauges plus the
// rolling windows.
type TelemetryStats struct {
	Now time.Time `json:"now"`
	// Node is the cluster node identity (Config.NodeID); empty standalone.
	Node       string                     `json:"node,omitempty"`
	WindowSec  float64                    `json:"window_sec"`
	Queue      QueueGauges                `json:"queue"`
	Workers    WorkerGauges               `json:"workers"`
	QueueDepth telemetry.Stats            `json:"queue_depth"`
	QueueWait  telemetry.Stats            `json:"queue_wait"`
	Exec       map[string]telemetry.Stats `json:"exec"`
	Overlap    OverlapWindow              `json:"overlap"`
	Points     telemetry.Stats            `json:"points"`
	// PointsPerSec is window throughput: grid-point updates per second.
	PointsPerSec float64 `json:"points_per_sec"`
	// Anomalies summarizes the flight anomaly engine (nil when flight is
	// disabled): totals, per-rule counts, and the retained history.
	Anomalies *flight.AnomalyStats `json:"anomalies,omitempty"`
	// Sessions summarizes the resumable-session manager (nil when sessions
	// are disabled): live counts by state plus lifetime segment/resume/fork
	// counters.
	Sessions *session.Stats `json:"sessions,omitempty"`
	// Warmer summarizes the speculative sweep warmer (nil when warming is
	// disabled): predictions made, points pre-executed, sheds, and cache
	// hits served from warmed entries.
	Warmer *session.WarmerStats `json:"warmer,omitempty"`
}

// Stats snapshots every window at now.
func (t *Telemetry) Stats(now time.Time, q QueueGauges, w WorkerGauges) TelemetryStats {
	s := TelemetryStats{
		Now: now, Queue: q, Workers: w,
		Exec: map[string]telemetry.Stats{},
	}
	if t == nil {
		return s
	}
	s.WindowSec = t.window.Seconds()
	s.QueueDepth = t.depth.Stats(now)
	s.QueueWait = t.queueWait.Stats(now)
	for typ, w := range t.exec {
		s.Exec[typ] = w.Stats(now)
	}
	commStats := t.comm.Stats(now)
	hiddenStats := t.hidden.Stats(now)
	s.Overlap = OverlapWindow{
		Jobs:      commStats.Count,
		CommSec:   commStats.Sum,
		HiddenSec: hiddenStats.Sum,
		PerJob:    t.frac.Stats(now),
	}
	if s.Overlap.CommSec > 0 {
		s.Overlap.Fraction = s.Overlap.HiddenSec / s.Overlap.CommSec
	}
	s.Points = t.points.Stats(now)
	s.PointsPerSec = s.Points.SumPerSec
	return s
}
