package service

import (
	"sync"
	"sync/atomic"
)

// Pool is the execution stage: a fixed set of workers pulling jobs off the
// queue. Bounding the workers bounds the concurrent simulations (each of
// which may itself spawn an MPI world of goroutines), the same way the
// paper's implementations bound tasks × threads to the machine.
type Pool struct {
	workers int
	busy    atomic.Int64
	wg      sync.WaitGroup
}

// NewPool starts n workers executing jobs from q with exec. The pool stops
// when the queue closes and drains; Wait blocks until then.
func NewPool(n int, q *Queue, exec func(*Job)) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				// Pop prefers the foreground lane, so speculative
				// background work only reaches a worker that would
				// otherwise idle.
				j, ok := q.Pop()
				if !ok {
					return
				}
				p.busy.Add(1)
				exec(j)
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// Busy returns the number of workers currently executing a job.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Wait blocks until every worker has exited (queue closed and drained).
func (p *Pool) Wait() { p.wg.Wait() }
