package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error string `json:"error"`
}

// routes builds the HTTP API.
//
//	POST   /v1/jobs             submit a job (202 queued; 200 on a cache hit)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result document (202 while pending)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/kinds            implementation catalogue
//	GET    /v1/experiments      experiment catalogue
//	GET    /metrics             Prometheus text (JSON with ?format=json)
//	GET    /healthz             liveness
//	GET    /debug/pprof/        Go profiling endpoints (Config.EnablePprof)
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
		status := http.StatusAccepted
		if j.State() == StateDone { // served from the result cache
			status = http.StatusOK
		}
		writeJSON(w, status, j.View())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds()+0.5)))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
	default:
		var re *RequestError
		if errors.As(err, &re) {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.List()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if doc, ok := j.Result(); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(doc)
		return
	}
	v := j.View()
	switch v.State {
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: v.Error})
	case StateCancelled:
		writeJSON(w, http.StatusGone, errorDoc{Error: "job cancelled"})
	default: // queued or running: poll again
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if !j.Cancel(time.Now()) {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "job already finished"})
		return
	}
	s.log.Info("job cancelled", "job", j.ID(), "type", j.View().Type)
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	type kindDoc struct {
		ID       string `json:"id"`
		Section  string `json:"section"`
		Describe string `json:"describe"`
	}
	var kinds []kindDoc
	for _, k := range append(core.Kinds(), core.WideHaloExt) {
		kinds = append(kinds, kindDoc{ID: k.String(), Section: k.Section(), Describe: k.Describe()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"kinds": kinds})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expDoc struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		PaperRef string `json:"paper_ref"`
	}
	var exps []expDoc
	for _, e := range append(harness.All(), harness.Extensions()...) {
		exps = append(exps, expDoc{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": exps})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.MetricsSnapshot()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(snap.Prometheus()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status})
}
