package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
)

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error string `json:"error"`
}

// routes builds the HTTP API.
//
//	POST   /v1/jobs             submit a job (202 queued; 200 on a cache hit)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result document (202 while pending)
//	GET    /v1/jobs/{id}/trace  stitched Chrome trace of a traced job
//	GET    /v1/jobs/{id}/spans  raw span log as a trace context (cluster harvest)
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/sessions         start a resumable checkpointed session (202)
//	GET    /v1/sessions         list sessions
//	GET    /v1/sessions/{id}    session status (done/total steps, checkpoint, hash)
//	POST   /v1/sessions/{id}/pause   pause (rolls back to the last durable checkpoint)
//	POST   /v1/sessions/{id}/resume  resume a paused session
//	POST   /v1/sessions/{id}/fork    branch from a retained checkpoint with mutated options
//	GET    /v1/sessions/{id}/checkpoint  raw newest checkpoint bytes (cluster replication)
//	GET    /v1/stats            rolling-window telemetry (last N seconds)
//	GET    /v1/stream           live SSE stream of job events and stats
//	GET    /v1/kinds            implementation catalogue
//	GET    /v1/experiments      experiment catalogue
//	GET    /v1/cache/{key}      peek the result cache (cluster affinity probe)
//	PUT    /v1/cache/{key}      seed the result cache (cluster replication)
//	POST   /v1/drain            begin a graceful drain (cluster rebalance)
//	GET    /v1/debug/bundle     postmortem bundle (flight ring, anomalies, profiles)
//	GET    /metrics             Prometheus text (JSON with ?format=json)
//	GET    /healthz             liveness (503 while draining)
//	GET    /debug/pprof/        Go profiling endpoints (Config.EnablePprof)
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleSpans)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	mux.HandleFunc("POST /v1/sessions/{id}/pause", s.handleSessionPause)
	mux.HandleFunc("POST /v1/sessions/{id}/resume", s.handleSessionResume)
	mux.HandleFunc("POST /v1/sessions/{id}/fork", s.handleSessionFork)
	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", s.handleSessionCheckpoint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/debug/bundle", s.handleBundle)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	// A malformed trace context never fails the submission — tracing is
	// best-effort observability, so the job proceeds untraced-from-upstream.
	tc, terr := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
	if terr != nil {
		s.log.Warn("ignoring malformed trace context", "error", terr)
	}
	j, err := s.SubmitTraced(req, tc)
	switch {
	case err == nil:
		status := http.StatusAccepted
		if j.State() == StateDone { // served from the result cache
			status = http.StatusOK
		}
		writeJSON(w, status, j.View())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds()+0.5)))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		// Retry-After on the drain 503 mirrors the 429 contract: a gateway
		// reads it to decide between failing over to another shard (always,
		// for a drain) and how long a standalone client should back off —
		// roughly the time the drain needs to finish and a restart to land.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.DrainTimeout.Seconds()+0.5)))
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
	default:
		var re *RequestError
		if errors.As(err, &re) {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.List()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if doc, ok := j.Result(); ok {
		// ?embed_trace=1 restores the legacy inline form for clients that
		// predate GET /v1/jobs/{id}/trace.
		if r.URL.Query().Get("embed_trace") == "1" && j.Trace() != nil {
			doc = embedTrace(doc, j.Trace())
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(doc)
		return
	}
	v := j.View()
	switch v.State {
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: v.Error})
	case StateCancelled:
		writeJSON(w, http.StatusGone, errorDoc{Error: "job cancelled"})
	default: // queued or running: poll again
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	if !j.Cancel(time.Now()) {
		writeJSON(w, http.StatusConflict, errorDoc{Error: "job already finished"})
		return
	}
	s.log.Info("job cancelled", jobArgs(j)...)
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	type kindDoc struct {
		ID       string `json:"id"`
		Section  string `json:"section"`
		Describe string `json:"describe"`
	}
	var kinds []kindDoc
	for _, k := range append(core.Kinds(), core.WideHaloExt) {
		kinds = append(kinds, kindDoc{ID: k.String(), Section: k.Section(), Describe: k.Describe()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"kinds": kinds})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expDoc struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		PaperRef string `json:"paper_ref"`
	}
	var exps []expDoc
	for _, e := range append(harness.All(), harness.Extensions()...) {
		exps = append(exps, expDoc{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": exps})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.MetricsSnapshot()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(snap.Prometheus()))
}

// handleHealthz is drain-aware: once Shutdown begins it answers 503 so load
// balancers stop routing to an instance that will refuse new jobs anyway.
// Inside a cluster the body also names the node, letting a gateway verify
// it is talking to the member it thinks it is.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{"status": "ok"}
	if s.cfg.NodeID != "" {
		doc["node"] = s.cfg.NodeID
	}
	if s.Draining() {
		doc["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleCachePeek serves the raw cached result document for a cache key, or
// 404. It reads without promoting the entry or counting a hit/miss, so a
// cluster gateway probing sibling shards for a result (cache affinity after
// a membership change) never distorts this node's own cache statistics.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	doc, ok := s.cache.Peek(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "cache miss"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(doc)
}

// maxCacheSeedBytes bounds a PUT /v1/cache body; result documents are tens
// of kilobytes, so 8 MiB is generous without letting a peer exhaust memory.
const maxCacheSeedBytes = 8 << 20

// handleCachePut seeds the result cache under the given key — the
// replication half of cross-node cache peeking: when a gateway finds a
// result on a sibling shard it copies the document to the key's new owner,
// so the very next identical submit hits locally.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCacheSeedBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxCacheSeedBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorDoc{Error: "cache document too large"})
		return
	}
	if !json.Valid(body) {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "cache document is not valid JSON"})
		return
	}
	s.cache.Put(r.PathValue("key"), json.RawMessage(body))
	w.WriteHeader(http.StatusNoContent)
}

// handleDrain begins a graceful drain without waiting for it: admission
// stops (and /healthz flips to 503 draining) immediately, while queued and
// running jobs keep executing and stay pollable on this node until they
// finish. A cluster gateway uses this to rebalance a shard away — in-flight
// work lands normally, new traffic reroutes — before the process exits.
// Idempotent: repeated drains report the current state.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	already := s.Draining()
	if !already {
		// The drain deliberately outlives this request: it is the process
		// shutdown path and ends when the worker pool does, so it cannot be
		// tied to the request context. A failed drain names the jobs the
		// deadline cancelled; losing that to a blank identifier would leave
		// no record of which work was cut short.
		go func() { //advect:nolint goroutinelife drain outlives the request by design and ends when the pool empties; its error is logged below
			if err := s.Shutdown(); err != nil {
				s.log.Error("drain failed", "err", err)
			}
		}()
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status": "draining", "already_draining": already,
	})
}

// handleTrace serves a traced job's stitched Chrome trace-event JSON: the
// service-level request lifecycle (RankService) and the runner's per-rank
// phases, on one timeline anchored at the submit instant. Loadable in
// ui.perfetto.dev. The trace reflects spans recorded so far, so a running
// job yields a partial (but valid) trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	rec := j.Trace()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{
			Error: "job has no trace (submit with simulate.trace=true; cache hits carry no trace)",
		})
		return
	}
	spans := rec.Spans()
	// Inside a cluster, attribute this node's own spans so the export
	// keeps them apart from imported gateway spans and any spans harvested
	// from a prior owner. Gateway spans stay node-less: there is one
	// gateway timeline regardless of which node serves the trace.
	if s.cfg.NodeID != "" {
		for i := range spans {
			if spans[i].Node == "" && spans[i].Rank != obs.RankGateway {
				spans[i].Node = s.cfg.NodeID
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteChromeTrace(w, spans)
}

// handleSpans serves a traced job's raw span log as a wire trace context
// (sender epoch + spans). This is the cluster harvest surface: when a node
// dies mid-job, the gateway pulls whatever the old owner recorded — if it
// is still answering — and folds it into the resubmission's context, so
// the final trace shows both the lost attempt and the rerun.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	rec := j.Trace()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "job has no trace"})
		return
	}
	writeJSON(w, http.StatusOK, rec.TraceContext(j.TraceID()))
}

// handleStats serves the rolling-window telemetry document.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// embedTrace injects the chrome_trace blob into an already-rendered result
// document, reproducing the pre-trace_url result shape.
func embedTrace(doc json.RawMessage, rec *obs.Recorder) json.RawMessage {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(doc, &m); err != nil {
		return doc
	}
	var trace bytes.Buffer
	if err := rec.WriteChromeTrace(&trace); err != nil {
		return doc
	}
	m["chrome_trace"] = json.RawMessage(bytes.TrimSpace(trace.Bytes()))
	out, err := json.Marshal(m)
	if err != nil {
		return doc
	}
	return out
}
