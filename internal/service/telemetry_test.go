package service

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"
)

// tracedBody is a hybrid run whose recorder produces both MPI/compute and
// PCIe/kernel overlap, exercising every telemetry feed at once.
const tracedBody = `{"type":"simulate","simulate":{"kind":"hybrid-overlap","n":16,"steps":3,"tasks":2,"threads":2,"thickness":2,"trace":true}}`

// TestStitchedTrace is the tentpole acceptance test: a traced job's
// exported Chrome trace contains the service-level request lifecycle
// (queue-wait, worker-exec on the synthetic service process) AND the
// runner's per-rank phase spans, on one shared timeline — the runner's
// wall spans fall inside the service's worker-exec window.
func TestStitchedTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	resp, v := postJob(t, ts, tracedBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %v", resp.Status)
	}
	waitState(t, ts, v.ID, StateDone)

	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %v", rr.Status)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(rr.Body).Decode(&doc); err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}

	svc := map[string]bool{}
	var execStart, execEnd float64
	ranks := map[int]bool{}
	var runnerLo, runnerHi float64 = math.Inf(1), math.Inf(-1)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.PID < 0 {
			svc[ev.Name] = true
			if ev.Name == "svc.exec" {
				execStart, execEnd = ev.TS, ev.TS+ev.Dur
			}
			continue
		}
		ranks[ev.PID] = true
		if ev.Cat == "wall" {
			runnerLo = math.Min(runnerLo, ev.TS)
			runnerHi = math.Max(runnerHi, ev.TS+ev.Dur)
		}
	}
	for _, want := range []string{"svc.receive", "svc.queue", "svc.exec", "svc.encode"} {
		if !svc[want] {
			t.Fatalf("trace lacks service span %q (got %v)", want, svc)
		}
	}
	if !ranks[0] || !ranks[1] {
		t.Fatalf("trace lacks per-rank runner spans (ranks %v)", ranks)
	}
	if execEnd <= execStart {
		t.Fatalf("svc.exec window [%g, %g] empty", execStart, execEnd)
	}
	// Shared timeline: every runner wall span sits inside the worker-exec
	// window (1µs slack for timestamp rounding).
	if runnerLo < execStart-1 || runnerHi > execEnd+1 {
		t.Fatalf("runner spans [%g, %g]µs escape the svc.exec window [%g, %g]µs",
			runnerLo, runnerHi, execStart, execEnd)
	}
}

// TestStatsAgreesWithOverlapReport is the second acceptance criterion: the
// /v1/stats rolling-window overlap totals agree with the post-hoc overlap
// report of the same (single) job within 1%.
func TestStatsAgreesWithOverlapReport(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	_, v := postJob(t, ts, tracedBody)
	waitState(t, ts, v.ID, StateDone)

	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res SimulateResult
	if err := json.NewDecoder(rr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	var wantComm, wantHidden float64
	for _, p := range res.Overlap.Total {
		wantComm += p.CommSec
		wantHidden += p.OverlapSec
	}
	if wantComm <= 0 || wantHidden <= 0 {
		t.Fatalf("report totals implausible: comm %g, hidden %g", wantComm, wantHidden)
	}

	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats TelemetryStats
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Overlap.Jobs != 1 {
		t.Fatalf("window saw %d traced jobs, want 1", stats.Overlap.Jobs)
	}
	if rel := math.Abs(stats.Overlap.CommSec-wantComm) / wantComm; rel > 0.01 {
		t.Fatalf("window comm %g vs report %g (%.2f%% off)", stats.Overlap.CommSec, wantComm, rel*100)
	}
	if rel := math.Abs(stats.Overlap.HiddenSec-wantHidden) / wantHidden; rel > 0.01 {
		t.Fatalf("window hidden %g vs report %g (%.2f%% off)", stats.Overlap.HiddenSec, wantHidden, rel*100)
	}
	if stats.Overlap.Fraction <= 0 || stats.Overlap.Fraction > 1 {
		t.Fatalf("window fraction %g out of (0, 1]", stats.Overlap.Fraction)
	}

	// The rest of the document tracks the same job.
	if stats.Exec[TypeSimulate].Count != 1 {
		t.Fatalf("exec window count = %d, want 1", stats.Exec[TypeSimulate].Count)
	}
	if stats.QueueWait.Count != 1 || stats.QueueWait.P95 < 0 {
		t.Fatalf("queue-wait window %+v implausible", stats.QueueWait)
	}
	wantPoints := 16.0 * 16 * 16 * 3
	if stats.Points.Sum != wantPoints {
		t.Fatalf("points sum %g, want %g", stats.Points.Sum, wantPoints)
	}
	if stats.WindowSec != 60 {
		t.Fatalf("default stats window %g, want 60", stats.WindowSec)
	}
	if stats.Workers.Total < 1 || stats.Queue.Capacity != 4 {
		t.Fatalf("gauges %+v / %+v implausible", stats.Workers, stats.Queue)
	}
}

// TestHealthzDrainTransition covers the load-balancer contract: healthy
// instances answer 200, draining ones 503 with {"status":"draining"}.
func TestHealthzDrainTransition(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2, DrainTimeout: 5 * time.Second})
	check := func(wantCode int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("healthz: want %d, got %v", wantCode, resp.Status)
		}
		var doc struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != wantStatus {
			t.Fatalf("healthz status = %q, want %q", doc.Status, wantStatus)
		}
	}
	check(http.StatusOK, "ok")
	if err := s.Shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	check(http.StatusServiceUnavailable, "draining")
}
