package flight

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/telemetry"
)

// Rule names, as they appear in Anomaly.Rule and AnomalyStats.ByRule.
const (
	RuleLatencySpike = "latency-spike"
	RuleShedBurst    = "shed-burst"
	RuleStraggler    = "straggler"
	RuleModelDrift   = "model-drift"
	RuleResumeLoop   = "resume-loop"
)

// Rules configures the anomaly engine. The zero value is usable: every
// field falls back to the default documented on it.
type Rules struct {
	// Window spans the rolling telemetry the burst rules evaluate
	// (default 60s).
	Window time.Duration
	// MaxAnomalies bounds the retained anomaly history (default 64;
	// oldest evicted first).
	MaxAnomalies int
	// Cooldown suppresses refiring the same rule while one firing is
	// still fresh (default 30s).
	Cooldown time.Duration
	// LatencyFactor fires latency-spike when a job type's windowed p99
	// exceeds factor × its lifetime mean (default 8).
	LatencyFactor float64
	// LatencyMinCount is the minimum samples, both in the window and in
	// the lifetime baseline, before latency-spike can fire (default 8).
	LatencyMinCount int
	// ShedBurst fires shed-burst when at least this many 429/503 sheds
	// land inside the window (default 10).
	ShedBurst int
	// StragglerRatio fires straggler when a job's max/mean rank busy
	// ratio exceeds it (default 2; needs ≥ 2 ranks).
	StragglerRatio float64
	// DriftTolerance fires model-drift when |measured − predicted|
	// hidden-communication fraction exceeds it (default 0.35).
	DriftTolerance float64
	// ModelMachine names the machine model jobs are scored against
	// (default "Yona", the paper's GPU testbed).
	ModelMachine string
	// ModelKinds overrides the implementation kind the model expects for
	// a submitted kind, keyed by the submitted kind's string form. An
	// operator who knows the deployment should be running hybrid overlap
	// can map "bulk" to "hybrid-overlap" and have bulk-synchronous
	// behavior — submitted or regressed — flagged as drift.
	ModelKinds map[string]string
	// ResumeLoop fires resume-loop when one session is recovered or
	// resumed this many times without its step count advancing — a
	// crash-recovery loop that keeps replaying the same segment (default 3).
	ResumeLoop int
}

func (r Rules) withDefaults() Rules {
	if r.Window <= 0 {
		r.Window = time.Minute
	}
	if r.MaxAnomalies <= 0 {
		r.MaxAnomalies = 64
	}
	if r.Cooldown <= 0 {
		r.Cooldown = 30 * time.Second
	}
	if r.LatencyFactor <= 0 {
		r.LatencyFactor = 8
	}
	if r.LatencyMinCount <= 0 {
		r.LatencyMinCount = 8
	}
	if r.ShedBurst <= 0 {
		r.ShedBurst = 10
	}
	if r.StragglerRatio <= 0 {
		r.StragglerRatio = 2
	}
	if r.DriftTolerance <= 0 {
		r.DriftTolerance = 0.35
	}
	if r.ModelMachine == "" {
		r.ModelMachine = "Yona"
	}
	if r.ResumeLoop <= 0 {
		r.ResumeLoop = 3
	}
	return r
}

// Anomaly is one rule firing.
type Anomaly struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Rule    string    `json:"rule"`
	Message string    `json:"message"`
	JobID   string    `json:"job_id,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`
	Kind    string    `json:"kind,omitempty"`
	// Value is the measured quantity that tripped the rule, Bound the
	// threshold it crossed, Expected the model-side prediction (drift
	// only).
	Value    float64 `json:"value"`
	Bound    float64 `json:"bound"`
	Expected float64 `json:"expected,omitempty"`
}

// AnomalyStats summarizes an engine for /v1/stats and federated merging.
type AnomalyStats struct {
	Total  uint64         `json:"total"`
	ByRule map[string]int `json:"by_rule,omitempty"`
	// Frozen counts flight snapshots frozen by firings.
	Frozen int `json:"frozen"`
	// Recent is the retained anomaly history, oldest first, bounded by
	// Rules.MaxAnomalies.
	Recent []Anomaly `json:"recent,omitempty"`
}

// JobSample is one finished job as the engine sees it.
type JobSample struct {
	JobID   string
	TraceID string
	// Type is the request type ("simulate", "predict", ...), Kind the
	// implementation kind string for simulate jobs.
	Type    string
	Kind    string
	N       int
	Tasks   int
	Threads int
	Elapsed time.Duration
	// Report is the traced run's overlap report; nil when untraced.
	Report *obs.Report
}

// Engine evaluates jobs and rolling telemetry against the configured
// rules. A nil *Engine is a valid disabled engine. Firings freeze a
// flight-recorder snapshot and invoke the notify callback (outside the
// engine lock).
type Engine struct {
	rules Rules
	rec   *Recorder
	model *machine.Machine

	mu       sync.Mutex
	latency  map[string]*telemetry.Window // per job type, seconds
	baseline map[string]*meanAcc          // per job type lifetime mean
	sheds    *telemetry.Window
	resumes  map[string]resumeTrack // per session id
	lastFire map[string]time.Time
	anoms    []Anomaly
	total    uint64
	byRule   map[string]int
	frozen   int
	notify   func(Anomaly, Snapshot)
}

// meanAcc is a cumulative mean over a job type's whole lifetime — the
// baseline the windowed p99 is compared against.
type meanAcc struct {
	count uint64
	sum   float64
}

// resumeTrack follows one session's recoveries: how many landed while its
// step count stood still at steps.
type resumeTrack struct {
	steps int64
	count int
}

// maxResumeTracks bounds the per-session resume state; when full, the map
// resets (a node hosts far fewer live sessions than this).
const maxResumeTracks = 1024

// NewEngine builds an engine over the given rules, freezing snapshots of
// rec (which may be nil) on every firing.
func NewEngine(rules Rules, rec *Recorder) *Engine {
	r := rules.withDefaults()
	e := &Engine{
		rules:    r,
		rec:      rec,
		latency:  make(map[string]*telemetry.Window),
		baseline: make(map[string]*meanAcc),
		resumes:  make(map[string]resumeTrack),
		sheds:    telemetry.NewWindow(r.Window, r.Window/15, nil),
		lastFire: make(map[string]time.Time),
		byRule:   make(map[string]int),
	}
	if m, err := machine.ByName(r.ModelMachine); err == nil {
		e.model = m
	}
	return e
}

// Notify registers fn to run (outside the engine lock) after every
// firing, with the anomaly and the flight snapshot it froze.
func (e *Engine) Notify(fn func(Anomaly, Snapshot)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.notify = fn
	e.mu.Unlock()
}

// Enabled reports whether the engine is live.
func (e *Engine) Enabled() bool { return e != nil }

// fire appends the anomaly under the cooldown, freezes the flight ring,
// and notifies. Returns false when the rule is still cooling down.
func (e *Engine) fire(a Anomaly) bool {
	e.mu.Lock()
	if last, ok := e.lastFire[a.Rule]; ok && a.Time.Sub(last) < e.rules.Cooldown {
		e.mu.Unlock()
		return false
	}
	e.lastFire[a.Rule] = a.Time
	a.Seq = e.total
	e.total++
	e.byRule[a.Rule]++
	if len(e.anoms) >= e.rules.MaxAnomalies {
		copy(e.anoms, e.anoms[1:])
		e.anoms = e.anoms[:len(e.anoms)-1]
	}
	e.anoms = append(e.anoms, a)
	notify := e.notify
	e.frozen++
	e.mu.Unlock()

	e.rec.Add(Record{
		Time:    a.Time,
		Kind:    KindAnomaly,
		Level:   "WARN",
		Msg:     a.Message,
		JobID:   a.JobID,
		TraceID: a.TraceID,
		Attrs:   "rule=" + a.Rule,
	})
	snap := e.rec.Freeze(a.Time, a.Rule)
	if notify != nil {
		notify(a, snap)
	}
	return true
}

// ObserveJob feeds one finished job: its latency joins the rolling window
// and baseline, and its traced report (if any) is checked for straggler
// imbalance and model-vs-measured overlap drift.
func (e *Engine) ObserveJob(now time.Time, s JobSample) {
	if e == nil {
		return
	}
	sec := s.Elapsed.Seconds()
	e.mu.Lock()
	w := e.latency[s.Type]
	if w == nil {
		w = telemetry.NewWindow(e.rules.Window, e.rules.Window/15, telemetry.DurationBounds())
		e.latency[s.Type] = w
	}
	b := e.baseline[s.Type]
	if b == nil {
		b = &meanAcc{}
		e.baseline[s.Type] = b
	}
	b.count++
	b.sum += sec
	e.mu.Unlock()
	w.Observe(now, sec)

	if s.Report == nil {
		return
	}
	e.checkStraggler(now, s)
	e.checkDrift(now, s)
}

// ObserveShed feeds one shed admission (429 queue-full or 503 draining).
func (e *Engine) ObserveShed(now time.Time) {
	if e == nil {
		return
	}
	e.sheds.Observe(now, 1)
}

// ObserveResume feeds one session recovery or resume with the step count
// it restarts from. Resumes are healthy — a restart, a pause lifted — but
// the same session resuming repeatedly from the same step means every
// attempt dies before its next durable checkpoint: a crash-recovery loop
// burning the node, which fires resume-loop once the count crosses
// Rules.ResumeLoop.
func (e *Engine) ObserveResume(now time.Time, sessionID string, doneSteps int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	t, ok := e.resumes[sessionID]
	if !ok && len(e.resumes) >= maxResumeTracks {
		clear(e.resumes)
	}
	if !ok || t.steps != doneSteps {
		t = resumeTrack{steps: doneSteps}
	}
	t.count++
	e.resumes[sessionID] = t
	bound := e.rules.ResumeLoop
	e.mu.Unlock()
	if t.count < bound {
		return
	}
	e.fire(Anomaly{
		Time: now,
		Rule: RuleResumeLoop,
		Message: fmt.Sprintf("session %s resumed %d times without advancing past step %d",
			sessionID, t.count, doneSteps),
		JobID: sessionID,
		Value: float64(t.count),
		Bound: float64(bound),
	})
}

// checkStraggler fires when one rank's busy time dominates the others.
func (e *Engine) checkStraggler(now time.Time, s JobSample) {
	imb := s.Report.Imbalance
	if imb == nil || len(imb.Ranks) < 2 || imb.Ratio <= e.rules.StragglerRatio {
		return
	}
	e.fire(Anomaly{
		Time: now,
		Rule: RuleStraggler,
		Message: fmt.Sprintf("rank %d busy %.1f× the mean (%0.3fs vs %0.3fs) over %d ranks",
			imb.Straggler, imb.Ratio, imb.MaxSec, imb.MeanSec, len(imb.Ranks)),
		JobID:   s.JobID,
		TraceID: s.TraceID,
		Kind:    s.Kind,
		Value:   imb.Ratio,
		Bound:   e.rules.StragglerRatio,
	})
}

// checkDrift compares the job's measured hidden-communication fraction
// (the mpi/compute pair of its overlap report) against the perf model's
// prediction for the kind the deployment expects, firing when the gap
// exceeds the tolerance band.
func (e *Engine) checkDrift(now time.Time, s JobSample) {
	if e.model == nil || s.Kind == "" {
		return
	}
	measured, ok := measuredHidden(s.Report)
	if !ok {
		return
	}
	kindStr := s.Kind
	if want, mapped := e.rules.ModelKinds[kindStr]; mapped {
		kindStr = want
	}
	kind, err := core.ParseKind(kindStr)
	if err != nil {
		return
	}
	tasks := s.Tasks
	if tasks < 1 {
		tasks = 1
	}
	threads := s.Threads
	if threads < 1 {
		threads = 1
	}
	expected, err := perf.ExpectedHiddenFraction(perf.Config{
		M:       e.model,
		Kind:    kind,
		Cores:   tasks * threads,
		Threads: threads,
		N:       grid.Uniform(s.N),
	})
	if err != nil {
		return
	}
	gap := measured - expected
	if gap < 0 {
		gap = -gap
	}
	if gap <= e.rules.DriftTolerance {
		return
	}
	e.fire(Anomaly{
		Time: now,
		Rule: RuleModelDrift,
		Message: fmt.Sprintf("measured hidden-comm fraction %.2f vs model %.2f for %s on %s (|drift| %.2f > %.2f)",
			measured, expected, kindStr, e.rules.ModelMachine, gap, e.rules.DriftTolerance),
		JobID:    s.JobID,
		TraceID:  s.TraceID,
		Kind:     s.Kind,
		Value:    measured,
		Bound:    e.rules.DriftTolerance,
		Expected: expected,
	})
}

// measuredHidden extracts the mpi/compute overlap fraction from a report.
func measuredHidden(rep *obs.Report) (float64, bool) {
	for _, p := range rep.Total {
		if p.Name == obs.PairMPICompute && p.CommSec > 0 {
			return p.Fraction, true
		}
	}
	return 0, false
}

// Sweep evaluates the windowed rules (latency-spike, shed-burst) at now.
// The service calls it periodically from its sweep loop.
func (e *Engine) Sweep(now time.Time) {
	if e == nil {
		return
	}
	type spike struct {
		typ            string
		p99, mean, cap float64
	}
	var spikes []spike
	e.mu.Lock()
	for typ, w := range e.latency {
		b := e.baseline[typ]
		if b == nil || b.count < uint64(e.rules.LatencyMinCount) {
			continue
		}
		st := w.Stats(now)
		if st.Count < uint64(e.rules.LatencyMinCount) {
			continue
		}
		mean := b.sum / float64(b.count)
		if cap := mean * e.rules.LatencyFactor; st.P99 > cap {
			spikes = append(spikes, spike{typ: typ, p99: st.P99, mean: mean, cap: cap})
		}
	}
	e.mu.Unlock()
	for _, sp := range spikes {
		e.fire(Anomaly{
			Time: now,
			Rule: RuleLatencySpike,
			Message: fmt.Sprintf("%s p99 %.3fs exceeds %.0f× lifetime mean %.4fs",
				sp.typ, sp.p99, e.rules.LatencyFactor, sp.mean),
			Kind:  sp.typ,
			Value: sp.p99,
			Bound: sp.cap,
		})
	}
	if shed := e.sheds.Stats(now); shed.Count >= uint64(e.rules.ShedBurst) {
		e.fire(Anomaly{
			Time: now,
			Rule: RuleShedBurst,
			Message: fmt.Sprintf("%d admissions shed in the last %s",
				shed.Count, e.rules.Window),
			Value: float64(shed.Count),
			Bound: float64(e.rules.ShedBurst),
		})
	}
}

// Anomalies returns the engine's summary: totals, per-rule counts, and
// the retained history oldest first.
func (e *Engine) Anomalies() AnomalyStats {
	if e == nil {
		return AnomalyStats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := AnomalyStats{Total: e.total, Frozen: e.frozen}
	if len(e.byRule) > 0 {
		st.ByRule = make(map[string]int, len(e.byRule))
		for k, v := range e.byRule {
			st.ByRule[k] = v
		}
	}
	st.Recent = make([]Anomaly, len(e.anoms))
	copy(st.Recent, e.anoms)
	return st
}
