package flight

import (
	"context"
	"log/slog"
	"strconv"
	"strings"
	"time"
)

// teeHandler forwards records to the wrapped handler unchanged while also
// writing a compact copy of every Info-and-above record into the flight
// recorder, so the ring retains recent log history even when the node's
// visible log level is higher.
type teeHandler struct {
	rec   *Recorder
	inner slog.Handler
	// attrs/groups accumulated by WithAttrs/WithGroup, pre-rendered so
	// Handle only concatenates.
	attrs string
	group string
	// jobID/traceID are lifted out of accumulated attrs so teed records
	// stay correlated with traces.
	jobID   string
	traceID string
}

// TeeHandler wraps inner so every record at slog.LevelInfo or above is
// also retained in rec. A nil recorder returns inner unchanged.
func TeeHandler(rec *Recorder, inner slog.Handler) slog.Handler {
	if rec == nil {
		return inner
	}
	return &teeHandler{rec: rec, inner: inner}
}

func (h *teeHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	// The recorder always wants Info and above, regardless of the inner
	// handler's visible level.
	return lvl >= slog.LevelInfo || h.inner.Enabled(ctx, lvl)
}

func (h *teeHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelInfo {
		fr := Record{
			Time:    r.Time,
			Kind:    KindLog,
			Level:   r.Level.String(),
			Msg:     r.Message,
			JobID:   h.jobID,
			TraceID: h.traceID,
		}
		if fr.Time.IsZero() {
			fr.Time = time.Now()
		}
		var b strings.Builder
		b.WriteString(h.attrs)
		r.Attrs(func(a slog.Attr) bool {
			appendAttr(&b, &fr, h.group, a)
			return true
		})
		fr.Attrs = b.String()
		h.rec.Add(fr)
	}
	if h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.inner = h.inner.WithAttrs(attrs)
	var b strings.Builder
	b.WriteString(h.attrs)
	fr := Record{JobID: h.jobID, TraceID: h.traceID}
	for _, a := range attrs {
		appendAttr(&b, &fr, h.group, a)
	}
	nh.attrs = b.String()
	nh.jobID = fr.JobID
	nh.traceID = fr.TraceID
	return &nh
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	nh := *h
	nh.inner = h.inner.WithGroup(name)
	if name != "" {
		if nh.group != "" {
			nh.group += "."
		}
		nh.group += name
	}
	return &nh
}

// appendAttr renders one attr as "key=value " into b, lifting job/trace
// ids into the record's dedicated fields instead.
func appendAttr(b *strings.Builder, fr *Record, group string, a slog.Attr) {
	a.Value = a.Value.Resolve()
	if a.Equal(slog.Attr{}) {
		return
	}
	key := a.Key
	if group != "" {
		key = group + "." + key
	}
	if a.Value.Kind() == slog.KindGroup {
		for _, ga := range a.Value.Group() {
			appendAttr(b, fr, key, ga)
		}
		return
	}
	val := renderValue(a.Value)
	switch key {
	case "job", "job_id":
		if fr.JobID == "" {
			fr.JobID = val
		}
		return
	case "trace_id":
		if fr.TraceID == "" {
			fr.TraceID = val
		}
		return
	}
	if b.Len() > 0 {
		b.WriteByte(' ')
	}
	b.WriteString(key)
	b.WriteByte('=')
	b.WriteString(val)
}

func renderValue(v slog.Value) string {
	switch v.Kind() {
	case slog.KindString:
		return v.String()
	case slog.KindInt64:
		return strconv.FormatInt(v.Int64(), 10)
	case slog.KindUint64:
		return strconv.FormatUint(v.Uint64(), 10)
	case slog.KindBool:
		return strconv.FormatBool(v.Bool())
	case slog.KindFloat64:
		return strconv.FormatFloat(v.Float64(), 'g', -1, 64)
	case slog.KindDuration:
		return v.Duration().String()
	case slog.KindTime:
		return v.Time().Format(time.RFC3339Nano)
	}
	return v.String()
}
