package flight

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func at(sec int) time.Time {
	return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Add(Record{Time: at(i), Kind: KindJob, Msg: "evt"})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	s := r.Snapshot(at(10))
	if len(s.Records) != 4 {
		t.Fatalf("snapshot holds %d records, want 4", len(s.Records))
	}
	if s.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped)
	}
	for i, rec := range s.Records {
		if want := uint64(6 + i); rec.Seq != want {
			t.Errorf("record %d: Seq = %d, want %d (oldest first)", i, rec.Seq, want)
		}
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder(8)
	r.Add(Record{Msg: "one"})
	r.Add(Record{Msg: "two"})
	s := r.Snapshot(at(0))
	if len(s.Records) != 2 || s.Dropped != 0 {
		t.Fatalf("got %d records, dropped %d; want 2 records, 0 dropped", len(s.Records), s.Dropped)
	}
	if s.Records[0].Msg != "one" || s.Records[1].Msg != "two" {
		t.Errorf("records out of order: %q, %q", s.Records[0].Msg, s.Records[1].Msg)
	}
}

func TestRecorderFreezeBounded(t *testing.T) {
	r := NewRecorder(4)
	r.Add(Record{Msg: "evt"})
	for i := 0; i < DefaultFrozen+3; i++ {
		r.Freeze(at(i), "reason")
	}
	frozen := r.Frozen()
	if len(frozen) != DefaultFrozen {
		t.Fatalf("retained %d frozen snapshots, want %d", len(frozen), DefaultFrozen)
	}
	// Oldest freezes evicted: the first retained one is freeze #3.
	if !frozen[0].Taken.Equal(at(3)) {
		t.Errorf("oldest retained freeze taken at %v, want %v", frozen[0].Taken, at(3))
	}
	if frozen[0].Reason != "reason" {
		t.Errorf("Reason = %q", frozen[0].Reason)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Add(Record{Msg: "x"})
	r.Job(at(0), "j", "t", "msg")
	r.Span(at(0), "j", "t", "msg")
	r.Stats(at(0), "msg")
	if r.Len() != 0 {
		t.Fatal("nil recorder has length")
	}
	if s := r.Snapshot(at(0)); len(s.Records) != 0 {
		t.Fatal("nil recorder snapshot has records")
	}
	if s := r.Freeze(at(0), "why"); s.Reason != "why" {
		t.Fatal("nil recorder freeze lost reason")
	}
	if r.Frozen() != nil {
		t.Fatal("nil recorder has frozen snapshots")
	}
}

// TestFlightDisabledAllocatesNothing is the ci.sh alloc gate: the nil
// recorder and engine paths instrumented call sites always pay must not
// allocate.
func TestFlightDisabledAllocatesNothing(t *testing.T) {
	var r *Recorder
	var e *Engine
	rec := Record{Time: at(0), Kind: KindJob, Msg: "evt", JobID: "j1"}
	sample := JobSample{JobID: "j1", Type: "simulate", Elapsed: time.Second}
	avg := testing.AllocsPerRun(1000, func() {
		r.Add(rec)
		r.Job(at(0), "j1", "t1", "done")
		e.ObserveJob(at(0), sample)
		e.ObserveShed(at(0))
		e.Sweep(at(0))
	})
	if avg != 0 {
		t.Fatalf("disabled flight path allocates %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkFlightDisabled(b *testing.B) {
	var r *Recorder
	var e *Engine
	rec := Record{Time: at(0), Kind: KindJob, Msg: "evt"}
	sample := JobSample{JobID: "j1", Type: "simulate", Elapsed: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(rec)
		e.ObserveJob(at(0), sample)
		e.ObserveShed(at(0))
	}
}

func BenchmarkFlightAdd(b *testing.B) {
	r := NewRecorder(512)
	rec := Record{Time: at(0), Kind: KindJob, Msg: "evt"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(rec)
	}
}

func TestTeeHandlerCapturesAndForwards(t *testing.T) {
	rec := NewRecorder(16)
	var buf bytes.Buffer
	inner := slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})
	log := slog.New(TeeHandler(rec, inner))

	log.Info("job submitted", "job", "n1-42", "trace_id", "abc123", "type", "simulate", "cache_hit", false)

	s := rec.Snapshot(at(0))
	if len(s.Records) != 1 {
		t.Fatalf("recorder holds %d records, want 1", len(s.Records))
	}
	r := s.Records[0]
	if r.Kind != KindLog || r.Msg != "job submitted" || r.Level != "INFO" {
		t.Errorf("record = %+v", r)
	}
	if r.JobID != "n1-42" || r.TraceID != "abc123" {
		t.Errorf("job/trace not lifted: job=%q trace=%q", r.JobID, r.TraceID)
	}
	if !strings.Contains(r.Attrs, "type=simulate") || !strings.Contains(r.Attrs, "cache_hit=false") {
		t.Errorf("Attrs = %q", r.Attrs)
	}
	if strings.Contains(r.Attrs, "trace_id") {
		t.Errorf("trace_id left in Attrs: %q", r.Attrs)
	}
	if !strings.Contains(buf.String(), "job submitted") {
		t.Errorf("inner handler missed the record: %q", buf.String())
	}
}

func TestTeeHandlerWithAttrsAndGroups(t *testing.T) {
	rec := NewRecorder(16)
	inner := slog.NewTextHandler(&bytes.Buffer{}, nil)
	log := slog.New(TeeHandler(rec, inner)).
		With("job", "n2-7", "node", "n2").
		WithGroup("queue")
	log.Warn("queue full", "depth", 64)

	s := rec.Snapshot(at(0))
	if len(s.Records) != 1 {
		t.Fatalf("recorder holds %d records, want 1", len(s.Records))
	}
	r := s.Records[0]
	if r.JobID != "n2-7" {
		t.Errorf("JobID = %q, want from With attrs", r.JobID)
	}
	if !strings.Contains(r.Attrs, "node=n2") || !strings.Contains(r.Attrs, "queue.depth=64") {
		t.Errorf("Attrs = %q", r.Attrs)
	}
	if r.Level != "WARN" {
		t.Errorf("Level = %q", r.Level)
	}
}

func TestTeeHandlerDebugBelowInnerLevel(t *testing.T) {
	rec := NewRecorder(16)
	var buf bytes.Buffer
	inner := slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn})
	log := slog.New(TeeHandler(rec, inner))

	log.Debug("noise") // below both: dropped everywhere
	log.Info("quiet")  // teed but invisible on the inner handler

	if got := rec.Len(); got != 1 {
		t.Fatalf("recorder holds %d records, want only the Info one", got)
	}
	if buf.Len() != 0 {
		t.Errorf("inner handler emitted despite Warn level: %q", buf.String())
	}
}

func TestTeeHandlerNilRecorder(t *testing.T) {
	inner := slog.NewTextHandler(&bytes.Buffer{}, nil)
	if h := TeeHandler(nil, inner); h != inner {
		t.Fatal("nil recorder must return the inner handler unchanged")
	}
}

func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	if e.Enabled() {
		t.Fatal("nil engine reports enabled")
	}
	e.Notify(func(Anomaly, Snapshot) {})
	e.ObserveJob(at(0), JobSample{Type: "simulate", Elapsed: time.Second})
	e.ObserveShed(at(0))
	e.Sweep(at(0))
	if st := e.Anomalies(); st.Total != 0 || st.Recent != nil {
		t.Fatalf("nil engine stats = %+v", st)
	}
}

func driftReport(fraction float64) *obs.Report {
	return &obs.Report{
		Total: []obs.PairOverlap{{
			Name:       obs.PairMPICompute,
			CommSec:    1.0,
			WorkSec:    2.0,
			OverlapSec: fraction,
			Fraction:   fraction,
		}},
	}
}

func TestEngineModelDrift(t *testing.T) {
	rec := NewRecorder(32)
	e := NewEngine(Rules{
		ModelKinds:     map[string]string{"bulk": "hybrid-overlap"},
		DriftTolerance: 0.35,
	}, rec)
	var fired []Anomaly
	e.Notify(func(a Anomaly, s Snapshot) {
		if len(s.Records) == 0 {
			t.Error("firing froze an empty snapshot")
		}
		fired = append(fired, a)
	})

	rec.Job(at(0), "n1-1", "tr-1", "job started")

	// A bulk run measured ~0 hidden where the model expects hybrid
	// overlap to hide ~1.0 of the exchange: decisive drift.
	e.ObserveJob(at(1), JobSample{
		JobID: "n1-1", TraceID: "tr-1", Type: "simulate", Kind: "bulk",
		N: 48, Tasks: 2, Threads: 1, Elapsed: time.Second,
		Report: driftReport(0.0),
	})
	if len(fired) != 1 {
		t.Fatalf("fired %d anomalies, want 1", len(fired))
	}
	a := fired[0]
	if a.Rule != RuleModelDrift {
		t.Errorf("Rule = %q", a.Rule)
	}
	if a.JobID != "n1-1" || a.TraceID != "tr-1" {
		t.Errorf("anomaly ids = %q/%q", a.JobID, a.TraceID)
	}
	if a.Expected < 0.9 {
		t.Errorf("Expected = %g, want near 1 (hybrid-overlap prediction)", a.Expected)
	}
	if frozen := rec.Frozen(); len(frozen) != 1 || frozen[0].Reason != RuleModelDrift {
		t.Errorf("frozen = %+v", frozen)
	}

	// Anomaly history reflects the firing.
	st := e.Anomalies()
	if st.Total != 1 || st.ByRule[RuleModelDrift] != 1 || st.Frozen != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineDriftWithinTolerance(t *testing.T) {
	e := NewEngine(Rules{
		ModelKinds:     map[string]string{"hybrid-overlap": "hybrid-overlap"},
		DriftTolerance: 0.35,
	}, nil)
	fired := 0
	e.Notify(func(Anomaly, Snapshot) { fired++ })
	// Measured 0.9 where the model predicts ~1.0: inside the band.
	e.ObserveJob(at(1), JobSample{
		JobID: "n1-2", Type: "simulate", Kind: "hybrid-overlap",
		N: 48, Tasks: 2, Threads: 1, Elapsed: time.Second,
		Report: driftReport(0.9),
	})
	if fired != 0 {
		t.Fatalf("fired %d anomalies inside the tolerance band", fired)
	}
}

func TestEngineStraggler(t *testing.T) {
	e := NewEngine(Rules{StragglerRatio: 2}, nil)
	var fired []Anomaly
	e.Notify(func(a Anomaly, _ Snapshot) { fired = append(fired, a) })

	rep := &obs.Report{Imbalance: &obs.ImbalanceReport{
		Ranks:     []obs.RankLoad{{Rank: 0, BusySec: 3.0}, {Rank: 1, BusySec: 0.5}},
		MeanSec:   1.75,
		MaxSec:    3.0,
		Ratio:     3.0 / 1.75,
		Straggler: 0,
	}}
	e.ObserveJob(at(1), JobSample{JobID: "n1-3", Type: "simulate", Elapsed: time.Second, Report: rep})
	if len(fired) != 0 {
		t.Fatalf("ratio 1.71 fired below bound 2")
	}

	rep.Imbalance.Ratio = 2.5
	e.ObserveJob(at(2), JobSample{JobID: "n1-4", Type: "simulate", Elapsed: time.Second, Report: rep})
	if len(fired) != 1 || fired[0].Rule != RuleStraggler {
		t.Fatalf("fired = %+v, want one straggler", fired)
	}
}

func TestEngineLatencySpike(t *testing.T) {
	e := NewEngine(Rules{LatencyFactor: 8, LatencyMinCount: 8, Window: time.Minute}, nil)
	var fired []Anomaly
	e.Notify(func(a Anomaly, _ Snapshot) { fired = append(fired, a) })

	// Build a fast baseline deep enough that the slow runs joining the
	// lifetime mean can't drag the threshold up past their own p99.
	for i := 0; i < 500; i++ {
		e.ObserveJob(at(i/100), JobSample{Type: "simulate", Elapsed: time.Millisecond})
	}
	e.Sweep(at(5))
	if len(fired) != 0 {
		t.Fatalf("fired on a healthy baseline")
	}
	for i := 0; i < 10; i++ {
		e.ObserveJob(at(30+i), JobSample{Type: "simulate", Elapsed: 2 * time.Second})
	}
	e.Sweep(at(40))
	if len(fired) != 1 || fired[0].Rule != RuleLatencySpike {
		t.Fatalf("fired = %+v, want one latency-spike", fired)
	}
	if fired[0].Kind != "simulate" {
		t.Errorf("Kind = %q", fired[0].Kind)
	}
}

func TestEngineShedBurstAndCooldown(t *testing.T) {
	e := NewEngine(Rules{ShedBurst: 10, Window: time.Minute, Cooldown: 30 * time.Second}, nil)
	var fired []Anomaly
	e.Notify(func(a Anomaly, _ Snapshot) { fired = append(fired, a) })

	for i := 0; i < 9; i++ {
		e.ObserveShed(at(1))
	}
	e.Sweep(at(2))
	if len(fired) != 0 {
		t.Fatalf("fired below the burst bound")
	}
	e.ObserveShed(at(2))
	e.Sweep(at(3))
	if len(fired) != 1 || fired[0].Rule != RuleShedBurst {
		t.Fatalf("fired = %+v, want one shed-burst", fired)
	}

	// Still inside the cooldown: sweeping again must not refire.
	e.Sweep(at(10))
	if len(fired) != 1 {
		t.Fatalf("refired inside the cooldown: %d", len(fired))
	}
	// Past the cooldown, the still-hot window fires again.
	e.Sweep(at(40))
	if len(fired) != 2 {
		t.Fatalf("did not refire after the cooldown: %d", len(fired))
	}
}

func TestEngineAnomalyHistoryBounded(t *testing.T) {
	e := NewEngine(Rules{MaxAnomalies: 4, Cooldown: time.Millisecond, ShedBurst: 1, Window: time.Minute}, nil)
	for i := 0; i < 10; i++ {
		e.ObserveShed(at(i))
		e.Sweep(at(i))
	}
	st := e.Anomalies()
	if len(st.Recent) != 4 {
		t.Fatalf("retained %d anomalies, want 4", len(st.Recent))
	}
	if st.Total != 10 {
		t.Errorf("Total = %d, want 10", st.Total)
	}
	// Oldest evicted: retained history is the last four firings.
	if st.Recent[0].Seq != 6 || st.Recent[3].Seq != 9 {
		t.Errorf("retained seqs %d..%d, want 6..9", st.Recent[0].Seq, st.Recent[3].Seq)
	}
}

func TestEngineResumeLoop(t *testing.T) {
	e := NewEngine(Rules{ResumeLoop: 3, Cooldown: time.Hour}, nil)
	var fired []Anomaly
	e.Notify(func(a Anomaly, _ Snapshot) { fired = append(fired, a) })

	// Forward progress between resumes never fires, however many there are.
	for i := 0; i < 6; i++ {
		e.ObserveResume(at(i), "sess-ok", int64(100*i))
	}
	if len(fired) != 0 {
		t.Fatalf("advancing session fired %d anomalies", len(fired))
	}

	// Three resumes pinned at the same step is a crash loop.
	e.ObserveResume(at(10), "sess-stuck", 400)
	e.ObserveResume(at(11), "sess-stuck", 400)
	if len(fired) != 0 {
		t.Fatalf("fired below the bound: %d", len(fired))
	}
	e.ObserveResume(at(12), "sess-stuck", 400)
	if len(fired) != 1 || fired[0].Rule != RuleResumeLoop || fired[0].JobID != "sess-stuck" {
		t.Fatalf("fired = %+v, want one resume-loop for sess-stuck", fired)
	}
	if fired[0].Value != 3 || fired[0].Bound != 3 {
		t.Fatalf("value/bound = %v/%v, want 3/3", fired[0].Value, fired[0].Bound)
	}

	// Advancing past the stuck step resets the streak.
	e.ObserveResume(at(13), "sess-stuck", 600)
	e.ObserveResume(at(14), "sess-stuck", 600)
	if len(fired) != 1 {
		t.Fatalf("reset streak refired: %d", len(fired))
	}
}

func TestEngineResumeTrackBound(t *testing.T) {
	e := NewEngine(Rules{ResumeLoop: 3}, nil)
	for i := 0; i < maxResumeTracks+10; i++ {
		e.ObserveResume(at(i), fmt.Sprintf("s-%d", i), 0)
	}
	e.mu.Lock()
	n := len(e.resumes)
	e.mu.Unlock()
	if n > maxResumeTracks {
		t.Fatalf("resume tracker grew to %d entries, bound is %d", n, maxResumeTracks)
	}
}
