// Package flight is the node-local black box: an always-on, bounded
// ring-buffer flight recorder plus the anomaly engine that watches the
// serving layer against the paper's analytic performance model.
//
// The recorder retains the last N events a node saw — job lifecycle
// transitions, span-log summaries of traced runs, periodic stats
// snapshots, and every structured log record (via the tee slog.Handler) —
// so when something goes wrong there is a recent history to read without
// having had verbose logging on. The engine evaluates rolling telemetry
// and per-job measurements against configurable rules (latency spikes,
// shed bursts, straggler ranks, and model-vs-measured overlap drift
// against internal/perf); each firing appends a timestamped anomaly and
// freezes a snapshot of the ring at that instant.
//
// Both types follow the repo's nil-safety convention: a nil *Recorder and
// a nil *Engine are valid disabled instances whose methods no-op, so
// instrumented call sites never branch on an enabled flag. The disabled
// path is allocation-free and gated in ci.sh against BENCH_flight.json.
package flight

import (
	"sync"
	"time"
)

// RecordKind tags what produced a ring entry.
type RecordKind string

const (
	// KindJob is a job lifecycle transition (queued, running, done, ...).
	KindJob RecordKind = "job"
	// KindSpan is a traced job's span-log summary at completion.
	KindSpan RecordKind = "span"
	// KindStats is a periodic stats snapshot line from the sweep loop.
	KindStats RecordKind = "stats"
	// KindLog is a structured log record teed off the node's slog handler.
	KindLog RecordKind = "log"
	// KindAnomaly marks an anomaly-engine firing.
	KindAnomaly RecordKind = "anomaly"
)

// Record is one flight-recorder entry. Seq increases monotonically over
// the recorder's lifetime, so gaps in a snapshot reveal how much history
// the ring had already evicted.
type Record struct {
	Seq     uint64     `json:"seq"`
	Time    time.Time  `json:"time"`
	Kind    RecordKind `json:"kind"`
	Level   string     `json:"level,omitempty"`
	Msg     string     `json:"msg"`
	JobID   string     `json:"job_id,omitempty"`
	TraceID string     `json:"trace_id,omitempty"`
	Attrs   string     `json:"attrs,omitempty"`
}

// Snapshot is the ring's content at one instant, oldest record first.
type Snapshot struct {
	Taken time.Time `json:"taken"`
	// Reason names what froze the snapshot ("" for a live read).
	Reason string `json:"reason,omitempty"`
	// Dropped counts records the ring had already evicted before the
	// oldest one still present.
	Dropped uint64   `json:"dropped"`
	Records []Record `json:"records"`
}

// DefaultEvents sizes the ring when the caller passes 0.
const DefaultEvents = 512

// DefaultFrozen bounds how many frozen snapshots a recorder retains;
// older freezes are evicted first.
const DefaultFrozen = 8

// Recorder is the bounded ring buffer. A nil *Recorder is a valid
// disabled recorder: every method no-ops without allocating.
type Recorder struct {
	mu     sync.Mutex
	ring   []Record
	next   uint64 // total records ever added
	frozen []Snapshot
}

// NewRecorder builds a recorder retaining the last events records
// (DefaultEvents when events <= 0).
func NewRecorder(events int) *Recorder {
	if events <= 0 {
		events = DefaultEvents
	}
	return &Recorder{ring: make([]Record, events)}
}

// Enabled reports whether the recorder is live.
func (r *Recorder) Enabled() bool { return r != nil }

// Add appends one record, overwriting the oldest once the ring is full.
// The caller's Seq is ignored; the recorder assigns it.
//
//advect:hotpath
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.Seq = r.next
	r.ring[int(r.next%uint64(len(r.ring)))] = rec
	r.next++
	r.mu.Unlock()
}

// Job records a job lifecycle transition.
func (r *Recorder) Job(now time.Time, jobID, traceID, msg string) {
	if r == nil {
		return
	}
	r.Add(Record{Time: now, Kind: KindJob, Msg: msg, JobID: jobID, TraceID: traceID})
}

// Span records a traced job's span-log summary.
func (r *Recorder) Span(now time.Time, jobID, traceID, msg string) {
	if r == nil {
		return
	}
	r.Add(Record{Time: now, Kind: KindSpan, Msg: msg, JobID: jobID, TraceID: traceID})
}

// Stats records a periodic stats snapshot line.
func (r *Recorder) Stats(now time.Time, msg string) {
	if r == nil {
		return
	}
	r.Add(Record{Time: now, Kind: KindStats, Msg: msg})
}

// Len returns how many records the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.ring)) {
		return int(r.next)
	}
	return len(r.ring)
}

// snapshotLocked copies the ring oldest-first; callers hold r.mu.
func (r *Recorder) snapshotLocked(now time.Time, reason string) Snapshot {
	s := Snapshot{Taken: now, Reason: reason}
	n := r.next
	size := uint64(len(r.ring))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	s.Dropped = start
	s.Records = make([]Record, 0, n-start)
	for seq := start; seq < n; seq++ {
		s.Records = append(s.Records, r.ring[int(seq%size)])
	}
	return s
}

// Snapshot returns the current ring content, oldest record first.
func (r *Recorder) Snapshot(now time.Time) Snapshot {
	if r == nil {
		return Snapshot{Taken: now}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(now, "")
}

// Freeze captures the ring at this instant and retains the copy (up to
// DefaultFrozen; the oldest freeze is evicted first) for the postmortem
// bundle. It returns the frozen snapshot.
func (r *Recorder) Freeze(now time.Time, reason string) Snapshot {
	if r == nil {
		return Snapshot{Taken: now, Reason: reason}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snapshotLocked(now, reason)
	if len(r.frozen) >= DefaultFrozen {
		copy(r.frozen, r.frozen[1:])
		r.frozen = r.frozen[:len(r.frozen)-1]
	}
	r.frozen = append(r.frozen, s)
	return s
}

// Frozen returns the retained frozen snapshots, oldest first.
func (r *Recorder) Frozen() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, len(r.frozen))
	copy(out, r.frozen)
	return out
}
