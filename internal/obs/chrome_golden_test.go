package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// twoRankHybridSpans is a deterministic span set shaped like a traced
// two-rank hybrid run submitted through advectd: a service track plus two
// ranks with CPU compute, an MPI exchange window, PCIe copies, and kernels.
func twoRankHybridSpans() []Span {
	return []Span{
		// service track (RankService): request lifecycle
		{Rank: RankService, Step: -1, Phase: PhaseHTTPReceive, Start: 0, End: 0.001},
		{Rank: RankService, Step: -1, Phase: PhaseCacheLookup, Start: 0.0002, End: 0.0004},
		{Rank: RankService, Step: -1, Phase: PhaseQueueWait, Start: 0.001, End: 0.003},
		{Rank: RankService, Step: -1, Phase: PhaseWorkerExec, Start: 0.003, End: 0.050},
		{Rank: RankService, Step: -1, Phase: PhaseResultEncode, Start: 0.050, End: 0.051},
		// rank 0: compute overlapping an exchange window, then device work
		{Rank: 0, Step: 0, Phase: PhaseMPIExchange, Start: 0.004, End: 0.010},
		{Rank: 0, Step: 0, Phase: PhaseInterior, Start: 0.005, End: 0.009},
		{Rank: 0, Step: 0, Phase: PhaseBoundary, Start: 0.010, End: 0.012},
		{Rank: 0, Step: -1, Phase: PhaseH2D, Start: 0, End: 0.002},
		{Rank: 0, Step: -1, Phase: PhaseKernel, Start: 0.001, End: 0.006},
		{Rank: 0, Step: -1, Phase: PhaseD2H, Start: 0.006, End: 0.007},
		// rank 1: the straggler — longer interior compute
		{Rank: 1, Step: 0, Phase: PhaseMPIExchange, Start: 0.004, End: 0.010},
		{Rank: 1, Step: 0, Phase: PhaseInterior, Start: 0.005, End: 0.018},
		{Rank: 1, Step: 0, Phase: PhaseBoundary, Start: 0.018, End: 0.020},
		{Rank: 1, Step: -1, Phase: PhaseH2D, Start: 0, End: 0.002},
		{Rank: 1, Step: -1, Phase: PhaseKernel, Start: 0.001, End: 0.008},
		{Rank: 1, Step: -1, Phase: PhaseD2H, Start: 0.008, End: 0.009},
	}
}

// TestChromeTraceGolden locks the exact exported bytes for the two-rank
// hybrid span set. Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs
// after an intentional format change, and eyeball the diff.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, twoRankHybridSpans()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_two_rank.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file %s\n got: %s\nwant: %s",
			golden, buf.Bytes(), want)
	}
}

// TestChromeTraceStructure checks the invariants the golden bytes encode:
// valid JSON, metadata before duration events, correct pid/tid track
// assignment, and the service process name.
func TestChromeTraceStructure(t *testing.T) {
	spans := twoRankHybridSpans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	// All metadata ("M") events precede all duration ("X") events.
	seenX := false
	procNames := map[int]string{}
	nX := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if seenX {
				t.Fatalf("metadata event %q after duration events", ev.Name)
			}
			if ev.Name == "process_name" {
				procNames[ev.PID] = ev.Args["name"].(string)
			}
		case "X":
			seenX = true
			nX++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if nX != len(spans) {
		t.Fatalf("got %d X events, want %d", nX, len(spans))
	}
	if procNames[RankService] != "service" || procNames[0] != "rank 0" || procNames[1] != "rank 1" {
		t.Fatalf("process names = %v", procNames)
	}

	// Every X event's pid is its span's rank and its tid is its phase,
	// so each phase gets a stable track within its rank's process.
	for _, s := range spans {
		found := false
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" && ev.PID == s.Rank && ev.TID == int(s.Phase) &&
				ev.TS == s.Start*1e6 && ev.Name == s.Phase.String() {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no X event with pid=%d tid=%d ts=%g for span %+v",
				s.Rank, int(s.Phase), s.Start*1e6, s)
		}
	}
}
