package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDisabledRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Clock() != 0 {
		t.Fatal("nil recorder clock != 0")
	}
	a := r.Begin(0, 0, PhaseInterior, "x")
	a.End()
	r.Add(0, 0, PhaseH2D, "", 0, 1)
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder kept spans")
	}
	rep := r.Report()
	if rep.Spans != 0 || len(rep.Ranks) != 0 {
		t.Fatalf("nil recorder report not empty: %+v", rep)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil recorder chrome export: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace does not parse: %v", err)
	}
}

// TestDisabledRecorderAllocatesNothing is the allocation contract the ci.sh
// overhead gate enforces: the disabled path must be allocation-free.
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		a := r.Begin(3, 7, PhaseMPIExchange, "x")
		a.End()
		r.Add(0, 0, PhaseKernel, "k", 0, 1)
		_ = r.Clock()
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %v times per op", allocs)
	}
}

func TestBeginEndRecordsOrderedSpans(t *testing.T) {
	r := NewRecorder()
	a := r.Begin(1, 4, PhaseInterior, "whole")
	a.End()
	r.Add(0, -1, PhaseKernel, "interior", 2.0, 3.0)
	r.Add(0, 0, PhaseHaloPack, "", 0.5, 0.6)
	spans := r.Spans()
	if len(spans) != 3 || r.Len() != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Ordered by rank, then phase.
	if spans[0].Rank != 0 || spans[0].Phase != PhaseHaloPack {
		t.Fatalf("bad order: %+v", spans[0])
	}
	if spans[1].Phase != PhaseKernel || spans[1].Step != -1 {
		t.Fatalf("bad order: %+v", spans[1])
	}
	if spans[2].Rank != 1 || spans[2].Phase != PhaseInterior || spans[2].Label != "whole" || spans[2].Step != 4 {
		t.Fatalf("bad span: %+v", spans[2])
	}
	if spans[2].End < spans[2].Start {
		t.Fatalf("negative duration: %+v", spans[2])
	}
	// Inverted windows are dropped rather than corrupting the report.
	r.Add(0, 0, PhaseCopy, "", 5, 4)
	if r.Len() != 3 {
		t.Fatal("inverted span was kept")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := r.Begin(rank, i, PhaseInterior, "")
				a.End()
				_ = r.Len()
			}
			_ = r.Spans()
		}(rank)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("got %d spans, want 800", r.Len())
	}
}

func TestPhaseBases(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		if p.String() == "phase(?)" {
			t.Fatalf("phase %d has no name", p)
		}
	}
	for _, p := range []Phase{PhaseH2D, PhaseD2H, PhaseKernel} {
		if p.Base() != BaseSim {
			t.Fatalf("%v should be sim-based", p)
		}
	}
	for _, p := range []Phase{PhaseInterior, PhaseMPIExchange, PhaseLaunch, PhaseRegion} {
		if p.Base() != BaseWall {
			t.Fatalf("%v should be wall-based", p)
		}
	}
	if BaseWall.String() != "wall" || BaseSim.String() != "sim" {
		t.Fatal("base names changed")
	}
}

// TestReportOverlapMath checks the interval arithmetic against a hand-built
// span set: exchange [0,10] with interior [2,5] and boundary [4,7] inside
// it on rank 0, and a fully serialized rank 1.
func TestReportOverlapMath(t *testing.T) {
	var spans []Span
	add := func(rank int, ph Phase, s, e float64) {
		spans = append(spans, Span{Rank: rank, Step: 0, Phase: ph, Start: s, End: e})
	}
	add(0, PhaseMPIExchange, 0, 10)
	add(0, PhaseInterior, 2, 5)
	add(0, PhaseBoundary, 4, 7) // union with interior: [2,7] -> 5s overlap
	add(0, PhaseH2D, 0, 2)
	add(0, PhaseKernel, 1, 4) // 1s of the h2d copy hidden
	add(1, PhaseMPIExchange, 0, 4)
	add(1, PhaseInterior, 4, 9) // back-to-back, zero overlap

	rep := BuildReport(spans)
	if rep.Spans != 7 || len(rep.Ranks) != 2 {
		t.Fatalf("bad report shape: %+v", rep)
	}

	r0 := rep.Ranks[0]
	if r0.Rank != 0 {
		t.Fatalf("ranks unsorted: %+v", rep.Ranks)
	}
	if got := r0.Busy[PhaseInterior.String()]; got != 3 {
		t.Fatalf("interior busy = %v, want 3", got)
	}
	var mpi0, pcie0 PairOverlap
	for _, p := range r0.Pairs {
		switch p.Name {
		case PairMPICompute:
			mpi0 = p
		case PairPCIeKernel:
			pcie0 = p
		}
	}
	if mpi0.OverlapSec != 5 || mpi0.CommSec != 10 || mpi0.WorkSec != 5 {
		t.Fatalf("rank0 mpi/compute: %+v", mpi0)
	}
	if math.Abs(mpi0.Fraction-0.5) > 1e-12 {
		t.Fatalf("rank0 mpi fraction = %v, want 0.5", mpi0.Fraction)
	}
	if pcie0.OverlapSec != 1 || pcie0.CommSec != 2 || math.Abs(pcie0.Fraction-0.5) > 1e-12 {
		t.Fatalf("rank0 pcie/kernel: %+v", pcie0)
	}

	r1 := rep.Ranks[1]
	for _, p := range r1.Pairs {
		if p.Name == PairMPICompute && p.OverlapSec != 0 {
			t.Fatalf("rank1 should have zero overlap: %+v", p)
		}
	}

	// Totals: mpi comm 14s, overlap 5s.
	tot := rep.Pair(PairMPICompute)
	if tot.CommSec != 14 || tot.OverlapSec != 5 {
		t.Fatalf("total mpi/compute: %+v", tot)
	}
	if math.Abs(tot.Fraction-5.0/14.0) > 1e-12 {
		t.Fatalf("total fraction = %v", tot.Fraction)
	}
	if unknown := rep.Pair("nope"); unknown.CommSec != 0 || unknown.Name != "nope" {
		t.Fatalf("unknown pair: %+v", unknown)
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"mpi/compute", "pcie/kernel", "rank 0", "rank 1", "compute.interior"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text summary missing %q:\n%s", want, out)
		}
	}
}

func TestIntervalHelpers(t *testing.T) {
	m := merge([]interval{{5, 6}, {0, 2}, {1, 3}, {6, 6}})
	if len(m) != 2 || m[0] != (interval{0, 3}) || m[1] != (interval{5, 6}) {
		t.Fatalf("merge: %+v", m)
	}
	if got := busySeconds(m); got != 4 {
		t.Fatalf("busy = %v", got)
	}
	if got := intersectSeconds(m, []interval{{2, 5.5}}); got != 1.5 {
		t.Fatalf("intersect = %v", got)
	}
	if got := intersectSeconds(nil, m); got != 0 {
		t.Fatalf("intersect with empty = %v", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder()
	r.Add(0, 2, PhaseInterior, "whole", 0.1, 0.2)
	r.Add(0, -1, PhaseKernel, "interior", 0.001, 0.002)
	r.Add(1, 2, PhaseMPIExchange, "x", 0.1, 0.3)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not unmarshal: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var x, meta int
	procs := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			procs[ev.PID] = true
			if ev.Dur <= 0 {
				t.Fatalf("non-positive duration: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event type %q", ev.Ph)
		}
	}
	if x != 3 {
		t.Fatalf("got %d X events, want 3", x)
	}
	// 2 process_name + (3 tracks × 2 metadata each).
	if meta != 8 {
		t.Fatalf("got %d metadata events, want 8", meta)
	}
	if !procs[0] || !procs[1] {
		t.Fatalf("missing rank processes: %v", procs)
	}
	// The interior span timestamps are microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "whole" {
			if math.Abs(ev.TS-1e5) > 1e-6 || math.Abs(ev.Dur-1e5) > 1e-6 {
				t.Fatalf("bad us conversion: %+v", ev)
			}
			if ev.Args["step"] != float64(2) {
				t.Fatalf("missing step arg: %+v", ev)
			}
		}
	}
}
