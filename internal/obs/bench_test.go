package obs

import "testing"

// BenchmarkRecorderDisabled measures the cost instrumented code pays when
// tracing is off — the ci.sh overhead gate runs this with -benchmem and the
// allocation contract is asserted by TestDisabledRecorderAllocatesNothing.
// The loop mirrors one instrumented step: a bracketed span, a window clock
// read, and a direct Add.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := r.Begin(0, i, PhaseInterior, "whole")
		a.End()
		t0 := r.Clock()
		r.Add(0, i, PhaseMPIExchange, "x", t0, r.Clock())
	}
}

// BenchmarkRecorderEnabled is the enabled-path cost for comparison
// (BENCH_obs.json records both).
func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := r.Begin(0, i, PhaseInterior, "whole")
		a.End()
		t0 := r.Clock()
		r.Add(0, i, PhaseMPIExchange, "x", t0, r.Clock())
	}
}
