package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Add(RankGateway, -1, PhaseGWRoute, "n1", 0.001, 0.002)
	r.Add(RankGateway, -1, PhaseGWSubmit, "n1", 0.002, 0.004)

	c := r.TraceContext("abc123")
	if c == nil {
		t.Fatal("enabled recorder returned nil context")
	}
	if c.TraceID != "abc123" || c.EpochNS != r.Epoch().UnixNano() || len(c.Spans) != 2 {
		t.Fatalf("bad context: %+v", c)
	}

	got, err := ParseTraceContext(c.Encode())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.TraceID != c.TraceID || got.EpochNS != c.EpochNS || len(got.Spans) != 2 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
	}
	if got.Spans[1].Phase != PhaseGWSubmit || got.Spans[1].Label != "n1" {
		t.Fatalf("span lost in round trip: %+v", got.Spans[1])
	}
}

func TestTraceContextNilAndDisabled(t *testing.T) {
	var r *Recorder
	if c := r.TraceContext("id"); c != nil {
		t.Fatalf("disabled recorder minted context %+v", c)
	}
	var c *TraceContext
	if v := c.Encode(); v != "" {
		t.Fatalf("nil context encoded to %q", v)
	}
	r.Import(nil) // must not panic
	r.ImportRemote("n1", nil)
	rec := NewRecorder()
	rec.Import(nil)
	rec.ImportRemote("n1", nil)
	if rec.Len() != 0 {
		t.Fatalf("nil imports recorded %d spans", rec.Len())
	}
}

func TestParseTraceContextMalformed(t *testing.T) {
	if c, err := ParseTraceContext(""); c != nil || err != nil {
		t.Fatalf("empty header: got (%v, %v), want (nil, nil)", c, err)
	}
	cases := map[string]string{
		"not base64":    "%%%not-base64%%%",
		"not json":      "bm90IGpzb24",
		"missing id":    (&TraceContext{EpochNS: 1}).Encode(),
		"missing epoch": (&TraceContext{TraceID: "x"}).Encode(),
		"oversized":     strings.Repeat("A", maxTraceHeader+1),
	}
	for name, v := range cases {
		if _, err := ParseTraceContext(v); err == nil {
			t.Errorf("%s: parse accepted malformed value", name)
		}
	}
}

func TestImportRebasesAndAnnotatesHandoff(t *testing.T) {
	local := NewRecorder()
	// A sender whose epoch is 50ms before ours: its span at [10ms, 20ms]
	// lands at [-40ms, -30ms] on our timeline.
	c := &TraceContext{
		TraceID: "t1",
		EpochNS: local.Epoch().Add(-50 * time.Millisecond).UnixNano(),
		Spans: []Span{
			{Rank: RankGateway, Step: -1, Phase: PhaseGWRoute, Label: "n1", Start: 0.010, End: 0.020},
			{Rank: RankGateway, Step: -1, Phase: PhaseGWSubmit, Label: "n1", Start: 0.020, End: 0.030},
			{Rank: RankGateway, Step: -1, Phase: PhaseGWRetry, Start: 0.040, End: 0.030}, // end < start: dropped
		},
	}
	local.Import(c)
	spans := local.Spans()
	if len(spans) != 3 { // route + submit + synthetic handoff
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byPhase := map[Phase]Span{}
	for _, s := range spans {
		byPhase[s.Phase] = s
	}
	route := byPhase[PhaseGWRoute]
	if !approx(route.Start, -0.040) || !approx(route.End, -0.030) {
		t.Fatalf("route span not rebased: %+v", route)
	}
	hand, ok := byPhase[PhaseGWHandoff]
	if !ok {
		t.Fatal("no handoff span recorded")
	}
	if !approx(hand.Start, -0.020) || hand.End != 0 {
		t.Fatalf("handoff should bridge last sender instant to epoch: %+v", hand)
	}
	if !strings.HasPrefix(hand.Label, "offset ") {
		t.Fatalf("handoff label %q lacks clock-offset annotation", hand.Label)
	}
}

func TestImportSenderClockAhead(t *testing.T) {
	local := NewRecorder()
	c := &TraceContext{
		TraceID: "t1",
		EpochNS: local.Epoch().Add(20 * time.Millisecond).UnixNano(),
		Spans:   []Span{{Rank: RankGateway, Phase: PhaseGWRoute, Start: 0, End: 0.005}},
	}
	local.Import(c)
	for _, s := range local.Spans() {
		if s.Phase == PhaseGWHandoff {
			if s.Start != 0 || s.End != 0 {
				t.Fatalf("skewed handoff should clamp to epoch: %+v", s)
			}
			return
		}
	}
	t.Fatal("no handoff span recorded")
}

func TestImportRemoteFiltersAndStampsNode(t *testing.T) {
	gw := NewRecorder()
	remote := &TraceContext{
		TraceID: "t1",
		EpochNS: gw.Epoch().Add(30 * time.Millisecond).UnixNano(),
		Spans: []Span{
			{Rank: RankService, Step: -1, Phase: PhaseWorkerExec, Start: 0.001, End: 0.010},
			{Rank: 0, Step: 0, Phase: PhaseKernel, Start: 1.5, End: 2.5},              // sim base: unshifted
			{Rank: RankGateway, Step: -1, Phase: PhaseGWRoute, Start: -0.01, End: 0},  // sender's gateway copy: skipped
			{Rank: 1, Step: 0, Phase: PhaseInterior, Node: "other", Start: 0, End: 1}, // already foreign: skipped
		},
	}
	gw.ImportRemote("n1", remote)
	spans := gw.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	for _, s := range spans {
		if s.Node != "n1" {
			t.Fatalf("span not stamped with node: %+v", s)
		}
	}
	var exec, kern Span
	for _, s := range spans {
		switch s.Phase {
		case PhaseWorkerExec:
			exec = s
		case PhaseKernel:
			kern = s
		}
	}
	if !approx(exec.Start, 0.031) || !approx(exec.End, 0.040) {
		t.Fatalf("wall span not rebased: %+v", exec)
	}
	if kern.Start != 1.5 || kern.End != 2.5 {
		t.Fatalf("sim span must keep virtual time: %+v", kern)
	}
}

func TestChromeTraceNodeAttribution(t *testing.T) {
	spans := []Span{
		{Rank: RankGateway, Step: -1, Phase: PhaseGWRoute, Label: "n1", Start: -0.02, End: -0.01},
		{Rank: RankService, Step: -1, Phase: PhaseWorkerExec, Start: 0, End: 0.05},
		{Rank: 0, Step: 0, Phase: PhaseInterior, Start: 0.01, End: 0.02},
		{Rank: RankService, Step: -1, Phase: PhaseWorkerExec, Node: "n1", Start: -0.015, End: -0.012},
		{Rank: 0, Step: 0, Phase: PhaseInterior, Node: "n1", Start: -0.014, End: -0.013},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{} // process name -> pid
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Args["name"].(string)] = ev.PID
		}
	}
	want := []string{"gateway", "service", "rank 0", "n1 service", "n1 rank 0"}
	for _, n := range want {
		if _, ok := names[n]; !ok {
			t.Errorf("missing process %q (have %v)", n, names)
		}
	}
	if names["gateway"] != RankGateway || names["service"] != RankService || names["rank 0"] != 0 {
		t.Errorf("local processes must keep pid==rank: %v", names)
	}
	if names["n1 service"] == names["service"] || names["n1 rank 0"] == names["rank 0"] {
		t.Errorf("node-attributed processes must not collide with local pids: %v", names)
	}
}

func approx(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

func TestEncodeShedsOversizedSpanLog(t *testing.T) {
	// A dead-node harvest of a long run can hold far more spans than a
	// receiver accepts on the header; Encode must shed down to the bound,
	// keeping every gateway span and the oldest node spans.
	c := &TraceContext{TraceID: "big", EpochNS: 1}
	c.Spans = append(c.Spans, Span{Rank: RankGateway, Phase: PhaseGWRoute, Label: "n1", Start: 0, End: 0.001})
	for i := 0; i < 20000; i++ {
		c.Spans = append(c.Spans, Span{
			Rank: i % 2, Step: i / 2, Phase: PhaseInterior,
			Node: "n1", Start: float64(i), End: float64(i) + 0.5,
		})
	}
	c.Spans = append(c.Spans, Span{Rank: RankGateway, Phase: PhaseGWResubmit, Label: "n1", Start: 1, End: 2})

	v := c.Encode()
	if len(v) > maxTraceHeader {
		t.Fatalf("encoded value %d bytes exceeds the %d accept bound", len(v), maxTraceHeader)
	}
	got, err := ParseTraceContext(v)
	if err != nil {
		t.Fatalf("bounded encoding does not parse: %v", err)
	}
	if got.TraceID != "big" || got.EpochNS != 1 {
		t.Fatalf("identity lost in shedding: %+v", got)
	}
	var gw, node int
	for _, s := range got.Spans {
		if s.Rank == RankGateway {
			gw++
		} else {
			node++
		}
	}
	if gw != 2 {
		t.Errorf("want both gateway spans to survive shedding, got %d", gw)
	}
	if node == 0 || node >= 20000 {
		t.Errorf("want a proper prefix of node spans, got %d of 20000", node)
	}
	// The survivors are the oldest node spans: the prefix that carries the
	// admission and first-step phases.
	maxStep := -1
	for _, s := range got.Spans {
		if s.Rank != RankGateway && s.Step > maxStep {
			maxStep = s.Step
		}
	}
	if want := (node - 1) / 2; maxStep != want {
		t.Errorf("shedding kept step up to %d, want the contiguous oldest prefix ending at %d", maxStep, want)
	}
}

func TestEncodeSmallLogUnchanged(t *testing.T) {
	r := NewRecorder()
	r.Add(RankGateway, -1, PhaseGWRoute, "n1", 0, 0.001)
	c := r.TraceContext("small")
	got, err := ParseTraceContext(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 1 {
		t.Fatalf("small log altered by bounding: %+v", got.Spans)
	}
}
