package obs

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"sort"
	"time"
)

// Cross-process trace context. The gateway mints one context per traced
// submission and propagates it on the X-Advect-Trace header; the owning
// node folds it into the job's recorder so one Chrome export spans gateway
// routing, the network hop, and the per-rank runner phases.
//
// Span times inside a context are seconds relative to the *sender's*
// epoch; EpochNS pins that epoch to the unix clock so the receiver can
// rebase them onto its own timeline. The measured offset is annotated on
// the gw.handoff span rather than hidden: on one host it is the true
// gateway->node hop, across hosts it also absorbs clock skew.

// TraceHeader is the HTTP request header carrying an encoded TraceContext.
const TraceHeader = "X-Advect-Trace"

// maxTraceHeader bounds the accepted header size (64 KiB decoded input);
// a larger value is treated as malformed, not a reason to buffer it.
const maxTraceHeader = 64 << 10

// TraceContext is the wire form of one trace: the id minted at admission,
// the sender's recorder epoch, and the sender's span log so far.
type TraceContext struct {
	TraceID string `json:"trace_id"`
	EpochNS int64  `json:"epoch_ns"`
	Spans   []Span `json:"spans,omitempty"`
}

// NewTraceID mints a random 128-bit hex trace id.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// degrade to a fixed id rather than panic in an obs layer.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// TraceContext snapshots the recorder into a wire context carrying the
// given trace id. A disabled recorder yields nil (no context to ship).
func (r *Recorder) TraceContext(id string) *TraceContext {
	if r == nil {
		return nil
	}
	return &TraceContext{TraceID: id, EpochNS: r.epoch.UnixNano(), Spans: r.Spans()}
}

// Encode renders the context as a header-safe value: unpadded base64url
// over compact JSON, bounded to the size a receiver accepts
// (maxTraceHeader). An oversized span log — typically a dead-node harvest
// of a long-running job riding a resubmission — sheds its newest
// non-gateway spans until it fits: the gateway's own routing spans always
// survive, and keeping the oldest node spans preserves the admission and
// first-step phases that give the merged trace its shape. A nil context
// encodes to "" (set no header).
func (c *TraceContext) Encode() string {
	if c == nil {
		return ""
	}
	b, err := json.Marshal(c)
	if err != nil {
		return ""
	}
	if base64.RawURLEncoding.EncodedLen(len(b)) <= maxTraceHeader {
		return base64.RawURLEncoding.EncodeToString(b)
	}
	var gw, rest []Span
	for _, s := range c.Spans {
		if s.Rank == RankGateway {
			gw = append(gw, s)
		} else {
			rest = append(rest, s)
		}
	}
	// Shed in chronological order, not the (node, rank, phase) presentation
	// order Spans() uses: the earliest spans cover admission and the first
	// steps of every rank, so the survivors keep the full phase vocabulary
	// instead of one rank's longest-running phase.
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].Start < rest[j].Start })
	encodeWith := func(k int) (string, bool) {
		t := TraceContext{TraceID: c.TraceID, EpochNS: c.EpochNS}
		t.Spans = make([]Span, 0, len(gw)+k)
		t.Spans = append(append(t.Spans, gw...), rest[:k]...)
		b, err := json.Marshal(t)
		if err != nil || base64.RawURLEncoding.EncodedLen(len(b)) > maxTraceHeader {
			return "", false
		}
		return base64.RawURLEncoding.EncodeToString(b), true
	}
	// Binary-search the largest oldest-first prefix of non-gateway spans
	// that still fits (fitting is monotone in the prefix length).
	lo, hi := 0, len(rest)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if _, ok := encodeWith(mid); ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if v, ok := encodeWith(lo); ok {
		return v
	}
	return "" // gateway spans alone exceed the bound: ship no context at all
}

// ParseTraceContext decodes a header value. An empty value yields
// (nil, nil) — tracing simply not requested. A malformed value yields a
// non-nil error; callers degrade to an untraced submission.
func ParseTraceContext(v string) (*TraceContext, error) {
	if v == "" {
		return nil, nil
	}
	if len(v) > maxTraceHeader {
		return nil, errors.New("trace context exceeds size bound")
	}
	b, err := base64.RawURLEncoding.DecodeString(v)
	if err != nil {
		return nil, err
	}
	var c TraceContext
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, err
	}
	if c.TraceID == "" {
		return nil, errors.New("trace context missing trace_id")
	}
	if c.EpochNS == 0 {
		return nil, errors.New("trace context missing epoch_ns")
	}
	return &c, nil
}

// Import folds a received context into the recorder: wall-base spans are
// rebased from the sender's epoch onto this recorder's, sim-base spans
// carry virtual device time and pass through unshifted, and a gw.handoff
// span bridges the gap from the sender's last recorded instant to this
// recorder's epoch (t=0), labelled with the measured clock offset.
func (r *Recorder) Import(c *TraceContext) {
	if r == nil {
		return
	}
	if c == nil || len(c.Spans) == 0 {
		return
	}
	off := offsetSeconds(c.EpochNS, r.epoch)
	last := 0.0
	hasWall := false
	shifted := make([]Span, 0, len(c.Spans)+1)
	for _, s := range c.Spans {
		if s.End < s.Start {
			continue
		}
		if s.Phase.Base() == BaseWall {
			s.Start += off
			s.End += off
			if !hasWall || s.End > last {
				last, hasWall = s.End, true
			}
		}
		shifted = append(shifted, s)
	}
	if hasWall {
		start := last
		if start > 0 {
			start = 0 // sender clock ahead of ours: degenerate hop, offset label tells why
		}
		shifted = append(shifted, Span{
			Rank: RankGateway, Step: -1, Phase: PhaseGWHandoff,
			Label: "offset " + offsetLabel(off),
			Start: start, End: 0,
		})
	}
	r.mu.Lock()
	r.spans = append(r.spans, shifted...)
	r.mu.Unlock()
}

// ImportRemote folds another process's span log into this recorder under
// the given node id — the dead-node harvest path, where the gateway pulls
// a lost shard's spans before resubmitting elsewhere. Spans already
// attributed to a node and gateway-rank spans (the sender's copy of what
// this recorder already holds) are skipped.
func (r *Recorder) ImportRemote(node string, c *TraceContext) {
	if r == nil {
		return
	}
	if c == nil || len(c.Spans) == 0 {
		return
	}
	off := offsetSeconds(c.EpochNS, r.epoch)
	merged := make([]Span, 0, len(c.Spans))
	for _, s := range c.Spans {
		if s.End < s.Start || s.Rank == RankGateway || s.Node != "" {
			continue
		}
		if s.Phase.Base() == BaseWall {
			s.Start += off
			s.End += off
		}
		s.Node = node
		merged = append(merged, s)
	}
	if len(merged) == 0 {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, merged...)
	r.mu.Unlock()
}

// offsetSeconds is the shift taking sender-relative span times (epoch at
// senderEpochNS) onto a timeline whose epoch is local.
func offsetSeconds(senderEpochNS int64, local time.Time) float64 {
	return float64(senderEpochNS-local.UnixNano()) / 1e9
}

// offsetLabel renders a clock offset compactly ("-1.234ms").
func offsetLabel(sec float64) string {
	return time.Duration(sec * 1e9).Round(time.Microsecond).String()
}
