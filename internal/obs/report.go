package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// The report measures two canonical phase pairs, the repo's wall-clock
// analog of the paper's Figures 9/10:
//
//   - mpi/compute: how much of the in-flight MPI exchange window was
//     covered by CPU stencil compute on the same rank (wall base);
//   - pcie/kernel: how much of the PCIe copy time ran concurrently with
//     kernels on the same device (sim base).
//
// A bulk-synchronous schedule scores ~0 on both; the overlap schedules
// (§IV-C through §IV-I) score strictly positive.
const (
	PairMPICompute = "mpi/compute"
	PairPCIeKernel = "pcie/kernel"
)

var pairDefs = []struct {
	name string
	comm []Phase // the side being hidden
	work []Phase // the side doing the hiding
}{
	{PairMPICompute, []Phase{PhaseMPIExchange}, []Phase{PhaseInterior, PhaseBoundary}},
	{PairPCIeKernel, []Phase{PhaseH2D, PhaseD2H}, []Phase{PhaseKernel}},
}

// PairOverlap is the measured overlap between one phase pair on one rank
// (or totaled over ranks). Fraction is OverlapSec/CommSec — the share of
// communication time that was hidden — or 0 when there was no
// communication at all.
type PairOverlap struct {
	Name       string  `json:"name"`
	CommSec    float64 `json:"comm_sec"`
	WorkSec    float64 `json:"work_sec"`
	OverlapSec float64 `json:"overlap_sec"`
	Fraction   float64 `json:"fraction"`
}

// RankReport is one rank's phase occupancy and pair overlaps.
type RankReport struct {
	Rank  int                `json:"rank"`
	Spans int                `json:"spans"`
	Busy  map[string]float64 `json:"busy_sec"` // phase name -> merged busy seconds
	Pairs []PairOverlap      `json:"pairs"`
}

// Report is the overlap-efficiency report over all ranks.
type Report struct {
	Spans     int              `json:"spans"`
	Ranks     []RankReport     `json:"ranks"`
	Total     []PairOverlap    `json:"total"`
	Imbalance *ImbalanceReport `json:"imbalance,omitempty"`
}

// RankLoad is one rank's contribution to the imbalance report: its merged
// wall-clock busy time and the share of the run's makespan it covers. A
// straggler has a critical-path share near 1 while its peers idle.
type RankLoad struct {
	Rank      int     `json:"rank"`
	BusySec   float64 `json:"busy_sec"`
	CritShare float64 `json:"critical_path_share"`
}

// PhaseImbalance is the max/mean spread of one phase's busy time across
// ranks. A ratio near 1 is balanced; well above 1 names the phase that
// makes the straggler a straggler.
type PhaseImbalance struct {
	Phase   string  `json:"phase"`
	MeanSec float64 `json:"mean_sec"`
	MaxSec  float64 `json:"max_sec"`
	Ratio   float64 `json:"ratio"`
	MaxRank int     `json:"max_rank"`
}

// ImbalanceReport quantifies per-rank load imbalance: total wall-clock busy
// time per rank (max/mean and the straggler's identity), the run's wall
// makespan, and the per-phase spread. Only simulation ranks (>= 0)
// participate; totals use wall-base spans only, because sim-base device
// time is not commensurable with the wall makespan. Per-phase entries are
// base-consistent by construction (a phase has exactly one base) and so
// include the sim phases.
type ImbalanceReport struct {
	Ranks       []RankLoad       `json:"ranks"`
	MeanSec     float64          `json:"mean_sec"`
	MaxSec      float64          `json:"max_sec"`
	Ratio       float64          `json:"ratio"`
	Straggler   int              `json:"straggler"`
	MakespanSec float64          `json:"makespan_sec"`
	Phases      []PhaseImbalance `json:"phases,omitempty"`
}

// Report builds the overlap-efficiency report from the recorded spans.
// A disabled recorder yields an empty report.
func (r *Recorder) Report() Report {
	if r == nil {
		return BuildReport(nil)
	}
	return BuildReport(r.Spans())
}

// BuildReport computes per-rank and total overlap from a span set.
func BuildReport(spans []Span) Report {
	rep := Report{Spans: len(spans)}
	byRank := map[int][]Span{}
	for _, s := range spans {
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	totals := make([]PairOverlap, len(pairDefs))
	for i, d := range pairDefs {
		totals[i].Name = d.name
	}
	for _, rank := range ranks {
		rs := byRank[rank]
		byPhase := map[Phase][]interval{}
		for _, s := range rs {
			byPhase[s.Phase] = append(byPhase[s.Phase], interval{s.Start, s.End})
		}
		rr := RankReport{Rank: rank, Spans: len(rs), Busy: map[string]float64{}}
		for ph, iv := range byPhase {
			rr.Busy[ph.String()] = busySeconds(merge(iv))
		}
		for i, d := range pairDefs {
			comm := merge(gather(byPhase, d.comm))
			work := merge(gather(byPhase, d.work))
			p := PairOverlap{
				Name:       d.name,
				CommSec:    busySeconds(comm),
				WorkSec:    busySeconds(work),
				OverlapSec: intersectSeconds(comm, work),
			}
			if p.CommSec > 0 {
				p.Fraction = p.OverlapSec / p.CommSec
			}
			rr.Pairs = append(rr.Pairs, p)
			totals[i].CommSec += p.CommSec
			totals[i].WorkSec += p.WorkSec
			totals[i].OverlapSec += p.OverlapSec
		}
		rep.Ranks = append(rep.Ranks, rr)
	}
	for i := range totals {
		if totals[i].CommSec > 0 {
			totals[i].Fraction = totals[i].OverlapSec / totals[i].CommSec
		}
	}
	rep.Total = totals
	rep.Imbalance = BuildImbalance(spans)
	return rep
}

// BuildImbalance computes the per-rank load-imbalance/straggler report from
// a span set. It returns nil when fewer than one simulation rank recorded
// wall-base spans (service-only traces, disabled recorders).
func BuildImbalance(spans []Span) *ImbalanceReport {
	busy := map[int][]interval{}            // rank -> wall spans
	phase := map[Phase]map[int][]interval{} // phase -> rank -> spans
	lo, hi := math.Inf(1), math.Inf(-1)     // wall makespan window
	for _, s := range spans {
		if s.Rank < 0 {
			continue // service track: not a simulation rank
		}
		if s.Phase.Base() == BaseWall {
			busy[s.Rank] = append(busy[s.Rank], interval{s.Start, s.End})
			lo = math.Min(lo, s.Start)
			hi = math.Max(hi, s.End)
		}
		pr := phase[s.Phase]
		if pr == nil {
			pr = map[int][]interval{}
			phase[s.Phase] = pr
		}
		pr[s.Rank] = append(pr[s.Rank], interval{s.Start, s.End})
	}
	if len(busy) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(busy))
	for r := range busy {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	rep := &ImbalanceReport{MakespanSec: hi - lo, Straggler: ranks[0]}
	var sum float64
	for _, r := range ranks {
		b := busySeconds(merge(busy[r]))
		load := RankLoad{Rank: r, BusySec: b}
		if rep.MakespanSec > 0 {
			load.CritShare = b / rep.MakespanSec
		}
		rep.Ranks = append(rep.Ranks, load)
		sum += b
		if b > rep.MaxSec {
			rep.MaxSec, rep.Straggler = b, r
		}
	}
	rep.MeanSec = sum / float64(len(ranks))
	if rep.MeanSec > 0 {
		rep.Ratio = rep.MaxSec / rep.MeanSec
	}

	phases := make([]Phase, 0, len(phase))
	for p := range phase {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		pi := PhaseImbalance{Phase: p.String()}
		var psum float64
		// Ranks missing the phase count as zero: an absent phase on one
		// rank IS imbalance, not a smaller denominator.
		for i, r := range ranks {
			b := busySeconds(merge(phase[p][r]))
			psum += b
			if i == 0 || b > pi.MaxSec {
				pi.MaxSec, pi.MaxRank = b, r
			}
		}
		if psum == 0 {
			continue
		}
		pi.MeanSec = psum / float64(len(ranks))
		pi.Ratio = pi.MaxSec / pi.MeanSec
		rep.Phases = append(rep.Phases, pi)
	}
	return rep
}

// Pair returns the totaled overlap for the named pair (zero value if the
// name is unknown).
func (rep Report) Pair(name string) PairOverlap {
	for _, p := range rep.Total {
		if p.Name == name {
			return p
		}
	}
	return PairOverlap{Name: name}
}

// WriteText renders the human-readable summary: total pair fractions, then
// a per-rank phase occupancy table.
func (rep Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "overlap report: %d spans, %d ranks\n", rep.Spans, len(rep.Ranks))
	for _, p := range rep.Total {
		fmt.Fprintf(w, "  %-12s hidden %6.1f%%  (comm %.6fs, compute %.6fs, overlap %.6fs)\n",
			p.Name, p.Fraction*100, p.CommSec, p.WorkSec, p.OverlapSec)
	}
	if im := rep.Imbalance; im != nil {
		fmt.Fprintf(w, "  imbalance: max/mean %.2f, straggler rank %d (busy %.6fs of %.6fs makespan, critical-path share %5.1f%%)\n",
			im.Ratio, im.Straggler, im.MaxSec, im.MakespanSec, im.critShare()*100)
		for _, pi := range im.Phases {
			fmt.Fprintf(w, "    %-18s max/mean %.2f (rank %d, max %.6fs, mean %.6fs)\n",
				pi.Phase, pi.Ratio, pi.MaxRank, pi.MaxSec, pi.MeanSec)
		}
	}
	for _, rr := range rep.Ranks {
		fmt.Fprintf(w, "  rank %d: %d spans\n", rr.Rank, rr.Spans)
		names := make([]string, 0, len(rr.Busy))
		for n := range rr.Busy {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "    %-18s busy %.6fs\n", n, rr.Busy[n])
		}
		for _, p := range rr.Pairs {
			fmt.Fprintf(w, "    %-18s hidden %6.1f%% (%.6fs of %.6fs)\n",
				p.Name, p.Fraction*100, p.OverlapSec, p.CommSec)
		}
	}
}

// critShare returns the straggler's critical-path share.
func (im *ImbalanceReport) critShare() float64 {
	for _, r := range im.Ranks {
		if r.Rank == im.Straggler {
			return r.CritShare
		}
	}
	return 0
}

// interval arithmetic: merge unions a phase's spans into disjoint sorted
// intervals; intersectSeconds sweeps two merged sets with two pointers.

type interval struct{ s, e float64 }

func gather(byPhase map[Phase][]interval, phases []Phase) []interval {
	var out []interval
	for _, p := range phases {
		out = append(out, byPhase[p]...)
	}
	return out
}

func merge(iv []interval) []interval {
	if len(iv) == 0 {
		return nil
	}
	sorted := make([]interval, len(iv))
	copy(sorted, iv)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].s < sorted[j].s })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		last := &out[len(out)-1]
		if v.s <= last.e {
			if v.e > last.e {
				last.e = v.e
			}
		} else {
			out = append(out, v)
		}
	}
	return out
}

func busySeconds(merged []interval) float64 {
	var t float64
	for _, v := range merged {
		t += v.e - v.s
	}
	return t
}

func intersectSeconds(a, b []interval) float64 {
	var t float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].s
		if b[j].s > lo {
			lo = b[j].s
		}
		hi := a[i].e
		if b[j].e < hi {
			hi = b[j].e
		}
		if hi > lo {
			t += hi - lo
		}
		if a[i].e < b[j].e {
			i++
		} else {
			j++
		}
	}
	return t
}
