package obs

import (
	"fmt"
	"io"
	"sort"
)

// The report measures two canonical phase pairs, the repo's wall-clock
// analog of the paper's Figures 9/10:
//
//   - mpi/compute: how much of the in-flight MPI exchange window was
//     covered by CPU stencil compute on the same rank (wall base);
//   - pcie/kernel: how much of the PCIe copy time ran concurrently with
//     kernels on the same device (sim base).
//
// A bulk-synchronous schedule scores ~0 on both; the overlap schedules
// (§IV-C through §IV-I) score strictly positive.
const (
	PairMPICompute = "mpi/compute"
	PairPCIeKernel = "pcie/kernel"
)

var pairDefs = []struct {
	name string
	comm []Phase // the side being hidden
	work []Phase // the side doing the hiding
}{
	{PairMPICompute, []Phase{PhaseMPIExchange}, []Phase{PhaseInterior, PhaseBoundary}},
	{PairPCIeKernel, []Phase{PhaseH2D, PhaseD2H}, []Phase{PhaseKernel}},
}

// PairOverlap is the measured overlap between one phase pair on one rank
// (or totaled over ranks). Fraction is OverlapSec/CommSec — the share of
// communication time that was hidden — or 0 when there was no
// communication at all.
type PairOverlap struct {
	Name       string  `json:"name"`
	CommSec    float64 `json:"comm_sec"`
	WorkSec    float64 `json:"work_sec"`
	OverlapSec float64 `json:"overlap_sec"`
	Fraction   float64 `json:"fraction"`
}

// RankReport is one rank's phase occupancy and pair overlaps.
type RankReport struct {
	Rank  int                `json:"rank"`
	Spans int                `json:"spans"`
	Busy  map[string]float64 `json:"busy_sec"` // phase name -> merged busy seconds
	Pairs []PairOverlap      `json:"pairs"`
}

// Report is the overlap-efficiency report over all ranks.
type Report struct {
	Spans int           `json:"spans"`
	Ranks []RankReport  `json:"ranks"`
	Total []PairOverlap `json:"total"`
}

// Report builds the overlap-efficiency report from the recorded spans.
// A disabled recorder yields an empty report.
func (r *Recorder) Report() Report { return BuildReport(r.Spans()) }

// BuildReport computes per-rank and total overlap from a span set.
func BuildReport(spans []Span) Report {
	rep := Report{Spans: len(spans)}
	byRank := map[int][]Span{}
	for _, s := range spans {
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	totals := make([]PairOverlap, len(pairDefs))
	for i, d := range pairDefs {
		totals[i].Name = d.name
	}
	for _, rank := range ranks {
		rs := byRank[rank]
		byPhase := map[Phase][]interval{}
		for _, s := range rs {
			byPhase[s.Phase] = append(byPhase[s.Phase], interval{s.Start, s.End})
		}
		rr := RankReport{Rank: rank, Spans: len(rs), Busy: map[string]float64{}}
		for ph, iv := range byPhase {
			rr.Busy[ph.String()] = busySeconds(merge(iv))
		}
		for i, d := range pairDefs {
			comm := merge(gather(byPhase, d.comm))
			work := merge(gather(byPhase, d.work))
			p := PairOverlap{
				Name:       d.name,
				CommSec:    busySeconds(comm),
				WorkSec:    busySeconds(work),
				OverlapSec: intersectSeconds(comm, work),
			}
			if p.CommSec > 0 {
				p.Fraction = p.OverlapSec / p.CommSec
			}
			rr.Pairs = append(rr.Pairs, p)
			totals[i].CommSec += p.CommSec
			totals[i].WorkSec += p.WorkSec
			totals[i].OverlapSec += p.OverlapSec
		}
		rep.Ranks = append(rep.Ranks, rr)
	}
	for i := range totals {
		if totals[i].CommSec > 0 {
			totals[i].Fraction = totals[i].OverlapSec / totals[i].CommSec
		}
	}
	rep.Total = totals
	return rep
}

// Pair returns the totaled overlap for the named pair (zero value if the
// name is unknown).
func (rep Report) Pair(name string) PairOverlap {
	for _, p := range rep.Total {
		if p.Name == name {
			return p
		}
	}
	return PairOverlap{Name: name}
}

// WriteText renders the human-readable summary: total pair fractions, then
// a per-rank phase occupancy table.
func (rep Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "overlap report: %d spans, %d ranks\n", rep.Spans, len(rep.Ranks))
	for _, p := range rep.Total {
		fmt.Fprintf(w, "  %-12s hidden %6.1f%%  (comm %.6fs, compute %.6fs, overlap %.6fs)\n",
			p.Name, p.Fraction*100, p.CommSec, p.WorkSec, p.OverlapSec)
	}
	for _, rr := range rep.Ranks {
		fmt.Fprintf(w, "  rank %d: %d spans\n", rr.Rank, rr.Spans)
		names := make([]string, 0, len(rr.Busy))
		for n := range rr.Busy {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "    %-18s busy %.6fs\n", n, rr.Busy[n])
		}
		for _, p := range rr.Pairs {
			fmt.Fprintf(w, "    %-18s hidden %6.1f%% (%.6fs of %.6fs)\n",
				p.Name, p.Fraction*100, p.OverlapSec, p.CommSec)
		}
	}
}

// interval arithmetic: merge unions a phase's spans into disjoint sorted
// intervals; intersectSeconds sweeps two merged sets with two pointers.

type interval struct{ s, e float64 }

func gather(byPhase map[Phase][]interval, phases []Phase) []interval {
	var out []interval
	for _, p := range phases {
		out = append(out, byPhase[p]...)
	}
	return out
}

func merge(iv []interval) []interval {
	if len(iv) == 0 {
		return nil
	}
	sorted := make([]interval, len(iv))
	copy(sorted, iv)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].s < sorted[j].s })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		last := &out[len(out)-1]
		if v.s <= last.e {
			if v.e > last.e {
				last.e = v.e
			}
		} else {
			out = append(out, v)
		}
	}
	return out
}

func busySeconds(merged []interval) float64 {
	var t float64
	for _, v := range merged {
		t += v.e - v.s
	}
	return t
}

func intersectSeconds(a, b []interval) float64 {
	var t float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].s
		if b[j].s > lo {
			lo = b[j].s
		}
		hi := a[i].e
		if b[j].e < hi {
			hi = b[j].e
		}
		if hi > lo {
			t += hi - lo
		}
		if a[i].e < b[j].e {
			i++
		} else {
			j++
		}
	}
	return t
}
