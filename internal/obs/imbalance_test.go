package obs

import (
	"math"
	"strings"
	"testing"
)

func TestBuildImbalanceStraggler(t *testing.T) {
	im := BuildImbalance(twoRankHybridSpans())
	if im == nil {
		t.Fatal("BuildImbalance returned nil")
	}
	if len(im.Ranks) != 2 {
		t.Fatalf("got %d ranks, want 2 (service track must be excluded)", len(im.Ranks))
	}
	if im.Straggler != 1 {
		t.Fatalf("straggler = %d, want 1", im.Straggler)
	}
	if im.Ratio <= 1 {
		t.Fatalf("max/mean ratio = %g, want > 1 for imbalanced load", im.Ratio)
	}
	// Rank 0 wall busy: mpi.exchange [4,10]ms ∪ interior [5,9]ms ∪
	// boundary [10,12]ms = [4,12]ms = 8ms. Rank 1: [4,18] ∪ [18,20] = 16ms.
	if math.Abs(im.Ranks[0].BusySec-0.008) > 1e-9 {
		t.Fatalf("rank 0 busy = %g, want 0.008", im.Ranks[0].BusySec)
	}
	if math.Abs(im.Ranks[1].BusySec-0.016) > 1e-9 {
		t.Fatalf("rank 1 busy = %g, want 0.016", im.Ranks[1].BusySec)
	}
	// Wall makespan over ranks >= 0: [4,20]ms = 16ms; the straggler's
	// critical-path share is therefore 1.
	if math.Abs(im.MakespanSec-0.016) > 1e-9 {
		t.Fatalf("makespan = %g, want 0.016", im.MakespanSec)
	}
	if math.Abs(im.Ranks[1].CritShare-1.0) > 1e-9 {
		t.Fatalf("straggler critical-path share = %g, want 1.0", im.Ranks[1].CritShare)
	}

	// The per-phase table must name compute.interior as the widest spread
	// and attribute the max to rank 1.
	var interior *PhaseImbalance
	for i := range im.Phases {
		if im.Phases[i].Phase == "compute.interior" {
			interior = &im.Phases[i]
		}
	}
	if interior == nil {
		t.Fatal("no compute.interior phase entry")
	}
	if interior.MaxRank != 1 || interior.Ratio <= 1 {
		t.Fatalf("compute.interior: max_rank=%d ratio=%g, want rank 1 and ratio > 1",
			interior.MaxRank, interior.Ratio)
	}
}

func TestBuildImbalanceServiceOnly(t *testing.T) {
	spans := []Span{
		{Rank: RankService, Step: -1, Phase: PhaseQueueWait, Start: 0, End: 1},
	}
	if im := BuildImbalance(spans); im != nil {
		t.Fatalf("service-only spans produced an imbalance report: %+v", im)
	}
	if im := BuildImbalance(nil); im != nil {
		t.Fatal("empty span set produced an imbalance report")
	}
}

func TestReportTextIncludesImbalance(t *testing.T) {
	rep := BuildReport(twoRankHybridSpans())
	if rep.Imbalance == nil {
		t.Fatal("report missing imbalance section")
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"imbalance:", "straggler rank 1", "critical-path share", "compute.interior"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}
