package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export. The output loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing: one process per rank, one track
// (thread) per phase, "X" complete events with microsecond timestamps.
// Wall and sim spans share the timeline but are distinguished by the
// event category ("wall"/"sim").

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans as Chrome trace-event JSON.
// A disabled recorder writes an empty (but valid) trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return WriteChromeTrace(w, nil)
	}
	return WriteChromeTrace(w, r.Spans())
}

// WriteChromeTrace writes a span set as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	type track struct{ rank, tid int }
	ranks := map[int]bool{}
	tracks := map[track]Phase{}
	for _, s := range spans {
		ranks[s.Rank] = true
		tracks[track{s.Rank, int(s.Phase)}] = s.Phase
	}
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	for _, r := range rankList {
		name := "rank " + strconv.Itoa(r)
		if r == RankService {
			name = "service"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: r,
			Args: map[string]any{"name": name},
		})
	}
	trackList := make([]track, 0, len(tracks))
	for t := range tracks {
		trackList = append(trackList, t)
	}
	sort.Slice(trackList, func(i, j int) bool {
		if trackList[i].rank != trackList[j].rank {
			return trackList[i].rank < trackList[j].rank
		}
		return trackList[i].tid < trackList[j].tid
	})
	for _, t := range trackList {
		ph := tracks[t]
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{
				Name: "thread_name", Ph: "M", PID: t.rank, TID: t.tid,
				Args: map[string]any{"name": ph.String() + " [" + ph.Base().String() + "]"},
			},
			chromeEvent{
				Name: "thread_sort_index", Ph: "M", PID: t.rank, TID: t.tid,
				Args: map[string]any{"sort_index": t.tid},
			})
	}

	for _, s := range spans {
		name := s.Label
		if name == "" {
			name = s.Phase.String()
		}
		ev := chromeEvent{
			Name: name,
			Cat:  s.Phase.Base().String(),
			Ph:   "X",
			TS:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			PID:  s.Rank,
			TID:  int(s.Phase),
		}
		if s.Step >= 0 {
			ev.Args = map[string]any{"step": s.Step}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
