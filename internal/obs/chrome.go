package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export. The output loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing: one process per rank, one track
// (thread) per phase, "X" complete events with microsecond timestamps.
// Wall and sim spans share the timeline but are distinguished by the
// event category ("wall"/"sim").

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans as Chrome trace-event JSON.
// A disabled recorder writes an empty (but valid) trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return WriteChromeTrace(w, nil)
	}
	return WriteChromeTrace(w, r.Spans())
}

// WriteChromeTrace writes a span set as Chrome trace-event JSON. Each
// (node, rank) pair becomes one trace process: spans with an empty node
// (single-process traces) keep pid == rank, while node-attributed spans
// from a cross-process merge get a disjoint pid block per node so a
// cluster trace keeps every node's tracks apart on the shared timeline.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	type proc struct {
		node string
		rank int
	}
	type track struct {
		p   proc
		tid int
	}
	procs := map[proc]bool{}
	tracks := map[track]Phase{}
	for _, s := range spans {
		p := proc{s.Node, s.Rank}
		procs[p] = true
		tracks[track{p, int(s.Phase)}] = s.Phase
	}

	procList := make([]proc, 0, len(procs))
	nodeSet := map[string]bool{}
	for p := range procs {
		procList = append(procList, p)
		if p.node != "" {
			nodeSet[p.node] = true
		}
	}
	sort.Slice(procList, func(i, j int) bool {
		if procList[i].node != procList[j].node {
			return procList[i].node < procList[j].node
		}
		return procList[i].rank < procList[j].rank
	})
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	nodeBase := map[string]int{}
	for i, n := range nodes {
		nodeBase[n] = 1000 * (i + 1)
	}
	// pid: the legacy identity mapping for local spans; a per-node block
	// (1000, 2000, ...) with headroom for the synthetic negative ranks
	// for node-attributed spans.
	pid := func(p proc) int {
		if p.node == "" {
			return p.rank
		}
		return nodeBase[p.node] + p.rank + 8
	}
	procName := func(p proc) string {
		var name string
		switch p.rank {
		case RankGateway:
			name = "gateway"
		case RankService:
			name = "service"
		default:
			name = "rank " + strconv.Itoa(p.rank)
		}
		if p.node != "" {
			name = p.node + " " + name
		}
		return name
	}
	for _, p := range procList {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid(p),
			Args: map[string]any{"name": procName(p)},
		})
	}

	trackList := make([]track, 0, len(tracks))
	for t := range tracks {
		trackList = append(trackList, t)
	}
	sort.Slice(trackList, func(i, j int) bool {
		if trackList[i].p.node != trackList[j].p.node {
			return trackList[i].p.node < trackList[j].p.node
		}
		if trackList[i].p.rank != trackList[j].p.rank {
			return trackList[i].p.rank < trackList[j].p.rank
		}
		return trackList[i].tid < trackList[j].tid
	})
	for _, t := range trackList {
		ph := tracks[t]
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid(t.p), TID: t.tid,
				Args: map[string]any{"name": ph.String() + " [" + ph.Base().String() + "]"},
			},
			chromeEvent{
				Name: "thread_sort_index", Ph: "M", PID: pid(t.p), TID: t.tid,
				Args: map[string]any{"sort_index": t.tid},
			})
	}

	for _, s := range spans {
		name := s.Label
		if name == "" {
			name = s.Phase.String()
		}
		ev := chromeEvent{
			Name: name,
			Cat:  s.Phase.Base().String(),
			Ph:   "X",
			TS:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			PID:  pid(proc{s.Node, s.Rank}),
			TID:  int(s.Phase),
		}
		if s.Step >= 0 {
			ev.Args = map[string]any{"step": s.Step}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
