// Package obs is the unified phase-tracing layer of the reproduction: a
// low-overhead span recorder shared by the CPU runtime (internal/par), the
// message-passing runtime (internal/mpi), the simulated GPU
// (internal/gpusim), and every runner in internal/impl. Each span names a
// canonical phase of the paper's algorithms — interior compute, boundary
// compute, halo pack/unpack, MPI traffic, PCIe copies, kernels — tagged
// with the rank and timestep that produced it.
//
// The recorder is nil-safe: a nil *Recorder is a valid, disabled recorder
// on which every method is a no-op, so instrumented code never branches on
// an "enabled" flag and the disabled path allocates nothing (asserted by
// BenchmarkRecorderDisabled and the ci.sh overhead gate). All methods are
// safe for concurrent use; ranks and team workers record into one shared
// recorder under -race.
//
// Spans carry one of two time bases. Wall spans (CPU compute, MPI, packing)
// are measured with the host monotonic clock relative to the recorder's
// epoch. Sim spans (kernels, PCIe copies) carry the simulated device's
// virtual timestamps, bridged from internal/gpusim. Overlap is only ever
// computed between spans of the same rank and the same base — mixing bases
// would manufacture meaningless overlap.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Base identifies the clock a span was measured against.
type Base uint8

const (
	// BaseWall marks spans timed with the host monotonic clock.
	BaseWall Base = iota
	// BaseSim marks spans carrying simulated-device virtual time.
	BaseSim
)

func (b Base) String() string {
	if b == BaseSim {
		return "sim"
	}
	return "wall"
}

// Phase names one canonical activity of the paper's algorithms.
type Phase uint8

const (
	// PhaseInterior is stencil compute on interior points (CPU).
	PhaseInterior Phase = iota
	// PhaseBoundary is stencil compute on boundary/shell points (CPU).
	PhaseBoundary
	// PhaseHaloPack is gathering faces into contiguous send buffers.
	PhaseHaloPack
	// PhaseHaloUnpack is scattering received faces back into the halo.
	PhaseHaloUnpack
	// PhaseMPISend is a blocking or eager send call.
	PhaseMPISend
	// PhaseMPIRecv is a blocking receive call.
	PhaseMPIRecv
	// PhaseMPIWait is completing a nonblocking request.
	PhaseMPIWait
	// PhaseMPIExchange is the whole in-flight window of one halo exchange,
	// from posting the receives to completing the waits. Compute recorded
	// inside this window is communication the run actually hid.
	PhaseMPIExchange
	// PhaseH2D is a host-to-device PCIe copy (sim time).
	PhaseH2D
	// PhaseD2H is a device-to-host PCIe copy (sim time).
	PhaseD2H
	// PhaseKernel is device kernel execution (sim time).
	PhaseKernel
	// PhaseLaunch is host-side work issuing device operations.
	PhaseLaunch
	// PhaseCopy is the end-of-step state copy (next -> current).
	PhaseCopy
	// PhaseRegion is a par.Team parallel region (any schedule).
	PhaseRegion

	// The remaining phases are the advectd request lifecycle. They are
	// recorded on the synthetic service rank (RankService), so a traced
	// job's export shows its queue wait and worker handoff on the same
	// timeline as the per-rank runner phases above.

	// PhaseHTTPReceive is admission: validate, cache probe, enqueue.
	PhaseHTTPReceive
	// PhaseQueueWait is the gap between enqueue and a worker's claim.
	PhaseQueueWait
	// PhaseCacheLookup is the result-cache probe during admission.
	PhaseCacheLookup
	// PhaseWorkerExec is a worker executing the job body.
	PhaseWorkerExec
	// PhaseResultEncode is rendering the result document.
	PhaseResultEncode

	// The gw.* phases are the advectgw routing lifecycle, recorded on the
	// synthetic gateway rank (RankGateway) and shipped to the owning node
	// inside the X-Advect-Trace context, so the stitched export shows the
	// routing decision, cross-node hops, and any failover ahead of the
	// service and runner tracks.

	// PhaseGWRoute is the ring lookup and member-state walk picking a node.
	PhaseGWRoute
	// PhaseGWPeek is the sibling cache peek fan-out (and owner seed).
	PhaseGWPeek
	// PhaseGWSubmit is dispatching the submission to one node (the label
	// names the node; one span per attempt).
	PhaseGWSubmit
	// PhaseGWRetry is honoring a brief Retry-After in place at the owner.
	PhaseGWRetry
	// PhaseGWFailover is abandoning a shedding/unreachable node for the
	// next ring successor (the label names the abandoned node).
	PhaseGWFailover
	// PhaseGWResubmit is re-submitting a dead node's in-flight job to a
	// survivor (the label names the dead node).
	PhaseGWResubmit
	// PhaseGWHandoff is the gateway->node hop: from the last span the
	// gateway recorded before dispatch to the receiving node's epoch. Its
	// label carries the measured gateway/node clock offset.
	PhaseGWHandoff

	numPhases
)

// RankService is the synthetic rank service-level spans are recorded under,
// keeping the request lifecycle on its own track, separate from the
// simulation ranks (which are always >= 0).
const RankService = -1

// RankGateway is the synthetic rank gateway-side spans are recorded under,
// one track above the service rank.
const RankGateway = -2

var phaseNames = [numPhases]string{
	PhaseInterior:     "compute.interior",
	PhaseBoundary:     "compute.boundary",
	PhaseHaloPack:     "halo.pack",
	PhaseHaloUnpack:   "halo.unpack",
	PhaseMPISend:      "mpi.send",
	PhaseMPIRecv:      "mpi.recv",
	PhaseMPIWait:      "mpi.wait",
	PhaseMPIExchange:  "mpi.exchange",
	PhaseH2D:          "pcie.h2d",
	PhaseD2H:          "pcie.d2h",
	PhaseKernel:       "gpu.kernel",
	PhaseLaunch:       "gpu.launch",
	PhaseCopy:         "copy",
	PhaseRegion:       "par.region",
	PhaseHTTPReceive:  "svc.receive",
	PhaseQueueWait:    "svc.queue",
	PhaseCacheLookup:  "svc.cache",
	PhaseWorkerExec:   "svc.exec",
	PhaseResultEncode: "svc.encode",
	PhaseGWRoute:      "gw.route",
	PhaseGWPeek:       "gw.peek",
	PhaseGWSubmit:     "gw.submit",
	PhaseGWRetry:      "gw.retry",
	PhaseGWFailover:   "gw.failover",
	PhaseGWResubmit:   "gw.resubmit",
	PhaseGWHandoff:    "gw.handoff",
}

// AllPhases lists every defined phase in declaration order — the span
// vocabulary, for docs and exhaustive tests.
func AllPhases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// Base returns the clock this phase is measured against: kernels and PCIe
// copies live in simulated device time, everything else in wall time.
func (p Phase) Base() Base {
	switch p {
	case PhaseH2D, PhaseD2H, PhaseKernel:
		return BaseSim
	}
	return BaseWall
}

// Span is one recorded interval. Start and End are seconds: since the
// recorder's epoch for wall phases, virtual device time for sim phases.
// Step is the timestep that produced the span, or -1 when not attributable
// to a single step (device-side spans, post-loop collectives). Node is
// empty for spans recorded by the local process; a cross-process merge
// (trace-context import, dead-node span harvest) stamps it with the
// originating node's id so the export keeps each node's tracks apart.
type Span struct {
	Rank  int     `json:"rank"`
	Step  int     `json:"step"`
	Phase Phase   `json:"phase"`
	Label string  `json:"label,omitempty"`
	Node  string  `json:"node,omitempty"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Recorder accumulates spans from many goroutines. The zero of its pointer
// type — nil — is a valid disabled recorder; every method no-ops on it.
type Recorder struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns an enabled recorder whose wall clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Enabled reports whether spans will actually be kept.
func (r *Recorder) Enabled() bool { return r != nil }

// Epoch returns the instant the recorder's wall clock started (zero time
// if disabled). Cross-process span merges use it to compute clock offsets.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Clock returns seconds elapsed since the recorder's epoch (0 if disabled).
// Use it to timestamp a window whose span is emitted later via Add.
//
//advect:hotpath
func (r *Recorder) Clock() float64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Seconds()
}

// Add records one span directly. Use it for bridged sim spans and for wall
// windows timed with Clock; prefer Begin/End for simple bracketing.
//
//advect:hotpath
func (r *Recorder) Add(rank, step int, phase Phase, label string, start, end float64) {
	if r == nil || end < start {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Rank: rank, Step: step, Phase: phase, Label: label, Start: start, End: end})
	r.mu.Unlock()
}

// Active is an open span returned by Begin and closed by End. It is a
// value; the disabled recorder hands out inert zero values.
type Active struct {
	r     *Recorder
	start float64
	rank  int32
	step  int32
	phase Phase
	label string
}

// Begin opens a wall-clock span. End closes it. On a disabled recorder
// both are no-ops and neither allocates nor reads the clock.
//
//advect:hotpath
func (r *Recorder) Begin(rank, step int, phase Phase, label string) Active {
	if r == nil {
		return Active{}
	}
	return Active{r: r, start: r.Clock(), rank: int32(rank), step: int32(step), phase: phase, label: label}
}

// End closes the span at the current clock reading.
//
//advect:hotpath
func (a Active) End() {
	if a.r == nil {
		return
	}
	a.r.Add(int(a.rank), int(a.step), a.phase, a.label, a.start, a.r.Clock())
}

// Len returns the number of spans recorded so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of all recorded spans ordered by (node, rank,
// phase, start); locally recorded spans (empty node) sort first. Safe to
// call while recording continues.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Start < out[j].Start
	})
	return out
}
