package gpusim

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/vtime"
)

// Device is one simulated GPU. It owns device memory, constant memory, a
// PCIe link, and the virtual-time resources that serialize what the real
// hardware serializes: the kernel engine (on devices without concurrent
// kernels) and the DMA engines. A Device may be shared by several host
// goroutines (the paper runs multiple MPI tasks per GPU); its methods are
// safe for concurrent use.
type Device struct {
	Props Props
	Link  Link

	mu        sync.Mutex
	engine    *vtime.Resource // kernel serialization when !ConcurrentKernels
	dmaH2D    *vtime.Resource
	dmaD2H    *vtime.Resource
	trace     *vtime.Trace
	obsRec    *obs.Recorder
	obsRank   int
	constMem  []float64
	allocated int64
	streamSeq int

	// Stats
	Kernels   int
	CopiesH2D int
	CopiesD2H int
	BytesH2D  int64
	BytesD2H  int64
}

// NewDevice creates a device with the given properties and PCIe link.
func NewDevice(p Props, l Link) *Device {
	d := &Device{
		Props:  p,
		Link:   l,
		engine: vtime.NewResource(p.Name + ".engine"),
		dmaH2D: vtime.NewResource(p.Name + ".dma0"),
	}
	if p.CopyEngines >= 2 {
		d.dmaD2H = vtime.NewResource(p.Name + ".dma1")
	} else {
		d.dmaD2H = d.dmaH2D // half duplex: one engine serves both directions
	}
	return d
}

// SetTrace installs a span recorder (nil disables tracing).
func (d *Device) SetTrace(t *vtime.Trace) {
	d.mu.Lock()
	d.trace = t
	d.mu.Unlock()
}

// SetObserver mirrors the device timeline — kernels and PCIe copies, in
// simulated time — into an obs recorder, attributing the spans to rank
// (the device's owning rank, or the group's first rank when tasks share
// the GPU). A nil recorder disables mirroring.
func (d *Device) SetObserver(r *obs.Recorder, rank int) {
	d.mu.Lock()
	d.obsRec, d.obsRank = r, rank
	d.mu.Unlock()
}

func (d *Device) traceAdd(lane, label string, start, end vtime.Time) {
	d.mu.Lock()
	t, rec, rank := d.trace, d.obsRec, d.obsRank
	d.mu.Unlock()
	t.Add(lane, label, start, end)
	if rec != nil {
		rec.Add(rank, -1, lanePhase(lane), label, start.Seconds(), end.Seconds())
	}
}

// lanePhase maps the device's vtime lanes onto obs phases: every
// "gpu.<stream>" lane is kernel time, the PCIe lanes keep their direction
// (the half-duplex "pcie" constant-upload lane counts as host-to-device).
func lanePhase(lane string) obs.Phase {
	switch {
	case lane == "pcie.d2h":
		return obs.PhaseD2H
	case strings.HasPrefix(lane, "gpu."):
		return obs.PhaseKernel
	}
	return obs.PhaseH2D
}

// HostClock tracks a host goroutine's virtual time across device calls.
// It is a convenience for threading the host time through the Memcpy and
// Launch APIs; Set never moves the clock backwards.
type HostClock struct {
	t vtime.Time
}

// Now returns the current host time.
func (h *HostClock) Now() vtime.Time { return h.t }

// Set advances the clock to t (no-op if t is earlier).
func (h *HostClock) Set(t vtime.Time) {
	if t > h.t {
		h.t = t
	}
}

// Advance adds a duration of host-side work (e.g. CPU compute or MPI time
// in a hybrid implementation) to the clock.
func (h *HostClock) Advance(d vtime.Time) {
	if d > 0 {
		h.t += d
	}
}

// Buffer is an allocation in device global memory. Host code moves data in
// and out only through Memcpy*; kernel bodies access Data directly.
type Buffer struct {
	dev  *Device
	data []float64
}

// Len returns the element count.
func (b *Buffer) Len() int { return len(b.data) }

// Data exposes the device-resident storage for kernel bodies. Host-side
// code must use the Memcpy family instead; tests may inspect it.
func (b *Buffer) Data() []float64 { return b.data }

// Alloc reserves n float64 elements of device global memory. It panics if
// the device capacity would be exceeded, the moral equivalent of
// cudaErrorMemoryAllocation — the paper sizes the 420³ problem to just fit
// a single GPU, so capacity is a real constraint.
func (d *Device) Alloc(n int) *Buffer {
	d.mu.Lock()
	defer d.mu.Unlock()
	bytes := int64(n) * 8
	if d.allocated+bytes > d.Props.GlobalMemBytes {
		panic(fmt.Sprintf("gpusim: %s out of memory: %d + %d > %d bytes",
			d.Props.Name, d.allocated, bytes, d.Props.GlobalMemBytes))
	}
	d.allocated += bytes
	return &Buffer{dev: d, data: make([]float64, n)}
}

// Free releases a buffer's reservation.
func (d *Device) Free(b *Buffer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.allocated -= int64(len(b.data)) * 8
	b.data = nil
}

// AllocatedBytes returns the current device-memory reservation.
func (d *Device) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// LoadConstant stores vals in constant memory (the stencil coefficients in
// the paper's kernels) and returns the host time after the upload.
func (d *Device) LoadConstant(host vtime.Time, vals []float64) vtime.Time {
	d.mu.Lock()
	d.constMem = append([]float64(nil), vals...)
	d.mu.Unlock()
	start, end := d.dmaH2D.Acquire(host, vtime.Time(d.Link.CopyTime(len(vals)*8)))
	d.traceAdd("pcie", "constant upload", start, end)
	return end
}

// Constant returns the constant-memory contents for kernel bodies.
func (d *Device) Constant() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.constMem
}

// Stream is a CUDA stream: operations issued to one stream execute in
// order; operations in different streams may overlap.
type Stream struct {
	dev   *Device
	name  string
	mu    sync.Mutex
	avail vtime.Time
}

// NewStream creates a stream. name appears in traces.
func (d *Device) NewStream(name string) *Stream {
	d.mu.Lock()
	d.streamSeq++
	if name == "" {
		name = fmt.Sprintf("stream%d", d.streamSeq-1)
	}
	d.mu.Unlock()
	return &Stream{dev: d, name: name}
}

func (s *Stream) ready(host vtime.Time) vtime.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return vtime.Max(host, s.avail)
}

func (s *Stream) extend(end vtime.Time) {
	s.mu.Lock()
	if end > s.avail {
		s.avail = end
	}
	s.mu.Unlock()
}

// Synchronize blocks the host until all work issued to the stream has
// completed; it returns the host time after the wait (cudaStreamSynchronize).
func (s *Stream) Synchronize(host vtime.Time) vtime.Time {
	return s.ready(host)
}

// Event marks a point in a stream's execution (cudaEventRecord).
type Event struct {
	at vtime.Time
}

// Record captures the stream's current completion frontier.
func (s *Stream) Record(host vtime.Time) Event {
	return Event{at: s.ready(host)}
}

// WaitEvent makes subsequent work in the stream wait for e
// (cudaStreamWaitEvent).
func (s *Stream) WaitEvent(e Event) {
	s.extend(e.at)
}

// At returns the virtual time the event marks.
func (e Event) At() vtime.Time { return e.at }

// ElapsedSince returns the simulated seconds between two events, the
// analog of cudaEventElapsedTime — how real CUDA codes time kernels.
func (e Event) ElapsedSince(start Event) float64 {
	return (e.at - start.at).Seconds()
}

// Direction labels a PCIe transfer.
type Direction int

const (
	// HostToDevice uploads host data into a device buffer.
	HostToDevice Direction = iota
	// DeviceToHost downloads a device buffer into host memory.
	DeviceToHost
)

func (dir Direction) String() string {
	if dir == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// Memcpy performs a synchronous transfer between host slice and device
// buffer (cudaMemcpy): the host blocks until the copy completes. It returns
// the host time after completion. dst/src element counts must match.
func (d *Device) Memcpy(host vtime.Time, dir Direction, devBuf *Buffer, hostBuf []float64) vtime.Time {
	return d.copy(host, nil, dir, devBuf, hostBuf, true)
}

// MemcpyAsync enqueues a transfer on a stream (cudaMemcpyAsync): it is
// ordered after prior work in the stream and the host continues
// immediately. The returned time is the host time after the (cheap) enqueue.
// The data movement itself is performed eagerly so the simulation stays
// functional; callers must respect stream ordering for correctness, as CUDA
// programs must.
func (d *Device) MemcpyAsync(host vtime.Time, s *Stream, dir Direction, devBuf *Buffer, hostBuf []float64) vtime.Time {
	return d.copy(host, s, dir, devBuf, hostBuf, false)
}

func (d *Device) copy(host vtime.Time, s *Stream, dir Direction, devBuf *Buffer, hostBuf []float64, sync bool) vtime.Time {
	if devBuf.dev != d {
		panic("gpusim: buffer belongs to a different device")
	}
	if len(hostBuf) != len(devBuf.data) {
		panic(fmt.Sprintf("gpusim: memcpy size mismatch: host %d, device %d",
			len(hostBuf), len(devBuf.data)))
	}
	// Functional move.
	if dir == HostToDevice {
		copy(devBuf.data, hostBuf)
	} else {
		copy(hostBuf, devBuf.data)
	}
	bytes := len(hostBuf) * 8
	dma := d.dmaH2D
	lane := "pcie.h2d"
	if dir == DeviceToHost {
		dma = d.dmaD2H
		lane = "pcie.d2h"
	}
	ready := host
	if s != nil {
		ready = s.ready(host)
	}
	start, end := dma.Acquire(ready, vtime.Time(d.Link.CopyTime(bytes)))
	d.traceAdd(lane, fmt.Sprintf("%s %dB", dir, bytes), start, end)
	d.mu.Lock()
	if dir == HostToDevice {
		d.CopiesH2D++
		d.BytesH2D += int64(bytes)
	} else {
		d.CopiesD2H++
		d.BytesD2H += int64(bytes)
	}
	d.mu.Unlock()
	if s != nil {
		s.extend(end)
	}
	if sync {
		return end
	}
	return host // async: host proceeds immediately
}

// Launch enqueues a kernel on a stream. body runs immediately (functional
// execution); the kernel's device time is modelled by KernelTime and
// ordered after prior work in the stream (and serialized with all other
// kernels on devices without concurrent-kernel support). The returned time
// is the host time after the launch call — the host pays only the driver
// launch overhead, which is the whole point of asynchronous kernels.
func (d *Device) Launch(host vtime.Time, s *Stream, name string, l Launch, body func()) vtime.Time {
	if s == nil {
		panic("gpusim: Launch requires a stream")
	}
	dur, err := KernelTime(d.Props, l)
	if err != nil {
		panic(err)
	}
	body()
	hostAfter := host + vtime.Time(d.Props.KernelLaunchSec)
	ready := s.ready(hostAfter)
	var start, end vtime.Time
	if d.Props.ConcurrentKernels {
		start = ready
		end = start + vtime.Time(dur)
	} else {
		start, end = d.engine.Acquire(ready, vtime.Time(dur))
	}
	s.extend(end)
	d.traceAdd("gpu."+s.name, name, start, end)
	d.mu.Lock()
	d.Kernels++
	d.mu.Unlock()
	return hostAfter
}

// Synchronize blocks the host until every stream passed has drained
// (cudaDeviceSynchronize over the streams in use) and returns the host time
// after the wait.
func (d *Device) Synchronize(host vtime.Time, streams ...*Stream) vtime.Time {
	t := host
	for _, s := range streams {
		t = vtime.Max(t, s.ready(host))
	}
	return t
}
