package gpusim

import (
	"fmt"
	"math"
)

// Launch describes one kernel launch for the performance model: a grid of
// two-dimensional thread blocks, each with BlockX×BlockY interior threads
// plus a ring of halo threads of width HaloX/HaloY that only perform memory
// operations (the Micikevicius tiling the paper builds on). Each thread
// iterates over ZSlabs points in z.
type Launch struct {
	GridX, GridY   int // blocks in x and y
	BlockX, BlockY int // interior threads per block
	HaloX, HaloY   int // halo-thread ring widths
	ZSlabs         int // z extent each thread iterates over

	Points        int     // interior points actually computed
	FlopsPerPoint int     // arithmetic per computed point
	BytesPerPoint float64 // ideal global-memory traffic per point (R+W)
}

// ThreadsPerBlock returns the full block population, halo threads included.
func (l Launch) ThreadsPerBlock() int {
	return (l.BlockX + 2*l.HaloX) * (l.BlockY + 2*l.HaloY)
}

// CoveredPoints returns the points swept by the launch including the
// quantization waste of partial blocks at the domain edges.
func (l Launch) CoveredPoints() int {
	return l.GridX * l.BlockX * l.GridY * l.BlockY * l.ZSlabs
}

// SharedMemPerBlock returns the tile footprint in bytes: one xy slab of
// float64 per block, halo included.
func (l Launch) SharedMemPerBlock() int {
	return l.ThreadsPerBlock() * 8
}

// Validate reports whether the launch fits the device.
func (l Launch) Validate(p Props) error {
	if l.BlockX <= 0 || l.BlockY <= 0 || l.GridX <= 0 || l.GridY <= 0 || l.ZSlabs <= 0 {
		return fmt.Errorf("gpusim: non-positive launch geometry %+v", l)
	}
	if tpb := l.ThreadsPerBlock(); tpb > p.MaxThreadsPerBlock {
		return fmt.Errorf("gpusim: %d threads per block exceeds %s limit %d",
			tpb, p.Name, p.MaxThreadsPerBlock)
	}
	if l.SharedMemPerBlock() > p.SharedMemPerSM {
		return fmt.Errorf("gpusim: %d B shared memory per block exceeds %s SM capacity %d",
			l.SharedMemPerBlock(), p.Name, p.SharedMemPerSM)
	}
	return nil
}

// Occupancy returns the fraction of the SM's thread slots an infinite grid
// of these blocks would keep resident, limited by threads, blocks, and
// shared memory per SM.
func Occupancy(p Props, l Launch) float64 {
	tpb := l.ThreadsPerBlock()
	blocks := p.MaxThreadsPerSM / tpb
	if b := p.SharedMemPerSM / l.SharedMemPerBlock(); b < blocks {
		blocks = b
	}
	if blocks > p.MaxBlocksPerSM {
		blocks = p.MaxBlocksPerSM
	}
	if blocks < 1 {
		return 0
	}
	return float64(blocks*tpb) / float64(p.MaxThreadsPerSM)
}

// KernelTime returns the modelled execution duration of the launch on a
// device with properties p, in seconds. It is a roofline of the
// double-precision pipeline and the memory system, degraded by four
// structural inefficiencies:
//
//   - warp padding: blocks whose population is not a warp multiple waste
//     lanes (threads rounded up to whole warps);
//   - occupancy: too few resident warps fail to hide latency (saturating
//     at p.OccSat);
//   - wave quantization: the final partial wave of blocks leaves SMs idle;
//   - coalescing and tile redundancy on the memory side: rows of
//     BlockX+2·HaloX doubles starting one element off alignment fetch
//     whole memory segments, and the halo ring makes every tile load
//     (BlockX+2HaloX)(BlockY+2HaloY)/(BlockX·BlockY) more data than the
//     interior needs.
//
// These terms are what produce the paper's Figure 7/8 response surface:
// x = warp size is the sweet spot, small x pays coalescing, large x pays
// occupancy and quantization.
func KernelTime(p Props, l Launch) (float64, error) {
	if err := l.Validate(p); err != nil {
		return 0, err
	}
	tpb := l.ThreadsPerBlock()
	warps := (tpb + p.WarpSize - 1) / p.WarpSize
	padEff := float64(tpb) / float64(warps*p.WarpSize)

	occ := Occupancy(p, l)
	if occ == 0 {
		return 0, fmt.Errorf("gpusim: launch %+v cannot become resident on %s", l, p.Name)
	}
	latEff := occ / p.OccSat
	if latEff > 1 {
		latEff = 1
	}

	blocksPerSM := int(occ * float64(p.MaxThreadsPerSM) / float64(tpb))
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	waveCap := p.SMs * blocksPerSM
	blocks := l.GridX * l.GridY
	waves := (blocks + waveCap - 1) / waveCap
	tailEff := float64(blocks) / float64(waves*waveCap)

	covered := float64(l.CoveredPoints())

	// Memory efficiency terms. Reads drag the tile halo ring (the block
	// loads (BlockX+2HaloX)(BlockY+2HaloY) values per BlockX·BlockY
	// computed points) and the coalescing waste of rows that start one
	// element off alignment; writes are aligned interior rows.
	rowUseful := l.BlockX + 2*l.HaloX
	seg := p.WarpSize / 2 // 128-byte transactions = 16 doubles
	segments := (rowUseful-1)/seg + 2
	readEff := float64(rowUseful) / float64(segments*seg)
	redundancy := float64(tpb) / float64(l.BlockX*l.BlockY)
	wSeg := (l.BlockX + seg - 1) / seg
	writeEff := float64(l.BlockX) / float64(wSeg*seg)

	// Compute side: besides the arithmetic, every global-memory operation
	// consumes instruction-issue slots that compete with the DP pipeline —
	// on GT200 and Fermi the LSU and the (narrow) DP unit share issue, so a
	// poorly coalesced kernel is slower even when nominally flop-bound.
	// p.MemIssueFlops is the flop-equivalent cost of one fully-coalesced
	// memory operation; waste scales it up.
	// GT200 partition camping: global memory is interleaved across
	// p.MemPartitions partitions of 256 bytes; blocks whose tiles start at
	// strides that alias onto few partitions serialize there. Tile width
	// 32 doubles = 256 B covers every partition; 64 covers half; 128 a
	// quarter — the documented reason wide tiles disappoint on this
	// hardware. Fermi hashes addresses, so MemPartitions = 0 disables it.
	partEff := PartitionEfficiency(p, l.BlockX)

	memOps := l.BytesPerPoint / 8 // ideal accesses per point
	issue := p.MemIssueFlops * ((memOps-1)*redundancy/readEff + 1/writeEff) / partEff
	flopsEff := float64(l.FlopsPerPoint) + issue
	tFlop := covered * flopsEff / (p.EffectiveDPGFlops() * 1e9 * padEff)

	// Bandwidth side.
	readBytes := covered * (l.BytesPerPoint - 8) * redundancy / readEff
	writeBytes := covered * 8 / writeEff
	tMem := (readBytes + writeBytes) / (p.MemBWGBs * 1e9 * partEff)

	t := math.Max(tFlop, tMem) / (latEff * tailEff)
	return t, nil
}

// PartitionEfficiency returns the fraction of memory partitions a grid of
// tiles of blockX doubles keeps busy. Tiles start at x offsets that are
// multiples of blockX·8 bytes; those offsets cycle through the
// 256-byte-interleaved partitions, and strides that alias onto a subset
// leave the rest idle (GT200 "partition camping"). Devices with hashed
// layouts set MemPartitions to 0 and always return 1.
func PartitionEfficiency(p Props, blockX int) float64 {
	if p.MemPartitions <= 0 || p.CampingWeight <= 0 {
		return 1
	}
	const partBytes = 256
	period := p.MemPartitions * partBytes
	stride := blockX * 8
	hit := map[int]bool{}
	off := 0
	for i := 0; i < p.MemPartitions*partBytes/8; i++ {
		hit[(off%period)/partBytes] = true
		off += stride
	}
	raw := float64(len(hit)) / float64(p.MemPartitions)
	return 1 - p.CampingWeight*(1-raw)
}

// StencilLaunch builds the Launch for the paper's advection kernel over an
// nx×ny×nz domain with bx×by interior blocks (halo ring width 1), using the
// 53-flop stencil and its ideal 16 B/point traffic (one read, one write).
func StencilLaunch(nx, ny, nz, bx, by int) Launch {
	return Launch{
		GridX:  (nx + bx - 1) / bx,
		GridY:  (ny + by - 1) / by,
		BlockX: bx, BlockY: by,
		HaloX: 1, HaloY: 1,
		ZSlabs:        nz,
		Points:        nx * ny * nz,
		FlopsPerPoint: 53,
		BytesPerPoint: 16,
	}
}

// KernelGF returns the modelled sustained GF of the launch: useful flops
// (interior points only) divided by modelled time.
func KernelGF(p Props, l Launch) (float64, error) {
	t, err := KernelTime(p, l)
	if err != nil {
		return 0, err
	}
	return float64(l.Points) * float64(l.FlopsPerPoint) / t / 1e9, nil
}
