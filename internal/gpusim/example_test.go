package gpusim_test

import (
	"fmt"

	"repro/internal/gpusim"
)

// Example reproduces the heart of the paper's Figure 8 in four lines: the
// modelled throughput of the paper's Yona block (32×8) on the Tesla C2050.
func Example() {
	p := gpusim.TeslaC2050()
	l := gpusim.StencilLaunch(420, 420, 420, 32, 8)
	gf, err := gpusim.KernelGF(p, l)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("paper's Yona block within 15%% of 86 GF: %v\n", gf > 86*0.85 && gf < 86*1.15)
	// Output:
	// paper's Yona block within 15% of 86 GF: true
}

// ExampleDevice shows the stream semantics the overlap implementations
// rely on: work in one stream runs concurrently with another stream's
// transfers, and Synchronize returns the joined completion time.
func ExampleDevice() {
	dev := gpusim.NewDevice(gpusim.TeslaC2050(), gpusim.PCIeGen2())
	compute := dev.NewStream("compute")
	copies := dev.NewStream("copies")

	buf := dev.Alloc(1 << 20)
	host := dev.Launch(0, compute, "kernel", gpusim.StencilLaunch(420, 420, 420, 32, 8), func() {})
	host = dev.MemcpyAsync(host, copies, gpusim.HostToDevice, buf, make([]float64, 1<<20))

	kernelDone := compute.Synchronize(host)
	copyDone := copies.Synchronize(host)
	all := dev.Synchronize(host, compute, copies)
	fmt.Println("copy hidden under the kernel:", copyDone < kernelDone && all == kernelDone)
	// Output:
	// copy hidden under the kernel: true
}

// ExampleOccupancy mirrors the CUDA occupancy calculator for the paper's
// two block choices.
func ExampleOccupancy() {
	c1060 := gpusim.TeslaC1060()
	lens := gpusim.StencilLaunch(420, 420, 420, 32, 11) // paper's Lens block
	fmt.Printf("Lens 32x11 occupancy: %.2f\n", gpusim.Occupancy(c1060, lens))
	c2050 := gpusim.TeslaC2050()
	yona := gpusim.StencilLaunch(420, 420, 420, 32, 8) // paper's Yona block
	fmt.Printf("Yona 32x8 occupancy: %.2f\n", gpusim.Occupancy(c2050, yona))
	// Output:
	// Lens 32x11 occupancy: 0.86
	// Yona 32x8 occupancy: 0.89
}
