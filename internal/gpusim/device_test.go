package gpusim

import (
	"testing"

	"repro/internal/vtime"
)

func testDevice() *Device { return NewDevice(TeslaC2050(), PCIeGen2()) }

func TestAllocFree(t *testing.T) {
	d := testDevice()
	b := d.Alloc(1000)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d", b.Len())
	}
	if d.AllocatedBytes() != 8000 {
		t.Fatalf("allocated = %d", d.AllocatedBytes())
	}
	d.Free(b)
	if d.AllocatedBytes() != 0 {
		t.Fatalf("after free allocated = %d", d.AllocatedBytes())
	}
}

func TestAllocOutOfMemoryPanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("OOM not detected")
		}
	}()
	d.Alloc(int(d.Props.GlobalMemBytes/8) + 1)
}

func TestMemcpyRoundTrip(t *testing.T) {
	d := testDevice()
	buf := d.Alloc(4)
	src := []float64{1, 2, 3, 4}
	end := d.Memcpy(0, HostToDevice, buf, src)
	if end <= 0 {
		t.Fatal("sync copy took no time")
	}
	dst := make([]float64, 4)
	d.Memcpy(end, DeviceToHost, buf, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip lost data: %v", dst)
		}
	}
	if d.CopiesH2D != 1 || d.CopiesD2H != 1 || d.BytesH2D != 32 || d.BytesD2H != 32 {
		t.Fatalf("stats H2D=%d D2H=%d", d.CopiesH2D, d.CopiesD2H)
	}
}

func TestMemcpySizeMismatchPanics(t *testing.T) {
	d := testDevice()
	buf := d.Alloc(4)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	d.Memcpy(0, HostToDevice, buf, make([]float64, 3))
}

func TestMemcpyAsyncReturnsImmediately(t *testing.T) {
	d := testDevice()
	s := d.NewStream("s")
	buf := d.Alloc(1 << 20)
	host := d.MemcpyAsync(0, s, HostToDevice, buf, make([]float64, 1<<20))
	if host != 0 {
		t.Fatalf("async copy advanced host time to %v", host)
	}
	done := s.Synchronize(host)
	want := vtime.Time(d.Link.CopyTime(8 << 20))
	if done != want {
		t.Fatalf("stream drained at %v, want %v", done, want)
	}
}

func TestStreamOrdering(t *testing.T) {
	d := testDevice()
	s := d.NewStream("s")
	b1 := d.Alloc(1000)
	b2 := d.Alloc(1000)
	h := make([]float64, 1000)
	d.MemcpyAsync(0, s, HostToDevice, b1, h)
	d.MemcpyAsync(0, s, HostToDevice, b2, h)
	// Two copies serialized in the stream (and on the DMA engine).
	want := vtime.Time(2 * d.Link.CopyTime(8000))
	if got := s.Synchronize(0); got != want {
		t.Fatalf("stream end %v, want %v", got, want)
	}
}

func TestTwoStreamsOverlapKernels(t *testing.T) {
	// On a concurrent-kernel device, kernels in different streams overlap;
	// on a serialized device they queue on the engine.
	l := StencilLaunch(64, 64, 64, 32, 8)
	run := func(p Props) (end vtime.Time) {
		d := NewDevice(p, PCIeGen2())
		s1 := d.NewStream("a")
		s2 := d.NewStream("b")
		d.Launch(0, s1, "k1", l, func() {})
		d.Launch(0, s2, "k2", l, func() {})
		return d.Synchronize(0, s1, s2)
	}
	tSer := run(TeslaC1060())
	tCon := run(TeslaC2050())
	k1060, _ := KernelTime(TeslaC1060(), l)
	k2050, _ := KernelTime(TeslaC2050(), l)
	// Serialized device: ≈ 2 kernels back to back.
	if lo := vtime.Time(2 * k1060); tSer < lo {
		t.Fatalf("C1060 two kernels finished at %v, want >= %v", tSer, lo)
	}
	// Concurrent device: ≈ 1 kernel duration (plus launch gap).
	if hi := vtime.Time(k2050 + 3*TeslaC2050().KernelLaunchSec); tCon > hi {
		t.Fatalf("C2050 two kernels finished at %v, want <= %v", tCon, hi)
	}
}

func TestLaunchRunsBodyFunctionally(t *testing.T) {
	d := testDevice()
	s := d.NewStream("s")
	buf := d.Alloc(8)
	ran := false
	d.Launch(0, s, "fill", StencilLaunch(8, 1, 1, 8, 1), func() {
		ran = true
		for i := range buf.Data() {
			buf.Data()[i] = float64(i)
		}
	})
	if !ran {
		t.Fatal("kernel body did not run")
	}
	out := make([]float64, 8)
	d.Memcpy(s.Synchronize(0), DeviceToHost, buf, out)
	if out[5] != 5 {
		t.Fatalf("kernel result lost: %v", out)
	}
	if d.Kernels != 1 {
		t.Fatalf("kernel count %d", d.Kernels)
	}
}

func TestLaunchHostPaysOnlyLaunchOverhead(t *testing.T) {
	d := testDevice()
	s := d.NewStream("s")
	after := d.Launch(0, s, "k", StencilLaunch(420, 420, 420, 32, 8), func() {})
	if after != vtime.Time(d.Props.KernelLaunchSec) {
		t.Fatalf("host time after launch %v, want %v", after, d.Props.KernelLaunchSec)
	}
	if s.Synchronize(0) <= after {
		t.Fatal("kernel should still be running after launch returns")
	}
}

func TestEventCrossStreamDependency(t *testing.T) {
	d := testDevice()
	s1 := d.NewStream("producer")
	s2 := d.NewStream("consumer")
	l := StencilLaunch(128, 128, 128, 32, 8)
	d.Launch(0, s1, "produce", l, func() {})
	e := s1.Record(0)
	s2.WaitEvent(e)
	d.Launch(0, s2, "consume", StencilLaunch(8, 8, 8, 8, 8), func() {})
	// Consumer must not finish before producer finished.
	if s2.Synchronize(0) < s1.Synchronize(0) {
		t.Fatal("consumer finished before producer")
	}
}

func TestHalfDuplexVsDualDMA(t *testing.T) {
	h := make([]float64, 1<<18)
	run := func(p Props) vtime.Time {
		d := NewDevice(p, PCIeGen2())
		s1 := d.NewStream("up")
		s2 := d.NewStream("down")
		up := d.Alloc(len(h))
		down := d.Alloc(len(h))
		d.MemcpyAsync(0, s1, HostToDevice, up, h)
		d.MemcpyAsync(0, s2, DeviceToHost, down, h)
		return d.Synchronize(0, s1, s2)
	}
	one := run(TeslaC1060()) // single DMA engine: serialized
	two := run(TeslaC2050()) // dual engines: overlapped
	if one <= two {
		t.Fatalf("half duplex (%v) should be slower than dual DMA (%v)", one, two)
	}
}

func TestConstantMemory(t *testing.T) {
	d := testDevice()
	end := d.LoadConstant(0, []float64{1, 2, 3})
	if end <= 0 {
		t.Fatal("constant upload free")
	}
	c := d.Constant()
	if len(c) != 3 || c[1] != 2 {
		t.Fatalf("constant memory %v", c)
	}
}

func TestDeviceTrace(t *testing.T) {
	d := testDevice()
	tr := vtime.NewTrace()
	d.SetTrace(tr)
	s := d.NewStream("s")
	buf := d.Alloc(100)
	d.Memcpy(0, HostToDevice, buf, make([]float64, 100))
	d.Launch(0, s, "k", StencilLaunch(16, 16, 16, 16, 4), func() {})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(spans))
	}
	lanes := map[string]bool{}
	for _, sp := range spans {
		lanes[sp.Lane] = true
	}
	if !lanes["pcie.h2d"] || !lanes["gpu.s"] {
		t.Fatalf("lanes %v", lanes)
	}
}

func TestBufferWrongDevicePanics(t *testing.T) {
	d1 := testDevice()
	d2 := testDevice()
	b := d1.Alloc(4)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-device buffer accepted")
		}
	}()
	d2.Memcpy(0, HostToDevice, b, make([]float64, 4))
}

func TestStreamAutoNames(t *testing.T) {
	d := testDevice()
	s0 := d.NewStream("")
	s1 := d.NewStream("")
	if s0.name == s1.name {
		t.Fatal("auto stream names collide")
	}
}

func TestHostClock(t *testing.T) {
	var h HostClock
	if h.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	h.Set(5)
	h.Set(3) // never backwards
	if h.Now() != 5 {
		t.Fatalf("Now = %v, want 5", h.Now())
	}
	h.Advance(2)
	h.Advance(-1) // negative ignored
	if h.Now() != 7 {
		t.Fatalf("Now = %v, want 7", h.Now())
	}
}

func TestDeviceSharedByGoroutines(t *testing.T) {
	// The paper runs several MPI tasks per GPU; the simulated device must
	// tolerate concurrent use and serialize virtual time consistently.
	d := NewDevice(TeslaC1060(), PCIeGen1())
	l := StencilLaunch(32, 32, 32, 16, 8)
	kt, _ := KernelTime(d.Props, l)
	const workers = 4
	done := make(chan vtime.Time, workers)
	for w := 0; w < workers; w++ {
		go func() {
			s := d.NewStream("")
			var host vtime.Time
			for i := 0; i < 3; i++ {
				host = d.Launch(host, s, "k", l, func() {})
			}
			done <- s.Synchronize(host)
		}()
	}
	var latest vtime.Time
	for w := 0; w < workers; w++ {
		if e := <-done; e > latest {
			latest = e
		}
	}
	// No concurrent kernels on the C1060: 12 kernels serialize on the
	// engine, so the last completion is at least 12 kernel times.
	if latest < vtime.Time(12*kt) {
		t.Fatalf("shared device finished at %v, want >= %v", latest, 12*kt)
	}
	if d.Kernels != 12 {
		t.Fatalf("kernel count %d, want 12", d.Kernels)
	}
}

func TestEventElapsed(t *testing.T) {
	d := testDevice()
	s := d.NewStream("s")
	start := s.Record(0)
	l := StencilLaunch(64, 64, 64, 16, 8)
	d.Launch(0, s, "k", l, func() {})
	end := s.Record(0)
	kt, _ := KernelTime(d.Props, l)
	got := end.ElapsedSince(start)
	if got < kt*0.99 || got > kt*1.01+d.Props.KernelLaunchSec {
		t.Fatalf("event elapsed %v, kernel model %v", got, kt)
	}
	if end.At() <= start.At() {
		t.Fatal("event times not ordered")
	}
}
