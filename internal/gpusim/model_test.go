package gpusim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaunchGeometry(t *testing.T) {
	l := StencilLaunch(420, 420, 420, 32, 11)
	if l.GridX != 14 || l.GridY != 39 {
		t.Fatalf("grid %dx%d, want 14x39", l.GridX, l.GridY)
	}
	if l.ThreadsPerBlock() != 34*13 {
		t.Fatalf("tpb = %d", l.ThreadsPerBlock())
	}
	if l.Points != 420*420*420 {
		t.Fatalf("points = %d", l.Points)
	}
	if l.CoveredPoints() != 14*32*39*11*420 {
		t.Fatalf("covered = %d", l.CoveredPoints())
	}
	if l.SharedMemPerBlock() != 34*13*8 {
		t.Fatalf("smem = %d", l.SharedMemPerBlock())
	}
}

func TestValidateLimits(t *testing.T) {
	p := TeslaC1060()
	// 32x14 → 34*16 = 544 > 512 threads on C1060.
	if err := StencilLaunch(420, 420, 420, 32, 14).Validate(p); err == nil {
		t.Fatal("oversized block accepted")
	}
	if err := StencilLaunch(420, 420, 420, 32, 11).Validate(p); err != nil {
		t.Fatalf("paper's Lens block rejected: %v", err)
	}
	// 32x8 must fit the C2050 (paper's Yona block).
	if err := StencilLaunch(420, 420, 420, 32, 8).Validate(TeslaC2050()); err != nil {
		t.Fatalf("paper's Yona block rejected: %v", err)
	}
	if err := (Launch{}).Validate(p); err == nil {
		t.Fatal("zero launch accepted")
	}
}

func TestOccupancyBounds(t *testing.T) {
	prop := func(bx8, by8 uint8) bool {
		bx := int(bx8%127) + 2
		by := int(by8%31) + 1
		for _, p := range []Props{TeslaC1060(), TeslaC2050()} {
			l := StencilLaunch(420, 420, 420, bx, by)
			if l.ThreadsPerBlock() > p.MaxThreadsPerBlock {
				continue
			}
			occ := Occupancy(p, l)
			if occ < 0 || occ > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTimePositiveAndFinite(t *testing.T) {
	for _, p := range []Props{TeslaC1060(), TeslaC2050()} {
		for _, bx := range []int{16, 32, 64, 128} {
			for by := 1; by <= 14; by++ {
				l := StencilLaunch(420, 420, 420, bx, by)
				if l.Validate(p) != nil {
					continue
				}
				d, err := KernelTime(p, l)
				if err != nil {
					t.Fatalf("%s %dx%d: %v", p.Name, bx, by, err)
				}
				if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
					t.Fatalf("%s %dx%d: bad time %v", p.Name, bx, by, d)
				}
			}
		}
	}
}

// bestBlock sweeps the Figure 7/8 space and returns the argmax block.
func bestBlock(p Props) (bx, by int, gf float64) {
	for _, x := range []int{16, 32, 64, 128} {
		for y := 1; y <= 64; y++ {
			l := StencilLaunch(420, 420, 420, x, y)
			if l.Validate(p) != nil {
				continue
			}
			g, err := KernelGF(p, l)
			if err != nil {
				continue
			}
			if g > gf {
				bx, by, gf = x, y, g
			}
		}
	}
	return bx, by, gf
}

func TestFig7BestBlockXIsWarpSize(t *testing.T) {
	// Paper §V-C: "An x dimension of 32, the warp size, tends to provide
	// the best performance" on Lens (C1060).
	bx, by, gf := bestBlock(TeslaC1060())
	if bx != 32 {
		t.Fatalf("Lens best block %dx%d (%.1f GF), want x=32", bx, by, gf)
	}
	if by < 5 || by > 16 {
		t.Fatalf("Lens best y=%d outside the plausible plateau [5,16]", by)
	}
}

func TestFig8BestBlockXIsWarpSize(t *testing.T) {
	// Paper §V-C: best block on Yona (C2050) is 32×8.
	bx, by, gf := bestBlock(TeslaC2050())
	if bx != 32 {
		t.Fatalf("Yona best block %dx%d (%.1f GF), want x=32", bx, by, gf)
	}
	if by < 5 || by > 16 {
		t.Fatalf("Yona best y=%d outside the plausible plateau [5,16]", by)
	}
}

func TestSectionVECalibrationGPUResident(t *testing.T) {
	// Paper §V-E: "the best GPU-resident performance on Yona is 86 GF".
	_, _, gf := bestBlock(TeslaC2050())
	if gf < 78 || gf > 94 {
		t.Fatalf("Yona GPU-resident best = %.1f GF, want 86 ± 10%%", gf)
	}
	// Lens (C1060) peaks around 78·0.4 ≈ 30 GF; assert a generous band so
	// recalibration doesn't silently break the machine balance.
	_, _, lens := bestBlock(TeslaC1060())
	if lens < 22 || lens > 40 {
		t.Fatalf("Lens GPU-resident best = %.1f GF, want ≈30", lens)
	}
}

func TestYonaFasterThanLens(t *testing.T) {
	_, _, lens := bestBlock(TeslaC1060())
	_, _, yona := bestBlock(TeslaC2050())
	if yona <= 2*lens {
		t.Fatalf("Yona (%.1f) should be well over 2x Lens (%.1f)", yona, lens)
	}
}

func TestBlockX16SlowerThan32(t *testing.T) {
	// Half-warp rows pay coalescing on both devices: the best x=16 block
	// must trail the best x=32 block (Figures 7 and 8).
	for _, p := range []Props{TeslaC1060(), TeslaC2050()} {
		best := func(x int) float64 {
			g := 0.0
			for y := 1; y <= 64; y++ {
				l := StencilLaunch(420, 420, 420, x, y)
				if l.Validate(p) != nil {
					continue
				}
				if v, err := KernelGF(p, l); err == nil && v > g {
					g = v
				}
			}
			return g
		}
		if b16, b32 := best(16), best(32); b16 >= b32 {
			t.Fatalf("%s: best 16-wide (%.1f) >= best 32-wide (%.1f)", p.Name, b16, b32)
		}
	}
}

func TestPartitionEfficiency(t *testing.T) {
	p := TeslaC1060() // 8 partitions, weight 1
	if e := PartitionEfficiency(p, 32); e != 1 {
		t.Fatalf("32-wide partEff = %v, want 1", e)
	}
	if e := PartitionEfficiency(p, 64); e != 0.5 {
		t.Fatalf("64-wide partEff = %v, want 0.5", e)
	}
	if e := PartitionEfficiency(p, 128); e != 0.25 {
		t.Fatalf("128-wide partEff = %v, want 0.25", e)
	}
	// Disabled camping.
	none := p
	none.MemPartitions = 0
	if e := PartitionEfficiency(none, 128); e != 1 {
		t.Fatalf("disabled partEff = %v", e)
	}
	// Weighted camping interpolates toward 1.
	half := p
	half.CampingWeight = 0.5
	if e := PartitionEfficiency(half, 128); e != 1-0.5*0.75 {
		t.Fatalf("weighted partEff = %v", e)
	}
}

func TestKernelGFConsistent(t *testing.T) {
	p := TeslaC2050()
	l := StencilLaunch(420, 420, 420, 32, 8)
	d, err := KernelTime(p, l)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := KernelGF(p, l)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(l.Points) * 53 / d / 1e9
	if math.Abs(gf-want) > 1e-9 {
		t.Fatalf("GF inconsistent: %v vs %v", gf, want)
	}
}

func TestLinkCopyTime(t *testing.T) {
	l := Link{LatencySec: 1e-5, GBs: 2}
	if l.CopyTime(0) != 0 {
		t.Fatal("zero-byte copy should be free")
	}
	want := 1e-5 + 2e9/(2e9)
	if got := l.CopyTime(2_000_000_000); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CopyTime = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	l.CopyTime(-1)
}

func TestKernelTimeScalesWithWork(t *testing.T) {
	// Twice the z extent should take about twice as long.
	p := TeslaC2050()
	a, _ := KernelTime(p, StencilLaunch(420, 420, 210, 32, 8))
	b, _ := KernelTime(p, StencilLaunch(420, 420, 420, 32, 8))
	if r := b / a; r < 1.9 || r > 2.1 {
		t.Fatalf("z-scaling ratio %v, want ~2", r)
	}
}
