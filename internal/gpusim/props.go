// Package gpusim simulates the CUDA devices of the paper's GPU clusters.
// It provides device memory, constant memory, streams with CUDA ordering
// semantics, events, host↔device copies over a modelled PCIe link, and
// kernel launches with two-dimensional thread blocks. Kernels execute
// *functionally* (their Go body runs immediately, so results are real and
// testable) and are *charged* virtual time by a device performance model
// that accounts for warp granularity, occupancy, memory coalescing, tile
// halo redundancy, wave quantization, and double-precision throughput.
//
// The model's absolute rates are calibrated to the paper's reported
// numbers (§V-E: 86 GF GPU-resident on the Tesla C2050) rather than
// derived from first principles; the block-size response surface of
// Figures 7 and 8 emerges from the structural terms.
package gpusim

import "fmt"

// Props describes a CUDA device's execution resources and calibrated rates.
type Props struct {
	Name               string
	WarpSize           int
	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	SharedMemPerSM     int // bytes
	SMs                int

	PeakDPGFlops float64 // hardware double-precision peak
	DPEff        float64 // calibrated fraction of peak reachable by the
	// compiled stencil kernel (CUDA Fortran 10.x codegen, ECC, etc.)
	MemBWGBs float64 // global-memory bandwidth, GB/s
	OccSat   float64 // occupancy at which latency is fully hidden
	// MemIssueFlops is the flop-equivalent instruction-issue cost of one
	// fully-coalesced global-memory operation (LSU and DP unit share
	// issue bandwidth); uncoalesced accesses scale it up.
	MemIssueFlops float64
	// MemPartitions is the global-memory partition count for the
	// partition-camping model; 0 means a layout immune to camping.
	MemPartitions int
	// CampingWeight scales how strongly partition aliasing hurts: 1 for
	// GT200's linear interleave, lower for Fermi's partial hashing.
	CampingWeight float64

	ConcurrentKernels bool // Fermi can overlap kernels from two streams
	CopyEngines       int  // independent DMA engines (1 = half duplex)

	KernelLaunchSec float64 // host-side cost to launch a kernel
	GlobalMemBytes  int64   // device memory capacity
}

// EffectiveDPGFlops returns the calibrated double-precision ceiling.
func (p Props) EffectiveDPGFlops() float64 { return p.PeakDPGFlops * p.DPEff }

// TeslaC1060 returns the GT200-class device of the Lens cluster
// (paper Table II: 4 GB, CUDA cc13).
func TeslaC1060() Props {
	return Props{
		Name:               "Tesla C1060",
		WarpSize:           32,
		MaxThreadsPerBlock: 512,
		MaxThreadsPerSM:    1024,
		MaxBlocksPerSM:     8,
		SharedMemPerSM:     16 * 1024,
		SMs:                30,
		PeakDPGFlops:       78,
		DPEff:              0.70,
		MemBWGBs:           102,
		OccSat:             0.75,
		MemIssueFlops:      10,
		MemPartitions:      8,
		CampingWeight:      1.0,
		ConcurrentKernels:  false,
		CopyEngines:        1,
		KernelLaunchSec:    7e-6,
		GlobalMemBytes:     4 << 30,
	}
}

// TeslaC2050 returns the Fermi-class device of the Yona cluster
// (paper Table II: 3 GB, CUDA cc20).
func TeslaC2050() Props {
	return Props{
		Name:               "Tesla C2050",
		WarpSize:           32,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    1536,
		MaxBlocksPerSM:     8,
		SharedMemPerSM:     48 * 1024,
		SMs:                14,
		PeakDPGFlops:       515,
		DPEff:              0.25,
		MemBWGBs:           144,
		OccSat:             0.85,
		MemIssueFlops:      6,
		MemPartitions:      6,
		CampingWeight:      0.35,
		ConcurrentKernels:  true,
		CopyEngines:        2,
		KernelLaunchSec:    5e-6,
		GlobalMemBytes:     3 << 30,
	}
}

// Link models the PCIe connection between host memory and the device.
type Link struct {
	Name       string
	LatencySec float64 // per-transfer setup latency
	GBs        float64 // sustained bandwidth
}

// CopyTime returns the modelled duration of one transfer of the given size.
func (l Link) CopyTime(bytes int) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("gpusim: negative copy size %d", bytes))
	}
	if bytes == 0 {
		return 0
	}
	return l.LatencySec + float64(bytes)/(l.GBs*1e9)
}

// PCIeGen1 is the slower bus of the Lens cluster.
func PCIeGen1() Link { return Link{Name: "PCIe (Lens)", LatencySec: 15e-6, GBs: 1.5} }

// PCIeGen2 is the faster bus of the Yona cluster ("a faster PCIe bus
// connecting the GPUs to the CPUs", paper §III).
func PCIeGen2() Link { return Link{Name: "PCIe (Yona)", LatencySec: 8e-6, GBs: 3.0} }
