package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/stats"
)

// The paper's conclusions (§VI) sketch three what-ifs it could not measure
// in 2011. The models can: these extension experiments go beyond the
// paper's figures and are marked as such in EXPERIMENTS.md.

// Extensions returns the beyond-the-paper experiments.
func Extensions() []Experiment {
	return []Experiment{
		{
			ID:       "ext-pcie",
			Title:    "What if CPU-GPU communication were faster?",
			PaperRef: "Section VI (conjecture)",
			Expect:   "\"an architecture with faster, lower-latency CPU-GPU communication could have a performance profile significantly different\" — F and G close in on I",
			Run:      runExtPCIe,
		},
		{
			ID:       "ext-gpus",
			Title:    "What if nodes had more GPUs per node?",
			PaperRef: "Section VI (conjecture)",
			Expect:   "\"a computer tuned for our test might have ... a larger number of GPUs\" — hybrid throughput scales with the GPU count",
			Run:      runExtGPUs,
		},
		{
			ID:       "convergence",
			Title:    "Numerical convergence ladder",
			PaperRef: "Section II (method order)",
			Expect:   "L2 error falls ~4x per resolution doubling: observed order -> 2",
			Run:      runConvergence,
		},
		{
			ID:       "ext-wide",
			Title:    "Communication avoidance: wide halos (extension implementation)",
			PaperRef: "beyond the paper (motivated by Figs. 3-4)",
			Expect:   "redundant computation loses in the paper's range, wins ~10-27% at full-machine scale where latency dominates",
			Run:      runExtWide,
		},
		{
			ID:       "ext-weak",
			Title:    "Weak scaling (the regime the paper excludes)",
			PaperRef: "Section II (strong-scaling rationale)",
			Expect:   "with the per-core problem held fixed, parallel efficiency stays near 1 and MPI overlap stays profitable at every scale",
			Run:      runExtWeak,
		},
	}
}

// PCIeSpeedups is the link-speed sweep of ext-pcie.
func PCIeSpeedups() []float64 { return []float64{1, 2, 4, 8} }

// fasterYona returns Yona with its CPU-GPU paths sped up by factor f:
// bandwidths multiplied, latencies divided.
func fasterYona(f float64) *machine.Machine {
	m := machine.Yona()
	// Copy the GPUPath so the shared template is not mutated.
	gp := *m.GPU
	gp.Link.GBs *= f
	gp.Link.LatencySec /= f
	gp.PageableGBs *= f
	gp.ShmMPIGBs *= f
	gp.PhaseSyncSec /= f
	m.GPU = &gp
	return m
}

// ExtPCIe returns, per speedup factor, the best single-node GF of the four
// GPU implementations.
func ExtPCIe() []stats.Series {
	kinds := []core.Kind{core.GPUBulkSync, core.GPUStreams, core.HybridBulkSync, core.HybridOverlap}
	var out []stats.Series
	for _, k := range kinds {
		s := stats.Series{Label: k.String()}
		for _, f := range PCIeSpeedups() {
			m := fasterYona(f)
			if e, ok := bestConfig(m, k, 12); ok {
				s.Add(f, e.GF, "")
			}
		}
		out = append(out, s)
	}
	return out
}

func runExtPCIe(w io.Writer) error {
	series := ExtPCIe()
	t := stats.SeriesTable("CPU-GPU speedup", series)
	t.Render(w)
	fmt.Fprintln(w)
	// How much of the hybrid advantage survives each speedup?
	var g, i stats.Series
	for _, s := range series {
		switch s.Label {
		case core.GPUStreams.String():
			g = s
		case core.HybridOverlap.String():
			i = s
		}
	}
	for idx := range g.X {
		fmt.Fprintf(w, "speedup %gx: hybrid-overlap / gpu-streams = %.2f\n",
			g.X[idx], i.Y[idx]/g.Y[idx])
	}
	fmt.Fprintln(w, "\nthe hybrid implementation's edge is a property of slow CPU-GPU paths;")
	fmt.Fprintln(w, "faster interconnects (the NVLink future) shrink it, as §VI anticipates.")
	return nil
}

// GPUCounts is the GPUs-per-node sweep of ext-gpus.
func GPUCounts() []int { return []int{1, 2, 4} }

// ExtGPUs returns, per GPUs-per-node count, the best Yona-cluster GF of the
// GPU implementations at full machine scale.
func ExtGPUs() []stats.Series {
	kinds := []core.Kind{core.GPUStreams, core.HybridOverlap}
	var out []stats.Series
	for _, k := range kinds {
		s := stats.Series{Label: k.String()}
		for _, n := range GPUCounts() {
			m := machine.Yona()
			m.GPUsPerNode = n
			if e, ok := bestConfig(m, k, 192); ok {
				s.Add(float64(n), e.GF, fmt.Sprintf("t=%d", e.Config.Threads))
			}
		}
		out = append(out, s)
	}
	return out
}

func runExtGPUs(w io.Writer) error {
	series := ExtGPUs()
	t := stats.SeriesTable("GPUs per node", series)
	t.Render(w)
	fmt.Fprintln(w, "\n192 cores of Yona: with more GPUs per node the hybrid implementation")
	fmt.Fprintln(w, "converts the idle CPU cores per GPU into device throughput — the")
	fmt.Fprintln(w, "machine-balance shift §VI predicts.")
	return nil
}

// WeakGrid returns the cube edge that keeps the per-core load of the
// paper's 420³/12-core baseline when running on the given cores.
func WeakGrid(cores int) int {
	base := 420.0 * math.Cbrt(float64(cores)/12.0)
	n := int(math.Round(base/2) * 2) // even, for tidy decompositions
	if n < 12 {
		n = 12
	}
	return n
}

// ExtWeak returns bulk and nonblocking efficiency series under weak
// scaling on Hopper II.
func ExtWeak() []stats.Series {
	hop := machine.HopperII()
	counts := []int{24, 192, 1536, 12288}
	kinds := []core.Kind{core.BulkSync, core.NonblockingOverlap}
	var out []stats.Series
	for _, k := range kinds {
		s := stats.Series{Label: k.String() + " GF/core"}
		for _, cores := range counts {
			n := WeakGrid(cores)
			bestGF := 0.0
			for _, t := range hop.ThreadChoices {
				if cores%t != 0 {
					continue
				}
				e, err := perf.Evaluate(perf.Config{
					M: hop, Kind: k, Cores: cores, Threads: t,
					N: grid.Uniform(n),
				})
				if err == nil && e.GF > bestGF {
					bestGF = e.GF
				}
			}
			s.Add(float64(cores), bestGF/float64(cores), fmt.Sprintf("n=%d", n))
		}
		out = append(out, s)
	}
	return out
}

func runExtWeak(w io.Writer) error {
	series := ExtWeak()
	t := stats.SeriesTable("cores", series)
	t.Render(w)
	fmt.Fprintln(w, "\nunder weak scaling the per-core rate barely falls and the overlap")
	fmt.Fprintln(w, "implementation keeps its edge at every scale — the crossovers of")
	fmt.Fprintln(w, "Figures 3-4 are artifacts of strong scaling, which the paper chose")
	fmt.Fprintln(w, "because climate grids cannot grow with the machine (§II).")
	return nil
}

// WideHaloCores is the core-count sweep of ext-wide: the full Hopper II
// machine, beyond the paper's plotted range.
func WideHaloCores() []int { return []int{1536, 12288, 49152, 98304, 153408} }

// ExtWideHalo returns bulk vs wide-halo series on Hopper II (best over
// threads), widths 2 and 3.
func ExtWideHalo() []stats.Series {
	hop := machine.HopperII()
	configs := []struct {
		label string
		kind  core.Kind
		width int
	}{
		{"bulk (W=1)", core.BulkSync, 1},
		{"wide halo W=2", core.WideHaloExt, 2},
		{"wide halo W=3", core.WideHaloExt, 3},
	}
	var out []stats.Series
	for _, cfg := range configs {
		s := stats.Series{Label: cfg.label}
		for _, cores := range WideHaloCores() {
			if cores > hop.Cores() {
				continue
			}
			bestGF, bestT := 0.0, 0
			for _, t := range hop.ThreadChoices {
				if cores%t != 0 {
					continue
				}
				e, err := perf.Evaluate(perf.Config{
					M: hop, Kind: cfg.kind, Cores: cores, Threads: t, HaloWidth: cfg.width,
				})
				if err == nil && e.GF > bestGF {
					bestGF, bestT = e.GF, t
				}
			}
			if bestGF > 0 {
				s.Add(float64(cores), bestGF, fmt.Sprintf("t=%d", bestT))
			}
		}
		out = append(out, s)
	}
	return out
}

func runExtWide(w io.Writer) error {
	series := ExtWideHalo()
	t := stats.SeriesTable("cores", series)
	t.Render(w)
	fmt.Fprintln(w, "\nthe communication-avoiding trade — W-fold fewer messages for")
	fmt.Fprintln(w, "O(surface·W²) redundant flops — loses throughout the paper's plotted")
	fmt.Fprintln(w, "range (Figs. 3-4) and only pays once latency dominates: the full")
	fmt.Fprintln(w, "Hopper II machine, where W=2 gains ~10% at 153k cores (up to ~27%")
	fmt.Fprintln(w, "at one thread per task). The paper's finding that overlap stops")
	fmt.Fprintln(w, "helping at scale does not mean communication cost stops mattering —")
	fmt.Fprintln(w, "it means hiding gives way to avoiding.")
	return nil
}

// Convergence runs the resolution ladder validating the numerics behind
// the whole study (§II: the method is O(Δ²) for fixed simulated time).
func Convergence() (stats.Table, error) {
	t := stats.Table{Header: []string{"grid", "steps", "L2 error", "observed order"}}
	c := grid.Velocity{X: 0.8, Y: 0.4, Z: 0.2}
	prevL2 := 0.0
	prevN := 0
	for _, n := range []int{12, 24, 48} {
		p := core.Problem{
			N: grid.Uniform(n), C: c, Steps: n / 2,
			Wave: grid.Gaussian{
				Center: [3]float64{float64(n) / 2, float64(n) / 2, float64(n) / 2},
				Sigma:  float64(n) / 8,
			},
		}
		r, err := core.New(core.SingleTask)
		if err != nil {
			return t, err
		}
		res, err := r.Run(p, core.Options{Threads: 2, Verify: true})
		if err != nil {
			return t, err
		}
		order := ""
		if prevL2 > 0 {
			order = fmt.Sprintf("%.2f", math.Log(prevL2/res.Norms.L2)/math.Log(float64(n)/float64(prevN)))
		}
		t.AddRow(fmt.Sprintf("%d^3", n), fmt.Sprint(p.Steps),
			fmt.Sprintf("%.3e", res.Norms.L2), order)
		prevL2, prevN = res.Norms.L2, n
	}
	return t, nil
}

func runConvergence(w io.Writer) error {
	t, err := Convergence()
	if err != nil {
		return err
	}
	t.Render(w)
	fmt.Fprintln(w, "\nthe observed order approaches 2, the paper's O(Δ²) claim for a fixed")
	fmt.Fprintln(w, "simulated time; at Courant number 1 the scheme is exact (see the")
	fmt.Fprintln(w, "stencil package's pure-shift tests).")
	return nil
}
