package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	_ "repro/internal/impl"
	"repro/internal/machine"
	"repro/internal/stats"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: no output", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"table1", "fig3", "fig12", "sectionVE", "verify"} {
		e, err := ByID(id)
		if err != nil || e.ID != id {
			t.Fatalf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestExperimentCoverage(t *testing.T) {
	// Every table and figure of the paper must have an experiment.
	want := []string{
		"table1", "table2",
		"fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"sectionVE", "verify",
		"ext-pcie", "ext-gpus", "ext-weak", "ext-wide", "convergence",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if len(have) != len(want) {
		t.Fatalf("experiment count %d, want %d", len(have), len(want))
	}
}

func TestCoreCounts(t *testing.T) {
	for _, m := range machine.All() {
		counts := CoreCounts(m)
		if len(counts) == 0 {
			t.Fatalf("%s: no core counts", m.Name)
		}
		prev := 0
		for _, c := range counts {
			if c <= prev {
				t.Fatalf("%s: counts not increasing: %v", m.Name, counts)
			}
			if c > m.Cores() {
				t.Fatalf("%s: count %d exceeds machine (%d cores)", m.Name, c, m.Cores())
			}
			prev = c
		}
	}
}

func TestBestPerImplSeries(t *testing.T) {
	s := BestPerImpl(machine.Yona(), ClusterKinds())
	if len(s) != len(ClusterKinds()) {
		t.Fatalf("%d series, want %d", len(s), len(ClusterKinds()))
	}
	for _, ser := range s {
		if len(ser.X) != len(CoreCounts(machine.Yona())) {
			t.Fatalf("%s: %d points, want %d", ser.Label, len(ser.X), len(CoreCounts(machine.Yona())))
		}
		for i := 1; i < len(ser.Y); i++ {
			if ser.Y[i] <= 0 {
				t.Fatalf("%s: non-positive GF", ser.Label)
			}
		}
	}
}

func TestThreadSweepSkipsIndivisible(t *testing.T) {
	for _, s := range ThreadSweep(machine.HopperII()) {
		for i, x := range s.X {
			_ = i
			if int(x)%threadsOf(s.Label) != 0 {
				t.Fatalf("series %q has indivisible core count %v", s.Label, x)
			}
		}
	}
}

func threadsOf(label string) int {
	n := 0
	for _, r := range label {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	if n == 0 {
		return 1
	}
	return n
}

func TestBlockSweepRespectsDeviceLimits(t *testing.T) {
	lens := machine.Lens().GPU.Props // max 512 threads/block
	for _, s := range BlockSweep(lens) {
		if strings.HasPrefix(s.Label, "x=32") {
			// (32+2)(y+2) <= 512 -> y <= 13
			for _, y := range s.X {
				if y > 13 {
					t.Fatalf("y=%v exceeds the C1060 limit for x=32", y)
				}
			}
		}
	}
}

func TestHybridCombosWinnersOnly(t *testing.T) {
	combos := HybridCombos(machine.Yona())
	if len(combos) == 0 {
		t.Fatal("no combos")
	}
	// Paper Fig 12: the winning combos on Yona use few tasks per node.
	for _, s := range combos {
		if !strings.Contains(s.Label, "threads") {
			t.Fatalf("bad label %q", s.Label)
		}
	}
}

func TestSectionVETable(t *testing.T) {
	tbl, err := SectionVE()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
}

func TestVerifyTable(t *testing.T) {
	tbl, err := Verify(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(core.Kinds()) {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), len(core.Kinds()))
	}
}

func TestTableIHas27Rows(t *testing.T) {
	tbl := TableI()
	if len(tbl.Rows) != 27 {
		t.Fatalf("%d rows, want 27", len(tbl.Rows))
	}
}

func TestTableIIHasFourMachines(t *testing.T) {
	tbl := TableII()
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	var joined string
	for _, r := range tbl.Rows {
		joined += strings.Join(r, " ") + "\n"
	}
	for _, want := range []string{"JaguarPF", "Hopper II", "Lens", "Yona", "Tesla C1060", "Tesla C2050", "18688", "6392"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Table II missing %q", want)
		}
	}
}

func TestBestBlockMatchesPaper(t *testing.T) {
	if x, y := BestBlock(machine.Lens()); x != 32 || y != 11 {
		t.Fatalf("Lens block %dx%d, want 32x11", x, y)
	}
	if x, y := BestBlock(machine.Yona()); x != 32 || y != 8 {
		t.Fatalf("Yona block %dx%d, want 32x8", x, y)
	}
}

func TestExtPCIeShapes(t *testing.T) {
	series := ExtPCIe()
	var g, i *stats.Series
	for idx := range series {
		switch series[idx].Label {
		case "gpu-streams":
			g = &series[idx]
		case "hybrid-overlap":
			i = &series[idx]
		}
	}
	if g == nil || i == nil {
		t.Fatal("missing series")
	}
	// The stream implementation gains strongly from a faster link...
	if g.Y[len(g.Y)-1] < 1.8*g.Y[0] {
		t.Fatalf("streams should gain from faster PCIe: %v", g.Y)
	}
	// ...and the hybrid advantage collapses toward parity.
	first := i.Y[0] / g.Y[0]
	last := i.Y[len(i.Y)-1] / g.Y[len(g.Y)-1]
	if first < 2 {
		t.Fatalf("baseline hybrid advantage %.2f, want >= 2", first)
	}
	if last > 1.3 {
		t.Fatalf("hybrid advantage should shrink below 1.3x with fast links, got %.2f", last)
	}
}

func TestExtGPUsShapes(t *testing.T) {
	for _, s := range ExtGPUs() {
		if len(s.Y) < 2 {
			t.Fatalf("%s: too few points", s.Label)
		}
		if s.Y[1] <= s.Y[0] {
			t.Fatalf("%s: a second GPU per node should help (%v)", s.Label, s.Y)
		}
	}
}

func TestExtWeakEfficiencyFlat(t *testing.T) {
	for _, s := range ExtWeak() {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last < 0.9*first {
			t.Fatalf("%s: weak-scaling efficiency fell from %.3g to %.3g", s.Label, first, last)
		}
	}
}

func TestWeakGrid(t *testing.T) {
	if WeakGrid(12) != 420 {
		t.Fatalf("WeakGrid(12) = %d, want 420", WeakGrid(12))
	}
	if WeakGrid(96) <= WeakGrid(12) {
		t.Fatal("weak grid must grow with cores")
	}
	if WeakGrid(96)%2 != 0 {
		t.Fatal("weak grid should be even")
	}
}

func TestDataAccessor(t *testing.T) {
	for _, id := range []string{"fig3", "fig7", "fig12"} {
		s, x, ok := Data(id)
		if !ok || len(s) == 0 || x == "" {
			t.Fatalf("Data(%s) empty", id)
		}
	}
	if _, _, ok := Data("table1"); ok {
		t.Fatal("table experiment should have no series data")
	}
}

func TestExtWideHaloCrossover(t *testing.T) {
	series := ExtWideHalo()
	var bulk, w2 *stats.Series
	for i := range series {
		switch series[i].Label {
		case "bulk (W=1)":
			bulk = &series[i]
		case "wide halo W=2":
			w2 = &series[i]
		}
	}
	if bulk == nil || w2 == nil {
		t.Fatal("missing series")
	}
	find := func(s *stats.Series, x float64) float64 {
		for i := range s.X {
			if s.X[i] == x {
				return s.Y[i]
			}
		}
		t.Fatalf("%s missing x=%v", s.Label, x)
		return 0
	}
	// In the paper's plotted range, bulk wins.
	if find(w2, 1536) >= find(bulk, 1536) {
		t.Fatal("wide halo should lose at 1536 cores")
	}
	// At full-machine scale, wide halo wins clearly.
	if find(w2, 153408) < 1.1*find(bulk, 153408) {
		t.Fatalf("wide halo should win >=10%% at 153k cores: %v vs %v",
			find(w2, 153408), find(bulk, 153408))
	}
}

func TestConvergenceOrder(t *testing.T) {
	tbl, err := Convergence()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	order := last[len(last)-1]
	var p float64
	if _, err := fmt.Sscanf(order, "%f", &p); err != nil {
		t.Fatalf("bad order cell %q", order)
	}
	if p < 1.7 || p > 2.3 {
		t.Fatalf("observed order %v, want ~2", p)
	}
}
