package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/loc"
	"repro/internal/machine"
	"repro/internal/stats"
)

// All returns every experiment: the paper's tables and figures in order,
// followed by the beyond-the-paper extensions of Section VI's conjectures.
func All() []Experiment {
	exps := paperExperiments()
	return append(exps, Extensions()...)
}

func paperExperiments() []Experiment {
	return []Experiment{
		{
			ID:       "table1",
			Title:    "Stencil coefficients a_ijk",
			PaperRef: "Table I",
			Expect:   "27 coefficients; tensor product of 1-D Lax-Wendroff stencils; sum = 1",
			Run: func(w io.Writer) error {
				t := TableI()
				t.Render(w)
				return nil
			},
		},
		{
			ID:       "table2",
			Title:    "Technical details of tested computers",
			PaperRef: "Table II",
			Expect:   "four machines: JaguarPF, Hopper II, Lens (C1060), Yona (C2050)",
			Run: func(w io.Writer) error {
				t := TableII()
				t.Render(w)
				return nil
			},
		},
		{
			ID:       "fig2",
			Title:    "Lines of code per implementation",
			PaperRef: "Figure 2",
			Expect:   "MPI adds 57-73%; single GPU +6%; full overlap exactly 4x single task (860 vs 215)",
			Run:      runFig2,
		},
		{
			ID:       "fig3",
			Title:    "JaguarPF: best performance of each implementation",
			PaperRef: "Figure 3",
			Expect:   "nonblocking slightly ahead below ~4000 cores; bulk ahead at 6000+; threaded overlap lags",
			Run: func(w io.Writer) error {
				s := BestPerImpl(machine.JaguarPF(), CPUKinds())
				renderFigure(w, "cores", s, "JaguarPF GF vs cores")
				return nil
			},
		},
		{
			ID:       "fig4",
			Title:    "Hopper II: best performance of each implementation",
			PaperRef: "Figure 4",
			Expect:   "same shape as Fig 3 with the crossover an order of magnitude later",
			Run: func(w io.Writer) error {
				s := BestPerImpl(machine.HopperII(), CPUKinds())
				renderFigure(w, "cores", s, "Hopper II GF vs cores")
				return nil
			},
		},
		{
			ID:       "fig5",
			Title:    "JaguarPF: bulk-synchronous, threads per task sweep",
			PaperRef: "Figure 5",
			Expect:   "best threads/task generally increases with core count",
			Run: func(w io.Writer) error {
				s := ThreadSweep(machine.JaguarPF())
				renderFigure(w, "cores", s, "JaguarPF bulk-sync GF vs cores by threads/task")
				return nil
			},
		},
		{
			ID:       "fig6",
			Title:    "Hopper II: bulk-synchronous, threads per task sweep",
			PaperRef: "Figure 6",
			Expect:   "varies more than JaguarPF; 24 threads/task never optimal",
			Run: func(w io.Writer) error {
				s := ThreadSweep(machine.HopperII())
				renderFigure(w, "cores", s, "Hopper II bulk-sync GF vs cores by threads/task")
				return nil
			},
		},
		{
			ID:       "fig7",
			Title:    "Lens: GPU-resident performance by block size",
			PaperRef: "Figure 7",
			Expect:   "x = 32 (warp size) best; paper's best block 32x11",
			Run: func(w io.Writer) error {
				s := BlockSweep(machine.Lens().GPU.Props)
				renderFigure(w, "block y", s, "Lens (Tesla C1060) GF vs block size")
				return reportBest(w, s)
			},
		},
		{
			ID:       "fig8",
			Title:    "Yona: GPU-resident performance by block size",
			PaperRef: "Figure 8",
			Expect:   "x = 32 best; paper's best block 32x8 at 86 GF",
			Run: func(w io.Writer) error {
				s := BlockSweep(machine.Yona().GPU.Props)
				renderFigure(w, "block y", s, "Yona (Tesla C2050) GF vs block size")
				return reportBest(w, s)
			},
		},
		{
			ID:       "fig9",
			Title:    "Lens: best performance of each implementation (1 GPU / 16 cores)",
			PaperRef: "Figure 9",
			Expect:   "GPU impls gain greatly from overlap; best CPU-GPU exceeds best-CPU + best-GPU",
			Run: func(w io.Writer) error {
				s := BestPerImpl(machine.Lens(), ClusterKinds())
				renderFigure(w, "cores", s, "Lens GF vs cores")
				return nil
			},
		},
		{
			ID:       "fig10",
			Title:    "Yona: best performance of each implementation (1 GPU / 12 cores)",
			PaperRef: "Figure 10",
			Expect:   "best CPU-GPU more than 4x best CPU-only",
			Run: func(w io.Writer) error {
				s := BestPerImpl(machine.Yona(), ClusterKinds())
				renderFigure(w, "cores", s, "Yona GF vs cores")
				return nil
			},
		},
		{
			ID:       "fig11",
			Title:    "Lens: CPU-GPU overlap by threads/task and box thickness",
			PaperRef: "Figure 11",
			Expect:   "few tasks per node best; best box width decreases with core count",
			Run: func(w io.Writer) error {
				s := HybridCombos(machine.Lens())
				renderFigure(w, "cores", s, "Lens hybrid-overlap GF vs cores by (threads, width)")
				return nil
			},
		},
		{
			ID:       "fig12",
			Title:    "Yona: CPU-GPU overlap by threads/task and box thickness",
			PaperRef: "Figure 12",
			Expect:   "best thickness often just 1 — load balance is not the key feature",
			Run: func(w io.Writer) error {
				s := HybridCombos(machine.Yona())
				renderFigure(w, "cores", s, "Yona hybrid-overlap GF vs cores by (threads, width)")
				return nil
			},
		},
		{
			ID:       "sectionVE",
			Title:    "Yona single-node anchors",
			PaperRef: "Section V-E",
			Expect:   "GPU-resident 86, F 24, G 35, I 82 GF",
			Run: func(w io.Writer) error {
				t, err := SectionVE()
				if err != nil {
					return err
				}
				t.Render(w)
				return nil
			},
		},
		{
			ID:       "verify",
			Title:    "Functional verification of all nine implementations",
			PaperRef: "Section IV-A (norm recording)",
			Expect:   "all implementations agree with the analytic solution and conserve mass",
			Run: func(w io.Writer) error {
				t, err := Verify(20, 4, 4)
				if err != nil {
					return err
				}
				t.Render(w)
				return nil
			},
		},
	}
}

// Data returns the raw series behind a figure experiment, for export or
// plotting with external tools; ok is false for the table experiments.
// The second return is the x-axis name.
func Data(id string) (series []stats.Series, xName string, ok bool) {
	switch id {
	case "fig3":
		return BestPerImpl(machine.JaguarPF(), CPUKinds()), "cores", true
	case "fig4":
		return BestPerImpl(machine.HopperII(), CPUKinds()), "cores", true
	case "fig5":
		return ThreadSweep(machine.JaguarPF()), "cores", true
	case "fig6":
		return ThreadSweep(machine.HopperII()), "cores", true
	case "fig7":
		return BlockSweep(machine.Lens().GPU.Props), "blocky", true
	case "fig8":
		return BlockSweep(machine.Yona().GPU.Props), "blocky", true
	case "fig9":
		return BestPerImpl(machine.Lens(), ClusterKinds()), "cores", true
	case "fig10":
		return BestPerImpl(machine.Yona(), ClusterKinds()), "cores", true
	case "fig11":
		return HybridCombos(machine.Lens()), "cores", true
	case "fig12":
		return HybridCombos(machine.Yona()), "cores", true
	}
	return nil, "", false
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

func runFig2(w io.Writer) error {
	rows, err := loc.Figure2()
	if err != nil {
		return err
	}
	t := stats.Table{Header: []string{"implementation", "section", "paper Fortran LoC", "stated", "this repo Go LoC"}}
	for _, r := range rows {
		exact := "interpolated"
		if r.PaperExact {
			exact = "stated"
		}
		ours := "-"
		if r.Ours > 0 {
			ours = fmt.Sprint(r.Ours)
		}
		t.AddRow(r.Kind.String(), r.Kind.Section(), fmt.Sprint(r.Paper), exact, ours)
	}
	t.Render(w)
	single, _ := loc.PaperLoC(core.SingleTask)
	full, _ := loc.PaperLoC(core.HybridOverlap)
	fmt.Fprintf(w, "\npaper ratio full-overlap / single-task: %.2fx (text: exactly 4x, 860 vs 215)\n",
		float64(full)/float64(single))
	return nil
}

func reportBest(w io.Writer, series []stats.Series) error {
	bestGF, bestLabel, bestY := 0.0, "", 0.0
	for _, s := range series {
		if gf, i := s.Max(); i >= 0 && gf > bestGF {
			bestGF, bestLabel, bestY = gf, s.Label, s.X[i]
		}
	}
	fmt.Fprintf(w, "\nbest block: %s, y=%s -> %.1f GF\n", bestLabel, stats.FormatNum(bestY), bestGF)
	return nil
}
