// Package harness defines one reproducible experiment per table and figure
// of the paper's evaluation, built on the perf models (for machine-scale
// results), the gpusim device model (for the block-size sweeps), the
// functional implementations (for verification), and the loc counter
// (Figure 2). Each experiment renders the same rows or series the paper
// reports, as aligned text tables plus an ASCII chart.
package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/gpusim"
	_ "repro/internal/impl" // register the implementations Verify runs
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/stats"
	"repro/internal/stencil"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID       string // e.g. "fig3"
	Title    string
	PaperRef string // the paper element reproduced
	Expect   string // the shape the paper reports
	Run      func(w io.Writer) error
}

// CoreCounts returns the core counts swept for a machine's figures.
func CoreCounts(m *machine.Machine) []int {
	switch m.Name {
	case "JaguarPF":
		return []int{12, 48, 192, 768, 1536, 3072, 6144, 12288}
	case "Hopper II":
		return []int{24, 96, 384, 1536, 6144, 12288, 24576, 49152}
	case "Lens":
		return []int{16, 32, 64, 128, 256, 496}
	case "Yona":
		return []int{12, 24, 48, 96, 192}
	}
	return nil
}

// bestConfig returns the best estimate over the machine's thread choices
// (and, for hybrid implementations, box thicknesses).
func bestConfig(m *machine.Machine, k core.Kind, cores int) (perf.Estimate, bool) {
	var best perf.Estimate
	found := false
	thicks := []int{1}
	if k == core.HybridBulkSync || k == core.HybridOverlap {
		thicks = Thicknesses()
	}
	bx, by := BestBlock(m)
	for _, t := range m.ThreadChoices {
		if cores%t != 0 {
			continue
		}
		for _, w := range thicks {
			e, err := perf.Evaluate(perf.Config{
				M: m, Kind: k, Cores: cores, Threads: t,
				BoxThickness: w, BlockX: bx, BlockY: by,
			})
			if err != nil {
				continue
			}
			if !found || e.GF > best.GF {
				best, found = e, true
			}
		}
	}
	return best, found
}

// Thicknesses is the box-thickness sweep of Figures 11 and 12.
func Thicknesses() []int { return []int{1, 2, 3, 5, 8, 12} }

// BestBlock returns the GPU block used for a machine's parallel GPU
// experiments: the paper's 32×11 on Lens and 32×8 on Yona.
func BestBlock(m *machine.Machine) (int, int) {
	if m.Name == "Lens" {
		return 32, 11
	}
	return 32, 8
}

// BestPerImpl builds one series per implementation: best GF over tuning
// parameters at each core count (the construction of Figures 3, 4, 9, 10).
func BestPerImpl(m *machine.Machine, kinds []core.Kind) []stats.Series {
	var out []stats.Series
	for _, k := range kinds {
		s := stats.Series{Label: k.String()}
		for _, cores := range CoreCounts(m) {
			if e, ok := bestConfig(m, k, cores); ok {
				note := fmt.Sprintf("t=%d", e.Config.Threads)
				if k == core.HybridBulkSync || k == core.HybridOverlap {
					note += fmt.Sprintf(",w=%d", e.Config.BoxThickness)
				}
				s.Add(float64(cores), e.GF, note)
			}
		}
		out = append(out, s)
	}
	return out
}

// ThreadSweep builds one series per threads-per-task choice for the
// bulk-synchronous implementation (Figures 5 and 6).
func ThreadSweep(m *machine.Machine) []stats.Series {
	var out []stats.Series
	for _, t := range m.ThreadChoices {
		s := stats.Series{Label: fmt.Sprintf("%d threads/task", t)}
		for _, cores := range CoreCounts(m) {
			if cores%t != 0 {
				continue
			}
			e, err := perf.Evaluate(perf.Config{M: m, Kind: core.BulkSync, Cores: cores, Threads: t})
			if err != nil {
				continue
			}
			s.Add(float64(cores), e.GF, "")
		}
		out = append(out, s)
	}
	return out
}

// BlockSweep builds one series per block x dimension of the GPU-resident
// kernel model (Figures 7 and 8).
func BlockSweep(p gpusim.Props) []stats.Series {
	var out []stats.Series
	for _, bx := range []int{16, 32, 64, 128} {
		s := stats.Series{Label: fmt.Sprintf("x=%d", bx)}
		for by := 1; by <= 64; by++ {
			l := gpusim.StencilLaunch(420, 420, 420, bx, by)
			if l.Validate(p) != nil {
				continue
			}
			gf, err := gpusim.KernelGF(p, l)
			if err != nil {
				continue
			}
			s.Add(float64(by), gf, "")
		}
		if len(s.X) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// HybridCombos builds the Figure 11/12 series: for each (threads, box
// thickness) combination that is the best at one or more core counts, the
// full curve of the hybrid-overlap implementation.
func HybridCombos(m *machine.Machine) []stats.Series {
	bx, by := BestBlock(m)
	type combo struct{ t, w int }
	wins := map[combo]bool{}
	for _, cores := range CoreCounts(m) {
		var bestC combo
		bestGF := 0.0
		for _, t := range m.ThreadChoices {
			if cores%t != 0 {
				continue
			}
			for _, w := range Thicknesses() {
				e, err := perf.Evaluate(perf.Config{
					M: m, Kind: core.HybridOverlap, Cores: cores, Threads: t,
					BoxThickness: w, BlockX: bx, BlockY: by,
				})
				if err == nil && e.GF > bestGF {
					bestGF = e.GF
					bestC = combo{t, w}
				}
			}
		}
		if bestGF > 0 {
			wins[bestC] = true
		}
	}
	var combos []combo
	for c := range wins {
		combos = append(combos, c)
	}
	sort.Slice(combos, func(i, j int) bool {
		if combos[i].t != combos[j].t {
			return combos[i].t < combos[j].t
		}
		return combos[i].w < combos[j].w
	})
	var out []stats.Series
	for _, c := range combos {
		s := stats.Series{Label: fmt.Sprintf("%d threads, width %d", c.t, c.w)}
		for _, cores := range CoreCounts(m) {
			if cores%c.t != 0 {
				continue
			}
			e, err := perf.Evaluate(perf.Config{
				M: m, Kind: core.HybridOverlap, Cores: cores, Threads: c.t,
				BoxThickness: c.w, BlockX: bx, BlockY: by,
			})
			if err != nil {
				continue
			}
			s.Add(float64(cores), e.GF, "")
		}
		out = append(out, s)
	}
	return out
}

// CPUKinds are the implementations of Figures 3 and 4.
func CPUKinds() []core.Kind {
	return []core.Kind{core.BulkSync, core.NonblockingOverlap, core.ThreadedOverlap}
}

// ClusterKinds are the implementations of Figures 9 and 10.
func ClusterKinds() []core.Kind {
	return []core.Kind{
		core.BulkSync, core.NonblockingOverlap, core.ThreadedOverlap,
		core.GPUBulkSync, core.GPUStreams, core.HybridBulkSync, core.HybridOverlap,
	}
}

// renderFigure writes the series as a table plus an ASCII chart.
func renderFigure(w io.Writer, xName string, series []stats.Series, chartTitle string) {
	t := stats.SeriesTable(xName, series)
	t.Render(w)
	fmt.Fprintln(w)
	stats.Chart(w, chartTitle, series, 72, 18)
}

// SectionVE returns the paper-vs-model table for the §V-E single-node
// anchors on Yona.
func SectionVE() (stats.Table, error) {
	yona := machine.Yona()
	t := stats.Table{Header: []string{"quantity", "paper (GF)", "model (GF)"}}

	bestResident := 0.0
	for _, bx := range []int{16, 32, 64, 128} {
		for by := 1; by <= 32; by++ {
			e, err := perf.Evaluate(perf.Config{M: yona, Kind: core.GPUResident, BlockX: bx, BlockY: by})
			if err == nil && e.GF > bestResident {
				bestResident = e.GF
			}
		}
	}
	t.AddRow("GPU-resident best (Fig 8)", "86", stats.FormatNum(bestResident))

	rows := []struct {
		name  string
		kind  core.Kind
		paper string
	}{
		{"GPU bulk-sync MPI, 1 node (IV-F)", core.GPUBulkSync, "24"},
		{"GPU streams overlap, 1 node (IV-G)", core.GPUStreams, "35"},
		{"CPU-GPU full overlap, 1 node (IV-I)", core.HybridOverlap, "82"},
	}
	for _, r := range rows {
		e, ok := bestConfig(yona, r.kind, 12)
		if !ok {
			return t, fmt.Errorf("harness: no estimate for %v", r.kind)
		}
		t.AddRow(r.name, r.paper, stats.FormatNum(e.GF))
	}
	return t, nil
}

// Verify runs every functional implementation on a small problem and
// reports agreement with the single-task reference and the analytic
// solution — the reproduction's analog of the paper's norm recording.
func Verify(n, steps, tasks int) (stats.Table, error) {
	p := core.DefaultProblem(n, steps)
	t := stats.Table{Header: []string{"implementation", "section", "L2 vs analytic", "LInf vs analytic", "mass drift", "sim GF"}}
	for _, k := range core.Kinds() {
		r, err := core.New(k)
		if err != nil {
			return t, err
		}
		o := core.Options{Tasks: tasks, Threads: 2, BlockX: 16, BlockY: 8, Verify: true}
		if !k.UsesMPI() {
			o.Tasks = 1
		}
		res, err := r.Run(p, o)
		if err != nil {
			return t, fmt.Errorf("%v: %w", k, err)
		}
		sim := ""
		if v, ok := res.Stats["sim.gf"]; ok {
			sim = stats.FormatNum(v)
		}
		t.AddRow(k.String(), k.Section(),
			fmt.Sprintf("%.3e", res.Norms.L2),
			fmt.Sprintf("%.3e", res.Norms.LInf),
			fmt.Sprintf("%.3e", res.MassDrift),
			sim)
	}
	return t, nil
}

// TableI renders the stencil coefficients for the default velocity at the
// maximum stable ν.
func TableI() stats.Table {
	p := core.DefaultProblem(420, 1)
	nu := stencil.MaxStableNu(p.C)
	c := stencil.TableI(p.C, nu)
	t := stats.Table{Header: []string{"i", "j", "k", "a_ijk"}}
	for k := -1; k <= 1; k++ {
		for j := -1; j <= 1; j++ {
			for i := -1; i <= 1; i++ {
				t.AddRow(fmt.Sprint(i), fmt.Sprint(j), fmt.Sprint(k),
					fmt.Sprintf("%+.6f", c.At(i, j, k)))
			}
		}
	}
	return t
}

// TableII renders the machine table.
func TableII() stats.Table {
	t := stats.Table{Header: []string{
		"system", "nodes", "mem/node GB", "sockets", "cores/socket",
		"clock GHz", "interconnect", "MPI", "GPU", "GPU mem GB",
	}}
	for _, m := range machine.All() {
		gpu, gmem := "-", "-"
		if m.HasGPU() {
			gpu = m.GPU.Props.Name
			gmem = fmt.Sprint(m.GPU.Props.GlobalMemBytes >> 30)
		}
		t.AddRow(m.Name, fmt.Sprint(m.Nodes), fmt.Sprint(m.Node.MemoryGB),
			fmt.Sprint(m.Node.Sockets), fmt.Sprint(m.Node.CoresPerSocket),
			fmt.Sprintf("%.1f", m.Node.ClockGHz), m.Net.Name, m.MPIName, gpu, gmem)
	}
	return t
}
