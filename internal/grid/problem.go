package grid

import "math"

// Velocity is the constant uniform advection velocity c = {cx, cy, cz} of
// the test case (paper §II, Eq. 1).
type Velocity struct {
	X, Y, Z float64
}

// MaxAbs returns max{|cx|, |cy|, |cz|}.
func (c Velocity) MaxAbs() float64 {
	return math.Max(math.Abs(c.X), math.Max(math.Abs(c.Y), math.Abs(c.Z)))
}

// Gaussian describes the initial condition of the test case: a Gaussian wave
// centered in the periodic cube (paper §II). Center and Sigma are in grid
// units.
type Gaussian struct {
	Center [3]float64 // wave center in grid coordinates
	Sigma  float64    // standard deviation in grid units
}

// DefaultGaussian centers the wave in an n-point cube with a width
// proportional to the domain, narrow enough that the periodic images are
// negligible but wide enough that the grid resolves it.
func DefaultGaussian(n Dims) Gaussian {
	return Gaussian{
		Center: [3]float64{float64(n.X) / 2, float64(n.Y) / 2, float64(n.Z) / 2},
		Sigma:  float64(minInt(n.X, minInt(n.Y, n.Z))) / 10,
	}
}

// Eval returns the Gaussian evaluated at grid point (i, j, k) in an n-point
// periodic domain, using the minimal-image distance so the wave is smooth
// across the periodic boundaries.
func (g Gaussian) Eval(n Dims, i, j, k int) float64 {
	dx := periodicDelta(float64(i)-g.Center[0], float64(n.X))
	dy := periodicDelta(float64(j)-g.Center[1], float64(n.Y))
	dz := periodicDelta(float64(k)-g.Center[2], float64(n.Z))
	r2 := dx*dx + dy*dy + dz*dz
	return math.Exp(-r2 / (2 * g.Sigma * g.Sigma))
}

// Analytic returns the exact solution of Eq. 1 at grid point (i, j, k) after
// time t: the initial wave translated by c·t with periodic wraparound.
// Velocities are in grid units per unit time and t is in the same time units
// used for the step size Δ.
func (g Gaussian) Analytic(n Dims, c Velocity, t float64, i, j, k int) float64 {
	dx := periodicDelta(float64(i)-c.X*t-g.Center[0], float64(n.X))
	dy := periodicDelta(float64(j)-c.Y*t-g.Center[1], float64(n.Y))
	dz := periodicDelta(float64(k)-c.Z*t-g.Center[2], float64(n.Z))
	r2 := dx*dx + dy*dy + dz*dz
	return math.Exp(-r2 / (2 * g.Sigma * g.Sigma))
}

// FillGaussian sets the interior of f to the initial condition.
func FillGaussian(f *Field, g Gaussian) {
	f.Fill(func(i, j, k int) float64 { return g.Eval(f.N, i, j, k) })
}

// periodicDelta maps d into the minimal-image interval [-p/2, p/2).
func periodicDelta(d, p float64) float64 {
	d = math.Mod(d, p)
	if d >= p/2 {
		d -= p
	}
	if d < -p/2 {
		d += p
	}
	return d
}

// Norms holds the error norms used for verification (paper §IV-A records
// norms of the difference between computed and analytic state).
type Norms struct {
	L2   float64 // root-mean-square difference
	LInf float64 // maximum absolute difference
}

// DiffNorms returns the norms of (a - b) over the interior. The fields must
// have identical interior extents.
func DiffNorms(a, b *Field) Norms {
	if a.N != b.N {
		panic("grid: norm of mismatched fields")
	}
	var sum, maxAbs float64
	for k := 0; k < a.N.Z; k++ {
		for j := 0; j < a.N.Y; j++ {
			for i := 0; i < a.N.X; i++ {
				d := a.At(i, j, k) - b.At(i, j, k)
				sum += d * d
				if ad := math.Abs(d); ad > maxAbs {
					maxAbs = ad
				}
			}
		}
	}
	return Norms{
		L2:   math.Sqrt(sum / float64(a.N.Volume())),
		LInf: maxAbs,
	}
}

// NormsAgainst returns the norms of the difference between f and fn
// evaluated at every interior point.
func NormsAgainst(f *Field, fn func(i, j, k int) float64) Norms {
	var sum, maxAbs float64
	for k := 0; k < f.N.Z; k++ {
		for j := 0; j < f.N.Y; j++ {
			for i := 0; i < f.N.X; i++ {
				d := f.At(i, j, k) - fn(i, j, k)
				sum += d * d
				if ad := math.Abs(d); ad > maxAbs {
					maxAbs = ad
				}
			}
		}
	}
	return Norms{
		L2:   math.Sqrt(sum / float64(f.N.Volume())),
		LInf: maxAbs,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
