package grid

import (
	"testing"
	"testing/quick"
)

func TestDecompPartitionProperty(t *testing.T) {
	// Every decomposition must tile the global grid: subdomains disjoint,
	// union covering, per-dimension size spread at most one point.
	prop := func(nx, ny, nz uint8, p uint8) bool {
		n := Dims{int(nx%20) + 4, int(ny%20) + 4, int(nz%20) + 4}
		// Keep the task count at or below the smallest extent so a
		// feasible aligned decomposition ({1,1,tasks} at worst) exists
		// even when the count is prime.
		m := min(n.X, min(n.Y, n.Z))
		tasks := int(p)%m + 1
		d := NewDecomp(n, tasks)
		if d.Tasks() != tasks {
			return false
		}
		seen := make([]int, n.Volume())
		total := 0
		for r := 0; r < tasks; r++ {
			s := d.Sub(r)
			if s.Empty() {
				return false // paper: no task gets an empty domain
			}
			hi := s.Hi()
			for k := s.Lo.Z; k < hi.Z; k++ {
				for j := s.Lo.Y; j < hi.Y; j++ {
					for i := s.Lo.X; i < hi.X; i++ {
						idx := i + n.X*(j+n.Y*k)
						seen[idx]++
						total++
					}
				}
			}
		}
		if total != n.Volume() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompSizeSpread(t *testing.T) {
	// "The largest subdomain is at most one grid point larger in each
	// dimension than the smallest."
	for _, tasks := range []int{1, 2, 3, 5, 7, 8, 12, 27, 30, 64, 100} {
		d := NewDecomp(Uniform(30), tasks)
		var minD, maxD Dims
		for r := 0; r < tasks; r++ {
			s := d.Sub(r).Size
			if r == 0 {
				minD, maxD = s, s
				continue
			}
			minD = Dims{min(minD.X, s.X), min(minD.Y, s.Y), min(minD.Z, s.Z)}
			maxD = Dims{max(maxD.X, s.X), max(maxD.Y, s.Y), max(maxD.Z, s.Z)}
		}
		if maxD.X-minD.X > 1 || maxD.Y-minD.Y > 1 || maxD.Z-minD.Z > 1 {
			t.Fatalf("tasks=%d: size spread %v..%v exceeds 1", tasks, minD, maxD)
		}
	}
}

func TestDecompCubicWhenPossible(t *testing.T) {
	// "If the number of tasks is the cube of an integer, and if that
	// integer is a divisor of 420, then every task has a cubic subdomain of
	// the same size."
	n := Uniform(420)
	for _, c := range []int{1, 2, 3, 4, 5, 6, 7} {
		tasks := c * c * c
		d := NewDecomp(n, tasks)
		want := Uniform(420 / c)
		for r := 0; r < tasks; r++ {
			if s := d.Sub(r).Size; s != want {
				t.Fatalf("tasks=%d rank=%d: size %v, want %v", tasks, r, s, want)
			}
		}
	}
}

func TestDecompXLargest(t *testing.T) {
	// "The subdomain size is largest in the x dimension and smallest in
	// the z dimension" when the split is not uniform.
	d := NewDecomp(Uniform(420), 12) // 12 = 1*3*4 or 2*2*3 etc.
	if d.P.X > d.P.Y || d.P.Y > d.P.Z {
		t.Fatalf("task grid %v not ascending", d.P)
	}
	s := d.Sub(0).Size
	if s.X < s.Y || s.Y < s.Z {
		t.Fatalf("subdomain %v not descending", s)
	}
}

func TestDecompRankCoordsRoundTrip(t *testing.T) {
	d := NewDecomp(Uniform(24), 24)
	for r := 0; r < d.Tasks(); r++ {
		if got := d.Rank(d.Coords(r)); got != r {
			t.Fatalf("Rank(Coords(%d)) = %d", r, got)
		}
	}
}

func TestDecompNeighborPeriodic(t *testing.T) {
	d := NewDecomp(Uniform(24), 24)
	for r := 0; r < d.Tasks(); r++ {
		for dim := 0; dim < 3; dim++ {
			plus := d.Neighbor(r, dim, +1)
			minus := d.Neighbor(plus, dim, -1)
			if minus != r {
				t.Fatalf("neighbor not inverse: rank %d dim %d", r, dim)
			}
		}
	}
}

func TestDecompSelfNeighbor(t *testing.T) {
	// "A task may be its own neighbor in decompositions with small or
	// prime numbers of tasks."
	d := NewDecomp(Uniform(12), 2) // P = {1,1,2}
	if d.P != (Dims{1, 1, 2}) {
		t.Fatalf("P = %v, want {1,1,2}", d.P)
	}
	if d.Neighbor(0, 0, +1) != 0 || d.Neighbor(0, 1, +1) != 0 {
		t.Fatal("rank 0 should be its own x and y neighbor")
	}
	if d.Neighbor(0, 2, +1) != 1 || d.Neighbor(0, 2, -1) != 1 {
		t.Fatal("rank 0's z neighbors should both be rank 1")
	}
}

func TestDecompPrimeTasks(t *testing.T) {
	d := NewDecomp(Uniform(420), 7)
	if d.P.Volume() != 7 {
		t.Fatalf("task volume %d", d.P.Volume())
	}
	if d.P != (Dims{1, 1, 7}) {
		t.Fatalf("prime task grid %v, want {1,1,7}", d.P)
	}
}

func TestDecompPanics(t *testing.T) {
	for _, bad := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDecomp(%d) did not panic", bad)
				}
			}()
			NewDecomp(Uniform(4), bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized task count did not panic")
			}
		}()
		NewDecomp(Uniform(2), 9)
	}()
}

func TestFactorTriples(t *testing.T) {
	got := factorTriples(12)
	want := [][3]int{{1, 1, 12}, {1, 2, 6}, {1, 3, 4}, {2, 2, 3}}
	if len(got) != len(want) {
		t.Fatalf("triples of 12: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triples of 12: %v, want %v", got, want)
		}
	}
}

func TestSplit1(t *testing.T) {
	// 10 into 3: 4,3,3 with lows 0,4,7.
	los := []int{0, 4, 7}
	sizes := []int{4, 3, 3}
	for i := 0; i < 3; i++ {
		lo, n := split1(10, 3, i)
		if lo != los[i] || n != sizes[i] {
			t.Fatalf("split1(10,3,%d) = (%d,%d), want (%d,%d)", i, lo, n, los[i], sizes[i])
		}
	}
}

func TestBoxSplit(t *testing.T) {
	n := Dims{10, 8, 9}
	b, err := NewBoxSplit(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := b.Inner()
	if in.Lo != (Dims{2, 2, 2}) || in.Size != (Dims{6, 4, 5}) {
		t.Fatalf("Inner = %v", in)
	}
	if got, want := b.ShellVolume(), n.Volume()-in.Volume(); got != want {
		t.Fatalf("ShellVolume = %d, want %d", got, want)
	}
}

func TestBoxSplitWallsTileShell(t *testing.T) {
	n := Dims{9, 7, 8}
	for tk := 0; tk <= 3; tk++ {
		b, err := NewBoxSplit(n, tk)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[[3]int]bool)
		totalVol := 0
		for _, w := range b.Walls() {
			hi := w.Hi()
			for k := w.Lo.Z; k < hi.Z; k++ {
				for j := w.Lo.Y; j < hi.Y; j++ {
					for i := w.Lo.X; i < hi.X; i++ {
						key := [3]int{i, j, k}
						if seen[key] {
							t.Fatalf("t=%d: walls overlap at %v", tk, key)
						}
						seen[key] = true
						totalVol++
						if b.Inner().Contains(i, j, k) {
							t.Fatalf("t=%d: wall point %v inside GPU block", tk, key)
						}
					}
				}
			}
		}
		if totalVol != b.ShellVolume() {
			t.Fatalf("t=%d: walls cover %d, shell is %d", tk, totalVol, b.ShellVolume())
		}
	}
}

func TestBoxSplitWallsByDim(t *testing.T) {
	b, err := NewBoxSplit(Dims{10, 10, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 3; dim++ {
		for _, w := range b.WallsByDim(dim) {
			if w.Size.Axis(dim) != 2 {
				t.Fatalf("dim %d wall thickness %d, want 2", dim, w.Size.Axis(dim))
			}
		}
	}
}

func TestBoxSplitErrors(t *testing.T) {
	if _, err := NewBoxSplit(Dims{6, 6, 6}, -1); err == nil {
		t.Fatal("negative thickness accepted")
	}
	if _, err := NewBoxSplit(Dims{6, 6, 6}, 3); err == nil {
		t.Fatal("thickness consuming whole domain accepted")
	}
	if _, err := NewBoxSplit(Dims{6, 6, 6}, 2); err != nil {
		t.Fatalf("valid thickness rejected: %v", err)
	}
}

func TestBoxSplitInnerHalo(t *testing.T) {
	b, err := NewBoxSplit(Dims{10, 10, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := b.Inner().Size // 8x8x8
	if got, want := b.InnerHaloToGPU(1), 10*10*10-8*8*8; got != want {
		t.Fatalf("InnerHaloToGPU = %d, want %d", got, want)
	}
	if got, want := b.InnerHaloFromGPU(1), 8*8*8-6*6*6; got != want {
		t.Fatalf("InnerHaloFromGPU = %d, want %d", got, want)
	}
	_ = in
}
