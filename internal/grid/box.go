package grid

import "fmt"

// BoxSplit is the CPU/GPU partition of a task-local domain (paper §IV-H,
// Fig. 1): the GPU computes an interior block and the CPU computes the
// enclosing box (shell) of wall thickness T around it. T is the tunable
// load-balance parameter of §IV-H/§IV-I; the paper finds the best T is
// often just 1, a "veneer" of CPU points.
type BoxSplit struct {
	Local Dims // task-local interior extents
	T     int  // shell thickness in points
}

// NewBoxSplit validates that a thickness-t shell leaves a non-empty interior
// block in an n-point local domain.
func NewBoxSplit(n Dims, t int) (BoxSplit, error) {
	if t < 0 {
		return BoxSplit{}, fmt.Errorf("grid: negative box thickness %d", t)
	}
	if 2*t >= n.X || 2*t >= n.Y || 2*t >= n.Z {
		return BoxSplit{}, fmt.Errorf("grid: thickness %d leaves no GPU interior in %v", t, n)
	}
	return BoxSplit{Local: n, T: t}, nil
}

// Inner returns the GPU's interior block in local coordinates.
func (b BoxSplit) Inner() Subdomain {
	t := b.T
	return Subdomain{
		Lo:   Dims{t, t, t},
		Size: Dims{b.Local.X - 2*t, b.Local.Y - 2*t, b.Local.Z - 2*t},
	}
}

// ShellVolume returns the number of CPU (shell) points.
func (b BoxSplit) ShellVolume() int {
	return b.Local.Volume() - b.Inner().Volume()
}

// Walls returns the six disjoint slabs that tile the CPU shell, ordered
// -z, +z, -y, +y, -x, +x. The z walls span full xy planes; the y walls
// exclude the z walls; the x walls exclude both. An implementation that
// overlaps MPI in dimension d with CPU computation of the d walls (paper
// §IV-I) iterates this slice two at a time. With T == 0 all walls are empty.
func (b BoxSplit) Walls() []Subdomain {
	t := b.T
	n := b.Local
	return []Subdomain{
		{Lo: Dims{0, 0, 0}, Size: Dims{n.X, n.Y, t}},
		{Lo: Dims{0, 0, n.Z - t}, Size: Dims{n.X, n.Y, t}},
		{Lo: Dims{0, 0, t}, Size: Dims{n.X, t, n.Z - 2*t}},
		{Lo: Dims{0, n.Y - t, t}, Size: Dims{n.X, t, n.Z - 2*t}},
		{Lo: Dims{0, t, t}, Size: Dims{t, n.Y - 2*t, n.Z - 2*t}},
		{Lo: Dims{n.X - t, t, t}, Size: Dims{t, n.Y - 2*t, n.Z - 2*t}},
	}
}

// WallsByDim returns the pair of walls whose outward normal is along dim,
// matching the §IV-I overlap schedule (communication to the ±dim neighbors
// overlaps computation of the ±dim walls). dim is 0 for x, 1 for y, 2 for z.
func (b BoxSplit) WallsByDim(dim int) [2]Subdomain {
	w := b.Walls()
	switch dim {
	case 2:
		return [2]Subdomain{w[0], w[1]}
	case 1:
		return [2]Subdomain{w[2], w[3]}
	case 0:
		return [2]Subdomain{w[4], w[5]}
	}
	panic(fmt.Sprintf("grid: bad dimension %d", dim))
}

// InnerHaloToGPU returns the number of points the CPU sends the GPU each
// step: the shell layer of width halo immediately surrounding the GPU block,
// which the GPU stencil reads as its halo.
func (b BoxSplit) InnerHaloToGPU(halo int) int {
	in := b.Inner().Size
	outer := Dims{in.X + 2*halo, in.Y + 2*halo, in.Z + 2*halo}
	return outer.Volume() - in.Volume()
}

// InnerHaloFromGPU returns the number of points the GPU sends the CPU each
// step: the outermost layer (width halo) of the GPU block, which the CPU
// stencil reads when computing the shell.
func (b BoxSplit) InnerHaloFromGPU(halo int) int {
	in := b.Inner().Size
	core := Dims{in.X - 2*halo, in.Y - 2*halo, in.Z - 2*halo}
	if core.X < 0 || core.Y < 0 || core.Z < 0 {
		return in.Volume()
	}
	return in.Volume() - core.Volume()
}
