package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFieldIndexRoundTrip(t *testing.T) {
	f := NewField(Dims{4, 5, 6}, 2)
	want := map[int]bool{}
	for k := -2; k < 8; k++ {
		for j := -2; j < 7; j++ {
			for i := -2; i < 6; i++ {
				idx := f.Idx(i, j, k)
				if idx < 0 || idx >= len(f.Data()) {
					t.Fatalf("Idx(%d,%d,%d) = %d out of range [0,%d)", i, j, k, idx, len(f.Data()))
				}
				if want[idx] {
					t.Fatalf("Idx(%d,%d,%d) = %d collides", i, j, k, idx)
				}
				want[idx] = true
			}
		}
	}
	if len(want) != len(f.Data()) {
		t.Fatalf("covered %d of %d slots", len(want), len(f.Data()))
	}
}

func TestFieldSetAt(t *testing.T) {
	f := NewField(Dims{3, 3, 3}, 1)
	f.Set(1, 2, 0, 42.5)
	if got := f.At(1, 2, 0); got != 42.5 {
		t.Fatalf("At = %v, want 42.5", got)
	}
	f.Set(-1, 3, 2, 7) // halo point
	if got := f.At(-1, 3, 2); got != 7 {
		t.Fatalf("halo At = %v, want 7", got)
	}
}

func TestFieldStrides(t *testing.T) {
	f := NewField(Dims{4, 5, 6}, 1)
	sx, sy, sz := f.Strides()
	if sx != 1 {
		t.Fatalf("sx = %d, want 1", sx)
	}
	if d := f.Idx(1, 0, 0) - f.Idx(0, 0, 0); d != sx {
		t.Fatalf("x stride = %d, want %d", d, sx)
	}
	if d := f.Idx(0, 1, 0) - f.Idx(0, 0, 0); d != sy {
		t.Fatalf("y stride = %d, want %d", d, sy)
	}
	if d := f.Idx(0, 0, 1) - f.Idx(0, 0, 0); d != sz {
		t.Fatalf("z stride = %d, want %d", d, sz)
	}
}

func TestFieldFillAndSum(t *testing.T) {
	f := NewField(Dims{3, 4, 5}, 1)
	f.Fill(func(i, j, k int) float64 { return 1 })
	if got, want := f.InteriorSum(), float64(3*4*5); got != want {
		t.Fatalf("InteriorSum = %v, want %v", got, want)
	}
	// Halos must stay zero.
	if f.At(-1, 0, 0) != 0 || f.At(3, 0, 0) != 0 {
		t.Fatal("Fill wrote into halo")
	}
}

func TestFieldCloneIndependent(t *testing.T) {
	f := NewField(Dims{2, 2, 2}, 1)
	f.Set(0, 0, 0, 1)
	g := f.Clone()
	g.Set(0, 0, 0, 2)
	if f.At(0, 0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestFieldSwap(t *testing.T) {
	f := NewField(Dims{2, 2, 2}, 1)
	g := NewField(Dims{2, 2, 2}, 1)
	f.Set(0, 0, 0, 1)
	g.Set(0, 0, 0, 2)
	f.Swap(g)
	if f.At(0, 0, 0) != 2 || g.At(0, 0, 0) != 1 {
		t.Fatal("Swap did not exchange storage")
	}
}

func TestFieldCopyInteriorFrom(t *testing.T) {
	src := NewField(Dims{3, 3, 3}, 2)
	dst := NewField(Dims{3, 3, 3}, 1)
	src.Fill(func(i, j, k int) float64 { return float64(i + 10*j + 100*k) })
	dst.CopyInteriorFrom(src)
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				if dst.At(i, j, k) != src.At(i, j, k) {
					t.Fatalf("mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// wrap maps any index into [0, n).
func wrap(i, n int) int { return ((i % n) + n) % n }

func TestCopyPeriodicHalos(t *testing.T) {
	n := Dims{4, 5, 3}
	f := NewField(n, 1)
	f.Fill(func(i, j, k int) float64 { return float64(1 + i + 10*j + 100*k) })
	f.CopyPeriodicHalos()
	for k := -1; k <= n.Z; k++ {
		for j := -1; j <= n.Y; j++ {
			for i := -1; i <= n.X; i++ {
				want := float64(1 + wrap(i, n.X) + 10*wrap(j, n.Y) + 100*wrap(k, n.Z))
				if got := f.At(i, j, k); got != want {
					t.Fatalf("halo (%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestCopyPeriodicHalosWidth2(t *testing.T) {
	n := Dims{5, 4, 6}
	f := NewField(n, 2)
	f.Fill(func(i, j, k int) float64 { return float64(1 + i + 10*j + 100*k) })
	f.CopyPeriodicHalos()
	for k := -2; k < n.Z+2; k++ {
		for j := -2; j < n.Y+2; j++ {
			for i := -2; i < n.X+2; i++ {
				want := float64(1 + wrap(i, n.X) + 10*wrap(j, n.Y) + 100*wrap(k, n.Z))
				if got := f.At(i, j, k); got != want {
					t.Fatalf("halo (%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

// TestPackUnpackFaceSelfExchange emulates the full three-phase exchange of a
// field with itself (the one-task periodic case) through buffers and checks
// it produces exactly what CopyPeriodicHalos produces, corners included.
func TestPackUnpackFaceSelfExchange(t *testing.T) {
	n := Dims{4, 3, 5}
	mk := func() *Field {
		f := NewField(n, 1)
		f.Fill(func(i, j, k int) float64 { return float64(i + 7*j + 31*k) })
		return f
	}
	want := mk()
	want.CopyPeriodicHalos()

	got := mk()
	for dim := 0; dim < 3; dim++ {
		cnt := got.FaceCount(dim)
		minus := make([]float64, cnt)
		plus := make([]float64, cnt)
		// Sending to the -dim neighbor means the neighbor receives on its
		// +dim side; with one periodic task, both neighbors are the field
		// itself.
		if p := got.PackFace(dim, -1, 1, minus); p != cnt {
			t.Fatalf("dim %d: packed %d, want %d", dim, p, cnt)
		}
		if p := got.PackFace(dim, +1, 1, plus); p != cnt {
			t.Fatalf("dim %d: packed %d, want %d", dim, p, cnt)
		}
		got.UnpackFace(dim, +1, 1, minus) // low boundary appears past high edge
		got.UnpackFace(dim, -1, 1, plus)  // high boundary appears before low edge
	}
	for k := -1; k <= n.Z; k++ {
		for j := -1; j <= n.Y; j++ {
			for i := -1; i <= n.X; i++ {
				if got.At(i, j, k) != want.At(i, j, k) {
					t.Fatalf("(%d,%d,%d): got %v, want %v", i, j, k, got.At(i, j, k), want.At(i, j, k))
				}
			}
		}
	}
}

func TestFaceCount(t *testing.T) {
	f := NewField(Dims{4, 5, 6}, 1)
	if got, want := f.FaceCount(0), 5*6; got != want {
		t.Fatalf("FaceCount(x) = %d, want %d", got, want)
	}
	if got, want := f.FaceCount(1), (4+2)*6; got != want {
		t.Fatalf("FaceCount(y) = %d, want %d", got, want)
	}
	if got, want := f.FaceCount(2), (4+2)*(5+2); got != want {
		t.Fatalf("FaceCount(z) = %d, want %d", got, want)
	}
}

func TestDimsHelpers(t *testing.T) {
	d := Dims{3, 4, 5}
	if d.Volume() != 60 {
		t.Fatalf("Volume = %d", d.Volume())
	}
	if got, want := d.Surface(), 60-1*2*3; got != want {
		t.Fatalf("Surface = %d, want %d", got, want)
	}
	for dim, want := range []int{3, 4, 5} {
		if d.Axis(dim) != want {
			t.Fatalf("Axis(%d) = %d, want %d", dim, d.Axis(dim), want)
		}
	}
	if d.WithAxis(1, 9) != (Dims{3, 9, 5}) {
		t.Fatalf("WithAxis = %v", d.WithAxis(1, 9))
	}
	if d.FaceArea(0) != 20 || d.FaceArea(1) != 15 || d.FaceArea(2) != 12 {
		t.Fatal("FaceArea wrong")
	}
	if Uniform(4) != (Dims{4, 4, 4}) {
		t.Fatal("Uniform wrong")
	}
}

func TestSurfaceThinBox(t *testing.T) {
	// Boxes thinner than 3 in a dimension are all surface.
	d := Dims{2, 5, 5}
	if got := d.Surface(); got != d.Volume() {
		t.Fatalf("thin box Surface = %d, want %d", got, d.Volume())
	}
	if got := (Dims{0, 3, 3}).Surface(); got != 0 {
		t.Fatalf("empty box Surface = %d, want 0", got)
	}
}

func TestSubdomain(t *testing.T) {
	s := Subdomain{Lo: Dims{1, 2, 3}, Size: Dims{2, 2, 2}}
	if !s.Contains(1, 2, 3) || !s.Contains(2, 3, 4) {
		t.Fatal("Contains false negative")
	}
	if s.Contains(3, 2, 3) || s.Contains(0, 2, 3) {
		t.Fatal("Contains false positive")
	}
	if s.Hi() != (Dims{3, 4, 5}) {
		t.Fatalf("Hi = %v", s.Hi())
	}
	if s.Empty() {
		t.Fatal("Empty false positive")
	}
	if !(Subdomain{Size: Dims{0, 1, 1}}).Empty() {
		t.Fatal("Empty false negative")
	}
}

func TestPeriodicDeltaProperty(t *testing.T) {
	prop := func(d float64, pInt uint8) bool {
		p := float64(pInt%50) + 1
		got := periodicDelta(d, p)
		if got < -p/2 || got >= p/2 {
			return false
		}
		// Must differ from d by a multiple of p.
		m := (d - got) / p
		return math.Abs(m-math.Round(m)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianAnalyticAtZero(t *testing.T) {
	n := Uniform(12)
	g := DefaultGaussian(n)
	c := Velocity{1, 0.5, 0.25}
	for k := 0; k < n.Z; k++ {
		for j := 0; j < n.Y; j++ {
			for i := 0; i < n.X; i++ {
				if got, want := g.Analytic(n, c, 0, i, j, k), g.Eval(n, i, j, k); got != want {
					t.Fatalf("Analytic(t=0) != Eval at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestGaussianPeriodicTranslation(t *testing.T) {
	// Advecting by exactly one full period returns the initial condition.
	n := Uniform(10)
	g := DefaultGaussian(n)
	c := Velocity{1, 0, 0}
	for i := 0; i < n.X; i++ {
		got := g.Analytic(n, c, float64(n.X), i, 5, 5)
		want := g.Eval(n, i, 5, 5)
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("full-period translation changed value at i=%d: %v vs %v", i, got, want)
		}
	}
}

func TestGaussianIntegerShift(t *testing.T) {
	// Advecting by an integer number of points shifts the lattice samples.
	n := Uniform(16)
	g := DefaultGaussian(n)
	c := Velocity{1, 1, 1}
	for k := 0; k < n.Z; k++ {
		for j := 0; j < n.Y; j++ {
			for i := 0; i < n.X; i++ {
				got := g.Analytic(n, c, 3, i, j, k)
				want := g.Eval(n, wrap(i-3, n.X), wrap(j-3, n.Y), wrap(k-3, n.Z))
				if math.Abs(got-want) > 1e-15 {
					t.Fatalf("shift mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestDiffNorms(t *testing.T) {
	n := Dims{3, 3, 3}
	a := NewField(n, 1)
	b := NewField(n, 1)
	if nm := DiffNorms(a, b); nm.L2 != 0 || nm.LInf != 0 {
		t.Fatalf("zero fields: %+v", nm)
	}
	a.Set(1, 1, 1, 3)
	nm := DiffNorms(a, b)
	if nm.LInf != 3 {
		t.Fatalf("LInf = %v, want 3", nm.LInf)
	}
	want := math.Sqrt(9.0 / 27.0)
	if math.Abs(nm.L2-want) > 1e-15 {
		t.Fatalf("L2 = %v, want %v", nm.L2, want)
	}
}

func TestNormsAgainst(t *testing.T) {
	n := Dims{4, 4, 4}
	f := NewField(n, 1)
	f.Fill(func(i, j, k int) float64 { return float64(i) })
	nm := NormsAgainst(f, func(i, j, k int) float64 { return float64(i) })
	if nm.L2 != 0 || nm.LInf != 0 {
		t.Fatalf("exact match: %+v", nm)
	}
	nm = NormsAgainst(f, func(i, j, k int) float64 { return float64(i) + 2 })
	if nm.LInf != 2 || math.Abs(nm.L2-2) > 1e-15 {
		t.Fatalf("offset: %+v", nm)
	}
}

func TestVelocityMaxAbs(t *testing.T) {
	if got := (Velocity{-3, 2, 1}).MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
}

func TestPackUnpackInverseProperty(t *testing.T) {
	// Packing a face and unpacking it into the mirror halo of an
	// identically-shaped field is lossless for any shape, dimension,
	// direction, and depth.
	prop := func(a, b, c uint8, dimRaw, dirRaw, depthRaw uint8) bool {
		h := int(depthRaw%2) + 1
		n := Dims{X: int(a%6) + h + 2, Y: int(b%6) + h + 2, Z: int(c%6) + h + 2}
		dim := int(dimRaw % 3)
		dir := 1
		if dirRaw%2 == 0 {
			dir = -1
		}
		src := NewField(n, h)
		seed := uint64(1)
		src.Fill(func(i, j, k int) float64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return float64(seed >> 40)
		})
		// Fill src halos too so the widened pack ranges carry data.
		src.CopyPeriodicHalos()

		buf := make([]float64, src.FaceCount(dim)*h)
		if p := src.PackFace(dim, dir, h, buf); p != len(buf) {
			return false
		}
		dst := NewField(n, h)
		if u := dst.UnpackFace(dim, -dir, h, buf); u != len(buf) {
			return false
		}
		// The unpacked halo layer must equal the packed boundary layer.
		for g := 0; g < h; g++ {
			var srcFix, dstFix int
			if dir < 0 {
				srcFix, dstFix = g, n.Axis(dim)+g
			} else {
				srcFix, dstFix = n.Axis(dim)-1-g, -1-g
			}
			lo := [3]int{0, 0, 0}
			hi := [3]int{n.X, n.Y, n.Z}
			for d := 0; d < dim; d++ {
				lo[d], hi[d] = -h, hi[d]+h
			}
			idx := [3]int{}
			for idx[2] = lo[2]; idx[2] < hi[2]; idx[2]++ {
				for idx[1] = lo[1]; idx[1] < hi[1]; idx[1]++ {
					for idx[0] = lo[0]; idx[0] < hi[0]; idx[0]++ {
						if idx[dim] != lo[dim] {
							continue // the fixed dimension is overridden below
						}
						si, sj, sk := idx[0], idx[1], idx[2]
						di, dj, dk := idx[0], idx[1], idx[2]
						switch dim {
						case 0:
							si, di = srcFix, dstFix
						case 1:
							sj, dj = srcFix, dstFix
						case 2:
							sk, dk = srcFix, dstFix
						}
						if src.At(si, sj, sk) != dst.At(di, dj, dk) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersect(t *testing.T) {
	a := Subdomain{Lo: Dims{X: 0, Y: 0, Z: 0}, Size: Dims{X: 5, Y: 5, Z: 5}}
	b := Subdomain{Lo: Dims{X: 3, Y: 2, Z: 4}, Size: Dims{X: 5, Y: 1, Z: 5}}
	got := Intersect(a, b)
	want := Subdomain{Lo: Dims{X: 3, Y: 2, Z: 4}, Size: Dims{X: 2, Y: 1, Z: 1}}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	// Disjoint boxes intersect to empty.
	c := Subdomain{Lo: Dims{X: 9, Y: 9, Z: 9}, Size: Dims{X: 2, Y: 2, Z: 2}}
	if !Intersect(a, c).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
}

func TestIntersectProperty(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz uint8) bool {
		a := Subdomain{
			Lo:   Dims{X: int(ax % 10), Y: int(ay % 10), Z: int(az % 10)},
			Size: Dims{X: int(bx%5) + 1, Y: int(by%5) + 1, Z: int(bz%5) + 1},
		}
		b := Subdomain{
			Lo:   Dims{X: int(bz % 10), Y: int(bx % 10), Z: int(by % 10)},
			Size: Dims{X: int(az%5) + 1, Y: int(ax%5) + 1, Z: int(ay%5) + 1},
		}
		got := Intersect(a, b)
		// Pointwise check.
		for k := -1; k < 16; k++ {
			for j := -1; j < 16; j++ {
				for i := -1; i < 16; i++ {
					in := a.Contains(i, j, k) && b.Contains(i, j, k)
					if got.Contains(i, j, k) != in {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
