package grid

import (
	"fmt"
	"sort"
)

// Decomp is the paper's task decomposition (§IV-B): the global grid is split
// among P.X × P.Y × P.Z tasks with subdomains as close to the same size and
// as close to cubic as possible, no task empty, and — when the split cannot
// be perfectly cubic — subdomains largest in x and smallest in z for memory
// locality. Subdomains are aligned in each dimension, so every task has 26
// logical neighbors (some of which may be the task itself for small task
// counts).
type Decomp struct {
	N Dims // global grid extents
	P Dims // task-grid extents, P.X ≤ P.Y ≤ P.Z
}

// NewDecomp chooses the task-grid factorization of ntasks that minimizes the
// largest subdomain's communication surface, subject to the paper's
// constraints. It panics if ntasks is out of range.
func NewDecomp(n Dims, ntasks int) Decomp {
	if ntasks <= 0 {
		panic(fmt.Sprintf("grid: bad task count %d", ntasks))
	}
	if ntasks > n.Volume() {
		panic(fmt.Sprintf("grid: %d tasks exceed %d grid points", ntasks, n.Volume()))
	}
	best := Dims{}
	bestScore := -1
	for _, t := range factorTriples(ntasks) {
		for _, p := range permute3(t) {
			px, py, pz := p[0], p[1], p[2]
			if px > n.X || py > n.Y || pz > n.Z {
				continue
			}
			// Largest subdomain uses ceiling division in each dimension.
			sub := Dims{ceilDiv(n.X, px), ceilDiv(n.Y, py), ceilDiv(n.Z, pz)}
			score := 2 * (sub.X*sub.Y + sub.Y*sub.Z + sub.X*sub.Z)
			cand := Dims{px, py, pz}
			// Ties go to the paper's ordering: fewest cuts in x, most in
			// z, so the subdomain is largest in x and smallest in z.
			if bestScore < 0 || score < bestScore ||
				(score == bestScore && lessAscending(cand, best)) {
				bestScore = score
				best = cand
			}
		}
	}
	if bestScore < 0 {
		panic(fmt.Sprintf("grid: no feasible decomposition of %v into %d tasks", n, ntasks))
	}
	return Decomp{N: n, P: best}
}

// Tasks returns the total number of tasks.
func (d Decomp) Tasks() int { return d.P.Volume() }

// Coords returns the task-grid coordinates of rank. Ranks are x-fastest:
// rank = cx + P.X*(cy + P.Y*cz).
func (d Decomp) Coords(rank int) Dims {
	if rank < 0 || rank >= d.Tasks() {
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, d.Tasks()))
	}
	cx := rank % d.P.X
	cy := (rank / d.P.X) % d.P.Y
	cz := rank / (d.P.X * d.P.Y)
	return Dims{cx, cy, cz}
}

// Rank is the inverse of Coords.
func (d Decomp) Rank(c Dims) int {
	return c.X + d.P.X*(c.Y+d.P.Y*c.Z)
}

// Sub returns the global subdomain owned by rank. Within each dimension the
// remainder points go to the lowest task coordinates, so the largest
// subdomain is at most one point larger than the smallest in each dimension.
func (d Decomp) Sub(rank int) Subdomain {
	c := d.Coords(rank)
	lox, nx := split1(d.N.X, d.P.X, c.X)
	loy, ny := split1(d.N.Y, d.P.Y, c.Y)
	loz, nz := split1(d.N.Z, d.P.Z, c.Z)
	return Subdomain{Lo: Dims{lox, loy, loz}, Size: Dims{nx, ny, nz}}
}

// Neighbor returns the rank of the periodic neighbor of rank in dimension
// dim (0,1,2) on side dir (-1 or +1). A task can be its own neighbor when
// the task grid has extent 1 (or 2, for the two sides) in that dimension.
func (d Decomp) Neighbor(rank, dim, dir int) int {
	if dir != -1 && dir != 1 {
		panic(fmt.Sprintf("grid: bad direction %d", dir))
	}
	c := d.Coords(rank)
	p := d.P.Axis(dim)
	v := ((c.Axis(dim)+dir)%p + p) % p
	return d.Rank(c.WithAxis(dim, v))
}

// split1 divides n points among p parts and returns the offset and size of
// part i, giving the n%p remainder points to the lowest-indexed parts.
func split1(n, p, i int) (lo, size int) {
	base := n / p
	rem := n % p
	if i < rem {
		return i * (base + 1), base + 1
	}
	return rem*(base+1) + (i-rem)*base, base
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// permute3 returns the distinct permutations of a triple.
func permute3(t [3]int) [][3]int {
	idx := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var out [][3]int
	seen := map[[3]int]bool{}
	for _, p := range idx {
		c := [3]int{t[p[0]], t[p[1]], t[p[2]]}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// lessAscending prefers the candidate closer to ascending (px ≤ py ≤ pz)
// order: lexicographically smaller task grids cut x less.
func lessAscending(a, b Dims) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}

// factorTriples enumerates every ordered-ascending triple (a ≤ b ≤ c) with
// a*b*c = n.
func factorTriples(n int) [][3]int {
	var out [][3]int
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			out = append(out, [3]int{a, b, c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
