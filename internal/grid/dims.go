// Package grid provides the spatial substrate for the advection test case:
// three-dimensional fields with halo (ghost) layers, periodic-boundary
// helpers, the paper's "as cubic as possible" task decomposition (§IV-B),
// the box-in-box CPU/GPU partition (§IV-H, Fig. 1), Gaussian initial
// conditions, the analytic solution, and error norms.
package grid

import "fmt"

// Dims holds one extent per space dimension.
type Dims struct {
	X, Y, Z int
}

// Volume returns the number of points in a Dims-sized box.
func (d Dims) Volume() int { return d.X * d.Y * d.Z }

// Surface returns the number of points on the surface of a Dims-sized box,
// counting each face point once (edge and corner points are shared).
func (d Dims) Surface() int {
	if d.X <= 0 || d.Y <= 0 || d.Z <= 0 {
		return 0
	}
	inner := Dims{max(d.X-2, 0), max(d.Y-2, 0), max(d.Z-2, 0)}
	return d.Volume() - inner.Volume()
}

// FaceArea returns the area (in points) of the face normal to dim.
func (d Dims) FaceArea(dim int) int {
	switch dim {
	case 0:
		return d.Y * d.Z
	case 1:
		return d.X * d.Z
	case 2:
		return d.X * d.Y
	}
	panic(fmt.Sprintf("grid: bad dimension %d", dim))
}

// Axis returns the extent along dim (0=x, 1=y, 2=z).
func (d Dims) Axis(dim int) int {
	switch dim {
	case 0:
		return d.X
	case 1:
		return d.Y
	case 2:
		return d.Z
	}
	panic(fmt.Sprintf("grid: bad dimension %d", dim))
}

// WithAxis returns a copy of d with the extent along dim replaced by v.
func (d Dims) WithAxis(dim, v int) Dims {
	switch dim {
	case 0:
		d.X = v
	case 1:
		d.Y = v
	case 2:
		d.Z = v
	default:
		panic(fmt.Sprintf("grid: bad dimension %d", dim))
	}
	return d
}

// Uniform returns a Dims with every extent equal to n.
func Uniform(n int) Dims { return Dims{n, n, n} }

func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z) }

// Subdomain is an axis-aligned box of grid points: the half-open region
// [Lo.X, Lo.X+Size.X) × [Lo.Y, Lo.Y+Size.Y) × [Lo.Z, Lo.Z+Size.Z).
type Subdomain struct {
	Lo   Dims
	Size Dims
}

// Volume returns the number of points in the subdomain.
func (s Subdomain) Volume() int { return s.Size.Volume() }

// Hi returns the exclusive upper corner of the subdomain.
func (s Subdomain) Hi() Dims {
	return Dims{s.Lo.X + s.Size.X, s.Lo.Y + s.Size.Y, s.Lo.Z + s.Size.Z}
}

// Contains reports whether global point (i, j, k) lies inside the subdomain.
func (s Subdomain) Contains(i, j, k int) bool {
	h := s.Hi()
	return i >= s.Lo.X && i < h.X && j >= s.Lo.Y && j < h.Y && k >= s.Lo.Z && k < h.Z
}

// Empty reports whether the subdomain holds no points.
func (s Subdomain) Empty() bool {
	return s.Size.X <= 0 || s.Size.Y <= 0 || s.Size.Z <= 0
}

func (s Subdomain) String() string {
	return fmt.Sprintf("[%v+%v)", s.Lo, s.Size)
}

// Intersect returns the overlap of two subdomains (possibly empty).
func Intersect(a, b Subdomain) Subdomain {
	lo := Dims{max(a.Lo.X, b.Lo.X), max(a.Lo.Y, b.Lo.Y), max(a.Lo.Z, b.Lo.Z)}
	ah, bh := a.Hi(), b.Hi()
	hi := Dims{min(ah.X, bh.X), min(ah.Y, bh.Y), min(ah.Z, bh.Z)}
	sz := Dims{hi.X - lo.X, hi.Y - lo.Y, hi.Z - lo.Z}
	if sz.X < 0 {
		sz.X = 0
	}
	if sz.Y < 0 {
		sz.Y = 0
	}
	if sz.Z < 0 {
		sz.Z = 0
	}
	return Subdomain{Lo: lo, Size: sz}
}
