package grid

import "fmt"

// Field is a three-dimensional scalar field on a uniform grid with a halo
// (ghost) layer of width Halo on every side. Interior indices run over
// [0, N.X) × [0, N.Y) × [0, N.Z); halo indices extend the range by Halo in
// each direction. Storage is a single contiguous slice with x fastest,
// matching the paper's Fortran layout (first index contiguous), so x-runs
// of points are cache- and vector-friendly.
type Field struct {
	N    Dims // interior extents
	Halo int  // halo width on each side

	sy, sz int // strides for y and z steps
	off    int // offset of interior point (0,0,0)
	data   []float64
}

// NewField allocates a zeroed field with the given interior extents and halo
// width.
func NewField(n Dims, halo int) *Field {
	if n.X <= 0 || n.Y <= 0 || n.Z <= 0 {
		panic(fmt.Sprintf("grid: non-positive field dims %v", n))
	}
	if halo < 0 {
		panic("grid: negative halo width")
	}
	wx, wy, wz := n.X+2*halo, n.Y+2*halo, n.Z+2*halo
	f := &Field{
		N:    n,
		Halo: halo,
		sy:   wx,
		sz:   wx * wy,
		data: make([]float64, wx*wy*wz),
	}
	f.off = halo*f.sz + halo*f.sy + halo
	return f
}

// NewFieldOn wraps existing storage as a field with the given interior
// extents and halo width. len(data) must match exactly. The GPU
// implementations use this to view simulated device memory as a field so
// kernel bodies can share the host-side indexing and stencil code.
func NewFieldOn(n Dims, halo int, data []float64) *Field {
	f := NewField(n, halo)
	if len(data) != len(f.data) {
		panic(fmt.Sprintf("grid: NewFieldOn: storage %d != required %d for %v halo %d",
			len(data), len(f.data), n, halo))
	}
	f.data = data
	return f
}

// Idx returns the flat index of point (i, j, k), where interior points have
// 0 ≤ i < N.X etc. and halo points extend the range by ±Halo.
func (f *Field) Idx(i, j, k int) int {
	return f.off + k*f.sz + j*f.sy + i
}

// At returns the value at (i, j, k).
func (f *Field) At(i, j, k int) float64 { return f.data[f.Idx(i, j, k)] }

// Set stores v at (i, j, k).
func (f *Field) Set(i, j, k int, v float64) { f.data[f.Idx(i, j, k)] = v }

// Data exposes the backing slice, including halos. Kernels that need raw
// speed index it via Idx and the strides from Strides.
func (f *Field) Data() []float64 { return f.data }

// Strides returns the flat-index strides (sx, sy, sz) for unit steps in
// x, y, and z. sx is always 1.
func (f *Field) Strides() (sx, sy, sz int) { return 1, f.sy, f.sz }

// Fill sets every interior point to fn(i, j, k).
func (f *Field) Fill(fn func(i, j, k int) float64) {
	for k := 0; k < f.N.Z; k++ {
		for j := 0; j < f.N.Y; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.N.X; i++ {
				f.data[row+i] = fn(i, j, k)
			}
		}
	}
}

// Clone returns a deep copy of the field, halos included.
func (f *Field) Clone() *Field {
	g := NewField(f.N, f.Halo)
	copy(g.data, f.data)
	return g
}

// CopyInteriorFrom copies the interior points of src into f. The two fields
// must have identical interior extents; halo widths may differ.
func (f *Field) CopyInteriorFrom(src *Field) {
	if f.N != src.N {
		panic(fmt.Sprintf("grid: interior mismatch %v vs %v", f.N, src.N))
	}
	for k := 0; k < f.N.Z; k++ {
		for j := 0; j < f.N.Y; j++ {
			copy(f.data[f.Idx(0, j, k):f.Idx(f.N.X, j, k)],
				src.data[src.Idx(0, j, k):src.Idx(src.N.X, j, k)])
		}
	}
}

// Swap exchanges the storage of f and g, which must have identical shape.
// It is the cheap way to flip "current" and "next" state between time steps.
func (f *Field) Swap(g *Field) {
	if f.N != g.N || f.Halo != g.Halo {
		panic("grid: swap of mismatched fields")
	}
	f.data, g.data = g.data, f.data
}

// InteriorSum returns the sum of all interior points. For the periodic
// Lax–Wendroff scheme this "mass" is conserved exactly up to roundoff,
// which the tests rely on.
func (f *Field) InteriorSum() float64 {
	var s float64
	for k := 0; k < f.N.Z; k++ {
		for j := 0; j < f.N.Y; j++ {
			row := f.Idx(0, j, k)
			for i := 0; i < f.N.X; i++ {
				s += f.data[row+i]
			}
		}
	}
	return s
}

// CopyPeriodicHalos fills the halo layer from the opposite interior
// boundaries, implementing the periodic domain for a single task
// (paper §IV-A Step 1). The three dimensions are handled serially — x, then
// y, then z — with each later sweep covering the full already-widened range
// of the earlier ones, so edge and corner halos are filled by composition,
// exactly like the 6-neighbor exchange strategy in §IV-B.
func (f *Field) CopyPeriodicHalos() {
	h := f.Halo
	if h == 0 {
		return
	}
	// x sweep: interior j, k only.
	for k := 0; k < f.N.Z; k++ {
		for j := 0; j < f.N.Y; j++ {
			for g := 1; g <= h; g++ {
				f.data[f.Idx(-g, j, k)] = f.data[f.Idx(f.N.X-g, j, k)]
				f.data[f.Idx(f.N.X-1+g, j, k)] = f.data[f.Idx(g-1, j, k)]
			}
		}
	}
	// y sweep: x range widened to include x halos.
	for k := 0; k < f.N.Z; k++ {
		for g := 1; g <= h; g++ {
			src1 := f.Idx(-h, f.N.Y-g, k)
			dst1 := f.Idx(-h, -g, k)
			src2 := f.Idx(-h, g-1, k)
			dst2 := f.Idx(-h, f.N.Y-1+g, k)
			n := f.N.X + 2*h
			copy(f.data[dst1:dst1+n], f.data[src1:src1+n])
			copy(f.data[dst2:dst2+n], f.data[src2:src2+n])
		}
	}
	// z sweep: x and y ranges widened.
	for g := 1; g <= h; g++ {
		for j := -h; j < f.N.Y+h; j++ {
			src1 := f.Idx(-h, j, f.N.Z-g)
			dst1 := f.Idx(-h, j, -g)
			src2 := f.Idx(-h, j, g-1)
			dst2 := f.Idx(-h, j, f.N.Z-1+g)
			n := f.N.X + 2*h
			copy(f.data[dst1:dst1+n], f.data[src1:src1+n])
			copy(f.data[dst2:dst2+n], f.data[src2:src2+n])
		}
	}
}

// PackFace copies the plane of points used for the halo exchange in
// dimension dim (0,1,2) on side dir (-1 or +1) into buf and returns the
// number of values written. The packed plane spans the full halo-widened
// range in dimensions below dim (which have already been exchanged) and the
// interior range in dimensions above, matching the serialized-dimension
// exchange of §IV-B. depth selects how many layers to pack (the halo width
// of the receiver); layer g ∈ [0, depth) is the g-th interior plane counted
// inward from the boundary on that side.
func (f *Field) PackFace(dim, dir, depth int, buf []float64) int {
	lo, hi := f.faceRange(dim)
	n := 0
	for g := 0; g < depth; g++ {
		var fix int
		if dir < 0 {
			fix = g // planes 0..depth-1
		} else {
			fix = f.N.Axis(dim) - 1 - g
		}
		n += f.copyPlane(dim, fix, lo, hi, buf[n:], true)
	}
	return n
}

// UnpackFace is the inverse of PackFace: it copies buf into the halo layers
// in dimension dim on side dir. Layer g ∈ [0, depth) is the g-th halo plane
// counted outward from the boundary.
func (f *Field) UnpackFace(dim, dir, depth int, buf []float64) int {
	lo, hi := f.faceRange(dim)
	n := 0
	for g := 0; g < depth; g++ {
		var fix int
		if dir < 0 {
			fix = -1 - g
		} else {
			fix = f.N.Axis(dim) + g
		}
		n += f.copyPlane(dim, fix, lo, hi, buf[n:], false)
	}
	return n
}

// FaceCount returns the number of values PackFace writes for one layer of
// the exchange plane in dimension dim.
func (f *Field) FaceCount(dim int) int {
	lo, hi := f.faceRange(dim)
	n := 1
	for d := 0; d < 3; d++ {
		if d != dim {
			n *= hi[d] - lo[d]
		}
	}
	return n
}

// faceRange returns the per-dimension [lo, hi) ranges of the exchange plane
// for dimension dim: halo-widened below dim, interior at and above it.
func (f *Field) faceRange(dim int) (lo, hi [3]int) {
	n := [3]int{f.N.X, f.N.Y, f.N.Z}
	for d := 0; d < 3; d++ {
		if d < dim {
			lo[d], hi[d] = -f.Halo, n[d]+f.Halo
		} else {
			lo[d], hi[d] = 0, n[d]
		}
	}
	return lo, hi
}

// copyPlane copies one plane (the coordinate in dimension dim fixed at fix)
// between the field and buf. pack=true reads the field into buf; pack=false
// writes buf into the field. It returns the number of values moved.
func (f *Field) copyPlane(dim, fix int, lo, hi [3]int, buf []float64, pack bool) int {
	n := 0
	switch dim {
	case 0:
		for k := lo[2]; k < hi[2]; k++ {
			for j := lo[1]; j < hi[1]; j++ {
				p := f.Idx(fix, j, k)
				if pack {
					buf[n] = f.data[p]
				} else {
					f.data[p] = buf[n]
				}
				n++
			}
		}
	case 1:
		for k := lo[2]; k < hi[2]; k++ {
			row := f.Idx(lo[0], fix, k)
			w := hi[0] - lo[0]
			if pack {
				copy(buf[n:n+w], f.data[row:row+w])
			} else {
				copy(f.data[row:row+w], buf[n:n+w])
			}
			n += w
		}
	case 2:
		for j := lo[1]; j < hi[1]; j++ {
			row := f.Idx(lo[0], j, fix)
			w := hi[0] - lo[0]
			if pack {
				copy(buf[n:n+w], f.data[row:row+w])
			} else {
				copy(f.data[row:row+w], buf[n:n+w])
			}
			n += w
		}
	default:
		panic(fmt.Sprintf("grid: bad dimension %d", dim))
	}
	return n
}
