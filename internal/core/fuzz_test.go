package core

import "testing"

// FuzzParseKind checks that ParseKind never panics, that every accepted
// identifier round-trips through Kind.String, and that every Kind.String
// is accepted.
func FuzzParseKind(f *testing.F) {
	for _, k := range append(Kinds(), WideHaloExt) {
		f.Add(k.String())
	}
	f.Add("")
	f.Add("single ")
	f.Add("Kind(3)")
	f.Add("hybrid-overlap\x00")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err != nil {
			return
		}
		if k.String() != s {
			t.Errorf("ParseKind(%q) = %v, but %v.String() = %q", s, k, k, k.String())
		}
	})
}
