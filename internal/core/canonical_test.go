package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/grid"
)

func testProblems() []Problem {
	odd := DefaultProblem(17, 31)
	odd.Nu = 0.123456789012345
	odd.T0 = 2.5
	odd.Wave = grid.Gaussian{Center: [3]float64{1.5, 2.25, 3.125}, Sigma: 0.875}
	return []Problem{
		DefaultProblem(64, 50),
		DefaultProblem(8, 0),
		odd,
	}
}

func testOptions() []Options {
	return []Options{
		{Tasks: 1, Threads: 1, BlockX: 32, BlockY: 8, BoxThickness: 1, HaloWidth: 2, GPU: GPUC2050},
		{Tasks: 8, Threads: 4, BlockX: 16, BlockY: 16, BoxThickness: 3, HaloWidth: 4,
			TasksPerGPU: 2, GPU: GPUC1060, Verify: true, TraceOverlap: true},
	}
}

// TestCanonicalRoundTrip checks that Canonical inverts through the parsers
// bit-exactly: the parsed structs equal the originals (for problems without
// a checkpointed initial state), and re-encoding is a fixpoint.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, p := range testProblems() {
		s := p.Canonical()
		got, err := ParseProblemCanonical(s)
		if err != nil {
			t.Fatalf("ParseProblemCanonical(%q): %v", s, err)
		}
		if got != p {
			t.Errorf("problem round trip: got %+v, want %+v (canonical %q)", got, p, s)
		}
		if got.Canonical() != s {
			t.Errorf("problem canonical not a fixpoint: %q vs %q", got.Canonical(), s)
		}
	}
	for _, o := range testOptions() {
		s := o.Canonical()
		got, err := ParseOptionsCanonical(s)
		if err != nil {
			t.Fatalf("ParseOptionsCanonical(%q): %v", s, err)
		}
		if got != o {
			t.Errorf("options round trip: got %+v, want %+v (canonical %q)", got, o, s)
		}
		if got.Canonical() != s {
			t.Errorf("options canonical not a fixpoint: %q vs %q", got.Canonical(), s)
		}
	}
}

// TestCanonicalExcludesContext checks that the cancellation context does
// not leak into the canonical form or the fingerprint.
func TestCanonicalExcludesContext(t *testing.T) {
	p := DefaultProblem(16, 5)
	o := Options{Tasks: 2}
	withCtx := o
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx.Ctx = ctx
	if o.Canonical() != withCtx.Canonical() {
		t.Errorf("Ctx leaked into canonical form")
	}
	if Fingerprint(BulkSync, p, o) != Fingerprint(BulkSync, p, withCtx) {
		t.Errorf("Ctx leaked into fingerprint")
	}
}

// TestCanonicalGPUDefaultCollapses checks that GPUDefault and GPUC2050 —
// the same physical device — share one canonical form.
func TestCanonicalGPUDefaultCollapses(t *testing.T) {
	a := Options{GPU: GPUDefault}
	b := Options{GPU: GPUC2050}
	if a.Canonical() != b.Canonical() {
		t.Errorf("GPUDefault %q != GPUC2050 %q", a.Canonical(), b.Canonical())
	}
}

// TestFingerprintSensitivity checks that every field that changes the
// computation changes the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultProblem(16, 10)
	baseO := Options{Tasks: 2, Threads: 2}
	ref := Fingerprint(BulkSync, base, baseO)

	mutate := []struct {
		name string
		kind Kind
		p    func(Problem) Problem
		o    func(Options) Options
	}{
		{name: "kind", kind: NonblockingOverlap},
		{name: "n", p: func(p Problem) Problem { p.N.X++; return p }},
		{name: "velocity", p: func(p Problem) Problem { p.C.Y = 0.75; return p }},
		{name: "nu", p: func(p Problem) Problem { p.Nu = 0.1; return p }},
		{name: "steps", p: func(p Problem) Problem { p.Steps++; return p }},
		{name: "wave", p: func(p Problem) Problem { p.Wave.Sigma = 3; return p }},
		{name: "t0", p: func(p Problem) Problem { p.T0 = 1; return p }},
		{name: "tasks", o: func(o Options) Options { o.Tasks = 4; return o }},
		{name: "threads", o: func(o Options) Options { o.Threads = 1; return o }},
		{name: "block", o: func(o Options) Options { o.BlockX = 16; return o }},
		{name: "box", o: func(o Options) Options { o.BoxThickness = 2; return o }},
		{name: "halo", o: func(o Options) Options { o.HaloWidth = 3; return o }},
		{name: "tpg", o: func(o Options) Options { o.TasksPerGPU = 2; return o }},
		{name: "gpu", o: func(o Options) Options { o.GPU = GPUC1060; return o }},
		{name: "verify", o: func(o Options) Options { o.Verify = true; return o }},
		{name: "trace", o: func(o Options) Options { o.TraceOverlap = true; return o }},
	}
	for _, m := range mutate {
		k, p, o := BulkSync, base, baseO
		if m.kind != 0 {
			k = m.kind
		}
		if m.p != nil {
			p = m.p(p)
		}
		if m.o != nil {
			o = m.o(o)
		}
		if got := Fingerprint(k, p, o); got == ref {
			t.Errorf("mutating %s did not change the fingerprint", m.name)
		}
	}
}

// TestCanonicalInitialState checks that a checkpointed initial state is
// folded into the encoding as a content hash, changes the fingerprint, and
// refuses to parse back.
func TestCanonicalInitialState(t *testing.T) {
	p := DefaultProblem(8, 3)
	f := grid.NewField(p.N, 1)
	f.Fill(func(i, j, k int) float64 { return float64(i + 2*j + 3*k) })
	withInit := p
	withInit.Initial = f

	if p.Canonical() == withInit.Canonical() {
		t.Errorf("initial state not reflected in canonical form")
	}
	if !strings.Contains(withInit.Canonical(), "init=sha256:") {
		t.Errorf("canonical form %q lacks the content hash", withInit.Canonical())
	}
	if _, err := ParseProblemCanonical(withInit.Canonical()); err == nil {
		t.Errorf("parsing a hashed initial state should fail")
	}

	// A different initial state must hash differently.
	g := f.Clone()
	g.Set(1, 1, 1, -99)
	other := p
	other.Initial = g
	if withInit.Canonical() == other.Canonical() {
		t.Errorf("distinct initial states share a canonical form")
	}
}

func TestParseCanonicalErrors(t *testing.T) {
	bad := []string{
		"",
		"p2;n=1,1,1",
		"o1;tasks=1",
		"p1;n=1,1;c=1,1,1;nu=0;steps=1;wave=1,1,1,1;t0=0;init=-",
		"p1;c=1,1,1;n=1,1,1;nu=0;steps=1;wave=1,1,1,1;t0=0;init=-",
		"p1;n=1,1,1;c=1,1,1;nu=0;steps=1;wave=1,1,1,1;t0=0;init=-;extra=1",
		"o1;tasks=x;threads=1;block=32,8;box=1;halo=2;tpg=0;gpu=c2050;verify=0;trace=0",
		"o1;tasks=1;threads=1;block=32,8;box=1;halo=2;tpg=0;gpu=k20;verify=0;trace=0",
		"o1;tasks=1;threads=1;block=32,8;box=1;halo=2;tpg=0;gpu=c2050;verify=2;trace=0",
	}
	for _, s := range bad {
		if _, err := ParseProblemCanonical(s); err == nil {
			if _, err := ParseOptionsCanonical(s); err == nil {
				t.Errorf("parse of %q unexpectedly succeeded", s)
			}
		}
	}
}
