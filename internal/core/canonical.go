package core

// Canonical encodings of run requests. A simulation request — (Kind,
// Problem, Options) — must hash identically whenever it describes the same
// computation, so the service result cache (internal/service) can answer
// repeated requests without re-running them. The encoding is a versioned,
// fixed-order key=value string with floats in Go's shortest round-trip
// form, which makes it both deterministic and parseable back into the
// structs it came from.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/grid"
)

// fv formats a float in the shortest form that parses back bit-exactly.
func fv(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// bv formats a bool as 0/1.
func bv(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Canonical returns a deterministic, versioned encoding of the problem.
// A checkpointed initial state (Problem.Initial) is folded in as a content
// hash: it keeps the fingerprint honest but cannot be parsed back.
func (p Problem) Canonical() string {
	init := "-"
	if p.Initial != nil {
		init = "sha256:" + hashField(p.Initial)
	}
	return strings.Join([]string{
		"p1",
		fmt.Sprintf("n=%d,%d,%d", p.N.X, p.N.Y, p.N.Z),
		fmt.Sprintf("c=%s,%s,%s", fv(p.C.X), fv(p.C.Y), fv(p.C.Z)),
		"nu=" + fv(p.Nu),
		"steps=" + strconv.Itoa(p.Steps),
		fmt.Sprintf("wave=%s,%s,%s,%s",
			fv(p.Wave.Center[0]), fv(p.Wave.Center[1]), fv(p.Wave.Center[2]), fv(p.Wave.Sigma)),
		"t0=" + fv(p.T0),
		"init=" + init,
	}, ";")
}

// Canonical returns a deterministic, versioned encoding of the options.
// The cancellation context and span recorder are excluded: two runs that
// differ only in Ctx or Rec are the same computation. The GPU model is
// encoded by name, so
// GPUDefault and GPUC2050 (the same device) collapse to one form.
func (o Options) Canonical() string {
	return strings.Join([]string{
		"o1",
		"tasks=" + strconv.Itoa(o.Tasks),
		"threads=" + strconv.Itoa(o.Threads),
		fmt.Sprintf("block=%d,%d", o.BlockX, o.BlockY),
		"box=" + strconv.Itoa(o.BoxThickness),
		"halo=" + strconv.Itoa(o.HaloWidth),
		"tpg=" + strconv.Itoa(o.TasksPerGPU),
		"gpu=" + o.GPU.String(),
		"verify=" + bv(o.Verify),
		"trace=" + bv(o.TraceOverlap),
	}, ";")
}

// Fingerprint returns the hex SHA-256 of a run request's canonical form.
// Two requests share a fingerprint exactly when they describe the same
// computation, which makes it a safe content-addressed cache key.
func Fingerprint(k Kind, p Problem, o Options) string {
	sum := sha256.Sum256([]byte(k.String() + "|" + p.Canonical() + "|" + o.Canonical()))
	return hex.EncodeToString(sum[:])
}

// hashField returns the hex SHA-256 of a field's extents and raw values.
func hashField(f *grid.Field) string {
	h := sha256.New()
	var buf [8]byte
	for _, n := range []int{f.N.X, f.N.Y, f.N.Z, f.Halo} {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(n)))
		h.Write(buf[:])
	}
	for _, v := range f.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonFields splits a canonical string, checks its version tag, and
// returns the key=value fields in order.
func canonFields(s, version string) ([][2]string, error) {
	parts := strings.Split(s, ";")
	if len(parts) == 0 || parts[0] != version {
		return nil, fmt.Errorf("core: canonical string %q is not version %s", s, version)
	}
	out := make([][2]string, 0, len(parts)-1)
	for _, part := range parts[1:] {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("core: malformed canonical field %q", part)
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

type canonReader struct {
	fields [][2]string
	next   int
	err    error
}

// take returns the value of the next field, which must have the given key.
func (r *canonReader) take(key string) string {
	if r.err != nil {
		return ""
	}
	if r.next >= len(r.fields) {
		r.err = fmt.Errorf("core: canonical string missing field %q", key)
		return ""
	}
	f := r.fields[r.next]
	r.next++
	if f[0] != key {
		r.err = fmt.Errorf("core: canonical field %q where %q expected", f[0], key)
		return ""
	}
	return f[1]
}

func (r *canonReader) takeInt(key string) int {
	v := r.take(key)
	if r.err != nil {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		r.err = fmt.Errorf("core: canonical field %s: %v", key, err)
	}
	return n
}

func (r *canonReader) takeFloat(key string) float64 {
	v := r.take(key)
	if r.err != nil {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		r.err = fmt.Errorf("core: canonical field %s: %v", key, err)
	}
	return f
}

func (r *canonReader) takeBool(key string) bool {
	v := r.take(key)
	if r.err != nil {
		return false
	}
	switch v {
	case "0":
		return false
	case "1":
		return true
	}
	r.err = fmt.Errorf("core: canonical field %s: bad bool %q", key, v)
	return false
}

// takeList returns the comma-separated parts of the next field, which must
// have exactly n of them.
func (r *canonReader) takeList(key string, n int) []string {
	v := r.take(key)
	if r.err != nil {
		return make([]string, n)
	}
	parts := strings.Split(v, ",")
	if len(parts) != n {
		r.err = fmt.Errorf("core: canonical field %s: want %d parts, got %d", key, n, len(parts))
		return make([]string, n)
	}
	return parts
}

func (r *canonReader) float(key, v string) float64 {
	if r.err != nil {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		r.err = fmt.Errorf("core: canonical field %s: %v", key, err)
	}
	return f
}

func (r *canonReader) int(key, v string) int {
	if r.err != nil {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		r.err = fmt.Errorf("core: canonical field %s: %v", key, err)
	}
	return n
}

func (r *canonReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.next != len(r.fields) {
		return fmt.Errorf("core: canonical string has %d trailing fields", len(r.fields)-r.next)
	}
	return nil
}

// ParseProblemCanonical inverts Problem.Canonical. Encodings of problems
// with a checkpointed initial state (init != "-") carry only a content
// hash and cannot be reconstructed; they parse with an error.
func ParseProblemCanonical(s string) (Problem, error) {
	fields, err := canonFields(s, "p1")
	if err != nil {
		return Problem{}, err
	}
	r := &canonReader{fields: fields}
	var p Problem
	n := r.takeList("n", 3)
	p.N = grid.Dims{X: r.int("n", n[0]), Y: r.int("n", n[1]), Z: r.int("n", n[2])}
	c := r.takeList("c", 3)
	p.C = grid.Velocity{X: r.float("c", c[0]), Y: r.float("c", c[1]), Z: r.float("c", c[2])}
	p.Nu = r.takeFloat("nu")
	p.Steps = r.takeInt("steps")
	w := r.takeList("wave", 4)
	p.Wave = grid.Gaussian{
		Center: [3]float64{r.float("wave", w[0]), r.float("wave", w[1]), r.float("wave", w[2])},
		Sigma:  r.float("wave", w[3]),
	}
	p.T0 = r.takeFloat("t0")
	init := r.take("init")
	if err := r.done(); err != nil {
		return Problem{}, err
	}
	if init != "-" {
		return Problem{}, fmt.Errorf("core: canonical problem has a checkpointed initial state (%s); it cannot be reconstructed from its hash", init)
	}
	return p, nil
}

// ParseOptionsCanonical inverts Options.Canonical. The parsed options
// carry a nil Ctx and nil Rec.
func ParseOptionsCanonical(s string) (Options, error) {
	fields, err := canonFields(s, "o1")
	if err != nil {
		return Options{}, err
	}
	r := &canonReader{fields: fields}
	var o Options
	o.Tasks = r.takeInt("tasks")
	o.Threads = r.takeInt("threads")
	b := r.takeList("block", 2)
	o.BlockX, o.BlockY = r.int("block", b[0]), r.int("block", b[1])
	o.BoxThickness = r.takeInt("box")
	o.HaloWidth = r.takeInt("halo")
	o.TasksPerGPU = r.takeInt("tpg")
	gpu := r.take("gpu")
	o.Verify = r.takeBool("verify")
	o.TraceOverlap = r.takeBool("trace")
	if err := r.done(); err != nil {
		return Options{}, err
	}
	switch gpu {
	case "c2050":
		o.GPU = GPUC2050
	case "c1060":
		o.GPU = GPUC1060
	default:
		return Options{}, fmt.Errorf("core: canonical field gpu: unknown model %q", gpu)
	}
	return o, nil
}
