package core

import (
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("round trip failed for %v: %v", k, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Fatal("nonsense kind accepted")
	}
}

func TestKindSections(t *testing.T) {
	want := map[Kind]string{
		SingleTask:    "IV-A",
		BulkSync:      "IV-B",
		HybridOverlap: "IV-I",
	}
	for k, s := range want {
		if k.Section() != s {
			t.Fatalf("%v section = %s, want %s", k, k.Section(), s)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if SingleTask.UsesMPI() || GPUResident.UsesMPI() {
		t.Fatal("single-node kinds must not use MPI")
	}
	if !BulkSync.UsesMPI() || !HybridOverlap.UsesMPI() {
		t.Fatal("distributed kinds must use MPI")
	}
	if SingleTask.UsesGPU() || ThreadedOverlap.UsesGPU() {
		t.Fatal("CPU kinds must not use GPU")
	}
	for _, k := range []Kind{GPUResident, GPUBulkSync, GPUStreams, HybridBulkSync, HybridOverlap} {
		if !k.UsesGPU() {
			t.Fatalf("%v must use GPU", k)
		}
	}
	if GPUResident.UsesCPUCompute() || GPUStreams.UsesCPUCompute() {
		t.Fatal("GPU-only kinds must not compute on CPU")
	}
	if !HybridOverlap.UsesCPUCompute() || !SingleTask.UsesCPUCompute() {
		t.Fatal("hybrid and CPU kinds must compute on CPU")
	}
}

func TestKindDescribe(t *testing.T) {
	for _, k := range Kinds() {
		if k.Describe() == "unknown" || k.Describe() == "" {
			t.Fatalf("%v has no description", k)
		}
	}
	if !strings.Contains(HybridOverlap.Describe(), "overlap") {
		t.Fatal("hybrid overlap description wrong")
	}
}

func TestProblemNormalize(t *testing.T) {
	p := DefaultProblem(16, 4)
	np, err := p.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if np.Nu != 1 { // max |c| = 1 -> nu = 1
		t.Fatalf("nu = %v, want 1", np.Nu)
	}
	if np.Wave == (grid.Gaussian{}) {
		t.Fatal("wave not defaulted")
	}
	// Original untouched (value semantics).
	if p.Nu != 0 {
		t.Fatal("Normalize mutated receiver")
	}
}

func TestProblemNormalizeErrors(t *testing.T) {
	bad := []Problem{
		{N: grid.Uniform(2), C: grid.Velocity{X: 1}, Steps: 1},           // too small
		{N: grid.Uniform(8), C: grid.Velocity{X: 1}, Steps: -1},          // negative steps
		{N: grid.Uniform(8), C: grid.Velocity{X: 1}, Steps: 1, Nu: 2},    // unstable
		{N: grid.Uniform(8), C: grid.Velocity{X: 1}, Steps: 1, Nu: -0.5}, // negative nu
	}
	for i, p := range bad {
		if _, err := p.Normalize(); err == nil {
			t.Fatalf("case %d: bad problem accepted", i)
		}
	}
}

func TestProblemFlops(t *testing.T) {
	p := DefaultProblem(10, 1)
	if got, want := p.Flops(), float64(1000*53); got != want {
		t.Fatalf("Flops = %v, want %v", got, want)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.Tasks != 1 || o.Threads != 1 || o.BlockX != 32 || o.BlockY != 8 || o.BoxThickness != 1 {
		t.Fatalf("bad defaults: %+v", o)
	}
	o2 := Options{Tasks: 3, Threads: 5, BlockX: 16, BlockY: 4, BoxThickness: 2}.Normalize()
	if o2.Tasks != 3 || o2.Threads != 5 || o2.BlockX != 16 || o2.BlockY != 4 || o2.BoxThickness != 2 {
		t.Fatal("Normalize clobbered explicit values")
	}
}

func TestRegistry(t *testing.T) {
	type fake struct{ Runner }
	Register(Kind(100), func() Runner { return fake{} })
	r, err := New(Kind(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(fake); !ok {
		t.Fatal("wrong runner returned")
	}
	if _, err := New(Kind(101)); err == nil {
		t.Fatal("unregistered kind accepted")
	}
	found := false
	for _, k := range Registered() {
		if k == Kind(100) {
			found = true
		}
	}
	if !found {
		t.Fatal("registered kind not listed")
	}
}

func TestGPUModelString(t *testing.T) {
	if GPUDefault.String() != "c2050" || GPUC1060.String() != "c1060" || GPUC2050.String() != "c2050" {
		t.Fatal("bad GPU model names")
	}
}

func TestPaperProblem(t *testing.T) {
	p := PaperProblem(10)
	if p.N != grid.Uniform(420) {
		t.Fatalf("paper grid %v", p.N)
	}
	if p.Steps != 10 {
		t.Fatal("steps not set")
	}
}
