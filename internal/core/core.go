// Package core defines the shared vocabulary of the reproduction: the
// advection test problem (paper §II), the catalogue of the nine
// implementations (§IV), run options, results with verification norms, and
// a registry through which the implementations in internal/impl are
// constructed. The root package advect re-exports this as the public API.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/stencil"
)

// Kind identifies one of the paper's nine implementations (§IV-A … §IV-I).
type Kind int

const (
	// SingleTask is §IV-A: one task, OpenMP threading only.
	SingleTask Kind = iota
	// BulkSync is §IV-B: bulk-synchronous MPI.
	BulkSync
	// NonblockingOverlap is §IV-C: MPI overlap via nonblocking
	// communication and interior thirds.
	NonblockingOverlap
	// ThreadedOverlap is §IV-D: MPI overlap via an OpenMP master thread
	// and guided scheduling.
	ThreadedOverlap
	// GPUResident is §IV-E: single GPU, problem resident in device memory.
	GPUResident
	// GPUBulkSync is §IV-F: GPU computation with bulk-synchronous MPI.
	GPUBulkSync
	// GPUStreams is §IV-G: GPU computation with MPI overlap via CUDA
	// streams.
	GPUStreams
	// HybridBulkSync is §IV-H: CPU and GPU computation with
	// bulk-synchronous MPI (box decomposition).
	HybridBulkSync
	// HybridOverlap is §IV-I: CPU and GPU computation partitioned for
	// overlap with nonblocking MPI and CPU-GPU communication.
	HybridOverlap

	numKinds

	// WideHaloExt is this reproduction's extension beyond the paper: a
	// communication-avoiding variant of the bulk-synchronous
	// implementation that exchanges halos of width W once every W steps
	// and redundantly computes shrinking extended regions in between,
	// trading extra flops for W-fold fewer messages. It is not one of the
	// paper's nine implementations and is excluded from Kinds().
	WideHaloExt Kind = numKinds
)

// Kinds returns all nine implementation kinds in paper order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns a short stable identifier, usable as a CLI value.
func (k Kind) String() string {
	switch k {
	case SingleTask:
		return "single"
	case BulkSync:
		return "bulk"
	case NonblockingOverlap:
		return "nonblocking"
	case ThreadedOverlap:
		return "threaded"
	case GPUResident:
		return "gpu"
	case GPUBulkSync:
		return "gpu-bulk"
	case GPUStreams:
		return "gpu-streams"
	case HybridBulkSync:
		return "hybrid-bulk"
	case HybridOverlap:
		return "hybrid-overlap"
	case WideHaloExt:
		return "wide-halo"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Section returns the paper section describing the implementation, or
// "ext" for this reproduction's extension implementations.
func (k Kind) Section() string {
	if k >= 0 && k < numKinds {
		return "IV-" + string(rune('A'+int(k)))
	}
	if k == WideHaloExt {
		return "ext"
	}
	return "?"
}

// Describe returns the paper's name for the implementation.
func (k Kind) Describe() string {
	switch k {
	case SingleTask:
		return "single task"
	case BulkSync:
		return "bulk-synchronous MPI"
	case NonblockingOverlap:
		return "MPI using nonblocking communication for overlap"
	case ThreadedOverlap:
		return "MPI using OpenMP threading for overlap"
	case GPUResident:
		return "GPU resident"
	case GPUBulkSync:
		return "GPU with bulk-synchronous MPI"
	case GPUStreams:
		return "GPU with MPI overlap using CUDA streams"
	case HybridBulkSync:
		return "GPU and CPU computation with bulk-synchronous MPI"
	case HybridOverlap:
		return "GPU and CPU computation partitioned for overlap"
	case WideHaloExt:
		return "communication-avoiding bulk MPI with wide halos (extension)"
	}
	return "unknown"
}

// UsesMPI reports whether the implementation is distributed.
func (k Kind) UsesMPI() bool { return k != SingleTask && k != GPUResident }

// UsesGPU reports whether the implementation computes on the GPU.
func (k Kind) UsesGPU() bool { return k >= GPUResident && k < numKinds }

// UsesCPUCompute reports whether CPUs compute grid points.
func (k Kind) UsesCPUCompute() bool {
	return k <= ThreadedOverlap || k == HybridBulkSync || k == HybridOverlap
}

// ParseKind converts a string produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range append(Kinds(), WideHaloExt) {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown implementation %q", s)
}

// Problem is the paper's test case: linear advection of a Gaussian wave in
// a periodic cube (§II).
type Problem struct {
	N     grid.Dims     // grid extents (the paper uses 420³)
	C     grid.Velocity // constant uniform velocity
	Nu    float64       // Δ/δ; 0 selects the maximum stable value
	Steps int           // time steps to integrate
	Wave  grid.Gaussian // initial condition; zero value selects the default

	// Initial, when non-nil, overrides Wave as the starting state — used
	// to resume from a checkpoint. Its interior extents must equal N.
	Initial *grid.Field
	// T0 is the simulated time already integrated into Initial, so
	// verification against the analytic solution stays meaningful across
	// restarts.
	T0 float64
}

// DefaultProblem returns a laptop-scale instance of the test case with the
// paper's velocity structure: all components nonzero and distinct so every
// coefficient of Table I is exercised.
func DefaultProblem(n int, steps int) Problem {
	return Problem{
		N:     grid.Uniform(n),
		C:     grid.Velocity{X: 1, Y: 0.5, Z: 0.25},
		Steps: steps,
	}
}

// PaperProblem returns the paper's full-scale 420³ configuration.
func PaperProblem(steps int) Problem { return DefaultProblem(420, steps) }

// Normalize fills defaulted fields and validates the problem.
func (p Problem) Normalize() (Problem, error) {
	if p.N.X <= 2 || p.N.Y <= 2 || p.N.Z <= 2 {
		return p, fmt.Errorf("core: grid %v too small for the 3x3x3 stencil", p.N)
	}
	if p.Steps < 0 {
		return p, fmt.Errorf("core: negative step count %d", p.Steps)
	}
	if p.Nu == 0 {
		p.Nu = stencil.MaxStableNu(p.C)
	}
	if p.Nu <= 0 {
		return p, fmt.Errorf("core: non-positive nu %v", p.Nu)
	}
	if !stencil.Stable(p.C, p.Nu) {
		return p, fmt.Errorf("core: nu %v unstable for velocity %+v", p.Nu, p.C)
	}
	if p.Wave == (grid.Gaussian{}) {
		p.Wave = grid.DefaultGaussian(p.N)
	}
	if p.Initial != nil && p.Initial.N != p.N {
		return p, fmt.Errorf("core: initial state %v does not match grid %v", p.Initial.N, p.N)
	}
	return p, nil
}

// InitialValue returns the starting value at global point (i, j, k).
func (p Problem) InitialValue(i, j, k int) float64 {
	if p.Initial != nil {
		return p.Initial.At(i, j, k)
	}
	return p.Wave.Eval(p.N, i, j, k)
}

// Flops returns the floating-point operations one full time step performs
// (53 per grid point, paper §II).
func (p Problem) Flops() float64 {
	return float64(p.N.Volume()) * stencil.FlopsPerPoint
}

// Options selects the parallel configuration of a run — the paper's tuning
// parameters.
type Options struct {
	Tasks   int // MPI tasks (ranks); 0 means 1
	Threads int // OpenMP threads per task; 0 means 1

	// BlockX and BlockY are the GPU thread-block dimensions (§V-C);
	// zero selects 32×8.
	BlockX, BlockY int

	// BoxThickness is the CPU shell thickness of the hybrid
	// implementations (§IV-H, Fig. 1); zero selects a one-point veneer,
	// the paper's usual optimum.
	BoxThickness int

	// HaloWidth is the exchange depth W of the communication-avoiding
	// extension implementation: halos of width W are exchanged once every
	// W steps. Zero selects 2.
	HaloWidth int

	// TasksPerGPU makes that many MPI tasks share one simulated device,
	// the paper's tunable (§IV-F: "we can have more than one MPI task
	// issuing calls to a particular GPU"). Zero gives every task its own
	// device. Shared devices serialize kernels and DMA in virtual time,
	// so sim.seconds reflects the contention.
	TasksPerGPU int

	// GPU selects the simulated device for GPU implementations.
	GPU GPUModel

	// Verify computes error norms against the analytic solution after the
	// run and the mass drift across it.
	Verify bool

	// TraceOverlap records every device's simulated GPU/PCIe timeline and
	// adds overlap accounting to Result.Stats: "trace.overlap.sec" is the
	// total simulated time during which interior kernels ran concurrently
	// with PCIe transfers or boundary kernels — the quantity the paper's
	// overlap implementations exist to maximize. Per-device stats are
	// merged across ranks (see internal/impl/trace.go). GPU
	// implementations only.
	TraceOverlap bool

	// Rec, when non-nil, records per-rank per-phase spans from every
	// substrate (CPU compute, MPI, PCIe, kernels) for the overlap report
	// and Chrome trace export — see internal/obs. Nil disables recording
	// at zero cost. Like Ctx, Rec does not participate in Canonical or
	// Fingerprint: tracing a run does not change what it computes.
	Rec *obs.Recorder

	// Ctx, when non-nil, carries a cancellation signal into the run: the
	// functional implementations poll it between timesteps and abort with
	// its error, so a cancelled request stops a long simulation instead of
	// running it to completion. Nil means run to completion. Ctx does not
	// participate in Canonical or Fingerprint — two runs that differ only
	// in their context are the same computation.
	Ctx context.Context
}

// Context returns the run's cancellation context, never nil.
func (o Options) Context() context.Context {
	if o.Ctx == nil {
		//advect:nolint ctxflow nil Ctx documents "run to completion"; Background is that default, not a severed caller signal
		return context.Background()
	}
	return o.Ctx
}

// CheckCancel returns the context's error if the options carry a cancelled
// context, nil otherwise. Implementations call it between timesteps.
func (o Options) CheckCancel() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// GPUModel names a simulated device generation.
type GPUModel int

const (
	// GPUDefault selects the Tesla C2050 (Yona's device).
	GPUDefault GPUModel = iota
	// GPUC1060 selects the Tesla C1060 with its slower PCIe link (Lens).
	GPUC1060
	// GPUC2050 selects the Tesla C2050 with the faster PCIe link (Yona).
	GPUC2050
)

func (g GPUModel) String() string {
	switch g {
	case GPUDefault, GPUC2050:
		return "c2050"
	case GPUC1060:
		return "c1060"
	}
	return fmt.Sprintf("GPUModel(%d)", int(g))
}

// Normalize fills defaults.
func (o Options) Normalize() Options {
	if o.Tasks <= 0 {
		o.Tasks = 1
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.BlockX <= 0 {
		o.BlockX = 32
	}
	if o.BlockY <= 0 {
		o.BlockY = 8
	}
	if o.BoxThickness <= 0 {
		o.BoxThickness = 1
	}
	if o.HaloWidth <= 0 {
		o.HaloWidth = 2
	}
	return o
}

// Result reports a completed run.
type Result struct {
	Kind  Kind
	Final *grid.Field // gathered global final state

	// Norms is the error against the analytic solution (Verify only).
	Norms grid.Norms
	// MassDrift is |Σu_final − Σu_initial|, which periodic Lax–Wendroff
	// conserves to roundoff (Verify only).
	MassDrift float64

	Elapsed time.Duration // wall-clock time of the stepping loop
	GF      float64       // analytic flops / Elapsed, in 1e9 flop/s

	// Stats carries implementation-specific counters (messages, bytes,
	// kernels, simulated times) for the harness to report.
	Stats map[string]float64
}

// Runner is one of the paper's implementations, ready to run problems.
type Runner interface {
	// Kind identifies the implementation.
	Kind() Kind
	// Run integrates the problem and returns the result. Implementations
	// must produce the same final state as the single-task reference up to
	// roundoff.
	Run(p Problem, o Options) (*Result, error)
}

// Factory builds a Runner.
type Factory func() Runner

var (
	regMu    sync.RWMutex
	registry = map[Kind]Factory{}
)

// Register installs a factory for kind. The implementations in
// internal/impl register themselves at init time; re-registration replaces
// the factory (useful for tests).
func Register(k Kind, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[k] = f
}

// New constructs the registered Runner for kind.
func New(k Kind) (Runner, error) {
	regMu.RLock()
	f, ok := registry[k]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no implementation registered for %v (import repro/internal/impl)", k)
	}
	return f(), nil
}

// Registered returns the kinds with installed factories, sorted.
func Registered() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Kind, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
