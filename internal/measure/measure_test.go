package measure

import (
	"testing"
	"time"
)

// fakeStepper simulates a deterministic per-step cost without sleeping.
func fakeStepper(perStep time.Duration) Stepper {
	return func(n int) time.Duration { return perStep * time.Duration(n) }
}

func TestCalibrateStepsReachesTarget(t *testing.T) {
	for _, perStep := range []time.Duration{
		10 * time.Microsecond, time.Millisecond, 50 * time.Millisecond, 2 * time.Second,
	} {
		step := fakeStepper(perStep)
		n, err := CalibrateSteps(step, 5*time.Second)
		if err != nil {
			t.Fatalf("perStep %v: %v", perStep, err)
		}
		if got := step(n); got < 5*time.Second {
			t.Fatalf("perStep %v: %d steps measure only %v", perStep, n, got)
		}
		// Headroom should be modest, not 10x.
		if got := step(n); got > 30*time.Second {
			t.Fatalf("perStep %v: %d steps over-measure at %v", perStep, n, got)
		}
	}
}

func TestCalibrateStepsDefaultTarget(t *testing.T) {
	n, err := CalibrateSteps(fakeStepper(100*time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fakeStepper(100*time.Millisecond)(n) < DefaultTarget {
		t.Fatal("default target not met")
	}
}

func TestCalibrateStepsTooFast(t *testing.T) {
	// A step that reports zero time can never calibrate.
	if _, err := CalibrateSteps(func(n int) time.Duration { return 0 }, time.Second); err == nil {
		t.Fatal("uncalibratable stepper accepted")
	}
}

func TestResultMath(t *testing.T) {
	r := Result{Steps: 10, Elapsed: 2 * time.Second}
	if r.PerStep() != 200*time.Millisecond {
		t.Fatalf("PerStep = %v", r.PerStep())
	}
	// 1e9 flops per step over 2s at 10 steps = 5 GF.
	if gf := r.GF(1e9); gf != 5 {
		t.Fatalf("GF = %v", gf)
	}
	if (Result{}).PerStep() != 0 || (Result{}).GF(1) != 0 {
		t.Fatal("zero result math wrong")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// A real (but tiny) target with a fake clock-free stepper.
	res, err := Run(fakeStepper(time.Millisecond), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Fatalf("measured only %v", res.Elapsed)
	}
}
