// Package measure implements the paper's timing methodology (§II): "We
// vary the number of steps to ensure that each experiment runs long enough
// for accurate measurements, at least 5 seconds per measurement." Given a
// step function, CalibrateSteps estimates the per-step cost from short
// probe runs and returns the step count that makes the real measurement
// run at least the target duration.
package measure

import (
	"fmt"
	"time"
)

// DefaultTarget is the paper's minimum measurement duration.
const DefaultTarget = 5 * time.Second

// Stepper runs n consecutive time steps and reports the wall time of the
// stepping loop.
type Stepper func(n int) time.Duration

// CalibrateSteps returns a step count whose measurement should take at
// least target. It probes with geometrically growing counts until a probe
// takes long enough to extrapolate from (at least 1% of the target),
// then scales with 10% headroom.
func CalibrateSteps(step Stepper, target time.Duration) (int, error) {
	if target <= 0 {
		target = DefaultTarget
	}
	const maxSteps = 1 << 24
	probeFloor := target / 100
	for n := 1; n <= maxSteps; n *= 4 {
		d := step(n)
		if d <= 0 {
			continue
		}
		if d >= target {
			return n, nil
		}
		if d >= probeFloor {
			perStep := d / time.Duration(n)
			if perStep <= 0 {
				perStep = time.Nanosecond
			}
			need := int(float64(target)/float64(perStep)*1.1) + 1
			if need < n {
				need = n
			}
			if need > maxSteps {
				need = maxSteps
			}
			return need, nil
		}
	}
	return 0, fmt.Errorf("measure: steps too fast to calibrate against %v", target)
}

// Result is one completed measurement.
type Result struct {
	Steps   int
	Elapsed time.Duration
}

// PerStep returns the mean step duration.
func (r Result) PerStep() time.Duration {
	if r.Steps == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Steps)
}

// GF converts the measurement to billions of floating-point operations per
// second given the per-step operation count, as the paper computes its
// reported numbers analytically from the 53 flops/point.
func (r Result) GF(flopsPerStep float64) float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return flopsPerStep * float64(r.Steps) / s / 1e9
}

// Run calibrates and performs the measurement in one call.
func Run(step Stepper, target time.Duration) (Result, error) {
	n, err := CalibrateSteps(step, target)
	if err != nil {
		return Result{}, err
	}
	return Result{Steps: n, Elapsed: step(n)}, nil
}
