package perf

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
)

func TestOverlapCounterpart(t *testing.T) {
	pairs := map[core.Kind]core.Kind{
		core.NonblockingOverlap: core.BulkSync,
		core.ThreadedOverlap:    core.BulkSync,
		core.GPUStreams:         core.GPUBulkSync,
		core.HybridOverlap:      core.HybridBulkSync,
		core.BulkSync:           core.BulkSync,
		core.SingleTask:         core.SingleTask,
		core.HybridBulkSync:     core.HybridBulkSync,
	}
	for k, want := range pairs {
		if got := OverlapCounterpart(k); got != want {
			t.Errorf("OverlapCounterpart(%v) = %v, want %v", k, got, want)
		}
	}
}

// TestExpectedHiddenFraction pins the shape the anomaly engine relies on:
// bulk-synchronous kinds are predicted to hide nothing, overlap kinds are
// predicted to hide a solidly positive share of the exchange at low core
// counts (the paper's big-message regime), and the fraction stays in
// [0, 1].
func TestExpectedHiddenFraction(t *testing.T) {
	yona := machine.Yona()

	bulkKinds := []core.Kind{core.SingleTask, core.BulkSync, core.HybridBulkSync, core.GPUBulkSync}
	for _, k := range bulkKinds {
		f, err := ExpectedHiddenFraction(Config{M: yona, Kind: k, Cores: 2, Threads: 1, N: grid.Uniform(48)})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if f != 0 {
			t.Errorf("%v: expected fraction 0 for a bulk kind, got %g", k, f)
		}
	}

	// The GPU-side overlap schedules hide a solid share of the exchange
	// even at two tasks; the anomaly e2e leans on hybrid-overlap staying
	// well above the default drift tolerance.
	gpuOverlap := []core.Kind{core.HybridOverlap, core.GPUStreams}
	for _, k := range gpuOverlap {
		f, err := ExpectedHiddenFraction(Config{M: yona, Kind: k, Cores: 2, Threads: 1, N: grid.Uniform(48)})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		t.Logf("%v on Yona, 2 cores, 48^3: predicted hidden fraction %.3f", k, f)
		if f <= 0.3 || f > 1 {
			t.Errorf("%v: predicted fraction %g outside (0.3, 1]", k, f)
		}
	}

	// Nonblocking overlap only pays while messages are bandwidth-bound; at
	// a tiny two-task problem the model may honestly predict no hiding, but
	// the fraction must stay within [0, 1] everywhere the model evaluates.
	for _, cores := range []int{2, 12, 24} {
		f, err := ExpectedHiddenFraction(Config{M: yona, Kind: core.NonblockingOverlap, Cores: cores, Threads: 1})
		if err != nil {
			t.Fatalf("nonblocking at %d cores: %v", cores, err)
		}
		t.Logf("nonblocking on Yona, %d cores, paper grid: predicted hidden fraction %.3f", cores, f)
		if f < 0 || f > 1 {
			t.Errorf("nonblocking at %d cores: predicted fraction %g outside [0, 1]", cores, f)
		}
	}
}
