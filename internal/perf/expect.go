package perf

import (
	"repro/internal/core"
)

// Model-side overlap expectations. The measured side of the comparison is
// obs.BuildReport's mpi/compute pair — the share of MPI exchange time a
// traced run actually hid behind computation. The model side, produced
// here, is the same quantity derived from the timeline models: how much of
// the bulk-synchronous exchange cost the overlap schedule is predicted to
// remove. The flight-recorder anomaly engine compares the two and flags
// runs whose measured overlap drifts outside a tolerance band around the
// prediction — the paper's analytic expectation turned into a production
// alarm.

// OverlapCounterpart returns the bulk-synchronous implementation an
// overlap kind improves on — the baseline its hidden communication is
// measured against (§IV pairs C/B, D/B, G/F, I/H). Kinds whose schedule
// hides nothing map to themselves.
func OverlapCounterpart(k core.Kind) core.Kind {
	switch k {
	case core.NonblockingOverlap, core.ThreadedOverlap:
		return core.BulkSync
	case core.GPUStreams:
		return core.GPUBulkSync
	case core.HybridOverlap:
		return core.HybridBulkSync
	}
	return k
}

// commKeys are the breakdown components that count as exchange cost in a
// bulk-synchronous estimate: the CPU models report "comm", the GPU and
// hybrid models report the network share as "mpi" plus the CPU-mediated
// device pipeline as "cpuPipe"/"pcie"/"ring".
var commKeys = []string{"comm", "mpi", "cpuPipe", "pcie", "ring"}

// commSeconds sums an estimate's exchange components.
func commSeconds(est Estimate) float64 {
	var total float64
	for _, k := range commKeys {
		total += est.Breakdown[k]
	}
	return total
}

// ExpectedHiddenFraction predicts the hidden-communication fraction for
// one configuration: the step time saved relative to the kind's
// bulk-synchronous counterpart, expressed as a share of the counterpart's
// exchange cost and clamped to [0, 1]. A bulk-synchronous kind (its own
// counterpart) is predicted to hide nothing. The result is directly
// comparable to the measured mpi/compute pair fraction of an obs report.
func ExpectedHiddenFraction(cfg Config) (float64, error) {
	base := cfg
	base.Kind = OverlapCounterpart(cfg.Kind)
	if base.Kind == cfg.Kind {
		return 0, nil
	}
	over, err := Evaluate(cfg)
	if err != nil {
		return 0, err
	}
	bulk, err := Evaluate(base)
	if err != nil {
		return 0, err
	}
	comm := commSeconds(bulk)
	if comm <= 0 {
		return 0, nil
	}
	f := (bulk.StepSec - over.StepSec) / comm
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f, nil
}
