package perf

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/stencil"
)

// gpuGeom collects the per-task GPU quantities of a configuration.
type gpuGeom struct {
	props gpusim.Props
	link  gpusim.Link

	interiorKernel float64 // one interior-kernel execution
	faceKernels    float64 // halo-unpack + wall-compute kernels
	launches       float64 // host-side launch overhead per step
	wallBytes      float64 // boundary shell, one direction
	haloBytes      float64 // halo shell, one direction
}

// newGPUGeom models the kernels of §IV-F/G over an n-point local domain.
func newGPUGeom(cfg Config, n grid.Dims) (gpuGeom, error) {
	gp := cfg.M.GPU
	g := gpuGeom{props: gp.Props, link: gp.Link}

	interior := stencil.Interior(n)
	l := gpusim.StencilLaunch(interior.Size.X, interior.Size.Y, interior.Size.Z, cfg.BlockX, cfg.BlockY)
	t, err := gpusim.KernelTime(gp.Props, l)
	if err != nil {
		return g, fmt.Errorf("perf: interior kernel: %w", err)
	}
	g.interiorKernel = t

	wallPts := n.Volume() - interior.Size.Volume()
	haloPts := haloShellValues(n)
	g.wallBytes = float64(wallPts) * 8
	g.haloBytes = float64(haloPts) * 8
	// Boundary work: the halo-unpack kernel moves haloPts values and the
	// wall kernels compute wallPts values; both are thin, memory-dominated
	// launches.
	g.faceKernels = memKernelTime(gp.Props, haloPts) + computeKernelTime(gp.Props, wallPts)
	g.launches = 8 * gp.Props.KernelLaunchSec
	return g, nil
}

// memKernelTime approximates a memory-movement kernel over pts values.
func memKernelTime(p gpusim.Props, pts int) float64 {
	// 16 B/point at roughly half effective bandwidth (scattered slabs).
	return float64(pts) * 16 / (p.MemBWGBs * 1e9 * 0.5)
}

// computeKernelTime approximates a thin compute kernel over pts points:
// stencil flops at the device's effective rate with poor locality.
func computeKernelTime(p gpusim.Props, pts int) float64 {
	return float64(pts) * stencil.FlopsPerPoint / (p.EffectiveDPGFlops() * 1e9 * 0.5)
}

// tasksPerGPU returns how many MPI tasks share one device: the node's
// tasks divided among its GPUs (the paper's clusters have one GPU per
// node; the §VI what-if of more GPUs per node divides the sharing).
func tasksPerGPU(cfg Config, l layout) float64 {
	g := cfg.M.GPUsPerNode
	if g < 1 {
		g = 1
	}
	t := float64(l.tasksPerNode) / float64(g)
	if t < 1 {
		t = 1
	}
	return t
}

// commTotalNet is the network-only exchange cost for the GPU
// implementations, whose CPU-side copy work is folded into the calibrated
// ShmMPIGBs pipeline instead: self-neighbor dimensions cost nothing here.
func commTotalNet(cfg Config, l layout) float64 {
	var total float64
	for dim := 0; dim < 3; dim++ {
		if l.decomp.P.Axis(dim) == 1 {
			continue
		}
		total += commPhase(cfg, l, dim)
	}
	return total
}

// modelGPUResident is §IV-E: one kernel per step, nothing else.
func modelGPUResident(cfg Config) (float64, map[string]float64, error) {
	gp := cfg.M.GPU
	l := gpusim.StencilLaunch(cfg.N.X, cfg.N.Y, cfg.N.Z, cfg.BlockX, cfg.BlockY)
	t, err := gpusim.KernelTime(gp.Props, l)
	if err != nil {
		return 0, nil, err
	}
	total := t + gp.Props.KernelLaunchSec
	return total, map[string]float64{"kernel": t, "launch": gp.Props.KernelLaunchSec}, nil
}

// modelGPUMPI covers §IV-F (overlap=false) and §IV-G (overlap=true).
//
// In both, every boundary byte follows the CPU-mediated pipeline the paper
// ultimately indicts (§V-E): GPU → PCIe → CPU pack/MPI/unpack → PCIe →
// GPU. The bulk version serializes it all with the kernels; the stream
// version hides it behind the interior kernel — but the pipeline itself is
// so slow that at small scale it dominates the step anyway, which is
// exactly why the paper measures 24 GF (F) and 35 GF (G) against 86 GF
// GPU-resident on one Yona node.
func modelGPUMPI(cfg Config, overlap bool) (float64, map[string]float64, error) {
	l, err := newLayout(cfg)
	if err != nil {
		return 0, nil, err
	}
	g, err := newGPUGeom(cfg, l.sub)
	if err != nil {
		return 0, nil, err
	}
	gp := cfg.M.GPU
	tpn := tasksPerGPU(cfg, l)
	share := gp.TaskShareSec * (tpn - 1)
	xferBytes := g.haloBytes + g.wallBytes
	// The CPU-side pipeline (pack, transport, unpack, driver handoffs) is
	// effectively serialized per GPU: the tasks sharing a device queue on
	// the same channel, so their pipe times add.
	cpuPipe := tpn * xferBytes / (gp.ShmMPIGBs * 1e9)
	mpiNet := commTotalNet(cfg, l)
	skew := syncSkew(cfg.M.Net, l.tasks)

	bd := map[string]float64{
		"interior": g.interiorKernel, "faces": g.faceKernels,
		"cpuPipe": cpuPipe, "mpi": mpiNet, "share": share, "sync": skew,
	}
	if !overlap {
		// §IV-F: pageable synchronous copies, everything serialized.
		pcie := xferBytes/(gp.PageableGBs*1e9) + 2*gp.Link.LatencySec
		total := tpn*(g.interiorKernel+g.faceKernels+pcie+g.launches) +
			cpuPipe + mpiNet + 2*gp.PhaseSyncSec + share + skew
		bd["pcie"] = pcie
		return total, bd, nil
	}
	// §IV-G: interior kernel on stream 1; halo upload, face kernels, and
	// boundary download on stream 2, concurrent with the MPI pipeline.
	pcie := xferBytes/(gp.Link.GBs*1e9) + 2*gp.Link.LatencySec
	chain := cpuPipe + mpiNet + tpn*pcie
	var total float64
	if gp.Props.ConcurrentKernels {
		chain += tpn * g.faceKernels
		total = math.Max(tpn*g.interiorKernel, chain)
	} else {
		// Kernels serialize on the device: the boundary kernels run after
		// the interior kernel even from another stream.
		total = math.Max(tpn*g.interiorKernel, chain) + tpn*g.faceKernels
	}
	total += gp.PhaseSyncSec + tpn*g.launches + share + skew
	bd["pcie"] = pcie
	bd["chain"] = chain
	return total, bd, nil
}

// modelHybrid covers §IV-H (overlap=false) and §IV-I (overlap=true): the
// box decomposition of Fig. 1 with the GPU computing the inner block and
// the CPU the shell of thickness cfg.BoxThickness.
func modelHybrid(cfg Config, overlap bool) (float64, map[string]float64, error) {
	l, err := newLayout(cfg)
	if err != nil {
		return 0, nil, err
	}
	box, err := grid.NewBoxSplit(l.sub, cfg.BoxThickness)
	if err != nil {
		return 0, nil, err
	}
	inner := box.Inner().Size
	gp := cfg.M.GPU
	node := cfg.M.Node
	t := cfg.Threads
	tpn := tasksPerGPU(cfg, l)
	share := gp.TaskShareSec * (tpn - 1)
	skew := syncSkew(cfg.M.Net, l.tasks)

	// GPU block: interior kernel plus thin face kernels over the block's
	// outer layer.
	blockInterior := stencil.Interior(inner)
	lk := gpusim.StencilLaunch(blockInterior.Size.X, blockInterior.Size.Y, blockInterior.Size.Z, cfg.BlockX, cfg.BlockY)
	kt, err := gpusim.KernelTime(gp.Props, lk)
	if err != nil {
		return 0, nil, err
	}
	blockWallPts := inner.Volume() - blockInterior.Size.Volume()
	ringIn := float64(box.InnerHaloToGPU(1)) * 8
	ringOut := float64(box.InnerHaloFromGPU(1)) * 8
	gpuBlock := kt + memKernelTime(gp.Props, int(ringIn/8)) + computeKernelTime(gp.Props, blockWallPts) +
		8*gp.Props.KernelLaunchSec

	// CPU shell: split into the per-dimension wall parts away from the
	// MPI halos and the outer boundary layer.
	shellPts := l.sub.Volume() - inner.Volume()
	boundaryPts := l.sub.Volume() - stencil.Interior(l.sub).Size.Volume()
	innerWallPts := shellPts - boundaryPts
	if innerWallPts < 0 {
		innerWallPts = 0
	}
	outer := cpuCompute(node, boundaryPts, t) * boundaryPenalty
	cp := copyStep(node, shellPts, t)
	pack := packCost(node, l.sub, t)
	omp := ompRegions(node, 14, t)

	bd := map[string]float64{
		"gpuBlock": gpuBlock, "outer": outer, "copy": cp, "pack": pack,
		"omp": omp, "share": share, "sync": skew,
	}

	if !overlap {
		// §IV-H: synchronous inner exchange over pageable copies, then
		// MPI, then CPU and GPU compute concurrently.
		ring := (ringIn+ringOut)/(gp.PageableGBs*1e9) + 2*gp.Link.LatencySec + 2*gp.PhaseSyncSec
		mpiT := commTotal(cfg, l)
		shell := cpuCompute(node, innerWallPts, t) + outer
		total := tpn*ring + mpiT + math.Max(tpn*gpuBlock+share, shell) +
			cp + pack + omp + skew
		bd["ring"] = ring
		bd["mpi"] = mpiT
		bd["shell"] = shell
		return total, bd, nil
	}

	// §IV-I: three concurrent lanes.
	// Lane 1: GPU interior kernel(s), one per task sharing the device.
	gpuLane := tpn*kt + share
	// Lane 2: stream-2 chain — pinned ring transfers and block face
	// kernels (they overlap the interior kernel only on devices with
	// concurrent kernels).
	s2 := tpn * ((ringIn+ringOut)/(gp.Link.GBs*1e9) + 2*gp.Link.LatencySec +
		memKernelTime(gp.Props, int(ringIn/8)) + computeKernelTime(gp.Props, blockWallPts) +
		6*gp.Props.KernelLaunchSec)
	if !gp.Props.ConcurrentKernels {
		// Face kernels queue behind the interior kernels.
		gpuLane += tpn * computeKernelTime(gp.Props, blockWallPts)
	}
	// Lane 3: CPU — per-dimension MPI overlapped with that dimension's
	// wall interior points, then the outer boundary.
	f := cfg.M.Net.OffloadFraction
	wallByDim := hybridWallSplit(l.sub, cfg.BoxThickness)
	var cpuLane float64
	for dim := 0; dim < 3; dim++ {
		wallT := cpuCompute(node, wallByDim[dim], t)
		comm := commPhase(cfg, l, dim)
		hidden := math.Min(comm*f, wallT)
		cpuLane += wallT + (comm - hidden)
	}
	cpuLane += outer + pack
	total := math.Max(gpuLane, math.Max(s2, cpuLane)) +
		cp + omp + gp.PhaseSyncSec + skew
	bd["gpuLane"] = gpuLane
	bd["stream2"] = s2
	bd["cpuLane"] = cpuLane
	return total, bd, nil
}

// hybridWallSplit returns the per-dimension interior wall volumes (wall
// points whose stencil reads no MPI halo) of a thickness-t shell on an
// n-point local domain.
func hybridWallSplit(n grid.Dims, thickness int) [3]int {
	box := grid.BoxSplit{Local: n, T: thickness}
	interior := stencil.Interior(n)
	var out [3]int
	for dim := 0; dim < 3; dim++ {
		for _, w := range box.WallsByDim(dim) {
			out[dim] += grid.Intersect(w, interior).Volume()
		}
	}
	return out
}
