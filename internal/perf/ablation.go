package perf

import (
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/machine"
)

// Ablations disable individual mechanisms of the performance model to show
// which observed shape each one carries. DESIGN.md calls these out as the
// load-bearing design choices of the reproduction; the ablation tests pin
// them: remove the mechanism and the corresponding paper shape disappears.

// AblationResult compares a quantity with a mechanism on and off.
type AblationResult struct {
	Name     string
	Baseline float64
	Ablated  float64
}

// AblateCamping evaluates the best GPU-resident block with and without the
// GT200 partition-camping model. With camping, 32-wide tiles win (Fig. 7);
// without it, wider tiles' better coalescing wins and the paper's
// "x = 32 is best" observation disappears.
func AblateCamping() (withX, withoutX int, r AblationResult) {
	base := gpusim.TeslaC1060()
	flat := base
	flat.MemPartitions = 0

	best := func(p gpusim.Props) (int, float64) {
		bx, gf := 0, 0.0
		for _, x := range []int{16, 32, 64, 128} {
			for y := 1; y <= 64; y++ {
				l := gpusim.StencilLaunch(420, 420, 420, x, y)
				if l.Validate(p) != nil {
					continue
				}
				if v, err := gpusim.KernelGF(p, l); err == nil && v > gf {
					bx, gf = x, v
				}
			}
		}
		return bx, gf
	}
	var wGF, woGF float64
	withX, wGF = best(base)
	withoutX, woGF = best(flat)
	return withX, withoutX, AblationResult{Name: "partition camping", Baseline: wGF, Ablated: woGF}
}

// AblateOffload evaluates the nonblocking-vs-bulk ratio on JaguarPF at a
// low core count with and without NIC offload. Without offload nothing can
// be hidden and the §IV-C implementation loses its low-core advantage
// (Fig. 3's left side).
func AblateOffload(cores int) (withRatio, withoutRatio float64) {
	ratio := func(m *machine.Machine) float64 {
		best := func(k core.Kind) float64 {
			gf := 0.0
			for _, t := range m.ThreadChoices {
				if cores%t != 0 {
					continue
				}
				if e, err := Evaluate(Config{M: m, Kind: k, Cores: cores, Threads: t}); err == nil && e.GF > gf {
					gf = e.GF
				}
			}
			return gf
		}
		return best(core.NonblockingOverlap) / best(core.BulkSync)
	}
	base := machine.JaguarPF()
	withRatio = ratio(base)
	ablated := machine.JaguarPF()
	ablated.Net.OffloadFraction = 0
	withoutRatio = ratio(ablated)
	return withRatio, withoutRatio
}

// AblateSlowPipe evaluates the Yona single-node §IV-G result with the
// calibrated slow CPU-side GPU-boundary pipeline and with an idealized
// fast one. With a fast pipeline the stream implementation nearly matches
// GPU-resident and the hybrid implementation's headline advantage (the
// whole point of §V-E) largely disappears.
func AblateSlowPipe() (calibrated, idealized AblationResult) {
	eval := func(m *machine.Machine, k core.Kind) float64 {
		gf := 0.0
		for _, t := range m.ThreadChoices {
			for _, w := range []int{1, 2, 3} {
				e, err := Evaluate(Config{M: m, Kind: k, Cores: 12, Threads: t,
					BoxThickness: w, BlockX: 32, BlockY: 8})
				if err == nil && e.GF > gf {
					gf = e.GF
				}
			}
		}
		return gf
	}
	base := machine.Yona()
	fast := machine.Yona()
	fast.GPU.ShmMPIGBs = 3.0
	fast.GPU.PageableGBs = 3.0
	calibrated = AblationResult{
		Name:     "stream overlap (G) vs hybrid overlap (I), calibrated pipe",
		Baseline: eval(base, core.GPUStreams),
		Ablated:  eval(base, core.HybridOverlap),
	}
	idealized = AblationResult{
		Name:     "stream overlap (G) vs hybrid overlap (I), idealized pipe",
		Baseline: eval(fast, core.GPUStreams),
		Ablated:  eval(fast, core.HybridOverlap),
	}
	return calibrated, idealized
}

// AblateThreadSlope evaluates the best threads-per-task on JaguarPF at a
// small core count with and without the thread-team efficiency slope.
// Without it the low-scale preference for few threads per task (Fig. 5's
// left side) disappears.
func AblateThreadSlope(cores int) (withSlope, withoutSlope int) {
	best := func(m *machine.Machine) int {
		bt, gf := 0, 0.0
		for _, t := range m.ThreadChoices {
			if cores%t != 0 {
				continue
			}
			if e, err := Evaluate(Config{M: m, Kind: core.BulkSync, Cores: cores, Threads: t}); err == nil && e.GF > gf {
				bt, gf = t, e.GF
			}
		}
		return bt
	}
	base := machine.JaguarPF()
	withSlope = best(base)
	flat := machine.JaguarPF()
	flat.Node.ThreadEffSlope = 0
	withoutSlope = best(flat)
	return withSlope, withoutSlope
}

// AblateConcurrentKernels evaluates the Yona §IV-I estimate with and
// without concurrent-kernel support, quantifying the paper's "on some
// GPUs, the boundary computation" aside: on a device that cannot run
// kernels concurrently, the boundary kernels queue behind the interior
// kernel instead of hiding under it. (§IV-G is insensitive at one node
// because its CPU-side pipeline dominates either way.)
func AblateConcurrentKernels() AblationResult {
	eval := func(m *machine.Machine) float64 {
		e, err := Evaluate(Config{M: m, Kind: core.HybridOverlap, Cores: 12, Threads: 12,
			BoxThickness: 1, BlockX: 32, BlockY: 8})
		if err != nil {
			return 0
		}
		return e.GF
	}
	base := machine.Yona()
	serial := machine.Yona()
	serial.GPU.Props.ConcurrentKernels = false
	return AblationResult{
		Name:     "concurrent kernels",
		Baseline: eval(base),
		Ablated:  eval(serial),
	}
}
