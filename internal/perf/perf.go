// Package perf estimates the per-step execution time of each of the
// paper's nine implementations on the paper's four machines, at any core
// count — the analytic timeline models behind the reproduction of Figures
// 3-6 and 9-12. Functional correctness is established by internal/impl;
// this package reproduces the *performance shapes*: which implementation
// wins where, how the optimum threads-per-task moves with core count, and
// why the full-overlap hybrid implementation approaches GPU-resident
// throughput.
//
// Each model composes the machine constants of internal/machine and the
// device model of internal/gpusim with explicit overlap algebra: bulk
// implementations add component times; overlap implementations take
// maxima over the components they run concurrently.
package perf

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/stencil"
)

// Config selects one point in the paper's tuning space.
type Config struct {
	M    *machine.Machine
	Kind core.Kind

	Cores   int // total CPU cores occupied
	Threads int // OpenMP threads per MPI task

	N grid.Dims // global grid (the paper's is 420³)

	BlockX, BlockY int // GPU thread-block size
	BoxThickness   int // CPU shell thickness (hybrid implementations)
	HaloWidth      int // exchange depth W (wide-halo extension)
}

// PaperGrid is the paper's global grid.
func PaperGrid() grid.Dims { return grid.Uniform(420) }

// Estimate is a modelled per-step timing.
type Estimate struct {
	Config  Config
	StepSec float64
	GF      float64
	// Breakdown holds the component times (seconds) the step was composed
	// from; overlapped components can sum to more than StepSec.
	Breakdown map[string]float64
}

// Evaluate runs the model for one configuration.
func Evaluate(cfg Config) (Estimate, error) {
	if cfg.N == (grid.Dims{}) {
		cfg.N = PaperGrid()
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.BlockX <= 0 {
		cfg.BlockX = 32
	}
	if cfg.BlockY <= 0 {
		cfg.BlockY = 8
	}
	if cfg.BoxThickness <= 0 {
		cfg.BoxThickness = 1
	}
	if cfg.HaloWidth <= 0 {
		cfg.HaloWidth = 2
	}
	if cfg.Kind == core.SingleTask || cfg.Kind == core.GPUResident {
		// Single-node implementations: core count is the node.
		if cfg.Cores <= 0 {
			cfg.Cores = cfg.M.Node.Cores()
		}
	}
	if err := cfg.M.Validate(cfg.Cores, cfg.Threads); err != nil {
		return Estimate{}, err
	}
	if cfg.Kind.UsesGPU() && !cfg.M.HasGPU() {
		return Estimate{}, fmt.Errorf("perf: %s has no GPUs for %v", cfg.M.Name, cfg.Kind)
	}

	var (
		sec float64
		bd  map[string]float64
		err error
	)
	switch cfg.Kind {
	case core.SingleTask:
		sec, bd, err = modelSingle(cfg)
	case core.BulkSync:
		sec, bd, err = modelBulk(cfg)
	case core.NonblockingOverlap:
		sec, bd, err = modelNonblocking(cfg)
	case core.ThreadedOverlap:
		sec, bd, err = modelThreaded(cfg)
	case core.GPUResident:
		sec, bd, err = modelGPUResident(cfg)
	case core.GPUBulkSync:
		sec, bd, err = modelGPUMPI(cfg, false)
	case core.GPUStreams:
		sec, bd, err = modelGPUMPI(cfg, true)
	case core.HybridBulkSync:
		sec, bd, err = modelHybrid(cfg, false)
	case core.HybridOverlap:
		sec, bd, err = modelHybrid(cfg, true)
	case core.WideHaloExt:
		sec, bd, err = modelWideHalo(cfg)
	default:
		err = fmt.Errorf("perf: unknown kind %v", cfg.Kind)
	}
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{Config: cfg, StepSec: sec, Breakdown: bd}
	est.GF = float64(cfg.N.Volume()) * stencil.FlopsPerPoint / sec / 1e9
	return est, nil
}

// --- shared geometry -----------------------------------------------------

// layout captures the per-task geometry of a distributed configuration.
type layout struct {
	tasks        int
	tasksPerNode int
	decomp       grid.Decomp
	sub          grid.Dims // largest (slowest) subdomain
}

func newLayout(cfg Config) (layout, error) {
	tasks := cfg.Cores / cfg.Threads
	if tasks < 1 {
		return layout{}, fmt.Errorf("perf: no tasks from %d cores / %d threads", cfg.Cores, cfg.Threads)
	}
	minDim := min3(cfg.N.X, cfg.N.Y, cfg.N.Z)
	if tasks > minDim*minDim*minDim {
		return layout{}, fmt.Errorf("perf: %d tasks too many for %v", tasks, cfg.N)
	}
	d := grid.NewDecomp(cfg.N, tasks)
	sub := grid.Dims{
		X: ceilDiv(cfg.N.X, d.P.X),
		Y: ceilDiv(cfg.N.Y, d.P.Y),
		Z: ceilDiv(cfg.N.Z, d.P.Z),
	}
	tpn := cfg.M.Node.Cores() / cfg.Threads
	if tasks < tpn {
		tpn = tasks
	}
	if tpn < 1 {
		tpn = 1
	}
	return layout{tasks: tasks, tasksPerNode: tpn, decomp: d, sub: sub}, nil
}

// --- CPU cost primitives --------------------------------------------------

// numaEff returns the compute efficiency of a t-thread team on the node:
// the NUMA penalty for spanning memory domains combined with the team's
// scheduling-imbalance slope.
func numaEff(n machine.Node, t int) float64 {
	eff := 1 - n.ThreadEffSlope*float64(t-1)
	domains := ceilDiv(t, n.CoresPerNUMADomain())
	if domains > 1 {
		eff *= math.Pow(n.NUMAEfficiency, float64(domains-1))
	}
	return eff
}

// cpuCompute returns the time for a t-thread team to apply the stencil to
// pts points (compute only, no copy step).
func cpuCompute(n machine.Node, pts, t int) float64 {
	rate := float64(t) * n.StencilGFPerCore * 1e9 * numaEff(n, t)
	return float64(pts) * stencil.FlopsPerPoint / rate
}

// copyStep returns the time of the paper's Step 3 (copy new state to
// current state) for pts points.
func copyStep(n machine.Node, pts, t int) float64 {
	return cpuCompute(n, pts, t) * n.CopyFraction
}

// ompRegions returns the fork/join overhead of r parallel regions.
func ompRegions(n machine.Node, r, t int) float64 {
	return float64(r) * (n.OMPRegionBaseSec + n.OMPRegionPerThreadSec*float64(t))
}

// packCost returns the time to pack and unpack the full halo surface once,
// with the copies parallelized over the team.
func packCost(n machine.Node, sub grid.Dims, t int) float64 {
	bytes := float64(exchangeValues(sub)) * 8 * 2 // pack + unpack
	return bytes / (n.PackGBs * 1e9 * float64(t))
}

// exchangeValues counts the values one task sends per step: both faces in
// each dimension, with the halo-widened ranges of the serialized exchange.
func exchangeValues(sub grid.Dims) int {
	return 2 * (faceValues(sub, 0) + faceValues(sub, 1) + faceValues(sub, 2))
}

// faceValues is the per-message value count in dimension dim.
func faceValues(sub grid.Dims, dim int) int {
	switch dim {
	case 0:
		return sub.Y * sub.Z
	case 1:
		return (sub.X + 2) * sub.Z
	case 2:
		return (sub.X + 2) * (sub.Y + 2)
	}
	panic("perf: bad dim")
}

// commPhase returns the network time of one dimension's exchange: two
// messages in flight, sharing the node's injection bandwidth with the
// other tasks on the node. Tasks that are their own neighbor in the
// dimension pay only a local copy.
func commPhase(cfg Config, l layout, dim int) float64 {
	bytes := float64(faceValues(l.sub, dim)) * 8
	if l.decomp.P.Axis(dim) == 1 {
		// Self-neighbor: periodic wrap through local memory.
		return 2 * bytes / (cfg.M.Node.PackGBs * 1e9)
	}
	net := cfg.M.Net
	bwPerTask := net.BandwidthGBs * 1e9 / float64(l.tasksPerNode)
	inject := 2 * float64(l.tasksPerNode) * net.InjectionSec
	return net.LatencySec + 2*bytes/bwPerTask + 4*net.MsgCPUSec + inject
}

// commFixed is the per-phase fixed (non-hideable) message cost.
func commFixed(cfg Config, l layout) float64 {
	net := cfg.M.Net
	return net.LatencySec + 4*net.MsgCPUSec + 2*float64(l.tasksPerNode)*net.InjectionSec
}

// commTotal is the full three-phase exchange.
func commTotal(cfg Config, l layout) float64 {
	return commPhase(cfg, l, 0) + commPhase(cfg, l, 1) + commPhase(cfg, l, 2)
}

// syncSkew models the per-step synchronization cost of a P-task
// neighbor-coupled iteration (barrier-like skew propagation plus system
// jitter at scale).
func syncSkew(net machine.Interconnect, tasks int) float64 {
	if tasks <= 1 {
		return 0
	}
	return net.BarrierBaseSec + net.BarrierPerLevelSec*math.Log2(float64(tasks))
}

// --- CPU implementation models ---------------------------------------------

// modelSingle is §IV-A on one node.
func modelSingle(cfg Config) (float64, map[string]float64, error) {
	n := cfg.M.Node
	t := cfg.Threads
	pts := cfg.N.Volume()
	comp := cpuCompute(n, pts, t)
	cp := copyStep(n, pts, t)
	halo := 2 * float64(haloShellValues(cfg.N)) * 8 / (n.PackGBs * 1e9 * float64(t))
	omp := ompRegions(n, 5, t)
	total := comp + cp + halo + omp
	return total, map[string]float64{
		"compute": comp, "copy": cp, "halo": halo, "omp": omp,
	}, nil
}

func haloShellValues(n grid.Dims) int {
	return (n.X+2)*(n.Y+2)*(n.Z+2) - n.Volume()
}

// modelBulk is §IV-B: everything serialized.
func modelBulk(cfg Config) (float64, map[string]float64, error) {
	l, err := newLayout(cfg)
	if err != nil {
		return 0, nil, err
	}
	n := cfg.M.Node
	t := cfg.Threads
	pts := l.sub.Volume()
	comp := cpuCompute(n, pts, t)
	cp := copyStep(n, pts, t)
	comm := commTotal(cfg, l)
	pack := packCost(n, l.sub, t)
	omp := ompRegions(n, 8, t)
	sync := syncSkew(cfg.M.Net, l.tasks)
	total := comp + cp + comm + pack + omp + sync
	return total, map[string]float64{
		"compute": comp, "copy": cp, "comm": comm, "pack": pack, "omp": omp, "sync": sync,
	}, nil
}

// boundaryPenalty is the per-point slowdown of computing the thin boundary
// slabs separately: the x walls are strided with unit-length rows, the y
// walls short rows, and the separate pass re-touches cache lines. The z
// walls are full contiguous planes, so the volume-weighted factor is well
// below the x-wall worst case.
const boundaryPenalty = 1.25

// interiorSplitPenalty is the cache cost of computing the interior in
// three separate z slabs instead of one sweep.
const interiorSplitPenalty = 1.01

// guidedComputePenalty is the slowdown of schedule(guided) relative to the
// static schedule on the interior sweep (§IV-D).
const guidedComputePenalty = 1.15

// masterCommPenalty is the slowdown of the master thread's blocking MPI
// exchange while the rest of the team saturates the memory system.
const masterCommPenalty = 1.3

// modelNonblocking is §IV-C: per-dimension nonblocking exchange bracketing
// interior thirds, boundary afterwards.
func modelNonblocking(cfg Config) (float64, map[string]float64, error) {
	l, err := newLayout(cfg)
	if err != nil {
		return 0, nil, err
	}
	n := cfg.M.Node
	t := cfg.Threads
	interior := stencil.Interior(l.sub).Volume()
	boundary := l.sub.Volume() - interior
	if interior < 0 {
		interior = 0
		boundary = l.sub.Volume()
	}

	f := cfg.M.Net.OffloadFraction
	thirds := cpuCompute(n, interior, t) * interiorSplitPenalty / 3
	var phases float64
	for dim := 0; dim < 3; dim++ {
		// Only the bandwidth (streaming) portion of a message can make
		// progress on the NIC while the CPU computes; the per-message
		// fixed costs — latency, matching, injection serialization — are
		// paid at the Wait regardless. This is why overlap helps while
		// messages are large (low core counts) and stops helping when the
		// exchange becomes latency-bound (high core counts), the paper's
		// Figure 3/4 crossover.
		comm := commPhase(cfg, l, dim)
		fixed := commFixed(cfg, l)
		bwPart := comm - fixed
		if bwPart < 0 {
			bwPart = 0
		}
		hidden := math.Min(bwPart*f, thirds)
		phases += thirds + (comm - hidden)
	}
	// Nonblocking requests cost extra CPU time to post and complete.
	reqOverhead := 8 * cfg.M.Net.MsgCPUSec
	sync := syncSkew(cfg.M.Net, l.tasks)
	bnd := cpuCompute(n, boundary, t) * boundaryPenalty
	cp := copyStep(n, l.sub.Volume(), t)
	pack := packCost(n, l.sub, t)
	omp := ompRegions(n, 16, t)
	total := phases + reqOverhead + bnd + cp + pack + omp + sync
	return total, map[string]float64{
		"phases": phases, "boundary": bnd, "copy": cp, "pack": pack, "omp": omp,
		"requests": reqOverhead, "sync": sync,
	}, nil
}

// modelThreaded is §IV-D: master-thread communication with guided
// scheduling.
func modelThreaded(cfg Config) (float64, map[string]float64, error) {
	l, err := newLayout(cfg)
	if err != nil {
		return 0, nil, err
	}
	n := cfg.M.Node
	t := cfg.Threads
	interior := stencil.Interior(l.sub).Volume()
	boundary := l.sub.Volume() - interior
	if interior < 0 {
		interior = 0
		boundary = l.sub.Volume()
	}

	// Master does the whole exchange, including packing, single threaded —
	// and does it while the other threads saturate the memory system, so
	// the communication itself runs degraded.
	comm := (commTotal(cfg, l) + packCost(n, l.sub, 1)) * masterCommPenalty
	// Guided scheduling interleaves chunks across threads, losing the
	// static schedule's cache streaming; the paper finds this
	// implementation "consistently lags in performance".
	w1 := cpuCompute(n, interior, 1) * guidedComputePenalty
	var region float64
	if t == 1 {
		region = comm + w1
	} else {
		region = math.Max(comm, (w1+comm)/float64(t))
	}
	// Guided dispatch overhead: chunks shrink geometrically from
	// remaining/t down to the floor.
	rows := stencil.Rows(stencil.Interior(l.sub))
	chunks := float64(t) * math.Max(1, math.Log2(float64(rows)/float64(t)+2))
	guided := chunks * n.GuidedChunkSec
	bnd := cpuCompute(n, boundary, t) * boundaryPenalty
	cp := copyStep(n, l.sub.Volume(), t)
	omp := ompRegions(n, 12, t)
	sync := syncSkew(cfg.M.Net, l.tasks)
	total := region + guided + bnd + cp + omp + sync
	return total, map[string]float64{
		"region": region, "guided": guided, "boundary": bnd, "copy": cp, "omp": omp, "sync": sync,
	}, nil
}

// modelWideHalo is the communication-avoiding extension: one W-deep
// exchange per W steps, redundant computation on shrinking extended
// regions in between. Per-message latency is paid 1/W as often; bytes per
// exchange grow W-fold; compute grows by the extended-region surface terms.
func modelWideHalo(cfg Config) (float64, map[string]float64, error) {
	l, err := newLayout(cfg)
	if err != nil {
		return 0, nil, err
	}
	W := cfg.HaloWidth
	if l.sub.X < W || l.sub.Y < W || l.sub.Z < W {
		return 0, nil, fmt.Errorf("perf: halo width %d exceeds subdomain %v", W, l.sub)
	}
	n := cfg.M.Node
	t := cfg.Threads

	// One W-deep exchange: same message count as one phase set, W-fold
	// payload (per-dimension widened ranges grow with 2W, folded into the
	// same bandwidth term).
	var comm float64
	for dim := 0; dim < 3; dim++ {
		bytes := float64(faceValues(l.sub, dim)) * 8 * float64(W)
		if l.decomp.P.Axis(dim) == 1 {
			comm += 2 * bytes / (n.PackGBs * 1e9)
			continue
		}
		net := cfg.M.Net
		bwPerTask := net.BandwidthGBs * 1e9 / float64(l.tasksPerNode)
		comm += net.LatencySec + 2*bytes/bwPerTask + 4*net.MsgCPUSec +
			2*float64(l.tasksPerNode)*net.InjectionSec
	}
	pack := packCost(n, l.sub, t) * float64(W)

	// Inner steps compute extended regions of e = W-1-k points.
	var compute, cp float64
	for k := 0; k < W; k++ {
		e := W - 1 - k
		pts := (l.sub.X + 2*e) * (l.sub.Y + 2*e) * (l.sub.Z + 2*e)
		compute += cpuCompute(n, pts, t)
		cp += copyStep(n, pts, t)
	}
	omp := ompRegions(n, 8*W, t)
	sync := syncSkew(cfg.M.Net, l.tasks)

	total := (comm + pack + compute + cp + omp + sync) / float64(W)
	return total, map[string]float64{
		"comm/step": comm / float64(W), "compute/step": compute / float64(W),
		"copy/step": cp / float64(W), "pack/step": pack / float64(W),
		"omp/step": omp / float64(W), "sync": sync / float64(W),
	}, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
