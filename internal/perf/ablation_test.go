package perf

import "testing"

func TestAblateCamping(t *testing.T) {
	withX, withoutX, r := AblateCamping()
	if withX != 32 {
		t.Fatalf("with camping, best x = %d, want 32 (Fig. 7)", withX)
	}
	if withoutX <= 32 {
		t.Fatalf("without camping, wider tiles should win, got x = %d", withoutX)
	}
	if r.Ablated <= r.Baseline {
		t.Fatalf("removing a penalty should not slow the best kernel: %.1f -> %.1f",
			r.Baseline, r.Ablated)
	}
}

func TestAblateOffload(t *testing.T) {
	withR, withoutR := AblateOffload(1536)
	if withR <= 1 {
		t.Fatalf("with offload, nonblocking should beat bulk at 1536 cores (ratio %.3f)", withR)
	}
	if withoutR >= 1 {
		t.Fatalf("without offload, nonblocking should lose its advantage (ratio %.3f)", withoutR)
	}
}

func TestAblateSlowPipe(t *testing.T) {
	calibrated, idealized := AblateSlowPipe()
	// Calibrated: the hybrid implementation wins by more than 2x (the
	// paper's headline).
	if calibrated.Ablated < 2*calibrated.Baseline {
		t.Fatalf("calibrated pipe: hybrid %.1f not 2x streams %.1f",
			calibrated.Ablated, calibrated.Baseline)
	}
	// Idealized: the advantage collapses — the slow CPU-side pipeline is
	// what the hybrid design is escaping.
	if idealized.Ablated > 1.5*idealized.Baseline {
		t.Fatalf("idealized pipe: hybrid advantage should collapse, got %.1f vs %.1f",
			idealized.Ablated, idealized.Baseline)
	}
	// And the streams implementation itself must benefit hugely from the
	// idealized pipe.
	if idealized.Baseline < 1.5*calibrated.Baseline {
		t.Fatalf("idealized pipe should speed up streams: %.1f -> %.1f",
			calibrated.Baseline, idealized.Baseline)
	}
}

func TestAblateThreadSlope(t *testing.T) {
	withSlope, withoutSlope := AblateThreadSlope(48)
	if withSlope > 2 {
		t.Fatalf("with the slope, few threads should win at 48 cores, got %d", withSlope)
	}
	if withoutSlope <= withSlope {
		t.Fatalf("without the slope, the optimum should move to more threads: %d -> %d",
			withSlope, withoutSlope)
	}
}

func TestAblateConcurrentKernels(t *testing.T) {
	r := AblateConcurrentKernels()
	if r.Ablated >= r.Baseline {
		t.Fatalf("serializing kernels should slow the stream implementation: %.1f -> %.1f",
			r.Baseline, r.Ablated)
	}
}
