package perf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
)

func TestCpuComputeScalesWithThreads(t *testing.T) {
	n := machine.JaguarPF().Node
	one := cpuCompute(n, 1_000_000, 1)
	six := cpuCompute(n, 1_000_000, 6)
	// Six threads on one socket: near-linear minus the team slope.
	speedup := one / six
	if speedup < 5.5 || speedup > 6.0 {
		t.Fatalf("6-thread speedup %.2f, want ~5.5-6", speedup)
	}
	// Twelve threads span both sockets: NUMA penalty bites.
	twelve := cpuCompute(n, 1_000_000, 12)
	if s := one / twelve; s >= 2*speedup {
		t.Fatalf("12-thread speedup %.2f should be sublinear vs 6-thread %.2f", s, speedup)
	}
}

func TestNumaEffMonotoneNonIncreasing(t *testing.T) {
	for _, m := range machine.All() {
		prev := 2.0
		for tt := 1; tt <= m.Node.Cores(); tt++ {
			e := numaEff(m.Node, tt)
			if e <= 0 || e > 1 {
				t.Fatalf("%s t=%d: eff %v out of (0,1]", m.Name, tt, e)
			}
			if e > prev+1e-12 {
				t.Fatalf("%s t=%d: eff %v increased from %v", m.Name, tt, e, prev)
			}
			prev = e
		}
	}
}

func TestCopyStepFraction(t *testing.T) {
	n := machine.Yona().Node
	c := cpuCompute(n, 100000, 4)
	cp := copyStep(n, 100000, 4)
	if r := cp / c; math.Abs(r-n.CopyFraction) > 1e-12 {
		t.Fatalf("copy fraction %v, want %v", r, n.CopyFraction)
	}
}

func TestCommPhaseSelfNeighborCheaper(t *testing.T) {
	// A single-task run (self-neighbor in every dimension) must pay only
	// local copies, far below a networked exchange of the same bytes.
	// Same 32³ subdomain, once as a single self-neighbor task and once
	// split 2×2×2 across nodes: the networked exchange pays latency,
	// posting, and injection costs the local wrap does not.
	cfgSelf := Config{M: machine.Yona(), Kind: core.BulkSync, Cores: 12, Threads: 12, N: grid.Uniform(32)}
	lSelf, err := newLayout(cfgSelf)
	if err != nil {
		t.Fatal(err)
	}
	cfgNet := Config{M: machine.Yona(), Kind: core.BulkSync, Cores: 96, Threads: 12, N: grid.Uniform(64)}
	lNet, err := newLayout(cfgNet)
	if err != nil {
		t.Fatal(err)
	}
	if lSelf.sub != lNet.sub {
		t.Fatalf("subdomains differ: %v vs %v", lSelf.sub, lNet.sub)
	}
	self := commPhase(cfgSelf, lSelf, 0)
	net := commPhase(cfgNet, lNet, 0)
	if self >= net {
		t.Fatalf("self exchange (%.3g s) should be cheaper than a small networked one (%.3g s)", self, net)
	}
}

func TestExchangeValuesMatchesFieldFaceCounts(t *testing.T) {
	// The perf model's per-message sizes must equal what the functional
	// exchanger actually sends (grid.Field.FaceCount with halo 1).
	prop := func(a, b, c uint8) bool {
		n := grid.Dims{X: int(a%20) + 3, Y: int(b%20) + 3, Z: int(c%20) + 3}
		f := grid.NewField(n, 1)
		for dim := 0; dim < 3; dim++ {
			if faceValues(n, dim) != f.FaceCount(dim) {
				return false
			}
		}
		return exchangeValues(n) == 2*(f.FaceCount(0)+f.FaceCount(1)+f.FaceCount(2))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSyncSkewGrowsWithScale(t *testing.T) {
	net := machine.JaguarPF().Net
	if syncSkew(net, 1) != 0 {
		t.Fatal("single task should have no skew")
	}
	if syncSkew(net, 4096) <= syncSkew(net, 64) {
		t.Fatal("skew should grow with task count")
	}
}

func TestBreakdownSumsBoundStepTime(t *testing.T) {
	// For the serialized (bulk) implementations the breakdown components
	// sum to the step time exactly; for the overlap implementations the
	// sum may exceed it (that is the point) but each component is bounded
	// by the step time plus the others.
	cfg := Config{M: machine.JaguarPF(), Kind: core.BulkSync, Cores: 1536, Threads: 6}
	e, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range e.Breakdown {
		if v < 0 {
			t.Fatalf("negative component in %v", e.Breakdown)
		}
		sum += v
	}
	if math.Abs(sum-e.StepSec) > 1e-9*e.StepSec {
		t.Fatalf("bulk breakdown sums to %v, step is %v", sum, e.StepSec)
	}
}

func TestLayoutTasksPerNode(t *testing.T) {
	cfg := Config{M: machine.HopperII(), Kind: core.BulkSync, Cores: 1536, Threads: 6, N: PaperGrid()}
	l, err := newLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.tasks != 256 {
		t.Fatalf("tasks = %d, want 256", l.tasks)
	}
	if l.tasksPerNode != 4 { // 24 cores / 6 threads
		t.Fatalf("tasksPerNode = %d, want 4", l.tasksPerNode)
	}
	// Fewer tasks than one node holds: tasksPerNode clamps to tasks.
	cfg2 := Config{M: machine.HopperII(), Kind: core.BulkSync, Cores: 24, Threads: 12, N: PaperGrid()}
	l2, _ := newLayout(cfg2)
	if l2.tasksPerNode != 2 {
		t.Fatalf("tasksPerNode = %d, want 2", l2.tasksPerNode)
	}
}

func TestWideHaloModelReducesToB(t *testing.T) {
	// W = 1 wide-halo is the bulk algorithm with the same exchange volume;
	// the two models must agree within the small structural differences
	// (boundary-pass accounting).
	jag := machine.JaguarPF()
	for _, cores := range []int{192, 1536, 12288} {
		b, err := Evaluate(Config{M: jag, Kind: core.BulkSync, Cores: cores, Threads: 6})
		if err != nil {
			t.Fatal(err)
		}
		w1, err := Evaluate(Config{M: jag, Kind: core.WideHaloExt, Cores: cores, Threads: 6, HaloWidth: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r := w1.StepSec / b.StepSec; r < 0.95 || r > 1.05 {
			t.Fatalf("cores=%d: W=1 step %.3g vs bulk %.3g (ratio %.3f)", cores, w1.StepSec, b.StepSec, r)
		}
	}
}

func TestWideHaloModelErrors(t *testing.T) {
	yona := machine.Yona()
	// Subdomain thinner than the halo width.
	if _, err := Evaluate(Config{M: yona, Kind: core.WideHaloExt, Cores: 12, Threads: 1,
		N: grid.Uniform(12), HaloWidth: 8}); err == nil {
		t.Fatal("oversized halo width accepted")
	}
}
