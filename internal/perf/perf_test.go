package perf

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
)

// bestOverThreads returns the best GF over the machine's thread choices
// (and box thicknesses for the hybrid implementations).
func bestOverThreads(m *machine.Machine, k core.Kind, cores int) (float64, int, int) {
	bestGF, bestT, bestW := 0.0, 0, 0
	for _, t := range m.ThreadChoices {
		if cores%t != 0 {
			continue
		}
		thicks := []int{1}
		if k == core.HybridBulkSync || k == core.HybridOverlap {
			thicks = []int{1, 2, 3, 5, 8}
		}
		for _, w := range thicks {
			e, err := Evaluate(Config{M: m, Kind: k, Cores: cores, Threads: t, BoxThickness: w, BlockX: 32, BlockY: 8})
			if err != nil {
				continue
			}
			if e.GF > bestGF {
				bestGF, bestT, bestW = e.GF, t, w
			}
		}
	}
	return bestGF, bestT, bestW
}

func TestEvaluateBasics(t *testing.T) {
	for _, m := range machine.All() {
		for _, k := range core.Kinds() {
			if k.UsesGPU() && !m.HasGPU() {
				continue
			}
			cores := m.Node.Cores()
			e, err := Evaluate(Config{M: m, Kind: k, Cores: cores, Threads: 1})
			if err != nil {
				t.Fatalf("%s/%v: %v", m.Name, k, err)
			}
			if e.StepSec <= 0 || math.IsNaN(e.StepSec) || math.IsInf(e.StepSec, 0) {
				t.Fatalf("%s/%v: bad step time %v", m.Name, k, e.StepSec)
			}
			if e.GF <= 0 {
				t.Fatalf("%s/%v: bad GF %v", m.Name, k, e.GF)
			}
			if len(e.Breakdown) == 0 {
				t.Fatalf("%s/%v: empty breakdown", m.Name, k)
			}
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	jag := machine.JaguarPF()
	if _, err := Evaluate(Config{M: jag, Kind: core.BulkSync, Cores: 0, Threads: 1}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := Evaluate(Config{M: jag, Kind: core.BulkSync, Cores: 13, Threads: 6}); err == nil {
		t.Fatal("indivisible cores accepted")
	}
	if _, err := Evaluate(Config{M: jag, Kind: core.GPUResident, Cores: 12, Threads: 1}); err == nil {
		t.Fatal("GPU implementation on GPU-less machine accepted")
	}
	yona := machine.Yona()
	if _, err := Evaluate(Config{M: yona, Kind: core.HybridOverlap, Cores: 12, Threads: 1, BoxThickness: 300}); err == nil {
		t.Fatal("absurd thickness accepted")
	}
}

// --- Section V-E calibration anchors (Yona, one node) ----------------------

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Fatalf("%s = %.1f GF, want %.1f ± %.0f%%", name, got, want, tol*100)
	}
}

func TestSectionVEAnchors(t *testing.T) {
	yona := machine.Yona()
	// "the best GPU-resident performance on Yona is 86 GF"
	best := 0.0
	for _, bx := range []int{16, 32, 64, 128} {
		for by := 1; by <= 32; by++ {
			e, err := Evaluate(Config{M: yona, Kind: core.GPUResident, BlockX: bx, BlockY: by})
			if err == nil && e.GF > best {
				best = e.GF
			}
		}
	}
	within(t, "Yona GPU-resident best", best, 86, 0.10)

	// "cuts the performance to 24 and 35 GF, respectively"
	f, _, _ := bestOverThreads(yona, core.GPUBulkSync, 12)
	within(t, "Yona 1-node GPU bulk-sync (F)", f, 24, 0.15)
	g, _, _ := bestOverThreads(yona, core.GPUStreams, 12)
	within(t, "Yona 1-node GPU streams (G)", g, 35, 0.15)

	// "The best CPU-GPU overlap performance on one node is 82 GF"
	i, _, _ := bestOverThreads(yona, core.HybridOverlap, 12)
	within(t, "Yona 1-node hybrid overlap (I)", i, 82, 0.15)

	// The ordering of §V-E: F < G < I ≈ resident.
	if !(f < g && g < i && i < best*1.05) {
		t.Fatalf("V-E ordering broken: F=%.1f G=%.1f I=%.1f resident=%.1f", f, g, i, best)
	}
}

// --- Figure 3/4 shapes ------------------------------------------------------

func crossover(t *testing.T, m *machine.Machine, counts []int) int {
	t.Helper()
	// Returns the first core count at which bulk beats nonblocking.
	for _, cores := range counts {
		b, _, _ := bestOverThreads(m, core.BulkSync, cores)
		c, _, _ := bestOverThreads(m, core.NonblockingOverlap, cores)
		if b > c {
			return cores
		}
	}
	return 1 << 30
}

func TestFig3NonblockingBeatsBulkAtLowCores(t *testing.T) {
	jag := machine.JaguarPF()
	for _, cores := range []int{48, 192, 768, 1536} {
		b, _, _ := bestOverThreads(jag, core.BulkSync, cores)
		c, _, _ := bestOverThreads(jag, core.NonblockingOverlap, cores)
		if c <= b {
			t.Fatalf("cores=%d: nonblocking (%.1f) should slightly beat bulk (%.1f)", cores, c, b)
		}
		if c > b*1.10 {
			t.Fatalf("cores=%d: nonblocking wins by too much (%.1f vs %.1f) — paper says 'slightly'", cores, c, b)
		}
	}
}

func TestFig3BulkWinsAtScale(t *testing.T) {
	jag := machine.JaguarPF()
	for _, cores := range []int{6144, 12288} {
		b, _, _ := bestOverThreads(jag, core.BulkSync, cores)
		c, _, _ := bestOverThreads(jag, core.NonblockingOverlap, cores)
		if b <= c {
			t.Fatalf("cores=%d: bulk (%.1f) should beat nonblocking (%.1f) at scale", cores, b, c)
		}
	}
}

func TestFig4CrossoverLaterOnHopper(t *testing.T) {
	// "that limit is an order of magnitude higher on Hopper II"
	jagCounts := []int{192, 768, 1536, 3072, 6144, 12288}
	hopCounts := []int{384, 1536, 3072, 6144, 12288, 24576, 49152}
	jx := crossover(t, machine.JaguarPF(), jagCounts)
	hx := crossover(t, machine.HopperII(), hopCounts)
	if hx <= jx {
		t.Fatalf("Hopper crossover (%d) should be later than JaguarPF's (%d)", hx, jx)
	}
	if float64(hx) < 4*float64(jx) {
		t.Fatalf("Hopper crossover (%d) should be several times JaguarPF's (%d)", hx, jx)
	}
}

func TestThreadedOverlapConsistentlyLags(t *testing.T) {
	// "the implementation using an OpenMP thread for overlap consistently
	// lags in performance" — on both Crays, at every core count.
	cases := []struct {
		m      *machine.Machine
		counts []int
	}{
		{machine.JaguarPF(), []int{48, 192, 768, 1536, 3072, 6144, 12288}},
		{machine.HopperII(), []int{96, 384, 1536, 6144, 12288, 24576, 49152}},
	}
	for _, cse := range cases {
		for _, cores := range cse.counts {
			b, _, _ := bestOverThreads(cse.m, core.BulkSync, cores)
			d, _, _ := bestOverThreads(cse.m, core.ThreadedOverlap, cores)
			if d >= b {
				t.Fatalf("%s cores=%d: threaded overlap (%.1f) should lag bulk (%.1f)", cse.m.Name, cores, d, b)
			}
		}
	}
}

// --- Figure 5/6 shapes ------------------------------------------------------

func bestThreads(m *machine.Machine, cores int) int {
	bestT, bestGF := 0, 0.0
	for _, t := range m.ThreadChoices {
		if cores%t != 0 {
			continue
		}
		e, err := Evaluate(Config{M: m, Kind: core.BulkSync, Cores: cores, Threads: t})
		if err == nil && e.GF > bestGF {
			bestGF, bestT = e.GF, t
		}
	}
	return bestT
}

func TestFig5BestThreadsRisesWithCores(t *testing.T) {
	jag := machine.JaguarPF()
	low := bestThreads(jag, 48)
	high := bestThreads(jag, 12288)
	if low >= high {
		t.Fatalf("best threads at 48 cores (%d) should be below best at 12288 (%d)", low, high)
	}
	if low > 2 {
		t.Fatalf("small scale should favor few threads per task, got %d", low)
	}
	if high < 6 {
		t.Fatalf("large scale should favor many threads per task, got %d", high)
	}
}

func TestFig6TwentyFourThreadsNeverOptimal(t *testing.T) {
	// "Only 24 threads per task (on Hopper II) is never optimal."
	hop := machine.HopperII()
	for _, cores := range []int{24, 96, 384, 1536, 6144, 12288, 24576, 49152} {
		if bt := bestThreads(hop, cores); bt == 24 {
			t.Fatalf("cores=%d: 24 threads per task reported optimal", cores)
		}
	}
}

func TestBestThreadsVaries(t *testing.T) {
	// "different numbers of threads per task perform best at different
	// total core counts" — the sweep must not be constant.
	jag := machine.JaguarPF()
	seen := map[int]bool{}
	for _, cores := range []int{12, 48, 192, 768, 1536, 3072, 6144, 12288} {
		seen[bestThreads(jag, cores)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("best threads constant across core counts: %v", seen)
	}
}

// --- Figure 9/10 shapes -----------------------------------------------------

func TestFig10HybridOverlapDominates(t *testing.T) {
	yona := machine.Yona()
	for _, cores := range []int{12, 48, 96, 192} {
		i, _, _ := bestOverThreads(yona, core.HybridOverlap, cores)
		f, _, _ := bestOverThreads(yona, core.GPUBulkSync, cores)
		g, _, _ := bestOverThreads(yona, core.GPUStreams, cores)
		h, _, _ := bestOverThreads(yona, core.HybridBulkSync, cores)
		if !(i > h && h > g && g > f) {
			t.Fatalf("cores=%d: expected I > H > G > F, got I=%.0f H=%.0f G=%.0f F=%.0f",
				cores, i, h, g, f)
		}
		// "by a factor of two or more" over the non-hybrid GPU impls.
		if i < 2*f {
			t.Fatalf("cores=%d: hybrid overlap (%.0f) not 2x GPU bulk (%.0f)", cores, i, f)
		}
	}
}

func TestFig10YonaFourXOverCPU(t *testing.T) {
	// "the performance of the best CPU-GPU implementation is more than
	// four times the performance of the best CPU-only implementation."
	yona := machine.Yona()
	for _, cores := range []int{48, 96, 192} {
		i, _, _ := bestOverThreads(yona, core.HybridOverlap, cores)
		cpu := 0.0
		for _, k := range []core.Kind{core.BulkSync, core.NonblockingOverlap, core.ThreadedOverlap} {
			if v, _, _ := bestOverThreads(yona, k, cores); v > cpu {
				cpu = v
			}
		}
		if i < 4*cpu {
			t.Fatalf("cores=%d: CPU-GPU best %.0f < 4x CPU best %.0f", cores, i, cpu)
		}
	}
}

func TestFig9LensExceedsSumOfParts(t *testing.T) {
	// "the best CPU-GPU performance exceeds the sum of the best CPU-only
	// performance plus the best GPU-computation performance."
	lens := machine.Lens()
	for _, cores := range []int{64, 128, 256} {
		i, _, _ := bestOverThreads(lens, core.HybridOverlap, cores)
		cpu := 0.0
		for _, k := range []core.Kind{core.BulkSync, core.NonblockingOverlap, core.ThreadedOverlap} {
			if v, _, _ := bestOverThreads(lens, k, cores); v > cpu {
				cpu = v
			}
		}
		gpu := 0.0
		for _, k := range []core.Kind{core.GPUBulkSync, core.GPUStreams} {
			if v, _, _ := bestOverThreads(lens, k, cores); v > gpu {
				gpu = v
			}
		}
		if i <= cpu+gpu {
			t.Fatalf("cores=%d: hybrid %.0f should exceed cpu %.0f + gpu %.0f", cores, i, cpu, gpu)
		}
	}
}

// --- Figure 11/12 shapes ----------------------------------------------------

func TestFig12ThinBoxBestOnYona(t *testing.T) {
	// "The best box thickness is often just one" on Yona.
	yona := machine.Yona()
	for _, cores := range []int{12, 48, 192} {
		_, _, w := bestOverThreads(yona, core.HybridOverlap, cores)
		if w > 3 {
			t.Fatalf("cores=%d: best thickness %d, expected a thin veneer (<=3)", cores, w)
		}
	}
}

func TestFig11ThicknessShrinksWithScale(t *testing.T) {
	// "the best box width decreases with increasing core count" (Lens).
	lens := machine.Lens()
	_, _, wLow := bestOverThreads(lens, core.HybridOverlap, 32)
	_, _, wHigh := bestOverThreads(lens, core.HybridOverlap, 496)
	if wHigh > wLow {
		t.Fatalf("best thickness grew with cores: %d@32 -> %d@496", wLow, wHigh)
	}
}

func TestFewTasksPerNodeBestForHybrid(t *testing.T) {
	// "the best performance comes from few tasks per node, often just one
	// task."
	yona := machine.Yona()
	for _, cores := range []int{48, 192} {
		_, bt, _ := bestOverThreads(yona, core.HybridOverlap, cores)
		tasksPerNode := yona.Node.Cores() / bt
		if tasksPerNode > 2 {
			t.Fatalf("cores=%d: best config uses %d tasks per node", cores, tasksPerNode)
		}
	}
}

// --- general sanity ---------------------------------------------------------

func TestStrongScalingMonotone(t *testing.T) {
	// More cores must not reduce aggregate GF for the bulk implementation
	// over the plotted ranges.
	jag := machine.JaguarPF()
	prev := 0.0
	for _, cores := range []int{12, 48, 192, 768, 1536, 3072, 6144, 12288} {
		gf, _, _ := bestOverThreads(jag, core.BulkSync, cores)
		if gf < prev {
			t.Fatalf("bulk GF dropped from %.1f to %.1f at %d cores", prev, gf, cores)
		}
		prev = gf
	}
}

func TestParallelEfficiencyFalls(t *testing.T) {
	// Strong scaling: per-core efficiency at 12288 cores is below that at
	// 48 cores.
	jag := machine.JaguarPF()
	lo, _, _ := bestOverThreads(jag, core.BulkSync, 48)
	hi, _, _ := bestOverThreads(jag, core.BulkSync, 12288)
	if hi/12288 >= lo/48 {
		t.Fatal("no strong-scaling efficiency loss modelled")
	}
}

func TestGPUResidentMatchesKernelModel(t *testing.T) {
	// The perf model's GPU-resident estimate must agree with the gpusim
	// kernel model it is built on (plus launch overhead).
	yona := machine.Yona()
	e, err := Evaluate(Config{M: yona, Kind: core.GPUResident, BlockX: 32, BlockY: 8})
	if err != nil {
		t.Fatal(err)
	}
	if e.Breakdown["kernel"] <= 0 || e.Breakdown["kernel"] >= e.StepSec {
		t.Fatalf("breakdown inconsistent: %+v", e.Breakdown)
	}
}

func TestSmallerGridScalesDown(t *testing.T) {
	yona := machine.Yona()
	big, _ := Evaluate(Config{M: yona, Kind: core.GPUResident, N: grid.Uniform(420), BlockX: 32, BlockY: 8})
	small, _ := Evaluate(Config{M: yona, Kind: core.GPUResident, N: grid.Uniform(210), BlockX: 32, BlockY: 8})
	if small.StepSec >= big.StepSec {
		t.Fatal("smaller grid not faster")
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"JaguarPF", "Hopper II", "Lens", "Yona"} {
		m, err := machine.ByName(name)
		if err != nil || m.Name != name {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := machine.ByName("Frontier"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestTableIIStructure(t *testing.T) {
	// Table II structural facts.
	jag, hop, lens, yona := machine.JaguarPF(), machine.HopperII(), machine.Lens(), machine.Yona()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"JaguarPF nodes", jag.Nodes, 18688},
		{"JaguarPF cores/node", jag.Node.Cores(), 12},
		{"Hopper nodes", hop.Nodes, 6392},
		{"Hopper cores/node", hop.Node.Cores(), 24},
		{"Lens nodes", lens.Nodes, 31},
		{"Lens cores/node", lens.Node.Cores(), 16},
		{"Yona nodes", yona.Nodes, 16},
		{"Yona cores/node", yona.Node.Cores(), 12},
		{"Lens cores/GPU", lens.CoresPerGPU(), 16},
		{"Yona cores/GPU", yona.CoresPerGPU(), 12},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Fatalf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if jag.HasGPU() || hop.HasGPU() {
		t.Fatal("Crays must not have GPUs")
	}
	if !lens.HasGPU() || !yona.HasGPU() {
		t.Fatal("clusters must have GPUs")
	}
	if lens.GPU.Props.Name != "Tesla C1060" || yona.GPU.Props.Name != "Tesla C2050" {
		t.Fatal("wrong GPU models")
	}
}
