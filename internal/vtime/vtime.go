// Package vtime provides the virtual-time primitives behind the simulated
// GPU and the machine performance models: a Time type, serialized Resources
// (a PCIe bus, a GPU's kernel engine, a NIC) that hand out start times, and
// a Trace recorder that accumulates named spans so experiments can report
// per-component timelines and verify what actually overlapped with what.
package vtime

import (
	"fmt"
	"sort"
	"sync"
)

// Time is a point in virtual time, in seconds.
type Time float64

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Resource is a serially-shared facility: at most one operation occupies it
// at a time and waiters are served in request order. Acquire is safe for
// concurrent use.
type Resource struct {
	mu    sync.Mutex
	name  string
	avail Time
	busy  Time // accumulated occupied time
}

// NewResource returns an idle resource available from time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire books the resource for duration dur, no earlier than ready, and
// returns the operation's start and end times.
func (r *Resource) Acquire(ready, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("vtime: negative duration %v on %s", dur, r.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = Max(ready, r.avail)
	end = start + dur
	r.avail = end
	r.busy += dur
	return start, end
}

// Available returns the earliest time a new operation could start.
func (r *Resource) Available() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.avail
}

// BusyTime returns the total time the resource has been occupied.
func (r *Resource) BusyTime() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Reset returns the resource to idle at time zero.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.avail = 0
	r.busy = 0
}

// Span is one recorded interval on a named lane.
type Span struct {
	Lane  string // which component (e.g. "gpu.stream0", "pcie", "cpu")
	Label string // what ran (e.g. "interior kernel")
	Start Time
	End   Time
}

// Duration returns the span length.
func (s Span) Duration() Time { return s.End - s.Start }

// Trace accumulates spans. The zero value is unusable; use NewTrace. A nil
// *Trace is a valid no-op recorder, so tracing can be disabled cheaply.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Add records a span. Adding to a nil trace is a no-op.
func (t *Trace) Add(lane, label string, start, end Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Lane: lane, Label: label, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start time.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Lane < out[j].Lane
	})
	return out
}

// LaneBusy returns the total busy time per lane.
func (t *Trace) LaneBusy() map[string]Time {
	out := map[string]Time{}
	for _, s := range t.Spans() {
		out[s.Lane] += s.Duration()
	}
	return out
}

// MakeSpan returns the trace's end-to-end extent: the earliest start and
// latest end over all spans. An empty trace returns (0, 0).
func (t *Trace) MakeSpan() (start, end Time) {
	spans := t.Spans()
	if len(spans) == 0 {
		return 0, 0
	}
	start, end = spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// Overlap returns the total time during which spans on laneA and laneB run
// concurrently — the quantity the paper's overlap implementations maximize.
func (t *Trace) Overlap(laneA, laneB string) Time {
	var a, b []Span
	for _, s := range t.Spans() {
		switch s.Lane {
		case laneA:
			a = append(a, s)
		case laneB:
			b = append(b, s)
		}
	}
	var total Time
	for _, sa := range a {
		for _, sb := range b {
			lo := Max(sa.Start, sb.Start)
			hi := sa.End
			if sb.End < hi {
				hi = sb.End
			}
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}
