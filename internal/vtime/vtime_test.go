package vtime

import (
	"testing"
	"testing/quick"
)

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire (%v,%v)", s1, e1)
	}
	// Requested while busy: starts when free.
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire (%v,%v), want (10,20)", s2, e2)
	}
	// Requested after idle gap: starts at ready time.
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire (%v,%v), want (100,105)", s3, e3)
	}
	if r.BusyTime() != 25 {
		t.Fatalf("BusyTime = %v, want 25", r.BusyTime())
	}
	if r.Available() != 105 {
		t.Fatalf("Available = %v, want 105", r.Available())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 7)
	r.Reset()
	if r.Available() != 0 || r.BusyTime() != 0 {
		t.Fatal("Reset incomplete")
	}
	if r.Name() != "x" {
		t.Fatal("name lost")
	}
}

func TestResourceNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration accepted")
		}
	}()
	NewResource("x").Acquire(0, -1)
}

func TestResourceNonDecreasingProperty(t *testing.T) {
	prop := func(reqs []struct {
		Ready uint16
		Dur   uint16
	}) bool {
		r := NewResource("p")
		var lastEnd Time
		for _, q := range reqs {
			start, end := r.Acquire(Time(q.Ready), Time(q.Dur))
			if start < Time(q.Ready) || start < lastEnd || end != start+Time(q.Dur) {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Fatal("Max broken")
	}
	if Time(2.5).Seconds() != 2.5 {
		t.Fatal("Seconds broken")
	}
}

func TestTraceSpansSorted(t *testing.T) {
	tr := NewTrace()
	tr.Add("b", "second", 5, 7)
	tr.Add("a", "first", 1, 3)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Label != "first" || spans[1].Label != "second" {
		t.Fatalf("spans %+v", spans)
	}
	if spans[0].Duration() != 2 {
		t.Fatalf("Duration = %v", spans[0].Duration())
	}
}

func TestNilTraceNoop(t *testing.T) {
	var tr *Trace
	tr.Add("a", "x", 0, 1) // must not panic
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
}

func TestTraceLaneBusyAndMakeSpan(t *testing.T) {
	tr := NewTrace()
	tr.Add("cpu", "w1", 0, 4)
	tr.Add("cpu", "w2", 6, 8)
	tr.Add("gpu", "k", 2, 10)
	busy := tr.LaneBusy()
	if busy["cpu"] != 6 || busy["gpu"] != 8 {
		t.Fatalf("busy %v", busy)
	}
	start, end := tr.MakeSpan()
	if start != 0 || end != 10 {
		t.Fatalf("extent (%v,%v)", start, end)
	}
}

func TestTraceMakeSpanEmpty(t *testing.T) {
	start, end := NewTrace().MakeSpan()
	if start != 0 || end != 0 {
		t.Fatal("empty trace extent nonzero")
	}
}

func TestTraceOverlap(t *testing.T) {
	tr := NewTrace()
	tr.Add("cpu", "compute", 0, 10)
	tr.Add("net", "msg1", 2, 5)
	tr.Add("net", "msg2", 8, 12)
	if ov := tr.Overlap("cpu", "net"); ov != 5 {
		t.Fatalf("Overlap = %v, want 5", ov)
	}
	if ov := tr.Overlap("cpu", "gpu"); ov != 0 {
		t.Fatalf("no-lane Overlap = %v", ov)
	}
}
