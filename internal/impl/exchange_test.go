package impl

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// TestExchangerEquivalentToPeriodicHalos is the direct property behind
// every MPI implementation's correctness: distributing a field among any
// number of tasks, running the three-phase exchange, and inspecting each
// rank's halo must give exactly the values a single periodic field holds
// in its halo at the same global positions — corners and edges included.
func TestExchangerEquivalentToPeriodicHalos(t *testing.T) {
	prop := func(seed uint32, nTasks uint8) bool {
		n := grid.Dims{X: int(seed%5) + 6, Y: int(seed/5%5) + 6, Z: int(seed/25%5) + 6}
		tasks := int(nTasks%6) + 1

		// Global reference with periodic halos.
		val := func(i, j, k int) float64 {
			return float64(i + 100*j + 10000*k)
		}
		ref := grid.NewField(n, 1)
		ref.Fill(val)
		ref.CopyPeriodicHalos()

		d := grid.NewDecomp(n, tasks)
		w := mpi.NewWorld(tasks)
		ok := true
		w.Run(func(c *mpi.Comm) {
			sub := d.Sub(c.Rank())
			local := grid.NewField(sub.Size, 1)
			local.Fill(func(i, j, k int) float64 {
				return val(sub.Lo.X+i, sub.Lo.Y+j, sub.Lo.Z+k)
			})
			ex := newExchanger(c, d, local)
			ex.exchangeAll()
			wrap := func(v, m int) int { return ((v % m) + m) % m }
			for k := -1; k <= sub.Size.Z; k++ {
				for j := -1; j <= sub.Size.Y; j++ {
					for i := -1; i <= sub.Size.X; i++ {
						gi := wrap(sub.Lo.X+i, n.X)
						gj := wrap(sub.Lo.Y+j, n.Y)
						gk := wrap(sub.Lo.Z+k, n.Z)
						if local.At(i, j, k) != val(gi, gj, gk) {
							ok = false
							return
						}
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExchangerRepeatedSteps checks that tags and ordering stay consistent
// across many consecutive exchanges (no cross-step message confusion).
func TestExchangerRepeatedSteps(t *testing.T) {
	n := grid.Uniform(9)
	d := grid.NewDecomp(n, 3)
	w := mpi.NewWorld(3)
	w.Run(func(c *mpi.Comm) {
		sub := d.Sub(c.Rank())
		local := grid.NewField(sub.Size, 1)
		ex := newExchanger(c, d, local)
		for step := 0; step < 10; step++ {
			// Each step writes a step-dependent pattern, exchanges, and
			// checks the received halos carry this step's values.
			local.Fill(func(i, j, k int) float64 {
				return float64(step*1000000 + (sub.Lo.X + i) + 100*(sub.Lo.Y+j) + 10000*(sub.Lo.Z+k))
			})
			ex.exchangeAll()
			wrap := func(v, m int) int { return ((v % m) + m) % m }
			// Spot-check one halo plane.
			for j := 0; j < sub.Size.Y; j++ {
				gi := wrap(sub.Lo.X-1, n.X)
				gj := sub.Lo.Y + j
				gk := sub.Lo.Z
				want := float64(step*1000000 + gi + 100*gj + 10000*gk)
				if got := local.At(-1, j, 0); got != want {
					t.Errorf("step %d rank %d: halo = %v, want %v", step, c.Rank(), got, want)
					return
				}
			}
		}
	})
}

// TestRunDeterministic pins bitwise reproducibility: the same problem and
// configuration must give identical results run to run, for every
// implementation, despite the internal concurrency.
func TestRunDeterministic(t *testing.T) {
	p := core.DefaultProblem(14, 3)
	for _, k := range core.Kinds() {
		o := core.Options{Tasks: 3, Threads: 2, BlockX: 8, BlockY: 4}
		if !k.UsesMPI() {
			o.Tasks = 1
		}
		a := run(t, k, p, o)
		b := run(t, k, p, o)
		if nm := grid.DiffNorms(a.Final, b.Final); nm.LInf != 0 {
			t.Fatalf("%v: nondeterministic result (LInf %g)", k, nm.LInf)
		}
	}
}

// TestRankPanicReturnsError verifies the public API converts internal rank
// failures into errors rather than crashing the process.
func TestRankPanicReturnsError(t *testing.T) {
	// BoxThickness too large for one rank's subdomain passes the global
	// pre-check only if per-rank domains differ... force an error through
	// an invalid GPU block instead: block larger than the device limit is
	// caught pre-run, so use the world-level safeWorldRun directly.
	w := mpi.NewWorld(2)
	err := safeWorldRun(w, func(c *mpi.Comm) {
		if c.Rank() == 1 {
			panic("synthetic failure")
		}
		c.Barrier()
	})
	if err == nil {
		t.Fatal("rank panic not converted to error")
	}
}
