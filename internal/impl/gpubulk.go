package impl

import (
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/stencil"
)

// gpuBulkSync is §IV-F: multi-GPU with CPUs performing MPI communication,
// bulk synchronously. Each task keeps its whole subdomain on the GPU.
// Per step the CPU exchanges boundary data with its neighbors through a
// host-side shadow of the boundary shell, uploads the assembled halo shell
// in one large contiguous buffer ("we need the buffers to allow
// communication between CPU and GPU to be in large contiguous chunks"),
// runs the face and interior kernels, and downloads the freshly computed
// boundary for the next step's exchange. Nothing overlaps: every phase
// completes before the next begins.
type gpuBulkSync struct{}

func (gpuBulkSync) Kind() core.Kind { return core.GPUBulkSync }

func (gpuBulkSync) Run(p core.Problem, o core.Options) (*core.Result, error) {
	return runGPUMPI(core.GPUBulkSync, p, o, false)
}

// gpuStreams is §IV-G: the same data layout as §IV-F, but the interior
// kernel is issued to one CUDA stream before the CPU performs MPI
// communication, and the halo upload, boundary kernels, and boundary
// download go to a second stream — so the interior computation can overlap
// the MPI communication, the PCIe transfers, and (on devices with
// concurrent kernels) the boundary computation. The CPU ends the step by
// synchronizing the two streams.
type gpuStreams struct{}

func (gpuStreams) Kind() core.Kind { return core.GPUStreams }

func (gpuStreams) Run(p core.Problem, o core.Options) (*core.Result, error) {
	return runGPUMPI(core.GPUStreams, p, o, true)
}

// runGPUMPI is the shared body of §IV-F and §IV-G.
func runGPUMPI(kind core.Kind, p core.Problem, o core.Options, overlap bool) (*core.Result, error) {
	return runMPIGPU(kind, p, o, func(rc gpuRankCtx) {
		n := rc.sub.Size
		wallSubs := stencil.BoundarySlabs(n)
		hSubs := haloSlabs(n, 1)
		interior := stencil.Interior(n)

		wallBuf := rc.dev.Alloc(subsVolume(wallSubs))
		haloBuf := rc.dev.Alloc(subsVolume(hSubs))
		defer rc.dev.Free(wallBuf)
		defer rc.dev.Free(haloBuf)
		hostWall := make([]float64, wallBuf.Len())
		hostHalo := make([]float64, haloBuf.Len())

		s1 := rc.dev.NewStream("interior")
		s2 := s1
		if overlap {
			s2 = rc.dev.NewStream("boundary")
		}

		for step := 0; step < rc.p.Steps; step++ {
			checkCancelRank(rc.o)
			rc.ex.setStep(step)
			if overlap {
				// §IV-G: interior kernel first, so it runs while the CPU
				// communicates.
				sp := rc.span(step, obs.PhaseLaunch, "interior")
				rc.host.Set(launchInteriorStep(rc.st, s1, rc.host.Now(), interior, rc.o.BlockX, rc.o.BlockY))
				sp.End()
			}

			// CPU-side MPI exchange over the shadow shell.
			rc.ex.exchangeAll()

			// Upload the assembled halo shell and run the boundary work.
			sp := rc.span(step, obs.PhaseHaloPack, "shell")
			packSubs(rc.shadow, hSubs, hostHalo)
			sp.End()
			if overlap {
				rc.host.Set(rc.dev.MemcpyAsync(rc.host.Now(), s2, gpusim.HostToDevice, haloBuf, hostHalo))
			} else {
				rc.host.Set(rc.dev.Memcpy(rc.host.Now(), gpusim.HostToDevice, haloBuf, hostHalo))
			}
			rc.host.Set(launchHaloUnpack(rc.st, s2, rc.host.Now(), "halo unpack", hSubs, haloBuf, rc.o.BlockX, rc.o.BlockY))
			rc.host.Set(launchWallCompute(rc.st, s2, rc.host.Now(), "faces", wallSubs, wallBuf, rc.o.BlockX, rc.o.BlockY))

			if overlap {
				rc.host.Set(rc.dev.MemcpyAsync(rc.host.Now(), s2, gpusim.DeviceToHost, wallBuf, hostWall))
			} else {
				// §IV-F: interior kernel after the boundary work, still on
				// the single stream.
				rc.host.Set(launchInteriorStep(rc.st, s1, rc.host.Now(), interior, rc.o.BlockX, rc.o.BlockY))
				rc.host.Set(s1.Synchronize(rc.host.Now()))
				rc.host.Set(rc.dev.Memcpy(rc.host.Now(), gpusim.DeviceToHost, wallBuf, hostWall))
			}

			// End of step: synchronize the streams, land the new boundary
			// in the shadow shell, flip the state buffers.
			rc.host.Set(rc.dev.Synchronize(rc.host.Now(), s1, s2))
			sp = rc.span(step, obs.PhaseHaloUnpack, "shell")
			unpackSubs(rc.shadow, wallSubs, hostWall)
			sp.End()
			rc.st.flip()
		}
	})
}
