// Package impl contains functional implementations of the paper's nine
// strategies (§IV-A through §IV-I), built on the reproduction's substrates:
// internal/par in place of OpenMP, internal/mpi in place of MPI, and
// internal/gpusim in place of CUDA Fortran. Every implementation integrates
// the same advection problem and must produce the single-task result up to
// roundoff; the tests enforce this cross-implementation agreement, which is
// the reproduction's analog of the paper's norm-based verification (§IV-A).
//
// These runners establish functional correctness and expose the real
// concurrency structure (what can overlap with what). The performance of
// the paper's machines at scale is modelled separately by internal/perf.
package impl

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/stencil"
)

func init() {
	core.Register(core.SingleTask, func() core.Runner { return singleTask{} })
	core.Register(core.BulkSync, func() core.Runner { return bulkSync{} })
	core.Register(core.NonblockingOverlap, func() core.Runner { return nonblockingOverlap{} })
	core.Register(core.ThreadedOverlap, func() core.Runner { return threadedOverlap{} })
	core.Register(core.GPUResident, func() core.Runner { return gpuResident{} })
	core.Register(core.GPUBulkSync, func() core.Runner { return gpuBulkSync{} })
	core.Register(core.GPUStreams, func() core.Runner { return gpuStreams{} })
	core.Register(core.HybridBulkSync, func() core.Runner { return hybridRunner{overlap: false} })
	core.Register(core.HybridOverlap, func() core.Runner { return hybridRunner{overlap: true} })
}

// fillLocal initializes a rank's local field from the global initial
// condition (the Gaussian wave, or a checkpointed state): local point
// (i,j,k) is global point sub.Lo + (i,j,k).
func fillLocal(f *grid.Field, p core.Problem, sub grid.Subdomain) {
	f.Fill(func(i, j, k int) float64 {
		return p.InitialValue(sub.Lo.X+i, sub.Lo.Y+j, sub.Lo.Z+k)
	})
}

// gather assembles the global field on rank 0 from each rank's local
// interior; other ranks return nil.
func gather(c *mpi.Comm, d grid.Decomp, local *grid.Field) *grid.Field {
	flat := make([]float64, local.N.Volume())
	n := 0
	for k := 0; k < local.N.Z; k++ {
		for j := 0; j < local.N.Y; j++ {
			for i := 0; i < local.N.X; i++ {
				flat[n] = local.At(i, j, k)
				n++
			}
		}
	}
	parts := c.Gather(0, flat)
	if c.Rank() != 0 {
		return nil
	}
	global := grid.NewField(d.N, 1)
	for r := 0; r < d.Tasks(); r++ {
		sub := d.Sub(r)
		src := parts[r]
		n := 0
		for k := 0; k < sub.Size.Z; k++ {
			for j := 0; j < sub.Size.Y; j++ {
				for i := 0; i < sub.Size.X; i++ {
					global.Set(sub.Lo.X+i, sub.Lo.Y+j, sub.Lo.Z+k, src[n])
					n++
				}
			}
		}
	}
	return global
}

// finishResult fills the verification and throughput fields of a result.
func finishResult(res *core.Result, p core.Problem, o core.Options, elapsed time.Duration, initialMass float64) {
	res.Elapsed = elapsed
	if s := elapsed.Seconds(); s > 0 {
		res.GF = p.Flops() * float64(p.Steps) / s / 1e9
	}
	if o.Verify && res.Final != nil {
		tFinal := p.T0 + p.Nu*float64(p.Steps)
		res.Norms = grid.NormsAgainst(res.Final, func(i, j, k int) float64 {
			return p.Wave.Analytic(p.N, p.C, tFinal, i, j, k)
		})
		res.MassDrift = math.Abs(res.Final.InteriorSum() - initialMass)
	}
}

// globalMass returns the initial mass of the problem, for drift checks.
func globalMass(p core.Problem) float64 {
	if p.Initial != nil {
		return p.Initial.InteriorSum()
	}
	f := grid.NewField(p.N, 1)
	grid.FillGaussian(f, p.Wave)
	return f.InteriorSum()
}

// checkMPIOptions validates distributed-run options against the problem.
func checkMPIOptions(p core.Problem, o core.Options) error {
	if o.Tasks < 1 {
		return fmt.Errorf("impl: task count %d < 1", o.Tasks)
	}
	min := p.N.X
	if p.N.Y < min {
		min = p.N.Y
	}
	if p.N.Z < min {
		min = p.N.Z
	}
	if o.Tasks > min {
		return fmt.Errorf("impl: %d tasks too many for grid %v (subdomains thinner than the stencil)", o.Tasks, p.N)
	}
	return nil
}

// opFor prepares the stencil operator for fields shaped like f.
func opFor(p core.Problem, f *grid.Field) *stencil.Op {
	return stencil.NewOp(stencil.TableI(p.C, p.Nu), f)
}

// distributedNorms computes the error norms against the analytic solution
// the way a real MPI code does (paper §IV-A records norms): each rank
// reduces its own subdomain with the thread team, then the squared sums
// and maxima are combined across ranks with Allreduce. Every rank returns
// the same global norms.
func distributedNorms(c *mpi.Comm, team *par.Team, p core.Problem, sub grid.Subdomain, local *grid.Field, tFinal float64) grid.Norms {
	rows := sub.Size.Y * sub.Size.Z
	sumsq := team.ReduceSum(rows, func(lo, hi int) float64 {
		var s float64
		for r := lo; r < hi; r++ {
			k := r / sub.Size.Y
			j := r % sub.Size.Y
			for i := 0; i < sub.Size.X; i++ {
				d := local.At(i, j, k) - p.Wave.Analytic(p.N, p.C, tFinal,
					sub.Lo.X+i, sub.Lo.Y+j, sub.Lo.Z+k)
				s += d * d
			}
		}
		return s
	})
	maxAbs := team.ReduceMax(rows, func(lo, hi int) float64 {
		var m float64
		for r := lo; r < hi; r++ {
			k := r / sub.Size.Y
			j := r % sub.Size.Y
			for i := 0; i < sub.Size.X; i++ {
				d := math.Abs(local.At(i, j, k) - p.Wave.Analytic(p.N, p.C, tFinal,
					sub.Lo.X+i, sub.Lo.Y+j, sub.Lo.Z+k))
				if d > m {
					m = d
				}
			}
		}
		return m
	})
	vals := []float64{sumsq}
	c.Allreduce(mpi.OpSum, vals)
	maxv := []float64{maxAbs}
	c.Allreduce(mpi.OpMax, maxv)
	return grid.Norms{
		L2:   math.Sqrt(vals[0] / float64(p.N.Volume())),
		LInf: maxv[0],
	}
}

// checkCancelRank polls the run's cancellation context from inside a rank
// goroutine and panics with the context error when it fires. The panic
// poisons the world (unblocking ranks already waiting in an exchange), and
// safeWorldRun converts it back into an error; cancelOr then maps whatever
// rank's panic won the race onto the context error, so callers see a clean
// cancellation instead of a poisoned-world message.
func checkCancelRank(o core.Options) {
	if err := o.CheckCancel(); err != nil {
		panic(err)
	}
}

// cancelOr maps a world-poisoning failure back onto the cancellation that
// caused it: when the options context is cancelled, any rank error —
// whichever rank's panic was observed first — is reported as the context
// error. Genuine failures pass through unchanged.
func cancelOr(o core.Options, err error) error {
	if err == nil {
		return nil
	}
	if cerr := o.CheckCancel(); cerr != nil {
		return fmt.Errorf("impl: run cancelled: %w", cerr)
	}
	return err
}

// safeWorldRun executes the world and converts a rank panic (which
// mpi.World.Run re-panics after poisoning the world) into an error, so the
// public Run API reports failures instead of crashing the caller.
func safeWorldRun(w *mpi.World, fn func(*mpi.Comm)) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			err = fmt.Errorf("impl: %v", p)
		}
	}()
	w.Run(fn)
	return nil
}
