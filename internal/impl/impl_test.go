package impl

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// reference runs the single-task implementation and returns its final field.
func reference(t *testing.T, p core.Problem) *grid.Field {
	t.Helper()
	r, err := core.New(core.SingleTask)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(p, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.Final
}

// agree asserts two fields match to tight roundoff.
func agree(t *testing.T, name string, got, want *grid.Field) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil final field", name)
	}
	nm := grid.DiffNorms(got, want)
	if nm.LInf > 1e-12 {
		t.Fatalf("%s: differs from single-task reference: LInf=%g L2=%g", name, nm.LInf, nm.L2)
	}
}

func run(t *testing.T, k core.Kind, p core.Problem, o core.Options) *core.Result {
	t.Helper()
	r, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(p, o)
	if err != nil {
		t.Fatalf("%v: %v", k, err)
	}
	return res
}

func TestAllKindsRegistered(t *testing.T) {
	registered := map[core.Kind]bool{}
	for _, k := range core.Registered() {
		registered[k] = true
	}
	// All nine paper implementations plus the wide-halo extension.
	for _, k := range append(core.Kinds(), core.WideHaloExt) {
		if !registered[k] {
			t.Fatalf("%v not registered", k)
		}
	}
}

func TestSingleTaskMatchesAnalyticShift(t *testing.T) {
	// c=(1,1,1), ν=1: every step is an exact lattice shift, so the
	// numerical solution equals the analytic one to roundoff.
	p := core.Problem{N: grid.Uniform(12), C: grid.Velocity{X: 1, Y: 1, Z: 1}, Steps: 5}
	res := run(t, core.SingleTask, p, core.Options{Threads: 3, Verify: true})
	if res.Norms.LInf > 1e-12 {
		t.Fatalf("exact-shift error: %+v", res.Norms)
	}
	if res.MassDrift > 1e-10 {
		t.Fatalf("mass drift %g", res.MassDrift)
	}
}

func TestSingleTaskThreadInvariance(t *testing.T) {
	p := core.DefaultProblem(14, 4)
	want := reference(t, p)
	for _, threads := range []int{1, 4, 7} {
		res := run(t, core.SingleTask, p, core.Options{Threads: threads})
		agree(t, "threads", res.Final, want)
	}
}

// taskCounts exercises cubic, prime, self-neighbor, and anisotropic
// decompositions.
var taskCounts = []int{1, 2, 3, 4, 5, 7, 8, 12}

func TestBulkSyncMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 3)
	want := reference(t, p)
	for _, tasks := range taskCounts {
		res := run(t, core.BulkSync, p, core.Options{Tasks: tasks, Threads: 2})
		agree(t, "bulk", res.Final, want)
		if tasks > 1 && res.Stats["mpi.messages"] == 0 {
			t.Fatalf("tasks=%d: no MPI traffic recorded", tasks)
		}
	}
}

func TestNonblockingOverlapMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 3)
	want := reference(t, p)
	for _, tasks := range taskCounts {
		res := run(t, core.NonblockingOverlap, p, core.Options{Tasks: tasks, Threads: 2})
		agree(t, "nonblocking", res.Final, want)
	}
}

func TestThreadedOverlapMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 3)
	want := reference(t, p)
	for _, tasks := range taskCounts {
		for _, threads := range []int{1, 3} {
			res := run(t, core.ThreadedOverlap, p, core.Options{Tasks: tasks, Threads: threads})
			agree(t, "threaded", res.Final, want)
		}
	}
}

func TestGPUResidentMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 3)
	want := reference(t, p)
	for _, blk := range [][2]int{{8, 4}, {16, 8}, {32, 8}, {5, 3}} {
		res := run(t, core.GPUResident, p, core.Options{BlockX: blk[0], BlockY: blk[1]})
		agree(t, "gpu-resident", res.Final, want)
		if res.Stats["gpu.kernels"] != float64(p.Steps) {
			t.Fatalf("block %v: %v kernels, want %d", blk, res.Stats["gpu.kernels"], p.Steps)
		}
	}
}

func TestGPUResidentBothDevices(t *testing.T) {
	p := core.DefaultProblem(12, 2)
	want := reference(t, p)
	for _, g := range []core.GPUModel{core.GPUC1060, core.GPUC2050} {
		res := run(t, core.GPUResident, p, core.Options{GPU: g, BlockX: 8, BlockY: 4})
		agree(t, g.String(), res.Final, want)
	}
}

func TestGPUBulkSyncMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 3)
	want := reference(t, p)
	for _, tasks := range taskCounts {
		res := run(t, core.GPUBulkSync, p, core.Options{Tasks: tasks, BlockX: 8, BlockY: 4})
		agree(t, "gpu-bulk", res.Final, want)
		if res.Stats["pcie.bytes"] == 0 {
			t.Fatal("no PCIe traffic recorded")
		}
	}
}

func TestGPUStreamsMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 3)
	want := reference(t, p)
	for _, tasks := range taskCounts {
		res := run(t, core.GPUStreams, p, core.Options{Tasks: tasks, BlockX: 8, BlockY: 4})
		agree(t, "gpu-streams", res.Final, want)
	}
}

func TestHybridBulkSyncMatchesReference(t *testing.T) {
	p := core.DefaultProblem(16, 3)
	want := reference(t, p)
	for _, tasks := range []int{1, 2, 4} {
		for _, thick := range []int{1, 2, 3} {
			res := run(t, core.HybridBulkSync, p,
				core.Options{Tasks: tasks, Threads: 2, BoxThickness: thick, BlockX: 8, BlockY: 4})
			agree(t, "hybrid-bulk", res.Final, want)
		}
	}
}

func TestHybridOverlapMatchesReference(t *testing.T) {
	p := core.DefaultProblem(16, 3)
	want := reference(t, p)
	for _, tasks := range []int{1, 2, 4} {
		for _, thick := range []int{1, 2, 3} {
			res := run(t, core.HybridOverlap, p,
				core.Options{Tasks: tasks, Threads: 2, BoxThickness: thick, BlockX: 8, BlockY: 4})
			agree(t, "hybrid-overlap", res.Final, want)
		}
	}
}

func TestAllImplementationsConserveMass(t *testing.T) {
	p := core.DefaultProblem(12, 4)
	for _, k := range core.Kinds() {
		o := core.Options{Tasks: 2, Threads: 2, BlockX: 8, BlockY: 4, Verify: true}
		if !k.UsesMPI() {
			o.Tasks = 1
		}
		res := run(t, k, p, o)
		if res.MassDrift > 1e-9 {
			t.Fatalf("%v: mass drift %g", k, res.MassDrift)
		}
	}
}

func TestVerifyNormsSmall(t *testing.T) {
	// With a well-resolved Gaussian the numerical error after a few steps
	// is small; verify every implementation reports sane norms.
	p := core.DefaultProblem(24, 6)
	for _, k := range core.Kinds() {
		o := core.Options{Tasks: 3, Threads: 2, BlockX: 8, BlockY: 4, Verify: true}
		if !k.UsesMPI() {
			o.Tasks = 1
		}
		res := run(t, k, p, o)
		if res.Norms.L2 == 0 || math.IsNaN(res.Norms.L2) {
			t.Fatalf("%v: suspicious L2 %v", k, res.Norms.L2)
		}
		// The default Gaussian is ~2.4 points wide at this size, so the
		// second-order scheme leaves a few percent of peak after 6 steps.
		if res.Norms.LInf > 0.08 {
			t.Fatalf("%v: LInf %v too large", k, res.Norms.LInf)
		}
	}
}

func TestAnisotropicGrid(t *testing.T) {
	// Non-cubic grids exercise the decomposition and exchange index math.
	p := core.Problem{N: grid.Dims{X: 13, Y: 10, Z: 17}, C: grid.Velocity{X: 0.5, Y: 1, Z: 0.25}, Steps: 3}
	want := reference(t, p)
	for _, k := range []core.Kind{core.BulkSync, core.NonblockingOverlap, core.ThreadedOverlap, core.GPUBulkSync, core.GPUStreams} {
		res := run(t, k, p, core.Options{Tasks: 6, Threads: 2, BlockX: 8, BlockY: 4})
		agree(t, k.String(), res.Final, want)
	}
}

func TestNegativeVelocity(t *testing.T) {
	p := core.Problem{N: grid.Uniform(12), C: grid.Velocity{X: -1, Y: 0.5, Z: -0.25}, Steps: 4}
	want := reference(t, p)
	for _, k := range []core.Kind{core.BulkSync, core.GPUResident, core.HybridOverlap} {
		o := core.Options{Tasks: 4, Threads: 2, BlockX: 8, BlockY: 4}
		if !k.UsesMPI() {
			o.Tasks = 1
		}
		res := run(t, k, p, o)
		agree(t, k.String(), res.Final, want)
	}
}

func TestZeroStepsIsIdentity(t *testing.T) {
	p := core.DefaultProblem(10, 0)
	res := run(t, core.BulkSync, p, core.Options{Tasks: 2})
	initial := grid.NewField(p.N, 1)
	pn, _ := p.Normalize()
	grid.FillGaussian(initial, pn.Wave)
	agree(t, "zero-steps", res.Final, initial)
}

func TestErrorPaths(t *testing.T) {
	small := core.DefaultProblem(2, 1)
	if _, err := (singleTask{}).Run(small, core.Options{}); err == nil {
		t.Fatal("tiny grid accepted")
	}
	p := core.DefaultProblem(10, 1)
	if _, err := (bulkSync{}).Run(p, core.Options{Tasks: 100}); err == nil {
		t.Fatal("oversubscribed tasks accepted")
	}
	if _, err := (gpuResident{}).Run(p, core.Options{Tasks: 2}); err == nil {
		t.Fatal("multi-task GPU-resident accepted")
	}
	if _, err := (hybridRunner{}).Run(p, core.Options{Tasks: 1, BoxThickness: 5}); err == nil {
		t.Fatal("shell consuming whole domain accepted")
	}
	if _, err := (gpuResident{}).Run(p, core.Options{BlockX: 64, BlockY: 64, GPU: core.GPUC1060}); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestSimulatedTimeRecorded(t *testing.T) {
	p := core.DefaultProblem(16, 2)
	for _, k := range []core.Kind{core.GPUResident, core.GPUBulkSync, core.GPUStreams, core.HybridOverlap} {
		o := core.Options{Tasks: 1, BlockX: 8, BlockY: 4}
		res := run(t, k, p, o)
		if res.Stats["sim.seconds"] <= 0 {
			t.Fatalf("%v: no simulated time recorded", k)
		}
	}
}

func TestStreamsOverlapBeatsBulkInSimTime(t *testing.T) {
	// The overlap implementations must show shorter *simulated* step time
	// than their bulk counterparts on the same configuration — the
	// functional analog of the paper's Figures 9 and 10.
	p := core.DefaultProblem(32, 3)
	o := core.Options{Tasks: 1, BlockX: 16, BlockY: 8}
	bulk := run(t, core.GPUBulkSync, p, o)
	streams := run(t, core.GPUStreams, p, o)
	if streams.Stats["sim.seconds"] >= bulk.Stats["sim.seconds"] {
		t.Fatalf("streams sim time %v not below bulk %v",
			streams.Stats["sim.seconds"], bulk.Stats["sim.seconds"])
	}
}

func TestHybridOverlapBeatsHybridBulkInSimTime(t *testing.T) {
	p := core.DefaultProblem(32, 3)
	o := core.Options{Tasks: 1, Threads: 2, BoxThickness: 1, BlockX: 16, BlockY: 8}
	bulk := run(t, core.HybridBulkSync, p, o)
	over := run(t, core.HybridOverlap, p, o)
	if over.Stats["sim.seconds"] >= bulk.Stats["sim.seconds"] {
		t.Fatalf("hybrid overlap sim time %v not below bulk %v",
			over.Stats["sim.seconds"], bulk.Stats["sim.seconds"])
	}
}

func TestDistributedNormsMatchGathered(t *testing.T) {
	// The distributed (Allreduce) norm computation must agree with the
	// norms computed on the gathered global field — §IV-A's verification
	// done the way a real MPI code does it.
	p := core.DefaultProblem(18, 4)
	for _, tasks := range []int{1, 3, 6} {
		res := run(t, core.BulkSync, p, core.Options{Tasks: tasks, Threads: 2, Verify: true})
		if math.Abs(res.Stats["dist.l2"]-res.Norms.L2) > 1e-12 {
			t.Fatalf("tasks=%d: distributed L2 %v vs gathered %v",
				tasks, res.Stats["dist.l2"], res.Norms.L2)
		}
		if math.Abs(res.Stats["dist.linf"]-res.Norms.LInf) > 1e-13 {
			t.Fatalf("tasks=%d: distributed LInf %v vs gathered %v",
				tasks, res.Stats["dist.linf"], res.Norms.LInf)
		}
	}
}

func TestMessageCountMatchesModel(t *testing.T) {
	// The functional bulk implementation must send exactly the message
	// count the performance model assumes: 6 per task per step (2 per
	// dimension phase) when no dimension is a self-neighbor.
	// The final gather is a fixed collective cost, so compare the delta
	// between two step counts.
	perStep := func(k core.Kind, o core.Options) float64 {
		t.Helper()
		a := run(t, k, core.DefaultProblem(16, 5), o)
		b := run(t, k, core.DefaultProblem(16, 10), o)
		return (b.Stats["mpi.messages"] - a.Stats["mpi.messages"]) / 5
	}
	if got := perStep(core.BulkSync, core.Options{Tasks: 8}); got != 6*8 { // P = 2x2x2
		t.Fatalf("bulk sends %v messages/step, model assumes %v", got, 6*8)
	}
	// The nonblocking variant exchanges the same volume.
	if got := perStep(core.NonblockingOverlap, core.Options{Tasks: 8}); got != 6*8 {
		t.Fatalf("nonblocking sends %v messages/step, want %v", got, 6*8)
	}
	// Wide halos divide the message count by W.
	if got := perStep(core.WideHaloExt, core.Options{Tasks: 8, HaloWidth: 5}); got != 6*8/5.0 {
		t.Fatalf("wide halo sends %v messages/step, want %v", got, 6*8/5.0)
	}
}

func TestTasksPerGPUSharingSlowsSimTime(t *testing.T) {
	// Two tasks sharing one device (the paper's tunable, §IV-F) must show
	// more simulated time than two tasks with a device each — the kernels
	// and DMA serialize on the shared engine — while the numerical result
	// stays identical.
	p := core.DefaultProblem(24, 3)
	own := run(t, core.GPUBulkSync, p,
		core.Options{Tasks: 2, BlockX: 8, BlockY: 4, GPU: core.GPUC1060})
	shared := run(t, core.GPUBulkSync, p,
		core.Options{Tasks: 2, BlockX: 8, BlockY: 4, GPU: core.GPUC1060, TasksPerGPU: 2})
	if shared.Stats["sim.seconds"] <= own.Stats["sim.seconds"] {
		t.Fatalf("shared device sim %.3g not above dedicated %.3g",
			shared.Stats["sim.seconds"], own.Stats["sim.seconds"])
	}
	if nm := grid.DiffNorms(shared.Final, own.Final); nm.LInf != 0 {
		t.Fatalf("device sharing changed the numerics: %+v", nm)
	}
}

func TestTasksPerGPUHybridAgrees(t *testing.T) {
	p := core.DefaultProblem(16, 3)
	want := reference(t, p)
	res := run(t, core.HybridOverlap, p,
		core.Options{Tasks: 4, Threads: 2, BlockX: 8, BlockY: 4, TasksPerGPU: 4})
	agree(t, "hybrid shared device", res.Final, want)
	if res.Stats["gpu.kernels"] == 0 {
		t.Fatal("no kernels recorded from the shared pool")
	}
}
