package impl

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stencil"
)

// threadedOverlap is §IV-D: overlap via an asynchronous OpenMP thread
// instead of nonblocking MPI. The master thread performs the whole
// (blocking, dimension-serialized) MPI communication and then joins the
// computation of the interior points, which the other threads began
// immediately; guided scheduling distributes chunks as threads request
// them so the late-joining master still gets work. A barrier (implicit at
// the end of the parallel region) ensures communication has completed
// before the boundary points are computed.
type threadedOverlap struct{}

func (threadedOverlap) Kind() core.Kind { return core.ThreadedOverlap }

func (threadedOverlap) Run(p core.Problem, o core.Options) (*core.Result, error) {
	return runMPI(core.ThreadedOverlap, p, o, func(rc rankCtx) {
		interior := stencil.Interior(rc.cur.N)
		boundary := stencil.BoundarySlabs(rc.cur.N)
		rows := stencil.Rows(interior)
		for s := 0; s < rc.p.Steps; s++ {
			checkCancelRank(rc.o)
			rc.ex.setStep(s)
			// The interior span brackets the whole region: the workers
			// compute for its entire duration while the master's exchange
			// spans land inside it — that containment is the overlap.
			sp := rc.span(s, obs.PhaseInterior, "master+workers")
			rc.team.RunWithMaster(func() {
				rc.ex.exchangeAll()
			}, rows, 1, func(lo, hi int) {
				rc.op.ApplyRows(rc.cur, rc.nxt, interior, lo, hi)
			})
			sp.End()
			sp = rc.span(s, obs.PhaseBoundary, "slabs")
			for _, sub := range boundary {
				if sub.Empty() {
					continue
				}
				sub := sub
				rc.team.ParallelFor(stencil.Rows(sub), par.Static, 0, func(lo, hi int) {
					rc.op.ApplyRows(rc.cur, rc.nxt, sub, lo, hi)
				})
			}
			sp.End()
			whole := stencil.Whole(rc.cur.N)
			sp = rc.span(s, obs.PhaseCopy, "")
			rc.team.ParallelFor(stencil.Rows(whole), par.Static, 0, func(lo, hi int) {
				copyRows(rc.nxt, rc.cur, whole, lo, hi)
			})
			sp.End()
		}
	})
}
