package impl

import (
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/vtime"
)

// poolTraces installs per-device recording on a world's device pool: a
// vtime.Trace per device when o.TraceOverlap is set (returned for stats
// merging), and the obs observer when the run carries a recorder. Device
// spans are attributed to the group's first rank — with the default one
// task per GPU that is simply the owning rank.
func poolTraces(pool []*gpusim.Device, o core.Options) []*vtime.Trace {
	per := o.TasksPerGPU
	if per < 1 {
		per = 1
	}
	if o.Rec != nil {
		for i, dev := range pool {
			dev.SetObserver(o.Rec, i*per)
		}
	}
	if !o.TraceOverlap {
		return nil
	}
	traces := make([]*vtime.Trace, len(pool))
	for i, dev := range pool {
		traces[i] = vtime.NewTrace()
		dev.SetTrace(traces[i])
	}
	return traces
}

// mergedOverlapStats folds every device's overlap accounting into one stats
// map: per-key sums across devices (so a single-device world reads exactly
// as overlapStats), plus the device count and the min/max per-device
// overlap, which expose stragglers that a rank-0-only trace used to hide.
func mergedOverlapStats(traces []*vtime.Trace) map[string]float64 {
	stats := map[string]float64{}
	if len(traces) == 0 {
		return stats
	}
	minOv, maxOv := math.Inf(1), math.Inf(-1)
	for _, tr := range traces {
		per := map[string]float64{}
		overlapStats(tr, per)
		for k, v := range per {
			stats[k] += v
		}
		ov := per["trace.overlap.sec"]
		minOv = min(minOv, ov)
		maxOv = max(maxOv, ov)
	}
	stats["trace.devices"] = float64(len(traces))
	stats["trace.overlap.min.sec"] = minOv
	stats["trace.overlap.max.sec"] = maxOv
	if mean := stats["trace.overlap.sec"] / float64(len(traces)); mean > 0 {
		// Max/mean per-device overlap: the device-side imbalance ratio,
		// matching the rank-side straggler report in obs.BuildImbalance.
		stats["trace.overlap.imbalance"] = maxOv / mean
	}
	return stats
}

// overlapStats summarizes a device trace into Result.Stats entries: how
// much simulated time the interior kernel spent running concurrently with
// each other lane. The interior kernel's lane is "gpu.interior"; PCIe
// traffic is on "pcie.h2d"/"pcie.d2h"; boundary kernels run on
// "gpu.boundary" in the two-stream implementations.
func overlapStats(tr *vtime.Trace, stats map[string]float64) {
	if tr == nil {
		return
	}
	spans := tr.Spans()
	stats["trace.spans"] = float64(len(spans))
	lanes := map[string]bool{}
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	var total vtime.Time
	const interior = "gpu.interior"
	if !lanes[interior] {
		stats["trace.overlap.sec"] = 0
		return
	}
	for lane := range lanes {
		if lane == interior {
			continue
		}
		ov := tr.Overlap(interior, lane)
		if ov > 0 {
			key := "trace.overlap." + sanitizeLane(lane)
			stats[key] = ov.Seconds()
		}
		total += ov
	}
	stats["trace.overlap.sec"] = total.Seconds()
	for lane := range lanes {
		stats["trace.busy."+sanitizeLane(lane)] = tr.LaneBusy()[lane].Seconds()
	}
}

func sanitizeLane(lane string) string {
	return strings.ReplaceAll(lane, " ", "_")
}
