package impl

import (
	"strings"

	"repro/internal/vtime"
)

// overlapStats summarizes a device trace into Result.Stats entries: how
// much simulated time the interior kernel spent running concurrently with
// each other lane. The interior kernel's lane is "gpu.interior"; PCIe
// traffic is on "pcie.h2d"/"pcie.d2h"; boundary kernels run on
// "gpu.boundary" in the two-stream implementations.
func overlapStats(tr *vtime.Trace, stats map[string]float64) {
	if tr == nil {
		return
	}
	spans := tr.Spans()
	stats["trace.spans"] = float64(len(spans))
	lanes := map[string]bool{}
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	var total vtime.Time
	const interior = "gpu.interior"
	if !lanes[interior] {
		stats["trace.overlap.sec"] = 0
		return
	}
	for lane := range lanes {
		if lane == interior {
			continue
		}
		ov := tr.Overlap(interior, lane)
		if ov > 0 {
			key := "trace.overlap." + sanitizeLane(lane)
			stats[key] = ov.Seconds()
		}
		total += ov
	}
	stats["trace.overlap.sec"] = total.Seconds()
	for lane := range lanes {
		stats["trace.busy."+sanitizeLane(lane)] = tr.LaneBusy()[lane].Seconds()
	}
}

func sanitizeLane(lane string) string {
	return strings.ReplaceAll(lane, " ", "_")
}
