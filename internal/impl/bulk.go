package impl

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stencil"
)

// bulkSync is §IV-B: distributed-memory parallelism added to the
// single-task implementation. Each step performs the whole halo exchange
// (all three serialized dimension phases) before any computation starts —
// bulk synchronous — then computes and copies locally.
type bulkSync struct{}

func (bulkSync) Kind() core.Kind { return core.BulkSync }

func (bulkSync) Run(p core.Problem, o core.Options) (*core.Result, error) {
	return runMPI(core.BulkSync, p, o, func(rc rankCtx) {
		whole := stencil.Whole(rc.cur.N)
		rows := stencil.Rows(whole)
		for s := 0; s < rc.p.Steps; s++ {
			checkCancelRank(rc.o)
			rc.ex.setStep(s)
			rc.ex.exchangeAll()
			sp := rc.span(s, obs.PhaseInterior, "whole")
			rc.team.ParallelFor(rows, par.Static, 0, func(lo, hi int) {
				rc.op.ApplyRows(rc.cur, rc.nxt, whole, lo, hi)
			})
			sp.End()
			sp = rc.span(s, obs.PhaseCopy, "")
			rc.team.ParallelFor(rows, par.Static, 0, func(lo, hi int) {
				copyRows(rc.nxt, rc.cur, whole, lo, hi)
			})
			sp.End()
		}
	})
}

// rankCtx is the per-rank state handed to an MPI implementation's step
// loop.
type rankCtx struct {
	p     core.Problem
	o     core.Options
	c     *mpi.Comm
	d     grid.Decomp
	sub   grid.Subdomain
	team  *par.Team
	cur   *grid.Field
	nxt   *grid.Field
	op    *stencil.Op
	ex    *exchanger
	stats map[string]float64 // optional extra stats from the rank
}

// span opens a wall-clock span attributed to this rank (no-op when the run
// carries no recorder).
func (rc rankCtx) span(step int, ph obs.Phase, label string) obs.Active {
	return rc.o.Rec.Begin(rc.c.Rank(), step, ph, label)
}

// runMPI is the shared scaffold of the CPU MPI implementations: it spawns
// the world, builds each rank's local state, runs the provided step loop
// with the paper's barrier-bracketed timing, gathers the result on rank 0,
// and aggregates communication statistics.
func runMPI(kind core.Kind, p core.Problem, o core.Options, steps func(rankCtx)) (*core.Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	o = o.Normalize()
	if err := checkMPIOptions(p, o); err != nil {
		return nil, err
	}
	d := grid.NewDecomp(p.N, o.Tasks)
	w := mpi.NewWorld(o.Tasks)

	var (
		mu       sync.Mutex
		final    *grid.Field
		elapsed  time.Duration
		msgs     float64
		values   float64
		distL2   float64
		distLInf float64
	)
	runErr := safeWorldRun(w, func(c *mpi.Comm) {
		sub := d.Sub(c.Rank())
		team := par.NewTeam(o.Threads)
		defer team.Close()
		cur := grid.NewField(sub.Size, 1)
		fillLocal(cur, p, sub)
		nxt := grid.NewField(sub.Size, 1)
		rc := rankCtx{
			p: p, o: o, c: c, d: d, sub: sub, team: team,
			cur: cur, nxt: nxt,
			op: opFor(p, cur),
			ex: newExchanger(c, d, cur),
		}
		rc.ex.setObs(o.Rec)
		team.SetRecorder(o.Rec, c.Rank())

		// "We perform a barrier immediately before measuring the start
		// time and the end time."
		c.Barrier()
		t0 := time.Now()
		steps(rc)
		c.Barrier()
		dt := time.Since(t0)

		var dnorms grid.Norms
		if o.Verify {
			tFinal := p.T0 + p.Nu*float64(p.Steps)
			dnorms = distributedNorms(c, team, p, sub, cur, tFinal)
		}
		g := gather(c, d, cur)
		st := c.Stats()
		mu.Lock()
		msgs += float64(st.SentMessages)
		values += float64(st.SentValues)
		if c.Rank() == 0 {
			final = g
			elapsed = dt
			distL2, distLInf = dnorms.L2, dnorms.LInf
		}
		mu.Unlock()
	})

	if runErr != nil {
		return nil, cancelOr(o, runErr)
	}
	res := &core.Result{Kind: kind, Final: final, Stats: map[string]float64{
		"tasks":         float64(o.Tasks),
		"threads":       float64(o.Threads),
		"mpi.messages":  msgs,
		"mpi.values":    values,
		"mpi.bytes":     values * 8,
		"mpi.msgs/step": msgs / float64(max(1, p.Steps)),
	}}
	if o.Verify {
		res.Stats["dist.l2"] = distL2
		res.Stats["dist.linf"] = distLInf
	}
	finishResult(res, p, o, elapsed, globalMass(p))
	return res, nil
}
