package impl

import (
	"testing"

	"repro/internal/core"
)

func TestWideHaloMatchesReference(t *testing.T) {
	p := core.DefaultProblem(15, 7) // 7 steps: exercises a short final burst
	want := reference(t, p)
	for _, tasks := range []int{1, 2, 3, 4, 8} {
		for _, width := range []int{1, 2, 3} {
			res := run(t, core.WideHaloExt, p, core.Options{Tasks: tasks, Threads: 2, HaloWidth: width})
			agree(t, "wide-halo", res.Final, want)
		}
	}
}

func TestWideHaloSendsFewerMessages(t *testing.T) {
	p := core.DefaultProblem(16, 8)
	narrow := run(t, core.WideHaloExt, p, core.Options{Tasks: 8, HaloWidth: 1})
	wide := run(t, core.WideHaloExt, p, core.Options{Tasks: 8, HaloWidth: 4})
	if wide.Stats["mpi.messages"] >= narrow.Stats["mpi.messages"]/3 {
		t.Fatalf("wide halo sent %v messages vs %v narrow; expected ~4x fewer",
			wide.Stats["mpi.messages"], narrow.Stats["mpi.messages"])
	}
}

func TestWideHaloRejectsThinSubdomains(t *testing.T) {
	p := core.DefaultProblem(8, 1)
	if _, err := (wideHalo{}).Run(p, core.Options{Tasks: 8, HaloWidth: 5}); err == nil {
		t.Fatal("oversized halo width accepted")
	}
}
