package impl

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stencil"
)

// nonblockingOverlap is §IV-C: the common overlap strategy. The local
// domain is partitioned into interior points (stencil reads no halo) and
// boundary points; the interior is further cut into thirds along z. Each
// dimension's nonblocking exchange brackets one third: the first third
// computes between initiation and completion of the x communication, the
// second within y, the third within z. The boundary points are computed
// after all communication completes.
type nonblockingOverlap struct{}

func (nonblockingOverlap) Kind() core.Kind { return core.NonblockingOverlap }

func (nonblockingOverlap) Run(p core.Problem, o core.Options) (*core.Result, error) {
	return runMPI(core.NonblockingOverlap, p, o, func(rc rankCtx) {
		thirds := stencil.InteriorThirds(rc.cur.N)
		boundary := stencil.BoundarySlabs(rc.cur.N)
		for s := 0; s < rc.p.Steps; s++ {
			checkCancelRank(rc.o)
			rc.ex.setStep(s)
			for dim := 0; dim < 3; dim++ {
				ph := rc.ex.start(dim)
				sub := thirds[dim]
				sp := rc.span(s, obs.PhaseInterior, "third."+dimNames[dim])
				rc.team.ParallelFor(stencil.Rows(sub), par.Static, 0, func(lo, hi int) {
					rc.op.ApplyRows(rc.cur, rc.nxt, sub, lo, hi)
				})
				sp.End()
				rc.ex.finish(ph)
			}
			// "The threads compute the boundary points after the
			// communication."
			sp := rc.span(s, obs.PhaseBoundary, "slabs")
			for _, sub := range boundary {
				if sub.Empty() {
					continue
				}
				sub := sub
				rc.team.ParallelFor(stencil.Rows(sub), par.Static, 0, func(lo, hi int) {
					rc.op.ApplyRows(rc.cur, rc.nxt, sub, lo, hi)
				})
			}
			sp.End()
			whole := stencil.Whole(rc.cur.N)
			sp = rc.span(s, obs.PhaseCopy, "")
			rc.team.ParallelFor(stencil.Rows(whole), par.Static, 0, func(lo, hi int) {
				copyRows(rc.nxt, rc.cur, whole, lo, hi)
			})
			sp.End()
		}
	})
}
