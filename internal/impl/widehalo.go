package impl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stencil"
)

func init() {
	core.Register(core.WideHaloExt, func() core.Runner { return wideHalo{} })
}

// wideHalo is this reproduction's extension implementation: a
// communication-avoiding variant of the bulk-synchronous code. Instead of
// exchanging a one-point halo every step, it exchanges a W-point halo once
// every W steps and redundantly computes a shrinking extended region in
// between: after the exchange the state is valid on [-W, n+W); inner step
// k computes the region extended by W-1-k points, so after W steps exactly
// the interior is valid again. The trade is W-fold fewer messages (and
// W-fold fewer latency payments) for O(surface·W²) redundant flops — the
// classic optimization for latency-dominated strong scaling, which the
// paper's Figures 3-4 regime motivates but the paper itself does not test.
type wideHalo struct{}

func (wideHalo) Kind() core.Kind { return core.WideHaloExt }

func (wideHalo) Run(p core.Problem, o core.Options) (*core.Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	o = o.Normalize()
	if err := checkMPIOptions(p, o); err != nil {
		return nil, err
	}
	W := o.HaloWidth
	d := grid.NewDecomp(p.N, o.Tasks)
	for r := 0; r < o.Tasks; r++ {
		s := d.Sub(r).Size
		if s.X < W || s.Y < W || s.Z < W {
			return nil, fmt.Errorf("impl: halo width %d exceeds rank %d subdomain %v", W, r, s)
		}
	}
	w := mpi.NewWorld(o.Tasks)

	var (
		mu      sync.Mutex
		final   *grid.Field
		elapsed time.Duration
		msgs    float64
		values  float64
	)
	runErr := safeWorldRun(w, func(c *mpi.Comm) {
		sub := d.Sub(c.Rank())
		team := par.NewTeam(o.Threads)
		defer team.Close()
		cur := grid.NewField(sub.Size, W)
		fillLocal(cur, p, sub)
		nxt := grid.NewField(sub.Size, W)
		op := opFor(p, cur)
		ex := newExchanger(c, d, cur)
		ex.setObs(o.Rec)
		team.SetRecorder(o.Rec, c.Rank())
		rank := c.Rank()

		// extended returns the subdomain grown by e points on every side.
		extended := func(e int) grid.Subdomain {
			return grid.Subdomain{
				Lo:   grid.Dims{X: -e, Y: -e, Z: -e},
				Size: grid.Dims{X: sub.Size.X + 2*e, Y: sub.Size.Y + 2*e, Z: sub.Size.Z + 2*e},
			}
		}

		c.Barrier()
		t0 := time.Now()
		for done := 0; done < p.Steps; {
			checkCancelRank(o)
			// One wide exchange covers the next burst of inner steps.
			burst := W
			if p.Steps-done < burst {
				burst = p.Steps - done
			}
			ex.setStep(done)
			ex.exchangeAll()
			for k := 0; k < burst; k++ {
				region := extended(W - 1 - k)
				if burst < W {
					// A short final burst still only needs validity to
					// shrink to the interior on its last step.
					region = extended(burst - 1 - k)
				}
				rows := stencil.Rows(region)
				sp := o.Rec.Begin(rank, done, obs.PhaseInterior, "extended")
				team.ParallelFor(rows, par.Static, 0, func(lo, hi int) {
					op.ApplyRows(cur, nxt, region, lo, hi)
				})
				sp.End()
				sp = o.Rec.Begin(rank, done, obs.PhaseCopy, "")
				team.ParallelFor(rows, par.Static, 0, func(lo, hi int) {
					copyRows(nxt, cur, region, lo, hi)
				})
				sp.End()
				done++
			}
		}
		c.Barrier()
		dt := time.Since(t0)

		g := gather(c, d, cur)
		st := c.Stats()
		mu.Lock()
		msgs += float64(st.SentMessages)
		values += float64(st.SentValues)
		if c.Rank() == 0 {
			final = g
			elapsed = dt
		}
		mu.Unlock()
	})
	if runErr != nil {
		return nil, cancelOr(o, runErr)
	}

	res := &core.Result{Kind: core.WideHaloExt, Final: final, Stats: map[string]float64{
		"tasks":        float64(o.Tasks),
		"threads":      float64(o.Threads),
		"halo.width":   float64(W),
		"mpi.messages": msgs,
		"mpi.values":   values,
	}}
	finishResult(res, p, o, elapsed, globalMass(p))
	return res, nil
}
