package impl

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stencil"
)

// singleTask is the paper's baseline (§IV-A): one task, OpenMP threading.
// Each time step performs the paper's three algorithmic steps:
//
//  1. copy periodic boundaries (doubly nested loops, outer loop threaded),
//  2. compute the new state with Eq. 2 (triply nested loops, outermost two
//     collapsed and threaded), and
//  3. copy the new state to the current state (same loop structure).
type singleTask struct{}

func (singleTask) Kind() core.Kind { return core.SingleTask }

func (singleTask) Run(p core.Problem, o core.Options) (*core.Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	o = o.Normalize()
	if o.Tasks != 1 {
		o.Tasks = 1 // single task by definition
	}
	team := par.NewTeam(o.Threads)
	defer team.Close()
	team.SetRecorder(o.Rec, 0)

	cur := grid.NewField(p.N, 1)
	cur.Fill(func(i, j, k int) float64 { return p.InitialValue(i, j, k) })
	mass0 := cur.InteriorSum()
	nxt := grid.NewField(p.N, 1)
	op := opFor(p, cur)
	whole := stencil.Whole(p.N)
	rows := stencil.Rows(whole)

	start := time.Now()
	for s := 0; s < p.Steps; s++ {
		if err := o.CheckCancel(); err != nil {
			return nil, fmt.Errorf("impl: run cancelled at step %d: %w", s, err)
		}
		// Step 1: periodic halo copy. The three dimension sweeps are each
		// threaded over their outer loop; keeping them serialized preserves
		// the corner-propagation order.
		sp := o.Rec.Begin(0, s, obs.PhaseHaloUnpack, "periodic")
		copyPeriodicHalosParallel(team, cur)
		sp.End()

		// Step 2: compute, collapse(2) over the (k, j) loops.
		sp = o.Rec.Begin(0, s, obs.PhaseInterior, "whole")
		team.ParallelFor(rows, par.Static, 0, func(lo, hi int) {
			op.ApplyRows(cur, nxt, whole, lo, hi)
		})
		sp.End()

		// Step 3: copy new state to current state (the paper copies rather
		// than swapping buffers).
		sp = o.Rec.Begin(0, s, obs.PhaseCopy, "")
		team.ParallelFor(rows, par.Static, 0, func(lo, hi int) {
			copyRows(nxt, cur, whole, lo, hi)
		})
		sp.End()
	}
	elapsed := time.Since(start)

	res := &core.Result{Kind: core.SingleTask, Final: cur.Clone(), Stats: map[string]float64{
		"threads": float64(o.Threads),
	}}
	finishResult(res, p, o, elapsed, mass0)
	return res, nil
}

// copyRows copies the x-rows of sub with flattened (k, j) indices in
// [lo, hi) from src to dst (the paper's Step 3 loop body).
func copyRows(src, dst *grid.Field, sub grid.Subdomain, lo, hi int) {
	ny := sub.Size.Y
	nx := sub.Size.X
	for r := lo; r < hi; r++ {
		k := sub.Lo.Z + r/ny
		j := sub.Lo.Y + r%ny
		s := src.Idx(sub.Lo.X, j, k)
		d := dst.Idx(sub.Lo.X, j, k)
		copy(dst.Data()[d:d+nx], src.Data()[s:s+nx])
	}
}

// copyPeriodicHalosParallel performs the single-task periodic boundary
// copy with each dimension sweep threaded over its outer loop, exactly the
// structure of §IV-A Step 1. Correctness requires the x sweep to finish
// before y and y before z, which the implicit barrier after each
// ParallelFor provides.
func copyPeriodicHalosParallel(team *par.Team, f *grid.Field) {
	n := f.N
	h := f.Halo
	d := f.Data()
	// x sweep over (k, j).
	team.ParallelFor(n.Z*n.Y, par.Static, 0, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			k := r / n.Y
			j := r % n.Y
			for g := 1; g <= h; g++ {
				d[f.Idx(-g, j, k)] = d[f.Idx(n.X-g, j, k)]
				d[f.Idx(n.X-1+g, j, k)] = d[f.Idx(g-1, j, k)]
			}
		}
	})
	// y sweep over k, x range widened.
	team.ParallelFor(n.Z, par.Static, 0, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for g := 1; g <= h; g++ {
				w := n.X + 2*h
				src1 := f.Idx(-h, n.Y-g, k)
				dst1 := f.Idx(-h, -g, k)
				src2 := f.Idx(-h, g-1, k)
				dst2 := f.Idx(-h, n.Y-1+g, k)
				copy(d[dst1:dst1+w], d[src1:src1+w])
				copy(d[dst2:dst2+w], d[src2:src2+w])
			}
		}
	})
	// z sweep over j, x and y ranges widened.
	team.ParallelFor(n.Y+2*h, par.Static, 0, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			j := r - h
			for g := 1; g <= h; g++ {
				w := n.X + 2*h
				src1 := f.Idx(-h, j, n.Z-g)
				dst1 := f.Idx(-h, j, -g)
				src2 := f.Idx(-h, j, g-1)
				dst2 := f.Idx(-h, j, n.Z-1+g)
				copy(d[dst1:dst1+w], d[src1:src1+w])
				copy(d[dst2:dst2+w], d[src2:src2+w])
			}
		}
	})
}
