package impl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stencil"
)

// hybridRunner implements §IV-H (overlap=false) and §IV-I (overlap=true):
// CPU and GPU computation with the box decomposition of Fig. 1. Each
// task's domain is partitioned between CPU and GPU as a block in a box:
// the GPU computes the interior block, the CPU computes the enclosing
// shell whose wall thickness (Options.BoxThickness) balances the load.
//
// §IV-H is bulk synchronous: the task first exchanges inner halos and
// boundaries with the GPU (synchronous PCIe copies) and outer halos with
// its neighbors through MPI, then issues the GPU kernels and computes the
// shell — CPU and GPU computation may overlap, nothing else does.
//
// §IV-I attempts the most extensive overlap: the GPU interior kernel is
// issued first on one stream; the inner-halo upload, GPU boundary kernels,
// and boundary download run asynchronously on a second stream; MPI
// communication in each dimension overlaps CPU computation of the interior
// points of that dimension's walls; and the CPU finishes with the outer
// boundary points before synchronizing the streams. CPU computation, GPU
// computation, MPI communication, and CPU-GPU communication can all be in
// flight at once, which is why this implementation can win by more than a
// factor of two.
type hybridRunner struct {
	overlap bool
}

func (h hybridRunner) Kind() core.Kind {
	if h.overlap {
		return core.HybridOverlap
	}
	return core.HybridBulkSync
}

func (h hybridRunner) Run(p core.Problem, o core.Options) (*core.Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	o = o.Normalize()
	if err := checkMPIOptions(p, o); err != nil {
		return nil, err
	}
	d := grid.NewDecomp(p.N, o.Tasks)
	// Every rank must be able to carve a GPU block out of its subdomain.
	for r := 0; r < o.Tasks; r++ {
		if _, err := grid.NewBoxSplit(d.Sub(r).Size, o.BoxThickness); err != nil {
			return nil, fmt.Errorf("impl: rank %d: %w", r, err)
		}
	}
	w := mpi.NewWorld(o.Tasks)

	kind := h.Kind()
	pool := devicePool(o, o.Tasks)
	traces := poolTraces(pool, o)
	var (
		mu      sync.Mutex
		final   *grid.Field
		elapsed time.Duration
		simSec  float64
		msgs    float64
		values  float64
	)
	runErr := safeWorldRun(w, func(c *mpi.Comm) {
		sub := d.Sub(c.Rank())
		local := sub.Size
		box, err := grid.NewBoxSplit(local, o.BoxThickness)
		if err != nil {
			panic(err)
		}
		inner := box.Inner()

		dev := deviceFor(pool, o, c.Rank())
		if err := checkBlock(dev, inner.Size, o.BlockX, o.BlockY); err != nil {
			panic(err)
		}
		team := par.NewTeam(o.Threads)
		defer team.Close()
		team.SetRecorder(o.Rec, c.Rank())

		cpuCur := grid.NewField(local, 1)
		fillLocal(cpuCur, p, sub)
		cpuNxt := grid.NewField(local, 1)
		op := opFor(p, cpuCur)
		ex := newExchanger(c, d, cpuCur)
		ex.setObs(o.Rec)
		rank := c.Rank()
		span := func(step int, ph obs.Phase, label string) obs.Active {
			return o.Rec.Begin(rank, step, ph, label)
		}

		// Device state over the inner block.
		blockInit := grid.NewField(inner.Size, 1)
		blockInit.Fill(func(i, j, k int) float64 {
			return cpuCur.At(inner.Lo.X+i, inner.Lo.Y+j, inner.Lo.Z+k)
		})
		var host gpusim.HostClock
		st, h0 := newDevState(dev, 0, p, inner.Size, 1, blockInit)
		host.Set(h0)
		defer st.free()

		// Geometry, all reusable across steps.
		ringGPU := haloSlabs(inner.Size, 1)            // GPU halo shell, device coords
		ringCPU := offsetSubs(ringGPU, inner.Lo)       // same region, CPU coords
		outerGPU := stencil.BoundarySlabs(inner.Size)  // block outer layer, device coords
		outerCPU := offsetSubs(outerGPU, inner.Lo)     // same region, CPU coords
		walls := box.Walls()                           // CPU shell, thickness T
		domainBoundary := stencil.BoundarySlabs(local) // outermost CPU layer
		innerWalls := make([][2]grid.Subdomain, 3)     // per-dim wall parts away from MPI halos
		for dim := 0; dim < 3; dim++ {
			wpair := box.WallsByDim(dim)
			for s, wsub := range wpair {
				innerWalls[dim][s] = grid.Intersect(wsub, stencil.Interior(local))
			}
		}
		blockInterior := stencil.Interior(inner.Size)

		ringBuf := dev.Alloc(subsVolume(ringGPU))
		outBuf := dev.Alloc(subsVolume(outerGPU))
		defer dev.Free(ringBuf)
		defer dev.Free(outBuf)
		hostRing := make([]float64, ringBuf.Len())
		hostOut := make([]float64, outBuf.Len())

		s1 := dev.NewStream("interior")
		s2 := s1
		if h.overlap {
			s2 = dev.NewStream("boundary")
		}

		computeSub := func(subd grid.Subdomain, dst *grid.Field) {
			if subd.Empty() {
				return
			}
			team.ParallelFor(stencil.Rows(subd), par.Static, 0, func(lo, hi int) {
				op.ApplyRows(cpuCur, dst, subd, lo, hi)
			})
		}
		copySub := func(subd grid.Subdomain) {
			if subd.Empty() {
				return
			}
			team.ParallelFor(stencil.Rows(subd), par.Static, 0, func(lo, hi int) {
				copyRows(cpuNxt, cpuCur, subd, lo, hi)
			})
		}

		c.Barrier()
		simStart := host.Now()
		t0 := time.Now()
		for step := 0; step < p.Steps; step++ {
			checkCancelRank(o)
			ex.setStep(step)
			if !h.overlap {
				// §IV-H: all exchanges up front, synchronously.
				// Inner boundary: GPU block outer layer → CPU field.
				sp := span(step, obs.PhaseLaunch, "pack outer")
				host.Set(launchPackKernel(st, s1, host.Now(), "pack outer", outerGPU, outBuf, o.BlockX, o.BlockY))
				host.Set(s1.Synchronize(host.Now()))
				host.Set(dev.Memcpy(host.Now(), gpusim.DeviceToHost, outBuf, hostOut))
				sp.End()
				sp = span(step, obs.PhaseHaloUnpack, "inner")
				unpackSubs(cpuCur, outerCPU, hostOut)
				sp.End()
				// Inner halo: CPU ring → GPU halo shell.
				sp = span(step, obs.PhaseHaloPack, "ring")
				packSubs(cpuCur, ringCPU, hostRing)
				sp.End()
				host.Set(dev.Memcpy(host.Now(), gpusim.HostToDevice, ringBuf, hostRing))
				host.Set(launchHaloUnpack(st, s1, host.Now(), "ring unpack", ringGPU, ringBuf, o.BlockX, o.BlockY))
				// Outer halo: MPI with the neighbor tasks.
				ex.exchangeAll()
				// GPU kernels for the block; CPU computes the shell
				// meanwhile (the kernels are asynchronous).
				host.Set(launchWallCompute(st, s1, host.Now(), "block faces", outerGPU, nil, o.BlockX, o.BlockY))
				host.Set(launchInteriorStep(st, s1, host.Now(), blockInterior, o.BlockX, o.BlockY))
				sp = span(step, obs.PhaseInterior, "shell")
				for _, wsub := range walls {
					computeSub(wsub, cpuNxt)
				}
				sp.End()
				host.Set(dev.Synchronize(host.Now(), s1))
			} else {
				// §IV-I: maximum overlap.
				// 1. GPU interior kernel, stream 1.
				sp := span(step, obs.PhaseLaunch, "interior")
				host.Set(launchInteriorStep(st, s1, host.Now(), blockInterior, o.BlockX, o.BlockY))
				sp.End()
				// 2. Asynchronous inner-halo traffic and boundary kernels,
				// stream 2. The download is staged and landed after the
				// CPU has finished reading the current ring.
				sp = span(step, obs.PhaseHaloPack, "ring")
				packSubs(cpuCur, ringCPU, hostRing)
				sp.End()
				host.Set(dev.MemcpyAsync(host.Now(), s2, gpusim.HostToDevice, ringBuf, hostRing))
				host.Set(launchHaloUnpack(st, s2, host.Now(), "ring unpack", ringGPU, ringBuf, o.BlockX, o.BlockY))
				host.Set(launchWallCompute(st, s2, host.Now(), "block faces", outerGPU, outBuf, o.BlockX, o.BlockY))
				host.Set(dev.MemcpyAsync(host.Now(), s2, gpusim.DeviceToHost, outBuf, hostOut))
				// 3. MPI in each dimension overlapped with the CPU interior
				// wall points of that dimension.
				for dim := 0; dim < 3; dim++ {
					ph := ex.start(dim)
					sp = span(step, obs.PhaseInterior, "walls."+dimNames[dim])
					for _, wsub := range innerWalls[dim] {
						computeSub(wsub, cpuNxt)
					}
					sp.End()
					ex.finish(ph)
				}
				// 4. Outer boundary points, then stream synchronization.
				sp = span(step, obs.PhaseBoundary, "outer")
				for _, bsub := range domainBoundary {
					computeSub(bsub, cpuNxt)
				}
				sp.End()
				host.Set(dev.Synchronize(host.Now(), s1, s2))
				// Land the new block outer layer for the next step's shell
				// computation.
				sp = span(step, obs.PhaseHaloUnpack, "inner")
				unpackSubs(cpuNxt, outerCPU, hostOut)
				sp.End()
			}

			// Commit the step: flip the GPU buffers; copy the CPU-owned
			// regions of the next state into the current state.
			st.flip()
			sp := span(step, obs.PhaseCopy, "")
			for _, wsub := range walls {
				copySub(wsub)
			}
			if h.overlap {
				for _, osub := range outerCPU {
					copySub(osub)
				}
			}
			sp.End()
		}
		c.Barrier()
		dt := time.Since(t0)
		simDt := (host.Now() - simStart).Seconds()

		// Assemble the rank's full local field: CPU shell + GPU block.
		blockFinal := grid.NewField(inner.Size, 1)
		host.Set(st.download(host.Now(), blockFinal))
		for k := 0; k < inner.Size.Z; k++ {
			for j := 0; j < inner.Size.Y; j++ {
				for i := 0; i < inner.Size.X; i++ {
					cpuCur.Set(inner.Lo.X+i, inner.Lo.Y+j, inner.Lo.Z+k, blockFinal.At(i, j, k))
				}
			}
		}
		g := gather(c, d, cpuCur)
		stats := c.Stats()
		mu.Lock()
		msgs += float64(stats.SentMessages)
		values += float64(stats.SentValues)
		if simDt > simSec {
			simSec = simDt
		}
		if c.Rank() == 0 {
			final = g
			elapsed = dt
		}
		mu.Unlock()
	})

	if runErr != nil {
		return nil, cancelOr(o, runErr)
	}
	var kernels, pciByte float64
	for _, dev := range pool {
		kernels += float64(dev.Kernels)
		pciByte += float64(dev.BytesH2D + dev.BytesD2H)
	}
	res := &core.Result{Kind: kind, Final: final, Stats: map[string]float64{
		"tasks":        float64(o.Tasks),
		"threads":      float64(o.Threads),
		"thickness":    float64(o.BoxThickness),
		"blockx":       float64(o.BlockX),
		"blocky":       float64(o.BlockY),
		"mpi.messages": msgs,
		"mpi.bytes":    values * 8,
		"gpu.kernels":  kernels,
		"pcie.bytes":   pciByte,
		"sim.seconds":  simSec,
	}}
	for k, v := range mergedOverlapStats(traces) {
		res.Stats[k] = v
	}
	if simSec > 0 {
		res.Stats["sim.gf"] = p.Flops() * float64(p.Steps) / simSec / 1e9
	}
	finishResult(res, p, o, elapsed, globalMass(p))
	return res, nil
}
