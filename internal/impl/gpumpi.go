package impl

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// gpuRankCtx is the per-rank state of the GPU MPI implementations
// (§IV-F, §IV-G): the task's whole subdomain lives on the device, and the
// CPU keeps a host-side shadow field whose shell holds the boundary data
// in flight between GPU and network.
type gpuRankCtx struct {
	p   core.Problem
	o   core.Options
	c   *mpi.Comm
	d   grid.Decomp
	sub grid.Subdomain

	dev    *gpusim.Device
	st     *devState
	shadow *grid.Field
	ex     *exchanger
	host   *gpusim.HostClock
}

// span opens a wall-clock span attributed to this rank (no-op when the run
// carries no recorder).
func (rc gpuRankCtx) span(step int, ph obs.Phase, label string) obs.Active {
	return rc.o.Rec.Begin(rc.c.Rank(), step, ph, label)
}

// runMPIGPU is the shared scaffold of §IV-F and §IV-G: world setup,
// device state per rank, barrier-bracketed timing, gathering, and stats.
func runMPIGPU(kind core.Kind, p core.Problem, o core.Options, steps func(gpuRankCtx)) (*core.Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	o = o.Normalize()
	if err := checkMPIOptions(p, o); err != nil {
		return nil, err
	}
	d := grid.NewDecomp(p.N, o.Tasks)
	w := mpi.NewWorld(o.Tasks)

	var (
		mu      sync.Mutex
		final   *grid.Field
		elapsed time.Duration
		simSec  float64
		msgs    float64
		values  float64
	)
	pool := devicePool(o, o.Tasks)
	traces := poolTraces(pool, o)
	runErr := safeWorldRun(w, func(c *mpi.Comm) {
		sub := d.Sub(c.Rank())
		dev := deviceFor(pool, o, c.Rank())
		if err := checkBlock(dev, sub.Size, o.BlockX, o.BlockY); err != nil {
			panic(err)
		}

		local := grid.NewField(sub.Size, 1)
		fillLocal(local, p, sub)
		shadow := local.Clone()

		var host gpusim.HostClock
		st, h := newDevState(dev, 0, p, sub.Size, 1, local)
		host.Set(h)
		defer st.free()

		rc := gpuRankCtx{
			p: p, o: o, c: c, d: d, sub: sub,
			dev: dev, st: st, shadow: shadow,
			ex:   newExchanger(c, d, shadow),
			host: &host,
		}
		rc.ex.setObs(o.Rec)

		c.Barrier()
		simStart := host.Now()
		t0 := time.Now()
		steps(rc)
		c.Barrier()
		dt := time.Since(t0)
		simDt := (host.Now() - simStart).Seconds()

		host.Set(st.download(host.Now(), local))
		g := gather(c, d, local)
		stats := c.Stats()
		mu.Lock()
		msgs += float64(stats.SentMessages)
		values += float64(stats.SentValues)
		if simDt > simSec {
			simSec = simDt // slowest rank bounds the simulated step time
		}
		if c.Rank() == 0 {
			final = g
			elapsed = dt
		}
		mu.Unlock()
	})

	if runErr != nil {
		return nil, cancelOr(o, runErr)
	}
	var kernels, bytesPCI float64
	for _, dev := range pool {
		kernels += float64(dev.Kernels)
		bytesPCI += float64(dev.BytesH2D + dev.BytesD2H)
	}
	res := &core.Result{Kind: kind, Final: final, Stats: map[string]float64{
		"tasks":        float64(o.Tasks),
		"blockx":       float64(o.BlockX),
		"blocky":       float64(o.BlockY),
		"mpi.messages": msgs,
		"mpi.bytes":    values * 8,
		"gpu.kernels":  kernels,
		"pcie.bytes":   bytesPCI,
		"sim.seconds":  simSec,
	}}
	for k, v := range mergedOverlapStats(traces) {
		res.Stats[k] = v
	}
	if simSec > 0 {
		res.Stats["sim.gf"] = p.Flops() * float64(p.Steps) / simSec / 1e9
	}
	finishResult(res, p, o, elapsed, globalMass(p))
	return res, nil
}
