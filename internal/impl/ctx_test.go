package impl

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCancelBeforeRun checks that an already-cancelled context stops every
// implementation at the first timestep with the context's error.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, k := range append(core.Kinds(), core.WideHaloExt) {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			r, err := core.New(k)
			if err != nil {
				t.Fatal(err)
			}
			o := core.Options{Tasks: 2, Threads: 1, Ctx: ctx}
			if !k.UsesMPI() {
				o.Tasks = 1
			}
			_, err = r.Run(core.DefaultProblem(12, 50), o)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
	}
}

// TestCancelMidRun checks that cancellation arriving while a distributed
// simulation is stepping aborts it between timesteps instead of running it
// to completion.
func TestCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		r, err := core.New(core.BulkSync)
		if err != nil {
			done <- err
			return
		}
		// Enough steps that the run cannot finish before the cancel lands.
		_, err = r.Run(core.DefaultProblem(48, 1_000_000), core.Options{Tasks: 2, Ctx: ctx})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

// TestDeadlineExceeded checks that a context deadline surfaces as
// context.DeadlineExceeded through the public error chain.
func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r, err := core.New(core.SingleTask)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(core.DefaultProblem(48, 1_000_000), core.Options{Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
