package impl

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
)

func obsProblem() core.Problem {
	return core.Problem{N: grid.Uniform(24), C: grid.Velocity{X: 1, Y: 1, Z: 1}, Steps: 4}
}

func runWithRecorder(t *testing.T, kind core.Kind, o core.Options) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder()
	o.Rec = rec
	r, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(obsProblem(), o); err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return rec
}

// TestOverlapReportDistinguishesSchedules is the issue's acceptance
// criterion: the hybrid overlap implementation must show strictly positive
// MPI↔compute and PCIe↔kernel overlap, while the bulk-synchronous
// schedules report ≈0 for the same pairs.
func TestOverlapReportDistinguishesSchedules(t *testing.T) {
	const eps = 1e-9

	hybrid := runWithRecorder(t, core.HybridOverlap, core.Options{
		Tasks: 2, Threads: 2, BoxThickness: 2,
	}).Report()
	if f := hybrid.Pair(obs.PairMPICompute).Fraction; f <= 0 {
		t.Fatalf("HybridOverlap mpi/compute fraction = %v, want > 0", f)
	}
	if f := hybrid.Pair(obs.PairPCIeKernel).Fraction; f <= 0 {
		t.Fatalf("HybridOverlap pcie/kernel fraction = %v, want > 0", f)
	}
	if len(hybrid.Ranks) != 2 {
		t.Fatalf("expected spans from both ranks, got %d rank reports", len(hybrid.Ranks))
	}

	bulk := runWithRecorder(t, core.BulkSync, core.Options{Tasks: 2, Threads: 2}).Report()
	if p := bulk.Pair(obs.PairMPICompute); p.CommSec <= 0 || p.OverlapSec > eps {
		t.Fatalf("BulkSync mpi/compute should be ~0 of a positive comm window: %+v", p)
	}
	if p := bulk.Pair(obs.PairPCIeKernel); p.CommSec != 0 {
		t.Fatalf("BulkSync has no PCIe traffic, got %+v", p)
	}

	gpuBulk := runWithRecorder(t, core.GPUBulkSync, core.Options{Tasks: 2}).Report()
	if p := gpuBulk.Pair(obs.PairPCIeKernel); p.CommSec <= 0 || p.OverlapSec > eps {
		t.Fatalf("GPUBulkSync pcie/kernel should be ~0 of a positive copy time: %+v", p)
	}

	// The non-blocking and threaded CPU overlap schedules hide a positive
	// share of their exchange windows.
	for _, kind := range []core.Kind{core.NonblockingOverlap, core.ThreadedOverlap} {
		rep := runWithRecorder(t, kind, core.Options{Tasks: 2, Threads: 2}).Report()
		if f := rep.Pair(obs.PairMPICompute).Fraction; f <= 0 {
			t.Fatalf("%v mpi/compute fraction = %v, want > 0", kind, f)
		}
	}
}

// TestHybridTraceChromeExport checks the second half of the acceptance
// criterion: a traced HybridOverlap run exports Chrome trace-event JSON
// that unmarshals cleanly and covers both ranks and both time bases.
func TestHybridTraceChromeExport(t *testing.T) {
	rec := runWithRecorder(t, core.HybridOverlap, core.Options{
		Tasks: 2, Threads: 2, BoxThickness: 2,
	})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Cat string  `json:"cat"`
			PID int     `json:"pid"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not unmarshal: %v", err)
	}
	ranks := map[int]bool{}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		ranks[ev.PID] = true
		cats[ev.Cat] = true
	}
	if !ranks[0] || !ranks[1] {
		t.Fatalf("trace missing a rank's events: %v", ranks)
	}
	if !cats["wall"] || !cats["sim"] {
		t.Fatalf("trace missing a time base: %v", cats)
	}
}

// TestRunWithoutRecorderRecordsNothing guards the disabled path at the
// runner level: a run with no recorder must not fabricate spans anywhere.
func TestRunWithoutRecorderRecordsNothing(t *testing.T) {
	r, err := core.New(core.BulkSync)
	if err != nil {
		t.Fatal(err)
	}
	var rec *obs.Recorder
	o := core.Options{Tasks: 2, Rec: rec}
	if _, err := r.Run(obsProblem(), o); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 {
		t.Fatalf("nil recorder accumulated %d spans", rec.Len())
	}
}

// TestMergedOverlapStats covers the all-ranks TraceOverlap satellite: a
// two-task GPU run must merge both devices' traces into the stats.
func TestMergedOverlapStats(t *testing.T) {
	r, err := core.New(core.GPUStreams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(obsProblem(), core.Options{Tasks: 2, TraceOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats["trace.devices"]; got != 2 {
		t.Fatalf("trace.devices = %v, want 2", got)
	}
	if res.Stats["trace.spans"] <= 0 {
		t.Fatal("no merged spans recorded")
	}
	if res.Stats["trace.overlap.sec"] <= 0 {
		t.Fatal("GPUStreams across 2 tasks should still overlap")
	}
	minOv := res.Stats["trace.overlap.min.sec"]
	maxOv := res.Stats["trace.overlap.max.sec"]
	if minOv <= 0 || maxOv < minOv {
		t.Fatalf("per-device min/max overlap inconsistent: min=%v max=%v", minOv, maxOv)
	}
	if res.Stats["trace.overlap.sec"] < maxOv {
		t.Fatal("summed overlap smaller than one device's overlap")
	}
}
