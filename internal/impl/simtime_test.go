package impl

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gpusim"
)

// TestFunctionalSimTimeMatchesModel pins the DESIGN.md §4 claim: the
// functional GPU runs charge virtual time with the same device model the
// analytic perf layer uses, so the simulated step time of a functional
// GPU-resident run must equal the model's kernel time plus launch
// overhead.
func TestFunctionalSimTimeMatchesModel(t *testing.T) {
	for _, g := range []core.GPUModel{core.GPUC1060, core.GPUC2050} {
		props := gpusim.TeslaC2050()
		if g == core.GPUC1060 {
			props = gpusim.TeslaC1060()
		}
		const n, steps = 32, 4
		p := core.DefaultProblem(n, steps)
		res := run(t, core.GPUResident, p, core.Options{GPU: g, BlockX: 16, BlockY: 8})

		kt, err := gpusim.KernelTime(props, gpusim.StencilLaunch(n, n, n, 16, 8))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(steps) * (kt + props.KernelLaunchSec)
		got := res.Stats["sim.seconds"]
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Fatalf("%v: functional sim time %.3g, model %.3g (%.1f%% apart)",
				g, got, want, rel*100)
		}
	}
}

// TestFunctionalSimGFScalesWithDevice checks that the simulated
// throughput ranks the devices the way the hardware does.
func TestFunctionalSimGFScalesWithDevice(t *testing.T) {
	p := core.DefaultProblem(32, 2)
	lens := run(t, core.GPUResident, p, core.Options{GPU: core.GPUC1060, BlockX: 16, BlockY: 8})
	yona := run(t, core.GPUResident, p, core.Options{GPU: core.GPUC2050, BlockX: 16, BlockY: 8})
	if yona.Stats["sim.gf"] <= lens.Stats["sim.gf"] {
		t.Fatalf("C2050 (%.1f sim GF) should beat C1060 (%.1f sim GF)",
			yona.Stats["sim.gf"], lens.Stats["sim.gf"])
	}
}

// TestHybridSimFasterThanGPUMPIAtScale runs the functional implementations
// on the same problem and checks the simulated times reproduce the paper's
// ordering F ≥ H ≥ I (bulk slowest, full overlap fastest) when PCIe
// traffic matters.
func TestHybridSimFasterThanGPUMPIAtScale(t *testing.T) {
	p := core.DefaultProblem(40, 3)
	o := core.Options{Tasks: 2, Threads: 2, BlockX: 16, BlockY: 8, BoxThickness: 1}
	f := run(t, core.GPUBulkSync, p, o)
	i := run(t, core.HybridOverlap, p, o)
	if i.Stats["sim.seconds"] >= f.Stats["sim.seconds"] {
		t.Fatalf("hybrid overlap sim %.3g not below GPU bulk %.3g",
			i.Stats["sim.seconds"], f.Stats["sim.seconds"])
	}
}
