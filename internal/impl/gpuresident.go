package impl

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/obs"
)

// newDeviceFor builds the simulated device selected by the options.
func newDeviceFor(o core.Options) *gpusim.Device {
	switch o.GPU {
	case core.GPUC1060:
		return gpusim.NewDevice(gpusim.TeslaC1060(), gpusim.PCIeGen1())
	default:
		return gpusim.NewDevice(gpusim.TeslaC2050(), gpusim.PCIeGen2())
	}
}

// devicePool builds the devices a world shares: with o.TasksPerGPU tasks
// per device, rank r uses pool[r/o.TasksPerGPU]. The default (0 or 1) is
// one device per task.
func devicePool(o core.Options, tasks int) []*gpusim.Device {
	per := o.TasksPerGPU
	if per < 1 {
		per = 1
	}
	groups := (tasks + per - 1) / per
	pool := make([]*gpusim.Device, groups)
	for i := range pool {
		pool[i] = newDeviceFor(o)
	}
	return pool
}

// deviceFor returns rank's device from the pool.
func deviceFor(pool []*gpusim.Device, o core.Options, rank int) *gpusim.Device {
	per := o.TasksPerGPU
	if per < 1 {
		per = 1
	}
	return pool[rank/per]
}

// gpuResident is §IV-E: the problem lives in GPU global memory for the
// whole run — the best-case scenario for GPU performance. The CPU issues
// one kernel call per time step, flipping the two device state buffers,
// and the initial upload and final download are excluded from the timing,
// exactly as in the paper.
type gpuResident struct{}

func (gpuResident) Kind() core.Kind { return core.GPUResident }

func (gpuResident) Run(p core.Problem, o core.Options) (*core.Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	o = o.Normalize()
	if o.Tasks != 1 {
		return nil, fmt.Errorf("impl: GPU-resident implementation is single task, got %d", o.Tasks)
	}
	dev := newDeviceFor(o)
	if err := checkBlock(dev, p.N, o.BlockX, o.BlockY); err != nil {
		return nil, err
	}
	traces := poolTraces([]*gpusim.Device{dev}, o)

	initial := grid.NewField(p.N, 1)
	initial.Fill(func(i, j, k int) float64 { return p.InitialValue(i, j, k) })
	mass0 := initial.InteriorSum()

	var host gpusim.HostClock
	st, h := newDevState(dev, 0, p, p.N, 0, initial)
	host.Set(h)
	defer st.free()
	stream := dev.NewStream("compute")

	// "The CPU and GPU synchronize immediately before timer calls."
	host.Set(dev.Synchronize(host.Now(), stream))
	simStart := host.Now()
	wallStart := time.Now()
	for s := 0; s < p.Steps; s++ {
		if err := o.CheckCancel(); err != nil {
			return nil, fmt.Errorf("impl: run cancelled at step %d: %w", s, err)
		}
		sp := o.Rec.Begin(0, s, obs.PhaseLaunch, "resident")
		host.Set(launchResidentStep(st, stream, host.Now(), o.BlockX, o.BlockY))
		sp.End()
		st.flip()
	}
	host.Set(dev.Synchronize(host.Now(), stream))
	elapsed := time.Since(wallStart)
	simElapsed := (host.Now() - simStart).Seconds()

	final := grid.NewField(p.N, 1)
	host.Set(st.download(host.Now(), final))

	res := &core.Result{Kind: core.GPUResident, Final: final, Stats: map[string]float64{
		"blockx":      float64(o.BlockX),
		"blocky":      float64(o.BlockY),
		"gpu.kernels": float64(dev.Kernels),
		"sim.seconds": simElapsed,
	}}
	for k, v := range mergedOverlapStats(traces) {
		res.Stats[k] = v
	}
	if simElapsed > 0 {
		res.Stats["sim.gf"] = p.Flops() * float64(p.Steps) / simElapsed / 1e9
	}
	finishResult(res, p, o, elapsed, mass0)
	return res, nil
}
