package impl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/stencil"
	"repro/internal/vtime"
)

// devState is a pair of device-resident state fields (current and next)
// over one domain, with the stencil coefficients in constant memory. The
// CPU flips cur and nxt between steps instead of copying, as the paper's
// GPU implementations do ("flipping the arguments between two GPU state
// variables to avoid the need for an extra copy operation").
type devState struct {
	dev  *gpusim.Device
	n    grid.Dims
	halo int

	curBuf, nxtBuf *gpusim.Buffer
	cur, nxt       *grid.Field // views over the device buffers
	op             *stencil.Op // built from constant memory
}

// newDevState allocates device memory for the domain, uploads the
// coefficients to constant memory, and uploads the initial state.
func newDevState(dev *gpusim.Device, host vtime.Time, p core.Problem, n grid.Dims, halo int, initial *grid.Field) (*devState, vtime.Time) {
	s := &devState{dev: dev, n: n, halo: halo}
	size := (n.X + 2*halo) * (n.Y + 2*halo) * (n.Z + 2*halo)
	s.curBuf = dev.Alloc(size)
	s.nxtBuf = dev.Alloc(size)
	s.cur = grid.NewFieldOn(n, halo, s.curBuf.Data())
	s.nxt = grid.NewFieldOn(n, halo, s.nxtBuf.Data())

	coeffs := stencil.TableI(p.C, p.Nu)
	flat := coeffs.Flat()
	host = dev.LoadConstant(host, flat[:])
	// The kernels read the coefficients back from constant memory.
	s.op = stencil.NewOp(stencil.FromFlat([27]float64(dev.Constant())), s.cur)

	host = dev.Memcpy(host, gpusim.HostToDevice, s.curBuf, initialUpload(initial, n, halo))
	return s, host
}

// initialUpload lays the initial field out in the device buffer's shape.
func initialUpload(f *grid.Field, n grid.Dims, halo int) []float64 {
	size := (n.X + 2*halo) * (n.Y + 2*halo) * (n.Z + 2*halo)
	staging := make([]float64, size)
	view := grid.NewFieldOn(n, halo, staging)
	view.CopyInteriorFrom(f)
	return staging
}

// flip exchanges the current and next state views and buffers.
func (s *devState) flip() {
	s.curBuf, s.nxtBuf = s.nxtBuf, s.curBuf
	s.cur, s.nxt = s.nxt, s.cur
}

// download copies the current state's interior back to a host field.
func (s *devState) download(host vtime.Time, dst *grid.Field) vtime.Time {
	staging := make([]float64, s.curBuf.Len())
	host = s.dev.Memcpy(host, gpusim.DeviceToHost, s.curBuf, staging)
	view := grid.NewFieldOn(s.n, s.halo, staging)
	dst.CopyInteriorFrom(view)
	return host
}

// free releases the device allocations.
func (s *devState) free() {
	s.dev.Free(s.curBuf)
	s.dev.Free(s.nxtBuf)
}

// residentLaunch is the launch geometry of the single-GPU periodic kernel.
func residentLaunch(n grid.Dims, bx, by int) gpusim.Launch {
	return gpusim.StencilLaunch(n.X, n.Y, n.Z, bx, by)
}

// subLaunch is the launch geometry for a kernel over a subdomain.
func subLaunch(sub grid.Subdomain, bx, by int) gpusim.Launch {
	s := sub.Size
	if bx > s.X {
		bx = s.X
	}
	if by > s.Y {
		by = s.Y
	}
	return gpusim.StencilLaunch(s.X, s.Y, s.Z, bx, by)
}

// launchResidentStep enqueues the paper's single-GPU kernel (§IV-E,
// following the algorithm of Micikevicius): two-dimensional thread blocks
// iterate over z; each iteration stages an xy slab (halo included) in
// shared memory; halo threads beyond the boundary of the global domain
// copy from the opposite boundary to implement periodicity; interior
// threads compute and store to global memory.
func launchResidentStep(s *devState, stream *gpusim.Stream, host vtime.Time, bx, by int) vtime.Time {
	if s.halo != 0 {
		panic("impl: resident kernel expects a halo-free device domain")
	}
	l := residentLaunch(s.n, bx, by)
	cur, nxt, n, op := s.cur, s.nxt, s.n, s.op
	return s.dev.Launch(host, stream, "resident step", l, func() {
		runTiledKernel(op, cur, nxt, stencil.Whole(n), bx, by, true)
	})
}

// launchInteriorStep enqueues the interior kernel used by the multi-GPU
// implementations: the same tiling without the periodicity logic,
// restricted to sub (whose stencil must not read beyond cur's storage).
func launchInteriorStep(s *devState, stream *gpusim.Stream, host vtime.Time, sub grid.Subdomain, bx, by int) vtime.Time {
	if sub.Empty() {
		return host
	}
	l := subLaunch(sub, bx, by)
	cur, nxt, op := s.cur, s.nxt, s.op
	return s.dev.Launch(host, stream, "interior", l, func() {
		runTiledKernel(op, cur, nxt, sub, bx, by, false)
	})
}

// runTiledKernel is the functional body shared by the resident and
// interior kernels: it walks the launch's thread blocks, stages each z
// slab of the block's tile (with a one-point halo ring, loaded by the halo
// threads) into a shared-memory tile, and computes Eq. 2 for the interior
// threads, rotating three tile slabs as z advances. With wrap=true the
// tile loads wrap around the global domain (periodic single-GPU kernel);
// otherwise out-of-range loads come from the field's halo storage.
func runTiledKernel(op *stencil.Op, cur, nxt *grid.Field, sub grid.Subdomain, bx, by int, wrap bool) {
	c := op.Coeffs()
	n := cur.N
	hi := sub.Hi()
	tw, th := bx+2, by+2 // tile extents with halo ring
	km := make([]float64, tw*th)
	kc := make([]float64, tw*th)
	kp := make([]float64, tw*th)

	wrapIdx := func(v, m int) int { return ((v % m) + m) % m }
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	h := cur.Halo
	load := func(tile []float64, bi0, bj0, k int) {
		// Every thread of the block, halo threads included, loads one tile
		// element. Tile entries belonging to inactive threads past the
		// domain edge are clamped into valid storage; their values are
		// never read by an active thread.
		for ty := 0; ty < th; ty++ {
			gy := bj0 + ty - 1
			for tx := 0; tx < tw; tx++ {
				gx := bi0 + tx - 1
				x, y, z := gx, gy, k
				if wrap {
					x, y, z = wrapIdx(x, n.X), wrapIdx(y, n.Y), wrapIdx(z, n.Z)
				} else {
					x = clamp(x, -h, n.X+h-1)
					y = clamp(y, -h, n.Y+h-1)
					z = clamp(z, -h, n.Z+h-1)
				}
				tile[ty*tw+tx] = cur.At(x, y, z)
			}
		}
	}

	for bj0 := sub.Lo.Y; bj0 < hi.Y; bj0 += by {
		for bi0 := sub.Lo.X; bi0 < hi.X; bi0 += bx {
			// Prime the rotating slabs for the first z iteration.
			load(km, bi0, bj0, sub.Lo.Z-1)
			load(kc, bi0, bj0, sub.Lo.Z)
			for k := sub.Lo.Z; k < hi.Z; k++ {
				load(kp, bi0, bj0, k+1)
				for ty := 1; ty < th-1; ty++ {
					gy := bj0 + ty - 1
					if gy >= hi.Y {
						continue // inactive thread past the domain edge
					}
					for tx := 1; tx < tw-1; tx++ {
						gx := bi0 + tx - 1
						if gx >= hi.X {
							continue
						}
						var sum float64
						for dj := -1; dj <= 1; dj++ {
							row := (ty+dj)*tw + tx
							sum += c.At(-1, dj, -1)*km[row-1] + c.At(0, dj, -1)*km[row] + c.At(+1, dj, -1)*km[row+1]
							sum += c.At(-1, dj, 0)*kc[row-1] + c.At(0, dj, 0)*kc[row] + c.At(+1, dj, 0)*kc[row+1]
							sum += c.At(-1, dj, +1)*kp[row-1] + c.At(0, dj, +1)*kp[row] + c.At(+1, dj, +1)*kp[row+1]
						}
						nxt.Set(gx, gy, k, sum)
					}
				}
				km, kc, kp = kc, kp, km
			}
		}
	}
}

// packSubs copies the listed subdomains of f (halo coordinates allowed)
// into buf in order and returns the value count.
func packSubs(f *grid.Field, subs []grid.Subdomain, buf []float64) int {
	n := 0
	for _, s := range subs {
		hi := s.Hi()
		for k := s.Lo.Z; k < hi.Z; k++ {
			for j := s.Lo.Y; j < hi.Y; j++ {
				row := f.Idx(s.Lo.X, j, k)
				w := s.Size.X
				copy(buf[n:n+w], f.Data()[row:row+w])
				n += w
			}
		}
	}
	return n
}

// unpackSubs is the inverse of packSubs.
func unpackSubs(f *grid.Field, subs []grid.Subdomain, buf []float64) int {
	n := 0
	for _, s := range subs {
		hi := s.Hi()
		for k := s.Lo.Z; k < hi.Z; k++ {
			for j := s.Lo.Y; j < hi.Y; j++ {
				row := f.Idx(s.Lo.X, j, k)
				w := s.Size.X
				copy(f.Data()[row:row+w], buf[n:n+w])
				n += w
			}
		}
	}
	return n
}

// subsVolume sums the point counts of the subdomains.
func subsVolume(subs []grid.Subdomain) int {
	v := 0
	for _, s := range subs {
		v += s.Volume()
	}
	return v
}

// haloSlabs returns the six slabs tiling the halo shell of an n-point
// domain with halo width h, in the dimension-serialized convention: the z
// slabs span the fully widened xy range (corners and edges included), the
// y slabs the x-widened range, the x slabs the interior range. After a
// standard three-phase exchange these slabs hold exactly the received halo
// data.
func haloSlabs(n grid.Dims, h int) []grid.Subdomain {
	return []grid.Subdomain{
		{Lo: grid.Dims{X: -h, Y: -h, Z: -h}, Size: grid.Dims{X: n.X + 2*h, Y: n.Y + 2*h, Z: h}},
		{Lo: grid.Dims{X: -h, Y: -h, Z: n.Z}, Size: grid.Dims{X: n.X + 2*h, Y: n.Y + 2*h, Z: h}},
		{Lo: grid.Dims{X: -h, Y: -h, Z: 0}, Size: grid.Dims{X: n.X + 2*h, Y: h, Z: n.Z}},
		{Lo: grid.Dims{X: -h, Y: n.Y, Z: 0}, Size: grid.Dims{X: n.X + 2*h, Y: h, Z: n.Z}},
		{Lo: grid.Dims{X: -h, Y: 0, Z: 0}, Size: grid.Dims{X: h, Y: n.Y, Z: n.Z}},
		{Lo: grid.Dims{X: n.X, Y: 0, Z: 0}, Size: grid.Dims{X: h, Y: n.Y, Z: n.Z}},
	}
}

// offsetSubs translates subdomains by delta.
func offsetSubs(subs []grid.Subdomain, delta grid.Dims) []grid.Subdomain {
	out := make([]grid.Subdomain, len(subs))
	for i, s := range subs {
		out[i] = grid.Subdomain{
			Lo:   grid.Dims{X: s.Lo.X + delta.X, Y: s.Lo.Y + delta.Y, Z: s.Lo.Z + delta.Z},
			Size: s.Size,
		}
	}
	return out
}

// launchHaloUnpack enqueues a memory-only kernel that scatters a staged
// halo buffer into the current state's halo shell (the halo-thread copies
// of the paper's boundary-face kernels). It must be enqueued before the
// wall-compute kernels of the same step: wall points at edges read halo
// values belonging to other faces' slabs.
func launchHaloUnpack(s *devState, stream *gpusim.Stream, host vtime.Time, name string,
	subs []grid.Subdomain, buf *gpusim.Buffer, bx, by int) vtime.Time {
	pts := subsVolume(subs)
	if pts == 0 {
		return host
	}
	l := copyLaunch(pts, bx, by)
	cur := s.cur
	return s.dev.Launch(host, stream, name, l, func() {
		unpackSubs(cur, subs, buf.Data())
	})
}

// launchWallCompute enqueues a boundary-face compute kernel (§IV-F): it
// computes the listed wall slabs into the next state and, if outBuf is not
// nil, packs the freshly computed values into the outgoing buffer for the
// CPU to download for the next exchange.
func launchWallCompute(s *devState, stream *gpusim.Stream, host vtime.Time, name string,
	subs []grid.Subdomain, outBuf *gpusim.Buffer, bx, by int) vtime.Time {
	pts := subsVolume(subs)
	if pts == 0 {
		return host
	}
	// Cost: treat the walls as one thin launch over their combined area.
	l := copyLaunch(pts, bx, by)
	l.FlopsPerPoint = stencil.FlopsPerPoint
	l.BytesPerPoint = 16
	cur, nxt, op := s.cur, s.nxt, s.op
	return s.dev.Launch(host, stream, name, l, func() {
		for _, sub := range subs {
			if !sub.Empty() {
				op.Apply(cur, nxt, sub)
			}
		}
		if outBuf != nil {
			packSubs(nxt, subs, outBuf.Data())
		}
	})
}

// launchPackKernel enqueues a memory-only kernel that gathers subdomains of
// the *current* state into a device buffer (used to stage outgoing data).
func launchPackKernel(s *devState, stream *gpusim.Stream, host vtime.Time, name string,
	subs []grid.Subdomain, buf *gpusim.Buffer, bx, by int) vtime.Time {
	pts := subsVolume(subs)
	if pts == 0 {
		return host
	}
	cur := s.cur
	return s.dev.Launch(host, stream, name, copyLaunch(pts, bx, by), func() {
		packSubs(cur, subs, buf.Data())
	})
}

// copyLaunch builds a cost-model launch for a memory-movement kernel over
// the given number of points.
func copyLaunch(points, bx, by int) gpusim.Launch {
	rows := (points + bx - 1) / bx
	if rows < 1 {
		rows = 1
	}
	gy := (rows + by - 1) / by
	return gpusim.Launch{
		GridX: 1, GridY: gy,
		BlockX: bx, BlockY: by,
		HaloX: 0, HaloY: 0,
		ZSlabs:        1,
		Points:        points,
		FlopsPerPoint: 0,
		BytesPerPoint: 16,
	}
}

// gpuBlocks sanity-checks a block size against a device.
func checkBlock(dev *gpusim.Device, n grid.Dims, bx, by int) error {
	l := gpusim.StencilLaunch(n.X, n.Y, n.Z, bx, by)
	if err := l.Validate(dev.Props); err != nil {
		return fmt.Errorf("impl: block %dx%d invalid: %w", bx, by, err)
	}
	return nil
}
