package impl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

// TestOverlapTraceDistinguishesImplementations verifies, from the recorded
// simulated timelines, that the overlap implementations actually overlap:
// the stream implementation (§IV-G) and the full-overlap hybrid (§IV-I)
// run PCIe traffic or boundary kernels concurrently with the interior
// kernel, while their bulk counterparts (§IV-F, §IV-H) serialize
// everything against it.
func TestOverlapTraceDistinguishesImplementations(t *testing.T) {
	p := core.DefaultProblem(32, 3)
	o := core.Options{Tasks: 1, Threads: 2, BlockX: 16, BlockY: 8, BoxThickness: 1, TraceOverlap: true}

	get := func(k core.Kind) map[string]float64 {
		t.Helper()
		res := run(t, k, p, o)
		return res.Stats
	}

	fStats := get(core.GPUBulkSync)
	gStats := get(core.GPUStreams)
	hStats := get(core.HybridBulkSync)
	iStats := get(core.HybridOverlap)

	if fStats["trace.spans"] == 0 || gStats["trace.spans"] == 0 {
		t.Fatal("traces not recorded")
	}
	// Bulk: everything serialized, so no overlap with the interior kernel.
	if ov := fStats["trace.overlap.sec"]; ov > 1e-9 {
		t.Fatalf("GPU bulk-sync shows %.3g s of overlap; it must serialize", ov)
	}
	// Streams: the PCIe chain must overlap the interior kernel.
	if ov := gStats["trace.overlap.sec"]; ov <= 0 {
		t.Fatal("GPU streams shows no overlap with the interior kernel")
	}
	// Full-overlap hybrid: same, and at least as much as its bulk variant.
	if ov := iStats["trace.overlap.sec"]; ov <= hStats["trace.overlap.sec"] {
		t.Fatalf("hybrid overlap (%.3g s) should out-overlap hybrid bulk (%.3g s)",
			ov, hStats["trace.overlap.sec"])
	}
}

func TestTraceOffByDefault(t *testing.T) {
	p := core.DefaultProblem(16, 1)
	res := run(t, core.GPUStreams, p, core.Options{Tasks: 1, BlockX: 8, BlockY: 4})
	if _, ok := res.Stats["trace.spans"]; ok {
		t.Fatal("trace recorded without TraceOverlap")
	}
}

func TestOverlapStatsHelper(t *testing.T) {
	tr := vtime.NewTrace()
	tr.Add("gpu.interior", "k", 0, 10)
	tr.Add("pcie.h2d", "up", 2, 6)
	tr.Add("gpu.boundary", "faces", 4, 12)
	stats := map[string]float64{}
	overlapStats(tr, stats)
	if stats["trace.overlap.sec"] != 4+6 {
		t.Fatalf("total overlap %v, want 10", stats["trace.overlap.sec"])
	}
	if stats["trace.overlap.pcie.h2d"] != 4 {
		t.Fatalf("h2d overlap %v, want 4", stats["trace.overlap.pcie.h2d"])
	}
	if stats["trace.busy.gpu.interior"] != 10 {
		t.Fatalf("busy %v, want 10", stats["trace.busy.gpu.interior"])
	}
}

func TestOverlapStatsNoInteriorLane(t *testing.T) {
	tr := vtime.NewTrace()
	tr.Add("pcie.h2d", "up", 0, 1)
	stats := map[string]float64{}
	overlapStats(tr, stats)
	if stats["trace.overlap.sec"] != 0 {
		t.Fatal("overlap without interior lane")
	}
}

func TestOverlapStatsNilTrace(t *testing.T) {
	stats := map[string]float64{}
	overlapStats(nil, stats)
	if len(stats) != 0 {
		t.Fatal("nil trace produced stats")
	}
}
