package impl

import (
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// exchanger performs the paper's dimension-serialized halo exchange
// (§IV-B): three phases, x then y then z, each exchanging one face pair
// with the two neighbors in that dimension. Later phases send ranges
// widened by the halos received in earlier phases, so corner and edge
// values propagate and every task effectively communicates with its 26
// logical neighbors through only 6 exchanges.
type exchanger struct {
	c    *mpi.Comm
	d    grid.Decomp
	rank int
	f    *grid.Field

	rec  *obs.Recorder
	step int

	send [3][2][]float64
	recv [3][2][]float64
}

var dimNames = [3]string{"x", "y", "z"}

// setObs attaches the span recorder to the exchanger and its communicator.
func (e *exchanger) setObs(r *obs.Recorder) {
	e.rec = r
	e.c.SetRecorder(r)
}

// setStep tags this step's spans — the exchanger's pack/unpack/exchange
// windows and the communicator's mpi.* spans — with the timestep.
func (e *exchanger) setStep(s int) {
	e.step = s
	e.c.SetStep(s)
}

// Tag layout: the message carrying a task's low face in dimension d is
// tagLow(d); its high face is tagHigh(d). Distinct tags keep the two
// directions apart even when both neighbors are the same rank (task grids
// of extent 1 or 2).
func tagLow(dim int) int  { return dim * 2 }
func tagHigh(dim int) int { return dim*2 + 1 }

func newExchanger(c *mpi.Comm, d grid.Decomp, f *grid.Field) *exchanger {
	e := &exchanger{c: c, d: d, rank: c.Rank(), f: f}
	for dim := 0; dim < 3; dim++ {
		n := f.FaceCount(dim) * f.Halo
		for s := 0; s < 2; s++ {
			e.send[dim][s] = make([]float64, n)
			e.recv[dim][s] = make([]float64, n)
		}
	}
	return e
}

// phase is one in-flight dimension exchange.
type phase struct {
	dim  int
	t0   float64 // recorder clock at start, for the mpi.exchange span
	reqs [2]*mpi.Request
}

// start packs and posts the exchange for one dimension: nonblocking
// receives first (as the paper's implementations do), then eager sends.
func (e *exchanger) start(dim int) phase {
	h := e.f.Halo
	nbrLo := e.d.Neighbor(e.rank, dim, -1)
	nbrHi := e.d.Neighbor(e.rank, dim, +1)

	// My low halo receives the high face of my -dim neighbor; my high halo
	// receives the low face of my +dim neighbor.
	ph := phase{dim: dim, t0: e.rec.Clock()}
	ph.reqs[0] = e.c.IRecv(nbrLo, tagHigh(dim), e.recv[dim][0])
	ph.reqs[1] = e.c.IRecv(nbrHi, tagLow(dim), e.recv[dim][1])

	a := e.rec.Begin(e.rank, e.step, obs.PhaseHaloPack, dimNames[dim])
	e.f.PackFace(dim, -1, h, e.send[dim][0])
	e.f.PackFace(dim, +1, h, e.send[dim][1])
	a.End()
	e.c.ISend(nbrLo, tagLow(dim), e.send[dim][0])
	e.c.ISend(nbrHi, tagHigh(dim), e.send[dim][1])
	return ph
}

// finish completes the receives of a phase and unpacks them into the halo.
// The mpi.exchange span it records covers the whole in-flight window since
// start — any compute span landing inside it is communication the schedule
// actually hid.
func (e *exchanger) finish(ph phase) {
	ph.reqs[0].Wait()
	ph.reqs[1].Wait()
	h := e.f.Halo
	a := e.rec.Begin(e.rank, e.step, obs.PhaseHaloUnpack, dimNames[ph.dim])
	e.f.UnpackFace(ph.dim, -1, h, e.recv[ph.dim][0])
	e.f.UnpackFace(ph.dim, +1, h, e.recv[ph.dim][1])
	a.End()
	e.rec.Add(e.rank, e.step, obs.PhaseMPIExchange, dimNames[ph.dim], ph.t0, e.rec.Clock())
}

// exchangeAll runs the full bulk-synchronous exchange: all three phases
// back to back.
func (e *exchanger) exchangeAll() {
	for dim := 0; dim < 3; dim++ {
		e.finish(e.start(dim))
	}
}
