// Package stats holds the small numeric and rendering helpers shared by
// the experiment harness: series containers, argmax, aligned text tables,
// and a log-scale ASCII chart used to draw the figures in a terminal.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Note  []string // optional per-point annotation (e.g. best config)
}

// Add appends a point.
func (s *Series) Add(x, y float64, note string) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Note = append(s.Note, note)
}

// Max returns the maximum Y and its index (-1 if empty).
func (s *Series) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, v := range s.Y {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// ArgmaxX returns the X at the maximum Y.
func (s *Series) ArgmaxX() float64 {
	_, i := s.Max()
	if i < 0 {
		return math.NaN()
	}
	return s.X[i]
}

// Table is an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
}

// SeriesTable renders several series sharing an X axis as a table: one row
// per distinct X, one column per series.
func SeriesTable(xName string, series []Series) Table {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	t := Table{Header: []string{xName}}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	for _, x := range xs {
		row := []string{FormatNum(x)}
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = FormatNum(s.Y[i])
					if s.Note[i] != "" {
						cell += " (" + s.Note[i] + ")"
					}
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// WriteCSV writes series sharing an X axis as CSV: a header row, then one
// row per distinct X with one column per series (empty where a series has
// no point).
func WriteCSV(w io.Writer, xName string, series []Series) error {
	t := SeriesTable(xName, series)
	write := func(cells []string) error {
		for i, c := range cells {
			// Strip the note annotations for machine consumption.
			if idx := strings.Index(c, " ("); idx >= 0 {
				c = c[:idx]
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// FormatNum prints a float compactly: integers without decimals, small
// values with three significant digits.
func FormatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// Heatmap renders a 2-D scalar field as ASCII shades, darkest at the
// maximum — enough to watch a wave move through a slice of the domain.
func Heatmap(w io.Writer, title string, nx, ny int, at func(i, j int) float64) {
	ramp := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := at(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	fmt.Fprintf(w, "%s  (min %s, max %s)\n", title, FormatNum(lo), FormatNum(hi))
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for j := ny - 1; j >= 0; j-- {
		row := make([]byte, nx)
		for i := 0; i < nx; i++ {
			f := (at(i, j) - lo) / span
			idx := int(f * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			row[i] = ramp[idx]
		}
		fmt.Fprintf(w, "  |%s|\n", string(row))
	}
}

// GanttSpan is one bar of a Gantt chart.
type GanttSpan struct {
	Lane  string
	Label string
	Start float64
	End   float64
}

// Gantt renders spans as an ASCII timeline, one row per lane, scaled to
// width columns — the visualization of what overlapped with what.
func Gantt(w io.Writer, title string, spans []GanttSpan, width int) {
	if width < 20 {
		width = 72
	}
	if len(spans) == 0 {
		fmt.Fprintf(w, "%s: (no spans)\n", title)
		return
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	laneOrder := []string{}
	seen := map[string]bool{}
	for _, s := range spans {
		if s.Start < minT {
			minT = s.Start
		}
		if s.End > maxT {
			maxT = s.End
		}
		if !seen[s.Lane] {
			seen[s.Lane] = true
			laneOrder = append(laneOrder, s.Lane)
		}
	}
	sort.Strings(laneOrder)
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	col := func(t float64) int {
		c := int((t - minT) / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	laneWidth := 0
	for _, l := range laneOrder {
		if len(l) > laneWidth {
			laneWidth = len(l)
		}
	}
	fmt.Fprintf(w, "%s  (%s .. %s s)\n", title, FormatNum(minT), FormatNum(maxT))
	for _, lane := range laneOrder {
		row := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.Lane != lane {
				continue
			}
			lo, hi := col(s.Start), col(s.End)
			for c := lo; c <= hi; c++ {
				row[c] = '#'
			}
		}
		fmt.Fprintf(w, "  %-*s |%s|\n", laneWidth, lane, string(row))
	}
}

// Chart draws a log-x ASCII chart of the series (Y linear), height rows by
// width columns, with one symbol per series.
func Chart(w io.Writer, title string, series []Series, width, height int) {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if math.IsInf(minX, 1) || maxY <= 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	lx := func(x float64) int {
		if maxX == minX {
			return 0
		}
		f := (math.Log(x) - math.Log(minX)) / (math.Log(maxX) - math.Log(minX))
		c := int(f * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for i := range s.X {
			col := lx(s.X[i])
			row := int((1 - s.Y[i]/maxY) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = sym
		}
	}
	fmt.Fprintf(w, "%s  (y max = %s)\n", title, FormatNum(maxY))
	for _, r := range grid {
		fmt.Fprintf(w, "  |%s\n", string(r))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   x: %s .. %s (log scale)\n", FormatNum(minX), FormatNum(maxX))
	for si, s := range series {
		fmt.Fprintf(w, "   %c %s\n", symbols[si%len(symbols)], s.Label)
	}
}
