package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesAddAndMax(t *testing.T) {
	var s Series
	s.Add(1, 10, "a")
	s.Add(2, 30, "b")
	s.Add(3, 20, "c")
	v, i := s.Max()
	if v != 30 || i != 1 {
		t.Fatalf("Max = (%v, %d)", v, i)
	}
	if s.ArgmaxX() != 2 {
		t.Fatalf("ArgmaxX = %v", s.ArgmaxX())
	}
}

func TestSeriesEmptyMax(t *testing.T) {
	var s Series
	if _, i := s.Max(); i != -1 {
		t.Fatal("empty Max should return -1")
	}
	if !math.IsNaN(s.ArgmaxX()) {
		t.Fatal("empty ArgmaxX should be NaN")
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("a", "1")
	tb.AddRow("long-name", "22")
	var buf bytes.Buffer
	tb.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	// All value columns start at the same offset.
	off := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][off:], "1") || !strings.HasPrefix(lines[3][off:], "22") {
		t.Fatalf("misaligned table:\n%s", buf.String())
	}
}

func TestSeriesTable(t *testing.T) {
	a := Series{Label: "A"}
	a.Add(1, 10, "")
	a.Add(2, 20, "x")
	b := Series{Label: "B"}
	b.Add(2, 5, "")
	tb := SeriesTable("n", []Series{a, b})
	if len(tb.Header) != 3 || tb.Header[1] != "A" {
		t.Fatalf("header %v", tb.Header)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tb.Rows))
	}
	// x=2 row must hold both series, with the note attached.
	if tb.Rows[1][1] != "20 (x)" || tb.Rows[1][2] != "5" {
		t.Fatalf("row %v", tb.Rows[1])
	}
	// x=1 row has an empty B cell.
	if tb.Rows[0][2] != "" {
		t.Fatalf("row %v", tb.Rows[0])
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1536:    "1536",
		3.14159: "3.14",
		0.001:   "0.001",
	}
	for v, want := range cases {
		if got := FormatNum(v); got != want {
			t.Fatalf("FormatNum(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestChartRenders(t *testing.T) {
	s := Series{Label: "gf"}
	for _, x := range []float64{12, 48, 192, 768} {
		s.Add(x, x*1.5, "")
	}
	var buf bytes.Buffer
	Chart(&buf, "test chart", []Series{s}, 40, 8)
	out := buf.String()
	if !strings.Contains(out, "test chart") || !strings.Contains(out, "log scale") {
		t.Fatalf("chart output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data points plotted")
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, "empty", nil, 40, 8)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestGanttRenders(t *testing.T) {
	spans := []GanttSpan{
		{Lane: "gpu", Label: "k", Start: 0, End: 0.5},
		{Lane: "pcie", Label: "h2d", Start: 0.2, End: 0.4},
	}
	var buf bytes.Buffer
	Gantt(&buf, "timeline", spans, 40)
	out := buf.String()
	if !strings.Contains(out, "gpu") || !strings.Contains(out, "pcie") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars drawn")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title + 2 lanes
		t.Fatalf("%d lines, want 3:\n%s", len(lines), out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	Gantt(&buf, "empty", nil, 40)
	if !strings.Contains(buf.String(), "no spans") {
		t.Fatal("empty gantt should say so")
	}
}
