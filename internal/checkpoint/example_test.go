package checkpoint_test

import (
	"bytes"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	_ "repro/internal/impl"
)

// Example saves a run mid-flight and resumes it: the paper's §IV-E
// scenario of long computations between CPU-GPU checkpoints.
func Example() {
	run := func(p core.Problem) *core.Result {
		r, _ := core.New(core.GPUResident)
		res, _ := r.Run(p, core.Options{BlockX: 8, BlockY: 4})
		return res
	}
	firstHalf := core.DefaultProblem(12, 5)
	res := run(firstHalf)

	m, f, _ := checkpoint.FromResult(firstHalf, res)
	var buf bytes.Buffer
	_ = checkpoint.Save(&buf, m, f)

	m2, f2, _ := checkpoint.Load(&buf)
	resumed := run(checkpoint.Resume(m2, f2, 5))

	straight := run(core.DefaultProblem(12, 10))
	same := true
	for k := 0; k < 12 && same; k++ {
		for j := 0; j < 12 && same; j++ {
			for i := 0; i < 12 && same; i++ {
				same = resumed.Final.At(i, j, k) == straight.Final.At(i, j, k)
			}
		}
	}
	fmt.Println("resumed run bit-identical to uninterrupted run:", same)
	// Output:
	// resumed run bit-identical to uninterrupted run: true
}
