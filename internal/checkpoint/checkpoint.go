// Package checkpoint saves and restores simulation state. The paper's
// GPU-resident scenario assumes "a computation might run for hours between
// CPU-GPU checkpoints" (§IV-E); this package supplies the checkpoints: a
// compact self-describing binary format holding the problem description,
// the simulated time already integrated, and the full field, written so a
// resumed run continues bit-for-bit where the original stopped.
//
// Format (little endian):
//
//	magic "ADVCKPT2" | nx ny nz int64 | cx cy cz nu t0 float64
//	| steps-done int64 | fingerprint string | options string
//	| nx*ny*nz float64 field values (x fastest)
//	| xor checksum of the payload as uint64
//
// Strings are encoded as a uint64 byte length followed by the bytes
// zero-padded to an 8-byte boundary, every word folded into the checksum.
// Version 1 files ("ADVCKPT1", no strings) still load; their Fingerprint
// and Options come back empty, marking a checkpoint without recorded
// lineage.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/grid"
)

const (
	magicV1 = "ADVCKPT1"
	magicV2 = "ADVCKPT2"
	// maxString bounds the fingerprint/options strings on load, so hostile
	// headers cannot demand gigabyte allocations.
	maxString = 1 << 12
)

// Meta describes a checkpointed run. Fingerprint and Options carry the
// canonical identity of the computation that produced the state (the run
// fingerprint from internal/core and Options.Canonical()), so a checkpoint
// file alone identifies its session lineage. Both are empty when the file
// predates format version 2. Meta stays comparable: lineage is carried as
// canonical strings, which round-trip exactly where parsed structs would
// not (GPUDefault and GPUC2050 collapse to one canonical form).
type Meta struct {
	N         grid.Dims
	C         grid.Velocity
	Nu        float64
	T0        float64 // simulated time integrated so far
	StepsDone int64
	// Fingerprint is the canonical run fingerprint of the session or job
	// this state belongs to ("" on version-1 files).
	Fingerprint string
	// Options is the Options.Canonical() encoding of the run's tuning
	// parameters ("" on version-1 files); parse with
	// core.ParseOptionsCanonical to resume with the same configuration.
	Options string
}

// Save writes the state to w.
func Save(w io.Writer, m Meta, f *grid.Field) error {
	if f.N != m.N {
		return fmt.Errorf("checkpoint: field %v does not match meta %v", f.N, m.N)
	}
	if len(m.Fingerprint) > maxString || len(m.Options) > maxString {
		return fmt.Errorf("checkpoint: lineage strings too long (%d/%d bytes)",
			len(m.Fingerprint), len(m.Options))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV2); err != nil {
		return err
	}
	var sum uint64
	put64 := func(v uint64) error {
		sum ^= v
		return binary.Write(bw, binary.LittleEndian, v)
	}
	putI := func(v int64) error { return put64(uint64(v)) }
	putF := func(v float64) error { return put64(math.Float64bits(v)) }
	putS := func(s string) error {
		if err := putI(int64(len(s))); err != nil {
			return err
		}
		b := make([]byte, (len(s)+7)/8*8)
		copy(b, s)
		for i := 0; i < len(b); i += 8 {
			if err := put64(binary.LittleEndian.Uint64(b[i:])); err != nil {
				return err
			}
		}
		return nil
	}

	for _, v := range []int64{int64(m.N.X), int64(m.N.Y), int64(m.N.Z)} {
		if err := putI(v); err != nil {
			return err
		}
	}
	for _, v := range []float64{m.C.X, m.C.Y, m.C.Z, m.Nu, m.T0} {
		if err := putF(v); err != nil {
			return err
		}
	}
	if err := putI(m.StepsDone); err != nil {
		return err
	}
	if err := putS(m.Fingerprint); err != nil {
		return err
	}
	if err := putS(m.Options); err != nil {
		return err
	}
	for k := 0; k < m.N.Z; k++ {
		for j := 0; j < m.N.Y; j++ {
			for i := 0; i < m.N.X; i++ {
				if err := putF(f.At(i, j, k)); err != nil {
					return err
				}
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a checkpoint from r, validating the magic and checksum. Both
// format versions are accepted; version-1 files load with empty
// Fingerprint and Options.
func Load(r io.Reader) (Meta, *grid.Field, error) {
	br := bufio.NewReader(r)
	var m Meta
	head := make([]byte, len(magicV1))
	if _, err := io.ReadFull(br, head); err != nil {
		return m, nil, fmt.Errorf("checkpoint: %w", err)
	}
	version := 0
	switch string(head) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return m, nil, fmt.Errorf("checkpoint: bad magic %q", head)
	}
	var sum uint64
	get64 := func() (uint64, error) {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return 0, err
		}
		sum ^= v
		return v, nil
	}
	getI := func() (int64, error) { v, err := get64(); return int64(v), err }
	getF := func() (float64, error) { v, err := get64(); return math.Float64frombits(v), err }
	getS := func() (string, error) {
		n, err := getI()
		if err != nil {
			return "", err
		}
		if n < 0 || n > maxString {
			return "", fmt.Errorf("implausible string length %d", n)
		}
		b := make([]byte, (n+7)/8*8)
		for i := 0; i < len(b); i += 8 {
			v, err := get64()
			if err != nil {
				return "", err
			}
			binary.LittleEndian.PutUint64(b[i:], v)
		}
		for _, pad := range b[n:] {
			if pad != 0 {
				return "", fmt.Errorf("non-zero string padding")
			}
		}
		return string(b[:n]), nil
	}

	var err error
	var nx, ny, nz int64
	if nx, err = getI(); err == nil {
		if ny, err = getI(); err == nil {
			nz, err = getI()
		}
	}
	if err != nil {
		return m, nil, fmt.Errorf("checkpoint: truncated header: %w", err)
	}
	// Bound each dimension before multiplying, so hostile headers cannot
	// overflow the volume check (found by FuzzLoad).
	const maxDim = 1 << 13 // 8192 points per dimension, far above the paper's 420
	if nx <= 0 || ny <= 0 || nz <= 0 || nx > maxDim || ny > maxDim || nz > maxDim {
		return m, nil, fmt.Errorf("checkpoint: implausible dims %dx%dx%d", nx, ny, nz)
	}
	if nx*ny*nz > (1 << 27) { // ~128M points ≈ 1 GB, above the paper's 420³
		return m, nil, fmt.Errorf("checkpoint: volume %d too large", nx*ny*nz)
	}
	m.N = grid.Dims{X: int(nx), Y: int(ny), Z: int(nz)}
	for _, dst := range []*float64{&m.C.X, &m.C.Y, &m.C.Z, &m.Nu, &m.T0} {
		if *dst, err = getF(); err != nil {
			return m, nil, fmt.Errorf("checkpoint: truncated header: %w", err)
		}
	}
	if m.StepsDone, err = getI(); err != nil {
		return m, nil, fmt.Errorf("checkpoint: truncated header: %w", err)
	}
	if version >= 2 {
		if m.Fingerprint, err = getS(); err != nil {
			return m, nil, fmt.Errorf("checkpoint: bad fingerprint: %w", err)
		}
		if m.Options, err = getS(); err != nil {
			return m, nil, fmt.Errorf("checkpoint: bad options: %w", err)
		}
	}

	f := grid.NewField(m.N, 1)
	for k := 0; k < m.N.Z; k++ {
		for j := 0; j < m.N.Y; j++ {
			for i := 0; i < m.N.X; i++ {
				v, err := getF()
				if err != nil {
					return m, nil, fmt.Errorf("checkpoint: truncated field: %w", err)
				}
				f.Set(i, j, k, v)
			}
		}
	}
	var want uint64
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return m, nil, fmt.Errorf("checkpoint: missing checksum: %w", err)
	}
	if want != sum {
		return m, nil, fmt.Errorf("checkpoint: checksum mismatch (corrupt file)")
	}
	return m, f, nil
}

// SaveFile writes the state to path (atomically via a temp file).
func SaveFile(path string, m Meta, f *grid.Field) error {
	tmp := path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(out, m, f); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (Meta, *grid.Field, error) {
	in, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	defer in.Close()
	return Load(in)
}

// FromResult builds the checkpoint of a completed run.
func FromResult(p core.Problem, res *core.Result) (Meta, *grid.Field, error) {
	if res.Final == nil {
		return Meta{}, nil, fmt.Errorf("checkpoint: result carries no final state")
	}
	np, err := p.Normalize()
	if err != nil {
		return Meta{}, nil, err
	}
	return Meta{
		N: np.N, C: np.C, Nu: np.Nu,
		T0:        np.T0 + np.Nu*float64(np.Steps),
		StepsDone: int64(np.Steps),
	}, res.Final, nil
}

// WithLineage returns a copy of m carrying the canonical identity of the
// run that produced it: the session/job fingerprint and the
// Options.Canonical() encoding.
func (m Meta) WithLineage(fingerprint, options string) Meta {
	m.Fingerprint = fingerprint
	m.Options = options
	return m
}

// Resume builds the problem that continues a checkpoint for the given
// number of further steps.
func Resume(m Meta, f *grid.Field, steps int) core.Problem {
	return core.Problem{
		N: m.N, C: m.C, Nu: m.Nu, Steps: steps,
		Initial: f, T0: m.T0,
	}
}
