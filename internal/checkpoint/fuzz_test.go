package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/grid"
)

// FuzzLoad guards the checkpoint parser against arbitrary input: it must
// return an error, never panic or allocate absurdly, whatever the bytes.
func FuzzLoad(f *testing.F) {
	// Seed with a valid checkpoint and a few mutations.
	n := grid.Uniform(3)
	var buf bytes.Buffer
	fld := grid.NewField(n, 1)
	fld.Fill(func(i, j, k int) float64 { return float64(i + j + k) })
	if err := Save(&buf, Meta{N: n, Nu: 1}, fld); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("ADVCKPT1"))
	f.Add([]byte("ADVCKPT2"))
	f.Add([]byte{})
	// A version-2 file with lineage strings, plus a forged version-1 magic
	// on a version-2 body (the string words then parse as field values and
	// the checksum must catch the reshuffle or the volume check the size).
	var buf2 bytes.Buffer
	m2 := Meta{N: n, Nu: 1, Fingerprint: "fp-abc123", Options: "o1;tasks=2"}
	if err := Save(&buf2, m2, fld); err != nil {
		f.Fatal(err)
	}
	withLineage := buf2.Bytes()
	f.Add(withLineage)
	forged := append([]byte("ADVCKPT1"), withLineage[8:]...)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, fld, err := Load(bytes.NewReader(data))
		if err == nil {
			// Anything accepted must be self-consistent.
			if fld == nil || fld.N != m.N {
				t.Fatalf("accepted checkpoint inconsistent: %+v", m)
			}
		}
	})
}
