package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/grid"
)

// FuzzLoad guards the checkpoint parser against arbitrary input: it must
// return an error, never panic or allocate absurdly, whatever the bytes.
func FuzzLoad(f *testing.F) {
	// Seed with a valid checkpoint and a few mutations.
	n := grid.Uniform(3)
	var buf bytes.Buffer
	fld := grid.NewField(n, 1)
	fld.Fill(func(i, j, k int) float64 { return float64(i + j + k) })
	if err := Save(&buf, Meta{N: n, Nu: 1}, fld); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("ADVCKPT1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, fld, err := Load(bytes.NewReader(data))
		if err == nil {
			// Anything accepted must be self-consistent.
			if fld == nil || fld.N != m.N {
				t.Fatalf("accepted checkpoint inconsistent: %+v", m)
			}
		}
	})
}
