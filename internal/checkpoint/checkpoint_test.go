package checkpoint

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	_ "repro/internal/impl"
)

func testField(n grid.Dims) *grid.Field {
	f := grid.NewField(n, 1)
	f.Fill(func(i, j, k int) float64 { return float64(i) + 0.5*float64(j) - 0.25*float64(k) })
	return f
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n := grid.Dims{X: 7, Y: 5, Z: 6}
	m := Meta{N: n, C: grid.Velocity{X: 1, Y: 0.5, Z: 0.25}, Nu: 1, T0: 3.5, StepsDone: 7}
	f := testField(n)
	var buf bytes.Buffer
	if err := Save(&buf, m, f); err != nil {
		t.Fatal(err)
	}
	m2, f2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatalf("meta %+v, want %+v", m2, m)
	}
	if nm := grid.DiffNorms(f, f2); nm.LInf != 0 {
		t.Fatalf("field differs: %+v", nm)
	}
}

func TestSaveLoadRoundTripLineage(t *testing.T) {
	n := grid.Dims{X: 5, Y: 4, Z: 3}
	o := core.Options{Tasks: 4, Threads: 2, BlockX: 16, BlockY: 8}.Normalize()
	p := core.DefaultProblem(5, 9)
	p.N = n
	m := Meta{
		N: n, C: grid.Velocity{X: 1, Y: 0.5, Z: 0.25}, Nu: 1, T0: 2, StepsDone: 9,
		Fingerprint: core.Fingerprint(core.BulkSync, p, o),
		Options:     o.Canonical(),
	}
	var buf bytes.Buffer
	if err := Save(&buf, m, testField(n)); err != nil {
		t.Fatal(err)
	}
	m2, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatalf("meta %+v, want %+v", m2, m)
	}
	// The recorded options must parse back into a usable configuration.
	o2, err := core.ParseOptionsCanonical(m2.Options)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Canonical() != o.Canonical() {
		t.Fatalf("options %q, want %q", o2.Canonical(), o.Canonical())
	}
}

// saveV1 replicates the version-1 writer so backward compatibility stays
// testable after the live writer moved to version 2.
func saveV1(t *testing.T, m Meta, f *grid.Field) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("ADVCKPT1")
	var sum uint64
	put64 := func(v uint64) {
		sum ^= v
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	for _, v := range []int64{int64(m.N.X), int64(m.N.Y), int64(m.N.Z)} {
		put64(uint64(v))
	}
	for _, v := range []float64{m.C.X, m.C.Y, m.C.Z, m.Nu, m.T0} {
		put64(math.Float64bits(v))
	}
	put64(uint64(m.StepsDone))
	for k := 0; k < m.N.Z; k++ {
		for j := 0; j < m.N.Y; j++ {
			for i := 0; i < m.N.X; i++ {
				put64(math.Float64bits(f.At(i, j, k)))
			}
		}
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], sum)
	buf.Write(b[:])
	return buf.Bytes()
}

func TestLoadVersion1Compat(t *testing.T) {
	n := grid.Dims{X: 4, Y: 3, Z: 2}
	m := Meta{N: n, C: grid.Velocity{X: 1}, Nu: 0.5, T0: 1.5, StepsDone: 3}
	f := testField(n)
	data := saveV1(t, m, f)
	m2, f2, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatalf("v1 meta %+v, want %+v", m2, m)
	}
	if m2.Fingerprint != "" || m2.Options != "" {
		t.Fatalf("v1 file must load with empty lineage, got %+v", m2)
	}
	if nm := grid.DiffNorms(f, f2); nm.LInf != 0 {
		t.Fatalf("v1 field differs: %+v", nm)
	}
}

func TestWithLineage(t *testing.T) {
	m := Meta{N: grid.Uniform(4), StepsDone: 2}
	m2 := m.WithLineage("fp", "o1;x=1")
	if m2.Fingerprint != "fp" || m2.Options != "o1;x=1" || m2.N != m.N {
		t.Fatalf("lineage not attached: %+v", m2)
	}
	if m.Fingerprint != "" {
		t.Fatal("WithLineage mutated its receiver")
	}
}

func TestSaveRejectsOversizeLineage(t *testing.T) {
	n := grid.Uniform(3)
	m := Meta{N: n, Fingerprint: string(make([]byte, maxString+1))}
	var buf bytes.Buffer
	if err := Save(&buf, m, testField(n)); err == nil {
		t.Fatal("oversize lineage accepted")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	n := grid.Uniform(4)
	var buf bytes.Buffer
	if err := Save(&buf, Meta{N: n, Nu: 1}, testField(n)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if _, _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt payload accepted")
	}

	// Truncation.
	if _, _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}

	// Wrong magic.
	bad2 := append([]byte("NOTMAGIC"), data[8:]...)
	if _, _, err := Load(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSaveFieldMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := Save(&buf, Meta{N: grid.Uniform(5)}, testField(grid.Uniform(4)))
	if err == nil {
		t.Fatal("mismatched field accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	n := grid.Uniform(6)
	m := Meta{N: n, C: grid.Velocity{X: 1}, Nu: 1, StepsDone: 2, T0: 2}
	if err := SaveFile(path, m, testField(n)); err != nil {
		t.Fatal(err)
	}
	m2, f2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m || f2.N != n {
		t.Fatalf("round trip failed: %+v", m2)
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRestartBitwiseIdentical is the point of the package: integrating 20
// steps straight must equal integrating 10, checkpointing, and resuming
// for 10 more — bit for bit, for both a CPU and a GPU implementation.
func TestRestartBitwiseIdentical(t *testing.T) {
	for _, kind := range []core.Kind{core.SingleTask, core.BulkSync, core.GPUResident} {
		o := core.Options{Tasks: 2, Threads: 2, BlockX: 8, BlockY: 4}
		if !kind.UsesMPI() {
			o.Tasks = 1
		}
		runK := func(p core.Problem) *core.Result {
			t.Helper()
			r, err := core.New(kind)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run(p, o)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}

		straight := runK(core.DefaultProblem(12, 20))

		first := runK(core.DefaultProblem(12, 10))
		m, f, err := FromResult(core.DefaultProblem(12, 10), first)
		if err != nil {
			t.Fatal(err)
		}
		// Through the serialized format, as a real restart would go.
		var buf bytes.Buffer
		if err := Save(&buf, m, f); err != nil {
			t.Fatal(err)
		}
		m2, f2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		resumed := runK(Resume(m2, f2, 10))

		if nm := grid.DiffNorms(straight.Final, resumed.Final); nm.LInf != 0 {
			t.Fatalf("%v: restart diverged: LInf %g", kind, nm.LInf)
		}
	}
}

func TestResumeCarriesTime(t *testing.T) {
	m := Meta{N: grid.Uniform(8), C: grid.Velocity{X: 1}, Nu: 1, T0: 5, StepsDone: 5}
	p := Resume(m, testField(m.N), 3)
	np, err := p.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if np.T0 != 5 || np.Steps != 3 || np.Initial == nil {
		t.Fatalf("resume problem wrong: %+v", np)
	}
}

func TestVerifyAcrossRestart(t *testing.T) {
	// The analytic comparison must keep working after a restart: the
	// resumed run's norms are computed at T0 + nu*steps.
	r, err := core.New(core.SingleTask)
	if err != nil {
		t.Fatal(err)
	}
	p1 := core.DefaultProblem(24, 6)
	res1, err := r.Run(p1, core.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	m, f, err := FromResult(p1, res1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(Resume(m, f, 6), core.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	// Error grows with time but must stay the same order of magnitude.
	if res2.Norms.L2 <= res1.Norms.L2 {
		t.Fatalf("error should grow: %g -> %g", res1.Norms.L2, res2.Norms.L2)
	}
	if res2.Norms.L2 > 20*res1.Norms.L2 {
		t.Fatalf("restart verification broken: %g -> %g", res1.Norms.L2, res2.Norms.L2)
	}
}
