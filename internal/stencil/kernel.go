package stencil

import "repro/internal/grid"

// Op is a prepared stencil application bound to a coefficient set and a
// field shape: the 27 (flat-offset, coefficient) pairs for fields with the
// given strides. Preparing once per run mirrors the paper's constant
// coefficients ("the values of a_ijk are the same for every grid point and
// time step").
type Op struct {
	c    *Coeffs
	offs [27]int
	w    [27]float64
}

// NewOp prepares an Op for fields shaped like f.
func NewOp(c *Coeffs, f *grid.Field) *Op {
	op := &Op{c: c}
	sx, sy, sz := f.Strides()
	n := 0
	for k := -1; k <= 1; k++ {
		for j := -1; j <= 1; j++ {
			for i := -1; i <= 1; i++ {
				op.offs[n] = i*sx + j*sy + k*sz
				op.w[n] = c.At(i, j, k)
				n++
			}
		}
	}
	return op
}

// Coeffs returns the coefficient set the Op was prepared with.
func (op *Op) Coeffs() *Coeffs { return op.c }

// Point computes Eq. 2 for the single point (i, j, k): the weighted sum of
// the 27 neighbors of src, returned (not stored).
func (op *Op) Point(src *grid.Field, i, j, k int) float64 {
	base := src.Idx(i, j, k)
	d := src.Data()
	var s float64
	for n := 0; n < 27; n++ {
		s += op.w[n] * d[base+op.offs[n]]
	}
	return s
}

// Apply computes Eq. 2 for every point of sub (local coordinates, must lie
// within the interior of src) reading src and writing dst. src and dst must
// have identical shape and must not alias. The inner x loop is unrolled
// over the three z-planes of the stencil so a row of points makes three
// sequential passes over contiguous memory, the access pattern the paper's
// Fortran kernel relies on for locality.
func (op *Op) Apply(src, dst *grid.Field, sub grid.Subdomain) {
	if sub.Empty() {
		return
	}
	s := src.Data()
	d := dst.Data()
	hi := sub.Hi()
	for k := sub.Lo.Z; k < hi.Z; k++ {
		for j := sub.Lo.Y; j < hi.Y; j++ {
			base := src.Idx(sub.Lo.X, j, k)
			out := dst.Idx(sub.Lo.X, j, k)
			nx := sub.Size.X
			applyRow(s, d[out:out+nx], base, nx, &op.offs, &op.w)
		}
	}
}

// applyRow computes one x-row of Eq. 2. Factored out so the compiler keeps
// the 27 weights in registers across the row.
func applyRow(s []float64, dst []float64, base, nx int, offs *[27]int, w *[27]float64) {
	for i := 0; i < nx; i++ {
		p := base + i
		sum := w[0] * s[p+offs[0]]
		sum += w[1] * s[p+offs[1]]
		sum += w[2] * s[p+offs[2]]
		sum += w[3] * s[p+offs[3]]
		sum += w[4] * s[p+offs[4]]
		sum += w[5] * s[p+offs[5]]
		sum += w[6] * s[p+offs[6]]
		sum += w[7] * s[p+offs[7]]
		sum += w[8] * s[p+offs[8]]
		sum += w[9] * s[p+offs[9]]
		sum += w[10] * s[p+offs[10]]
		sum += w[11] * s[p+offs[11]]
		sum += w[12] * s[p+offs[12]]
		sum += w[13] * s[p+offs[13]]
		sum += w[14] * s[p+offs[14]]
		sum += w[15] * s[p+offs[15]]
		sum += w[16] * s[p+offs[16]]
		sum += w[17] * s[p+offs[17]]
		sum += w[18] * s[p+offs[18]]
		sum += w[19] * s[p+offs[19]]
		sum += w[20] * s[p+offs[20]]
		sum += w[21] * s[p+offs[21]]
		sum += w[22] * s[p+offs[22]]
		sum += w[23] * s[p+offs[23]]
		sum += w[24] * s[p+offs[24]]
		sum += w[25] * s[p+offs[25]]
		sum += w[26] * s[p+offs[26]]
		dst[i] = sum
	}
}

// Rows returns the number of x-rows in sub, the iteration count for
// ApplyRows. Parallel callers collapse the outer (k, j) loops into this
// flat row index, matching the paper's collapse(2) OpenMP strategy.
func Rows(sub grid.Subdomain) int { return sub.Size.Y * sub.Size.Z }

// ApplyRows computes Eq. 2 for the x-rows of sub with flattened (k, j)
// indices in [lo, hi). Row r corresponds to k = sub.Lo.Z + r/sub.Size.Y and
// j = sub.Lo.Y + r%sub.Size.Y. Disjoint row ranges touch disjoint dst
// memory, so concurrent calls need no locking.
func (op *Op) ApplyRows(src, dst *grid.Field, sub grid.Subdomain, lo, hi int) {
	if sub.Empty() {
		return
	}
	s := src.Data()
	d := dst.Data()
	ny := sub.Size.Y
	nx := sub.Size.X
	for r := lo; r < hi; r++ {
		k := sub.Lo.Z + r/ny
		j := sub.Lo.Y + r%ny
		base := src.Idx(sub.Lo.X, j, k)
		out := dst.Idx(sub.Lo.X, j, k)
		applyRow(s, d[out:out+nx], base, nx, &op.offs, &op.w)
	}
}

// Interior returns the subdomain of points of an n-point local domain whose
// stencil touches no halo point: the domain shrunk by the stencil halo
// width (1) on every side. If the domain is too thin the result is empty.
func Interior(n grid.Dims) grid.Subdomain {
	return grid.Subdomain{
		Lo:   grid.Dims{X: 1, Y: 1, Z: 1},
		Size: grid.Dims{X: n.X - 2, Y: n.Y - 2, Z: n.Z - 2},
	}
}

// BoundarySlabs returns the six disjoint slabs of boundary points — points
// whose stencil reads at least one halo point — of an n-point local domain,
// ordered -z, +z, -y, +y, -x, +x. Together with Interior(n) they tile the
// domain. These are the points computed after communication completes in
// the overlap implementations (§IV-C, §IV-D).
func BoundarySlabs(n grid.Dims) []grid.Subdomain {
	b := grid.BoxSplit{Local: n, T: 1}
	return b.Walls()
}

// InteriorThirds splits the interior of an n-point local domain into three
// slabs along z, as equal as possible. Implementation §IV-C computes the
// first third between initiation and completion of the x exchange, the
// second within the y exchange, and the last within the z exchange.
func InteriorThirds(n grid.Dims) [3]grid.Subdomain {
	in := Interior(n)
	var out [3]grid.Subdomain
	base := in.Size.Z / 3
	rem := in.Size.Z % 3
	lo := in.Lo.Z
	for t := 0; t < 3; t++ {
		sz := base
		if t < rem {
			sz++
		}
		out[t] = grid.Subdomain{
			Lo:   grid.Dims{X: in.Lo.X, Y: in.Lo.Y, Z: lo},
			Size: grid.Dims{X: in.Size.X, Y: in.Size.Y, Z: sz},
		}
		lo += sz
	}
	return out
}

// Whole returns the full local domain as a subdomain.
func Whole(n grid.Dims) grid.Subdomain {
	return grid.Subdomain{Size: n}
}
