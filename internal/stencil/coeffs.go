// Package stencil implements the paper's numerical method (§II): explicit
// Lax–Wendroff time integration of linear advection with constant uniform
// velocity, using a 3×3×3 stencil whose 27 coefficients are given in
// Table I. Each application costs 53 floating-point operations per point
// (27 multiplications and 26 additions), the figure the paper uses to
// convert measured time into GF.
package stencil

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// FlopsPerPoint is the operation count of Eq. 2 used for all GF numbers:
// 27 multiplications and 26 additions.
const FlopsPerPoint = 53

// Coeffs holds the 27 stencil coefficients a_ijk of Eq. 2, indexed by
// At(i, j, k) with i, j, k ∈ {-1, 0, +1}.
type Coeffs struct {
	a [27]float64
}

// At returns a_ijk for offsets i, j, k ∈ {-1, 0, +1}.
func (c *Coeffs) At(i, j, k int) float64 {
	return c.a[idx27(i, j, k)]
}

// Flat returns the coefficients as a flat array ordered with i fastest then
// j then k, i.e. index (i+1) + 3*(j+1) + 9*(k+1). GPU implementations load
// this into constant memory.
func (c *Coeffs) Flat() [27]float64 { return c.a }

func idx27(i, j, k int) int {
	if i < -1 || i > 1 || j < -1 || j > 1 || k < -1 || k > 1 {
		panic(fmt.Sprintf("stencil: bad offset (%d,%d,%d)", i, j, k))
	}
	return (i + 1) + 3*(j+1) + 9*(k+1)
}

// TableI computes the 27 coefficients exactly as printed in the paper's
// Table I, as functions of the velocity components and ν = Δ/δ. The
// expressions are transcribed literally; TestTensorIdentity verifies they
// equal the tensor product of three one-dimensional Lax–Wendroff stencils.
func TableI(c grid.Velocity, nu float64) *Coeffs {
	cx, cy, cz, v := c.X, c.Y, c.Z, nu
	var a Coeffs
	set := func(i, j, k int, val float64) { a.a[idx27(i, j, k)] = val }

	set(-1, -1, -1, cx*cy*cz*v*v*v*(1+cx*v)*(1+cy*v)*(1+cz*v)/8)
	set(-1, -1, 0, -2*cx*cy*v*v*(1+cx*v)*(1+cy*v)*(cz*cz*v*v-1)/8)
	set(-1, -1, +1, cx*cy*cz*v*v*v*(1+cx*v)*(1+cy*v)*(cz*v-1)/8)
	set(-1, 0, -1, -2*cx*cz*v*v*(1+cx*v)*(1+cz*v)*(cy*cy*v*v-1)/8)
	set(-1, 0, 0, 4*cx*v*(1+cx*v)*(cy*cy*v*v-1)*(cz*cz*v*v-1)/8)
	set(-1, 0, +1, -2*cx*cz*v*v*(1+cx*v)*(-1+cz*v)*(-1+cy*cy*v*v)/8)
	set(-1, +1, -1, cx*cy*cz*v*v*v*(1+cx*v)*(-1+cy*v)*(1+cz*v)/8)
	set(-1, +1, 0, -2*cx*cy*v*v*(1+cx*v)*(-1+cy*v)*(-1+cz*cz*v*v)/8)
	set(-1, +1, +1, cx*cy*cz*v*v*v*(1+cx*v)*(-1+cy*v)*(-1+cz*v)/8)

	set(0, -1, -1, -2*cy*cz*v*v*(1+cy*v)*(1+cz*v)*(-1+cx*cx*v*v)/8)
	set(0, -1, 0, 4*cy*v*(1+cy*v)*(-1+cx*cx*v*v)*(-1+cz*cz*v*v)/8)
	set(0, -1, +1, -2*cy*cz*v*v*(1+cy*v)*(-1+cz*v)*(-1+cx*cx*v*v)/8)
	set(0, 0, -1, 4*cz*v*(1+cz*v)*(-1+cx*cx*v*v)*(-1+cy*cy*v*v)/8)
	set(0, 0, 0, -8*(-1+cx*cx*v*v)*(-1+cy*cy*v*v)*(-1+cz*cz*v*v)/8)
	set(0, 0, +1, 4*cz*v*(-1+cz*v)*(-1+cx*cx*v*v)*(-1+cy*cy*v*v)/8)
	set(0, +1, -1, -2*cy*cz*v*v*(-1+cy*v)*(1+cz*v)*(-1+cx*cx*v*v)/8)
	set(0, +1, 0, 4*cy*v*(-1+cy*v)*(-1+cx*cx*v*v)*(-1+cz*cz*v*v)/8)
	set(0, +1, +1, -2*cy*cz*v*v*(-1+cy*v)*(-1+cz*v)*(-1+cx*cx*v*v)/8)

	set(+1, -1, -1, cx*cy*cz*v*v*v*(-1+cx*v)*(1+cy*v)*(1+cz*v)/8)
	set(+1, -1, 0, -2*cx*cy*v*v*(-1+cx*v)*(1+cy*v)*(-1+cz*cz*v*v)/8)
	set(+1, -1, +1, cx*cy*cz*v*v*v*(-1+cx*v)*(1+cy*v)*(-1+cz*v)/8)
	set(+1, 0, -1, -2*cx*cz*v*v*(-1+cx*v)*(1+cz*v)*(-1+cy*cy*v*v)/8)
	set(+1, 0, 0, 4*cx*v*(-1+cx*v)*(-1+cy*cy*v*v)*(-1+cz*cz*v*v)/8)
	set(+1, 0, +1, -2*cx*cz*v*v*(-1+cx*v)*(-1+cz*v)*(-1+cy*cy*v*v)/8)
	set(+1, +1, -1, cx*cy*cz*v*v*v*(-1+cx*v)*(-1+cy*v)*(1+cz*v)/8)
	set(+1, +1, 0, -2*cx*cy*v*v*(-1+cx*v)*(-1+cy*v)*(-1+cz*cz*v*v)/8)
	set(+1, +1, +1, cx*cy*cz*v*v*v*(-1+cx*v)*(-1+cy*v)*(-1+cz*v)/8)
	return &a
}

// FromFlat rebuilds a coefficient set from the flat layout produced by
// Flat. The GPU implementations use it to read the coefficients back out
// of simulated constant memory, as the CUDA kernels do.
func FromFlat(flat [27]float64) *Coeffs {
	var c Coeffs
	c.a = flat
	return &c
}

// LW1D returns the one-dimensional Lax–Wendroff weights (q-1, q0, q+1) for
// Courant number σ = c·ν. The Table I coefficients factor as the tensor
// product a_ijk = qx_i · qy_j · qz_k.
func LW1D(sigma float64) (qm1, q0, qp1 float64) {
	return sigma * (1 + sigma) / 2, 1 - sigma*sigma, sigma * (sigma - 1) / 2
}

// TensorProduct builds the coefficients from the tensor product of the
// one-dimensional Lax–Wendroff stencils. It must agree with TableI to
// roundoff; the reproduction keeps both forms so the literal transcription
// of the paper's table is itself under test.
func TensorProduct(c grid.Velocity, nu float64) *Coeffs {
	var qx, qy, qz [3]float64
	qx[0], qx[1], qx[2] = LW1D(c.X * nu)
	qy[0], qy[1], qy[2] = LW1D(c.Y * nu)
	qz[0], qz[1], qz[2] = LW1D(c.Z * nu)
	var a Coeffs
	for k := -1; k <= 1; k++ {
		for j := -1; j <= 1; j++ {
			for i := -1; i <= 1; i++ {
				a.a[idx27(i, j, k)] = qx[i+1] * qy[j+1] * qz[k+1]
			}
		}
	}
	return &a
}

// Sum returns the sum of all coefficients. Consistency of the scheme
// requires the sum to be exactly 1 (a constant field is a fixed point).
func (c *Coeffs) Sum() float64 {
	var s float64
	for _, v := range c.a {
		s += v
	}
	return s
}

// MaxStableNu returns the largest stable ratio ν = Δ/δ for velocity c:
// the Lax–Wendroff scheme requires the Courant number |c|·ν ≤ 1 in each
// dimension, so ν_max = 1 / max{|cx|, |cy|, |cz|}. The paper (§II) runs at
// the maximum stable ν.
func MaxStableNu(c grid.Velocity) float64 {
	m := c.MaxAbs()
	if m == 0 {
		return math.Inf(1)
	}
	return 1 / m
}

// Stable reports whether the scheme is von Neumann stable for velocity c at
// ratio nu.
func Stable(c grid.Velocity, nu float64) bool {
	const eps = 1e-12
	return math.Abs(c.X)*nu <= 1+eps && math.Abs(c.Y)*nu <= 1+eps && math.Abs(c.Z)*nu <= 1+eps
}
