package stencil

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func testVelocity() grid.Velocity { return grid.Velocity{X: 1, Y: 0.5, Z: 0.25} }

func testOp(f *grid.Field) *Op {
	c := testVelocity()
	return NewOp(TableI(c, MaxStableNu(c)), f)
}

func randomField(n grid.Dims) *grid.Field {
	f := grid.NewField(n, 1)
	// Deterministic pseudo-random fill.
	s := uint64(12345)
	f.Fill(func(i, j, k int) float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	})
	return f
}

func TestApplyMatchesPoint(t *testing.T) {
	n := grid.Dims{X: 6, Y: 5, Z: 4}
	src := randomField(n)
	src.CopyPeriodicHalos()
	dst := grid.NewField(n, 1)
	op := testOp(src)
	op.Apply(src, dst, Whole(n))
	for k := 0; k < n.Z; k++ {
		for j := 0; j < n.Y; j++ {
			for i := 0; i < n.X; i++ {
				want := op.Point(src, i, j, k)
				if got := dst.At(i, j, k); got != want {
					t.Fatalf("Apply(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestApplyRowsMatchesApply(t *testing.T) {
	n := grid.Dims{X: 7, Y: 6, Z: 5}
	src := randomField(n)
	src.CopyPeriodicHalos()
	op := testOp(src)
	want := grid.NewField(n, 1)
	op.Apply(src, want, Whole(n))

	got := grid.NewField(n, 1)
	sub := Whole(n)
	rows := Rows(sub)
	// Apply in awkward chunks to exercise the row decoding.
	for lo := 0; lo < rows; lo += 4 {
		hi := lo + 4
		if hi > rows {
			hi = rows
		}
		op.ApplyRows(src, got, sub, lo, hi)
	}
	if nm := grid.DiffNorms(got, want); nm.LInf != 0 {
		t.Fatalf("ApplyRows differs from Apply: %+v", nm)
	}
}

func TestApplySubdomainOnly(t *testing.T) {
	n := grid.Dims{X: 6, Y: 6, Z: 6}
	src := randomField(n)
	src.CopyPeriodicHalos()
	op := testOp(src)
	dst := grid.NewField(n, 1)
	sub := grid.Subdomain{Lo: grid.Dims{X: 1, Y: 2, Z: 3}, Size: grid.Dims{X: 3, Y: 2, Z: 2}}
	op.Apply(src, dst, sub)
	for k := 0; k < n.Z; k++ {
		for j := 0; j < n.Y; j++ {
			for i := 0; i < n.X; i++ {
				want := 0.0
				if sub.Contains(i, j, k) {
					want = op.Point(src, i, j, k)
				}
				if got := dst.At(i, j, k); got != want {
					t.Fatalf("(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestConstantFieldFixedPoint(t *testing.T) {
	n := grid.Uniform(6)
	src := grid.NewField(n, 1)
	src.Fill(func(i, j, k int) float64 { return 3.25 })
	src.CopyPeriodicHalos()
	dst := grid.NewField(n, 1)
	op := testOp(src)
	op.Apply(src, dst, Whole(n))
	for k := 0; k < n.Z; k++ {
		for j := 0; j < n.Y; j++ {
			for i := 0; i < n.X; i++ {
				if d := math.Abs(dst.At(i, j, k) - 3.25); d > 1e-13 {
					t.Fatalf("constant field moved by %v at (%d,%d,%d)", d, i, j, k)
				}
			}
		}
	}
}

func TestPureShift(t *testing.T) {
	// With c = (1,1,1) and ν = 1 every Courant number is 1, so one step is
	// an exact one-point shift in each dimension.
	n := grid.Uniform(8)
	c := grid.Velocity{X: 1, Y: 1, Z: 1}
	op := func(f *grid.Field) *Op { return NewOp(TableI(c, 1), f) }
	src := randomField(n)
	ref := src.Clone()
	src.CopyPeriodicHalos()
	dst := grid.NewField(n, 1)
	op(src).Apply(src, dst, Whole(n))
	w := func(i, m int) int { return ((i % m) + m) % m }
	for k := 0; k < n.Z; k++ {
		for j := 0; j < n.Y; j++ {
			for i := 0; i < n.X; i++ {
				want := ref.At(w(i-1, n.X), w(j-1, n.Y), w(k-1, n.Z))
				if d := math.Abs(dst.At(i, j, k) - want); d > 1e-14 {
					t.Fatalf("shift error %v at (%d,%d,%d)", d, i, j, k)
				}
			}
		}
	}
}

func TestMassConservation(t *testing.T) {
	n := grid.Uniform(10)
	src := grid.NewField(n, 1)
	grid.FillGaussian(src, grid.DefaultGaussian(n))
	dst := grid.NewField(n, 1)
	op := testOp(src)
	mass0 := src.InteriorSum()
	for s := 0; s < 20; s++ {
		src.CopyPeriodicHalos()
		op.Apply(src, dst, Whole(n))
		src.Swap(dst)
	}
	if d := math.Abs(src.InteriorSum() - mass0); d > 1e-10 {
		t.Fatalf("mass drifted by %v over 20 steps", d)
	}
}

func TestSecondOrderConvergence(t *testing.T) {
	// Advect a Gaussian over a fixed physical time on grids of n and 2n
	// points; the paper's method is O(Δ²) for fixed simulated time, so the
	// L2 error should fall by about 4x when the resolution doubles.
	c := grid.Velocity{X: 0.7, Y: 0.4, Z: 0.2}
	errAt := func(npts, steps int) float64 {
		n := grid.Uniform(npts)
		nu := MaxStableNu(c)
		g := grid.Gaussian{
			Center: [3]float64{float64(npts) / 2, float64(npts) / 2, float64(npts) / 2},
			Sigma:  float64(npts) / 8,
		}
		f := grid.NewField(n, 1)
		grid.FillGaussian(f, g)
		tmp := grid.NewField(n, 1)
		op := NewOp(TableI(c, nu), f)
		for s := 0; s < steps; s++ {
			f.CopyPeriodicHalos()
			op.Apply(f, tmp, Whole(n))
			f.Swap(tmp)
		}
		tFinal := nu * float64(steps)
		nm := grid.NormsAgainst(f, func(i, j, k int) float64 {
			return g.Analytic(n, c, tFinal, i, j, k)
		})
		return nm.L2
	}
	// Fixed simulated time: steps scale with resolution (δ halves, Δ = νδ
	// halves in grid units when ν is fixed... here ν is dimensionless so
	// doubling points and steps holds physical time in grid fractions).
	e1 := errAt(16, 8)
	e2 := errAt(32, 16)
	ratio := e1 / e2
	if ratio < 3.0 {
		t.Fatalf("convergence ratio %.2f < 3.0 (e1=%g e2=%g); not second order", ratio, e1, e2)
	}
}

func TestInteriorAndBoundaryTile(t *testing.T) {
	n := grid.Dims{X: 7, Y: 6, Z: 5}
	in := Interior(n)
	slabs := BoundarySlabs(n)
	seen := make(map[[3]int]int)
	mark := func(s grid.Subdomain) {
		hi := s.Hi()
		for k := s.Lo.Z; k < hi.Z; k++ {
			for j := s.Lo.Y; j < hi.Y; j++ {
				for i := s.Lo.X; i < hi.X; i++ {
					seen[[3]int{i, j, k}]++
				}
			}
		}
	}
	mark(in)
	for _, s := range slabs {
		mark(s)
	}
	if len(seen) != n.Volume() {
		t.Fatalf("covered %d of %d points", len(seen), n.Volume())
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("point %v covered %d times", p, c)
		}
	}
}

func TestInteriorThirdsTileInterior(t *testing.T) {
	for _, nz := range []int{5, 6, 7, 8} {
		n := grid.Dims{X: 6, Y: 6, Z: nz}
		thirds := InteriorThirds(n)
		in := Interior(n)
		vol := 0
		prevHi := in.Lo.Z
		for _, s := range thirds {
			if s.Lo.Z != prevHi {
				t.Fatalf("nz=%d: thirds not contiguous", nz)
			}
			prevHi = s.Hi().Z
			vol += s.Volume()
			if s.Lo.X != in.Lo.X || s.Size.X != in.Size.X || s.Lo.Y != in.Lo.Y || s.Size.Y != in.Size.Y {
				t.Fatalf("nz=%d: third has wrong xy extent", nz)
			}
		}
		if prevHi != in.Hi().Z {
			t.Fatalf("nz=%d: thirds end at %d, want %d", nz, prevHi, in.Hi().Z)
		}
		if vol != in.Volume() {
			t.Fatalf("nz=%d: thirds volume %d, want %d", nz, vol, in.Volume())
		}
	}
}

func TestApplyEmptySubdomainNoop(t *testing.T) {
	n := grid.Uniform(4)
	src := randomField(n)
	src.CopyPeriodicHalos()
	dst := grid.NewField(n, 1)
	op := testOp(src)
	op.Apply(src, dst, grid.Subdomain{Size: grid.Dims{X: 0, Y: 4, Z: 4}})
	if dst.InteriorSum() != 0 {
		t.Fatal("empty subdomain wrote data")
	}
}

func TestFlopsPerPoint(t *testing.T) {
	// 27 multiplications and 26 additions (paper §II).
	if FlopsPerPoint != 27+26 {
		t.Fatalf("FlopsPerPoint = %d", FlopsPerPoint)
	}
}
