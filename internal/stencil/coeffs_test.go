package stencil

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestTensorIdentity(t *testing.T) {
	// The literal Table I expressions must equal the tensor product of
	// one-dimensional Lax–Wendroff stencils for any velocity and ν.
	prop := func(cx, cy, cz, nuRaw float64) bool {
		c := grid.Velocity{X: clampUnit(cx), Y: clampUnit(cy), Z: clampUnit(cz)}
		nu := math.Abs(clampUnit(nuRaw))
		a := TableI(c, nu)
		b := TensorProduct(c, nu)
		for k := -1; k <= 1; k++ {
			for j := -1; j <= 1; j++ {
				for i := -1; i <= 1; i++ {
					if d := math.Abs(a.At(i, j, k) - b.At(i, j, k)); d > 1e-14 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clampUnit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1)
}

func TestCoeffSumIsOne(t *testing.T) {
	// Consistency: a constant field must be a fixed point, so Σ a_ijk = 1.
	prop := func(cx, cy, cz, nuRaw float64) bool {
		c := grid.Velocity{X: clampUnit(cx), Y: clampUnit(cy), Z: clampUnit(cz)}
		nu := math.Abs(clampUnit(nuRaw))
		return math.Abs(TableI(c, nu).Sum()-1) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLW1DKnownValues(t *testing.T) {
	// σ = 1 gives the pure-shift stencil (1, 0, 0).
	qm1, q0, qp1 := LW1D(1)
	if qm1 != 1 || q0 != 0 || qp1 != 0 {
		t.Fatalf("LW1D(1) = (%v,%v,%v), want (1,0,0)", qm1, q0, qp1)
	}
	// σ = 0 gives identity (0, 1, 0).
	qm1, q0, qp1 = LW1D(0)
	if qm1 != 0 || q0 != 1 || qp1 != 0 {
		t.Fatalf("LW1D(0) = (%v,%v,%v), want (0,1,0)", qm1, q0, qp1)
	}
	// σ = -1 shifts the other way.
	qm1, q0, qp1 = LW1D(-1)
	if qm1 != 0 || q0 != 0 || qp1 != 1 {
		t.Fatalf("LW1D(-1) = (%v,%v,%v), want (0,0,1)", qm1, q0, qp1)
	}
}

func TestCoeffsAtAndFlat(t *testing.T) {
	c := grid.Velocity{X: 0.3, Y: 0.2, Z: 0.1}
	a := TableI(c, 1)
	flat := a.Flat()
	n := 0
	for k := -1; k <= 1; k++ {
		for j := -1; j <= 1; j++ {
			for i := -1; i <= 1; i++ {
				if flat[n] != a.At(i, j, k) {
					t.Fatalf("Flat[%d] != At(%d,%d,%d)", n, i, j, k)
				}
				n++
			}
		}
	}
}

func TestMaxStableNu(t *testing.T) {
	c := grid.Velocity{X: 0.5, Y: 0.25, Z: 0.1}
	if got := MaxStableNu(c); got != 2 {
		t.Fatalf("MaxStableNu = %v, want 2", got)
	}
	if !Stable(c, 2) {
		t.Fatal("max stable nu reported unstable")
	}
	if Stable(c, 2.1) {
		t.Fatal("super-critical nu reported stable")
	}
	if !math.IsInf(MaxStableNu(grid.Velocity{}), 1) {
		t.Fatal("zero velocity should have infinite stable nu")
	}
}

func TestIdx27Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("idx27(2,0,0) did not panic")
		}
	}()
	idx27(2, 0, 0)
}
