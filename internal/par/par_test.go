package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func coverageCheck(t *testing.T, n int, run func(body func(lo, hi int))) {
	t.Helper()
	marks := make([]int32, n)
	run(func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("iteration %d executed %d times", i, m)
		}
	}
}

func TestParallelForSchedules(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, n := range []int{1, 3, 4, 17, 100, 1000} {
			coverageCheck(t, n, func(body func(lo, hi int)) {
				team.ParallelFor(n, sched, 0, body)
			})
		}
	}
}

func TestParallelForChunkSizes(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	for _, chunk := range []int{1, 2, 7, 100} {
		coverageCheck(t, 50, func(body func(lo, hi int)) {
			team.ParallelFor(50, Dynamic, chunk, body)
		})
		coverageCheck(t, 50, func(body func(lo, hi int)) {
			team.ParallelFor(50, Guided, chunk, body)
		})
	}
}

func TestParallelForEmpty(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	called := false
	team.ParallelFor(0, Static, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestParallelForSingleWorker(t *testing.T) {
	team := NewTeam(1)
	defer team.Close()
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		coverageCheck(t, 25, func(body func(lo, hi int)) {
			team.ParallelFor(25, sched, 0, body)
		})
	}
}

func TestStaticChunkProperty(t *testing.T) {
	prop := func(nRaw, wRaw uint16) bool {
		n := int(nRaw % 500)
		w := int(wRaw%16) + 1
		prev := 0
		total := 0
		for tid := 0; tid < w; tid++ {
			lo, hi := StaticChunk(n, w, tid)
			if lo != prev || hi < lo {
				return false
			}
			if hi-lo > n/w+1 || (n >= w && hi-lo < n/w) {
				return false
			}
			prev = hi
			total += hi - lo
		}
		return prev == n && total == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllWorkers(t *testing.T) {
	team := NewTeam(5)
	defer team.Close()
	var seen [5]int32
	team.Run(func(tid int) { atomic.AddInt32(&seen[tid], 1) })
	for tid, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", tid, c)
		}
	}
}

func TestRunReusable(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	var count atomic.Int32
	for r := 0; r < 50; r++ {
		team.Run(func(tid int) { count.Add(1) })
	}
	if count.Load() != 150 {
		t.Fatalf("count = %d, want 150", count.Load())
	}
}

func TestTeamBarrier(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var before, after atomic.Int32
	team.Run(func(tid int) {
		before.Add(1)
		team.Barrier()
		if before.Load() != 4 {
			t.Errorf("worker %d passed barrier with before=%d", tid, before.Load())
		}
		after.Add(1)
	})
	if after.Load() != 4 {
		t.Fatalf("after = %d", after.Load())
	}
}

func TestRunWithMaster(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	var masterDone atomic.Bool
	var work atomic.Int32
	team.RunWithMaster(func() {
		masterDone.Store(true)
	}, 1000, 1, func(lo, hi int) {
		work.Add(int32(hi - lo))
	})
	if !masterDone.Load() {
		t.Fatal("master work skipped")
	}
	if work.Load() != 1000 {
		t.Fatalf("work = %d, want 1000", work.Load())
	}
}

func TestRunWithMasterSingleThread(t *testing.T) {
	// With one thread the master serializes comm before compute, like
	// OpenMP with OMP_NUM_THREADS=1.
	team := NewTeam(1)
	defer team.Close()
	order := []string{}
	var mu sync.Mutex
	team.RunWithMaster(func() {
		mu.Lock()
		order = append(order, "comm")
		mu.Unlock()
	}, 3, 1, func(lo, hi int) {
		mu.Lock()
		order = append(order, "work")
		mu.Unlock()
	})
	if len(order) == 0 || order[0] != "comm" {
		t.Fatalf("order = %v, want comm first", order)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	s := newScheduler(1000, 4, Guided, 1)
	last := 1 << 30
	for {
		lo, hi, ok := s.next()
		if !ok {
			break
		}
		size := hi - lo
		if size > last {
			t.Fatalf("guided chunk grew: %d after %d", size, last)
		}
		last = size
	}
}

func TestGuidedChunkFloor(t *testing.T) {
	s := newScheduler(100, 4, Guided, 10)
	for {
		lo, hi, ok := s.next()
		if !ok {
			break
		}
		if hi-lo < 10 && hi != 100 {
			t.Fatalf("chunk [%d,%d) below floor", lo, hi)
		}
	}
}

func TestNewTeamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0)
}

func TestBarrierStandalone(t *testing.T) {
	b := NewBarrier(3)
	var phase atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				phase.Add(1)
				b.Wait()
				if v := phase.Load(); v%3 != 0 {
					t.Errorf("phase %d not multiple of 3 after barrier", v)
					return
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("bad schedule names")
	}
	if Schedule(9).String() != "Schedule(9)" {
		t.Fatal("bad unknown schedule name")
	}
}

func TestCloseIdempotent(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	team.Close() // must not panic
}

func TestReduceSum(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	got := team.ReduceSum(1000, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	if want := float64(999 * 1000 / 2); got != want {
		t.Fatalf("ReduceSum = %v, want %v", got, want)
	}
	// Deterministic across repeats (fixed summation order).
	again := team.ReduceSum(1000, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i) * 1e-7
		}
		return s
	})
	third := team.ReduceSum(1000, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i) * 1e-7
		}
		return s
	})
	if again != third {
		t.Fatal("ReduceSum not deterministic")
	}
}

func TestReduceMax(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	got := team.ReduceMax(100, func(lo, hi int) float64 {
		m := -1.0
		for i := lo; i < hi; i++ {
			v := float64((i * 37) % 89)
			if v > m {
				m = v
			}
		}
		return m
	})
	want := -1.0
	for i := 0; i < 100; i++ {
		if v := float64((i * 37) % 89); v > want {
			want = v
		}
	}
	if got != want {
		t.Fatalf("ReduceMax = %v, want %v", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	if s := team.ReduceSum(0, func(lo, hi int) float64 { return 99 }); s != 0 {
		t.Fatalf("empty ReduceSum = %v", s)
	}
}
