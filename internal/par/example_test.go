package par_test

import (
	"fmt"
	"sync/atomic"

	"repro/internal/par"
)

// Example shows the paper's §IV-D pattern: the master thread communicates
// while the rest of the team draws guided chunks of the interior loop.
func Example() {
	team := par.NewTeam(4)
	defer team.Close()

	var comm atomic.Bool
	var points atomic.Int64
	team.RunWithMaster(func() {
		comm.Store(true) // the MPI exchange would happen here
	}, 10000, 1, func(lo, hi int) {
		points.Add(int64(hi - lo))
	})

	fmt.Println("communication done:", comm.Load())
	fmt.Println("interior points computed:", points.Load())
	// Output:
	// communication done: true
	// interior points computed: 10000
}

// ExampleTeam_ReduceSum is an OpenMP reduction(+) clause.
func ExampleTeam_ReduceSum() {
	team := par.NewTeam(3)
	defer team.Close()
	sum := team.ReduceSum(100, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	fmt.Println(sum)
	// Output:
	// 4950
}
