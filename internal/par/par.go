// Package par is the shared-memory parallel runtime the reproduction uses
// in place of OpenMP. It provides persistent thread teams, parallel-for
// loops with static, dynamic, and guided schedules (the paper's §IV-D uses
// schedule(guided)), a collapse(2) helper matching the paper's loop
// structure (§IV-A), master-thread sections (!$omp master), and a reusable
// barrier.
package par

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Schedule selects how ParallelFor distributes iterations among workers,
// mirroring OpenMP's schedule clause.
type Schedule int

const (
	// Static divides the iteration space into one contiguous chunk per
	// worker, assigned up front.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks as workers request them.
	Dynamic
	// Guided hands out chunks proportional to the remaining work divided
	// by the number of workers, shrinking toward the chunk floor — the
	// schedule the paper uses so the master thread can join computation
	// late after finishing MPI communication (§IV-D).
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// Team is a persistent group of worker goroutines, the analog of an OpenMP
// thread team. A Team is created once and reused across many parallel
// regions so per-region cost is a wakeup, not goroutine creation.
type Team struct {
	n       int
	jobs    []chan func(tid int)
	done    chan struct{}
	wg      sync.WaitGroup // per-region completion
	closed  bool
	barrier *Barrier
	mu      sync.Mutex

	// Span recording (see SetRecorder). label is only touched by the
	// goroutine launching regions, per the Team usage contract.
	rec   *obs.Recorder
	rank  int
	label string
}

// SetRecorder attaches a span recorder: every parallel region (Run,
// ParallelFor, RunWithMaster, reductions) records a par.region span tagged
// with rank. A nil recorder (the default) disables recording.
func (t *Team) SetRecorder(r *obs.Recorder, rank int) {
	t.rec, t.rank = r, rank
}

// NewTeam starts a team of n workers. n must be at least 1. Worker 0 is the
// master thread.
func NewTeam(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("par: team size %d < 1", n))
	}
	t := &Team{
		n:       n,
		jobs:    make([]chan func(int), n),
		done:    make(chan struct{}),
		barrier: NewBarrier(n),
	}
	for i := 0; i < n; i++ {
		t.jobs[i] = make(chan func(int))
		go t.worker(i)
	}
	return t
}

func (t *Team) worker(tid int) {
	for {
		select {
		case fn := <-t.jobs[tid]:
			fn(tid)
			t.wg.Done()
		case <-t.done:
			return
		}
	}
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.n }

// Close stops the workers. The team must be idle.
func (t *Team) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.done)
	}
}

// Run executes fn(tid) on every worker concurrently and returns when all
// have finished — one OpenMP parallel region. fn may call t.Barrier() to
// synchronize within the region.
func (t *Team) Run(fn func(tid int)) {
	label := t.label
	if label == "" {
		label = "region"
	}
	a := t.rec.Begin(t.rank, -1, obs.PhaseRegion, label)
	t.wg.Add(t.n)
	for i := 0; i < t.n; i++ {
		t.jobs[i] <- fn
	}
	t.wg.Wait()
	a.End()
}

// Barrier blocks until every worker of the enclosing Run region has reached
// it. Calling it outside a Run region (or from only some workers) deadlocks,
// exactly like a misplaced OpenMP barrier.
func (t *Team) Barrier() { t.barrier.Wait() }

// ParallelFor executes body over the iteration range [0, n) split among the
// team per sched. body receives half-open chunk bounds [lo, hi). chunk is
// the dynamic chunk size or the guided chunk floor; 0 selects a default.
func (t *Team) ParallelFor(n int, sched Schedule, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	t.label = sched.String()
	defer func() { t.label = "" }()
	switch sched {
	case Static:
		t.Run(func(tid int) {
			lo, hi := StaticChunk(n, t.n, tid)
			if lo < hi {
				body(lo, hi)
			}
		})
	case Dynamic, Guided:
		s := newScheduler(n, t.n, sched, chunk)
		t.Run(func(tid int) {
			for {
				lo, hi, ok := s.next()
				if !ok {
					return
				}
				body(lo, hi)
			}
		})
	default:
		panic(fmt.Sprintf("par: bad schedule %v", sched))
	}
}

// RunWithMaster emulates the paper's §IV-D overlap region: every worker
// except the master immediately begins drawing guided chunks of the [0, n)
// iteration space, while the master first executes masterWork (the MPI
// communication) and then joins the loop. The region ends, like the OpenMP
// original, with an implicit barrier after the loop, so masterWork is
// complete when RunWithMaster returns.
func (t *Team) RunWithMaster(masterWork func(), n int, chunk int, body func(lo, hi int)) {
	t.label = "master+guided"
	defer func() { t.label = "" }()
	s := newScheduler(n, t.n, Guided, chunk)
	t.Run(func(tid int) {
		if tid == 0 {
			masterWork()
		}
		for {
			lo, hi, ok := s.next()
			if !ok {
				return
			}
			body(lo, hi)
		}
	})
}

// ReduceSum evaluates body over chunks of [0, n) on all workers and
// returns the sum of the per-chunk partial results — the analog of an
// OpenMP reduction(+) clause. The summation order is deterministic
// (ordered by worker), so results are reproducible run to run.
func (t *Team) ReduceSum(n int, body func(lo, hi int) float64) float64 {
	partial := make([]float64, t.n)
	t.Run(func(tid int) {
		lo, hi := StaticChunk(n, t.n, tid)
		if lo < hi {
			partial[tid] = body(lo, hi)
		}
	})
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// ReduceMax is the analog of an OpenMP reduction(max) clause over [0, n).
// With n == 0 it returns negative infinity.
func (t *Team) ReduceMax(n int, body func(lo, hi int) float64) float64 {
	partial := make([]float64, t.n)
	for i := range partial {
		partial[i] = math.Inf(-1)
	}
	t.Run(func(tid int) {
		lo, hi := StaticChunk(n, t.n, tid)
		if lo < hi {
			partial[tid] = body(lo, hi)
		}
	})
	max := math.Inf(-1)
	for _, v := range partial {
		if v > max {
			max = v
		}
	}
	return max
}

// StaticChunk returns the half-open bounds of worker tid's share of [0, n)
// under a static schedule: contiguous chunks as equal as possible, with the
// remainder going to the lowest-numbered workers.
func StaticChunk(n, workers, tid int) (lo, hi int) {
	base := n / workers
	rem := n % workers
	if tid < rem {
		lo = tid * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (tid-rem)*base
	return lo, lo + base
}

// scheduler hands out chunks of [0, n) for dynamic and guided schedules.
type scheduler struct {
	n       int64
	workers int64
	sched   Schedule
	floor   int64
	next64  atomic.Int64
}

func newScheduler(n, workers int, sched Schedule, chunk int) *scheduler {
	if chunk <= 0 {
		if sched == Dynamic {
			chunk = 1
		} else {
			chunk = 1 // guided floor
		}
	}
	return &scheduler{n: int64(n), workers: int64(workers), sched: sched, floor: int64(chunk)}
}

func (s *scheduler) next() (lo, hi int, ok bool) {
	for {
		cur := s.next64.Load()
		if cur >= s.n {
			return 0, 0, false
		}
		var size int64
		if s.sched == Dynamic {
			size = s.floor
		} else {
			size = (s.n - cur) / s.workers
			if size < s.floor {
				size = s.floor
			}
		}
		end := cur + size
		if end > s.n {
			end = s.n
		}
		if s.next64.CompareAndSwap(cur, end) {
			return int(cur), int(end), true
		}
	}
}

// Barrier is a reusable counting barrier for a fixed number of parties.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     uint64
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("par: barrier parties < 1")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them and
// resets for reuse.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
