package mpi

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecvRoundTrip(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []float64{1, 2, 3})
		case 1:
			buf := make([]float64, 3)
			n := c.Recv(0, 7, buf)
			if n != 3 || buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				t.Errorf("recv got %v (n=%d)", buf, n)
			}
		}
	})
}

func TestSendBufferReusable(t *testing.T) {
	// Eager sends must copy: mutating the buffer after Send cannot change
	// the delivered payload.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			data := []float64{42}
			c.Send(1, 0, data)
			data[0] = -1
			c.Send(1, 0, data)
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 0, buf)
			if buf[0] != 42 {
				t.Errorf("first message mutated: %v", buf[0])
			}
			c.Recv(0, 0, buf)
			if buf[0] != -1 {
				t.Errorf("second message wrong: %v", buf[0])
			}
		}
	})
}

func TestNonOvertaking(t *testing.T) {
	// Messages between one (sender, receiver, tag) pair arrive in order.
	w := NewWorld(2)
	const n = 100
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				c.Recv(0, 5, buf)
				if buf[0] != float64(i) {
					t.Errorf("message %d overtaken by %v", i, buf[0])
					return
				}
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 2, buf) // receive out of arrival order by tag
			if buf[0] != 2 {
				t.Errorf("tag 2 got %v", buf[0])
			}
			c.Recv(0, 1, buf)
			if buf[0] != 1 {
				t.Errorf("tag 1 got %v", buf[0])
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			c.Send(0, c.Rank(), []float64{float64(c.Rank())})
			return
		}
		var sum float64
		buf := make([]float64, 1)
		for i := 0; i < 2; i++ {
			c.Recv(AnySource, AnyTag, buf)
			sum += buf[0]
		}
		if sum != 3 {
			t.Errorf("sum = %v, want 3", sum)
		}
	})
}

func TestSelfSend(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		c.Send(0, 9, []float64{5, 6})
		buf := make([]float64, 2)
		c.Recv(0, 9, buf)
		if buf[0] != 5 || buf[1] != 6 {
			t.Errorf("self recv got %v", buf)
		}
		if s := c.Stats(); s.SentMessages != 0 || s.RecvMessages != 0 {
			t.Errorf("self traffic counted: %+v", s)
		}
	})
}

func TestISendIRecvWait(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.ISend(1, 3, []float64{7})
			if !req.Done() {
				t.Error("eager ISend should be complete")
			}
			req.Wait()
		} else {
			buf := make([]float64, 1)
			req := c.IRecv(0, 3, buf)
			if req.Done() {
				t.Error("IRecv complete before Wait")
			}
			if n := req.Wait(); n != 1 || buf[0] != 7 {
				t.Errorf("IRecv got %v (n=%d)", buf, n)
			}
			if req.Wait() != 1 {
				t.Error("Wait not idempotent")
			}
		}
	})
}

func TestWaitall(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 5; i++ {
				reqs = append(reqs, c.ISend(1, i, []float64{float64(i)}))
			}
			Waitall(reqs)
		} else {
			bufs := make([][]float64, 5)
			var reqs []*Request
			for i := 0; i < 5; i++ {
				bufs[i] = make([]float64, 1)
				reqs = append(reqs, c.IRecv(0, i, bufs[i]))
			}
			reqs = append(reqs, nil) // Waitall must skip nils
			Waitall(reqs)
			for i := 0; i < 5; i++ {
				if bufs[i][0] != float64(i) {
					t.Errorf("buf[%d] = %v", i, bufs[i][0])
				}
			}
		}
	})
}

func TestTruncationPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("truncation did not panic")
		}
		if !strings.Contains(p.(error).Error(), "truncation") {
			t.Fatalf("wrong panic: %v", p)
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
		} else {
			c.Recv(0, 0, make([]float64, 2))
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(5)
	var before atomic.Int32
	w.Run(func(c *Comm) {
		before.Add(1)
		c.Barrier()
		if before.Load() != 5 {
			t.Errorf("rank %d passed barrier early (before=%d)", c.Rank(), before.Load())
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(3)
	var counter atomic.Int32
	w.Run(func(c *Comm) {
		for r := 0; r < 20; r++ {
			counter.Add(1)
			c.Barrier()
			if v := counter.Load(); v%3 != 0 {
				t.Errorf("counter %d not multiple of 3", v)
				return
			}
			c.Barrier()
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		w := NewWorld(size)
		w.Run(func(c *Comm) {
			vals := []float64{float64(c.Rank()), 1}
			c.Allreduce(OpSum, vals)
			wantSum := float64(size*(size-1)) / 2
			if vals[0] != wantSum || vals[1] != float64(size) {
				t.Errorf("size %d rank %d: %v, want [%v %v]", size, c.Rank(), vals, wantSum, size)
			}
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	w := NewWorld(6)
	w.Run(func(c *Comm) {
		vals := []float64{float64(c.Rank())}
		c.Allreduce(OpMax, vals)
		if vals[0] != 5 {
			t.Errorf("max = %v", vals[0])
		}
		vals[0] = float64(c.Rank())
		c.Allreduce(OpMin, vals)
		if vals[0] != 0 {
			t.Errorf("min = %v", vals[0])
		}
	})
}

func TestAllreduceRepeated(t *testing.T) {
	// Collectives called in a loop must not cross-match between rounds.
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		for r := 0; r < 25; r++ {
			vals := []float64{float64(r)}
			c.Allreduce(OpSum, vals)
			if vals[0] != float64(4*r) {
				t.Errorf("round %d: %v", r, vals[0])
				return
			}
		}
	})
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 1, 3} {
		w := NewWorld(5)
		w.Run(func(c *Comm) {
			vals := make([]float64, 2)
			if c.Rank() == root {
				vals[0], vals[1] = 3.5, -1
			}
			c.Bcast(root, vals)
			if vals[0] != 3.5 || vals[1] != -1 {
				t.Errorf("root %d rank %d: got %v", root, c.Rank(), vals)
			}
		})
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		send := make([]float64, c.Rank()+1) // varying lengths
		for i := range send {
			send[i] = float64(c.Rank())
		}
		out := c.Gather(2, send)
		if c.Rank() != 2 {
			if out != nil {
				t.Errorf("non-root got %v", out)
			}
			return
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != r+1 {
				t.Errorf("rank %d slice len %d", r, len(out[r]))
			}
			for _, v := range out[r] {
				if v != float64(r) {
					t.Errorf("rank %d slice value %v", r, v)
				}
			}
		}
	})
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	var stats [2]Stats
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
			c.Send(1, 0, make([]float64, 5))
		} else {
			buf := make([]float64, 10)
			c.Recv(0, 0, buf)
			c.Recv(0, 0, buf)
		}
		stats[c.Rank()] = c.Stats()
	})
	if stats[0].SentMessages != 2 || stats[0].SentValues != 15 {
		t.Fatalf("sender stats %+v", stats[0])
	}
	if stats[1].RecvMessages != 2 || stats[1].RecvValues != 15 {
		t.Fatalf("receiver stats %+v", stats[1])
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block; poisoning must release them.
		c.Recv(0, 99, make([]float64, 1))
	})
}

func TestRunPanicReleasesBarrier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		c.Barrier()
	})
}

func TestAllreduceProperty(t *testing.T) {
	prop := func(raw []float64, sizeRaw uint8) bool {
		size := int(sizeRaw%7) + 1
		if len(raw) == 0 {
			raw = []float64{1}
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
			// Keep magnitudes small so float addition error stays tiny.
			raw[i] = math.Mod(raw[i], 100)
		}
		var want float64
		w := NewWorld(size)
		results := make([]float64, size)
		w.Run(func(c *Comm) {
			vals := []float64{raw[c.Rank()%len(raw)]}
			c.Allreduce(OpSum, vals)
			results[c.Rank()] = vals[0]
		})
		for r := 0; r < size; r++ {
			want += raw[r%len(raw)]
		}
		for _, got := range results {
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldSizeAndRankChecks(t *testing.T) {
	w := NewWorld(2)
	if w.Size() != 2 {
		t.Fatalf("Size = %d", w.Size())
	}
	c := w.Comm(0)
	for _, f := range []func(){
		func() { c.Send(5, 0, nil) },
		func() { c.Send(0, -3, nil) },
		func() { w.Comm(2) },
		func() { NewWorld(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAllreduceSumOrderIndependent(t *testing.T) {
	// The binomial tree must produce the same result regardless of world
	// size parity (regression guard for tree index math).
	for size := 1; size <= 12; size++ {
		w := NewWorld(size)
		w.Run(func(c *Comm) {
			vals := []float64{1}
			c.Allreduce(OpSum, vals)
			if vals[0] != float64(size) {
				t.Errorf("size %d rank %d: sum=%v", size, c.Rank(), vals[0])
			}
		})
	}
}

func TestRandomTrafficProperty(t *testing.T) {
	// A randomized all-to-all storm: every rank sends a random number of
	// tagged messages to random peers, then receives exactly what was
	// addressed to it. Checks matching under load with many goroutines.
	prop := func(seed uint32) bool {
		size := int(seed%5) + 2
		rng := seed
		next := func() uint32 {
			rng = rng*1664525 + 1013904223
			return rng
		}
		// Precompute the traffic matrix: counts[src][dst].
		counts := make([][]int, size)
		for s := range counts {
			counts[s] = make([]int, size)
			for d := range counts[s] {
				counts[s][d] = int(next() % 4)
			}
		}
		w := NewWorld(size)
		ok := true
		w.Run(func(c *Comm) {
			me := c.Rank()
			for dst := 0; dst < size; dst++ {
				for i := 0; i < counts[me][dst]; i++ {
					c.Send(dst, me, []float64{float64(me*1000 + i)})
				}
			}
			for src := 0; src < size; src++ {
				for i := 0; i < counts[src][me]; i++ {
					buf := make([]float64, 1)
					c.Recv(src, src, buf)
					if buf[0] != float64(src*1000+i) {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksBarrierStress(t *testing.T) {
	w := NewWorld(32)
	var counter atomic.Int64
	w.Run(func(c *Comm) {
		for r := 0; r < 10; r++ {
			counter.Add(1)
			c.Barrier()
			if v := counter.Load(); v%32 != 0 {
				t.Errorf("round %d: counter %d", r, v)
				return
			}
			c.Barrier()
		}
	})
}

func TestReduce(t *testing.T) {
	for _, root := range []int{0, 2} {
		for _, size := range []int{1, 2, 5, 8} {
			if root >= size {
				continue
			}
			w := NewWorld(size)
			w.Run(func(c *Comm) {
				vals := []float64{float64(c.Rank() + 1)}
				c.Reduce(root, OpSum, vals)
				if c.Rank() == root {
					want := float64(size*(size+1)) / 2
					if vals[0] != want {
						t.Errorf("root %d size %d: sum %v, want %v", root, size, vals[0], want)
					}
				}
			})
		}
	}
}

func TestAllgather(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		send := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
		got := c.Allgather(send)
		if len(got) != 10 {
			t.Errorf("rank %d: len %d", c.Rank(), len(got))
			return
		}
		for r := 0; r < 5; r++ {
			if got[2*r] != float64(r) || got[2*r+1] != float64(r*10) {
				t.Errorf("rank %d: slot %d = %v,%v", c.Rank(), r, got[2*r], got[2*r+1])
				return
			}
		}
	})
}

func TestReduceAndAllreduceAgree(t *testing.T) {
	w := NewWorld(7)
	w.Run(func(c *Comm) {
		a := []float64{float64(c.Rank()) * 1.5}
		b := []float64{float64(c.Rank()) * 1.5}
		c.Allreduce(OpSum, a)
		c.Reduce(0, OpSum, b)
		if c.Rank() == 0 && a[0] != b[0] {
			t.Errorf("Allreduce %v != Reduce %v", a[0], b[0])
		}
	})
}
